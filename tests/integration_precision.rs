//! Mixed-precision conformance suite (ISSUE 4 tentpole): the error
//! budget of `bspline::precision` is a *tested contract*.
//!
//! What is asserted, across layouts × kernels × SIMD backends ×
//! scalar/batched entry points × batch sizes (including 0, 1 and ragged
//! `m % LANES` orbital counts):
//!
//! 1. every f32 and mixed kernel output lies within
//!    [`bspline::precision::F32_REL_ERROR_BUDGET`] of the f64 reference,
//!    relative to the table's [`bspline::precision::spline_scale`] for
//!    the output's derivative order;
//! 2. the mixed path's wide (`f64`) outputs are the *exact* widening of
//!    the pure-f32 engine's outputs — mixed mode changes delivery
//!    precision, never the kernel arithmetic;
//! 3. the budget constant cannot be loosened without editing the
//!    `precision` module docs (the docs must quote the constant);
//! 4. mixed-mode miniqmc observables (kinetic energy per sweep,
//!    FD-checked drift gradients) agree with the all-f64 wavefunction to
//!    physical tolerance.

mod common;

use bspline::precision::{
    spline_scale, MixedEngine, MixedOut, SplineScale, WidenOut, F32_REL_ERROR_BUDGET,
};
use bspline::simd::{with_backend, Backend};
use bspline::{BsplineAoS, BsplineAoSoA, BsplineSoA, Kernel, PosBlock, SpoEngine};
use einspline::{Grid1, MultiCoefs, Real};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_table64(n: usize, ng: usize, seed: u64) -> MultiCoefs<f64> {
    let g = Grid1::periodic(0.0, 1.0, ng);
    let mut table = MultiCoefs::<f64>::new(g, g, g, n);
    table.fill_random(&mut StdRng::seed_from_u64(seed));
    table
}

fn random_positions(ns: usize, seed: u64) -> Vec<[f64; 3]> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..ns)
        .map(|_| [rng.random::<f64>(), rng.random::<f64>(), rng.random::<f64>()])
        .collect()
}

/// Read every output `kernel` produced for orbital `k` as
/// `(derivative_order, value)` pairs — the order picks the spline-scale
/// normalization of the budget check.
trait OutRead<T: Real> {
    fn read(&self, kernel: Kernel, k: usize) -> Vec<(usize, T)>;
}

macro_rules! impl_out_read {
    ($o:ident) => {
        impl<T: Real> OutRead<T> for bspline::$o<T> {
            fn read(&self, kernel: Kernel, k: usize) -> Vec<(usize, T)> {
                match kernel {
                    Kernel::V => vec![(0, self.value(k))],
                    Kernel::Vgl => {
                        let mut v = vec![(0, self.value(k))];
                        v.extend(self.gradient(k).map(|g| (1, g)));
                        v.push((2, self.laplacian(k)));
                        v
                    }
                    Kernel::Vgh => {
                        let mut v = vec![(0, self.value(k))];
                        v.extend(self.gradient(k).map(|g| (1, g)));
                        v.extend(self.hessian(k).map(|h| (2, h)));
                        v
                    }
                }
            }
        }
    };
}
impl_out_read!(WalkerAoS);
impl_out_read!(WalkerSoA);
impl_out_read!(WalkerTiled);

impl<O> OutRead<f64> for MixedOut<O>
where
    O: WidenOut,
    O::Wide: OutRead<f64>,
{
    fn read(&self, kernel: Kernel, k: usize) -> Vec<(usize, f64)> {
        self.wide().read(kernel, k)
    }
}

/// Every `(order, value)` the engine produces for `kernel` over `pos`,
/// through the scalar entry loop (`batched == false`) or the batched
/// entry (`batched == true`), flattened position-major and widened to
/// `f64`.
fn collect<T, E>(engine: &E, kernel: Kernel, pos: &[[f64; 3]], batched: bool) -> Vec<(usize, f64)>
where
    T: Real,
    E: SpoEngine<T>,
    E::Out: OutRead<T>,
{
    let n = engine.n_splines();
    let mut all = Vec::new();
    if batched {
        let block: PosBlock<T> = pos
            .iter()
            .map(|p| [T::from_f64(p[0]), T::from_f64(p[1]), T::from_f64(p[2])])
            .collect();
        let mut out = engine.make_batch_out(block.len());
        engine.eval_batch(kernel, &block, &mut out);
        for i in 0..pos.len() {
            for k in 0..n {
                all.extend(
                    out.block(i)
                        .read(kernel, k)
                        .into_iter()
                        .map(|(o, v)| (o, v.to_f64())),
                );
            }
        }
    } else {
        let mut out = engine.make_out();
        for p in pos {
            let tp = [T::from_f64(p[0]), T::from_f64(p[1]), T::from_f64(p[2])];
            engine.eval(kernel, tp, &mut out);
            for k in 0..n {
                all.extend(
                    out.read(kernel, k).into_iter().map(|(o, v)| (o, v.to_f64())),
                );
            }
        }
    }
    all
}

/// Assert `got` stays within the documented budget of the f64
/// `reference`, normalized by the table's spline scale per derivative
/// order. This is acceptance-criterion ground truth: loosening
/// `F32_REL_ERROR_BUDGET` is the only way to relax it.
fn assert_within_budget(
    reference: &[(usize, f64)],
    got: &[(usize, f64)],
    scale: &SplineScale,
    ctx: &str,
) {
    assert_eq!(reference.len(), got.len(), "{ctx}: output count");
    for (i, (&(order, want), &(gorder, g))) in
        reference.iter().zip(got).enumerate()
    {
        assert_eq!(order, gorder, "{ctx}: stream order idx={i}");
        let bound = F32_REL_ERROR_BUDGET * scale.for_order(order);
        let err = (want - g).abs();
        assert!(
            err <= bound,
            "{ctx}: idx={i} order={order}: {want} vs {g} \
             (err {err:e} > budget {bound:e})"
        );
    }
}

/// The full budget matrix for one table shape: every layout, every
/// kernel, every available backend, both entry points, f32 and mixed
/// precision against the f64 reference.
fn check_budget_matrix(n: usize, nb: usize, ng: usize, seed: u64, ns: usize) {
    let table64 = random_table64(n, ng, seed);
    let table32 = table64.downcast();
    let scale = spline_scale(&table64);
    let pos = random_positions(ns, seed ^ 0xa5a5);

    let aos64 = BsplineAoS::new(table64.clone());
    let soa64 = BsplineSoA::new(table64.clone());
    let tiled64 = BsplineAoSoA::from_multi(&table64, nb);
    let aos32 = BsplineAoS::new(table32.clone());
    let soa32 = BsplineSoA::new(table32.clone());
    let tiled32 = BsplineAoSoA::from_multi(&table32, nb);
    let maos = MixedEngine::new(aos32.clone());
    let msoa = MixedEngine::new(soa32.clone());
    let mtiled = MixedEngine::new(tiled32.clone());

    for kernel in Kernel::ALL {
        // One f64 reference per layout (forced scalar backend: the
        // portable fused chain), scalar entry. The budget dwarfs the
        // ≤ 2 ULP backend spread, so one reference serves all.
        let refs: [Vec<(usize, f64)>; 3] = with_backend(Backend::Scalar, || {
            [
                collect(&aos64, kernel, &pos, false),
                collect(&soa64, kernel, &pos, false),
                collect(&tiled64, kernel, &pos, false),
            ]
        });
        for backend in Backend::available() {
            for batched in [false, true] {
                let ctx = |layout: &str, precision: &str| {
                    format!(
                        "{layout} {kernel} n={n} nb={nb} [{backend} \
                         {} {precision}]",
                        if batched { "batched" } else { "scalar-entry" }
                    )
                };
                with_backend(backend, || {
                    assert_within_budget(
                        &refs[0],
                        &collect(&aos32, kernel, &pos, batched),
                        &scale,
                        &ctx("AoS", "f32"),
                    );
                    assert_within_budget(
                        &refs[0],
                        &collect(&maos, kernel, &pos, batched),
                        &scale,
                        &ctx("AoS", "mixed"),
                    );
                    assert_within_budget(
                        &refs[1],
                        &collect(&soa32, kernel, &pos, batched),
                        &scale,
                        &ctx("SoA", "f32"),
                    );
                    assert_within_budget(
                        &refs[1],
                        &collect(&msoa, kernel, &pos, batched),
                        &scale,
                        &ctx("SoA", "mixed"),
                    );
                    assert_within_budget(
                        &refs[2],
                        &collect(&tiled32, kernel, &pos, batched),
                        &scale,
                        &ctx("AoSoA", "f32"),
                    );
                    assert_within_budget(
                        &refs[2],
                        &collect(&mtiled, kernel, &pos, batched),
                        &scale,
                        &ctx("AoSoA", "mixed"),
                    );
                });
            }
        }
    }
}

#[test]
fn budget_holds_across_layouts_kernels_backends_and_entries() {
    // Lane-aligned and ragged orbital counts, several grid sizes.
    check_budget_matrix(32, 8, 8, 11, 3);
    check_budget_matrix(19, 5, 6, 23, 2); // ragged against every lane width
    check_budget_matrix(7, 16, 12, 47, 2); // nb > n, finer grid
}

#[test]
fn budget_holds_on_lane_boundary_orbital_counts() {
    // m = LANES−1 / LANES / LANES+1 for every backend width on this
    // host — the ragged-tail dispatch paths of the f32 kernels.
    let mut counts: Vec<usize> = vec![1];
    for b in Backend::available() {
        for lanes in [b.lanes_f32(), b.lanes_f64()] {
            counts.extend([lanes.saturating_sub(1).max(1), lanes, lanes + 1]);
        }
    }
    counts.sort_unstable();
    counts.dedup();
    for (i, &m) in counts.iter().enumerate() {
        check_budget_matrix(m, (m / 2).max(1), 5, 100 + i as u64, 2);
    }
}

#[test]
fn mixed_wide_is_the_exact_widening_of_the_f32_engine() {
    let table64 = random_table64(21, 6, 5);
    let table32 = table64.downcast();
    let pos = random_positions(3, 9);
    let soa32 = BsplineSoA::new(table32);
    let msoa = MixedEngine::new(soa32.clone());
    for kernel in Kernel::ALL {
        for backend in Backend::available() {
            with_backend(backend, || {
                let narrow = collect(&soa32, kernel, &pos, false);
                let wide = collect(&msoa, kernel, &pos, false);
                for (i, ((no, nv), (wo, wv))) in
                    narrow.iter().zip(&wide).enumerate()
                {
                    assert_eq!(no, wo);
                    // collect() widened the f32 value with `as f64`
                    // (exact), so bit-equality is the contract here.
                    assert_eq!(
                        nv, wv,
                        "{kernel} [{backend}] idx={i}: mixed must deliver \
                         exactly the f32 kernel result in f64"
                    );
                }
            });
        }
    }
}

#[test]
fn budget_constant_is_quoted_in_the_module_docs() {
    // Acceptance criterion: the budget lives in one `pub const`, and
    // loosening it without a doc change fails the suite. The module
    // docs must quote the constant (bold, e.g. **3e-5**) in the
    // derivation paragraph this test pins.
    let src = include_str!("../crates/bspline/src/precision.rs");
    let quoted = format!("**{:e}**", F32_REL_ERROR_BUDGET);
    let doc_lines: Vec<&str> =
        src.lines().filter(|l| l.trim_start().starts_with("//!")).collect();
    let mentions = doc_lines.iter().filter(|l| l.contains(&quoted)).count();
    assert!(
        mentions >= 1,
        "bspline::precision docs must quote the budget constant as {quoted}; \
         if you changed F32_REL_ERROR_BUDGET ({F32_REL_ERROR_BUDGET:e}), \
         update the derivation in the module docs to match"
    );
    // And the constant itself must stay a per-mille-level bound — a
    // budget loosened past 1e-4 would no longer distinguish storage
    // precision from interpolation error.
    let budget = F32_REL_ERROR_BUDGET;
    assert!(budget < 1e-4, "budget {budget:e} loosened past 1e-4");
}

#[test]
fn batch_edges_hold_under_mixed_precision_and_forced_scalar() {
    // Batch sizes 0 and 1, ragged m % LANES orbital count, and the
    // QMC_SIMD=scalar-equivalent forced backend: the precision contract
    // holds on every dispatch path.
    let table64 = random_table64(13, 6, 77); // 13: ragged for all widths
    let scale = spline_scale(&table64);
    let msoa = MixedEngine::soa(&table64);
    let soa64 = BsplineSoA::new(table64.clone());

    with_backend(Backend::Scalar, || {
        // Batch 0: a no-op that must not touch pre-existing blocks.
        let empty = PosBlock::<f64>::new();
        let mut out0 = msoa.make_batch_out(2);
        msoa.vgh_batch(&empty, &mut out0);
        for i in 0..2 {
            for k in 0..13 {
                assert_eq!(out0.block(i).wide().value(k), 0.0);
            }
        }

        // Batch 1 matches the scalar entry point exactly and stays
        // within budget of the f64 reference.
        let pos = [[0.37f64, 0.81, 0.14]];
        let reference = collect(&soa64, Kernel::Vgh, &pos, false);
        let one = collect(&msoa, Kernel::Vgh, &pos, true);
        let scalar_entry = collect(&msoa, Kernel::Vgh, &pos, false);
        assert_eq!(one, scalar_entry, "batch-1 must equal the scalar entry");
        assert_within_budget(&reference, &one, &scale, "batch-1 mixed scalar-forced");

        // Oversized BatchOut: extra blocks untouched.
        let block: PosBlock<f64> = pos.iter().copied().collect();
        let mut over = msoa.make_batch_out(3);
        msoa.vgh_batch(&block, &mut over);
        for k in 0..13 {
            assert_eq!(over.block(2).wide().value(k), 0.0);
        }
    });
}

// ---------------------------------------------------------------------------
// Mixed-mode miniqmc observables: the physical end of the contract.

mod miniqmc_observables {
    use super::*;
    use miniqmc::drivers::observables::kinetic_energy;
    use miniqmc::jastrow::BsplineFunctor;
    use miniqmc::particleset::random_electrons;
    use miniqmc::spo::SpoSet;
    use miniqmc::synthetic::CoralSystem;
    use miniqmc::wavefunction::TrialWaveFunction;

    /// Build the same small graphite-like wavefunction twice: once all
    /// f64, once with the orbital table downcast to f32 (mixed mode).
    /// Everything else (electrons, Jastrows, ions) is identical.
    fn twin_systems(seed: u64) -> (TrialWaveFunction<f64>, TrialWaveFunction<f32>) {
        let sys = CoralSystem::new(1, 1, 1, (10, 10, 12));
        let coefs64 = sys.orbitals::<f64>(seed);
        let coefs32 = coefs64.downcast();
        let electrons = |s| {
            random_electrons(
                sys.lattice,
                sys.n_electrons(),
                &mut StdRng::seed_from_u64(s),
            )
        };
        let rc = sys.lattice.wigner_seitz_radius() * 0.9;
        let j1 = || BsplineFunctor::rpa_like(0.3, 1.0, rc, 24);
        let j2 = || BsplineFunctor::rpa_like(0.5, 1.2, rc, 24);
        let wf64 = TrialWaveFunction::new(
            SpoSet::new(coefs64, sys.lattice),
            &sys.ions,
            electrons(seed + 1),
            j1(),
            j2(),
        );
        let wf32 = TrialWaveFunction::new(
            SpoSet::new(coefs32, sys.lattice),
            &sys.ions,
            electrons(seed + 1),
            j1(),
            j2(),
        );
        (wf64, wf32)
    }

    #[test]
    fn kinetic_energy_per_sweep_agrees_to_physical_tolerance() {
        let (mut wf64, mut wf32) = twin_systems(3);
        let ke64 = kinetic_energy(&wf64.log_derivs());
        let ke32 = kinetic_energy(&wf32.log_derivs());
        assert!(ke64.is_finite() && ke32.is_finite());
        // Physical tolerance: storage precision must not move the
        // kinetic estimator beyond ~0.1% — orders of magnitude below
        // any VMC statistical error bar.
        common::assert_rel_close_f64(ke64, ke32, 1e-3, "kinetic energy per sweep");
    }

    #[test]
    fn drift_gradients_agree_across_precisions() {
        let (mut wf64, mut wf32) = twin_systems(17);
        let d64 = wf64.log_derivs();
        let d32 = wf32.log_derivs();
        assert_eq!(d64.grad.len(), d32.grad.len());
        for iel in 0..d64.grad.len() {
            for d in 0..3 {
                common::assert_rel_close_f64(
                    d64.grad[iel][d],
                    d32.grad[iel][d],
                    1e-3,
                    &format!("drift grad iel={iel} d={d}"),
                );
            }
            common::assert_rel_close_f64(
                d64.lap[iel],
                d32.lap[iel],
                1e-3,
                &format!("drift lap iel={iel}"),
            );
        }
    }

    #[test]
    fn mixed_mode_drift_matches_finite_difference() {
        // FD check of the mixed-mode wavefunction itself: the drift the
        // sampler would use is a real derivative of the f32-orbital
        // log ΨT, not an artifact of the precision plumbing. The FD
        // step balances truncation (h²) against f32 evaluation noise
        // (ε/h): h = 1e-3 keeps both ≲ 1e-3.
        let (_, mut wf32) = twin_systems(29);
        let derivs = wf32.log_derivs();
        let h = 1e-3;
        for iel in [0usize, 7, 11] {
            let r0 = wf32.electrons().get(iel);
            for d in 0..3 {
                let mut rp = r0;
                rp[d] += h;
                let ratio_p = wf32.ratio(iel, rp);
                wf32.reject();
                let mut rm = r0;
                rm[d] -= h;
                let ratio_m = wf32.ratio(iel, rm);
                wf32.reject();
                let fd = (ratio_p.abs().ln() - ratio_m.abs().ln()) / (2.0 * h);
                common::assert_rel_close_f64(
                    derivs.grad[iel][d],
                    fd,
                    5e-3,
                    &format!("mixed FD drift iel={iel} d={d}"),
                );
            }
        }
    }
}

