//! Modelled-platform integration: the cachesim + roofline pipeline must
//! reproduce the paper's qualitative platform behaviour (shape, not
//! absolute numbers) on scaled-down grids.

use bspline::Layout;
use cachesim::Platform;
use qmc_bench::{model_prediction, ModelScenario};

/// Scaled Fig 7c scenario: grid shrunk 48³ → 24³ (capacities scale with
/// Ng, so the BDW crossover moves from Nb=64…128 to Nb≈512 region —
/// still an interior optimum below N).
fn predict(p: &Platform, layout: Layout, n: usize, nb: usize) -> f64 {
    let mut sc = ModelScenario::vgh(layout, n, nb);
    sc.grid = (24, 24, 24);
    sc.n_positions = 12;
    model_prediction(p, &sc).throughput
}

#[test]
fn soa_beats_aos_everywhere() {
    for p in Platform::all() {
        let n = 512;
        let aos = predict(&p, Layout::Aos, n, n);
        let soa = predict(&p, Layout::Soa, n, n);
        assert!(soa > aos, "{}: SoA {soa} ≤ AoS {aos}", p.name);
    }
}

#[test]
fn tiling_helps_large_n_on_private_l2_machines() {
    // Fig 7b at N=4096 on KNC/KNL: untiled outputs thrash the private
    // L2s shared by the hyperthreads; Nb=512 restores throughput.
    for p in [Platform::knc(), Platform::knl()] {
        let untiled = predict(&p, Layout::Soa, 4096, 4096);
        let tiled = predict(&p, Layout::AoSoA, 4096, 512);
        assert!(
            tiled > untiled,
            "{}: tiled {tiled} ≤ untiled {untiled}",
            p.name
        );
    }
}

#[test]
fn shared_llc_machines_prefer_smaller_tiles_than_knl() {
    // Fig 7c ordering: the BDW optimum sits at a smaller Nb than the
    // KNL optimum (LLC capacity vs output-block mechanisms).
    let sweep = [32usize, 64, 128, 256, 512, 1024, 2048];
    let optimum = |p: &Platform| -> usize {
        let mut best = (0.0, 0);
        for &nb in &sweep {
            let t = predict(p, Layout::AoSoA, 2048, nb);
            if t > best.0 {
                best = (t, nb);
            }
        }
        best.1
    };
    let bdw = optimum(&Platform::bdw());
    let knl = optimum(&Platform::knl());
    assert!(
        bdw <= knl,
        "BDW optimal Nb {bdw} should not exceed KNL optimal Nb {knl}"
    );
    // Both optima are interior (tiling matters at all).
    assert!(bdw < 2048, "BDW optimum should be a proper tile");
}

#[test]
fn knl_outruns_bgq_substantially() {
    // Paper Sec. I: KNL peak is an order above a BG/Q node. The
    // *effective* predicted gap is smaller (both end up compute-bound at
    // their SIMD-efficiency roofs: ~400 vs ~107 GF/s → ~3.7×), but the
    // ordering and a wide margin must hold.
    let knl = predict(&Platform::knl(), Layout::AoSoA, 2048, 512);
    let bgq = predict(&Platform::bgq(), Layout::AoSoA, 2048, 64);
    assert!(knl > 3.0 * bgq, "KNL {knl} vs BG/Q {bgq}");
    // And the raw peaks keep the paper's order-of-magnitude claim.
    assert!(
        Platform::knl().peak_sp_gflops() > 7.0 * Platform::bgq().peak_sp_gflops()
    );
}

#[test]
fn nested_threading_preserves_throughput_on_knl() {
    // Opt C: splitting a walker across nth threads must not collapse
    // node throughput (paper: ≥90 % parallel efficiency at nth=16).
    let base = predict(&Platform::knl(), Layout::AoSoA, 2048, 256);
    let mut sc = ModelScenario::vgh(Layout::AoSoA, 2048, 256);
    sc.grid = (24, 24, 24);
    sc.n_positions = 12;
    sc.nth = 8;
    let nested = model_prediction(&Platform::knl(), &sc).throughput;
    assert!(
        nested > 0.5 * base,
        "nested throughput {nested} collapsed vs {base}"
    );
}
