//! Edge-case integration tests: boundary positions, degenerate sizes,
//! and numerical-hygiene scenarios across the whole stack.

use bspline::SpoEngine;
use bspline::{BsplineAoS, BsplineAoSoA, BsplineSoA, Kernel};
use einspline::{Grid1, MultiCoefs};
use miniqmc::determinant::DiracDeterminant;
use miniqmc::drivers::dmc::{DmcConfig, DmcPopulation};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn table(n: usize, ng: usize, seed: u64) -> MultiCoefs<f32> {
    let g = Grid1::periodic(0.0, 1.0, ng);
    let mut m = MultiCoefs::new(g, g, g, n);
    m.fill_random(&mut StdRng::seed_from_u64(seed));
    m
}

#[test]
fn single_orbital_engines_work() {
    let t = table(1, 5, 1);
    let soa = BsplineSoA::new(t.clone());
    let aos = BsplineAoS::new(t.clone());
    let tiled = BsplineAoSoA::from_multi(&t, 1);
    let mut os = soa.make_out();
    let mut oa = aos.make_out();
    let mut ot = tiled.make_out();
    for k in Kernel::ALL {
        soa.eval(k, [0.3, 0.3, 0.3], &mut os);
        aos.eval(k, [0.3, 0.3, 0.3], &mut oa);
        tiled.eval(k, [0.3, 0.3, 0.3], &mut ot);
    }
    assert!((os.value(0) - oa.value(0)).abs() < 1e-5);
    assert_eq!(os.value(0), ot.value(0));
}

#[test]
fn positions_exactly_on_grid_points_and_boundaries() {
    let t = table(8, 6, 2);
    let soa = BsplineSoA::new(t);
    let mut out = soa.make_out();
    // Exact knots, the periodic seam, negative coordinates and exact
    // multiples of the period must all evaluate finitely and
    // periodically.
    let cases: [[f32; 3]; 6] = [
        [0.0, 0.0, 0.0],
        [1.0, 1.0, 1.0],
        [0.5, 0.0, 1.0],
        [-0.25, 0.75, 2.0],
        [1.0 - 1e-7, 0.0, 0.5],
        [1.0 / 6.0, 2.0 / 6.0, 3.0 / 6.0],
    ];
    for pos in cases {
        soa.vgh(pos, &mut out);
        for n in 0..8 {
            assert!(out.value(n).is_finite(), "{pos:?}");
            assert!(out.hessian_trace(n).is_finite());
        }
    }
    // Periodicity at the seam.
    soa.vgh([0.0, 0.3, 0.3], &mut out);
    let a = out.value(3);
    soa.vgh([1.0, 0.3, 0.3], &mut out);
    assert!((a - out.value(3)).abs() < 1e-6);
}

#[test]
fn tile_size_larger_than_n_is_one_tile() {
    let t = table(10, 5, 3);
    let tiled = BsplineAoSoA::from_multi(&t, 1000);
    assert_eq!(tiled.n_tiles(), 1);
    let mut out = tiled.make_out();
    tiled.vgh([0.2, 0.4, 0.6], &mut out);
    assert!(out.value(9).is_finite());
}

#[test]
fn every_tile_size_from_one_to_n_is_consistent() {
    let n = 12;
    let t = table(n, 5, 4);
    let reference = BsplineSoA::new(t.clone());
    let mut ref_out = reference.make_out();
    let pos = [0.71f32, 0.13, 0.57];
    reference.vgh(pos, &mut ref_out);
    for nb in 1..=n {
        let tiled = BsplineAoSoA::from_multi(&t, nb);
        let mut out = tiled.make_out();
        tiled.vgh(pos, &mut out);
        for k in 0..n {
            assert_eq!(out.value(k), ref_out.value(k), "nb={nb} k={k}");
            assert_eq!(out.gradient(k), ref_out.gradient(k), "nb={nb}");
        }
    }
}

#[test]
fn determinant_survives_long_update_chains_with_refresh() {
    let n = 16;
    let mut rng = StdRng::seed_from_u64(5);
    let mut a: Vec<f64> = (0..n * n).map(|_| rng.random::<f64>() - 0.5).collect();
    for i in 0..n {
        a[i * n + i] += 2.5;
    }
    let mut det = DiracDeterminant::build(&a, n);
    for step in 0..600 {
        let e = step % n;
        let phi: Vec<f64> = (0..n)
            .map(|k| a[e * n + k] + 0.1 * (rng.random::<f64>() - 0.5))
            .collect();
        let r = det.ratio(e, &phi);
        if r.abs() > 1e-4 {
            det.accept(e, &phi);
            a[e * n..(e + 1) * n].copy_from_slice(&phi);
        }
        if step % 100 == 99 {
            det.refresh();
        }
    }
    assert!(
        det.inverse_error() < 1e-9,
        "drift {} after refresh cadence",
        det.inverse_error()
    );
}

#[test]
fn dmc_population_handles_tiny_targets() {
    let mut p = DmcPopulation::new(
        DmcConfig {
            target_population: 2,
            tau: 0.01,
            feedback: 1.0,
            max_ratio: 4.0,
            seed: 9,
        },
        0.0,
    );
    for _ in 0..100 {
        p.step(|_| 0.0);
        assert!(!p.is_empty());
        assert!(p.len() <= 8);
    }
}

#[test]
fn anisotropic_grid_engines_agree() {
    // 48x48x60-like anisotropy at test scale.
    let gx = Grid1::periodic(0.0, 1.0, 4);
    let gy = Grid1::periodic(0.0, 1.0, 6);
    let gz = Grid1::periodic(0.0, 1.0, 5);
    let mut m = MultiCoefs::<f32>::new(gx, gy, gz, 6);
    m.fill_random(&mut StdRng::seed_from_u64(11));
    let aos = BsplineAoS::new(m.clone());
    let soa = BsplineSoA::new(m);
    let mut oa = aos.make_out();
    let mut os = soa.make_out();
    let mut rng = StdRng::seed_from_u64(12);
    for _ in 0..16 {
        let pos = [
            rng.random::<f32>() * 2.0 - 0.5,
            rng.random::<f32>() * 2.0 - 0.5,
            rng.random::<f32>() * 2.0 - 0.5,
        ];
        aos.vgh(pos, &mut oa);
        soa.vgh(pos, &mut os);
        for k in 0..6 {
            assert!((oa.value(k) - os.value(k)).abs() < 1e-4, "{pos:?}");
            let (ga, gs) = (oa.gradient(k), os.gradient(k));
            for d in 0..3 {
                assert!((ga[d] - gs[d]).abs() < 2e-3);
            }
        }
    }
}
