//! Coalescing-service conformance suite (ISSUE 6 tentpole): results
//! that arrive through [`bspline::service::SpoService`] must be
//! **bit-identical** to a single direct `eval_batch` call over the same
//! positions — coalescing splices whole position blocks and fusing
//! never splits a per-orbital accumulation chain, so exact equality
//! holds on *every* backend, not just the fused ones.
//!
//! Covered here (the unit tests in `bspline::service` cover the
//! single-service mechanics; this file stresses the cross-thread
//! contract):
//!
//! 1. many submitters × small submissions ≡ one big direct batch,
//!    bit-for-bit, across kernels × precisions (`f32` / `f64`);
//! 2. a mixed V/VGL/VGH submission stream — the coalescer may only
//!    fuse like-kinded requests, and every caller gets its own blocks
//!    back;
//! 3. a tiny `queue_positions` bound: backpressure throttles but never
//!    deadlocks, and an oversized request is still admitted when the
//!    service drains idle;
//! 4. `PosBlock::chunks` edge cases (the splitter submitters use to
//!    shard a walker's positions): empty block, ragged tail, chunk
//!    size ≥ length, and the positive-size contract;
//! 5. a proptest partition property: any chunking of any position
//!    block, pipelined through the service, reassembles to the direct
//!    batch;
//! 6. routing invariants (ISSUE 8): under any [`RoutingPolicy`] —
//!    FIFO, single-domain affinity (the fallback), or multi-shard
//!    affinity — every routing decision (majority classification,
//!    content-hash tie-break, spill, steal) only picks *which queue*
//!    a request waits in, so results stay bit-identical to the direct
//!    batch even for spatially-concentrated blocks that all classify
//!    to one hot shard.

use bspline::service::{RoutingPolicy, ServiceConfig, ServiceError, SpoService};
use bspline::{BsplineSoA, Kernel, PosBlock, SpoEngine, WalkerSoA};
use einspline::{Grid1, MultiCoefs, Real};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Duration;

fn random_table<T: Real>(n: usize, seed: u64) -> MultiCoefs<T> {
    let g = Grid1::periodic(0.0, 1.0, 5);
    let mut table = MultiCoefs::<T>::new(g, g, g, n);
    table.fill_random(&mut StdRng::seed_from_u64(seed));
    table
}

fn random_block<T: Real>(ns: usize, seed: u64) -> PosBlock<T> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..ns)
        .map(|_| {
            [
                T::from_f64(rng.random::<f64>()),
                T::from_f64(rng.random::<f64>()),
                T::from_f64(rng.random::<f64>()),
            ]
        })
        .collect()
}

/// Assert the kernel-relevant fields of two walker blocks are
/// bit-identical (exact `==`, no tolerance).
fn assert_blocks_bitmatch<T: Real>(
    kernel: Kernel,
    n: usize,
    got: &WalkerSoA<T>,
    want: &WalkerSoA<T>,
    ctx: &str,
) {
    for k in 0..n {
        assert_eq!(got.value(k), want.value(k), "{ctx} v[{k}]");
        match kernel {
            Kernel::V => {}
            Kernel::Vgl => {
                assert_eq!(got.gradient(k), want.gradient(k), "{ctx} g[{k}]");
                assert_eq!(got.laplacian(k), want.laplacian(k), "{ctx} l[{k}]");
            }
            Kernel::Vgh => {
                assert_eq!(got.gradient(k), want.gradient(k), "{ctx} g[{k}]");
                assert_eq!(got.hessian(k), want.hessian(k), "{ctx} h[{k}]");
            }
        }
    }
}

/// The direct reference: one `eval_batch` over the whole block.
fn direct_batch<T: Real>(
    engine: &BsplineSoA<T>,
    kernel: Kernel,
    pos: &PosBlock<T>,
) -> bspline::BatchOut<WalkerSoA<T>> {
    let mut out = engine.make_batch_out(pos.len());
    engine.eval_batch(kernel, pos, &mut out);
    out
}

/// Shard `pos` into `chunk`-sized requests, fire them at `service`
/// from `submitters` concurrent threads, and assert every returned
/// block bit-matches the direct big-batch reference at its global
/// position index.
fn stress_service<T: Real>(
    service: &SpoService<T, BsplineSoA<T>>,
    kernel: Kernel,
    pos: &PosBlock<T>,
    chunk: usize,
    submitters: usize,
) {
    let n = service.engine().n_splines();
    let reference = direct_batch(service.engine(), kernel, pos);
    let chunks: Vec<PosBlock<T>> = pos.chunks(chunk).collect();
    std::thread::scope(|s| {
        for w in 0..submitters {
            let my_chunks: Vec<(usize, PosBlock<T>)> = chunks
                .iter()
                .enumerate()
                .filter(|(i, _)| i % submitters == w)
                .map(|(i, c)| (i, c.clone()))
                .collect();
            let reference = &reference;
            s.spawn(move || {
                for (i, sub) in my_chunks {
                    let len = sub.len();
                    let out = service.engine().make_batch_out(len);
                    let (_, out, _) = service
                        .submit(kernel, sub, out)
                        .redeem()
                        .expect("service request");
                    for j in 0..len {
                        assert_blocks_bitmatch(
                            kernel,
                            n,
                            out.block(j),
                            reference.block(i * chunk + j),
                            &format!("{kernel} chunk={i} pos={j}"),
                        );
                    }
                }
            });
        }
    });
}

fn small_service<T: Real>(
    table: MultiCoefs<T>,
    queue_positions: usize,
) -> SpoService<T, BsplineSoA<T>> {
    SpoService::new(
        BsplineSoA::new(table),
        ServiceConfig {
            replicas: 2,
            max_batch: 32,
            max_wait: Duration::from_micros(200),
            queue_positions,
            ..ServiceConfig::default()
        },
    )
}

#[test]
fn many_small_submissions_equal_one_big_batch_f32() {
    let n = 24;
    let service = small_service(random_table::<f32>(n, 0xf32), 4096);
    let pos = random_block::<f32>(96, 0xf32 ^ 0xabcd);
    for kernel in Kernel::ALL {
        stress_service(&service, kernel, &pos, 4, 6);
    }
    // Every position went through the service exactly once per kernel.
    let stats = service.stats();
    assert_eq!(stats.positions, 3 * 96);
    assert_eq!(stats.requests, 3 * 24);
}

#[test]
fn many_small_submissions_equal_one_big_batch_f64() {
    let n = 17;
    let service = small_service(random_table::<f64>(n, 0xf64), 4096);
    let pos = random_block::<f64>(60, 0xf64 ^ 0xabcd);
    for kernel in Kernel::ALL {
        stress_service(&service, kernel, &pos, 5, 4);
    }
}

#[test]
fn mixed_kernel_stream_returns_each_callers_own_results() {
    let n = 12;
    let service = small_service(random_table::<f32>(n, 0x717), 4096);
    let pos = random_block::<f32>(72, 0x717 ^ 0xabcd);
    let references: Vec<_> = Kernel::ALL
        .into_iter()
        .map(|k| direct_batch(service.engine(), k, &pos))
        .collect();
    let chunks: Vec<PosBlock<f32>> = pos.chunks(3).collect();
    // Three submitters, each cycling through the kernels out of phase
    // with the others, so the queue always holds a kernel mix and the
    // coalescer must match like kinds from anywhere in it.
    std::thread::scope(|s| {
        for w in 0..3usize {
            let chunks = &chunks;
            let references = &references;
            let service = &service;
            s.spawn(move || {
                for (i, sub) in chunks.iter().enumerate() {
                    let ki = (i + w) % Kernel::ALL.len();
                    let kernel = Kernel::ALL[ki];
                    let out = service.engine().make_batch_out(sub.len());
                    let (_, out, _) = service
                        .submit(kernel, sub.clone(), out)
                        .redeem()
                        .expect("service request");
                    for j in 0..sub.len() {
                        assert_blocks_bitmatch(
                            kernel,
                            n,
                            out.block(j),
                            references[ki].block(i * 3 + j),
                            &format!("submitter={w} {kernel} chunk={i} pos={j}"),
                        );
                    }
                }
            });
        }
    });
}

#[test]
fn tiny_queue_bound_throttles_without_deadlock() {
    let n = 9;
    // Queue bound of 4 positions against 4-position requests from 4
    // threads: at most one request is ever admitted at a time, every
    // other submitter blocks in `submit` — progress proves the worker
    // wakes blocked submitters as it drains.
    let service = small_service(random_table::<f32>(n, 0x404), 4);
    let pos = random_block::<f32>(64, 0x404 ^ 0xabcd);
    stress_service(&service, Kernel::Vgh, &pos, 4, 4);
    // An oversized request (8 positions > bound 4) is still admitted
    // once the service drains idle, instead of blocking forever.
    let big = random_block::<f32>(8, 0x404 ^ 0x1111);
    let reference = direct_batch(service.engine(), Kernel::Vgl, &big);
    let out = service.engine().make_batch_out(big.len());
    let (_, out, _) = service
        .submit(Kernel::Vgl, big, out)
        .redeem()
        .expect("oversized request");
    for j in 0..8 {
        assert_blocks_bitmatch(
            Kernel::Vgl,
            n,
            out.block(j),
            reference.block(j),
            &format!("oversized pos={j}"),
        );
    }
}

#[test]
fn chunks_of_empty_block_yield_nothing() {
    let empty = PosBlock::<f32>::new();
    assert_eq!(empty.chunks(4).count(), 0);
}

#[test]
fn chunks_cover_ragged_tail_exactly_once() {
    let pos = random_block::<f64>(10, 3);
    let chunks: Vec<_> = pos.chunks(4).collect();
    assert_eq!(
        chunks.iter().map(PosBlock::len).collect::<Vec<_>>(),
        vec![4, 4, 2]
    );
    let mut rebuilt = PosBlock::new();
    for c in &chunks {
        rebuilt.extend_from_block(c);
    }
    assert_eq!(rebuilt.streams(), pos.streams());
}

#[test]
fn chunk_size_at_or_above_len_is_one_whole_chunk() {
    let pos = random_block::<f32>(5, 9);
    for size in [5usize, 6, 100] {
        let chunks: Vec<_> = pos.chunks(size).collect();
        assert_eq!(chunks.len(), 1, "size={size}");
        assert_eq!(chunks[0].streams(), pos.streams(), "size={size}");
    }
}

#[test]
#[should_panic(expected = "chunk size must be positive")]
fn zero_chunk_size_panics() {
    let pos = random_block::<f32>(3, 1);
    let _ = pos.chunks(0).count();
}

/// A block whose positions cluster inside one octant of the domain, so
/// the router's majority vote classifies the whole block to a single
/// shard (the hot-shard case); `corner` picks which octant.
fn concentrated_block<T: Real>(ns: usize, corner: usize, seed: u64) -> PosBlock<T> {
    let mut rng = StdRng::seed_from_u64(seed);
    let lo = [
        if corner & 1 != 0 { 0.75 } else { 0.05 },
        if corner & 2 != 0 { 0.75 } else { 0.05 },
        if corner & 4 != 0 { 0.75 } else { 0.05 },
    ];
    (0..ns)
        .map(|_| {
            [
                T::from_f64(lo[0] + 0.15 * rng.random::<f64>()),
                T::from_f64(lo[1] + 0.15 * rng.random::<f64>()),
                T::from_f64(lo[2] + 0.15 * rng.random::<f64>()),
            ]
        })
        .collect()
}

fn routed_service<T: Real>(
    table: MultiCoefs<T>,
    routing: RoutingPolicy,
    queue_positions: usize,
) -> SpoService<T, BsplineSoA<T>> {
    SpoService::new(
        BsplineSoA::new(table),
        ServiceConfig {
            replicas: 2,
            max_batch: 32,
            max_wait: Duration::from_micros(200),
            queue_positions,
            routing,
            ..ServiceConfig::default()
        },
    )
}

/// Hot-shard stress: every submitter fires blocks concentrated in the
/// *same* octant at a 2-shard affinity service with a tight queue
/// bound, so the home queue saturates and the spill/steal paths run —
/// and the results must still bit-match the direct batch.
#[test]
fn hot_shard_spill_and_steal_stay_bit_identical() {
    let n = 16;
    let service = routed_service(
        random_table::<f32>(n, 0x5b11),
        RoutingPolicy::Affinity { domains: 2 },
        64,
    );
    let pos = concentrated_block::<f32>(96, 7, 0x5b11 ^ 0xabcd);
    stress_service(&service, Kernel::Vgh, &pos, 8, 6);
    let stats = service.stats();
    assert_eq!(stats.positions, 96);
    assert_eq!(service.n_shards(), 2);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Partition property: any chunking of any position block,
    /// submitted through the service (pipelined: all tickets issued
    /// before any is reaped), reassembles bit-for-bit into the direct
    /// big-batch result.
    #[test]
    fn any_partition_reassembles_to_the_direct_batch(
        n in 1usize..20,
        ns in 0usize..40,
        chunk in 1usize..12,
        seed in 0u64..1000,
    ) {
        let service = small_service(random_table::<f32>(n, seed), 4096);
        let pos = random_block::<f32>(ns, seed ^ 0x5eed);
        for kernel in Kernel::ALL {
            let reference = direct_batch(service.engine(), kernel, &pos);
            let tickets: Vec<_> = pos
                .chunks(chunk)
                .map(|sub| {
                    let out = service.engine().make_batch_out(sub.len());
                    service.submit(kernel, sub, out)
                })
                .collect();
            let mut at = 0usize;
            for (i, t) in tickets.into_iter().enumerate() {
                let (sub, out, _) = t.redeem().expect("service request");
                for j in 0..sub.len() {
                    assert_blocks_bitmatch(
                        kernel,
                        n,
                        out.block(j),
                        reference.block(at + j),
                        &format!("{kernel} chunk={i} pos={j}"),
                    );
                }
                at += sub.len();
            }
            prop_assert_eq!(at, pos.len());
        }
    }

    /// Routing property: for any policy (FIFO, single-domain affinity
    /// — the fallback — or 2/3-shard affinity), any mix of uniform and
    /// corner-concentrated blocks pipelined through the service
    /// reassembles bit-for-bit into the direct batch. Concentrated
    /// blocks exercise the majority-vote path, uniform blocks the
    /// content-hash tie-break, and the tight queue bound the spill and
    /// steal escape hatches; none of them may change *what* a request
    /// evaluates to, only *where* it queues.
    #[test]
    fn any_routing_decision_reassembles_to_the_direct_batch(
        policy_ix in 0usize..4,
        corner in 0usize..8,
        ns in 1usize..40,
        chunk in 1usize..12,
        queue_ix in 0usize..2,
        seed in 0u64..1000,
    ) {
        let policy = [
            RoutingPolicy::Fifo,
            RoutingPolicy::Affinity { domains: 1 },
            RoutingPolicy::Affinity { domains: 2 },
            RoutingPolicy::Affinity { domains: 3 },
        ][policy_ix];
        let queue_positions = [48usize, 4096][queue_ix];
        let n = 10;
        let service =
            routed_service(random_table::<f32>(n, seed), policy, queue_positions);
        // Interleave a concentrated block (majority vote) with a
        // uniform one (hash tie-break) in a single position stream.
        let mut pos = concentrated_block::<f32>(ns, corner, seed ^ 0x0c0c);
        pos.extend_from_block(&random_block::<f32>(ns / 2, seed ^ 0x5eed));
        let kernel = Kernel::ALL[(seed % 3) as usize];
        let reference = direct_batch(service.engine(), kernel, &pos);
        let tickets: Vec<_> = pos
            .chunks(chunk)
            .map(|sub| {
                let out = service.engine().make_batch_out(sub.len());
                service.submit(kernel, sub, out)
            })
            .collect();
        let mut at = 0usize;
        for (i, t) in tickets.into_iter().enumerate() {
            let (sub, out, _) = t.redeem().expect("service request");
            for j in 0..sub.len() {
                assert_blocks_bitmatch(
                    kernel,
                    n,
                    out.block(j),
                    reference.block(at + j),
                    &format!("{policy:?} {kernel} chunk={i} pos={j}"),
                );
            }
            at += sub.len();
        }
        prop_assert_eq!(at, pos.len());
    }
}

/// Teardown coverage (ISSUE 9 satellite): `Ticket::redeem_for` timeout
/// expiry must hand the claim back without losing the request, and the
/// eventual completion still bit-matches the direct batch.
#[test]
fn wait_for_timeout_expires_then_request_still_completes() {
    let n = 16;
    // One replica with a huge fuse target and a long fuse window: a
    // single small submission stays a partial batch, so the worker
    // sits in its coalescing wait and the ticket cannot complete
    // before `max_wait` elapses.
    let service = SpoService::new(
        BsplineSoA::new(random_table::<f32>(n, 0x7ea0)),
        ServiceConfig {
            replicas: 1,
            max_batch: 4096,
            max_wait: Duration::from_millis(800),
            queue_positions: 4096,
            ..ServiceConfig::default()
        },
    );
    let pos = random_block::<f32>(3, 0x7ea1);
    let reference = direct_batch(service.engine(), Kernel::Vgl, &pos);
    let out = service.engine().make_batch_out(pos.len());
    let ticket = service.submit(Kernel::Vgl, pos.clone(), out);

    // Expiry: far shorter than the fuse window.
    let start = std::time::Instant::now();
    let ticket = match ticket.redeem_for(Duration::from_millis(20)) {
        Err(f) => {
            // A wait-side timeout is typed, and the claim comes back
            // intact for a later redeem.
            assert_eq!(f.error, ServiceError::Timeout);
            f.ticket.expect("timeout hands the claim back")
        }
        Ok(_) => panic!("a partial batch cannot complete before max_wait"),
    };
    let waited = start.elapsed();
    assert!(
        waited >= Duration::from_millis(20),
        "expiry honoured the timeout, got {waited:?}"
    );
    assert!(!ticket.is_done(), "request still in flight after expiry");

    // The request was never lost: a second wait with a generous
    // deadline redeems it, bit-identical to the direct batch.
    let (got_pos, got_out, _at) = ticket
        .redeem_for(Duration::from_secs(30))
        .unwrap_or_else(|_| panic!("request must complete within the fuse window"));
    assert_eq!(got_pos.len(), 3);
    for j in 0..got_pos.len() {
        assert_blocks_bitmatch(
            Kernel::Vgl,
            n,
            got_out.block(j),
            reference.block(j),
            &format!("wait_for pos={j}"),
        );
    }
}

/// Teardown coverage (ISSUE 9 satellite): dropping the service with
/// requests still queued must evaluate and complete every ticket —
/// no deadlock, no lost buffers — without waiting out the fuse window.
#[test]
fn drop_with_queued_requests_completes_every_ticket() {
    let n = 16;
    // A single replica with an hour-long fuse window and a fuse target
    // nothing here reaches: submissions pile up as partial batches, so
    // at drop time the queue genuinely holds pending requests. Only
    // the shutdown path (not a timeout) can complete them promptly.
    let service = SpoService::new(
        BsplineSoA::new(random_table::<f64>(n, 0xd10b)),
        ServiceConfig {
            replicas: 1,
            max_batch: 1 << 20,
            max_wait: Duration::from_secs(3600),
            queue_positions: 1 << 20,
            ..ServiceConfig::default()
        },
    );
    let pos = random_block::<f64>(40, 0xd10c);
    let references: Vec<_> = Kernel::ALL
        .iter()
        .map(|&k| direct_batch(service.engine(), k, &pos))
        .collect();

    // Queue a mixed-kernel pile of requests; none can complete yet.
    let mut tickets = Vec::new();
    for (ki, &kernel) in Kernel::ALL.iter().enumerate() {
        for (ci, sub) in pos.chunks(7).enumerate() {
            let out = service.engine().make_batch_out(sub.len());
            tickets.push((ki, ci * 7, service.submit(kernel, sub, out)));
        }
    }

    let start = std::time::Instant::now();
    drop(service); // shutdown() drains the queue and joins the worker
    let elapsed = start.elapsed();
    assert!(
        elapsed < Duration::from_secs(60),
        "drop must not wait out the 1 h fuse window (took {elapsed:?})"
    );

    // Every ticket completes with evaluated, bit-identical results —
    // the drain ran the requests rather than abandoning the buffers.
    for (ki, at, ticket) in tickets {
        assert!(ticket.is_done(), "ticket completed by the drop drain");
        let (sub, out, _) = ticket.redeem().expect("drained request");
        for j in 0..sub.len() {
            assert_blocks_bitmatch(
                Kernel::ALL[ki],
                n,
                out.block(j),
                references[ki].block(at + j),
                &format!("post-drop kernel={} pos={}", Kernel::ALL[ki], at + j),
            );
        }
    }
}
