//! Property-based integration tests (proptest): layout equivalence and
//! physics invariants under randomized configurations.

use bspline::SpoEngine;
use bspline::{BsplineAoS, BsplineAoSoA, BsplineSoA};
use einspline::{basis, solve_clamped, solve_natural, solve_periodic, Grid1, MultiCoefs};
use miniqmc::distance::aos::DistanceTableAAAoS;
use miniqmc::distance::soa::DistanceTableAA;
use miniqmc::lattice::Lattice;
use miniqmc::particleset::ParticleSet;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn basis_partition_of_unity(t in 0.0f64..1.0) {
        let w = basis::weights(t);
        let sum: f64 = w.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-12);
        let d: f64 = basis::d_weights(t).iter().sum();
        prop_assert!(d.abs() < 1e-12);
    }

    #[test]
    fn periodic_solver_interpolates(data in prop::collection::vec(-10.0f64..10.0, 4..40)) {
        let coefs = solve_periodic(&data);
        for (i, f) in data.iter().enumerate() {
            let v = coefs[i] / 6.0 + coefs[i + 1] * 4.0 / 6.0 + coefs[i + 2] / 6.0;
            prop_assert!((v - f).abs() < 1e-8, "i={} v={} f={}", i, v, f);
        }
    }

    #[test]
    fn natural_solver_interpolates(data in prop::collection::vec(-5.0f64..5.0, 3..30)) {
        let coefs = solve_natural(&data);
        for (i, f) in data.iter().enumerate().take(data.len() - 1) {
            let v = coefs[i] / 6.0 + coefs[i + 1] * 4.0 / 6.0 + coefs[i + 2] / 6.0;
            prop_assert!((v - f).abs() < 1e-8);
        }
    }

    #[test]
    fn clamped_solver_hits_end_slopes(
        data in prop::collection::vec(-5.0f64..5.0, 4..20),
        s0 in -2.0f64..2.0,
        sn in -2.0f64..2.0,
    ) {
        let delta = 0.5;
        let c = solve_clamped(&data, s0, sn, delta);
        let n = data.len() - 1;
        let d_start = (-c[0] + c[2]) / (2.0 * delta);
        let d_end = (-c[n] + c[n + 2]) / (2.0 * delta);
        prop_assert!((d_start - s0).abs() < 1e-9);
        prop_assert!((d_end - sn).abs() < 1e-9);
    }

    #[test]
    fn engine_layouts_agree_on_random_tables(
        n in 1usize..40,
        nb in 1usize..40,
        seed in 0u64..1000,
        px in 0.0f32..1.0,
        py in 0.0f32..1.0,
        pz in 0.0f32..1.0,
    ) {
        let g = Grid1::periodic(0.0, 1.0, 5);
        let mut table = MultiCoefs::<f32>::new(g, g, g, n);
        table.fill_random(&mut StdRng::seed_from_u64(seed));
        let aos = BsplineAoS::new(table.clone());
        let soa = BsplineSoA::new(table.clone());
        let tiled = BsplineAoSoA::from_multi(&table, nb);
        let pos = [px, py, pz];
        let mut oa = aos.make_out();
        let mut os = soa.make_out();
        let mut ot = tiled.make_out();
        aos.vgh(pos, &mut oa);
        soa.vgh(pos, &mut os);
        tiled.vgh(pos, &mut ot);
        for k in 0..n {
            prop_assert!((oa.value(k) - os.value(k)).abs() < 2e-4);
            prop_assert_eq!(os.value(k), ot.value(k));
            prop_assert_eq!(os.hessian(k), ot.hessian(k));
        }
    }

    #[test]
    fn distance_tables_symmetric_and_consistent(
        seed in 0u64..500,
        n in 2usize..12,
        a in 1.5f64..4.0,
        c in 4.0f64..9.0,
    ) {
        let lat = Lattice::hexagonal(a, c);
        let mut rng = StdRng::seed_from_u64(seed);
        let ps = miniqmc::particleset::random_electrons(lat, n, &mut rng);
        let soa = DistanceTableAA::new(&ps);
        let aos = DistanceTableAAAoS::new(&ps);
        let rc = lat.wigner_seitz_radius();
        for i in 0..n {
            prop_assert_eq!(soa.distance(i, i), 0.0);
            for j in 0..n {
                prop_assert!((soa.distance(i, j) - soa.distance(j, i)).abs() < 1e-12);
                prop_assert!((soa.distance(i, j) - aos.distance(i, j)).abs() < 1e-10);
                if i != j {
                    // Minimum-image distances never exceed the cell
                    // diameter bound (2·R_ws is a loose upper bound only
                    // for the inscribed sphere; use lattice diagonal).
                    prop_assert!(soa.distance(i, j) > 0.0);
                    prop_assert!(soa.distance(i, j) < 2.0 * (a + c));
                }
            }
        }
        let _ = rc;
        let _ = ParticleSet::new("x", lat, &[[0.0; 3]]);
    }
}

// ---------------------------------------------------------------------------
// Threading-ablation substrate (ISSUE 4 satellite): direct property
// coverage for the static tile partition and the rayon stub's grained
// dynamic queue — the two scheduling modes the nested-threading
// ablation compares. Until now only their consumers were tested.

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `partition_tiles(m, nth)` is a balanced, contiguous, complete
    /// cover of `0..m` for any ragged combination — **only non-empty
    /// ranges**: the chunk count clamps to `m` when `nth > m`, and
    /// `m = 0` yields an empty partition (no empty work items, no
    /// division by zero), so nested block scheduling never spawns
    /// empty jobs.
    #[test]
    fn partition_tiles_is_a_balanced_cover(m in 0usize..200, nth in 1usize..64) {
        let ranges = bspline::parallel::partition_tiles(m, nth);
        prop_assert_eq!(ranges.len(), nth.min(m));
        if m == 0 {
            prop_assert!(ranges.is_empty());
            return;
        }
        prop_assert_eq!(ranges[0].0, 0);
        prop_assert_eq!(ranges.last().unwrap().1, m);
        for w in ranges.windows(2) {
            prop_assert_eq!(w[0].1, w[1].0); // contiguous
        }
        let sizes: Vec<usize> = ranges.iter().map(|(lo, hi)| hi - lo).collect();
        prop_assert!(sizes.iter().all(|&s| s > 0));
        let (mn, mx) = (
            *sizes.iter().min().unwrap(),
            *sizes.iter().max().unwrap(),
        );
        prop_assert!(mx - mn <= 1, "balanced: sizes {:?}", sizes);
        prop_assert_eq!(sizes.iter().sum::<usize>(), m);
    }

    /// The rayon stub's `with_min_len(grain)` dynamic queue processes
    /// every item exactly once for any (count, grain) combination —
    /// including a grain larger than the whole work list — and its
    /// mutations match the serial loop.
    #[test]
    fn rayon_stub_grained_queue_processes_each_item_once(
        n in 0usize..200,
        grain in 1usize..256,
    ) {
        use rayon::prelude::*;
        use std::sync::atomic::{AtomicUsize, Ordering};

        // Owned-items queue: count visits.
        let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        (0..n).collect::<Vec<usize>>()
            .into_par_iter()
            .with_min_len(grain)
            .for_each(|i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            });
        for (i, h) in hits.iter().enumerate() {
            prop_assert_eq!(h.load(Ordering::Relaxed), 1, "item {} visits", i);
        }

        // Mutable-slice queue (the `run_nested_dynamic` shape): the
        // indexed mutation matches the serial result.
        let mut data: Vec<usize> = vec![0; n];
        data.par_iter_mut()
            .with_min_len(grain)
            .enumerate()
            .for_each(|(i, x)| *x = 3 * i + 1);
        let expect: Vec<usize> = (0..n).map(|i| 3 * i + 1).collect();
        prop_assert_eq!(data, expect);
    }

    /// Dynamic-queue scheduling of the nested-threading driver agrees
    /// bit-for-bit with the static partition on ragged tile counts for
    /// any grain, including one exceeding the total work-item count.
    #[test]
    fn nested_dynamic_matches_static_for_any_grain(
        n_orb in 1usize..48,
        nb in 1usize..16,
        grain in 1usize..300,
        seed in 0u64..200,
    ) {
        let g = Grid1::periodic(0.0, 1.0, 5);
        let mut table = MultiCoefs::<f32>::new(g, g, g, n_orb);
        table.fill_random(&mut StdRng::seed_from_u64(seed));
        let engine = BsplineAoSoA::from_multi(&table, nb);
        let positions = vec![bspline::PosBlock::from_positions(&[
            [0.2f32, 0.7, 0.4],
            [0.9, 0.1, 0.6],
        ])];

        let mut expect = vec![engine.make_out()];
        bspline::parallel::run_nested(
            &engine,
            bspline::Kernel::Vgh,
            &mut expect,
            &positions,
            3,
        );
        let mut got = vec![engine.make_out()];
        bspline::parallel::run_nested_dynamic(
            &engine,
            bspline::Kernel::Vgh,
            &mut got,
            &positions,
            grain,
        );
        for k in 0..n_orb {
            prop_assert_eq!(got[0].value(k), expect[0].value(k), "orb {}", k);
            prop_assert_eq!(got[0].hessian(k), expect[0].hessian(k), "orb {}", k);
        }
    }
}
