//! Property tests for the single-electron fast path: for every layout
//! engine and precision adapter, `v_one`/`vgl_one`/`vgh_one` through a
//! [`MoveContext`] must *bit-match* the scalar `v`/`vgl`/`vgh` calls at
//! the same positions — on every SIMD backend, on a cache miss (fresh
//! propose) and on a cache hit (the accept-side call reusing the
//! propose-side locate/weights), across accept/reject sequences, and at
//! positions sitting exactly on grid-cell boundaries. The context only
//! caches work the scalar paths recompute identically, so any bit
//! difference is a real defect, not an accumulation-order artifact.

use bspline::blocked::BlockedEngine;
use bspline::precision::{MixedEngine, MixedOut, WidenOut};
use bspline::simd::{with_backend, Backend};
use bspline::{
    BsplineAoS, BsplineAoSoA, BsplineSoA, MoveContext, SpoEngine,
};
use einspline::{Grid1, MultiCoefs, Real};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Grid points per axis of every test table (periodic on [0, 1)).
const NX: usize = 5;

fn random_table<T: Real>(n: usize, seed: u64) -> MultiCoefs<T> {
    let g = Grid1::periodic(0.0, 1.0, NX);
    let mut table = MultiCoefs::<T>::new(g, g, g, n);
    table.fill_random(&mut StdRng::seed_from_u64(seed));
    table
}

fn random_positions<T: Real>(ns: usize, seed: u64) -> Vec<[T; 3]> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..ns)
        .map(|_| {
            [
                T::from_f64(rng.random::<f64>()),
                T::from_f64(rng.random::<f64>()),
                T::from_f64(rng.random::<f64>()),
            ]
        })
        .collect()
}

/// Uniform accessor view over the walker output types (and the mixed
/// adapter's widened view), so one checker covers every engine.
trait View<T> {
    fn v_at(&self, k: usize) -> T;
    fn g_at(&self, k: usize) -> [T; 3];
    fn l_at(&self, k: usize) -> T;
    fn h_at(&self, k: usize) -> [T; 6];
}

macro_rules! impl_view {
    ($t:ty) => {
        impl<T: Real> View<T> for $t {
            fn v_at(&self, k: usize) -> T {
                self.value(k)
            }
            fn g_at(&self, k: usize) -> [T; 3] {
                self.gradient(k)
            }
            fn l_at(&self, k: usize) -> T {
                self.laplacian(k)
            }
            fn h_at(&self, k: usize) -> [T; 6] {
                self.hessian(k)
            }
        }
    };
}
impl_view!(bspline::WalkerAoS<T>);
impl_view!(bspline::WalkerSoA<T>);
impl_view!(bspline::WalkerTiled<T>);

impl<O: WidenOut> View<f64> for MixedOut<O>
where
    O::Wide: View<f64>,
{
    fn v_at(&self, k: usize) -> f64 {
        self.wide().v_at(k)
    }
    fn g_at(&self, k: usize) -> [f64; 3] {
        self.wide().g_at(k)
    }
    fn l_at(&self, k: usize) -> f64 {
        self.wide().l_at(k)
    }
    fn h_at(&self, k: usize) -> [f64; 6] {
        self.wide().h_at(k)
    }
}

/// Replay `positions` as a propose/accept/reject move sequence through
/// one shared [`MoveContext`] (the per-walker usage) and assert every
/// one-move output bit-matches the scalar call at the same position.
/// Move `i` proposes with `v_one`, then: `i % 3 == 0` accepts via the
/// cached-weights `vgl_one`, `i % 3 == 1` accepts via `vgh_one`, and
/// `i % 3 == 2` rejects (nothing else runs, and the *next* propose
/// replaces the stale cache).
fn check_moves<T: Real, E: SpoEngine<T>>(
    engine: &E,
    n: usize,
    positions: &[[T; 3]],
    ctx_label: &str,
) where
    E::Out: View<T>,
{
    let mut ctx = MoveContext::new();
    let mut one = engine.make_out();
    let mut reference = engine.make_out();
    for (i, &p) in positions.iter().enumerate() {
        engine.v_one(&mut ctx, p, &mut one);
        engine.v(p, &mut reference);
        for k in 0..n {
            assert_eq!(one.v_at(k), reference.v_at(k), "{ctx_label} move {i} V v[{k}]");
        }
        match i % 3 {
            0 => {
                // Accept: VGL at the same position — a context cache hit.
                engine.vgl_one(&mut ctx, p, &mut one);
                engine.vgl(p, &mut reference);
                for k in 0..n {
                    assert_eq!(
                        one.v_at(k),
                        reference.v_at(k),
                        "{ctx_label} move {i} VGL v[{k}]"
                    );
                    assert_eq!(
                        one.g_at(k),
                        reference.g_at(k),
                        "{ctx_label} move {i} VGL g[{k}]"
                    );
                    assert_eq!(
                        one.l_at(k),
                        reference.l_at(k),
                        "{ctx_label} move {i} VGL l[{k}]"
                    );
                }
            }
            1 => {
                engine.vgh_one(&mut ctx, p, &mut one);
                engine.vgh(p, &mut reference);
                for k in 0..n {
                    assert_eq!(
                        one.v_at(k),
                        reference.v_at(k),
                        "{ctx_label} move {i} VGH v[{k}]"
                    );
                    assert_eq!(
                        one.g_at(k),
                        reference.g_at(k),
                        "{ctx_label} move {i} VGH g[{k}]"
                    );
                    assert_eq!(
                        one.h_at(k),
                        reference.h_at(k),
                        "{ctx_label} move {i} VGH h[{k}]"
                    );
                }
            }
            _ => {} // reject
        }
    }
}

/// Run [`check_moves`] for every engine family at both storage
/// precisions plus the mixed adapter, under the current backend.
fn check_all_engines(n: usize, nb: usize, seed: u64, ns: usize, label: &str) {
    let table = random_table::<f32>(n, seed);
    let pos = random_positions::<f32>(ns, seed ^ 0x0e0e);
    check_moves(&BsplineAoS::new(table.clone()), n, &pos, &format!("{label} AoS f32"));
    check_moves(&BsplineSoA::new(table.clone()), n, &pos, &format!("{label} SoA f32"));
    check_moves(
        &BsplineAoSoA::from_multi(&table, nb),
        n,
        &pos,
        &format!("{label} AoSoA f32"),
    );
    // Tiny budget forces a multi-block decomposition for any n > 1.
    check_moves(
        &BlockedEngine::from_multi(&table, 1),
        n,
        &pos,
        &format!("{label} Blocked f32"),
    );

    let table64 = random_table::<f64>(n, seed);
    let pos64 = random_positions::<f64>(ns, seed ^ 0x0e0e);
    check_moves(
        &BsplineSoA::new(table64.clone()),
        n,
        &pos64,
        &format!("{label} SoA f64"),
    );
    // Mixed adapter: f64 positions narrowed once per move, inner f32
    // fast path, widened delivery. The scalar comparator is the same
    // adapter's `v`/`vgl`/`vgh`, so the parity is about the MoveContext
    // plumbing (incl. the lazily built f32 sub-context), not precision.
    check_moves(
        &MixedEngine::soa(&table64),
        n,
        &pos64,
        &format!("{label} Mixed(SoA)"),
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn one_move_bitmatches_scalar_for_all_engines_and_backends(
        n in 1usize..24,
        nb in 1usize..24,
        seed in 0u64..1000,
        ns in 1usize..7,
    ) {
        for backend in Backend::available() {
            with_backend(backend, || {
                check_all_engines(n, nb, seed, ns, backend.name());
            });
        }
    }
}

/// Positions sitting exactly on grid-cell boundaries (knots), the cell
/// upper edge, and the domain wrap point — where `locate` is most
/// sensitive. Both paths run the same locate on the same floats, so
/// they must still agree bit-for-bit.
#[test]
fn grid_cell_boundary_positions_bitmatch() {
    let mut boundary: Vec<[f32; 3]> = Vec::new();
    for i in 0..=NX {
        let u = i as f32 / NX as f32;
        boundary.push([u, 0.5, u]);
        boundary.push([0.0, u, 1.0 - u]);
    }
    boundary.push([f32::EPSILON, 1.0 - f32::EPSILON, 0.999_999_9]);
    let n = 13;
    let table = random_table::<f32>(n, 77);
    for backend in Backend::available() {
        with_backend(backend, || {
            check_moves(
                &BsplineAoS::new(table.clone()),
                n,
                &boundary,
                &format!("{} AoS boundary", backend.name()),
            );
            check_moves(
                &BsplineSoA::new(table.clone()),
                n,
                &boundary,
                &format!("{} SoA boundary", backend.name()),
            );
            check_moves(
                &BsplineAoSoA::from_multi(&table, 4),
                n,
                &boundary,
                &format!("{} AoSoA boundary", backend.name()),
            );
        });
    }
}

/// The accept-side call must be a genuine cache hit, and a rejected
/// move's stale entry must be replaced (not reused) by the next
/// propose at a different position.
#[test]
fn context_caches_across_accept_and_replaces_after_reject() {
    let n = 9;
    let table = random_table::<f32>(n, 5);
    let soa = BsplineSoA::new(table);
    let mut ctx = MoveContext::new();
    let mut out = soa.make_out();

    let p = [0.31f32, 0.74, 0.12];
    soa.v_one(&mut ctx, p, &mut out);
    assert!(ctx.is_cached(p), "propose must populate the cache");
    soa.vgl_one(&mut ctx, p, &mut out);
    assert!(ctx.is_cached(p), "accept-side reuse must keep the entry");

    // Reject: the walker proposes somewhere else next; the old entry
    // must be replaced by the new position's locate.
    let q = [0.91f32, 0.02, 0.55];
    soa.v_one(&mut ctx, q, &mut out);
    assert!(ctx.is_cached(q) && !ctx.is_cached(p));

    // And the replacement result is still exactly the scalar one.
    let mut reference = soa.make_out();
    soa.v(q, &mut reference);
    for k in 0..n {
        assert_eq!(out.value(k), reference.value(k));
    }
}
