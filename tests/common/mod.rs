//! Shared test-support helpers for the workspace integration tests.
//!
//! Every root integration test binary that needs tolerance machinery
//! declares `mod common;` and uses these helpers instead of re-deriving
//! ULP arithmetic or ad-hoc tolerances per file. Three tiers:
//!
//! * [`ulp_distance_f32`] / [`ulp_distance_f64`] — exact
//!   units-in-the-last-place distance for bit-level parity assertions;
//! * [`assert_rel_close_f32`] / [`assert_rel_close_f64`] — scale-aware
//!   relative tolerance (`tol · max(|a|, |b|, 1)`) for cross-layout /
//!   cross-precision agreement where accumulation order differs;
//! * [`BackendTolerance`] — the SIMD parity contract: fused backends
//!   (AVX2+FMA, the scalar pack) must match the scalar reference to
//!   ≤ 2 ULP, the non-FMA SSE2 backend to a scale-aware tolerance.

// Each integration-test binary compiles its own copy of this module and
// uses a subset of it.
#![allow(dead_code)]

use bspline::simd::Backend;
use einspline::Real;

/// Distance in units-in-the-last-place between two finite `f32`s.
pub fn ulp_distance_f32(a: f32, b: f32) -> u32 {
    let to_ordered = |x: f32| {
        let bits = x.to_bits() as i32;
        if bits < 0 {
            i32::MIN.wrapping_sub(bits)
        } else {
            bits
        }
    };
    to_ordered(a).abs_diff(to_ordered(b))
}

/// Distance in units-in-the-last-place between two finite `f64`s.
pub fn ulp_distance_f64(a: f64, b: f64) -> u64 {
    let to_ordered = |x: f64| {
        let bits = x.to_bits() as i64;
        if bits < 0 {
            i64::MIN.wrapping_sub(bits)
        } else {
            bits
        }
    };
    to_ordered(a).abs_diff(to_ordered(b))
}

/// Assert `|a − b| ≤ tol · max(|a|, |b|, 1)` — the scale-aware relative
/// tolerance used wherever two evaluations accumulate in a different
/// (but equally valid) order.
pub fn assert_rel_close_f32(a: f32, b: f32, tol: f32, ctx: &str) {
    let bound = tol * a.abs().max(b.abs()).max(1.0);
    assert!((a - b).abs() <= bound, "{ctx}: {a} vs {b} (tol {tol:e})");
}

/// `f64` twin of [`assert_rel_close_f32`].
pub fn assert_rel_close_f64(a: f64, b: f64, tol: f64, ctx: &str) {
    let bound = tol * a.abs().max(b.abs()).max(1.0);
    assert!((a - b).abs() <= bound, "{ctx}: {a} vs {b} (tol {tol:e})");
}

/// Per-backend tolerance contract of the SIMD micro-kernels, shared by
/// the parity and precision suites (documented in `bspline::simd`):
/// backends with a fused `mul_add` perform the bit-identical
/// elementwise chain and must match to ≤ 2 ULP; SSE2 models a pre-FMA
/// machine and is bounded by a scale-aware tolerance instead.
pub trait BackendTolerance: Real {
    /// Assert `got` matches the scalar-reference `want` under
    /// `backend`'s tolerance contract.
    fn assert_close(backend: Backend, want: Self, got: Self, ctx: &str);
}

impl BackendTolerance for f32 {
    fn assert_close(backend: Backend, want: Self, got: Self, ctx: &str) {
        if backend.is_fused() {
            assert!(
                ulp_distance_f32(want, got) <= 2,
                "{ctx} [{backend}]: {want} vs {got} ({} ulp)",
                ulp_distance_f32(want, got)
            );
        } else {
            assert_rel_close_f32(want, got, 1e-4, &format!("{ctx} [{backend}]"));
        }
    }
}

impl BackendTolerance for f64 {
    fn assert_close(backend: Backend, want: Self, got: Self, ctx: &str) {
        if backend.is_fused() {
            assert!(
                ulp_distance_f64(want, got) <= 2,
                "{ctx} [{backend}]: {want} vs {got} ({} ulp)",
                ulp_distance_f64(want, got)
            );
        } else {
            assert_rel_close_f64(want, got, 1e-12, &format!("{ctx} [{backend}]"));
        }
    }
}
