//! Workspace-wiring smoke test: every member crate is reachable (both
//! directly and through the `qmc_repro` umbrella facade), and the three
//! engine layouts built from one shared `MultiCoefs` table agree on VGH.

mod common;

use bspline::{BsplineAoS, BsplineAoSoA, BsplineSoA, SpoEngine};
use einspline::{Grid1, MultiCoefs};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn engines_from_one_shared_table_agree_on_vgh() {
    let n = 40;
    let g = Grid1::periodic(0.0, 1.0, 8);
    let mut table = MultiCoefs::<f32>::new(g, g, g, n);
    table.fill_random(&mut StdRng::seed_from_u64(2017));

    let aos = BsplineAoS::new(table.clone());
    let soa = BsplineSoA::new(table.clone());
    let tiled = BsplineAoSoA::from_multi(&table, 16);

    let mut out_a = aos.make_out();
    let mut out_s = soa.make_out();
    let mut out_t = tiled.make_out();
    for pos in [[0.3f32, 0.7, 0.1], [0.0, 0.5, 0.999], [0.25, 0.25, 0.25]] {
        aos.vgh(pos, &mut out_a);
        soa.vgh(pos, &mut out_s);
        tiled.vgh(pos, &mut out_t);
        for orb in 0..n {
            // AoS accumulates in a different order: tolerance, not
            // bit-equality. SoA vs AoSoA run the identical plane kernel.
            common::assert_rel_close_f32(
                out_a.value(orb),
                out_s.value(orb),
                2e-4,
                &format!("orb {orb}: AoS vs SoA value"),
            );
            assert_eq!(out_s.value(orb), out_t.value(orb), "orb {orb}");
            for d in 0..3 {
                common::assert_rel_close_f32(
                    out_a.gradient(orb)[d],
                    out_s.gradient(orb)[d],
                    2e-2,
                    &format!("orb {orb} d={d}: AoS vs SoA gradient"),
                );
            }
            assert_eq!(out_s.hessian(orb), out_t.hessian(orb), "orb {orb}");
        }
    }
}

#[test]
fn umbrella_facade_reaches_every_member_crate() {
    // einspline + bspline through the facade re-exports.
    let g = qmc_repro::einspline::Grid1::periodic(0.0, 1.0, 6);
    let mut table = qmc_repro::einspline::MultiCoefs::<f32>::new(g, g, g, 8);
    table.fill_random(&mut StdRng::seed_from_u64(7));
    let engine = qmc_repro::bspline::BsplineAoSoA::from_multi(&table, 4);
    let mut out = engine.make_out();
    engine.vgh([0.4, 0.2, 0.9], &mut out);
    assert!(out.value(3).is_finite());

    // qmc-bench workload helpers feed the same engines.
    let wl = qmc_repro::qmc_bench::workload::coefficients(8, (6, 6, 6), 3);
    assert_eq!(wl.n_splines(), table.n_splines());

    // cachesim platforms and the roofline model agree on basic shape.
    let knl = qmc_repro::cachesim::Platform::knl();
    let cost = qmc_repro::roofline::kernel_cost(
        qmc_repro::bspline::Kernel::Vgh,
        qmc_repro::bspline::Layout::AoSoA,
        512,
    );
    assert!(cost.flops > 0.0 && cost.cache_ai() > 0.0);
    let roof = qmc_repro::roofline::Roofline::for_platform(&knl);
    assert!(roof.ridge() > 0.0);

    // miniqmc: a tiny CORAL system builds and reports a consistent size.
    let sys = qmc_repro::miniqmc::synthetic::CoralSystem::new(1, 1, 1, (8, 8, 8));
    assert!(sys.n_electrons() > 0);
}
