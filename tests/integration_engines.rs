//! Cross-crate integration: fitted orbitals (einspline solver pipeline)
//! evaluated through every engine layout and every kernel must agree,
//! and must match the scalar tensor-product reference.

mod common;

use bspline::SpoEngine;
use bspline::{BsplineAoS, BsplineAoSoA, BsplineSoA, Kernel};
use einspline::{Grid1, MultiCoefs, Spline3};
use miniqmc::synthetic::synthetic_orbitals;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn fitted_table(n: usize, ng: usize, seed: u64) -> MultiCoefs<f64> {
    let g = Grid1::periodic(0.0, 1.0, ng);
    synthetic_orbitals::<f64>(g, g, g, n, 4, seed)
}

#[test]
fn all_layouts_agree_on_fitted_orbitals() {
    let n = 24;
    let table = fitted_table(n, 10, 31);
    let aos = BsplineAoS::new(table.clone());
    let soa = BsplineSoA::new(table.clone());
    let tiled = BsplineAoSoA::from_multi(&table, 8);
    let mut out_a = aos.make_out();
    let mut out_s = soa.make_out();
    let mut out_t = tiled.make_out();
    let mut rng = StdRng::seed_from_u64(5);
    for _ in 0..12 {
        let pos = [rng.random::<f64>(), rng.random::<f64>(), rng.random::<f64>()];
        for k in Kernel::ALL {
            aos.eval(k, pos, &mut out_a);
            soa.eval(k, pos, &mut out_s);
            tiled.eval(k, pos, &mut out_t);
        }
        for orb in 0..n {
            common::assert_rel_close_f64(
                out_a.value(orb),
                out_s.value(orb),
                1e-10,
                &format!("orb {orb}: AoS vs SoA value"),
            );
            assert_eq!(out_s.value(orb), out_t.value(orb));
            let (ga, gs, gt) = (
                out_a.gradient(orb),
                out_s.gradient(orb),
                out_t.gradient(orb),
            );
            for d in 0..3 {
                common::assert_rel_close_f64(ga[d], gs[d], 1e-8, &format!("grad d={d}"));
                assert_eq!(gs[d], gt[d]);
            }
            common::assert_rel_close_f64(
                out_a.hessian_trace(orb),
                out_s.hessian_trace(orb),
                1e-7,
                &format!("orb {orb}: hessian trace"),
            );
            // VGL Laplacian consistent with VGH trace.
            common::assert_rel_close_f64(
                out_s.laplacian(orb),
                out_s.hessian_trace(orb),
                1e-7,
                &format!("orb={orb}: VGL laplacian vs VGH trace"),
            );
        }
    }
}

#[test]
fn multi_engine_matches_scalar_spline_reference() {
    let ng = 10;
    let g = Grid1::periodic(0.0, 1.0, ng);
    // Build one known orbital directly and through the multi-table.
    let mut data = vec![0.0f64; ng * ng * ng];
    for (i, d) in data.iter_mut().enumerate() {
        *d = ((i % 17) as f64 * 0.41).sin() + 0.1 * (i as f64 * 0.003).cos();
    }
    let reference = Spline3::<f64>::interpolate(g, g, g, &data);
    let mut table = MultiCoefs::<f64>::new(g, g, g, 3);
    table.set_orbital(1, &reference);
    let soa = BsplineSoA::new(table);
    let mut out = soa.make_out();
    let mut rng = StdRng::seed_from_u64(77);
    for _ in 0..20 {
        let p = [rng.random::<f64>(), rng.random::<f64>(), rng.random::<f64>()];
        soa.vgh(p, &mut out);
        let expect = reference.vgh(p[0], p[1], p[2]);
        common::assert_rel_close_f64(out.value(1), expect.v, 1e-12, "value");
        let grad = out.gradient(1);
        for (g, e) in grad.iter().zip(&expect.g) {
            common::assert_rel_close_f64(*g, *e, 1e-10, "gradient");
        }
        let h = out.hessian(1);
        for (hv, e) in h.iter().zip(&expect.h) {
            common::assert_rel_close_f64(*hv, *e, 1e-9, "hessian");
        }
        // Empty orbital slots stay exactly zero.
        assert_eq!(out.value(0), 0.0);
        assert_eq!(out.value(2), 0.0);
    }
}

#[test]
fn nested_parallel_execution_is_deterministic() {
    let n = 32;
    let table = fitted_table(n, 8, 13);
    let tiled = BsplineAoSoA::from_multi(&table, 8);
    let positions: Vec<bspline::PosBlock<f64>> = vec![
        bspline::PosBlock::from_positions(&[[0.1, 0.5, 0.9], [0.3, 0.3, 0.3]]),
        bspline::PosBlock::from_positions(&[[0.7, 0.2, 0.6], [0.9, 0.9, 0.1]]),
    ];
    let run = |nth: usize| -> Vec<f64> {
        let mut walkers: Vec<_> = (0..2).map(|_| tiled.make_out()).collect();
        bspline::parallel::run_nested(
            &tiled,
            Kernel::Vgh,
            &mut walkers,
            &positions,
            nth,
        );
        walkers
            .iter()
            .flat_map(|w| (0..n).map(|k| w.value(k)).collect::<Vec<_>>())
            .collect()
    };
    let serial = run(1);
    for nth in [2, 4, 8] {
        assert_eq!(serial, run(nth), "nth={nth}");
    }
}
