//! End-to-end wavefunction integration: the full Slater–Jastrow VMC
//! pipeline on a graphite cell, checking the Monte Carlo contract that
//! every kernel the paper optimizes participates in.

use miniqmc::drivers::profile::Category;
use miniqmc::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn build_wf(seed: u64) -> TrialWaveFunction<f64> {
    let sys = CoralSystem::new(1, 1, 1, (10, 10, 12));
    let spo = SpoSet::new(sys.orbitals::<f64>(seed), sys.lattice);
    let electrons = random_electrons(
        sys.lattice,
        sys.n_electrons(),
        &mut StdRng::seed_from_u64(seed + 100),
    );
    let rc = sys.lattice.wigner_seitz_radius() * 0.9;
    TrialWaveFunction::new(
        spo,
        &sys.ions,
        electrons,
        BsplineFunctor::rpa_like(0.3, 1.0, rc, 24),
        BsplineFunctor::rpa_like(0.5, 1.2, rc, 24),
    )
}

#[test]
fn vmc_acceptance_in_physical_range() {
    let mut wf = build_wf(1);
    let res = run_vmc(
        &mut wf,
        &VmcConfig {
            n_steps: 5,
            step_size: 0.4,
            seed: 2,
        },
    );
    assert!(
        res.acceptance > 0.2 && res.acceptance < 0.999,
        "acceptance {}",
        res.acceptance
    );
}

#[test]
fn tracked_log_psi_matches_recompute_after_vmc() {
    let mut wf = build_wf(3);
    let res = run_vmc(
        &mut wf,
        &VmcConfig {
            n_steps: 4,
            step_size: 0.5,
            seed: 9,
        },
    );
    let fresh = wf.evaluate_log();
    assert!(
        (res.log_psi - fresh).abs() < 1e-6,
        "incremental {} vs fresh {fresh}",
        res.log_psi
    );
}

#[test]
fn profile_shares_sum_to_one_and_cover_hot_kernels() {
    let mut wf = build_wf(5);
    let res = run_vmc(&mut wf, &VmcConfig::default());
    let total: f64 = Category::ALL
        .iter()
        .map(|&c| res.profile.percent(c))
        .sum();
    assert!((total - 100.0).abs() < 1e-6);
    for cat in [Category::Bspline, Category::Distance, Category::Jastrow] {
        assert!(res.profile.percent(cat) > 1.0, "{cat} suspiciously small");
    }
}

#[test]
fn larger_step_size_lowers_acceptance() {
    let small = run_vmc(
        &mut build_wf(7),
        &VmcConfig {
            n_steps: 3,
            step_size: 0.1,
            seed: 4,
        },
    );
    let large = run_vmc(
        &mut build_wf(7),
        &VmcConfig {
            n_steps: 3,
            step_size: 2.5,
            seed: 4,
        },
    );
    assert!(
        small.acceptance > large.acceptance,
        "{} vs {}",
        small.acceptance,
        large.acceptance
    );
}
