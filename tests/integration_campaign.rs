//! Campaign crash-recovery conformance suite (ISSUE 9 tentpole): a DMC
//! campaign resumed from a checkpoint must be **the run that would have
//! happened without the interruption** — bit-identical walker
//! populations, mixed estimators, generation statistics and RNG
//! streams — and damaged checkpoints (torn writes, bit flips) must be
//! detected by CRC with fallback to the last good frame.
//!
//! Covered here:
//!
//! 1. proptest: for any seed × population × checkpoint interval × kill
//!    point, kill + resume reproduces the uninterrupted golden run
//!    exactly (synthetic propagator, so thousands of generations are
//!    cheap);
//! 2. proptest: a torn or bit-flipped checkpoint write is rejected by
//!    the CRC scan, recovery falls back to the last valid generation,
//!    and the resumed run still matches golden bit-for-bit;
//! 3. the same kill-resume equivalence on the *real* per-electron
//!    wavefunction path (`WalkerPropagator` over graphite walkers):
//!    electron positions, estimators and stats all match, proving the
//!    rebuild-from-positions contract erases incremental rounding
//!    history at checkpoint boundaries;
//! 4. recovery edge cases: kill before the first checkpoint (fresh
//!    restart must equal golden), and an empty/corrupt-only store.

use std::path::PathBuf;

use miniqmc::campaign::{
    BitFlip, Campaign, CampaignConfig, CampaignFaultPlan, CheckpointStore, GenStats, Propagator,
    RunOutcome, SyntheticPropagator, TornWrite, WalkerPropagator,
};
use miniqmc::drivers::dmc::DmcConfig;
use miniqmc::prelude::*;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn dmc_cfg(pop: usize, seed: u64) -> DmcConfig {
    DmcConfig {
        target_population: pop,
        tau: 0.05,
        feedback: 1.0,
        max_ratio: 4.0,
        seed,
    }
}

fn synthetic(pop: usize, seed: u64) -> Campaign<SyntheticPropagator> {
    Campaign::new(
        dmc_cfg(pop, seed),
        0.2,
        SyntheticPropagator::new(pop, seed ^ 0x5EED, 0.4),
        8,
    )
}

/// Blank propagator handed to `decode`/`resume_latest`; its state is
/// overwritten by the checkpoint.
fn blank(pop: usize) -> SyntheticPropagator {
    SyntheticPropagator::new(pop, 1, 0.0)
}

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("qmc-campaign-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Exact equality, down to the bit patterns of every float.
fn assert_stats_bitmatch(golden: &[GenStats], resumed: &[GenStats], ctx: &str) {
    assert_eq!(golden.len(), resumed.len(), "{ctx}: stats length");
    for (g, r) in golden.iter().zip(resumed) {
        assert_eq!(g.generation, r.generation, "{ctx}: generation");
        assert_eq!(g.population, r.population, "{ctx}: population");
        assert_eq!(g.births, r.births, "{ctx}: births");
        assert_eq!(g.deaths, r.deaths, "{ctx}: deaths");
        assert_eq!(
            g.e_mixed.to_bits(),
            r.e_mixed.to_bits(),
            "{ctx}: e_mixed bits @ gen {}",
            g.generation
        );
        assert_eq!(
            g.trial_energy.to_bits(),
            r.trial_energy.to_bits(),
            "{ctx}: trial_energy bits @ gen {}",
            g.generation
        );
        assert_eq!(
            g.total_weight.to_bits(),
            r.total_weight.to_bits(),
            "{ctx}: total_weight bits @ gen {}",
            g.generation
        );
    }
}

fn assert_synthetic_bitmatch(
    a: &Campaign<SyntheticPropagator>,
    b: &Campaign<SyntheticPropagator>,
    ctx: &str,
) {
    assert_eq!(a.generation(), b.generation(), "{ctx}: generation");
    // DmcSnapshot derives PartialEq over ids/ages (exact) and weights;
    // compare weights and the RNG state by bits explicitly as well.
    let (sa, sb) = (a.population().snapshot(), b.population().snapshot());
    assert_eq!(sa.rng_state, sb.rng_state, "{ctx}: rng state");
    assert_eq!(sa.next_id, sb.next_id, "{ctx}: next id");
    assert_eq!(
        sa.trial_energy.to_bits(),
        sb.trial_energy.to_bits(),
        "{ctx}: trial energy bits"
    );
    assert_eq!(sa.walkers.len(), sb.walkers.len(), "{ctx}: population");
    for (wa, wb) in sa.walkers.iter().zip(&sb.walkers) {
        assert_eq!(wa.id, wb.id, "{ctx}: walker id");
        assert_eq!(wa.age, wb.age, "{ctx}: walker age");
        assert_eq!(
            wa.weight.to_bits(),
            wb.weight.to_bits(),
            "{ctx}: walker weight bits"
        );
    }
    let xa: Vec<u64> = a.propagator().xs().iter().map(|x| x.to_bits()).collect();
    let xb: Vec<u64> = b.propagator().xs().iter().map(|x| x.to_bits()).collect();
    assert_eq!(xa, xb, "{ctx}: propagator coordinates");
    let ra: Vec<GenStats> = a.stats().iter().copied().collect();
    let rb: Vec<GenStats> = b.stats().iter().copied().collect();
    assert_stats_bitmatch(&ra, &rb, &format!("{ctx}: stats ring"));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn resume_is_bit_identical_to_uninterrupted_run(
        seed in 0u64..10_000,
        pop in 2usize..40,
        interval in 1u64..6,
        kill in 1u64..18,
    ) {
        let generations = 18u64;

        // Golden: uninterrupted, no checkpointing at all.
        let mut golden = synthetic(pop, seed);
        let golden_report = golden
            .run(&CampaignConfig::new(generations, 0), None)
            .expect("golden run");
        prop_assert_eq!(golden_report.outcome, RunOutcome::Completed);

        // Victim: checkpointing every `interval`, killed after `kill`.
        let dir = fresh_dir("bitident");
        let mut store = CheckpointStore::new(&dir).expect("store");
        let mut victim = synthetic(pop, seed);
        let mut cfg = CampaignConfig::new(generations, interval);
        cfg.faults = CampaignFaultPlan::kill_at(kill);
        let victim_report = victim.run(&cfg, Some(&mut store)).expect("victim run");
        prop_assert_eq!(victim_report.outcome, RunOutcome::Killed { generation: kill });
        drop(victim); // the process died; only the disk survives

        // Resume from disk (or start fresh if the kill landed before
        // the first checkpoint) and finish the campaign.
        let mut resumed = match Campaign::resume_latest(&store, blank(pop)).expect("scan") {
            Some(c) => c,
            None => {
                prop_assert!(kill < interval, "a checkpoint must exist once interval ≤ kill");
                synthetic(pop, seed)
            }
        };
        let resume_gen = resumed.generation();
        prop_assert_eq!(resume_gen, (kill / interval) * interval);
        let resumed_report = resumed
            .run(&CampaignConfig::new(generations, interval), Some(&mut store))
            .expect("resumed run");
        prop_assert_eq!(resumed_report.outcome, RunOutcome::Completed);

        assert_synthetic_bitmatch(&golden, &resumed, "final state");
        assert_stats_bitmatch(
            &golden_report.stats[resume_gen as usize..],
            &resumed_report.stats,
            "post-resume generations",
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn damaged_checkpoints_fall_back_to_last_good(
        seed in 0u64..10_000,
        pop in 2usize..24,
        bad_write in 0usize..8,
        keep_frac in 0.0f64..1.0,
        flip_not_tear in 0u64..2,
    ) {
        let generations = 12u64;
        // Die immediately after the damaged write, so the damaged frame
        // is the *newest* on disk and recovery must fall back past it.
        let kill = bad_write as u64 + 1;

        let mut golden = synthetic(pop, seed);
        let golden_report = golden
            .run(&CampaignConfig::new(generations, 0), None)
            .expect("golden run");

        // Victim checkpoints every generation; write `bad_write` (the
        // checkpoint of generation bad_write+1) is damaged on disk.
        let dir = fresh_dir("damage");
        let mut store = CheckpointStore::new(&dir).expect("store");
        let mut victim = synthetic(pop, seed);
        let mut cfg = CampaignConfig::new(generations, 1);
        cfg.faults = CampaignFaultPlan {
            kill_at_generation: Some(kill),
            torn_write: (flip_not_tear == 0).then_some(TornWrite {
                nth_write: bad_write,
                // Any prefix, including cutting into the CRC trailer.
                keep_bytes: (keep_frac * 200.0) as usize,
            }),
            bit_flip: (flip_not_tear == 1).then_some(BitFlip {
                nth_write: bad_write,
                byte_offset: (keep_frac * 180.0) as usize,
                bit: (seed % 8) as u8,
            }),
        };
        victim.run(&cfg, Some(&mut store)).expect("victim run");
        drop(victim);

        let mut resumed = match Campaign::resume_latest(&store, blank(pop)).expect("scan") {
            Some(resumed) => {
                // The damaged frame (generation bad_write+1) was the
                // newest; the CRC scan must have skipped it and landed
                // on the last good generation.
                prop_assert!(bad_write >= 1, "write 0 damaged ⇒ nothing valid");
                prop_assert_eq!(resumed.generation(), bad_write as u64);
                resumed
            }
            None => {
                // The very first write was the damaged one: nothing
                // valid exists, so recovery is a fresh restart.
                prop_assert_eq!(bad_write, 0);
                synthetic(pop, seed)
            }
        };
        let resume_gen = resumed.generation() as usize;
        let resumed_report = resumed
            .run(&CampaignConfig::new(generations, 1), Some(&mut store))
            .expect("resumed run");
        assert_synthetic_bitmatch(&golden, &resumed, "final state after fallback");
        assert_stats_bitmatch(
            &golden_report.stats[resume_gen..],
            &resumed_report.stats,
            "post-fallback generations",
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// One graphite walker over the smallest CORAL cell (16 electrons,
/// 8 orbitals/spin) on the per-electron fast path.
fn graphite_walker(sys: &CoralSystem, seed: u64) -> TrialWaveFunction<f64> {
    let spo = SpoSet::new(sys.orbitals::<f64>(7), sys.lattice);
    let electrons = random_electrons(
        sys.lattice,
        sys.n_electrons(),
        &mut StdRng::seed_from_u64(seed),
    );
    let rc = sys.lattice.wigner_seitz_radius() * 0.9;
    TrialWaveFunction::new(
        spo,
        &sys.ions,
        electrons,
        BsplineFunctor::rpa_like(0.3, 1.0, rc, 20),
        BsplineFunctor::rpa_like(0.5, 1.2, rc, 20),
    )
}

fn graphite_campaign(
    sys: &CoralSystem,
    pop: usize,
) -> Campaign<WalkerPropagator<impl FnMut() -> TrialWaveFunction<f64> + '_>> {
    let mut walker_seed = 100u64;
    let prop = WalkerPropagator::new(
        move || {
            walker_seed += 1;
            graphite_walker(sys, walker_seed)
        },
        pop,
        0.5,
        0xFEED,
    );
    Campaign::new(
        DmcConfig {
            target_population: pop,
            tau: 0.002,
            feedback: 1.0,
            max_ratio: 2.0,
            seed: 7,
        },
        -0.5,
        prop,
        16,
    )
}

#[test]
fn wavefunction_campaign_resume_is_bit_identical() {
    let sys = CoralSystem::new(1, 1, 1, (10, 10, 12));
    let pop = 4;
    let generations = 6u64;

    let mut golden = graphite_campaign(&sys, pop);
    let golden_report = golden
        .run(&CampaignConfig::new(generations, 0), None)
        .expect("golden run");

    let dir = fresh_dir("graphite");
    let mut store = CheckpointStore::new(&dir).expect("store");
    let mut victim = graphite_campaign(&sys, pop);
    let mut cfg = CampaignConfig::new(generations, 2);
    cfg.faults = CampaignFaultPlan::kill_at(3);
    let report = victim.run(&cfg, Some(&mut store)).expect("victim run");
    assert_eq!(report.outcome, RunOutcome::Killed { generation: 3 });
    drop(victim);

    let sys_ref = &sys;
    let mut resumed = Campaign::resume_latest(&store, {
        // A fresh propagator over the same system: the factory
        // reproduces walkers with the right electron count; positions
        // come from the checkpoint.
        let mut walker_seed = 500u64;
        WalkerPropagator::new(
            move || {
                walker_seed += 1;
                graphite_walker(sys_ref, walker_seed)
            },
            pop,
            0.5,
            0xFEED,
        )
    })
    .expect("scan")
    .expect("a checkpoint exists");
    assert_eq!(resumed.generation(), 2);
    let resumed_report = resumed
        .run(&CampaignConfig::new(generations, 2), Some(&mut store))
        .expect("resumed run");

    // Post-resume generation statistics (mixed estimator, trial energy,
    // total weight) are bit-identical to the golden run's.
    assert_stats_bitmatch(
        &golden_report.stats[2..],
        &resumed_report.stats,
        "graphite post-resume",
    );
    // Population state matches exactly.
    let (sg, sr) = (
        golden.population().snapshot(),
        resumed.population().snapshot(),
    );
    assert_eq!(sg, sr, "population snapshots");
    // Every electron position of every active walker matches bitwise:
    // the per-generation rebuild erased all incremental rounding
    // history, so the resumed trajectory is the golden trajectory.
    assert_eq!(golden.propagator().len(), resumed.propagator().len());
    for slot in 0..golden.propagator().len() {
        let (wg, wr) = (
            golden.propagator().walker(slot),
            resumed.propagator().walker(slot),
        );
        assert_eq!(wg.n_electrons(), wr.n_electrons());
        for i in 0..wg.n_electrons() {
            let (pg, pr) = (wg.electrons().get(i), wr.electrons().get(i));
            for d in 0..3 {
                assert_eq!(
                    pg[d].to_bits(),
                    pr[d].to_bits(),
                    "walker {slot} electron {i} axis {d}"
                );
            }
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn empty_or_fully_corrupt_store_resumes_none() {
    let dir = fresh_dir("empty");
    let store = CheckpointStore::new(&dir).expect("store");
    assert!(Campaign::resume_latest(&store, blank(4))
        .expect("scan of empty store")
        .is_none());
    // A store holding only garbage behaves like an empty one.
    std::fs::write(dir.join("ckpt-0000000001.qmc"), b"not a checkpoint").unwrap();
    assert!(Campaign::resume_latest(&store, blank(4))
        .expect("scan of corrupt store")
        .is_none());
    let _ = std::fs::remove_dir_all(&dir);
}
