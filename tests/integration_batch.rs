//! Property tests for the batched multi-walker evaluation API: for all
//! three layout engines, `v_batch`/`vgl_batch`/`vgh_batch` must
//! *bit-match* the scalar `v`/`vgl`/`vgh` loop over the same positions
//! — the batched paths reorder only independent work (hoisted basis
//! weights, tile-major loop order), never the per-(position, orbital)
//! arithmetic. Batch sizes 0 and 1 are covered explicitly.

use bspline::{
    BatchOut, BsplineAoS, BsplineAoSoA, BsplineSoA, Kernel, PosBlock, SpoEngine,
};
use einspline::{Grid1, MultiCoefs};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_table(n: usize, seed: u64) -> MultiCoefs<f32> {
    let g = Grid1::periodic(0.0, 1.0, 5);
    let mut table = MultiCoefs::<f32>::new(g, g, g, n);
    table.fill_random(&mut StdRng::seed_from_u64(seed));
    table
}

fn random_block(ns: usize, seed: u64) -> PosBlock<f32> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..ns)
        .map(|_| {
            [
                rng.random::<f32>(),
                rng.random::<f32>(),
                rng.random::<f32>(),
            ]
        })
        .collect()
}

/// Scalar reference: one engine call per position into its own block.
fn scalar_loop<E: SpoEngine<f32>>(
    engine: &E,
    kernel: Kernel,
    pos: &PosBlock<f32>,
) -> BatchOut<E::Out> {
    let mut out = engine.make_batch_out(pos.len());
    for (i, p) in pos.iter().enumerate() {
        engine.eval(kernel, p, out.block_mut(i));
    }
    out
}

/// Assert the kernel-relevant accessors bit-match between two blocks.
fn assert_bitmatch<O>(kernel: Kernel, n: usize, batch: &O, scalar: &O, ctx: &str)
where
    O: ValueView,
{
    for k in 0..n {
        assert_eq!(batch.value_at(k), scalar.value_at(k), "{ctx} v[{k}]");
        match kernel {
            Kernel::V => {}
            Kernel::Vgl => {
                assert_eq!(batch.gradient_at(k), scalar.gradient_at(k), "{ctx} g[{k}]");
                assert_eq!(
                    batch.laplacian_at(k),
                    scalar.laplacian_at(k),
                    "{ctx} l[{k}]"
                );
            }
            Kernel::Vgh => {
                assert_eq!(batch.gradient_at(k), scalar.gradient_at(k), "{ctx} g[{k}]");
                assert_eq!(batch.hessian_at(k), scalar.hessian_at(k), "{ctx} h[{k}]");
            }
        }
    }
}

trait ValueView {
    fn value_at(&self, k: usize) -> f32;
    fn gradient_at(&self, k: usize) -> [f32; 3];
    fn laplacian_at(&self, k: usize) -> f32;
    fn hessian_at(&self, k: usize) -> [f32; 6];
}

macro_rules! impl_view {
    ($t:ty) => {
        impl ValueView for $t {
            fn value_at(&self, k: usize) -> f32 {
                self.value(k)
            }
            fn gradient_at(&self, k: usize) -> [f32; 3] {
                self.gradient(k)
            }
            fn laplacian_at(&self, k: usize) -> f32 {
                self.laplacian(k)
            }
            fn hessian_at(&self, k: usize) -> [f32; 6] {
                self.hessian(k)
            }
        }
    };
}
impl_view!(bspline::WalkerAoS<f32>);
impl_view!(bspline::WalkerSoA<f32>);
impl_view!(bspline::WalkerTiled<f32>);

fn check_engine<E: SpoEngine<f32>>(engine: &E, n: usize, pos: &PosBlock<f32>, ctx: &str)
where
    E::Out: ValueView,
{
    for kernel in Kernel::ALL {
        let mut batch = engine.make_batch_out(pos.len());
        engine.eval_batch(kernel, pos, &mut batch);
        let scalar = scalar_loop(engine, kernel, pos);
        for i in 0..pos.len() {
            assert_bitmatch(
                kernel,
                n,
                batch.block(i),
                scalar.block(i),
                &format!("{ctx} {kernel} pos={i}"),
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn batch_bitmatches_scalar_loop_for_all_layouts(
        n in 1usize..40,
        nb in 1usize..40,
        seed in 0u64..1000,
        ns in 0usize..9,
    ) {
        let table = random_table(n, seed);
        let pos = random_block(ns, seed ^ 0xabcd);
        check_engine(&BsplineAoS::new(table.clone()), n, &pos, "AoS");
        check_engine(&BsplineSoA::new(table.clone()), n, &pos, "SoA");
        check_engine(&BsplineAoSoA::from_multi(&table, nb), n, &pos, "AoSoA");
    }
}

#[test]
fn batch_size_zero_and_one_are_exact() {
    let n = 17;
    let table = random_table(n, 404);
    for ns in [0usize, 1] {
        let pos = random_block(ns, 7 + ns as u64);
        check_engine(&BsplineAoS::new(table.clone()), n, &pos, "AoS edge");
        check_engine(&BsplineSoA::new(table.clone()), n, &pos, "SoA edge");
        check_engine(&BsplineAoSoA::from_multi(&table, 5), n, &pos, "AoSoA edge");
    }
}

#[test]
fn oversized_batch_out_leaves_extra_blocks_untouched() {
    let n = 8;
    let table = random_table(n, 11);
    let soa = BsplineSoA::new(table);
    let pos = random_block(2, 3);
    let mut out = soa.make_batch_out(4);
    soa.vgh_batch(&pos, &mut out);
    // Blocks 2 and 3 were never written: still all-zero.
    for i in 2..4 {
        for k in 0..n {
            assert_eq!(out.block(i).value(k), 0.0);
            assert_eq!(out.block(i).hessian(k), [0.0; 6]);
        }
    }
}

#[test]
#[should_panic(expected = "one output block per position")]
fn undersized_batch_out_panics() {
    let table = random_table(4, 1);
    let soa = BsplineSoA::new(table);
    let pos = random_block(3, 1);
    let mut out = soa.make_batch_out(2);
    soa.v_batch(&pos, &mut out);
}
