//! Fault-injection conformance suite (ISSUE 10 tentpole): under any
//! scripted [`ServiceFaultPlan`] the evaluation service must keep its
//! three contracts —
//!
//! 1. **every ticket resolves** — worker panics, permanent kills,
//!    stalls, and lock poisoning may fail individual requests but can
//!    never deadlock a caller or lose a buffer;
//! 2. **successes stay bit-identical** — a request that completes after
//!    a crash/retry returns exactly the direct `eval_batch` result
//!    (re-enqueueing moves whole requests, never split accumulation
//!    chains);
//! 3. **failures return the caller's blocks** — a typed
//!    [`ServiceError`] hands back `pos`/`out` with the submitted
//!    lengths, so pools recycle across faults.
//!
//! Plus the counter satellite: [`StatsSnapshot`] counters are monotone
//! under concurrent submitters and sum-consistent with the resolved
//! tickets, and the deadline/shed path is covered deterministically via
//! a scripted stall.

use bspline::service::{
    ServiceConfig, ServiceError, ServiceFault, ServiceFaultPlan, SpoService,
};
use bspline::{BsplineSoA, Kernel, PosBlock, SpoEngine, WalkerSoA};
use einspline::{Grid1, MultiCoefs, Real};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

fn random_table<T: Real>(n: usize, seed: u64) -> MultiCoefs<T> {
    let g = Grid1::periodic(0.0, 1.0, 5);
    let mut table = MultiCoefs::<T>::new(g, g, g, n);
    table.fill_random(&mut StdRng::seed_from_u64(seed));
    table
}

fn random_block<T: Real>(ns: usize, seed: u64) -> PosBlock<T> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..ns)
        .map(|_| {
            [
                T::from_f64(rng.random::<f64>()),
                T::from_f64(rng.random::<f64>()),
                T::from_f64(rng.random::<f64>()),
            ]
        })
        .collect()
}

fn assert_blocks_bitmatch<T: Real>(
    kernel: Kernel,
    n: usize,
    got: &WalkerSoA<T>,
    want: &WalkerSoA<T>,
    ctx: &str,
) {
    for k in 0..n {
        assert_eq!(got.value(k), want.value(k), "{ctx} v[{k}]");
        match kernel {
            Kernel::V => {}
            Kernel::Vgl => {
                assert_eq!(got.gradient(k), want.gradient(k), "{ctx} g[{k}]");
                assert_eq!(got.laplacian(k), want.laplacian(k), "{ctx} l[{k}]");
            }
            Kernel::Vgh => {
                assert_eq!(got.gradient(k), want.gradient(k), "{ctx} g[{k}]");
                assert_eq!(got.hessian(k), want.hessian(k), "{ctx} h[{k}]");
            }
        }
    }
}

fn direct_batch<T: Real>(
    engine: &BsplineSoA<T>,
    kernel: Kernel,
    pos: &PosBlock<T>,
) -> bspline::BatchOut<WalkerSoA<T>> {
    let mut out = engine.make_batch_out(pos.len());
    engine.eval_batch(kernel, pos, &mut out);
    out
}

/// Silence the default panic hook for service worker threads so the
/// injected panics don't spray backtraces over the test output. Safe to
/// install more than once; worker panics are always caught by the
/// service's `catch_unwind`, this is cosmetic only.
fn quiet_worker_panics() {
    use std::sync::Once;
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let default_hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let here = std::thread::current();
            if here.name().is_some_and(|t| t.starts_with("spo-worker")) {
                return;
            }
            default_hook(info);
        }));
    });
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(14))]

    /// Chaos property: for ANY scripted fault plan (panic / kill /
    /// stall / poison / a two-fault combination / none) × any replica
    /// count × any retry budget × any kernel, every ticket resolves
    /// within a generous deadline, every success is bit-identical to
    /// the direct batch, every failure hands the submitted buffers
    /// back, and the admission counter is sum-consistent with the
    /// resolved tickets.
    #[test]
    fn any_fault_plan_resolves_every_ticket(
        kind in 0usize..6,
        worker in 0usize..2,
        at in 0usize..16,
        ms in 1u64..8,
        replicas in 1usize..3,
        max_retries in 0usize..3,
        kernel_ix in 0usize..3,
        seed in 0u64..1000,
    ) {
        quiet_worker_panics();
        let n = 10;
        let kernel = Kernel::ALL[kernel_ix];
        let worker = worker % replicas;
        let other = (worker + 1) % replicas;
        let faults = match kind {
            0 => vec![],
            1 => vec![ServiceFault::Panic { worker, at_request: at }],
            2 => vec![ServiceFault::Kill { worker, at_request: at }],
            3 => vec![ServiceFault::Stall { worker, at_request: at, ms }],
            4 => vec![ServiceFault::Poison { worker, at_request: at }],
            _ => vec![
                ServiceFault::Panic { worker, at_request: at },
                ServiceFault::Kill { worker: other, at_request: at + 8 },
            ],
        };
        let service = SpoService::with_fault_plan(
            BsplineSoA::new(random_table::<f32>(n, seed)),
            ServiceConfig {
                replicas,
                max_batch: 16,
                max_wait: Duration::from_micros(100),
                queue_positions: 4096,
                max_retries,
                ..ServiceConfig::default()
            },
            ServiceFaultPlan { faults },
        );
        let pos = random_block::<f32>(32, seed ^ 0xfau64);
        let reference = direct_batch(service.engine(), kernel, &pos);
        let chunk = 4usize;
        let submitters = 3usize;
        let ok = AtomicUsize::new(0);
        let failed = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for w in 0..submitters {
                let service = &service;
                let pos = &pos;
                let reference = &reference;
                let ok = &ok;
                let failed = &failed;
                s.spawn(move || {
                    // Pipelined: issue every request before reaping any,
                    // so crashes land on a populated queue.
                    let tickets: Vec<_> = pos
                        .chunks(chunk)
                        .enumerate()
                        .filter(|(i, _)| i % submitters == w)
                        .map(|(i, sub)| {
                            let out = service.engine().make_batch_out(sub.len());
                            (i, service.submit(kernel, sub, out))
                        })
                        .collect();
                    for (i, t) in tickets {
                        // Contract 1: every ticket resolves well inside
                        // this deadline — an Err(Timeout) here is a
                        // lost request, which must never happen.
                        match t.redeem_for(Duration::from_secs(20)) {
                            Ok((sub, out, _)) => {
                                ok.fetch_add(1, Ordering::Relaxed);
                                // Contract 2: bit-identity of successes.
                                for j in 0..sub.len() {
                                    assert_blocks_bitmatch(
                                        kernel,
                                        n,
                                        out.block(j),
                                        reference.block(i * chunk + j),
                                        &format!("chunk={i} pos={j}"),
                                    );
                                }
                            }
                            Err(f) => {
                                assert_ne!(
                                    f.error,
                                    ServiceError::Timeout,
                                    "ticket lost under plan (chunk {i})"
                                );
                                // Contract 3: buffers come back whole.
                                assert_eq!(
                                    f.pos.expect("failure returns pos").len(),
                                    chunk,
                                    "chunk {i}"
                                );
                                assert_eq!(
                                    f.out.expect("failure returns out").len(),
                                    chunk,
                                    "chunk {i}"
                                );
                                failed.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    }
                });
            }
        });
        let stats = service.stats();
        let total = pos.len() / chunk;
        // Sum-consistency: every admitted request resolved exactly once.
        prop_assert_eq!(ok.load(Ordering::Relaxed) + failed.load(Ordering::Relaxed), total);
        prop_assert_eq!(stats.requests, total);
        // Positions are counted only on successful evaluation, once per
        // resolved-successful request.
        prop_assert_eq!(stats.positions, ok.load(Ordering::Relaxed) * chunk);
        // No deadline was set, so nothing may shed.
        prop_assert_eq!(stats.shed, 0);
        drop(service);
    }
}

/// Counter satellite: under concurrent fault-free submitters the
/// [`bspline::service::StatsSnapshot`] counters are monotone (sampled
/// live while the load runs) and sum-consistent with the resolved
/// tickets at the end.
#[test]
fn stats_counters_are_monotone_and_sum_consistent_under_load() {
    let n = 12;
    let service = SpoService::new(
        BsplineSoA::new(random_table::<f32>(n, 0x57a7)),
        ServiceConfig {
            replicas: 2,
            max_batch: 16,
            max_wait: Duration::from_micros(100),
            queue_positions: 4096,
            ..ServiceConfig::default()
        },
    );
    let submitters = 4usize;
    let requests_each = 32usize;
    let ppr = 4usize;
    let done = AtomicUsize::new(0);
    std::thread::scope(|s| {
        // Sampler: every counter must only ever grow.
        let sampler = {
            let service = &service;
            let done = &done;
            s.spawn(move || {
                let mut prev = service.stats();
                while done.load(Ordering::Relaxed) < submitters {
                    let now = service.stats();
                    for (name, a, b) in [
                        ("requests", prev.requests, now.requests),
                        ("batches", prev.batches, now.batches),
                        ("positions", prev.positions, now.positions),
                        ("coalesced", prev.coalesced, now.coalesced),
                        ("spilled", prev.spilled, now.spilled),
                        ("stolen", prev.stolen, now.stolen),
                        ("shed", prev.shed, now.shed),
                        ("retried", prev.retried, now.retried),
                        ("panics", prev.panics, now.panics),
                        ("respawns", prev.respawns, now.respawns),
                    ] {
                        assert!(b >= a, "{name} went backwards: {a} -> {b}");
                    }
                    prev = now;
                    std::thread::yield_now();
                }
            })
        };
        for w in 0..submitters {
            let service = &service;
            let done = &done;
            s.spawn(move || {
                let block = random_block::<f32>(ppr, 0x57a8 + w as u64);
                for _ in 0..requests_each {
                    let out = service.engine().make_batch_out(ppr);
                    let (_, _, _) = service
                        .submit(Kernel::Vgh, block.clone(), out)
                        .redeem()
                        .expect("fault-free request");
                }
                done.fetch_add(1, Ordering::Relaxed);
            });
        }
        sampler.join().expect("sampler");
    });
    let stats = service.stats();
    let total = submitters * requests_each;
    assert_eq!(stats.requests, total);
    assert_eq!(stats.positions, total * ppr);
    assert!(stats.batches >= 1 && stats.batches <= total);
    assert!(stats.coalesced <= total);
    // Fault-free run: none of the failure-path counters may move.
    assert_eq!(
        (stats.shed, stats.retried, stats.panics, stats.respawns),
        (0, 0, 0, 0)
    );
}

/// Injected-fault counters: a panic plan on a 2-replica service bumps
/// `panics`/`respawns`/`retried`, and the failure-path counters stay
/// sum-consistent with the resolved tickets.
#[test]
fn injected_panics_move_the_fault_counters_without_losing_requests() {
    quiet_worker_panics();
    let n = 10;
    let service = SpoService::with_fault_plan(
        BsplineSoA::new(random_table::<f32>(n, 0xfa11)),
        ServiceConfig {
            replicas: 2,
            max_batch: 16,
            max_wait: Duration::from_micros(100),
            queue_positions: 4096,
            ..ServiceConfig::default()
        },
        ServiceFaultPlan {
            faults: vec![ServiceFault::Panic { worker: 0, at_request: 4 }],
        },
    );
    let pos = random_block::<f32>(4, 0xfa12);
    let reference = direct_batch(service.engine(), Kernel::Vgh, &pos);
    let total = 48usize;
    for i in 0..total {
        let out = service.engine().make_batch_out(pos.len());
        let (_, out, _) = service
            .submit(Kernel::Vgh, pos.clone(), out)
            .redeem()
            .expect("default retry budget covers one panic");
        for j in 0..pos.len() {
            assert_blocks_bitmatch(
                Kernel::Vgh,
                n,
                out.block(j),
                reference.block(j),
                &format!("req={i} pos={j}"),
            );
        }
    }
    let stats = service.stats();
    assert_eq!(stats.requests, total);
    assert_eq!(stats.positions, total * pos.len());
    assert_eq!(stats.panics, 1, "the scripted fault fired once");
    assert!(stats.respawns >= 1, "the supervisor replaced the slot");
    assert!(stats.retried >= 1, "the crashed batch was re-enqueued");
}

/// Deadline/shed coverage, made deterministic with a scripted stall:
/// requests submitted with an already-expired deadline behind a stalled
/// worker resolve to [`ServiceError::Shed`] with their buffers, never
/// evaluate, and count in `stats.shed`; an undeadlined request on the
/// same queue still completes bit-identically.
#[test]
fn expired_deadlines_shed_behind_a_stalled_worker() {
    let n = 10;
    let service = SpoService::with_fault_plan(
        BsplineSoA::new(random_table::<f32>(n, 0x5bed)),
        ServiceConfig {
            replicas: 1,
            max_batch: 4,
            max_wait: Duration::from_micros(50),
            queue_positions: 4096,
            ..ServiceConfig::default()
        },
        ServiceFaultPlan {
            faults: vec![ServiceFault::Stall { worker: 0, at_request: 0, ms: 150 }],
        },
    );
    let pos = random_block::<f32>(4, 0x5bee);
    let reference = direct_batch(service.engine(), Kernel::Vgl, &pos);

    // First request arms the stall: the worker sleeps 150 ms with the
    // batch already claimed, so everything below queues behind it.
    let out = service.engine().make_batch_out(pos.len());
    let first = service.submit(Kernel::Vgl, pos.clone(), out);

    // Expired-deadline requests: shed at pop time, never evaluated.
    let sheds = 6usize;
    let dead = Instant::now() - Duration::from_millis(1);
    let shed_tickets: Vec<_> = (0..sheds)
        .map(|_| {
            let out = service.engine().make_batch_out(pos.len());
            service.submit_with_deadline(Kernel::Vgl, pos.clone(), out, dead)
        })
        .collect();
    // One more healthy request with no deadline: must still complete.
    let out = service.engine().make_batch_out(pos.len());
    let last = service.submit(Kernel::Vgl, pos.clone(), out);

    let (_, out, _) = first.redeem().expect("stalled batch still completes");
    for j in 0..pos.len() {
        assert_blocks_bitmatch(
            Kernel::Vgl, n, out.block(j), reference.block(j), &format!("first pos={j}"),
        );
    }
    for (i, t) in shed_tickets.into_iter().enumerate() {
        let f = t.redeem().expect_err("expired deadline must shed");
        assert_eq!(f.error, ServiceError::Shed, "ticket {i}");
        assert_eq!(f.pos.expect("shed returns pos").len(), pos.len());
        assert_eq!(f.out.expect("shed returns out").len(), pos.len());
    }
    let (_, out, _) = last.redeem().expect("undeadlined request completes");
    for j in 0..pos.len() {
        assert_blocks_bitmatch(
            Kernel::Vgl, n, out.block(j), reference.block(j), &format!("last pos={j}"),
        );
    }
    let stats = service.stats();
    assert_eq!(stats.shed, sheds);
    assert_eq!(stats.requests, sheds + 2);
    assert_eq!(stats.positions, 2 * pos.len(), "shed requests never evaluate");
}

/// Wait-side timeout against a scripted stall: `redeem_for` expires
/// with a typed [`ServiceError::Timeout`] carrying the live claim, and
/// the later redeem still completes bit-identically — the stall slows
/// the request down but loses nothing.
#[test]
fn redeem_timeout_during_a_stall_hands_the_claim_back() {
    let n = 10;
    let service = SpoService::with_fault_plan(
        BsplineSoA::new(random_table::<f32>(n, 0x70aa)),
        ServiceConfig {
            replicas: 1,
            max_batch: 4,
            max_wait: Duration::from_micros(50),
            queue_positions: 4096,
            ..ServiceConfig::default()
        },
        ServiceFaultPlan {
            faults: vec![ServiceFault::Stall { worker: 0, at_request: 0, ms: 200 }],
        },
    );
    let pos = random_block::<f32>(4, 0x70ab);
    let reference = direct_batch(service.engine(), Kernel::Vgh, &pos);
    let out = service.engine().make_batch_out(pos.len());
    let ticket = service.submit(Kernel::Vgh, pos.clone(), out);
    let f = ticket
        .redeem_for(Duration::from_millis(10))
        .expect_err("a 200 ms stall outlives a 10 ms wait");
    assert_eq!(f.error, ServiceError::Timeout);
    let ticket = f.ticket.expect("timeout hands the claim back");
    let (_, out, _) = ticket.redeem().expect("stall ends, request completes");
    for j in 0..pos.len() {
        assert_blocks_bitmatch(
            Kernel::Vgh, n, out.block(j), reference.block(j), &format!("pos={j}"),
        );
    }
}
