//! Blocked-engine conformance suite (ISSUE 5): the orbital-block
//! decomposition must be **bit-identical** to the monolithic engines on
//! every kernel / layout / backend / precision / entry-point
//! combination, for every block shape — including `B = 1` (the
//! degenerate monolithic decomposition), ragged last blocks, and blocks
//! narrower than one SIMD register (the micro-kernels' scalar-tail
//! path). The nested walker×block schedules must agree with the serial
//! blocked evaluation for any thread count and grain.

mod common;

use crate::common::BackendTolerance;
use bspline::blocked::BlockedEngine;
use bspline::parallel::{run_nested_blocked, run_nested_blocked_dynamic};
use bspline::precision::MixedEngine;
use bspline::simd::{with_backend, Backend};
use bspline::{BsplineAoSoA, BsplineSoA, Kernel, PosBlock, SpoEngine, WalkerSoA};
use einspline::{Grid1, MultiCoefs, Real};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn table<T: Real>(n: usize, seed: u64) -> MultiCoefs<T> {
    let g = Grid1::periodic(0.0, 1.0, 5);
    let mut m = MultiCoefs::<T>::new(g, g, g, n);
    m.fill_random(&mut StdRng::seed_from_u64(seed));
    m
}

/// Compare the streams `kernel` writes under `backend`'s parity
/// contract: fused backends (scalar pack, AVX2+FMA) perform the
/// identical elementwise chain regardless of how orbitals are grouped
/// into blocks, so they must match **exactly**; the non-FMA SSE2
/// backend fuses its ragged scalar tail but not its vector body, so a
/// block boundary can legitimately move an orbital between those two
/// paths — bounded by the shared scale-aware tolerance instead.
fn assert_streams_eq<T: BackendTolerance>(
    backend: Backend,
    kernel: Kernel,
    want: &WalkerSoA<T>,
    got: &WalkerSoA<T>,
    n: usize,
) {
    let close = |want: T, got: T, ctx: &str| {
        if backend.is_fused() {
            assert_eq!(want, got, "{ctx} [{backend}]");
        } else {
            T::assert_close(backend, want, got, ctx);
        }
    };
    for k in 0..n {
        close(want.value(k), got.value(k), &format!("{kernel} value k={k}"));
        let (per_comp, wants, gots): (usize, Vec<T>, Vec<T>) = match kernel {
            Kernel::V => continue,
            Kernel::Vgl => (
                4,
                [want.gradient(k).to_vec(), vec![want.laplacian(k)]].concat(),
                [got.gradient(k).to_vec(), vec![got.laplacian(k)]].concat(),
            ),
            Kernel::Vgh => (
                9,
                [want.gradient(k).to_vec(), want.hessian(k).to_vec()].concat(),
                [got.gradient(k).to_vec(), got.hessian(k).to_vec()].concat(),
            ),
        };
        for c in 0..per_comp {
            close(wants[c], gots[c], &format!("{kernel} comp {c} k={k}"));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Blocked ≡ monolithic SoA ≡ tiled AoSoA for every kernel and
    /// backend, scalar and batched entry, f32: any block width from 1
    /// (narrower than every SIMD register → pure scalar tails) through
    /// ragged widths to `nb ≥ N` (B = 1).
    #[test]
    fn blocked_bit_matches_monolithic_f32(
        n in 1usize..40,
        nb in 1usize..48,
        seed in 0u64..500,
        px in 0.0f32..1.0,
        py in 0.0f32..1.0,
        pz in 0.0f32..1.0,
    ) {
        let t = table::<f32>(n, seed);
        let mono = BsplineSoA::new(t.clone());
        let tiled = BsplineAoSoA::from_multi(&t, nb.min(n).max(1));
        let blocked = BlockedEngine::with_block_size(&t, nb);
        let pos = [px, py, pz];
        let block: PosBlock<f32> = [pos, [pz, px, py]].into_iter().collect();

        for backend in Backend::available() {
            for kernel in Kernel::ALL {
                with_backend(backend, || {
                    // Scalar entry.
                    let mut want = mono.make_out();
                    let mut got = blocked.make_out();
                    let mut got_t = tiled.make_out();
                    mono.eval(kernel, pos, &mut want);
                    blocked.eval(kernel, pos, &mut got);
                    tiled.eval(kernel, pos, &mut got_t);
                    assert_streams_eq(backend, kernel, &want, &got, n);
                    for k in 0..n {
                        // Tiled and blocked group identically only when
                        // tile = block width; compare under the same
                        // contract instead of exactly.
                        if backend.is_fused() {
                            assert_eq!(got.value(k), got_t.value(k), "{backend} {kernel} vs tiled k={k}");
                        } else {
                            f32::assert_close(backend, got_t.value(k), got.value(k), "vs tiled");
                        }
                    }

                    // Batched entry (block-major loop + prefetch path).
                    let mut bwant = mono.make_batch_out(block.len());
                    let mut bgot = blocked.make_batch_out(block.len());
                    mono.eval_batch(kernel, &block, &mut bwant);
                    blocked.eval_batch(kernel, &block, &mut bgot);
                    for i in 0..block.len() {
                        assert_streams_eq(backend, kernel, bwant.block(i), bgot.block(i), n);
                    }
                });
            }
        }
    }

    /// Same contract in f64 (different lane widths and cache-line
    /// quantum: 8 per line, AVX2 4 lanes).
    #[test]
    fn blocked_bit_matches_monolithic_f64(
        n in 1usize..24,
        nb in 1usize..32,
        seed in 0u64..200,
        px in 0.0f64..1.0,
    ) {
        let t = table::<f64>(n, seed);
        let mono = BsplineSoA::new(t.clone());
        let blocked = BlockedEngine::with_block_size(&t, nb);
        let pos = [px, 0.37, 0.81];
        for backend in Backend::available() {
            with_backend(backend, || {
                let mut want = mono.make_out();
                let mut got = blocked.make_out();
                mono.vgh(pos, &mut want);
                blocked.vgh(pos, &mut got);
                assert_streams_eq(backend, Kernel::Vgh, &want, &got, n);
            });
        }
    }

    /// Mixed precision through the blocked inner engine: the
    /// `MixedEngine<BlockedEngine<_>>` wide outputs equal the
    /// `MixedEngine<BsplineSoA<_>>` wide outputs exactly (identical
    /// f32 elementwise chains, exact widening), scalar and batched.
    #[test]
    fn mixed_blocked_matches_mixed_monolithic(
        n in 1usize..24,
        seed in 0u64..200,
        px in 0.0f64..1.0,
    ) {
        let t = table::<f64>(n, seed);
        let mono = MixedEngine::soa(&t);
        let blocked = MixedEngine::blocked(&t, 1); // one-quantum blocks
        let pos = [px, 0.52, 0.19];
        // Wide outputs are exact widenings of the inner f32 results, so
        // the blocked-vs-monolithic contract is the f32 one: exact under
        // fused backends, scale-aware under SSE2 (QMC_SIMD matrix legs).
        let backend = bspline::simd::active_backend();
        let close = |x: f64, y: f64, ctx: &str| {
            if backend.is_fused() {
                assert_eq!(x, y, "{ctx}");
            } else {
                f32::assert_close(backend, x as f32, y as f32, ctx);
            }
        };
        let (mut a, mut b) = (mono.make_out(), blocked.make_out());
        for kernel in Kernel::ALL {
            mono.eval(kernel, pos, &mut a);
            blocked.eval(kernel, pos, &mut b);
            for k in 0..n {
                close(a.wide().value(k), b.wide().value(k), &format!("{kernel} k={k}"));
            }
        }
        let block: PosBlock<f64> = [pos, [0.9, 0.1, 0.5]].into_iter().collect();
        let mut ba = mono.make_batch_out(block.len());
        let mut bb = blocked.make_batch_out(block.len());
        mono.vgh_batch(&block, &mut ba);
        blocked.vgh_batch(&block, &mut bb);
        for i in 0..block.len() {
            for k in 0..n {
                for r in 0..6 {
                    close(
                        ba.block(i).wide().hessian(k)[r],
                        bb.block(i).wide().hessian(k)[r],
                        &format!("i={i} k={k} r={r}"),
                    );
                }
            }
        }
    }

    /// The nested walker×block schedule (static and dynamic, any
    /// thread count / grain — including more threads than blocks and a
    /// grain beyond the work-list) reproduces the serial blocked
    /// evaluation bit-for-bit.
    #[test]
    fn nested_blocked_schedules_match_serial(
        n in 1usize..40,
        nb in 1usize..16,
        nth in 1usize..12,
        grain in 1usize..64,
        seed in 0u64..200,
    ) {
        let t = table::<f32>(n, seed);
        let blocked = BlockedEngine::with_block_size(&t, nb);
        let positions = vec![
            PosBlock::from_positions(&[[0.2f32, 0.7, 0.4], [0.9, 0.1, 0.6]]),
            PosBlock::from_positions(&[[0.5f32, 0.5, 0.5]]),
        ];
        let mut expect: Vec<WalkerSoA<f32>> =
            (0..2).map(|_| blocked.make_out()).collect();
        for (w, out) in expect.iter_mut().enumerate() {
            for p in positions[w].iter() {
                blocked.vgh(p, out);
            }
        }
        let mut stat: Vec<WalkerSoA<f32>> =
            (0..2).map(|_| blocked.make_out()).collect();
        run_nested_blocked(&blocked, Kernel::Vgh, &mut stat, &positions, nth);
        let mut dynq: Vec<WalkerSoA<f32>> =
            (0..2).map(|_| blocked.make_out()).collect();
        run_nested_blocked_dynamic(&blocked, Kernel::Vgh, &mut dynq, &positions, grain);
        // Serial and scheduled runs take identical per-block code paths,
        // so exact equality holds on every backend; passing the active
        // backend only affects the (unused) tolerance branch.
        for w in 0..2 {
            let b = bspline::simd::active_backend();
            assert_streams_eq(b, Kernel::Vgh, &expect[w], &stat[w], n);
            assert_streams_eq(b, Kernel::Vgh, &expect[w], &dynq[w], n);
        }
    }

    /// Budget sizing invariants: the decomposition respects the budget
    /// (down to the one-quantum floor), the orbital map inverts block
    /// ranges, and every orbital is covered exactly once.
    #[test]
    fn budget_decomposition_invariants(
        n in 1usize..200,
        budget_quanta in 0usize..20,
        seed in 0u64..100,
    ) {
        let t = table::<f32>(n, seed);
        let budget = budget_quanta * 16 * t.bytes_per_spline() + 1;
        let blocked = t.split_blocks(budget);
        let quantum_slab = 16 * t.bytes_per_spline();
        // Respect the budget unless the one-quantum floor forces more.
        prop_assert!(blocked.block_bytes() <= budget.max(quantum_slab));
        // Full disjoint cover, map inversion.
        let mut covered = 0usize;
        for (b, blk) in blocked.blocks().iter().enumerate() {
            for o in 0..blk.n_splines() {
                let g = blocked.block_offset(b) + o;
                prop_assert_eq!(blocked.locate_orbital(g), (b, o));
            }
            covered += blk.n_splines();
        }
        prop_assert_eq!(covered, n);
        // The engine view of the same decomposition agrees.
        let engine = BlockedEngine::from_multi(&t, budget);
        prop_assert_eq!(engine.n_blocks(), blocked.n_blocks());
        prop_assert_eq!(engine.nb(), blocked.nb());
        prop_assert_eq!(SpoEngine::<f32>::n_splines(&engine), n);
    }
}
