//! SIMD/scalar parity property tests (ISSUE 3 satellite): for every
//! backend available on the host (`QMC_SIMD=avx2|sse2|scalar` overrides,
//! exercised via `bspline::simd::with_backend`), every layout engine and
//! every kernel must reproduce the scalar reference on ragged orbital
//! counts — `m ∈ {1, LANES−1, LANES, LANES+1, non-multiple}` for each
//! backend's lane width, in both precisions.
//!
//! Tolerance contract (documented in `bspline::simd`): backends with a
//! fused `mul_add` (AVX2+FMA and the scalar-array pack) perform the
//! bit-identical elementwise chain and must match to ≤ 2 ULP — in fact
//! exactly. SSE2 models a pre-FMA machine (`mul`+`add`), so each of its
//! accumulation steps rounds once more than the fused reference; it is
//! bounded by a scale-aware tolerance instead. The ULP/tolerance
//! machinery lives in the shared `tests/common` support module.

mod common;

use bspline::simd::{with_backend, Backend};
use common::BackendTolerance as Parity;
use bspline::{BsplineAoS, BsplineAoSoA, BsplineSoA, Kernel, PosBlock, SpoEngine};
use einspline::{Grid1, MultiCoefs, Real};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_table<T: Real>(n: usize, seed: u64) -> MultiCoefs<T> {
    let g = Grid1::periodic(0.0, 1.0, 5);
    let mut table = MultiCoefs::<T>::new(g, g, g, n);
    table.fill_random(&mut StdRng::seed_from_u64(seed));
    table
}

fn random_block<T: Real>(ns: usize, seed: u64) -> PosBlock<T> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..ns)
        .map(|_| {
            [
                T::from_f64(rng.random::<f64>()),
                T::from_f64(rng.random::<f64>()),
                T::from_f64(rng.random::<f64>()),
            ]
        })
        .collect()
}

/// All kernel outputs of one engine over a position block, flattened,
/// computed under a forced backend (scalar path + batched path).
fn outputs<T: Parity, E: SpoEngine<T>>(
    engine: &E,
    kernel: Kernel,
    pos: &PosBlock<T>,
    backend: Backend,
    read: impl Fn(&E::Out, usize) -> Vec<T>,
) -> (Vec<T>, Vec<T>) {
    with_backend(backend, || {
        let n = engine.n_splines();
        // Scalar entry points.
        let mut single = Vec::new();
        let mut out = engine.make_out();
        for p in pos.iter() {
            engine.eval(kernel, p, &mut out);
            for k in 0..n {
                single.extend(read(&out, k));
            }
        }
        // Batched entry points (hoisted weights, tile-major for AoSoA).
        let mut batched = Vec::new();
        let mut bout = engine.make_batch_out(pos.len());
        engine.eval_batch(kernel, pos, &mut bout);
        for i in 0..pos.len() {
            for k in 0..n {
                batched.extend(read(bout.block(i), k));
            }
        }
        (single, batched)
    })
}

/// Compare one engine × kernel across every available backend against
/// the forced-scalar reference, through both the scalar and batched
/// entry points.
fn check_parity<T: Parity, E: SpoEngine<T>>(
    engine: &E,
    kernel: Kernel,
    pos: &PosBlock<T>,
    read: impl Fn(&E::Out, usize) -> Vec<T> + Copy,
    ctx: &str,
) {
    let (ref_single, ref_batched) =
        outputs(engine, kernel, pos, Backend::Scalar, read);
    // The batched path must bit-match the scalar loop under any backend
    // (it reorders only independent work); cross-check the reference.
    assert_eq!(ref_single.len(), ref_batched.len());
    for b in Backend::available() {
        let (got_single, got_batched) = outputs(engine, kernel, pos, b, read);
        for (i, (&w, &g)) in ref_single.iter().zip(&got_single).enumerate() {
            T::assert_close(b, w, g, &format!("{ctx} {kernel} scalar-entry idx={i}"));
        }
        for (i, (&w, &g)) in ref_batched.iter().zip(&got_batched).enumerate() {
            T::assert_close(b, w, g, &format!("{ctx} {kernel} batch-entry idx={i}"));
        }
    }
}

fn kernel_outputs<T: Real, O>(kernel: Kernel) -> impl Fn(&O, usize) -> Vec<T> + Copy
where
    O: OutView<T>,
{
    move |out, k| match kernel {
        Kernel::V => vec![out.value_at(k)],
        Kernel::Vgl => {
            let mut v = vec![out.value_at(k)];
            v.extend(out.gradient_at(k));
            v.push(out.laplacian_at(k));
            v
        }
        Kernel::Vgh => {
            let mut v = vec![out.value_at(k)];
            v.extend(out.gradient_at(k));
            v.extend(out.hessian_at(k));
            v
        }
    }
}

trait OutView<T> {
    fn value_at(&self, k: usize) -> T;
    fn gradient_at(&self, k: usize) -> [T; 3];
    fn laplacian_at(&self, k: usize) -> T;
    fn hessian_at(&self, k: usize) -> [T; 6];
}

macro_rules! impl_view {
    ($o:ident) => {
        impl<T: Real> OutView<T> for bspline::$o<T> {
            fn value_at(&self, k: usize) -> T {
                self.value(k)
            }
            fn gradient_at(&self, k: usize) -> [T; 3] {
                self.gradient(k)
            }
            fn laplacian_at(&self, k: usize) -> T {
                self.laplacian(k)
            }
            fn hessian_at(&self, k: usize) -> [T; 6] {
                self.hessian(k)
            }
        }
    };
}
impl_view!(WalkerAoS);
impl_view!(WalkerSoA);
impl_view!(WalkerTiled);

fn check_all_layouts<T: Parity>(n: usize, nb: usize, seed: u64, ns: usize) {
    let table = random_table::<T>(n, seed);
    let pos = random_block::<T>(ns, seed ^ 0x51_3d);
    let aos = BsplineAoS::new(table.clone());
    let soa = BsplineSoA::new(table.clone());
    let tiled = BsplineAoSoA::from_multi(&table, nb);
    for kernel in Kernel::ALL {
        check_parity(&aos, kernel, &pos, kernel_outputs(kernel), "AoS");
        check_parity(&soa, kernel, &pos, kernel_outputs(kernel), "SoA");
        check_parity(&tiled, kernel, &pos, kernel_outputs(kernel), "AoSoA");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn simd_matches_scalar_reference_f32(
        n in 1usize..40,
        nb in 1usize..40,
        seed in 0u64..1000,
        ns in 1usize..5,
    ) {
        check_all_layouts::<f32>(n, nb, seed, ns);
    }

    #[test]
    fn simd_matches_scalar_reference_f64(
        n in 1usize..24,
        nb in 1usize..24,
        seed in 0u64..1000,
        ns in 1usize..4,
    ) {
        check_all_layouts::<f64>(n, nb, seed, ns);
    }
}

/// The exact lane-boundary orbital counts for every backend width on
/// this host: m = 1, LANES−1, LANES, LANES+1, plus a non-multiple.
#[test]
fn lane_boundary_orbital_counts() {
    let mut counts: Vec<usize> = vec![1, 37];
    for b in Backend::available() {
        for lanes in [b.lanes_f32(), b.lanes_f64()] {
            counts.extend([lanes.saturating_sub(1).max(1), lanes, lanes + 1]);
        }
    }
    counts.sort_unstable();
    counts.dedup();
    for (i, &m) in counts.iter().enumerate() {
        check_all_layouts::<f32>(m, (m / 2).max(1), 77 + i as u64, 2);
        check_all_layouts::<f64>(m, m, 177 + i as u64, 2);
    }
}

/// `with_backend` is the in-process equivalent of the `QMC_SIMD`
/// override; the env-var spelling itself must parse to the same
/// backends the dispatcher recognizes.
#[test]
fn qmc_simd_override_spellings_cover_available_backends() {
    for b in Backend::available() {
        assert_eq!(b.name().parse::<Backend>(), Ok(b));
        // And forcing it actually takes effect.
        with_backend(b, || assert_eq!(bspline::simd::active_backend(), b));
    }
}
