//! Offline stand-in for the
//! [`proptest`](https://crates.io/crates/proptest) crate.
//!
//! The build environment has no network access, so the workspace vendors
//! the proptest API surface its property tests use: the [`proptest!`]
//! macro with `#![proptest_config(..)]`, range strategies
//! (`0.0f64..1.0`, `1usize..40`, …), `prop::collection::vec`, and the
//! `prop_assert!` family. Each test runs `Config::cases` deterministic
//! randomized cases (seeded per case index); there is no shrinking — a
//! failing case panics with the values embedded in the assertion
//! message via the per-case seed.
//!
//! Replace this stub with the real crate by pointing the
//! `[workspace.dependencies]` entry back at crates.io.

#![warn(missing_docs)]
#![warn(clippy::all)]

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Runner configuration, mirroring `proptest::test_runner`.
pub mod test_runner {
    /// How many randomized cases each property test executes.
    #[derive(Clone, Copy, Debug)]
    pub struct Config {
        /// Number of cases.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` randomized cases.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Self { cases: 256 }
        }
    }
}

/// Value-generation strategies, mirroring `proptest::strategy`.
pub mod strategy {
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::ops::Range;

    /// A recipe for generating random values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;
        /// Draw one value.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
        )*};
    }
    impl_range_strategy!(
        u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64
    );

    /// A strategy yielding one fixed value (`proptest::strategy::Just`).
    #[derive(Clone, Copy, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }
}

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// A `Vec` strategy: each element from `element`, length in `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(!size.is_empty(), "empty size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.random_range(self.size.clone());
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Conventional glob-import module, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// Mirror of the `prop` umbrella module re-exported by the prelude.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Per-case RNG: deterministic per (test invocation, case index).
pub fn case_rng(case: u32) -> StdRng {
    StdRng::seed_from_u64(0xc0ff_ee00_u64 ^ (u64::from(case)).wrapping_mul(0x9e37_79b9_7f4a_7c15))
}

/// Assert within a property test (no shrinking: panics like `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Equality assert within a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Inequality assert within a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Mirror of proptest's `proptest!` block macro: each `fn name(pat in
/// strategy, ..) { body }` becomes a test running `Config::cases`
/// deterministic randomized cases.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_fns! { ($crate::test_runner::Config::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (
        ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::Config = $cfg;
                for __case in 0..__config.cases {
                    let mut __rng = $crate::case_rng(__case);
                    $(
                        let $arg =
                            $crate::strategy::Strategy::generate(&($strat), &mut __rng);
                    )*
                    $body
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn floats_stay_in_range(x in 0.25f64..0.75) {
            prop_assert!((0.25..0.75).contains(&x));
        }

        #[test]
        fn vec_lengths_respect_size_range(
            v in prop::collection::vec(-1.0f64..1.0, 3..9),
            n in 1usize..5,
        ) {
            prop_assert!((3..9).contains(&v.len()));
            prop_assert!(v.iter().all(|x| (-1.0..1.0).contains(x)));
            prop_assert_ne!(n, 0);
        }
    }

    #[test]
    fn cases_are_deterministic_per_index() {
        use crate::strategy::Strategy;
        let a = (0.0f64..1.0).generate(&mut crate::case_rng(5));
        let b = (0.0f64..1.0).generate(&mut crate::case_rng(5));
        assert_eq!(a, b);
        let c = (0.0f64..1.0).generate(&mut crate::case_rng(6));
        assert_ne!(a, c);
    }
}
