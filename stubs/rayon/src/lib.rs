//! Offline stand-in for the [`rayon`](https://crates.io/crates/rayon)
//! crate.
//!
//! The build environment has no network access, so the workspace vendors
//! the rayon API surface it consumes — `into_par_iter()` on ranges and
//! vectors with `.map(..).collect()` / `.for_each(..)`, and
//! `par_iter_mut().enumerate().for_each(..)` on slices — implemented
//! with `std::thread::scope` over contiguous chunks (one chunk per
//! hardware thread). That is a static partition rather than rayon's
//! work-stealing deque, which matches how this workspace uses it: the
//! paper's Opt C deliberately prefers an explicit static partition
//! ("avoids any potential overhead from [the] nested run time
//! environment"), and every call site hands over near-uniform work items.
//!
//! Replace this stub with the real crate by pointing the
//! `[workspace.dependencies]` entry back at crates.io.

#![warn(missing_docs)]
#![warn(clippy::all)]

use std::ops::Range;
use std::thread;

/// Conventional glob-import module, mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::{IntoParallelIterator, ParallelSliceMut};
}

/// Number of worker threads used for parallel regions.
pub fn current_num_threads() -> usize {
    thread::available_parallelism().map_or(1, |n| n.get())
}

fn run_map<I: Send, O: Send, F: Fn(I) -> O + Sync>(items: Vec<I>, f: &F) -> Vec<O> {
    run_map_with(current_num_threads(), items, f)
}

fn run_map_with<I: Send, O: Send, F: Fn(I) -> O + Sync>(
    max_threads: usize,
    items: Vec<I>,
    f: &F,
) -> Vec<O> {
    let n = items.len();
    let threads = max_threads.min(n.max(1));
    if threads <= 1 {
        return items.into_iter().map(f).collect();
    }
    let chunk = n.div_ceil(threads);
    let mut chunks: Vec<Vec<I>> = Vec::with_capacity(threads);
    let mut it = items.into_iter();
    loop {
        let c: Vec<I> = it.by_ref().take(chunk).collect();
        if c.is_empty() {
            break;
        }
        chunks.push(c);
    }
    thread::scope(|s| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|c| s.spawn(move || c.into_iter().map(f).collect::<Vec<O>>()))
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("parallel worker panicked"))
            .collect()
    })
}

fn run_slice<T: Send, F: Fn(usize, &mut T) + Sync>(slice: &mut [T], f: &F) {
    run_slice_with(current_num_threads(), slice, f)
}

fn run_slice_with<T: Send, F: Fn(usize, &mut T) + Sync>(
    max_threads: usize,
    slice: &mut [T],
    f: &F,
) {
    let n = slice.len();
    let threads = max_threads.min(n.max(1));
    if threads <= 1 {
        for (i, x) in slice.iter_mut().enumerate() {
            f(i, x);
        }
        return;
    }
    let chunk = n.div_ceil(threads);
    thread::scope(|s| {
        for (ci, c) in slice.chunks_mut(chunk).enumerate() {
            let base = ci * chunk;
            s.spawn(move || {
                for (i, x) in c.iter_mut().enumerate() {
                    f(base + i, x);
                }
            });
        }
    });
}

/// Conversion into a parallel iterator, mirroring
/// `rayon::iter::IntoParallelIterator`.
pub trait IntoParallelIterator {
    /// The produced element type.
    type Item: Send;
    /// Materialize the parallel iterator.
    fn into_par_iter(self) -> IntoParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> IntoParIter<T> {
        IntoParIter { items: self }
    }
}

impl IntoParallelIterator for Range<usize> {
    type Item = usize;
    fn into_par_iter(self) -> IntoParIter<usize> {
        IntoParIter {
            items: self.collect(),
        }
    }
}

/// An owned parallel iterator over materialized items.
pub struct IntoParIter<T> {
    items: Vec<T>,
}

impl<T: Send> IntoParIter<T> {
    /// Apply `f` to every item in parallel; order of the eventual
    /// collection matches input order.
    pub fn map<O: Send, F: Fn(T) -> O + Sync>(self, f: F) -> MapIter<T, F> {
        MapIter {
            items: self.items,
            f,
        }
    }

    /// Run `f` on every item in parallel.
    pub fn for_each<F: Fn(T) + Sync>(self, f: F) {
        run_map(self.items, &|x| f(x));
    }

    /// Collect the items (identity pipeline).
    pub fn collect<C: FromIterator<T>>(self) -> C {
        self.items.into_iter().collect()
    }
}

/// A mapped parallel iterator (`IntoParIter::map`).
pub struct MapIter<T, F> {
    items: Vec<T>,
    f: F,
}

impl<T: Send, F> MapIter<T, F> {
    /// Execute the pipeline in parallel and collect in input order.
    pub fn collect<O, C>(self) -> C
    where
        O: Send,
        F: Fn(T) -> O + Sync,
        C: FromIterator<O>,
    {
        run_map(self.items, &self.f).into_iter().collect()
    }

    /// Execute the pipeline in parallel, discarding results.
    pub fn for_each<O>(self, f2: impl Fn(O) + Sync)
    where
        O: Send,
        F: Fn(T) -> O + Sync,
    {
        let g = &self.f;
        run_map(self.items, &|x| f2(g(x)));
    }
}

/// Parallel mutable iteration over slices, mirroring
/// `rayon::iter::IntoParallelRefMutIterator` for `[T]`.
pub trait ParallelSliceMut<T: Send> {
    /// Parallel iterator of `&mut T`.
    fn par_iter_mut(&mut self) -> IterMut<'_, T>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_iter_mut(&mut self) -> IterMut<'_, T> {
        IterMut { slice: self }
    }
}

impl<T: Send> ParallelSliceMut<T> for Vec<T> {
    fn par_iter_mut(&mut self) -> IterMut<'_, T> {
        IterMut { slice: self }
    }
}

/// Borrowed mutable parallel iterator (`par_iter_mut`).
pub struct IterMut<'a, T> {
    slice: &'a mut [T],
}

impl<'a, T: Send> IterMut<'a, T> {
    /// Pair every element with its index.
    pub fn enumerate(self) -> EnumerateMut<'a, T> {
        EnumerateMut { slice: self.slice }
    }

    /// Run `f` on every element in parallel.
    pub fn for_each<F: Fn(&mut T) + Sync>(self, f: F) {
        run_slice(self.slice, &|_, x| f(x));
    }
}

/// Indexed borrowed mutable parallel iterator.
pub struct EnumerateMut<'a, T> {
    slice: &'a mut [T],
}

impl<T: Send> EnumerateMut<'_, T> {
    /// Run `f` on every `(index, element)` pair in parallel.
    pub fn for_each<F: Fn((usize, &mut T)) + Sync>(self, f: F) {
        run_slice(self.slice, &|i, x| f((i, x)));
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let out: Vec<usize> = (0..1000).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(out.len(), 1000);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i * 2);
        }
    }

    #[test]
    fn vec_for_each_visits_everything() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let sum = AtomicUsize::new(0);
        (1..=100).collect::<Vec<usize>>().into_par_iter().for_each(|x| {
            sum.fetch_add(x, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 5050);
    }

    #[test]
    fn par_iter_mut_enumerate_writes_in_place() {
        let mut v = vec![0usize; 257]; // deliberately not a multiple of threads
        v.par_iter_mut().enumerate().for_each(|(i, x)| *x = i * i);
        for (i, x) in v.iter().enumerate() {
            assert_eq!(*x, i * i);
        }
    }

    #[test]
    fn forced_multithread_paths_match_sequential() {
        // `available_parallelism` may be 1 in CI containers, which
        // would leave the scoped-thread branch uncovered — force it.
        let inputs: Vec<usize> = (0..1003).collect();
        let expect: Vec<usize> = inputs.iter().map(|i| i * 3 + 1).collect();
        let out = crate::run_map_with(7, inputs, &|i| i * 3 + 1);
        assert_eq!(out, expect);

        let mut v = vec![0usize; 1003];
        crate::run_slice_with(7, &mut v, &|i, x| *x = i * 3 + 1);
        assert_eq!(v, expect);
    }

    #[test]
    fn empty_and_single_inputs_are_fine() {
        let out: Vec<usize> = Vec::<usize>::new().into_par_iter().map(|x| x).collect();
        assert!(out.is_empty());
        let one: Vec<usize> = (0..1).into_par_iter().map(|x| x + 41).collect();
        assert_eq!(one, vec![41]);
    }
}
