//! Offline stand-in for the [`rayon`](https://crates.io/crates/rayon)
//! crate.
//!
//! The build environment has no network access, so the workspace vendors
//! the rayon API surface it consumes — `into_par_iter()` on ranges and
//! vectors with `.map(..).collect()` / `.for_each(..)`, and
//! `par_iter_mut().enumerate().for_each(..)` on slices — implemented
//! with `std::thread::scope` over contiguous chunks. The default split
//! is a *balanced static partition* (chunk sizes differ by at most one,
//! so a ragged item count never idles a worker), which matches how this
//! workspace mostly uses it: the paper's Opt C deliberately prefers an
//! explicit static partition ("avoids any potential overhead from
//! \[the\] nested run time environment"). For ragged workloads,
//! `with_min_len(grain)` switches to a *dynamic chunk queue*: workers
//! pull `grain`-sized chunks from a shared queue until it drains
//! (a poor man's work stealing, configurable grain size).
//!
//! Replace this stub with the real crate by pointing the
//! `[workspace.dependencies]` entry back at crates.io.

#![warn(missing_docs)]
#![warn(clippy::all)]

use std::ops::Range;
use std::sync::Mutex;
use std::sync::OnceLock;
use std::thread;

/// Conventional glob-import module, mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::{IntoParallelIterator, ParallelSliceMut};
}

/// Number of worker threads used for parallel regions: the host's
/// available parallelism, overridden by `QMC_THREADS=n` (read once per
/// process). The override is what lets scaling benches, the blocked
/// autotuner and CI pin reproducible thread counts — including counts
/// *above* the core count (the scoped-thread workers simply timeshare),
/// which is how a single-core host still exercises every nested
/// scheduling path.
///
/// The override is parsed **strictly**: `QMC_THREADS=0` or a
/// non-numeric value panics with a message naming the variable. A
/// silent fallback here would make a mistyped CI matrix leg (or a
/// `QMC_THREADS=O4` typo) measure the wrong thread count while
/// claiming the pinned one.
pub fn current_num_threads() -> usize {
    static OVERRIDE: OnceLock<Option<usize>> = OnceLock::new();
    let forced = *OVERRIDE
        .get_or_init(|| std::env::var("QMC_THREADS").ok().map(|v| parse_threads(&v)));
    forced.unwrap_or_else(|| thread::available_parallelism().map_or(1, |n| n.get()))
}

/// Strictly parse a `QMC_THREADS` value: a positive integer, or panic
/// naming the variable and the offending value.
fn parse_threads(raw: &str) -> usize {
    match raw.trim().parse::<usize>() {
        Ok(0) => panic!(
            "QMC_THREADS must be a positive thread count, got 0 \
             (unset the variable to use the detected parallelism)"
        ),
        Ok(n) => n,
        Err(_) => panic!(
            "QMC_THREADS must be a positive integer, got {raw:?} \
             (unset the variable to use the detected parallelism)"
        ),
    }
}

/// Balanced static partition: split `n` items into at most `threads`
/// contiguous chunk lengths whose sizes differ by at most one.
fn balanced_chunk_lens(n: usize, threads: usize) -> Vec<usize> {
    if n == 0 {
        return Vec::new();
    }
    let workers = threads.min(n).max(1);
    let base = n / workers;
    let extra = n % workers;
    (0..workers)
        .map(|c| base + usize::from(c < extra))
        .collect()
}

fn run_map<I: Send, O: Send, F: Fn(I) -> O + Sync>(items: Vec<I>, f: &F) -> Vec<O> {
    run_map_with(current_num_threads(), items, f)
}

fn run_map_with<I: Send, O: Send, F: Fn(I) -> O + Sync>(
    max_threads: usize,
    items: Vec<I>,
    f: &F,
) -> Vec<O> {
    let n = items.len();
    let threads = max_threads.min(n.max(1));
    if threads <= 1 {
        return items.into_iter().map(f).collect();
    }
    let mut chunks: Vec<Vec<I>> = Vec::with_capacity(threads);
    let mut it = items.into_iter();
    for len in balanced_chunk_lens(n, threads) {
        chunks.push(it.by_ref().take(len).collect());
    }
    thread::scope(|s| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|c| s.spawn(move || c.into_iter().map(f).collect::<Vec<O>>()))
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("parallel worker panicked"))
            .collect()
    })
}

/// Dynamic scheduling: workers pull `grain`-sized chunks of owned items
/// from a shared queue until it drains.
fn run_queue_with<I: Send, F: Fn(I) + Sync>(
    max_threads: usize,
    grain: usize,
    items: Vec<I>,
    f: &F,
) {
    let grain = grain.max(1);
    let n = items.len();
    let threads = max_threads.min(n.div_ceil(grain)).max(1);
    if threads <= 1 {
        for x in items {
            f(x);
        }
        return;
    }
    let mut chunks: Vec<Vec<I>> = Vec::with_capacity(n.div_ceil(grain));
    let mut it = items.into_iter();
    loop {
        let c: Vec<I> = it.by_ref().take(grain).collect();
        if c.is_empty() {
            break;
        }
        chunks.push(c);
    }
    let queue = Mutex::new(chunks.into_iter());
    thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| loop {
                let Some(chunk) = queue.lock().expect("queue poisoned").next()
                else {
                    return;
                };
                for x in chunk {
                    f(x);
                }
            });
        }
    });
}

fn run_slice<T: Send, F: Fn(usize, &mut T) + Sync>(slice: &mut [T], f: &F) {
    run_slice_with(current_num_threads(), slice, f)
}

fn run_slice_with<T: Send, F: Fn(usize, &mut T) + Sync>(
    max_threads: usize,
    slice: &mut [T],
    f: &F,
) {
    let n = slice.len();
    let threads = max_threads.min(n.max(1));
    if threads <= 1 {
        for (i, x) in slice.iter_mut().enumerate() {
            f(i, x);
        }
        return;
    }
    thread::scope(|s| {
        let mut rest = slice;
        let mut base = 0;
        for len in balanced_chunk_lens(n, threads) {
            let (c, tail) = rest.split_at_mut(len);
            rest = tail;
            let lo = base;
            s.spawn(move || {
                for (i, x) in c.iter_mut().enumerate() {
                    f(lo + i, x);
                }
            });
            base += len;
        }
    });
}

/// Dynamic scheduling over a mutable slice: `grain`-sized sub-slices
/// pulled from a shared queue.
fn run_slice_queue_with<T: Send, F: Fn(usize, &mut T) + Sync>(
    max_threads: usize,
    grain: usize,
    slice: &mut [T],
    f: &F,
) {
    let grain = grain.max(1);
    let n = slice.len();
    let threads = max_threads.min(n.div_ceil(grain)).max(1);
    if threads <= 1 {
        for (i, x) in slice.iter_mut().enumerate() {
            f(i, x);
        }
        return;
    }
    let chunks: Vec<(usize, &mut [T])> = {
        let mut v = Vec::with_capacity(n.div_ceil(grain));
        let mut rest = slice;
        let mut base = 0;
        while !rest.is_empty() {
            let len = grain.min(rest.len());
            let (c, tail) = rest.split_at_mut(len);
            rest = tail;
            v.push((base, c));
            base += len;
        }
        v
    };
    let queue = Mutex::new(chunks.into_iter());
    thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| loop {
                let Some((base, chunk)) =
                    queue.lock().expect("queue poisoned").next()
                else {
                    return;
                };
                for (i, x) in chunk.iter_mut().enumerate() {
                    f(base + i, x);
                }
            });
        }
    });
}

/// Conversion into a parallel iterator, mirroring
/// `rayon::iter::IntoParallelIterator`.
pub trait IntoParallelIterator {
    /// The produced element type.
    type Item: Send;
    /// Materialize the parallel iterator.
    fn into_par_iter(self) -> IntoParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> IntoParIter<T> {
        IntoParIter { items: self }
    }
}

impl IntoParallelIterator for Range<usize> {
    type Item = usize;
    fn into_par_iter(self) -> IntoParIter<usize> {
        IntoParIter {
            items: self.collect(),
        }
    }
}

/// An owned parallel iterator over materialized items.
pub struct IntoParIter<T> {
    items: Vec<T>,
}

impl<T: Send> IntoParIter<T> {
    /// Apply `f` to every item in parallel; order of the eventual
    /// collection matches input order.
    pub fn map<O: Send, F: Fn(T) -> O + Sync>(self, f: F) -> MapIter<T, F> {
        MapIter {
            items: self.items,
            f,
        }
    }

    /// Run `f` on every item in parallel.
    pub fn for_each<F: Fn(T) + Sync>(self, f: F) {
        run_map(self.items, &|x| f(x));
    }

    /// Collect the items (identity pipeline).
    pub fn collect<C: FromIterator<T>>(self) -> C {
        self.items.into_iter().collect()
    }

    /// Switch from the balanced static partition to the dynamic chunk
    /// queue with `grain` items per chunk (mirrors rayon's
    /// `IndexedParallelIterator::with_min_len`).
    pub fn with_min_len(self, grain: usize) -> GrainedIter<T> {
        GrainedIter {
            items: self.items,
            grain,
        }
    }
}

/// A parallel iterator with an explicit grain size: work is pulled from
/// a shared queue in `grain`-sized chunks (dynamic scheduling).
pub struct GrainedIter<T> {
    items: Vec<T>,
    grain: usize,
}

impl<T: Send> GrainedIter<T> {
    /// Run `f` on every item; workers pull `grain`-sized chunks until
    /// the queue drains.
    pub fn for_each<F: Fn(T) + Sync>(self, f: F) {
        run_queue_with(current_num_threads(), self.grain, self.items, &|x| f(x));
    }
}

/// A mapped parallel iterator (`IntoParIter::map`).
pub struct MapIter<T, F> {
    items: Vec<T>,
    f: F,
}

impl<T: Send, F> MapIter<T, F> {
    /// Execute the pipeline in parallel and collect in input order.
    pub fn collect<O, C>(self) -> C
    where
        O: Send,
        F: Fn(T) -> O + Sync,
        C: FromIterator<O>,
    {
        run_map(self.items, &self.f).into_iter().collect()
    }

    /// Execute the pipeline in parallel, discarding results.
    pub fn for_each<O>(self, f2: impl Fn(O) + Sync)
    where
        O: Send,
        F: Fn(T) -> O + Sync,
    {
        let g = &self.f;
        run_map(self.items, &|x| f2(g(x)));
    }
}

/// Parallel mutable iteration over slices, mirroring
/// `rayon::iter::IntoParallelRefMutIterator` for `[T]`.
pub trait ParallelSliceMut<T: Send> {
    /// Parallel iterator of `&mut T`.
    fn par_iter_mut(&mut self) -> IterMut<'_, T>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_iter_mut(&mut self) -> IterMut<'_, T> {
        IterMut { slice: self }
    }
}

impl<T: Send> ParallelSliceMut<T> for Vec<T> {
    fn par_iter_mut(&mut self) -> IterMut<'_, T> {
        IterMut { slice: self }
    }
}

/// Borrowed mutable parallel iterator (`par_iter_mut`).
pub struct IterMut<'a, T> {
    slice: &'a mut [T],
}

impl<'a, T: Send> IterMut<'a, T> {
    /// Pair every element with its index.
    pub fn enumerate(self) -> EnumerateMut<'a, T> {
        EnumerateMut { slice: self.slice }
    }

    /// Run `f` on every element in parallel.
    pub fn for_each<F: Fn(&mut T) + Sync>(self, f: F) {
        run_slice(self.slice, &|_, x| f(x));
    }

    /// Dynamic chunk queue with `grain` elements per chunk.
    pub fn with_min_len(self, grain: usize) -> GrainedIterMut<'a, T> {
        GrainedIterMut {
            slice: self.slice,
            grain,
        }
    }
}

/// Borrowed mutable parallel iterator with an explicit grain size.
pub struct GrainedIterMut<'a, T> {
    slice: &'a mut [T],
    grain: usize,
}

impl<'a, T: Send> GrainedIterMut<'a, T> {
    /// Pair every element with its index.
    pub fn enumerate(self) -> GrainedEnumerateMut<'a, T> {
        GrainedEnumerateMut {
            slice: self.slice,
            grain: self.grain,
        }
    }

    /// Run `f` on every element; workers pull `grain`-sized chunks.
    pub fn for_each<F: Fn(&mut T) + Sync>(self, f: F) {
        run_slice_queue_with(current_num_threads(), self.grain, self.slice, &|_, x| {
            f(x)
        });
    }
}

/// Indexed borrowed mutable parallel iterator.
pub struct EnumerateMut<'a, T> {
    slice: &'a mut [T],
}

impl<'a, T: Send> EnumerateMut<'a, T> {
    /// Run `f` on every `(index, element)` pair in parallel.
    pub fn for_each<F: Fn((usize, &mut T)) + Sync>(self, f: F) {
        run_slice(self.slice, &|i, x| f((i, x)));
    }

    /// Dynamic chunk queue with `grain` elements per chunk.
    pub fn with_min_len(self, grain: usize) -> GrainedEnumerateMut<'a, T> {
        GrainedEnumerateMut {
            slice: self.slice,
            grain,
        }
    }
}

/// Indexed grained mutable parallel iterator (dynamic chunk queue).
pub struct GrainedEnumerateMut<'a, T> {
    slice: &'a mut [T],
    grain: usize,
}

impl<T: Send> GrainedEnumerateMut<'_, T> {
    /// Run `f` on every `(index, element)` pair; workers pull
    /// `grain`-sized chunks.
    pub fn for_each<F: Fn((usize, &mut T)) + Sync>(self, f: F) {
        run_slice_queue_with(current_num_threads(), self.grain, self.slice, &|i, x| {
            f((i, x))
        });
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let out: Vec<usize> = (0..1000).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(out.len(), 1000);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i * 2);
        }
    }

    #[test]
    fn vec_for_each_visits_everything() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let sum = AtomicUsize::new(0);
        (1..=100).collect::<Vec<usize>>().into_par_iter().for_each(|x| {
            sum.fetch_add(x, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 5050);
    }

    #[test]
    fn par_iter_mut_enumerate_writes_in_place() {
        let mut v = vec![0usize; 257]; // deliberately not a multiple of threads
        v.par_iter_mut().enumerate().for_each(|(i, x)| *x = i * i);
        for (i, x) in v.iter().enumerate() {
            assert_eq!(*x, i * i);
        }
    }

    #[test]
    fn forced_multithread_paths_match_sequential() {
        // `available_parallelism` may be 1 in CI containers, which
        // would leave the scoped-thread branch uncovered — force it.
        let inputs: Vec<usize> = (0..1003).collect();
        let expect: Vec<usize> = inputs.iter().map(|i| i * 3 + 1).collect();
        let out = crate::run_map_with(7, inputs, &|i| i * 3 + 1);
        assert_eq!(out, expect);

        let mut v = vec![0usize; 1003];
        crate::run_slice_with(7, &mut v, &|i, x| *x = i * 3 + 1);
        assert_eq!(v, expect);
    }

    #[test]
    fn balanced_partition_never_idles_workers() {
        // 17 items on 16 threads: old div_ceil chunking produced 9
        // chunks of 2 (7 idle workers); balanced gives 16 chunks.
        let lens = crate::balanced_chunk_lens(17, 16);
        assert_eq!(lens.len(), 16);
        assert_eq!(lens.iter().sum::<usize>(), 17);
        assert!(lens.iter().all(|&l| l == 1 || l == 2));
        assert_eq!(crate::balanced_chunk_lens(3, 8), vec![1, 1, 1]);
        assert_eq!(crate::balanced_chunk_lens(0, 4), Vec::<usize>::new());
    }

    #[test]
    fn grained_for_each_visits_everything() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        for grain in [1, 3, 7, 1000] {
            let sum = AtomicUsize::new(0);
            (1..=100)
                .collect::<Vec<usize>>()
                .into_par_iter()
                .with_min_len(grain)
                .for_each(|x| {
                    sum.fetch_add(x, Ordering::Relaxed);
                });
            assert_eq!(sum.load(Ordering::Relaxed), 5050, "grain={grain}");
        }
    }

    #[test]
    fn grained_slice_paths_match_sequential() {
        for grain in [1, 4, 9, 300] {
            let mut v = vec![0usize; 257];
            v.par_iter_mut()
                .with_min_len(grain)
                .enumerate()
                .for_each(|(i, x)| *x = i * i);
            for (i, x) in v.iter().enumerate() {
                assert_eq!(*x, i * i, "grain={grain}");
            }
            let mut w = vec![0usize; 61];
            w.par_iter_mut().with_min_len(grain).for_each(|x| *x = 5);
            assert!(w.iter().all(|&x| x == 5));
            // Forced multithread queue (available_parallelism may be 1).
            let mut q = vec![0usize; 103];
            crate::run_slice_queue_with(7, grain, &mut q, &|i, x| *x = i + 1);
            for (i, x) in q.iter().enumerate() {
                assert_eq!(*x, i + 1);
            }
        }
    }

    #[test]
    fn forced_queue_map_matches_sequential() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let sum = AtomicUsize::new(0);
        crate::run_queue_with(5, 3, (1..=50).collect::<Vec<usize>>(), &|x| {
            sum.fetch_add(x, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 1275);
    }

    #[test]
    fn thread_count_is_positive_and_honors_override() {
        let n = crate::current_num_threads();
        assert!(n >= 1);
        // Under a CI matrix leg with QMC_THREADS pinned, the stub must
        // report exactly the pinned count.
        if let Some(k) = std::env::var("QMC_THREADS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&k| k > 0)
        {
            assert_eq!(n, k);
        }
    }

    #[test]
    fn thread_override_parses_strictly() {
        assert_eq!(crate::parse_threads("4"), 4);
        assert_eq!(crate::parse_threads(" 16 "), 16, "whitespace trimmed");
    }

    #[test]
    #[should_panic(expected = "QMC_THREADS must be a positive thread count, got 0")]
    fn zero_thread_override_panics() {
        crate::parse_threads("0");
    }

    #[test]
    #[should_panic(expected = "QMC_THREADS must be a positive integer")]
    fn non_numeric_thread_override_panics() {
        crate::parse_threads("four");
    }

    #[test]
    fn empty_and_single_inputs_are_fine() {
        let out: Vec<usize> = Vec::<usize>::new().into_par_iter().map(|x| x).collect();
        assert!(out.is_empty());
        let one: Vec<usize> = (0..1).into_par_iter().map(|x| x + 41).collect();
        assert_eq!(one, vec![41]);
    }
}
