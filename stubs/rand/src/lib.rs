//! Offline stand-in for the [`rand`](https://crates.io/crates/rand)
//! crate (0.9-series API).
//!
//! The build environment has no network access, so the workspace vendors
//! the exact API surface it consumes: [`SeedableRng::seed_from_u64`],
//! [`Rng::random`], [`Rng::random_range`] / [`Rng::random_bool`], and
//! [`rngs::StdRng`]. The generator behind `StdRng` is xoshiro256**
//! (public domain, Blackman & Vigna) seeded through SplitMix64 — not the
//! ChaCha12 of upstream `rand`, so streams differ from upstream, but
//! every consumer in this workspace only requires *deterministic,
//! well-distributed* values, never a specific stream.
//!
//! Replace this stub with the real crate by pointing the
//! `[workspace.dependencies]` entry back at crates.io.

#![warn(missing_docs)]
#![warn(clippy::all)]

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface: a source of uniform random `u64`s.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// User-facing generator interface, mirroring `rand::Rng` (0.9 names).
pub trait Rng: RngCore {
    /// A uniformly random value of type `T` (`f32`/`f64` in `[0, 1)`,
    /// integers over their full range, `bool` fair).
    fn random<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_rng(self)
    }

    /// A uniformly random value in `range` (half-open or inclusive).
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.random::<f64>() < p
    }

    /// Fill `dest` with uniformly random values.
    fn fill<T: Standard>(&mut self, dest: &mut [T])
    where
        Self: Sized,
    {
        for x in dest {
            *x = self.random();
        }
    }
}

impl<R: RngCore> Rng for R {}

/// A generator constructible from a seed, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is a deterministic function of
    /// `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types with a canonical "uniform" distribution (the role of
/// `StandardUniform` in upstream rand).
pub trait Standard {
    /// Draw one value from `rng`.
    fn from_rng<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn from_rng<R: RngCore>(rng: &mut R) -> Self {
        // 53 mantissa bits -> [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn from_rng<R: RngCore>(rng: &mut R) -> Self {
        // 24 mantissa bits -> [0, 1).
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn from_rng<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn from_rng<R: RngCore>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges that can be sampled uniformly, mirroring `SampleRange`.
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

/// Multiply-shift bounded draw: maps a random `u64` onto `[0, n)`.
/// The modulo bias is < 2^-32 for every `n` this workspace uses.
fn bounded(rng: &mut impl RngCore, n: u64) -> u64 {
    debug_assert!(n > 0);
    ((rng.next_u64() as u128 * n as u128) >> 64) as u64
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + bounded(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                if span == 0 {
                    // Full-width inclusive range of a 64-bit type.
                    return rng.next_u64() as $t;
                }
                (lo as i128 + bounded(rng, span) as i128) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let u: $t = Standard::from_rng(rng);
                self.start + (self.end - self.start) * u
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let u: $t = Standard::from_rng(rng);
                lo + (hi - lo) * u
            }
        }
    )*};
}
impl_sample_range_float!(f32, f64);

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256**.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        #[inline]
        fn rotl(x: u64, k: u32) -> u64 {
            x.rotate_left(k)
        }

        /// Export the full generator state.
        ///
        /// Together with [`StdRng::from_state`] this makes the stream
        /// *resumable*: a generator restored from a saved state continues
        /// producing exactly the draws the original would have produced.
        /// This is a stub extension (upstream `rand`'s `StdRng` hides its
        /// ChaCha state); checkpoint code prefers exact state export over
        /// counter-based reseeding because it is valid mid-stream — no
        /// "draws consumed so far" bookkeeping, no constraint that every
        /// consumer draw a fixed number of values per generation.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuild a generator from a state exported by [`StdRng::state`].
        ///
        /// # Panics
        /// Panics on the all-zero state, which is a fixed point of
        /// xoshiro256** (the generator would emit zeros forever). Any
        /// state produced by [`super::SeedableRng::seed_from_u64`] or by a
        /// stepped generator is non-zero.
        pub fn from_state(s: [u64; 4]) -> Self {
            assert!(s != [0; 4], "xoshiro256** state must be non-zero");
            Self { s }
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion of the seed into the full state, as
            // recommended by the xoshiro authors; never all-zero.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = Self::rotl(s[1].wrapping_mul(5), 7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = Self::rotl(s[3], 45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.random::<u64>(), c.random::<u64>());
    }

    #[test]
    fn unit_floats_in_range_and_well_spread() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut sum = 0.0;
        const N: usize = 10_000;
        for _ in 0..N {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / N as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
        let y: f32 = rng.random();
        assert!((0.0..1.0).contains(&y));
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 5];
        for _ in 0..200 {
            let k: i32 = rng.random_range(-2..=2);
            assert!((-2..=2).contains(&k));
            seen[(k + 2) as usize] = true;
            let u: usize = rng.random_range(0..17);
            assert!(u < 17);
            let f: f64 = rng.random_range(-1.5..2.5);
            assert!((-1.5..2.5).contains(&f));
        }
        assert!(seen.iter().all(|&s| s), "inclusive endpoints reachable");
    }

    #[test]
    fn bool_probability_extremes() {
        let mut rng = StdRng::seed_from_u64(3);
        assert!(!rng.random_bool(0.0));
        assert!(rng.random_bool(1.0));
    }

    /// Drive `rng` through one draw of every generator method the
    /// workspace uses and return the bit patterns for exact comparison.
    fn draw_everything(rng: &mut StdRng) -> Vec<u64> {
        use super::RngCore;
        // vec! arguments evaluate left to right, so the draw order is
        // fixed and documented by position.
        let mut out = vec![
            rng.next_u64(),
            u64::from(rng.next_u32()),
            rng.random::<f64>().to_bits(),
            u64::from(rng.random::<f32>().to_bits()),
            rng.random::<u64>(),
            u64::from(rng.random::<bool>()),
            rng.random_range(-5i32..9) as u64,
            rng.random_range(0usize..=13) as u64,
            rng.random_range(i64::MIN..=i64::MAX) as u64,
            rng.random_range(-1.5f64..2.5).to_bits(),
            rng.random_range(0.0f64..=1.0).to_bits(),
            u64::from(rng.random_bool(0.37)),
        ];
        let mut buf = [0.0f64; 4];
        rng.fill(&mut buf);
        out.extend(buf.iter().map(|x| x.to_bits()));
        out
    }

    #[test]
    fn state_save_restore_continues_stream_exactly() {
        // save → restore → draw must equal the uninterrupted draw, for
        // every generator method used anywhere in the workspace, from an
        // arbitrary mid-stream point.
        let mut original = StdRng::seed_from_u64(0xC4A7);
        for _ in 0..17 {
            let _ = original.random::<f64>(); // advance mid-stream
        }
        let saved = original.state();
        let uninterrupted = draw_everything(&mut original);
        let mut restored = StdRng::from_state(saved);
        let resumed = draw_everything(&mut restored);
        assert_eq!(uninterrupted, resumed);
        // And the generators stay in lockstep afterwards.
        for _ in 0..100 {
            assert_eq!(original.random::<u64>(), restored.random::<u64>());
        }
    }

    #[test]
    fn state_roundtrips_bitwise() {
        let rng = StdRng::seed_from_u64(99);
        let s = rng.state();
        assert_eq!(StdRng::from_state(s).state(), s);
        assert_ne!(s, [0; 4], "seeding never lands on the fixed point");
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn all_zero_state_rejected() {
        let _ = StdRng::from_state([0; 4]);
    }
}
