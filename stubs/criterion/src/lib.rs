//! Offline stand-in for the
//! [`criterion`](https://crates.io/crates/criterion) crate.
//!
//! The build environment has no network access, so the workspace vendors
//! the criterion API surface its benches use: `benchmark_group`,
//! `sample_size` / `warm_up_time` / `measurement_time` / `throughput`
//! chaining, `bench_function`, `bench_with_input`, `Bencher::iter`, and
//! the `criterion_group!` / `criterion_main!` macros. Measurement is a
//! simple best-of-samples wall-clock loop (no outlier analysis, no
//! HTML reports); results print as `name ... time/iter [throughput]`.
//!
//! Replace this stub with the real crate by pointing the
//! `[workspace.dependencies]` entry back at crates.io.

#![warn(missing_docs)]
#![warn(clippy::all)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level harness handle, mirroring `criterion::Criterion`.
#[derive(Debug)]
pub struct Criterion {
    defaults: GroupConfig,
}

#[derive(Clone, Copy, Debug)]
struct GroupConfig {
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            defaults: GroupConfig {
                sample_size: 10,
                warm_up: Duration::from_millis(100),
                measurement: Duration::from_millis(500),
            },
        }
    }
}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        let cfg = self.defaults;
        println!("group {name}");
        BenchmarkGroup {
            _c: self,
            name,
            cfg,
            throughput: None,
        }
    }

    /// Benchmark a function outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, mut f: F) -> &mut Self {
        let cfg = self.defaults;
        run_benchmark(&format!("{id}"), &cfg, None, |b| f(b));
        self
    }

    /// End-of-run hook (report finalization in real criterion).
    pub fn final_summary(&mut self) {}
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    name: String,
    cfg: GroupConfig,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Number of measured samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.cfg.sample_size = n.max(1);
        self
    }

    /// Warm-up budget before measurement starts.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.cfg.warm_up = d;
        self
    }

    /// Total measurement budget per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.cfg.measurement = d;
        self
    }

    /// Units of work per iteration, for derived rate reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Benchmark a closure under `id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, mut f: F) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        run_benchmark(&label, &self.cfg, self.throughput, |b| f(b));
        self
    }

    /// Benchmark a closure that receives `input` by reference.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        run_benchmark(&label, &self.cfg, self.throughput, |b| f(b, input));
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

/// A `function-name/parameter` benchmark identifier.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Build an id from a function name and a parameter value.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            label: format!("{}/{}", function.into(), parameter),
        }
    }

    /// Build an id from a parameter value alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            label: format!("{parameter}"),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label)
    }
}

/// Work performed per iteration, for rate reporting.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Logical elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration (binary units).
    Bytes(u64),
    /// Bytes processed per iteration (decimal units).
    BytesDecimal(u64),
}

/// Timing handle passed to every benchmark closure.
pub struct Bencher {
    /// Per-sample time budget.
    budget: Duration,
    /// Best observed time per iteration so far.
    best: Option<Duration>,
}

impl Bencher {
    /// Measure `f`: run it repeatedly within the sample budget and
    /// record the best mean time per iteration.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        let mut iters: u32 = 0;
        loop {
            black_box(f());
            iters += 1;
            if start.elapsed() >= self.budget || iters == u32::MAX {
                break;
            }
        }
        let per_iter = start.elapsed() / iters;
        if self.best.is_none_or(|b| per_iter < b) {
            self.best = Some(per_iter);
        }
    }
}

fn run_benchmark(
    label: &str,
    cfg: &GroupConfig,
    throughput: Option<Throughput>,
    mut f: impl FnMut(&mut Bencher),
) {
    // One warm-up sample, then `sample_size` measured samples splitting
    // the measurement budget.
    let mut warm = Bencher {
        budget: cfg.warm_up,
        best: None,
    };
    f(&mut warm);
    let mut b = Bencher {
        budget: cfg.measurement / cfg.sample_size as u32,
        best: None,
    };
    for _ in 0..cfg.sample_size {
        f(&mut b);
    }
    let best = b.best.unwrap_or_default();
    match throughput {
        Some(Throughput::Elements(n)) if best > Duration::ZERO => {
            let rate = n as f64 / best.as_secs_f64();
            println!("{label:<56} {best:>12.2?}/iter  {rate:>14.3e} elem/s");
        }
        Some(Throughput::Bytes(n) | Throughput::BytesDecimal(n)) if best > Duration::ZERO => {
            let rate = n as f64 / best.as_secs_f64() / 1e9;
            println!("{label:<56} {best:>12.2?}/iter  {rate:>10.3} GB/s");
        }
        _ => println!("{label:<56} {best:>12.2?}/iter"),
    }
}

/// Mirror of criterion's `criterion_group!`: bundles bench functions
/// into one runnable group function.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $config;
            $( $target(&mut c); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Mirror of criterion's `criterion_main!`: a `main` that runs groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` passes harness flags (`--bench`, filters);
            // this minimal harness runs everything unconditionally.
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_a_best_time() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("stub");
        g.sample_size(2)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(4));
        let mut ran = 0u64;
        g.bench_function("count", |b| b.iter(|| ran += 1));
        g.throughput(Throughput::Elements(7));
        g.bench_with_input(BenchmarkId::new("with_input", 3), &3u32, |b, &x| {
            b.iter(|| x * 2)
        });
        g.finish();
        assert!(ran > 0);
    }

    #[test]
    fn benchmark_id_formats_as_function_slash_param() {
        assert_eq!(BenchmarkId::new("f", 12).to_string(), "f/12");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }
}
