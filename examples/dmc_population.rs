//! DMC population dynamics (paper Sec. III): drift-diffusion +
//! measurement + branching, with the walker count the node-level
//! parallelism distributes.
//!
//! Each walker carries a 1D harmonic-oscillator coordinate as its
//! "configuration"; the local energy of the Ψ_T = exp(−αx²/2) trial is
//! analytic, so the mixed estimator converges to a known value and the
//! branching machinery is exercised end-to-end.
//!
//! Run: `cargo run --release -p qmc-bench --example dmc_population`

use miniqmc::drivers::dmc::{DmcConfig, DmcPopulation};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let alpha = 0.8; // trial exponent (exact ground state has α = 1)
    let tau = 0.02;
    let target = 512;

    // Per-walker configurations (1D coordinates), indexed by walker id.
    let mut coords: Vec<f64> = Vec::new();
    let mut rng = StdRng::seed_from_u64(42);
    for _ in 0..target * 8 {
        coords.push(rng.random::<f64>() - 0.5);
    }

    // E_L(x) = α/2 + x²(1 − α²)/2 for Ψ_T = exp(−αx²/2), H = −½∇² + ½x².
    let local_energy = |coords: &Vec<f64>, id: usize| -> f64 {
        let x = coords[id % coords.len()];
        0.5 * alpha + 0.5 * x * x * (1.0 - alpha * alpha)
    };

    let cfg = DmcConfig {
        target_population: target,
        tau,
        feedback: 1.0,
        max_ratio: 4.0,
        seed: 7,
    };
    let mut pop = DmcPopulation::new(cfg, 0.5);

    println!("gen  population  E_T        E_mixed    births/deaths");
    for generation in 0..60 {
        // (i) drift-diffusion on every walker's configuration:
        // x ← x(1 − ατ) + √τ·η  (Langevin step of the importance-sampled
        // diffusion).
        for c in coords.iter_mut() {
            let eta = rng.random::<f64>() - 0.5;
            *c = *c * (1.0 - alpha * tau) + (3.0 * tau).sqrt() * eta;
        }
        // (ii)+(iii) measurement and branching.
        let (births, deaths) = pop.step(|id| local_energy(&coords, id));
        if generation % 10 == 0 || generation == 59 {
            println!(
                "{generation:>3}  {:>10}  {:+.5}  {:+.5}  {births}/{deaths}",
                pop.len(),
                pop.trial_energy,
                pop.mixed_estimator(|id| local_energy(&coords, id)),
            );
        }
    }
    println!("\nexact ground-state energy of H = -0.5 d2/dx2 + 0.5 x^2 is 0.5;");
    println!("the mixed estimator approaches it as the population equilibrates.");
}
