//! Checkpointable DMC campaign over graphite walkers (paper Sec. III
//! population dynamics + the ISSUE 9 campaign layer).
//!
//! Each walker is a real Slater–Jastrow [`TrialWaveFunction`] advanced
//! by particle-by-particle sweeps on the single-electron fast path; the
//! campaign driver couples the pool to `DmcPopulation` branching,
//! records per-generation statistics, and (optionally) checkpoints the
//! full resume closure so a `SIGKILL` mid-run loses nothing: resuming
//! reproduces the uninterrupted run bit-for-bit.
//!
//! Environment knobs (a kill-resume cycle is drivable from the shell):
//!
//! * `QMC_DMC_GENERATIONS` — total generations (default 12);
//! * `QMC_DMC_CHECKPOINT_EVERY` — checkpoint interval, 0 = off
//!   (default 0);
//! * `QMC_DMC_CKPT_DIR` — checkpoint directory (default
//!   `target/dmc-ckpt`);
//! * `QMC_DMC_RESUME` — `1` resumes from the newest valid checkpoint
//!   (fresh start if none);
//! * `QMC_DMC_SLEEP_MS` — artificial per-generation pause so an outer
//!   script has a window to `kill -9` mid-run;
//! * `QMC_ALL_ELECTRON` — `1` selects the legacy all-electron propose
//!   path.
//!
//! Kill-resume from the shell:
//!
//! ```sh
//! export QMC_DMC_CHECKPOINT_EVERY=2 QMC_DMC_CKPT_DIR=/tmp/dmc-ckpt
//! cargo run --release --example dmc_population &   # then: kill -9 $!
//! QMC_DMC_RESUME=1 cargo run --release --example dmc_population
//! ```
//!
//! The trailing `final ...` line prints the mixed estimator both
//! readably and as its exact bit pattern, so two runs can be compared
//! for bit-identity with `grep`.

use miniqmc::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn env_u64(name: &str, default: u64) -> u64 {
    match std::env::var(name) {
        Ok(v) => v
            .trim()
            .parse()
            .unwrap_or_else(|_| panic!("{name} must be an integer, got {v:?}")),
        Err(_) => default,
    }
}

fn env_flag(name: &str) -> bool {
    matches!(std::env::var(name).as_deref(), Ok("1") | Ok("true"))
}

/// `QMC_ALL_ELECTRON=1` selects the legacy all-electron propose path.
fn mode_from_env() -> EvalMode {
    if env_flag("QMC_ALL_ELECTRON") {
        EvalMode::AllElectron
    } else {
        EvalMode::PerElectron
    }
}

/// One graphite walker: a 1×1×1 cell (16 electrons, 8 orbitals/spin)
/// with its own electron configuration.
fn make_walker(sys: &CoralSystem, seed: u64, mode: EvalMode) -> TrialWaveFunction<f64> {
    let spo = SpoSet::new(sys.orbitals::<f64>(7), sys.lattice);
    let electrons = random_electrons(
        sys.lattice,
        sys.n_electrons(),
        &mut StdRng::seed_from_u64(seed),
    );
    let rc = sys.lattice.wigner_seitz_radius() * 0.9;
    let mut wf = TrialWaveFunction::new(
        spo,
        &sys.ions,
        electrons,
        BsplineFunctor::rpa_like(0.3, 1.0, rc, 24),
        BsplineFunctor::rpa_like(0.5, 1.2, rc, 24),
    );
    wf.set_eval_mode(mode);
    wf
}

fn main() {
    let mode = mode_from_env();
    let n_walkers = 8usize;
    let generations = env_u64("QMC_DMC_GENERATIONS", 12);
    let checkpoint_every = env_u64("QMC_DMC_CHECKPOINT_EVERY", 0);
    let sleep_ms = env_u64("QMC_DMC_SLEEP_MS", 0);
    let ckpt_dir = std::env::var("QMC_DMC_CKPT_DIR").unwrap_or_else(|_| "target/dmc-ckpt".into());
    let resume = env_flag("QMC_DMC_RESUME");

    let sys = CoralSystem::new(1, 1, 1, (10, 10, 12));
    println!(
        "graphite DMC campaign: {n_walkers} walkers x {} electrons, move path {mode:?}",
        sys.n_electrons()
    );
    println!(
        "generations={generations} checkpoint_every={checkpoint_every} \
         dir={ckpt_dir} resume={resume}"
    );

    // The walker factory: deterministic initial configurations. A
    // resumed campaign overwrites the positions from the checkpoint, so
    // the factory seed sequence only matters for fresh starts.
    let sys_ref = &sys;
    let make_prop = |first_seed: u64| {
        let mut seed = first_seed;
        WalkerPropagator::new(
            move || {
                seed += 1;
                make_walker(sys_ref, seed, mode)
            },
            n_walkers,
            0.5,
            0xFEED,
        )
    };

    let dmc_cfg = DmcConfig {
        target_population: n_walkers,
        tau: 0.002,
        feedback: 1.0,
        max_ratio: 2.0,
        seed: 7,
    };

    let mut store = (checkpoint_every > 0 || resume)
        .then(|| CheckpointStore::new(&ckpt_dir).expect("checkpoint dir"));

    let mut campaign = if resume {
        match Campaign::resume_latest(store.as_ref().expect("store"), make_prop(100))
            .expect("checkpoint scan")
        {
            Some(c) => {
                println!("resumed from generation {}", c.generation());
                c
            }
            None => {
                println!("no valid checkpoint found; starting fresh");
                Campaign::new(dmc_cfg, -0.5, make_prop(100), 16)
            }
        }
    } else {
        Campaign::new(dmc_cfg, -0.5, make_prop(100), 16)
    };

    let cfg = CampaignConfig::new(generations, checkpoint_every);
    println!("gen  population  E_T           E_mixed       births/deaths");
    while campaign.generation() < generations {
        let stats = campaign.step();
        if let Some(store) = store.as_mut() {
            if checkpoint_every > 0 && stats.generation.is_multiple_of(checkpoint_every) {
                store
                    .write(stats.generation, &campaign.encode(), &cfg.faults)
                    .expect("checkpoint write");
            }
        }
        println!(
            "{:>3}  {:>10}  {:+.9}  {:+.9}  {}/{}",
            stats.generation,
            stats.population,
            stats.trial_energy,
            stats.e_mixed,
            stats.births,
            stats.deaths
        );
        if sleep_ms > 0 {
            std::thread::sleep(std::time::Duration::from_millis(sleep_ms));
        }
    }

    let last = *campaign.stats().latest().expect("at least one generation");
    println!(
        "final gen={} population={} e_mixed={:+.12e} e_mixed_bits={:#018x} \
         e_t_bits={:#018x}",
        last.generation,
        last.population,
        last.e_mixed,
        last.e_mixed.to_bits(),
        last.trial_energy.to_bits()
    );
    println!("\npopulation fluctuates under branching and is pulled to the");
    println!("target by the trial-energy feedback (paper step iii).");
}
