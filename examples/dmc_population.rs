//! DMC population dynamics (paper Sec. III): drift-diffusion +
//! measurement + branching, with the walker count the node-level
//! parallelism distributes.
//!
//! The walkers here are real graphite configurations, each a
//! Slater–Jastrow [`TrialWaveFunction`] whose drift-diffusion stage is
//! a particle-by-particle Metropolis sweep through the single-electron
//! fast path (V-only ratio with cached locate/weights, VGL on accept).
//! Set `QMC_ALL_ELECTRON=1` to A/B the same run against the legacy
//! all-electron propose path. The per-walker kinetic energy from the
//! measurement stage feeds the branching weights, so the full
//! (i) drift-diffusion → (ii) measurement → (iii) branching loop of the
//! paper is exercised end-to-end.
//!
//! Run: `cargo run --release -p qmc-bench --example dmc_population`

use miniqmc::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// `QMC_ALL_ELECTRON=1` selects the legacy all-electron propose path.
fn mode_from_env() -> EvalMode {
    match std::env::var("QMC_ALL_ELECTRON").as_deref() {
        Ok("1") | Ok("true") => EvalMode::AllElectron,
        _ => EvalMode::PerElectron,
    }
}

/// One graphite walker: a 1×1×1 cell (16 electrons, 8 orbitals/spin)
/// with its own electron configuration.
fn make_walker(sys: &CoralSystem, seed: u64, mode: EvalMode) -> TrialWaveFunction<f64> {
    let spo = SpoSet::new(sys.orbitals::<f64>(7), sys.lattice);
    let electrons = random_electrons(
        sys.lattice,
        sys.n_electrons(),
        &mut StdRng::seed_from_u64(seed),
    );
    let rc = sys.lattice.wigner_seitz_radius() * 0.9;
    let mut wf = TrialWaveFunction::new(
        spo,
        &sys.ions,
        electrons,
        BsplineFunctor::rpa_like(0.3, 1.0, rc, 24),
        BsplineFunctor::rpa_like(0.5, 1.2, rc, 24),
    );
    wf.set_eval_mode(mode);
    wf
}

fn main() {
    let mode = mode_from_env();
    let n_walkers = 8;
    let generations = 12;
    let sys = CoralSystem::new(1, 1, 1, (10, 10, 12));
    println!(
        "graphite DMC: {} walkers x {} electrons, SPO move path: {mode:?}",
        n_walkers,
        sys.n_electrons()
    );

    // The walker pool: branching hands out new ids, which index back
    // into this fixed pool (a branched copy re-uses its parent's
    // configuration, as the toy id mapping of `DmcPopulation` allows).
    let mut walkers: Vec<TrialWaveFunction<f64>> = (0..n_walkers)
        .map(|i| make_walker(&sys, 100 + i as u64, mode))
        .collect();

    // (ii) initial measurement to anchor the trial energy.
    let mut energies: Vec<f64> = walkers
        .iter_mut()
        .map(|wf| kinetic_energy(&wf.log_derivs()))
        .collect();
    let e0 = energies.iter().sum::<f64>() / n_walkers as f64;

    let cfg = DmcConfig {
        target_population: n_walkers,
        tau: 0.002,
        feedback: 1.0,
        max_ratio: 2.0,
        seed: 7,
    };
    let mut pop = DmcPopulation::new(cfg, e0);

    println!("gen  population  E_T         E_mixed     acc%   births/deaths");
    for generation in 0..generations {
        // (i) drift-diffusion: one per-electron Metropolis sweep per
        // walker (V-only ratios, cached-weights VGL on each accept).
        let mut acc_sum = 0.0;
        for (i, wf) in walkers.iter_mut().enumerate() {
            let res = run_vmc(
                wf,
                &VmcConfig {
                    n_steps: 1,
                    step_size: 0.5,
                    seed: 1000 * generation as u64 + i as u64,
                },
            );
            acc_sum += res.acceptance;
            // (ii) measurement: kinetic local energy of the new
            // configuration.
            energies[i] = res.kinetic;
        }
        // (iii) branching against the trial energy.
        let (births, deaths) = pop.step(|id| energies[id % n_walkers]);
        println!(
            "{generation:>3}  {:>10}  {:+.6}  {:+.6}  {:>4.1}  {births}/{deaths}",
            pop.len(),
            pop.trial_energy,
            pop.mixed_estimator(|id| energies[id % n_walkers]),
            100.0 * acc_sum / walkers.len() as f64,
        );
    }
    println!("\npopulation fluctuates under branching and is pulled to the");
    println!("target by the trial-energy feedback (paper step iii).");
}
