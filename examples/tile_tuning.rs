//! Tile-size auto-tuning (the paper's FFTW-wisdom plan, Sec. VI): sweep
//! Nb on this machine, report the optimum. The optimal tile is a
//! property of the cache hierarchy, not of the problem size — verify by
//! sweeping two problem sizes.
//!
//! Run: `cargo run --release -p qmc-bench --example tile_tuning`

use bspline::{BsplineAoSoA, Kernel};
use qmc_bench::workload::coefficients;
use qmc_bench::{measure_tile_major, MeasureConfig};

fn main() {
    let grid = (24, 24, 24);
    let cfg = MeasureConfig {
        ns: 64,
        reps: 3,
        seed: 1,
    };
    for n in [512usize, 1024] {
        println!("N = {n} (grid {grid:?}):");
        let table = coefficients(n, grid, n as u64);
        let mut best = (0.0f64, 0usize);
        for nb in [16, 32, 64, 128, 256, 512, 1024] {
            if nb > n {
                continue;
            }
            let engine = BsplineAoSoA::from_multi(&table, nb);
            let t = measure_tile_major(&engine, Kernel::Vgh, &cfg);
            let g = t.ops_per_sec / 1e9;
            if t.ops_per_sec > best.0 {
                best = (t.ops_per_sec, nb);
            }
            println!("  Nb = {nb:>5}: {g:.3} G-evals/s");
        }
        println!("  -> optimal Nb on this machine: {}\n", best.1);
    }
    println!("(paper: Nb* = 64 on BDW/BG-Q, 512 on KNC/KNL — machine-dependent,");
    println!(" problem-size-independent; tune once per architecture)");
}
