//! Quickstart: build a multi-orbital B-spline table, evaluate orbitals,
//! see the three optimization steps of the paper on one position, and
//! evaluate a whole position block through the batched API (one
//! pre-allocated output block per position, no allocation in the loop).
//!
//! Run: `cargo run --release -p qmc-bench --example quickstart`

use bspline::SpoEngine;
use bspline::{BsplineAoS, BsplineAoSoA, BsplineSoA, PosBlock};
use rand::rngs::StdRng;
use rand::SeedableRng;
use einspline::{Grid1, MultiCoefs};

fn main() {
    // A 32-orbital table on a 24³ periodic grid over the unit cube
    // (fractional coordinates), random coefficients as in miniQMC.
    let n = 32;
    let g = Grid1::periodic(0.0, 1.0, 24);
    let mut table = MultiCoefs::<f32>::new(g, g, g, n);
    table.fill_random(&mut StdRng::seed_from_u64(2024));
    println!(
        "coefficient table: {} orbitals, grid 24^3, {:.1} MB",
        n,
        table.bytes() as f64 / 1e6
    );

    let pos = [0.31f32, 0.72, 0.18];

    // Baseline (AoS outputs, Fig. 4a).
    let aos = BsplineAoS::new(table.clone());
    let mut out_aos = aos.make_out();
    aos.vgh(pos, &mut out_aos);

    // Opt A: SoA output streams (Fig. 4b).
    let soa = BsplineSoA::new(table.clone());
    let mut out_soa = soa.make_out();
    soa.vgh(pos, &mut out_soa);

    // Opt B: AoSoA tiling, Nb = 8.
    let tiled = BsplineAoSoA::from_multi(&table, 8);
    let mut out_tiled = tiled.make_out();
    tiled.vgh(pos, &mut out_tiled);
    println!("AoSoA engine: {} tiles of Nb = {}", tiled.n_tiles(), tiled.nb());

    // All three layouts produce the same physics.
    println!("\norbital  value        |grad|      laplacian   (layouts agree)");
    for k in [0usize, 7, 31] {
        let v = out_soa.value(k);
        let gvec = out_soa.gradient(k);
        let gn = (gvec[0] * gvec[0] + gvec[1] * gvec[1] + gvec[2] * gvec[2]).sqrt();
        let lap = out_soa.hessian_trace(k);
        let agree = (out_aos.value(k) - v).abs() < 1e-4
            && (out_tiled.value(k) - v).abs() < 1e-6;
        println!("{k:>7}  {v:>+.4e}  {gn:>+.4e}  {lap:>+.4e}  {agree}");
    }

    // The batched multi-walker API: a whole SoA block of positions per
    // engine call. Output blocks are allocated ONCE (make_batch_out)
    // and reused — the engine only overwrites. For the tiled engine the
    // batch runs tile-major: one coefficient tile serves every position
    // before the next tile is touched, and the basis weights are
    // computed once per position for all tiles.
    let mut rng = StdRng::seed_from_u64(7);
    let block: PosBlock<f32> =
        PosBlock::random(&mut rng, 8, SpoEngine::<f32>::domain(&tiled));
    let mut batch_out = tiled.make_batch_out(block.len());
    tiled.vgh_batch(&block, &mut batch_out);
    println!("\nbatched VGH over {} positions (tile-major):", block.len());
    for (i, p) in block.iter().enumerate() {
        println!(
            "  pos {i} [{:+.2} {:+.2} {:+.2}]  phi_0 = {:+.4e}  lap_0 = {:+.4e}",
            p[0],
            p[1],
            p[2],
            batch_out.block(i).value(0),
            batch_out.block(i).hessian_trace(0),
        );
    }
}
