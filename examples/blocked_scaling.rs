//! Blocked-vs-monolithic nested-generation scaling on the host —
//! the runnable walkthrough of the orbital-block decomposition
//! (`bspline::blocked`) and the walker×block nested schedule.
//!
//! ```text
//! cargo run --release --example blocked_scaling
//! QMC_N=2048 QMC_NS=512 QMC_WALKERS=4 QMC_GRID=32 QMC_THREADS=4 \
//!     cargo run --release --example blocked_scaling
//! ```
//!
//! Env knobs: `QMC_N` (orbitals), `QMC_GRID` (grid per dimension),
//! `QMC_WALKERS`, `QMC_NS` (positions per walker), `QMC_REPS`,
//! `QMC_THREADS` (worker pin, via the rayon stub). One row per budget
//! candidate ({L2, LLC/workers, whole table} + the recorded default),
//! comparing one VGH generation against the monolithic single-object
//! engine at the same walker×thread shape.

use bspline::blocked::BlockedEngine;
use bspline::parallel::{run_nested, run_nested_blocked};
use bspline::prelude::*;
use bspline::tuning::BlockBudgets;
use bspline::walker::walker_rng;
use einspline::{Grid1, MultiCoefs};

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let n = env_usize("QMC_N", 1024);
    let ng = env_usize("QMC_GRID", 32);
    let walkers = env_usize("QMC_WALKERS", 4);
    let ns = env_usize("QMC_NS", 256);
    let reps = env_usize("QMC_REPS", 3);
    let nth = rayon::current_num_threads();

    let g = Grid1::periodic(0.0, 1.0, ng);
    let mut table = MultiCoefs::<f32>::new(g, g, g, n);
    table.fill_random(&mut walker_rng(99, 0));
    println!(
        "N={n} grid={ng}^3 table={} MiB walkers={walkers} ns={ns} nth={nth} simd={}",
        table.bytes() >> 20,
        bspline::simd::active_backend(),
    );

    let domain = [(0.0, 1.0); 3];
    let positions: Vec<PosBlock<f32>> = (0..walkers)
        .map(|w| PosBlock::random(&mut walker_rng(7, w), ns, domain))
        .collect();

    // Monolithic reference: the single multi-spline object (1 tile).
    let mono = BsplineAoSoA::from_multi(&table, n);
    let mut mono_out: Vec<WalkerTiled<f32>> = (0..walkers).map(|_| mono.make_out()).collect();
    let mut best_mono = f64::INFINITY;
    run_nested(&mono, Kernel::Vgh, &mut mono_out, &positions, nth);
    for _ in 0..reps {
        let d = run_nested(&mono, Kernel::Vgh, &mut mono_out, &positions, nth);
        best_mono = best_mono.min(d.as_secs_f64());
    }
    let evals = (n * walkers * ns) as f64;
    println!(
        "monolithic: {:8.1} ms   {:6.2} M-evals/s",
        best_mono * 1e3,
        evals / best_mono / 1e6
    );
    drop((mono, mono_out));

    let budgets = BlockBudgets::detect(table.bytes());
    let candidates = vec![
        ("L2", budgets.l2),
        ("LLC/workers", budgets.l3_per_core),
        ("whole-table", budgets.whole_table),
        ("default", bspline::tuning::default_block_budget(table.bytes())),
    ];
    // Measure each distinct decomposition once (several budgets can
    // resolve to the same block width — notably "default" is the
    // LLC/workers candidate by construction).
    let mut seen_nb: Vec<usize> = Vec::new();
    for (label, budget) in candidates {
        let nb = table.block_splines_for_budget(budget);
        if seen_nb.contains(&nb) {
            continue;
        }
        seen_nb.push(nb);
        let engine = BlockedEngine::from_multi(&table, budget);
        let mut outs: Vec<WalkerSoA<f32>> = (0..walkers).map(|_| engine.make_out()).collect();
        run_nested_blocked(&engine, Kernel::Vgh, &mut outs, &positions, nth);
        let mut best = f64::INFINITY;
        for _ in 0..reps {
            let d = run_nested_blocked(&engine, Kernel::Vgh, &mut outs, &positions, nth);
            best = best.min(d.as_secs_f64());
        }
        println!(
            "blocked {label:>12} ({:7} KiB, nb={:4}, B={:3}): {:8.1} ms   {:6.2} M-evals/s   {:4.2}x vs monolithic",
            budget >> 10,
            engine.nb(),
            engine.n_blocks(),
            best * 1e3,
            evals / best / 1e6,
            best_mono / best,
        );
    }
}
