//! Reproduce the paper's Fig. 2a: the four piecewise-cubic B-spline
//! basis functions contributing on one grid interval, as CSV.
//!
//! Run: `cargo run --release -p qmc-bench --example basis_curves > fig2a.csv`

use einspline::basis::{basis_function, weights};

fn main() {
    println!("t,b0,b1,b2,b3,sum,basis(-1-t)");
    for i in 0..=100 {
        let t = i as f64 / 100.0;
        let w = weights(t);
        let sum: f64 = w.iter().sum();
        println!(
            "{t:.2},{:.6},{:.6},{:.6},{:.6},{sum:.6},{:.6}",
            w[0],
            w[1],
            w[2],
            w[3],
            basis_function(t + 1.0) // the b0 curve via the cardinal form
        );
    }
    eprintln!("(partition of unity: 'sum' column is identically 1)");
}
