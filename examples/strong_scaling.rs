//! Nested-threading demo (Opt C): one walker's evaluation split across
//! threads by tiles, machine-wide thread budget fixed, walkers reduced
//! accordingly — the paper's path to strong scaling (Fig. 9).
//!
//! Flows through the batched API: every walker's generation is one
//! [`PosBlock`] handed to [`run_nested`], and the per-walker output
//! blocks + position blocks are allocated once up front and reused
//! across all repetitions and thread counts (no allocation inside the
//! measurement loop).
//!
//! Run: `cargo run --release -p qmc-bench --example strong_scaling`

use bspline::parallel::run_nested;
use bspline::walker::walker_rng;
use bspline::{BsplineAoSoA, Kernel, PosBlock, SpoEngine, WalkerTiled};
use qmc_bench::workload::coefficients;

fn main() {
    let n = 1024;
    let nb = 64;
    let ns = 64;
    let table = coefficients(n, (24, 24, 24), 42);
    let engine = BsplineAoSoA::from_multi(&table, nb);
    let total = std::thread::available_parallelism()
        .map(|v| v.get())
        .unwrap_or(2);
    println!(
        "N = {n}, Nb = {nb} ({} tiles), machine threads = {total}",
        engine.n_tiles()
    );

    // One position block and one tiled output block per walker at the
    // maximum walker count, allocated once and reused for every nth.
    let domain = SpoEngine::<f32>::domain(&engine);
    let positions: Vec<PosBlock<f32>> = (0..total)
        .map(|w| PosBlock::random(&mut walker_rng(9, w), ns, domain))
        .collect();
    let mut walkers: Vec<WalkerTiled<f32>> =
        (0..total).map(|_| engine.make_out()).collect();

    println!("\nnth  walkers  generation wall  speedup  efficiency");
    let mut base = None;
    let mut nth = 1;
    while nth <= total {
        let n_walkers = (total / nth).max(1);
        let mut best = f64::INFINITY;
        for _ in 0..3 {
            let d = run_nested(
                &engine,
                Kernel::Vgh,
                &mut walkers[..n_walkers],
                &positions[..n_walkers],
                nth,
            );
            best = best.min(d.as_secs_f64());
        }
        let b = *base.get_or_insert(best);
        let sp = b / best;
        println!(
            "{nth:>3}  {n_walkers:>7}  {:>13.2} ms  {sp:>6.2}x  {:>9.0} %",
            best * 1e3,
            100.0 * sp / nth as f64
        );
        nth *= 2;
    }
    println!("\n(each generation: every walker evaluates {ns} VGH positions as one");
    println!(" batched block; walkers per node drop by nth, so ideal per-generation");
    println!(" speedup = nth)");
}
