//! Nested-threading demo (Opt C): one walker's evaluation split across
//! threads by tiles, machine-wide thread budget fixed, walkers reduced
//! accordingly — the paper's path to strong scaling (Fig. 9).
//!
//! Run: `cargo run --release -p qmc-bench --example strong_scaling`

use bspline::parallel::nested_generation_time;
use bspline::{BsplineAoSoA, Kernel};
use qmc_bench::workload::coefficients;

fn main() {
    let n = 1024;
    let nb = 64;
    let table = coefficients(n, (24, 24, 24), 42);
    let engine = BsplineAoSoA::from_multi(&table, nb);
    let total = std::thread::available_parallelism()
        .map(|v| v.get())
        .unwrap_or(2);
    println!(
        "N = {n}, Nb = {nb} ({} tiles), machine threads = {total}",
        engine.n_tiles()
    );
    println!("\nnth  walkers  generation wall  speedup  efficiency");
    let mut base = None;
    let mut nth = 1;
    while nth <= total {
        let mut best = f64::INFINITY;
        for _ in 0..3 {
            best = best.min(
                nested_generation_time(&engine, Kernel::Vgh, total, nth, 64, 9)
                    .as_secs_f64(),
            );
        }
        let b = *base.get_or_insert(best);
        let sp = b / best;
        println!(
            "{nth:>3}  {:>7}  {:>13.2} ms  {sp:>6.2}x  {:>9.0} %",
            total / nth,
            best * 1e3,
            100.0 * sp / nth as f64
        );
        nth *= 2;
    }
    println!("\n(each generation: every walker evaluates 64 VGH positions; walkers");
    println!(" per node drop by nth, so ideal per-generation speedup = nth)");
}
