//! A small end-to-end QMC run on graphite: Slater–Jastrow wavefunction,
//! particle-by-particle VMC, per-kernel profile — the full pipeline the
//! paper's kernels live in (scaled down to a single primitive cell).
//!
//! The move loop runs the single-electron fast path by default (V-only
//! ratio with cached locate/weights, VGL on accept). Set
//! `QMC_ALL_ELECTRON=1` to A/B against the legacy all-electron propose
//! path (full VGH per ratio, nothing cached).
//!
//! Run: `cargo run --release -p qmc-bench --example graphite_vmc`

use miniqmc::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// `QMC_ALL_ELECTRON=1` selects the legacy all-electron propose path.
fn mode_from_env() -> EvalMode {
    match std::env::var("QMC_ALL_ELECTRON").as_deref() {
        Ok("1") | Ok("true") => EvalMode::AllElectron,
        _ => EvalMode::PerElectron,
    }
}

fn main() {
    // 1×1×1 graphite cell: 4 carbons, 16 electrons, 8 orbitals per spin.
    let sys = CoralSystem::new(1, 1, 1, (12, 12, 14));
    println!(
        "graphite cell: {} carbons, {} electrons, N = {} orbitals/spin",
        sys.ions.len(),
        sys.n_electrons(),
        sys.n_per_spin
    );

    // Synthetic smooth orbitals fitted through the einspline solver.
    let spo = SpoSet::new(sys.orbitals::<f64>(7), sys.lattice);
    let electrons = random_electrons(
        sys.lattice,
        sys.n_electrons(),
        &mut StdRng::seed_from_u64(11),
    );
    let rc = sys.lattice.wigner_seitz_radius() * 0.9;
    let mut wf = TrialWaveFunction::new(
        spo,
        &sys.ions,
        electrons,
        BsplineFunctor::rpa_like(0.3, 1.0, rc, 32),
        BsplineFunctor::rpa_like(0.5, 1.2, rc, 32),
    );
    wf.set_eval_mode(mode_from_env());
    println!("initial log|Psi_T| = {:.6}", wf.log_psi());
    println!("SPO move path: {:?}", wf.eval_mode());

    let result = run_vmc(
        &mut wf,
        &VmcConfig {
            n_steps: 10,
            step_size: 0.6,
            seed: 3,
        },
    );
    println!(
        "\nVMC: 10 sweeps x {} electrons, acceptance = {:.1} %",
        wf.n_electrons(),
        100.0 * result.acceptance
    );
    println!("final log|Psi_T| = {:.6}", result.log_psi);
    println!("\nper-kernel profile (cf. paper Tables II/III):");
    println!("{}", result.profile);
}
