//! `qmc-repro` — umbrella facade over the workspace.
//!
//! The real machinery lives in the member crates; this crate exists so
//! the workspace-level integration tests (`tests/`) and walkthrough
//! examples (`examples/`) have a package to hang off, and so downstream
//! users can depend on one crate and reach everything:
//!
//! * [`einspline`] — B-spline basis, grids, solvers, the `MultiCoefs`
//!   coefficient table;
//! * [`bspline`] — the AoS / SoA / AoSoA orbital evaluation engines and
//!   nested-threading driver (the paper's Opts A–C);
//! * [`miniqmc`] — lattice, particles, distance tables, Jastrow,
//!   determinants, VMC/DMC drivers;
//! * [`cachesim`] — trace-driven cache models of the paper's platforms;
//! * [`roofline`] — the analytic roofline model behind Fig. 10;
//! * [`qmc_bench`] — the table/figure experiment harness.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub use bspline;
pub use cachesim;
pub use einspline;
pub use miniqmc;
pub use qmc_bench;
pub use roofline;
