//! Quick probe for the routed-vs-FIFO ablation (dev tool).

use bspline::service::{RoutingPolicy, ServiceConfig};
use bspline::Kernel;
use qmc_bench::workload::batch_size;
use qmc_bench::{coefficients, measure_routed_ablation, ServiceLoadConfig};
use std::time::Duration;

/// Strict env parse, matching `QMC_THREADS` / `QMC_NUMA_DOMAINS`: a
/// set-but-garbage knob panics instead of silently probing the default.
fn env_usize(key: &str, default: usize) -> usize {
    match std::env::var(key) {
        Err(_) => default,
        Ok(raw) => match raw.trim().parse::<usize>() {
            Ok(0) => panic!("{key} must be a positive integer, got 0"),
            Ok(n) => n,
            Err(_) => panic!("{key} must be a positive integer, got {raw:?}"),
        },
    }
}

/// Like [`env_usize`] but 0 is legal (streaming workloads, a zero
/// retry budget).
fn env_usize_or_zero(key: &str, default: usize) -> usize {
    match std::env::var(key) {
        Err(_) => default,
        Ok(raw) => raw.trim().parse::<usize>().unwrap_or_else(|_| {
            panic!("{key} must be a non-negative integer, got {raw:?}")
        }),
    }
}

fn main() {
    let n = env_usize("PROBE_N", 2048);
    let domains = env_usize("PROBE_DOMAINS", 8);
    let ppr = env_usize("PROBE_PPR", 8);
    let pipeline = env_usize("PROBE_PIPELINE", 8);
    let distinct = env_usize_or_zero("PROBE_DISTINCT", 2);
    let submitters = env_usize("PROBE_SUBMITTERS", 4);
    let max_batch = env_usize("PROBE_MAX_BATCH", 2 * batch_size());
    let reqs = env_usize("PROBE_REQS", 32);
    let reps = env_usize("PROBE_REPS", 3);
    let table = coefficients(n, (32, 32, 32), 77);
    eprintln!(
        "probe: N={n} domains={domains} ppr={ppr} pipeline={pipeline} distinct={distinct} \
         submitters={submitters} max_batch={max_batch} table={} MB",
        table.bytes() / (1 << 20)
    );
    let base = ServiceConfig {
        replicas: env_usize("PROBE_REPLICAS", 1),
        max_batch,
        max_wait: Duration::from_micros(200),
        queue_positions: 4096,
        routing: RoutingPolicy::Fifo,
        max_retries: env_usize_or_zero("PROBE_RETRIES", 2),
    };
    let load = ServiceLoadConfig {
        submitters,
        requests_per_submitter: reqs,
        positions_per_request: ppr,
        offered_rps: None,
        pipeline,
        distinct_blocks: distinct,
        reps,
        seed: 0xd15c,
        deadline: None,
    };
    let a = measure_routed_ablation(&table, Kernel::Vgh, base, domains, &load);
    println!(
        "fifo     {:8.2} M-evals/s  p50/p95/p99 {:6.0}/{:6.0}/{:6.0} µs  mean-batch {:.1}",
        a.fifo.evals_per_sec / 1e6,
        a.fifo.p50_us,
        a.fifo.p95_us,
        a.fifo.p99_us,
        a.fifo.mean_batch_positions
    );
    println!(
        "affinity {:8.2} M-evals/s  p50/p95/p99 {:6.0}/{:6.0}/{:6.0} µs  mean-batch {:.1}  spilled {}  stolen {}",
        a.routed.evals_per_sec / 1e6,
        a.routed.p50_us,
        a.routed.p95_us,
        a.routed.p99_us,
        a.routed.mean_batch_positions,
        a.spilled,
        a.stolen
    );
    println!("speedup  {:.3}x", a.speedup());
}
