//! Fault-injection smoke for the evaluation service (CI tool).
//!
//! Builds an [`SpoService`] with a scripted [`ServiceFaultPlan`] that
//! panics both replica workers mid-load, drives it with concurrent
//! pipelined submitters, and checks the fault-tolerance contract the
//! chaos proptests assert statistically:
//!
//! * every ticket resolves (no deadlock, no lost caller buffers);
//! * every successful result is bit-identical to the direct
//!   `eval_batch` over the same positions;
//! * the supervisor respawned at least one killed worker slot.
//!
//! Exits nonzero when any ticket is lost, any result mismatches, or no
//! respawn happened (the injected faults never fired — a dead harness).
//!
//!   cargo run --release -p qmc-bench --example service_chaos

use bspline::service::{ServiceConfig, ServiceFault, ServiceFaultPlan, SpoService};
use bspline::{BsplineSoA, Kernel, PosBlock, SpoEngine};
use qmc_bench::coefficients;
use qmc_bench::workload::is_quick;
use std::process::ExitCode;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

fn main() -> ExitCode {
    // The injected worker panics are expected; keep the smoke's output
    // readable by silencing the default hook for service worker
    // threads only.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let here = std::thread::current();
        if here.name().is_some_and(|t| t.starts_with("spo-worker")) {
            return;
        }
        default_hook(info);
    }));

    let quick = is_quick();
    let n = if quick { 48 } else { 128 };
    let table = coefficients(n, (12, 12, 12), 0xc5a0);
    let submitters = 4usize;
    let requests_per_submitter = if quick { 16 } else { 48 };
    let ppr = 8usize;

    let service = SpoService::with_fault_plan(
        BsplineSoA::new(table),
        ServiceConfig {
            replicas: 2,
            max_batch: 32,
            max_wait: Duration::from_micros(200),
            queue_positions: 1024,
            ..ServiceConfig::default()
        },
        ServiceFaultPlan {
            faults: vec![
                ServiceFault::Panic { worker: 0, at_request: 8 },
                ServiceFault::Panic { worker: 1, at_request: 24 },
            ],
        },
    );

    let resolved = AtomicUsize::new(0);
    let lost = AtomicUsize::new(0);
    let failed = AtomicUsize::new(0);
    let mismatched = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for w in 0..submitters {
            let service = &service;
            let resolved = &resolved;
            let lost = &lost;
            let failed = &failed;
            let mismatched = &mismatched;
            s.spawn(move || {
                let mut rng = bspline::walker::walker_rng(0xc5a1, w);
                let domain = service.engine().domain();
                // Two distinct blocks per submitter, each with a direct
                // bit-identity reference computed up front.
                let blocks: Vec<PosBlock<f32>> = (0..2)
                    .map(|_| PosBlock::random(&mut rng, ppr, domain))
                    .collect();
                let refs: Vec<_> = blocks
                    .iter()
                    .map(|b| {
                        let mut out = service.engine().make_batch_out(b.len());
                        service.engine().eval_batch(Kernel::Vgh, b, &mut out);
                        out
                    })
                    .collect();
                let tickets: Vec<_> = (0..requests_per_submitter)
                    .map(|i| {
                        let b = &blocks[i % blocks.len()];
                        let out = service.engine().make_batch_out(b.len());
                        (i % blocks.len(), service.submit(Kernel::Vgh, b.clone(), out))
                    })
                    .collect();
                for (bi, ticket) in tickets {
                    match ticket.redeem_for(Duration::from_secs(10)) {
                        Ok((_, out, _)) => {
                            resolved.fetch_add(1, Ordering::Relaxed);
                            let want = &refs[bi];
                            for j in 0..ppr {
                                for k in 0..n {
                                    if out.block(j).value(k) != want.block(j).value(k)
                                        || out.block(j).hessian(k)
                                            != want.block(j).hessian(k)
                                    {
                                        mismatched.fetch_add(1, Ordering::Relaxed);
                                    }
                                }
                            }
                        }
                        Err(f) if f.ticket.is_some() => {
                            // A 10 s redeem timeout under this tiny load
                            // means the request never resolved: lost.
                            lost.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(_) => {
                            // Typed service failure (retry budget, shed):
                            // resolved, with the buffers handed back.
                            resolved.fetch_add(1, Ordering::Relaxed);
                            failed.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            });
        }
    });

    let stats = service.stats();
    let total = submitters * requests_per_submitter;
    println!(
        "chaos: {total} requests -> resolved {} (of which {} typed failures), \
         lost {}, mismatched {}",
        resolved.load(Ordering::Relaxed),
        failed.load(Ordering::Relaxed),
        lost.load(Ordering::Relaxed),
        mismatched.load(Ordering::Relaxed),
    );
    println!(
        "stats: panics {} respawns {} retried {} shed {}  health {:?} live {}",
        stats.panics,
        stats.respawns,
        stats.retried,
        stats.shed,
        service.health(),
        service.live_workers(),
    );
    let ok = lost.load(Ordering::Relaxed) == 0
        && mismatched.load(Ordering::Relaxed) == 0
        && resolved.load(Ordering::Relaxed) == total
        && stats.respawns >= 1;
    if ok {
        println!("chaos smoke: OK");
        ExitCode::SUCCESS
    } else {
        eprintln!("chaos smoke: FAILED (lost tickets, mismatch, or no respawn)");
        ExitCode::FAILURE
    }
}
