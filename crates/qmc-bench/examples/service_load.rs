//! Open-loop load sweep against the coalescing evaluation service.
//!
//! Builds one [`SpoService`] over an SoA engine, drives it with
//! concurrent submitters at a sweep of offered rates (plus a final
//! saturation point), and prints throughput, latency percentiles, and
//! coalescing effectiveness next to the closed-loop batched reference —
//! the load/latency curve a QMC driver would use to pick its operating
//! point.
//!
//!   cargo run --release -p qmc-bench --example service_load
//!
//! Environment knobs (all optional):
//!
//! * `QMC_BENCH_QUICK=1` — small grid/N for smoke runs;
//! * `QMC_SERVICE_REPLICAS` — worker replica count (default 1);
//! * `QMC_SERVICE_MAX_BATCH` — fused-batch position target (default
//!   4 × the closed-loop batch size);
//! * `QMC_SERVICE_PPR` — positions per request (default 8);
//! * `QMC_SERVICE_SUBMITTERS` — concurrent submitter threads (default 4);
//! * `QMC_SERVICE_PIPELINE` — in-flight requests per submitter
//!   (default 4). `submitters × pipeline × positions/request` is the
//!   cycling output working set — keep it near the closed-loop batch
//!   footprint when hunting peak saturation throughput;
//! * `QMC_SERVICE_SAT_ONLY=1` — skip the paced sweep points and measure
//!   only the saturation row (fast config probing);
//! * `QMC_SERVICE_DISTINCT` — distinct position blocks per submitter
//!   (default 2; 0 streams fresh random positions every request —
//!   expect a bandwidth-bound ceiling well under the closed-loop
//!   reference, which re-evaluates a cache-resident position set);
//! * `QMC_SERVICE_ROUTING` — `fifo` (single queue, the default) or
//!   `affinity` (shard queues with block-affinity routing; shard count
//!   from `QMC_NUMA_DOMAINS` or the host's NUMA topology);
//! * `QMC_SERVICE_DEADLINE_US` — service-side request deadline in µs
//!   (unset = no deadline): requests still queued past it are shed and
//!   counted in the `shed` column instead of the latency percentiles;
//! * `QMC_SERVICE_RETRIES` — crash re-enqueue budget per request
//!   (default 2; 0 = fail a request on its first lost worker).
//!
//! All knobs parse strictly, matching `QMC_THREADS` /
//! `QMC_NUMA_DOMAINS`: a set-but-garbage value panics instead of
//! silently falling back and invalidating the measurement.

use bspline::service::{RoutingPolicy, ServiceConfig, SpoService};
use bspline::{BsplineSoA, Kernel};
use qmc_bench::workload::{batch_size, is_quick};
use qmc_bench::{
    coefficients, measure_kernel_batched, measure_service, MeasureConfig,
    ServiceLoadConfig, Table,
};
use std::time::Duration;

fn env_usize(key: &str, default: usize) -> usize {
    match std::env::var(key) {
        Err(_) => default,
        Ok(raw) => match raw.trim().parse::<usize>() {
            Ok(0) => panic!("{key} must be a positive integer, got 0"),
            Ok(n) => n,
            Err(_) => panic!("{key} must be a positive integer, got {raw:?}"),
        },
    }
}

/// Like [`env_usize`] but 0 is a legal value (streaming workloads, a
/// zero retry budget).
fn env_usize_or_zero(key: &str, default: usize) -> usize {
    match std::env::var(key) {
        Err(_) => default,
        Ok(raw) => raw.trim().parse::<usize>().unwrap_or_else(|_| {
            panic!("{key} must be a non-negative integer, got {raw:?}")
        }),
    }
}

fn main() {
    let quick = is_quick();
    let (grid, n) = if quick {
        ((12, 12, 12), 128)
    } else {
        ((32, 32, 32), 512)
    };
    let replicas = env_usize("QMC_SERVICE_REPLICAS", 1);
    let max_batch = env_usize("QMC_SERVICE_MAX_BATCH", 4 * batch_size());
    let ppr = env_usize("QMC_SERVICE_PPR", 8);
    let submitters = env_usize("QMC_SERVICE_SUBMITTERS", 4);
    let pipeline = env_usize("QMC_SERVICE_PIPELINE", 4);
    // 0 = fresh random positions per request (streaming workload);
    // n > 0 = each submitter cycles n distinct blocks, mirroring the
    // closed-loop reference's re-evaluated position set.
    let distinct = env_usize_or_zero("QMC_SERVICE_DISTINCT", 2);
    let max_retries = env_usize_or_zero("QMC_SERVICE_RETRIES", 2);
    let deadline = match std::env::var("QMC_SERVICE_DEADLINE_US") {
        Err(_) => None,
        Ok(_) => Some(Duration::from_micros(
            env_usize("QMC_SERVICE_DEADLINE_US", 0) as u64,
        )),
    };
    let routing = match std::env::var("QMC_SERVICE_ROUTING").as_deref() {
        Err(_) | Ok("fifo") => RoutingPolicy::Fifo,
        Ok("affinity") => RoutingPolicy::Auto,
        Ok(other) => panic!("QMC_SERVICE_ROUTING must be fifo or affinity, got {other:?}"),
    };
    let table = coefficients(n, grid, 7);

    // Closed-loop reference: the direct batched VGH call the service
    // must approach at saturation.
    let soa = BsplineSoA::new(table.clone());
    let mcfg = MeasureConfig {
        ns: if quick { 32 } else { 128 },
        reps: 3,
        seed: 7,
    };
    let closed = measure_kernel_batched(&soa, Kernel::Vgh, &mcfg).ops_per_sec;
    drop(soa);

    let service = SpoService::new(
        BsplineSoA::new(table),
        ServiceConfig {
            replicas,
            max_batch,
            max_wait: Duration::from_micros(200),
            queue_positions: 4096,
            routing,
            max_retries,
        },
    );
    println!(
        "SoA f32 N={n} grid={grid:?}  replicas={replicas} max_batch={max_batch} \
         positions/request={ppr} submitters={submitters} shards={}",
        service.n_shards()
    );
    println!("closed-loop batched VGH reference: {:.2} M-evals/s", closed / 1e6);

    let mut t = Table::new(
        "Open-loop VGH load sweep",
        &[
            "offered req/s",
            "M-evals/s",
            "vs closed",
            "p50 µs",
            "p95 µs",
            "p99 µs",
            "shed",
            "pos/engine-call",
        ],
    );
    // Offered rates as a fraction of the closed-loop capacity, then
    // saturation (None). Requests sized so each point runs ~1-3 s.
    let capacity_rps = closed / (n as f64 * ppr as f64);
    let points: Vec<Option<f64>> =
        if std::env::var("QMC_SERVICE_SAT_ONLY").is_ok_and(|v| v == "1") {
            vec![None]
        } else {
            vec![
                Some(0.1 * capacity_rps),
                Some(0.3 * capacity_rps),
                Some(0.6 * capacity_rps),
                None,
            ]
        };
    for rps in points {
        let cfg = ServiceLoadConfig {
            submitters,
            requests_per_submitter: if quick { 16 } else { 64 },
            positions_per_request: ppr,
            offered_rps: rps,
            pipeline,
            distinct_blocks: distinct,
            reps: 3,
            seed: 0x10ad,
            deadline,
        };
        let load = measure_service(&service, Kernel::Vgh, &cfg);
        t.row(vec![
            rps.map_or_else(|| "saturation".into(), |r| format!("{r:.0}")),
            format!("{:.2}", load.evals_per_sec / 1e6),
            format!("{:.2}x", load.evals_per_sec / closed),
            format!("{:.0}", load.p50_us),
            format!("{:.0}", load.p95_us),
            format!("{:.0}", load.p99_us),
            format!("{}", load.shed),
            format!("{:.1}", load.mean_batch_positions),
        ]);
    }
    t.print();
}
