//! Plain-text table rendering for the experiment binaries.

/// A simple aligned-column table.
#[derive(Clone, Debug, Default)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Create a new instance.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Self {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append one row (must match the header count).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "column count mismatch");
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the container is empty.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let ncol = self.headers.len();
        let mut width = vec![0usize; ncol];
        for (c, h) in self.headers.iter().enumerate() {
            width[c] = h.chars().count();
        }
        for row in &self.rows {
            for (c, cell) in row.iter().enumerate() {
                width[c] = width[c].max(cell.chars().count());
            }
        }
        let mut out = String::new();
        if !self.title.is_empty() {
            out.push_str(&format!("## {}\n", self.title));
        }
        let fmt_row = |cells: &[String]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(c, s)| format!("{:>w$}", s, w = width[c]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers));
        out.push('\n');
        out.push_str(
            &width
                .iter()
                .map(|w| "-".repeat(*w))
                .collect::<Vec<_>>()
                .join("  "),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }

    /// Print to stdout.
    pub fn print(&self) {
        println!("{}", self.render());
    }
}

/// Format a throughput in G-evals/s with 3 significant digits.
pub fn gops(x: f64) -> String {
    format!("{:.3}", x / 1e9)
}

/// Format a speedup ratio.
pub fn speedup(x: f64) -> String {
    format!("{x:.2}x")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new("demo", &["N", "T"]);
        t.row(vec!["128".into(), "1.5".into()]);
        t.row(vec!["4096".into(), "0.25".into()]);
        let r = t.render();
        assert!(r.contains("## demo"));
        assert!(r.contains(" 128"));
        assert!(r.contains("4096"));
        assert_eq!(t.len(), 2);
    }

    #[test]
    #[should_panic(expected = "column count")]
    fn wrong_arity_rejected() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(vec!["1".into()]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(gops(2.5e9), "2.500");
        assert_eq!(speedup(3.475), "3.48x");
    }
}
