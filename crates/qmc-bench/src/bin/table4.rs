//! Table IV — speedups of the optimization steps at N = 2048:
//! A (AoS→SoA), B (AoSoA tiling, cumulative), C (nested threading,
//! cumulative, including the strong-scaling factor nth).
//!
//! Host columns measure the real engines; platform columns use the
//! cachesim + roofline model at the paper's optimal tile sizes and nth.

use bspline::parallel::nested_generation_time;
use bspline::{BsplineAoS, BsplineAoSoA, BsplineSoA, Kernel, Layout};
use cachesim::Platform;
use qmc_bench::report::speedup;
use qmc_bench::workload::{grid, samples_for};
use qmc_bench::{
    coefficients, measure_kernel, measure_tile_major, MeasureConfig, ModelScenario, Table,
};

fn host_rows(n: usize, nb: usize) -> Vec<(Kernel, f64, f64, f64)> {
    let grid = grid();
    let table = coefficients(n, grid, 77);
    let cfg = MeasureConfig {
        ns: samples_for(n),
        reps: 3,
        seed: 3,
    };
    let host_threads = std::thread::available_parallelism()
        .map(|v| v.get())
        .unwrap_or(2);
    let mut out = Vec::new();
    for k in Kernel::ALL {
        let aos = BsplineAoS::new(table.clone());
        let t0 = measure_kernel(&aos, k, &cfg).ops_per_sec;
        drop(aos);
        let soa = BsplineSoA::new(table.clone());
        let ta = measure_kernel(&soa, k, &cfg).ops_per_sec;
        drop(soa);
        let tiled = BsplineAoSoA::from_multi(&table, nb);
        let tb = measure_tile_major(&tiled, k, &cfg).ops_per_sec;
        // Opt C on the host: nth = all host threads on one walker; the
        // paper's convention multiplies by the strong-scaling factor nth.
        let nth = host_threads;
        let ns = cfg.ns;
        let mut best1 = f64::INFINITY;
        let mut bestn = f64::INFINITY;
        for _ in 0..3 {
            best1 = best1.min(
                nested_generation_time(&tiled, k, host_threads, 1, ns, 5).as_secs_f64(),
            );
            bestn = bestn.min(
                nested_generation_time(&tiled, k, host_threads, nth, ns, 5).as_secs_f64(),
            );
        }
        let tc = tb * (best1 / bestn) * nth as f64 / nth as f64; // T per gen scaled
        let gen_speedup = best1 / bestn; // per-generation wall gain at fixed machine
        out.push((k, ta / t0, tb / t0, (tb / t0) * gen_speedup));
        let _ = tc;
        eprintln!("host {k} done");
    }
    out
}

fn main() {
    let quick = qmc_bench::is_quick();
    let n = if quick { 512 } else { 2048 };
    let nb_host = if quick { 32 } else { 128 };

    let mut t = Table::new(
        format!("Table IV (host): cumulative speedups at N={n} (AoS reference)"),
        &["kernel", "A (SoA)", "B (AoSoA)", "C (nested, x gen-gain)"],
    );
    for (k, a, b, c) in host_rows(n, nb_host) {
        t.row(vec![
            k.to_string(),
            speedup(a),
            speedup(b),
            speedup(c),
        ]);
    }
    t.print();

    // ---- modelled platforms (VGH row of Table IV) -------------------------
    let mut m = Table::new(
        format!("Table IV (modelled, VGH): predicted cumulative speedups at N={n}"),
        &["platform", "A (SoA)", "B (AoSoA)", "C (nested)", "paper A/B/C"],
    );
    let paper = ["1.7 / 3.7 / 6.4", "2.6 / 5.2 / 35.2", "1.7 / 2.3 / 33.1", "1.9 / 2.7 / 5.2"];
    let nbs = [64usize, 512, 512, 64];
    let nths = [2usize, 8, 16, 2];
    for (i, p) in Platform::all().into_iter().enumerate() {
        let mk = |layout: Layout, nb: usize, nth: usize| {
            let mut sc = ModelScenario::vgh(layout, n, nb);
            sc.nth = nth;
            if quick {
                sc.grid = (16, 16, 16);
                sc.n_positions = 8;
            }
            qmc_bench::model_prediction(&p, &sc).throughput
        };
        let t0 = mk(Layout::Aos, n, 1);
        let ta = mk(Layout::Soa, n, 1);
        let tb = mk(Layout::AoSoA, nbs[i], 1);
        // C includes the strong-scaling factor nth (paper table note).
        let tc_thr = mk(Layout::AoSoA, (n / nths[i]).min(nbs[i]).max(16), nths[i]);
        let tc = nths[i] as f64 * tc_thr;
        m.row(vec![
            p.name.to_string(),
            speedup(ta / t0),
            speedup(tb / t0),
            speedup(tc / t0),
            paper[i].to_string(),
        ]);
        eprintln!("modelled {}", p.name);
    }
    m.print();
}
