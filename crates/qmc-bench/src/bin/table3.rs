//! Table III — profile after the distance-table + Jastrow SoA
//! optimizations (B-splines still AoS): the B-spline share becomes the
//! dominant cost, motivating the paper.
//!
//! Paper reference: B-splines 55–69 %, distance tables 20–23 %, Jastrow
//! 11–22 %.

use miniqmc::drivers::profile::Category;
use qmc_bench::{run_profile, ProfileConfig, Suite, Table};

fn main() {
    let cfg = if qmc_bench::is_quick() {
        ProfileConfig::small()
    } else {
        ProfileConfig::coral()
    };
    eprintln!(
        "running optimized-substrate (SoA) pbyp profile: graphite {}x{}x{}, grid {:?}, {} sweeps…",
        cfg.tiling.0, cfg.tiling.1, cfg.tiling.2, cfg.grid, cfg.sweeps
    );
    let report = run_profile(Suite::OptimizedSubstrate, &cfg).report();

    let mut t = Table::new(
        "Table III: miniQMC profile with SoA distance tables + Jastrow, % of runtime",
        &["kernel group", "share", "paper (KNL / BDW)"],
    );
    let paper = [
        (Category::Bspline, "68.5 / 55.3 %"),
        (Category::Distance, "20.3 / 22.6 %"),
        (Category::Jastrow, "11.2 / 22.1 %"),
        (Category::Determinant, "(not tabulated)"),
        (Category::Other, "(not tabulated)"),
    ];
    for (cat, range) in paper {
        t.row(vec![
            cat.to_string(),
            format!("{:.1} %", report.percent(cat)),
            range.to_string(),
        ]);
    }
    t.print();
    println!("total accounted time: {:?}", report.total());
}
