//! Fig. 9 — strong scaling with nested threading (Opt C): speedup of one
//! Monte Carlo generation vs threads-per-walker `nth` at N = 2048, with
//! the machine-wide thread count fixed and walkers reduced by `nth`.
//!
//! Paper (KNL): ≥90 % parallel efficiency up to nth = 16 while tiles
//! remain ≥ threads. The host here has few cores, so host numbers cover
//! small nth; the KNL-model rows extend the sweep by combining the
//! cachesim traffic at the per-thread tile partition with ideal
//! work-splitting (the paper's explicit-partition design point).

use bspline::blocked::BlockedEngine;
use bspline::parallel::{blocked_generation_time, nested_generation_time};
use bspline::{BsplineAoSoA, Kernel, Layout};
use cachesim::Platform;
use qmc_bench::workload::{grid, samples_for};
use qmc_bench::{coefficients, ModelScenario, Table};

fn main() {
    let quick = qmc_bench::is_quick();
    let n = if quick { 512 } else { 2048 };
    let nb = if quick { 32 } else { 128 };
    let grid = grid();
    // rayon's thread count honors QMC_THREADS, so sweeps are pinnable
    // (and a single-core host can still drive the nested schedules).
    let host_threads = rayon::current_num_threads();

    // ---- host measurement -------------------------------------------------
    let table = coefficients(n, grid, 99);
    let engine = BsplineAoSoA::from_multi(&table, nb);
    drop(table);
    let ns = samples_for(n);

    let mut t = Table::new(
        format!(
            "Fig 9: nested-threading generation speedup (host, {host_threads} threads, N={n}, Nb={nb})"
        ),
        &["nth", "walkers", "wall (ms)", "speedup", "efficiency"],
    );
    let mut base = None;
    let mut nth = 1;
    while nth <= host_threads {
        // Warm-up + best-of-3.
        let mut best = f64::INFINITY;
        for _ in 0..3 {
            let d = nested_generation_time(&engine, Kernel::Vgh, host_threads, nth, ns, 5);
            best = best.min(d.as_secs_f64());
        }
        let b = *base.get_or_insert(best);
        let sp = b / best;
        t.row(vec![
            nth.to_string(),
            (host_threads / nth).max(1).to_string(),
            format!("{:.1}", best * 1e3),
            format!("{sp:.2}x"),
            format!("{:.0} %", 100.0 * sp / nth as f64),
        ]);
        eprintln!("host nth={nth}");
        nth *= 2;
    }
    t.print();
    drop(engine);

    // ---- blocked vs monolithic (host) -------------------------------------
    // The schema-v4 baseline rows at bench scale: the single
    // multi-spline object (one tile — nothing for nested threads to
    // split) against the orbital-block decomposition at the recorded
    // default budget, both through the walker×block nested schedule.
    let table = coefficients(n, grid, 99);
    let budget = bspline::tuning::default_block_budget(table.bytes());
    let mono = BsplineAoSoA::from_multi(&table, n);
    let blocked = BlockedEngine::from_multi(&table, budget);
    drop(table);
    let mut b = Table::new(
        format!(
            "Fig 9 (blocked vs monolithic): one VGH generation, N={n}, budget={} KiB, B={}",
            budget / 1024,
            blocked.n_blocks()
        ),
        &["nth", "monolithic (ms)", "blocked (ms)", "blocked speedup"],
    );
    let mut nth = 1;
    while nth <= host_threads {
        let mut best_m = f64::INFINITY;
        let mut best_b = f64::INFINITY;
        for _ in 0..3 {
            let dm = nested_generation_time(&mono, Kernel::Vgh, host_threads, nth, ns, 5);
            best_m = best_m.min(dm.as_secs_f64());
            let db = blocked_generation_time(&blocked, Kernel::Vgh, host_threads, nth, ns, 5);
            best_b = best_b.min(db.as_secs_f64());
        }
        b.row(vec![
            nth.to_string(),
            format!("{:.1}", best_m * 1e3),
            format!("{:.1}", best_b * 1e3),
            format!("{:.2}x", best_m / best_b),
        ]);
        eprintln!("blocked-vs-monolithic nth={nth}");
        nth *= 2;
    }
    b.print();
    drop((mono, blocked));

    // ---- KNL model --------------------------------------------------------
    let knl = Platform::knl();
    let mut m = Table::new(
        format!("Fig 9 (modelled KNL): per-generation speedup vs nth, N={n}"),
        &["nth", "Nb(run)", "tiles/thread", "speedup", "efficiency"],
    );
    // Paper: tile sizes chosen to have sufficient tiles for nth
    // (caption); Nb = 128 at nth = 16.
    let mut base_thr = None;
    for nth in [1usize, 2, 4, 8, 16] {
        let nb_run = if quick { 32 } else { 512.min(n / nth) };
        let mut sc = ModelScenario::vgh(Layout::AoSoA, n, nb_run);
        sc.nth = nth;
        if quick {
            sc.grid = (16, 16, 16);
            sc.n_positions = 8;
        }
        let pred = qmc_bench::model_prediction(&knl, &sc);
        // Per-generation time ∝ work/throughput; work per generation
        // drops by nth (fewer walkers), so generation speedup =
        // nth × (T(nth)/T(1)).
        let b = *base_thr.get_or_insert(pred.throughput);
        let sp = nth as f64 * pred.throughput / b;
        m.row(vec![
            nth.to_string(),
            nb_run.to_string(),
            ((n / nb_run) / nth).max(1).to_string(),
            format!("{sp:.2}x"),
            format!("{:.0} %", 100.0 * sp / nth as f64),
        ]);
        eprintln!("modelled nth={nth}");
    }
    m.print();
    println!("paper (KNL, N=2048): ~14.5x at nth=16 (≥90 % efficiency)");
}
