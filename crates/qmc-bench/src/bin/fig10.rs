//! Fig. 10 — cache-aware roofline of the VGH kernel at N = 2048 on the
//! BDW and KNL models, one point per optimization step.
//!
//! Paper shape: Opt A (SoA) raises both arithmetic intensity and GFLOPS
//! (scatter elimination + fewer output touches); Opt B (AoSoA) raises
//! GFLOPS at essentially the same AI (pure locality gain); MCDRAM (KNL)
//! lifts the bandwidth roof far above BDW.

use bspline::Layout;
use cachesim::Platform;
use qmc_bench::{ModelScenario, Table};
use roofline::{kernel_cost, Roofline, RooflinePoint};

fn main() {
    let quick = qmc_bench::is_quick();
    let n = if quick { 512 } else { 2048 };

    for p in [Platform::bdw(), Platform::knl()] {
        let roof = Roofline::for_platform(&p);
        println!(
            "{}: peak {:.0} GF/s, scalar roof {:.0} GF/s, BW {:.0} GB/s, ridge at {:.1} F/B",
            roof.name, roof.peak_gflops, roof.scalar_gflops, roof.bw_gbs,
            roof.ridge()
        );
        let mut t = Table::new(
            format!("Fig 10 ({}): VGH roofline points, N={n}", p.name),
            &[
                "step",
                "cache AI (F/B)",
                "DRAM AI (F/B)",
                "pred GFLOP/s",
                "roof @DRAM-AI",
                "bound",
            ],
        );
        // The blocked row models the orbital-block decomposition at the
        // recorded default budget: same AoSoA-style cache behaviour at
        // the budget-derived block width (blocked-vs-monolithic is the
        // "B: AoSoA"/"C: blocked" pair of this chart).
        let model_grid = if quick { (16, 16, 16) } else { (48, 48, 48) };
        // Table-free sizing twins of the engine's decomposition, so
        // the model row uses exactly the width the engine would pick
        // without allocating the gigabyte-scale table.
        let table_bytes = einspline::multi::table_bytes_in::<f32>(model_grid, n);
        let nb_budget = einspline::multi::block_splines_for_budget_in::<f32>(
            model_grid,
            n,
            bspline::tuning::default_block_budget(table_bytes),
        );
        let steps: [(&str, Layout, usize); 4] = [
            ("baseline AoS", Layout::Aos, n),
            ("A: SoA (monolithic)", Layout::Soa, n),
            (
                "B: AoSoA",
                Layout::AoSoA,
                if p.name == "BDW" { 64 } else { 512 },
            ),
            ("C: blocked (budget)", Layout::AoSoA, nb_budget),
        ];
        for (label, layout, nb) in steps {
            let cost = kernel_cost(bspline::Kernel::Vgh, layout, n);
            let mut sc = ModelScenario::vgh(layout, n, nb);
            if quick {
                sc.grid = (16, 16, 16);
                sc.n_positions = 8;
            }
            let pred = qmc_bench::model_prediction(&p, &sc);
            let point = RooflinePoint {
                label: label.to_string(),
                ai: cost.cache_ai(),
                gflops: pred.gflops,
            };
            t.row(vec![
                point.label.clone(),
                format!("{:.3}", cost.cache_ai()),
                format!("{:.3}", pred.intensity),
                format!("{:.1}", pred.gflops),
                format!("{:.1}", roof.attainable(pred.intensity)),
                format!("{:?}", pred.bound),
            ]);
            eprintln!("{} {label} done", p.name);
        }
        t.print();
    }
    println!("paper: AoS→SoA raises AI and GFLOPS; AoSoA raises GFLOPS at ~same AI;");
    println!("       best AoSoA on KNL-DDR was 150 GFLOPS — MCDRAM bandwidth is decisive.");
}
