//! Fig. 8 — normalized speedup of V / VGL / VGH with the AoSoA
//! transformation, AoS implementation as the reference, across N.
//!
//! Paper (KNL, N = 4096): 1.85× (V), 6.4× (VGL), 2.5× (VGH). V gains
//! only from tiling (it has a single output stream), VGL gains the most
//! (layout + z-unroll + hoisted temporaries).

use bspline::{BsplineAoS, BsplineAoSoA, Kernel};
use qmc_bench::report::speedup;
use qmc_bench::workload::{grid, n_sweep, samples_for};
use qmc_bench::{coefficients, measure_kernel, measure_tile_major, MeasureConfig, Table};

fn arg_nb() -> usize {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == "--nb")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(128)
}

fn main() {
    let nb = arg_nb();
    let grid = grid();
    let mut t = Table::new(
        format!("Fig 8: AoSoA (Nb={nb}) speedup over AoS baseline per kernel (host)"),
        &["N", "V", "VGL", "VGH"],
    );
    for n in n_sweep() {
        let table = coefficients(n, grid, 42 + n as u64);
        let cfg = MeasureConfig {
            ns: samples_for(n),
            reps: 3,
            seed: 7,
        };
        let aos = BsplineAoS::new(table.clone());
        let base: Vec<f64> = Kernel::ALL
            .iter()
            .map(|&k| measure_kernel(&aos, k, &cfg).ops_per_sec)
            .collect();
        drop(aos);
        let tiled = BsplineAoSoA::from_multi(&table, nb.min(n));
        drop(table);
        let opt: Vec<f64> = Kernel::ALL
            .iter()
            .map(|&k| measure_tile_major(&tiled, k, &cfg).ops_per_sec)
            .collect();
        t.row(vec![
            n.to_string(),
            speedup(opt[0] / base[0]),
            speedup(opt[1] / base[1]),
            speedup(opt[2] / base[2]),
        ]);
        eprintln!("measured N={n}");
    }
    t.print();
    println!("paper (KNL, N=4096): V 1.85x, VGL 6.4x, VGH 2.5x");
}
