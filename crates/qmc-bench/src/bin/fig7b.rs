//! Fig. 7b — VGH throughput before/after the AoSoA (tiling)
//! transformation (Opt B) across problem sizes N.
//!
//! Paper shape: tiling restores *sustained* (N-independent) throughput;
//! the gain is largest at N = 2048/4096 where untiled SoA outputs fall
//! out of cache. Host uses its own optimal tile size (`--nb <size>`,
//! default 128); `--model` adds the four platforms at their paper-optimal
//! tiles (64 on BDW/BG-Q, 512 on KNC/KNL).

use bspline::{BsplineAoSoA, BsplineSoA, Kernel, Layout};
use cachesim::Platform;
use qmc_bench::report::{gops, speedup};
use qmc_bench::workload::{grid, n_sweep, samples_for};
use qmc_bench::{
    coefficients, measure_kernel, measure_tile_major, MeasureConfig, ModelScenario, Table,
};

fn arg_nb() -> usize {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == "--nb")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(128)
}

fn main() {
    let with_model = std::env::args().any(|a| a == "--model");
    let nb_host = arg_nb();
    let grid = grid();

    let mut t = Table::new(
        format!("Fig 7b: VGH throughput (G-evals/s), SoA vs AoSoA Nb={nb_host} (host)"),
        &["N", "T_SoA", "T_AoSoA", "speedup"],
    );
    for n in n_sweep() {
        let table = coefficients(n, grid, 42 + n as u64);
        let cfg = MeasureConfig {
            ns: samples_for(n),
            reps: 3,
            seed: 7,
        };
        let soa = BsplineSoA::new(table.clone());
        let t_soa = measure_kernel(&soa, Kernel::Vgh, &cfg);
        drop(soa);
        let tiled = BsplineAoSoA::from_multi(&table, nb_host.min(n));
        drop(table);
        let t_tiled = measure_tile_major(&tiled, Kernel::Vgh, &cfg);
        t.row(vec![
            n.to_string(),
            gops(t_soa.ops_per_sec),
            gops(t_tiled.ops_per_sec),
            speedup(t_tiled.speedup_over(t_soa)),
        ]);
        eprintln!("measured N={n}");
    }
    t.print();

    if with_model {
        let mut m = Table::new(
            "Fig 7b (modelled): predicted AoSoA/SoA VGH speedup at paper-optimal Nb",
            &["N", "BDW(64)", "KNC(512)", "KNL(512)", "BG/Q(64)"],
        );
        for n in n_sweep() {
            let mut cells = vec![n.to_string()];
            for (p, nb) in [
                (Platform::bdw(), 64),
                (Platform::knc(), 512),
                (Platform::knl(), 512),
                (Platform::bgq(), 64),
            ] {
                let s =
                    qmc_bench::model_prediction(&p, &ModelScenario::vgh(Layout::Soa, n, n));
                let a = qmc_bench::model_prediction(
                    &p,
                    &ModelScenario::vgh(Layout::AoSoA, n, nb.min(n)),
                );
                cells.push(speedup(a.throughput / s.throughput));
            }
            m.row(cells);
            eprintln!("modelled N={n}");
        }
        m.print();
    }
}
