//! `baseline` — record an in-repo bench baseline (`BENCH_BASELINE.json`)
//! and gate kernel PRs against it.
//!
//! Two modes:
//!
//! * **Record** (default): measure the fig7a / fig7b / fig8 host
//!   workloads through both the scalar reference (`QMC_SIMD=scalar`
//!   forced per measurement) and the active SIMD backend, and write the
//!   per-kernel throughputs (M-evals/s) with the host CPU and run
//!   configuration to a JSON file. Schema v3 added a `precision` column
//!   (`f64` / `f32` / `mixed`) and per-precision SoA/AoSoA VGH rows: the
//!   `f32` rows are the paper's benchmark configuration, `f64` is the
//!   accuracy reference, and `mixed` is the production trade
//!   (`bspline::precision::MixedEngine`: f32 storage + SIMD compute,
//!   f64 delivery). Schema v4 adds per-row `blocks` / `threads` columns
//!   and the Fig. 9-style nested-generation rows: `…_nested_monolithic_…`
//!   (the single multi-spline object, `blocks = 1`) vs
//!   `…_nested_blocked_…` (the orbital-block decomposition at the
//!   recorded `tuning::default_block_budget`), both driven at
//!   `threads = 4` threads-per-walker through the walker×block nested
//!   schedule. v2 and v3 files stay readable (their rows imply
//!   `blocks = threads = 1`).
//!
//!   `cargo run --release -p qmc-bench --bin baseline [-- out.json]`
//!
//! * **Compare**: re-measure the same kernels and print the per-kernel
//!   speedup against a committed baseline, exiting nonzero if any
//!   kernel regressed by more than 25% in either the scalar or the
//!   SIMD column of **any precision**. A row must fail two independent
//!   measurement passes to count (shared hosts dip transiently; a real
//!   regression reproduces). Comparison refuses baselines
//!   whose active SIMD backend differs from this host's (a scalar-host
//!   file gates nothing about an AVX2 run), and accepts v2/v3 files by
//!   defaulting their missing columns (`precision = f32` for v2;
//!   `blocks = threads = 1` for both) — rows the older file lacks
//!   (e.g. the v4 nested blocked rows against a v3 file) are simply
//!   not gated until the baseline is re-recorded.
//!
//!   `cargo run --release -p qmc-bench --bin baseline -- --compare BENCH_BASELINE.json`
//!
//! `QMC_BENCH_QUICK=1` shrinks the workload for smoke runs (compare
//! hard-errors when the committed baseline was recorded at a different
//! scale).
//!
//! On shared/virtualized hosts, sustained throughput can swing 2x
//! across hours (tenant contention, turbo budgets); the two-pass
//! peak statistic absorbs minute-scale dips but not regime changes.
//! When a compare fails with uniform slowdowns across unrelated rows,
//! suspect the host, re-run, or gate with a relaxed
//! `QMC_BASELINE_FLOOR`; a real kernel regression shows up as a
//! *localized, reproducible* deficit instead.

use bspline::precision::MixedEngine;
use bspline::simd::{with_backend, Backend};
use bspline::{BsplineAoS, BsplineAoSoA, BsplineSoA, Kernel};
use qmc_bench::workload::{batch_size, coefficients_in, is_quick};
use qmc_bench::{
    coefficients, measure_kernel, measure_kernel_batched, measure_nested_blocked,
    measure_nested_monolithic, measure_tile_major, MeasureConfig, NestedConfig, Table,
};
use std::fmt::Write as _;
use std::process::ExitCode;

/// Fraction of the committed throughput below which a kernel counts as
/// regressed (default: 25% slowdown). `QMC_BASELINE_FLOOR` overrides it
/// — the CI quick-mode round-trip smoke relaxes the floor because its
/// job is catching schema/parse regressions, not gating performance on
/// a noisy shared runner.
const REGRESSION_FLOOR: f64 = 0.75;

fn regression_floor() -> f64 {
    std::env::var("QMC_BASELINE_FLOOR")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .filter(|f| (0.0..1.0).contains(f))
        .unwrap_or(REGRESSION_FLOOR)
}

/// One measured kernel row: precision + decomposition/threading shape
/// columns plus scalar-backend and SIMD-backend throughput in evals/s.
struct Row {
    name: String,
    precision: String,
    /// Orbital blocks the engine was decomposed into (1 = monolithic).
    blocks: usize,
    /// Threads-per-walker of the nested schedule (1 = flat).
    threads: usize,
    scalar: f64,
    simd: f64,
}

/// Throughput in M-evals/s with 2 decimals (host numbers here are in
/// the 10⁵–10⁷ evals/s range; G-evals would round to zero).
fn mops(x: f64) -> String {
    format!("{:.2}", x / 1e6)
}

fn host_cpu() -> String {
    std::fs::read_to_string("/proc/cpuinfo")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("model name"))
                .and_then(|l| l.split(':').nth(1))
                .map(|v| v.trim().to_string())
        })
        .unwrap_or_else(|| "unknown".to_string())
}

/// Measure one closure under the forced scalar backend and under the
/// active (best) backend, tagged with its precision column.
fn ab<F: FnMut() -> f64>(name: impl Into<String>, precision: &str, mut f: F) -> Row {
    let scalar = with_backend(Backend::Scalar, &mut f);
    let simd = f(); // process default (QMC_SIMD respected)
    Row {
        name: name.into(),
        precision: precision.into(),
        blocks: 1,
        threads: 1,
        scalar,
        simd,
    }
}

/// [`ab`] for the nested rows, tagging the decomposition/threading
/// shape. The nested runners re-arm the thread-local backend force in
/// every worker, so the scalar column is honest even when the rayon
/// stub fans out.
fn ab_nested<F: FnMut() -> f64>(
    name: impl Into<String>,
    precision: &str,
    blocks: usize,
    threads: usize,
    f: F,
) -> Row {
    let mut row = ab(name, precision, f);
    row.blocks = blocks;
    row.threads = threads;
    row
}

/// The full measurement suite (shared by record and compare modes).
fn measure_all() -> Vec<Row> {
    let quick = is_quick();
    let (grid, sweep): ((usize, usize, usize), Vec<usize>) = if quick {
        ((12, 12, 12), vec![64, 128])
    } else {
        ((32, 32, 32), vec![128, 256, 512, 1024])
    };
    let nb = 32;
    // Best-of-5: the per-precision gate (f32/mixed ≥ 1.3× the f64 SIMD
    // row) needs tighter best-of variance than the old best-of-3 gave.
    let cfg = MeasureConfig {
        ns: if quick { 32 } else { 128 },
        reps: 5,
        seed: 7,
    };
    let mut rows = Vec::new();

    // Fig 7a: AoS vs SoA (VGH), scalar loop vs batched API.
    for &n in &sweep {
        let table = coefficients(n, grid, 42 + n as u64);
        let aos = BsplineAoS::new(table.clone());
        rows.push(ab(format!("fig7a_vgh_aos_n{n}"), "f32", || {
            measure_kernel(&aos, Kernel::Vgh, &cfg).ops_per_sec
        }));
        rows.push(ab(format!("fig7a_vgh_aos_batch_n{n}"), "f32", || {
            measure_kernel_batched(&aos, Kernel::Vgh, &cfg).ops_per_sec
        }));
        drop(aos);
        let soa = BsplineSoA::new(table);
        rows.push(ab(format!("fig7a_vgh_soa_n{n}"), "f32", || {
            measure_kernel(&soa, Kernel::Vgh, &cfg).ops_per_sec
        }));
        rows.push(ab(format!("fig7a_vgh_soa_batch_n{n}"), "f32", || {
            measure_kernel_batched(&soa, Kernel::Vgh, &cfg).ops_per_sec
        }));
        drop(soa);
        // Per-precision rows (same names, different precision column):
        // the f64 accuracy reference and the mixed adapter over the
        // downcast of the identical f64 table.
        let table64 = coefficients_in::<f64>(n, grid, 42 + n as u64);
        let soa64 = BsplineSoA::new(table64.clone());
        rows.push(ab(format!("fig7a_vgh_soa_n{n}"), "f64", || {
            measure_kernel(&soa64, Kernel::Vgh, &cfg).ops_per_sec
        }));
        rows.push(ab(format!("fig7a_vgh_soa_batch_n{n}"), "f64", || {
            measure_kernel_batched(&soa64, Kernel::Vgh, &cfg).ops_per_sec
        }));
        drop(soa64);
        let mixed = MixedEngine::soa(&table64);
        rows.push(ab(format!("fig7a_vgh_soa_n{n}"), "mixed", || {
            measure_kernel(&mixed, Kernel::Vgh, &cfg).ops_per_sec
        }));
        rows.push(ab(format!("fig7a_vgh_soa_batch_n{n}"), "mixed", || {
            measure_kernel_batched(&mixed, Kernel::Vgh, &cfg).ops_per_sec
        }));
        eprintln!("fig7a N={n} done");
    }

    // Fig 7b: SoA vs AoSoA — position-major scalar vs tile-major batch.
    for &n in &sweep {
        let table = coefficients(n, grid, 13 + n as u64);
        let soa = BsplineSoA::new(table.clone());
        rows.push(ab(format!("fig7b_vgh_soa_n{n}"), "f32", || {
            measure_kernel(&soa, Kernel::Vgh, &cfg).ops_per_sec
        }));
        drop(soa);
        let tiled = BsplineAoSoA::from_multi(&table, nb);
        rows.push(ab(format!("fig7b_vgh_aosoa_scalar_loop_n{n}"), "f32", || {
            measure_kernel(&tiled, Kernel::Vgh, &cfg).ops_per_sec
        }));
        rows.push(ab(format!("fig7b_vgh_aosoa_batch_n{n}"), "f32", || {
            measure_kernel_batched(&tiled, Kernel::Vgh, &cfg).ops_per_sec
        }));
        eprintln!("fig7b N={n} done");
    }

    // Fig 8: per-kernel AoS baseline vs AoSoA, scalar vs batched, plus
    // per-precision AoSoA batch rows.
    let n8 = if quick { 128 } else { 512 };
    let table8 = coefficients(n8, grid, 9);
    let aos = BsplineAoS::new(table8.clone());
    let tiled = BsplineAoSoA::from_multi(&table8, nb);
    let table8_64 = coefficients_in::<f64>(n8, grid, 9);
    let tiled64 = BsplineAoSoA::from_multi(&table8_64, nb);
    let tiled_mixed = MixedEngine::aosoa(&table8_64, nb);
    for k in Kernel::ALL {
        let kname = k.to_string().to_lowercase();
        rows.push(ab(format!("fig8_{kname}_aos_n{n8}"), "f32", || {
            measure_kernel(&aos, k, &cfg).ops_per_sec
        }));
        rows.push(ab(format!("fig8_{kname}_aosoa_tile_major_n{n8}"), "f32", || {
            measure_tile_major(&tiled, k, &cfg).ops_per_sec
        }));
        rows.push(ab(format!("fig8_{kname}_aosoa_batch_n{n8}"), "f32", || {
            measure_kernel_batched(&tiled, k, &cfg).ops_per_sec
        }));
        rows.push(ab(format!("fig8_{kname}_aosoa_batch_n{n8}"), "f64", || {
            measure_kernel_batched(&tiled64, k, &cfg).ops_per_sec
        }));
        rows.push(ab(format!("fig8_{kname}_aosoa_batch_n{n8}"), "mixed", || {
            measure_kernel_batched(&tiled_mixed, k, &cfg).ops_per_sec
        }));
        eprintln!("fig8 {k} done");
    }
    drop((aos, tiled, tiled64, tiled_mixed));

    // Fig 9 nested-generation rows (schema v4): the single multi-spline
    // object vs the orbital-block decomposition at the recorded default
    // budget, both through the walker×block nested schedule at 4
    // threads-per-walker. The generation re-evaluates the same position
    // set every rep (the miniQMC semantic), so what the blocked rows
    // measure is per-block slab residency across a generation's
    // position sweep. N is large enough that the monolithic slab
    // cannot stay resident.
    let nth = 4;
    let nested_sweep: Vec<usize> = if quick { vec![64] } else { vec![512, 2048] };
    for &n in &nested_sweep {
        let ncfg = NestedConfig {
            walkers: if quick { 2 } else { 4 },
            ns: if quick { 8 } else { 512 },
            nth,
            reps: if quick { 1 } else { 3 },
            seed: 29,
        };
        let table = coefficients(n, grid, 23 + n as u64);
        let budget = bspline::tuning::default_block_budget(table.bytes());
        let blocks = n.div_ceil(table.block_splines_for_budget(budget));
        rows.push(ab_nested(
            format!("fig9_vgh_nested_monolithic_n{n}"),
            "f32",
            1,
            nth,
            || measure_nested_monolithic(&table, Kernel::Vgh, &ncfg).ops_per_sec,
        ));
        rows.push(ab_nested(
            format!("fig9_vgh_nested_blocked_n{n}"),
            "f32",
            blocks,
            nth,
            || measure_nested_blocked(&table, Kernel::Vgh, budget, &ncfg).ops_per_sec,
        ));
        eprintln!("fig9 nested N={n} done");
    }
    rows
}

/// Record-mode measurement: two independent passes, each row keeping
/// its faster pass. Shared hosts swing 2x on minute scales; the *peak*
/// (best-of-reps, best-of-passes) is the stable statistic of the
/// machine, and compare mode uses the identical statistic (a failing
/// row gets a second full pass and keeps its best), so both sides of
/// the gate sample the same distribution. The peak is also what keeps
/// cross-precision ratios honest — per-precision rows are measured
/// minutes apart, and pinning each to its peak decorrelates them from
/// transient dips.
fn measure_committed() -> Vec<Row> {
    let mut rows = measure_all();
    eprintln!("second record pass (committing the per-row best)");
    let second = measure_all();
    for (a, b) in rows.iter_mut().zip(second) {
        debug_assert_eq!((&a.name, &a.precision), (&b.name, &b.precision));
        a.scalar = a.scalar.max(b.scalar);
        a.simd = a.simd.max(b.simd);
    }
    rows
}

fn print_rows(rows: &[Row]) {
    let mut t = Table::new(
        "Bench baseline: M-evals/s, scalar backend vs active SIMD backend",
        &["kernel", "precision", "B", "nth", "scalar", "simd", "simd/scalar"],
    );
    for r in rows {
        t.row(vec![
            r.name.clone(),
            r.precision.clone(),
            r.blocks.to_string(),
            r.threads.to_string(),
            mops(r.scalar),
            mops(r.simd),
            format!("{:.2}x", r.simd / r.scalar.max(1.0)),
        ]);
    }
    t.print();
}

fn write_json(rows: &[Row], out_path: &str) {
    let quick = is_quick();
    let threads = std::thread::available_parallelism()
        .map(|v| v.get())
        .unwrap_or(1);
    let available: Vec<String> = Backend::available()
        .iter()
        .map(|b| b.name().to_string())
        .collect();
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"schema\": \"qmc-bench-baseline-v4\",\n");
    let _ = writeln!(
        json,
        "  \"host\": {{ \"cpu\": {:?}, \"threads\": {threads} }},",
        host_cpu()
    );
    let _ = writeln!(
        json,
        "  \"config\": {{ \"batch\": {}, \"quick\": {quick} }},",
        batch_size()
    );
    let _ = writeln!(
        json,
        "  \"simd\": {{ \"active\": \"{}\", \"available\": [{}] }},",
        bspline::simd::default_backend(),
        available
            .iter()
            .map(|b| format!("\"{b}\""))
            .collect::<Vec<_>>()
            .join(", ")
    );
    json.push_str("  \"kernels\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{ \"name\": \"{}\", \"precision\": \"{}\", \"blocks\": {}, \"threads\": {}, \"scalar\": {}, \"simd\": {} }}{}",
            r.name,
            r.precision,
            r.blocks,
            r.threads,
            mops(r.scalar),
            mops(r.simd),
            if i + 1 == rows.len() { "" } else { "," }
        );
    }
    json.push_str("  ]\n}\n");
    std::fs::write(out_path, &json).expect("write baseline JSON");
    println!("wrote {out_path}");
}

/// A parsed baseline file: kernel rows plus the header fields the
/// comparison gate needs.
struct Baseline {
    rows: Vec<Row>,
    /// `simd.active` backend name the file was recorded with.
    active: Option<String>,
    /// Whether the file predates the precision column (schema v2).
    v2: bool,
}

/// Extract rows + header from a v2/v3/v4 baseline file (the writer
/// emits one kernel object per line; no JSON dependency needed). v2
/// rows carry no `precision` field and are treated as `f32` — the only
/// precision v2 measured; v2/v3 rows carry no `blocks`/`threads`
/// fields and default both to 1 (every pre-v4 row was monolithic and
/// flat).
fn parse_baseline(text: &str) -> Result<Baseline, String> {
    let v4 = text.contains("qmc-bench-baseline-v4");
    let v3 = text.contains("qmc-bench-baseline-v3");
    let v2 = text.contains("qmc-bench-baseline-v2");
    if !v4 && !v3 && !v2 {
        return Err(
            "baseline file is not schema v2/v3/v4 — re-record it first".into(),
        );
    }
    fn after<'a>(line: &'a str, key: &str) -> Option<&'a str> {
        let at = line.find(&format!("\"{key}\":"))?;
        Some(line[at..].split_once(':')?.1.trim_start())
    }
    fn str_after(line: &str, key: &str) -> Option<String> {
        Some(
            after(line, key)?
                .trim_start_matches('"')
                .split('"')
                .next()
                .unwrap_or("")
                .to_string(),
        )
    }
    fn num_after(line: &str, key: &str) -> Option<f64> {
        let rest = after(line, key)?;
        let digits: String = rest
            .chars()
            .take_while(|c| c.is_ascii_digit() || "+-.eE".contains(*c))
            .collect();
        digits.parse().ok()
    }
    let mut rows = Vec::new();
    let mut active = None;
    for line in text.lines() {
        if line.contains("\"active\":") && active.is_none() {
            active = str_after(line, "active");
        }
        let Some(name) = str_after(line, "name") else {
            continue;
        };
        let precision =
            str_after(line, "precision").unwrap_or_else(|| "f32".to_string());
        let blocks = num_after(line, "blocks").map_or(1, |v| v as usize);
        let threads = num_after(line, "threads").map_or(1, |v| v as usize);
        let scalar = num_after(line, "scalar")
            .ok_or_else(|| format!("bad scalar field in line: {line}"))?;
        let simd = num_after(line, "simd")
            .ok_or_else(|| format!("bad simd field in line: {line}"))?;
        rows.push(Row {
            name,
            precision,
            blocks,
            threads,
            scalar: scalar * 1e6,
            simd: simd * 1e6,
        });
    }
    if rows.is_empty() {
        return Err("no kernel rows found in baseline file".into());
    }
    Ok(Baseline {
        rows,
        active,
        v2: !v3 && !v4,
    })
}

fn compare(baseline_path: &str) -> ExitCode {
    let text = match std::fs::read_to_string(baseline_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {baseline_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let committed = match parse_baseline(&text) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("cannot parse {baseline_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    // Gating on ratios across different workload scales would compare
    // nothing about the change (quick mode shrinks the grid and sweep
    // but keeps the row names), so a scale mismatch is a hard error,
    // not a warning.
    let committed_quick = text.contains("\"quick\": true");
    if committed_quick != is_quick() {
        eprintln!(
            "error: baseline was recorded with quick={committed_quick} but this run has \
             quick={} — the workloads differ; re-run with matching QMC_BENCH_QUICK \
             (or re-record the baseline) before comparing",
            is_quick()
        );
        return ExitCode::FAILURE;
    }
    // Throughput ratios across different instruction sets measure the
    // host difference, not the change under test: a scalar-recorded
    // baseline would flag a phantom "speedup" on an AVX2 host (and an
    // AVX2 baseline a phantom regression on a scalar host). Refuse
    // instead of silently comparing.
    let current_active = bspline::simd::default_backend().name();
    match committed.active.as_deref() {
        Some(active) if active != current_active => {
            eprintln!(
                "error: baseline {baseline_path} was recorded with simd.active={active} \
                 but this host/run resolves to {current_active} — the SIMD columns are \
                 not comparable; re-record the baseline on this configuration (or force \
                 QMC_SIMD={active} if that backend is available)"
            );
            return ExitCode::FAILURE;
        }
        Some(_) => {}
        None => {
            eprintln!(
                "warning: baseline has no simd.active field; cannot verify the SIMD \
                 backends match (current: {current_active})"
            );
        }
    }
    if committed.v2 {
        eprintln!(
            "note: {baseline_path} is schema v2 (no precision column); its rows gate \
             the f32 precision only — f64/mixed rows of this run are not compared. \
             Re-record to gate every precision."
        );
    }

    let floor = regression_floor();
    let mut current = measure_all();
    // Flake guard: a shared host can dip 2x for a minute. A row only
    // counts as regressed if it fails in TWO independent measurement
    // passes — a real kernel regression reproduces, a tenant-noise dip
    // does not. The retry pass runs only when the first pass failed
    // something, and each row keeps its best pass.
    let needs_retry = current.iter().any(|new| {
        committed
            .rows
            .iter()
            .find(|r| r.name == new.name && r.precision == new.precision)
            .is_some_and(|old| {
                new.scalar / old.scalar.max(1.0) < floor
                    || new.simd / old.simd.max(1.0) < floor
            })
    });
    if needs_retry {
        eprintln!(
            "some rows fell below the {floor}x floor; re-measuring once to \
             rule out transient host noise"
        );
        let second = measure_all();
        for (a, b) in current.iter_mut().zip(second) {
            debug_assert_eq!((&a.name, &a.precision), (&b.name, &b.precision));
            a.scalar = a.scalar.max(b.scalar);
            a.simd = a.simd.max(b.simd);
        }
    }
    let mut t = Table::new(
        format!("Speedup vs {baseline_path} (M-evals/s; floor {floor}x)"),
        &[
            "kernel",
            "precision",
            "scalar old→new",
            "ratio",
            "simd old→new",
            "ratio",
            "status",
        ],
    );
    let mut regressed: Vec<String> = Vec::new();
    let mut compared = 0usize;
    for new in &current {
        let Some(old) = committed
            .rows
            .iter()
            .find(|r| r.name == new.name && r.precision == new.precision)
        else {
            continue;
        };
        compared += 1;
        let rs = new.scalar / old.scalar.max(1.0);
        let rv = new.simd / old.simd.max(1.0);
        let bad = rs < floor || rv < floor;
        if bad {
            regressed.push(format!(
                "{} [precision={}] scalar {:.2}x simd {:.2}x",
                new.name, new.precision, rs, rv
            ));
        }
        t.row(vec![
            new.name.clone(),
            new.precision.clone(),
            format!("{}→{}", mops(old.scalar), mops(new.scalar)),
            format!("{rs:.2}x"),
            format!("{}→{}", mops(old.simd), mops(new.simd)),
            format!("{rv:.2}x"),
            if bad { "REGRESSED".into() } else { "ok".into() },
        ]);
    }
    t.print();
    if compared == 0 {
        eprintln!("no kernels in common with the committed baseline");
        return ExitCode::FAILURE;
    }
    if !regressed.is_empty() {
        eprintln!(
            "{}/{compared} kernel rows regressed below the {floor}x floor:",
            regressed.len()
        );
        for r in &regressed {
            eprintln!("  {r}");
        }
        return ExitCode::FAILURE;
    }
    println!("all {compared} kernel rows within the regression floor");
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("--compare") => {
            let path = args.get(1).cloned().unwrap_or_else(|| "BENCH_BASELINE.json".into());
            compare(&path)
        }
        Some(out) => {
            let rows = measure_committed();
            print_rows(&rows);
            write_json(&rows, out);
            ExitCode::SUCCESS
        }
        None => {
            let rows = measure_committed();
            print_rows(&rows);
            write_json(&rows, "BENCH_BASELINE.json");
            ExitCode::SUCCESS
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn v4_rows_roundtrip_through_writer_and_parser() {
        let rows = vec![
            Row {
                name: "fig9_vgh_nested_blocked_n512".into(),
                precision: "f32".into(),
                blocks: 7,
                threads: 4,
                scalar: 1.25e6,
                simd: 14.5e6,
            },
            Row {
                name: "fig7a_vgh_soa_n128".into(),
                precision: "mixed".into(),
                blocks: 1,
                threads: 1,
                scalar: 1.0e6,
                simd: 2.0e6,
            },
        ];
        let tmp = std::env::temp_dir().join("qmc-baseline-v4-roundtrip.json");
        write_json(&rows, tmp.to_str().unwrap());
        let text = std::fs::read_to_string(&tmp).unwrap();
        assert!(text.contains("qmc-bench-baseline-v4"));
        let parsed = parse_baseline(&text).expect("v4 parses");
        assert!(!parsed.v2);
        assert_eq!(parsed.rows.len(), 2);
        assert_eq!(parsed.rows[0].blocks, 7);
        assert_eq!(parsed.rows[0].threads, 4);
        assert_eq!(parsed.rows[1].blocks, 1);
        // mops() rounds to 2 decimals of M-evals/s.
        assert!((parsed.rows[0].simd - 14.5e6).abs() < 1e4);
        let _ = std::fs::remove_file(tmp);
    }

    #[test]
    fn v3_files_stay_readable_with_defaulted_shape_columns() {
        let v3 = r#"{
  "schema": "qmc-bench-baseline-v3",
  "simd": { "active": "avx2", "available": ["scalar"] },
  "kernels": [
    { "name": "fig8_vgh_aosoa_batch_n512", "precision": "mixed", "scalar": 0.99, "simd": 11.76 }
  ]
}"#;
        let parsed = parse_baseline(v3).expect("v3 parses");
        assert!(!parsed.v2);
        assert_eq!(parsed.active.as_deref(), Some("avx2"));
        assert_eq!(parsed.rows.len(), 1);
        assert_eq!(parsed.rows[0].blocks, 1);
        assert_eq!(parsed.rows[0].threads, 1);
        assert_eq!(parsed.rows[0].precision, "mixed");
    }

    #[test]
    fn v2_files_still_default_to_f32(){
        let v2 = r#"{
  "schema": "qmc-bench-baseline-v2",
  "kernels": [
    { "name": "fig8_v_aos_n512", "scalar": 4.99, "simd": 74.13 }
  ]
}"#;
        let parsed = parse_baseline(v2).expect("v2 parses");
        assert!(parsed.v2);
        assert_eq!(parsed.rows[0].precision, "f32");
        assert_eq!(parsed.rows[0].blocks, 1);
    }

    #[test]
    fn unversioned_files_are_rejected() {
        assert!(parse_baseline("{ \"schema\": \"other\" }").is_err());
    }
}
