//! `baseline` — record an in-repo bench baseline (`BENCH_BASELINE.json`)
//! and gate kernel PRs against it.
//!
//! Two modes:
//!
//! * **Record** (default): measure the fig7a / fig7b / fig8 host
//!   workloads through both the scalar reference (`QMC_SIMD=scalar`
//!   forced per measurement) and the active SIMD backend, and write the
//!   per-kernel throughputs (M-evals/s) with the host CPU and run
//!   configuration to a JSON file. Schema v3 added a `precision` column
//!   (`f64` / `f32` / `mixed`) and per-precision SoA/AoSoA VGH rows: the
//!   `f32` rows are the paper's benchmark configuration, `f64` is the
//!   accuracy reference, and `mixed` is the production trade
//!   (`bspline::precision::MixedEngine`: f32 storage + SIMD compute,
//!   f64 delivery). Schema v4 adds per-row `blocks` / `threads` columns
//!   and the Fig. 9-style nested-generation rows: `…_nested_monolithic_…`
//!   (the single multi-spline object, `blocks = 1`) vs
//!   `…_nested_blocked_…` (the orbital-block decomposition at the
//!   recorded `tuning::default_block_budget`), both driven at
//!   `threads = 4` threads-per-walker through the walker×block nested
//!   schedule. Schema v5 adds the coalescing-service rows
//!   (`service_vgh_soa_sat_n…` at saturation and
//!   `service_vgh_soa_open_n…` at a fixed offered rate) with SLO-style
//!   open-loop latency percentiles (`p50_us` / `p95_us` / `p99_us`)
//!   next to the throughput columns; for service rows the `threads`
//!   column records the replica worker count. A
//!   `service_vgh_soa_closed_n…` row re-measures the direct batched
//!   VGH call adjacent to the service rows so the printed saturation
//!   ratio is time-aligned (this host drifts 2x over the minutes that
//!   separate the fig7a rows from the service rows). Schema v6 adds the
//!   single-electron fast-path rows (`onemove_v_…` per-move V-only
//!   ratio latency, `onemove_vgl_…` the propose/accept pair with
//!   cached locate/weights, `onemove_legacy_vgl_…` the pre-fast-path
//!   scalar `v`+`vgl` comparator) with per-move latency percentiles in
//!   the same `p50/p95/p99` columns (µs); the printed fast-path ratio
//!   (pair vs legacy, per *move*) is the tentpole acceptance statistic
//!   (bar: ≥ 1.5x). Schema v7 adds the shard-routing rows: a
//!   routed-vs-FIFO ablation on the streaming `distinct_blocks` VGH
//!   workload at a table larger than the LLC
//!   (`service_routed_fifo_n…` vs `service_routed_affinity_n…`, same
//!   engines and load, differing only in
//!   `bspline::service::RoutingPolicy` — the printed affinity ratio
//!   bar is ≥ 1.15x at saturation) and the mixed-load per-move SLO row
//!   (`service_onemove_n…`: single-position submissions issued
//!   closed-loop while background submitters keep pipelined batched
//!   traffic in flight; the latency columns carry the per-move
//!   percentiles). Schema v8 adds the Table IV per-step kernel-profile
//!   rows (`table4_step_{bspline,distance,jastrow,determinant,total}_n…`):
//!   the `Suite::SingleElectronFastPath` pbyp sweep replay at N = 512
//!   and N = 2048 (quick: N = 64), each category's wall time converted
//!   to move-orbital evaluations/s (`moves · N / seconds`) so the rows
//!   gate per-category *step* throughput the way the kernel rows gate
//!   microbenchmark throughput; the whole profile is replayed once per
//!   backend, so the five rows of one column share a single
//!   self-consistent rep. Schema v9 adds the degraded-mode service row
//!   (`service_vgh_soa_degraded_n…`): the saturation load re-run over a
//!   service whose worker 0 is killed by a scripted
//!   [`bspline::service::ServiceFault::Kill`] early in the run, so the
//!   latency percentiles are the surviving pool's tail — the
//!   fault-tolerance p99 the compare gate holds like any other service
//!   row — plus per-row fault counters
//!   (`shed`/`retried`/`panics`/`respawns`) recorded for the degraded
//!   row. Older files stay readable (pre-v4 rows imply
//!   `blocks = threads = 1`; pre-v5 rows carry no latency and are
//!   gated on throughput only; pre-v6 files simply lack the onemove
//!   rows, pre-v7 files the routing rows, pre-v8 files the
//!   table4 step rows, and pre-v9 files the degraded row, which go
//!   ungated until re-recorded).
//!
//!   `cargo run --release -p qmc-bench --bin baseline [-- out.json]`
//!
//! * **Compare**: re-measure the same kernels and print the per-kernel
//!   speedup against a committed baseline, exiting nonzero if any
//!   kernel regressed by more than 25% in either the scalar or the
//!   SIMD column of **any precision** — or, for service rows, if the
//!   p99 open-loop latency inflated past the same floor
//!   (`old_p99 / new_p99 < floor`). A row must fail two independent
//!   measurement passes to count (shared hosts dip transiently; a real
//!   regression reproduces). Comparison refuses baselines
//!   whose active SIMD backend differs from this host's (a scalar-host
//!   file gates nothing about an AVX2 run), and accepts v2/v3 files by
//!   defaulting their missing columns (`precision = f32` for v2;
//!   `blocks = threads = 1` for both) — rows the older file lacks
//!   (e.g. the v4 nested blocked rows against a v3 file) are simply
//!   not gated until the baseline is re-recorded.
//!
//!   `cargo run --release -p qmc-bench --bin baseline -- --compare BENCH_BASELINE.json`
//!
//! `QMC_BENCH_QUICK=1` shrinks the workload for smoke runs (compare
//! hard-errors when the committed baseline was recorded at a different
//! scale).
//!
//! On shared/virtualized hosts, sustained throughput can swing 2x
//! across hours (tenant contention, turbo budgets); the two-pass
//! peak statistic absorbs minute-scale dips but not regime changes.
//! When a compare fails with uniform slowdowns across unrelated rows,
//! suspect the host, re-run, or gate with a relaxed
//! `QMC_BASELINE_FLOOR`; a real kernel regression shows up as a
//! *localized, reproducible* deficit instead.

use bspline::precision::MixedEngine;
use bspline::service::{RoutingPolicy, ServiceConfig, SpoService};
use bspline::simd::{with_backend, Backend};
use bspline::{BsplineAoS, BsplineAoSoA, BsplineSoA, Kernel};
use bspline::blocked::BlockedEngine;
use qmc_bench::workload::{batch_size, coefficients_in, is_quick};
use qmc_bench::{
    coefficients, measure_kernel, measure_kernel_batched, measure_nested_blocked,
    measure_nested_monolithic, measure_onemove, measure_routed_ablation,
    measure_service, measure_service_degraded, measure_service_onemove_mixed,
    measure_step_profile,
    measure_tile_major, MeasureConfig, MixedOneMoveConfig, NestedConfig,
    OneMoveConfig, OneMovePath, OneMoveStats, ProfileConfig, ServiceLoadConfig,
    Suite, Table, STEP_CATEGORY_NAMES,
};
use std::fmt::Write as _;
use std::process::ExitCode;
use std::time::Duration;

/// Fraction of the committed throughput below which a kernel counts as
/// regressed (default: 25% slowdown). `QMC_BASELINE_FLOOR` overrides it
/// — the CI quick-mode round-trip smoke relaxes the floor because its
/// job is catching schema/parse regressions, not gating performance on
/// a noisy shared runner.
const REGRESSION_FLOOR: f64 = 0.75;

fn regression_floor() -> f64 {
    std::env::var("QMC_BASELINE_FLOOR")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .filter(|f| (0.0..1.0).contains(f))
        .unwrap_or(REGRESSION_FLOOR)
}

/// One measured kernel row: precision + decomposition/threading shape
/// columns plus scalar-backend and SIMD-backend throughput in evals/s.
struct Row {
    name: String,
    precision: String,
    /// Orbital blocks the engine was decomposed into (1 = monolithic).
    blocks: usize,
    /// Threads-per-walker of the nested schedule (1 = flat); for
    /// service rows, the replica worker count.
    threads: usize,
    scalar: f64,
    simd: f64,
    /// Open-loop request-latency percentiles `[p50, p95, p99]` in µs,
    /// measured on the SIMD (production) pass. `None` for closed-loop
    /// rows and for rows parsed from pre-v5 files.
    lat: Option<[f64; 3]>,
    /// Fault counters `[shed, retried, panics, respawns]` from the SIMD
    /// pass — recorded (not gated) for the degraded-mode service row.
    /// `None` everywhere else and for rows parsed from pre-v9 files.
    ctr: Option<[usize; 4]>,
}

/// Throughput in M-evals/s with 2 decimals (host numbers here are in
/// the 10⁵–10⁷ evals/s range; G-evals would round to zero).
fn mops(x: f64) -> String {
    format!("{:.2}", x / 1e6)
}

fn host_cpu() -> String {
    std::fs::read_to_string("/proc/cpuinfo")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("model name"))
                .and_then(|l| l.split(':').nth(1))
                .map(|v| v.trim().to_string())
        })
        .unwrap_or_else(|| "unknown".to_string())
}

/// Measure one closure under the forced scalar backend and under the
/// active (best) backend, tagged with its precision column.
fn ab<F: FnMut() -> f64>(name: impl Into<String>, precision: &str, mut f: F) -> Row {
    let scalar = with_backend(Backend::Scalar, &mut f);
    let simd = f(); // process default (QMC_SIMD respected)
    Row {
        name: name.into(),
        precision: precision.into(),
        blocks: 1,
        threads: 1,
        scalar,
        simd,
        lat: None,
            ctr: None,
    }
}

/// [`ab`] for the service rows. The closure builds a fresh
/// [`SpoService`] per pass so the replica workers pin the backend in
/// force at *construction* time — that is what makes the scalar column
/// honest (replicas minted under `with_backend(Scalar, …)` stay scalar
/// for the whole load run). Returns `(evals/s, [p50, p95, p99] µs)`;
/// the latency kept in the row comes from the SIMD (production) pass.
fn ab_service<F: FnMut() -> (f64, [f64; 3])>(
    name: impl Into<String>,
    precision: &str,
    replicas: usize,
    mut f: F,
) -> Row {
    let (scalar, _) = with_backend(Backend::Scalar, &mut f);
    let (simd, lat) = f();
    Row {
        name: name.into(),
        precision: precision.into(),
        blocks: 1,
        threads: replicas,
        scalar,
        simd,
        lat: Some(lat),
            ctr: None,
    }
}

/// [`ab`] for the one-move rows: the closure returns `(evals/s,
/// [p50, p95, p99])` with *per-move* latency percentiles in µs (the
/// same columns the service rows use for request latency). The kept
/// latency comes from the SIMD (production) pass.
fn ab_onemove<F: FnMut() -> (f64, [f64; 3])>(
    name: impl Into<String>,
    precision: &str,
    mut f: F,
) -> Row {
    let (scalar, _) = with_backend(Backend::Scalar, &mut f);
    let (simd, lat) = f();
    Row {
        name: name.into(),
        precision: precision.into(),
        blocks: 1,
        threads: 1,
        scalar,
        simd,
        lat: Some(lat),
            ctr: None,
    }
}

/// [`ab`] for the nested rows, tagging the decomposition/threading
/// shape. The nested runners re-arm the thread-local backend force in
/// every worker, so the scalar column is honest even when the rayon
/// stub fans out.
fn ab_nested<F: FnMut() -> f64>(
    name: impl Into<String>,
    precision: &str,
    blocks: usize,
    threads: usize,
    f: F,
) -> Row {
    let mut row = ab(name, precision, f);
    row.blocks = blocks;
    row.threads = threads;
    row
}

/// The full measurement suite (shared by record and compare modes).
fn measure_all() -> Vec<Row> {
    let quick = is_quick();
    let (grid, sweep): ((usize, usize, usize), Vec<usize>) = if quick {
        ((12, 12, 12), vec![64, 128])
    } else {
        ((32, 32, 32), vec![128, 256, 512, 1024])
    };
    let nb = 32;
    // Best-of-5: the per-precision gate (f32/mixed ≥ 1.3× the f64 SIMD
    // row) needs tighter best-of variance than the old best-of-3 gave.
    let cfg = MeasureConfig {
        ns: if quick { 32 } else { 128 },
        reps: 5,
        seed: 7,
    };
    let mut rows = Vec::new();

    // Fig 7a: AoS vs SoA (VGH), scalar loop vs batched API.
    for &n in &sweep {
        let table = coefficients(n, grid, 42 + n as u64);
        let aos = BsplineAoS::new(table.clone());
        rows.push(ab(format!("fig7a_vgh_aos_n{n}"), "f32", || {
            measure_kernel(&aos, Kernel::Vgh, &cfg).ops_per_sec
        }));
        rows.push(ab(format!("fig7a_vgh_aos_batch_n{n}"), "f32", || {
            measure_kernel_batched(&aos, Kernel::Vgh, &cfg).ops_per_sec
        }));
        drop(aos);
        let soa = BsplineSoA::new(table);
        rows.push(ab(format!("fig7a_vgh_soa_n{n}"), "f32", || {
            measure_kernel(&soa, Kernel::Vgh, &cfg).ops_per_sec
        }));
        rows.push(ab(format!("fig7a_vgh_soa_batch_n{n}"), "f32", || {
            measure_kernel_batched(&soa, Kernel::Vgh, &cfg).ops_per_sec
        }));
        drop(soa);
        // Per-precision rows (same names, different precision column):
        // the f64 accuracy reference and the mixed adapter over the
        // downcast of the identical f64 table.
        let table64 = coefficients_in::<f64>(n, grid, 42 + n as u64);
        let soa64 = BsplineSoA::new(table64.clone());
        rows.push(ab(format!("fig7a_vgh_soa_n{n}"), "f64", || {
            measure_kernel(&soa64, Kernel::Vgh, &cfg).ops_per_sec
        }));
        rows.push(ab(format!("fig7a_vgh_soa_batch_n{n}"), "f64", || {
            measure_kernel_batched(&soa64, Kernel::Vgh, &cfg).ops_per_sec
        }));
        drop(soa64);
        let mixed = MixedEngine::soa(&table64);
        rows.push(ab(format!("fig7a_vgh_soa_n{n}"), "mixed", || {
            measure_kernel(&mixed, Kernel::Vgh, &cfg).ops_per_sec
        }));
        rows.push(ab(format!("fig7a_vgh_soa_batch_n{n}"), "mixed", || {
            measure_kernel_batched(&mixed, Kernel::Vgh, &cfg).ops_per_sec
        }));
        eprintln!("fig7a N={n} done");
    }

    // Fig 7b: SoA vs AoSoA — position-major scalar vs tile-major batch.
    for &n in &sweep {
        let table = coefficients(n, grid, 13 + n as u64);
        let soa = BsplineSoA::new(table.clone());
        rows.push(ab(format!("fig7b_vgh_soa_n{n}"), "f32", || {
            measure_kernel(&soa, Kernel::Vgh, &cfg).ops_per_sec
        }));
        drop(soa);
        let tiled = BsplineAoSoA::from_multi(&table, nb);
        rows.push(ab(format!("fig7b_vgh_aosoa_scalar_loop_n{n}"), "f32", || {
            measure_kernel(&tiled, Kernel::Vgh, &cfg).ops_per_sec
        }));
        rows.push(ab(format!("fig7b_vgh_aosoa_batch_n{n}"), "f32", || {
            measure_kernel_batched(&tiled, Kernel::Vgh, &cfg).ops_per_sec
        }));
        eprintln!("fig7b N={n} done");
    }

    // Fig 8: per-kernel AoS baseline vs AoSoA, scalar vs batched, plus
    // per-precision AoSoA batch rows.
    let n8 = if quick { 128 } else { 512 };
    let table8 = coefficients(n8, grid, 9);
    let aos = BsplineAoS::new(table8.clone());
    let tiled = BsplineAoSoA::from_multi(&table8, nb);
    let table8_64 = coefficients_in::<f64>(n8, grid, 9);
    let tiled64 = BsplineAoSoA::from_multi(&table8_64, nb);
    let tiled_mixed = MixedEngine::aosoa(&table8_64, nb);
    for k in Kernel::ALL {
        let kname = k.to_string().to_lowercase();
        rows.push(ab(format!("fig8_{kname}_aos_n{n8}"), "f32", || {
            measure_kernel(&aos, k, &cfg).ops_per_sec
        }));
        rows.push(ab(format!("fig8_{kname}_aosoa_tile_major_n{n8}"), "f32", || {
            measure_tile_major(&tiled, k, &cfg).ops_per_sec
        }));
        rows.push(ab(format!("fig8_{kname}_aosoa_batch_n{n8}"), "f32", || {
            measure_kernel_batched(&tiled, k, &cfg).ops_per_sec
        }));
        rows.push(ab(format!("fig8_{kname}_aosoa_batch_n{n8}"), "f64", || {
            measure_kernel_batched(&tiled64, k, &cfg).ops_per_sec
        }));
        rows.push(ab(format!("fig8_{kname}_aosoa_batch_n{n8}"), "mixed", || {
            measure_kernel_batched(&tiled_mixed, k, &cfg).ops_per_sec
        }));
        eprintln!("fig8 {k} done");
    }
    drop((aos, tiled, tiled64, tiled_mixed));

    // Fig 9 nested-generation rows (schema v4): the single multi-spline
    // object vs the orbital-block decomposition at the recorded default
    // budget, both through the walker×block nested schedule at 4
    // threads-per-walker. The generation re-evaluates the same position
    // set every rep (the miniQMC semantic), so what the blocked rows
    // measure is per-block slab residency across a generation's
    // position sweep. N is large enough that the monolithic slab
    // cannot stay resident.
    let nth = 4;
    let nested_sweep: Vec<usize> = if quick { vec![64] } else { vec![512, 2048] };
    for &n in &nested_sweep {
        let ncfg = NestedConfig {
            walkers: if quick { 2 } else { 4 },
            ns: if quick { 8 } else { 512 },
            nth,
            reps: if quick { 1 } else { 3 },
            seed: 29,
        };
        let table = coefficients(n, grid, 23 + n as u64);
        let budget = bspline::tuning::default_block_budget(table.bytes());
        let blocks = n.div_ceil(table.block_splines_for_budget(budget));
        rows.push(ab_nested(
            format!("fig9_vgh_nested_monolithic_n{n}"),
            "f32",
            1,
            nth,
            || measure_nested_monolithic(&table, Kernel::Vgh, &ncfg).ops_per_sec,
        ));
        rows.push(ab_nested(
            format!("fig9_vgh_nested_blocked_n{n}"),
            "f32",
            blocks,
            nth,
            || measure_nested_blocked(&table, Kernel::Vgh, budget, &ncfg).ops_per_sec,
        ));
        eprintln!("fig9 nested N={n} done");
    }

    // Service rows (schema v5): the coalescing evaluation service over
    // the same N SoA engine the fig7a/fig8 closed-loop rows measure.
    // `sat` drives submitters back-to-back (peak throughput — the
    // acceptance bar is ≥ 0.9x the closed-loop batched VGH row); `open`
    // offers a fixed rate well under the *forced-scalar* capacity so
    // both A/B passes run unsaturated and the latency percentiles mean
    // "service under load", not "queue growing without bound".
    let svc_replicas = std::thread::available_parallelism().map_or(1, |v| v.get().min(2));
    // Fuse up to 4 closed-loop batches per engine call: the per-call
    // fixed cost (queue pop, condvar wakeups, completion notify) is
    // what the service adds over the closed loop, and the saturation
    // bar is met by amortizing it over a deeper batch. The submitters'
    // combined in-flight positions (submitters × pipeline ×
    // positions_per_request) exactly fill one fused batch.
    // Routing pinned to FIFO: this row is the pre-routing saturation
    // baseline and must not shift with the host's NUMA topology (the
    // routed ablation rows carry the affinity numbers).
    let svc_cfg = ServiceConfig {
        replicas: svc_replicas,
        max_batch: 4 * batch_size(),
        max_wait: Duration::from_micros(200),
        queue_positions: 4096,
        routing: RoutingPolicy::Fifo,
        ..ServiceConfig::default()
    };
    // pipeline = 4: 4 submitters × 4 in-flight × (batch_size/2)
    // positions keeps two fused batches outstanding — enough to keep
    // the worker fed without cycling a multi-MB output working set the
    // closed loop never pays. reps = 5 matches the closed-loop rows'
    // best-of statistic, so the printed saturation ratio compares like
    // with like.
    let svc_load = ServiceLoadConfig {
        submitters: 4,
        requests_per_submitter: if quick { 16 } else { 48 },
        positions_per_request: batch_size() / 2,
        offered_rps: None,
        pipeline: 4,
        // 4 submitters × 2 distinct blocks × 16 positions = the same
        // 128-position working set the closed-loop rows re-evaluate
        // every rep, so the saturation ratio compares the service
        // mechanism, not table cache residency.
        distinct_blocks: 2,
        reps: 5,
        seed: 0x5e71ce,
        deadline: None,
    };
    // Time-aligned closed-loop reference for the saturation bar: this
    // host swings 2x on minute scales, and the fig7a rows run minutes
    // earlier in the pass, so gating the service ratio on them charges
    // host drift to the service. Re-measure the direct batched call
    // here, adjacent to the saturation run, with the fig7a config.
    let soa8 = BsplineSoA::new(table8.clone());
    rows.push(ab(format!("service_vgh_soa_closed_n{n8}"), "f32", || {
        measure_kernel_batched(&soa8, Kernel::Vgh, &cfg).ops_per_sec
    }));
    drop(soa8);
    // The open-loop offered rate must sit below the *forced-scalar*
    // capacity (~1 M-evals/s for SoA VGH on this class of host): at
    // 60 req/s × 16 pos × N=512 ≈ 0.5 M-evals/s the scalar pass runs
    // at ~50% utilization, so its percentiles measure service latency,
    // not an unboundedly growing queue.
    for (tag, rps) in [("sat", None), ("open", Some(60.0))] {
        let load = ServiceLoadConfig {
            offered_rps: rps,
            ..svc_load
        };
        rows.push(ab_service(
            format!("service_vgh_soa_{tag}_n{n8}"),
            "f32",
            svc_replicas,
            || {
                let svc = SpoService::new(BsplineSoA::new(table8.clone()), svc_cfg);
                let l = measure_service(&svc, Kernel::Vgh, &load);
                (l.evals_per_sec, [l.p50_us, l.p95_us, l.p99_us])
            },
        ));
        eprintln!("service {tag} N={n8} done");
    }

    // Degraded-mode service row (schema v9): the saturation load again,
    // but over a service whose worker 0 is killed by a scripted fault
    // eight requests in — the replica loss persists across reps, so the
    // committed latency percentiles are the *surviving* pool's tail
    // under full offered load, and the compare gate holds that p99 the
    // way it holds the healthy rows'. The fault counters ride along in
    // the row (recorded, not gated). Skipped when the host grants only
    // one replica — a kill would leave no survivor and the row would
    // measure the failure path, not degraded capacity.
    if svc_replicas >= 2 {
        let mut ctr = [0usize; 4];
        let mut row = ab_service(
            format!("service_vgh_soa_degraded_n{n8}"),
            "f32",
            svc_replicas,
            || {
                let d =
                    measure_service_degraded(&table8, Kernel::Vgh, svc_cfg, &svc_load);
                ctr = [d.shed, d.retried, d.panics, d.respawns];
                (
                    d.load.evals_per_sec,
                    [d.load.p50_us, d.load.p95_us, d.load.p99_us],
                )
            },
        );
        row.ctr = Some(ctr);
        rows.push(row);
        eprintln!("service degraded N={n8} done");
    }

    // One-move rows (schema v6): the single-electron fast path at the
    // fig8 N. `onemove_v_…` is the per-move V-only ratio latency
    // (`v_one` through a MoveContext), `onemove_vgl_…` the fused
    // propose/accept pair (one `vgl_one` per move; the accept side
    // reads the context-cached streams with no further kernel call),
    // and `onemove_legacy_vgl_…` the pre-fast-path comparator (scalar
    // `v`+`vgl` both run every move) — measured back-to-back so the
    // printed fast-path ratio is time-aligned. Throughput columns are
    // evals/s like every other row; the latency columns carry
    // per-*move* percentiles in µs.
    let om_cfg = OneMoveConfig {
        moves: if quick { 64 } else { 256 },
        reps: 5,
        seed: 0x10e5,
    };
    let om = |s: OneMoveStats| {
        (
            s.evals_per_sec,
            [s.p50_ns / 1e3, s.p95_ns / 1e3, s.p99_ns / 1e3],
        )
    };
    {
        let soa = BsplineSoA::new(table8.clone());
        rows.push(ab_onemove(format!("onemove_v_soa_n{n8}"), "f32", || {
            om(measure_onemove(&soa, OneMovePath::FastV, &om_cfg))
        }));
        rows.push(ab_onemove(format!("onemove_vgl_soa_n{n8}"), "f32", || {
            om(measure_onemove(&soa, OneMovePath::FastPair, &om_cfg))
        }));
        rows.push(ab_onemove(
            format!("onemove_legacy_vgl_soa_n{n8}"),
            "f32",
            || om(measure_onemove(&soa, OneMovePath::ScalarPair, &om_cfg)),
        ));
        let aos = BsplineAoS::new(table8.clone());
        rows.push(ab_onemove(format!("onemove_v_aos_n{n8}"), "f32", || {
            om(measure_onemove(&aos, OneMovePath::FastV, &om_cfg))
        }));
        rows.push(ab_onemove(format!("onemove_vgl_aos_n{n8}"), "f32", || {
            om(measure_onemove(&aos, OneMovePath::FastPair, &om_cfg))
        }));
        let tiled = BsplineAoSoA::from_multi(&table8, nb);
        rows.push(ab_onemove(format!("onemove_vgl_aosoa_n{n8}"), "f32", || {
            om(measure_onemove(&tiled, OneMovePath::FastPair, &om_cfg))
        }));
        let budget = bspline::tuning::default_block_budget(table8.bytes());
        let blocked = BlockedEngine::from_multi(&table8, budget);
        rows.push(ab_onemove(
            format!("onemove_vgl_blocked_n{n8}"),
            "f32",
            || om(measure_onemove(&blocked, OneMovePath::FastPair, &om_cfg)),
        ));
        let soa64 = BsplineSoA::new(table8_64.clone());
        rows.push(ab_onemove(format!("onemove_vgl_soa_n{n8}"), "f64", || {
            om(measure_onemove(&soa64, OneMovePath::FastPair, &om_cfg))
        }));
        let mixed = MixedEngine::soa(&table8_64);
        rows.push(ab_onemove(format!("onemove_vgl_soa_n{n8}"), "mixed", || {
            om(measure_onemove(&mixed, OneMovePath::FastPair, &om_cfg))
        }));
        eprintln!("onemove N={n8} done");
    }

    // Shard-routing rows (schema v7): routed-vs-FIFO ablation on the
    // streaming `distinct_blocks` VGH workload at a table bigger than
    // the LLC (N=2048 at grid 32³ is ~340 MB of f32 coefficients
    // against a ~105 MB LLC on the reference host), where *which*
    // requests a fused batch groups decides whether coefficient lines
    // are re-read from cache or DRAM. Both services are built from the
    // same table and run the identical load; only the routing policy
    // differs. Affinity shards the queue by table region (identical
    // blocks always classify to one shard), so a worker's fused batch
    // holds spatially-clustered copies instead of a FIFO interleave of
    // every submitter's region — the bar is ≥ 1.15x throughput over
    // FIFO at saturation.
    let routed_n = if quick { 128 } else { 2048 };
    let routed_table = coefficients(routed_n, grid, 77);
    let routed_base = ServiceConfig {
        replicas: svc_replicas,
        max_batch: 2 * batch_size(),
        max_wait: Duration::from_micros(200),
        queue_positions: 4096,
        routing: RoutingPolicy::Fifo, // overridden per service inside the ablation
        ..ServiceConfig::default()
    };
    let routed_load = ServiceLoadConfig {
        submitters: 4,
        requests_per_submitter: if quick { 16 } else { 32 },
        positions_per_request: 8,
        offered_rps: None,
        pipeline: 8,
        // 2 distinct blocks per submitter with a deep pipeline keeps
        // several copies of each block in flight at once: affinity
        // routes all copies of a block to one shard queue where the
        // coalescer fuses them adjacently.
        distinct_blocks: 2,
        reps: 3,
        seed: 0xd15c,
        deadline: None,
    };
    let routed_domains = 8;
    {
        let run = || {
            let a = measure_routed_ablation(
                &routed_table,
                Kernel::Vgh,
                routed_base,
                routed_domains,
                &routed_load,
            );
            (a.fifo, a.routed)
        };
        let (scalar_fifo, scalar_aff) = with_backend(Backend::Scalar, run);
        let (fifo, aff) = run();
        for (tag, s, p) in [
            ("fifo", scalar_fifo, fifo),
            ("affinity", scalar_aff, aff),
        ] {
            rows.push(Row {
                name: format!("service_routed_{tag}_n{routed_n}"),
                precision: "f32".into(),
                blocks: 1,
                threads: svc_replicas,
                scalar: s.evals_per_sec,
                simd: p.evals_per_sec,
                lat: Some([p.p50_us, p.p95_us, p.p99_us]),
            ctr: None,
            });
        }
        eprintln!("service routed ablation N={routed_n} done");
    }
    drop(routed_table);

    // Mixed-load per-move SLO row (schema v7): single-position
    // submissions issued closed-loop against the fig8-N FIFO service
    // while background submitters keep pipelined batched traffic in
    // flight — the per-move p99 a QMC driver mixing sweep batches with
    // propose/accept singles actually sees. Latency columns carry the
    // per-move percentiles (µs); throughput is the foreground stream's.
    {
        let mixed_cfg = MixedOneMoveConfig {
            submitters: 2,
            positions_per_request: batch_size() / 2,
            pipeline: 2,
            distinct_blocks: 2,
            moves: if quick { 64 } else { 256 },
            reps: 3,
            seed: 0x10e5,
        };
        rows.push(ab_service(
            format!("service_onemove_n{n8}"),
            "f32",
            svc_replicas,
            || {
                let svc = SpoService::new(BsplineSoA::new(table8.clone()), svc_cfg);
                let m = measure_service_onemove_mixed(&svc, Kernel::Vgh, &mixed_cfg);
                (
                    m.moves_per_sec * n8 as f64,
                    [m.p50_us, m.p95_us, m.p99_us],
                )
            },
        ));
        eprintln!("service onemove mixed N={n8} done");
    }

    // Table IV per-step kernel-profile rows (schema v8): the full pbyp
    // sweep replay on the fast-path suite, per-category wall time as
    // move-orbital evaluations/s. One run_profile replay per backend —
    // the five rows of a column come from a single rep, so the
    // category *shares* stay self-consistent (an `ab()` per category
    // would re-run the whole sweep ten times and pair categories from
    // different host regimes). Tilings pick the paper's scaling points:
    // 8·(8·8·1) = 512 and 8·(16·16·1) = 2048 orbitals/spin.
    {
        let step_tilings: &[(usize, usize, usize)] =
            if quick { &[(2, 4, 1)] } else { &[(8, 8, 1), (16, 16, 1)] };
        for &tiling in step_tilings {
            let pcfg = ProfileConfig {
                tiling,
                grid,
                sweeps: if quick { 1 } else { 2 },
                seed: 0x0c0a1,
            };
            let reps = if quick { 1 } else { 2 };
            let run = || measure_step_profile(Suite::SingleElectronFastPath, &pcfg, reps);
            let scalar = with_backend(Backend::Scalar, run);
            let simd = run();
            let n_step = simd.n;
            for (i, cat) in STEP_CATEGORY_NAMES.iter().enumerate() {
                rows.push(Row {
                    name: format!("table4_step_{cat}_n{n_step}"),
                    precision: "f32".into(),
                    blocks: 1,
                    threads: 1,
                    scalar: scalar.rate(i),
                    simd: simd.rate(i),
                    lat: None,
            ctr: None,
                });
            }
            rows.push(Row {
                name: format!("table4_step_total_n{n_step}"),
                precision: "f32".into(),
                blocks: 1,
                threads: 1,
                scalar: scalar.total_rate(),
                simd: simd.total_rate(),
                lat: None,
            ctr: None,
            });
            eprintln!("table4 step profile N={n_step} done");
        }
    }
    rows
}

/// Record-mode measurement: two independent passes, each row keeping
/// its faster pass. Shared hosts swing 2x on minute scales; the *peak*
/// (best-of-reps, best-of-passes) is the stable statistic of the
/// machine, and compare mode uses the identical statistic (a failing
/// row gets a second full pass and keeps its best), so both sides of
/// the gate sample the same distribution. The peak is also what keeps
/// cross-precision ratios honest — per-precision rows are measured
/// minutes apart, and pinning each to its peak decorrelates them from
/// transient dips.
#[allow(clippy::type_complexity)]
fn measure_committed() -> (
    Vec<Row>,
    Option<ServiceRatio>,
    Option<OneMoveRatio>,
    Option<RoutedRatio>,
) {
    let mut rows = measure_all();
    let mut ratio = service_ratio(&rows);
    let mut om_ratio = onemove_ratio(&rows);
    let mut rt_ratio = routed_ratio(&rows);
    eprintln!("second record pass (committing the per-row best)");
    let second = measure_all();
    // The saturation, fast-path, and routing ratios are taken within a
    // single pass (each pair of rows is measured back-to-back there) —
    // merging rows first would pair maxima from *different* host
    // regimes and understate the mechanism on a drifting machine.
    ratio = match (ratio, service_ratio(&second)) {
        (Some(a), Some(b)) => Some(if b.simd > a.simd { b } else { a }),
        (a, b) => a.or(b),
    };
    om_ratio = match (om_ratio, onemove_ratio(&second)) {
        (Some(a), Some(b)) => Some(if b.simd > a.simd { b } else { a }),
        (a, b) => a.or(b),
    };
    rt_ratio = match (rt_ratio, routed_ratio(&second)) {
        (Some(a), Some(b)) => Some(if b.simd > a.simd { b } else { a }),
        (a, b) => a.or(b),
    };
    for (a, b) in rows.iter_mut().zip(second) {
        debug_assert_eq!((&a.name, &a.precision), (&b.name, &b.precision));
        merge_recorded(a, &b);
    }
    (rows, ratio, om_ratio, rt_ratio)
}

/// Merge two *record* passes into the committed row: max throughput
/// per column (peak of the machine — noise only slows a pass down)
/// but the **max** of each latency percentile. Latency is gated as
/// `old/new < floor` against a future single measurement's tail, so
/// committing the *luckiest* tail of two passes would arm a gate that
/// typical runs cannot pass; the conservative tail still catches a
/// real regression, which reproduces above it.
fn merge_recorded(a: &mut Row, b: &Row) {
    a.scalar = a.scalar.max(b.scalar);
    a.simd = a.simd.max(b.simd);
    a.lat = match (a.lat, b.lat) {
        (Some(x), Some(y)) => {
            Some([x[0].max(y[0]), x[1].max(y[1]), x[2].max(y[2])])
        }
        (x, y) => x.or(y),
    };
    // Fault counters are informational; keep the first pass's set.
    a.ctr = a.ctr.or(b.ctr);
}

/// Merge the *compare*-side retry pass into the measured row: max
/// throughput and min latency per percentile — the forgiving
/// direction, since the retry exists to rule out transient host noise
/// (a real regression fails both passes).
fn merge_best(a: &mut Row, b: &Row) {
    a.scalar = a.scalar.max(b.scalar);
    a.simd = a.simd.max(b.simd);
    a.lat = match (a.lat, b.lat) {
        (Some(x), Some(y)) => {
            Some([x[0].min(y[0]), x[1].min(y[1]), x[2].min(y[2])])
        }
        (x, y) => x.or(y),
    };
    a.ctr = a.ctr.or(b.ctr);
}

/// `old_p99 / new_p99` when both rows carry latency percentiles —
/// oriented like the throughput ratios (bigger is better, `< floor`
/// regresses). `None` when either side predates v5 or is closed-loop.
fn latency_ratio(old: &Row, new: &Row) -> Option<f64> {
    let (o, n) = (old.lat?, new.lat?);
    Some(o[2] / n[2].max(1e-9))
}

fn print_rows(rows: &[Row]) {
    let mut t = Table::new(
        "Bench baseline: M-evals/s, scalar backend vs active SIMD backend",
        &[
            "kernel",
            "precision",
            "B",
            "nth",
            "scalar",
            "simd",
            "simd/scalar",
            "p50/p95/p99 µs",
        ],
    );
    for r in rows {
        t.row(vec![
            r.name.clone(),
            r.precision.clone(),
            r.blocks.to_string(),
            r.threads.to_string(),
            mops(r.scalar),
            mops(r.simd),
            format!("{:.2}x", r.simd / r.scalar.max(1.0)),
            r.lat.map_or_else(
                || "-".to_string(),
                |l| format!("{:.0}/{:.0}/{:.0}", l[0], l[1], l[2]),
            ),
        ]);
    }
    t.print();
}

/// The tentpole acceptance statistic: saturation service throughput
/// over the time-aligned closed-loop batched VGH reference
/// (`service_vgh_soa_closed_n…`, measured adjacent to the service rows
/// in the same pass).
struct ServiceRatio {
    n: String,
    simd: f64,
    scalar: f64,
}

/// Extract the saturation-vs-closed ratio from one measurement pass's
/// rows. `None` when the pass lacks either row (pre-v5 shapes).
fn service_ratio(rows: &[Row]) -> Option<ServiceRatio> {
    let sat = rows
        .iter()
        .find(|r| r.name.starts_with("service_vgh_soa_sat_n"))?;
    let (_, n) = sat.name.rsplit_once("_n")?;
    let closed = format!("service_vgh_soa_closed_n{n}");
    let direct = rows
        .iter()
        .find(|r| r.name == closed && r.precision == "f32")?;
    Some(ServiceRatio {
        n: n.to_string(),
        simd: sat.simd / direct.simd.max(1.0),
        scalar: sat.scalar / direct.scalar.max(1.0),
    })
}

/// Record-mode summary line for the tentpole acceptance bar.
fn print_service_ratio(r: &ServiceRatio) {
    println!(
        "service saturation vs closed-loop batched VGH (SoA f32, N={}): \
         {:.2}x simd, {:.2}x scalar (best time-aligned pass; bar: >= 0.90x at saturation)",
        r.n, r.simd, r.scalar,
    );
}

/// The fast-path acceptance statistic: per-*move* throughput of the
/// one-move propose/accept pair over the scalar `v`+`vgl` comparator.
struct OneMoveRatio {
    n: String,
    simd: f64,
    scalar: f64,
}

/// Extract the per-move fast-vs-legacy ratio from one pass's rows. The
/// rows store evals/s; the fused fast pair runs exactly 1 engine call
/// per move (`vgl_one` on propose, accept reads the context-cached
/// streams) against the legacy path's 2 (`v` + `vgl`), so moves/s =
/// evals/s ÷ (calls-per-move × N) and the per-move ratio is the evals
/// ratio × 2/1. `None` for pre-v6 row sets.
fn onemove_ratio(rows: &[Row]) -> Option<OneMoveRatio> {
    let fast = rows
        .iter()
        .find(|r| r.name.starts_with("onemove_vgl_soa_n") && r.precision == "f32")?;
    let (_, n) = fast.name.rsplit_once("_n")?;
    let legacy_name = format!("onemove_legacy_vgl_soa_n{n}");
    let legacy = rows
        .iter()
        .find(|r| r.name == legacy_name && r.precision == "f32")?;
    const CALLS_PER_MOVE: f64 = 2.0 / 1.0;
    Some(OneMoveRatio {
        n: n.to_string(),
        simd: fast.simd / legacy.simd.max(1.0) * CALLS_PER_MOVE,
        scalar: fast.scalar / legacy.scalar.max(1.0) * CALLS_PER_MOVE,
    })
}

/// The shard-routing acceptance statistic: affinity-routed saturation
/// throughput over the FIFO service on the identical streaming
/// workload (both rows measured back-to-back in one pass).
struct RoutedRatio {
    n: String,
    simd: f64,
    scalar: f64,
}

/// Extract the affinity-vs-FIFO ratio from one pass's rows. `None` for
/// pre-v7 row sets.
fn routed_ratio(rows: &[Row]) -> Option<RoutedRatio> {
    let aff = rows
        .iter()
        .find(|r| r.name.starts_with("service_routed_affinity_n"))?;
    let (_, n) = aff.name.rsplit_once("_n")?;
    let fifo_name = format!("service_routed_fifo_n{n}");
    let fifo = rows
        .iter()
        .find(|r| r.name == fifo_name && r.precision == "f32")?;
    Some(RoutedRatio {
        n: n.to_string(),
        simd: aff.simd / fifo.simd.max(1.0),
        scalar: aff.scalar / fifo.scalar.max(1.0),
    })
}

/// Record-mode summary line for the shard-routing acceptance bar.
fn print_routed_ratio(r: &RoutedRatio) {
    println!(
        "shard routing: affinity vs FIFO at saturation on the streaming \
         distinct-blocks VGH workload (SoA f32, N={}): {:.2}x simd, {:.2}x scalar \
         (best time-aligned pass; bar: >= 1.15x simd)",
        r.n, r.simd, r.scalar,
    );
}

/// Record-mode summary line for the fast-path acceptance bar.
fn print_onemove_ratio(r: &OneMoveRatio) {
    println!(
        "single-electron fast path: per-move VGL propose/accept pair (fused vgl_one, \
         accept from cache) vs scalar v+vgl (SoA f32, N={}): {:.2}x simd, {:.2}x scalar \
         (best time-aligned pass; bar: >= 1.5x)",
        r.n, r.simd, r.scalar,
    );
}

fn write_json(rows: &[Row], out_path: &str) {
    let quick = is_quick();
    let threads = std::thread::available_parallelism()
        .map(|v| v.get())
        .unwrap_or(1);
    let available: Vec<String> = Backend::available()
        .iter()
        .map(|b| b.name().to_string())
        .collect();
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"schema\": \"qmc-bench-baseline-v9\",\n");
    let _ = writeln!(
        json,
        "  \"host\": {{ \"cpu\": {:?}, \"threads\": {threads} }},",
        host_cpu()
    );
    let _ = writeln!(
        json,
        "  \"config\": {{ \"batch\": {}, \"quick\": {quick} }},",
        batch_size()
    );
    let _ = writeln!(
        json,
        "  \"simd\": {{ \"active\": \"{}\", \"available\": [{}] }},",
        bspline::simd::default_backend(),
        available
            .iter()
            .map(|b| format!("\"{b}\""))
            .collect::<Vec<_>>()
            .join(", ")
    );
    json.push_str("  \"kernels\": [\n");
    for (i, r) in rows.iter().enumerate() {
        // Latency fields only appear on open-loop service rows; the
        // parser treats their absence as "throughput-gated only".
        let lat = r.lat.map_or_else(String::new, |l| {
            format!(
                ", \"p50_us\": {:.1}, \"p95_us\": {:.1}, \"p99_us\": {:.1}",
                l[0], l[1], l[2]
            )
        });
        // Fault counters only appear on the degraded service row; the
        // parser treats their absence as "no counters recorded".
        let ctr = r.ctr.map_or_else(String::new, |c| {
            format!(
                ", \"shed\": {}, \"retried\": {}, \"panics\": {}, \"respawns\": {}",
                c[0], c[1], c[2], c[3]
            )
        });
        let _ = writeln!(
            json,
            "    {{ \"name\": \"{}\", \"precision\": \"{}\", \"blocks\": {}, \"threads\": {}, \"scalar\": {}, \"simd\": {}{}{} }}{}",
            r.name,
            r.precision,
            r.blocks,
            r.threads,
            mops(r.scalar),
            mops(r.simd),
            lat,
            ctr,
            if i + 1 == rows.len() { "" } else { "," }
        );
    }
    json.push_str("  ]\n}\n");
    std::fs::write(out_path, &json).expect("write baseline JSON");
    println!("wrote {out_path}");
}

/// A parsed baseline file: kernel rows plus the header fields the
/// comparison gate needs.
struct Baseline {
    rows: Vec<Row>,
    /// `simd.active` backend name the file was recorded with.
    active: Option<String>,
    /// Whether the file predates the precision column (schema v2).
    v2: bool,
}

/// Extract rows + header from a v2–v9 baseline file (the writer emits
/// one kernel object per line; no JSON dependency needed). v2 rows
/// carry no `precision` field and are treated as `f32` — the only
/// precision v2 measured; v2/v3 rows carry no `blocks`/`threads`
/// fields and default both to 1 (every pre-v4 row was monolithic and
/// flat); pre-v5 rows carry no latency percentiles and are gated on
/// throughput only; pre-v6 files lack the `onemove_…` rows, pre-v7
/// files the routing rows, pre-v8 files the `table4_step_…` rows, and
/// pre-v9 files the degraded-mode row and its fault counters — all
/// simply not gated until the baseline is re-recorded.
fn parse_baseline(text: &str) -> Result<Baseline, String> {
    let known = (2..=9).any(|v| text.contains(&format!("qmc-bench-baseline-v{v}")));
    if !known {
        return Err(
            "baseline file is not schema v2–v9 — re-record it first".into(),
        );
    }
    let v2 = text.contains("qmc-bench-baseline-v2");
    fn after<'a>(line: &'a str, key: &str) -> Option<&'a str> {
        let at = line.find(&format!("\"{key}\":"))?;
        Some(line[at..].split_once(':')?.1.trim_start())
    }
    fn str_after(line: &str, key: &str) -> Option<String> {
        Some(
            after(line, key)?
                .trim_start_matches('"')
                .split('"')
                .next()
                .unwrap_or("")
                .to_string(),
        )
    }
    fn num_after(line: &str, key: &str) -> Option<f64> {
        let rest = after(line, key)?;
        let digits: String = rest
            .chars()
            .take_while(|c| c.is_ascii_digit() || "+-.eE".contains(*c))
            .collect();
        digits.parse().ok()
    }
    let mut rows = Vec::new();
    let mut active = None;
    for line in text.lines() {
        if line.contains("\"active\":") && active.is_none() {
            active = str_after(line, "active");
        }
        let Some(name) = str_after(line, "name") else {
            continue;
        };
        let precision =
            str_after(line, "precision").unwrap_or_else(|| "f32".to_string());
        let blocks = num_after(line, "blocks").map_or(1, |v| v as usize);
        let threads = num_after(line, "threads").map_or(1, |v| v as usize);
        let scalar = num_after(line, "scalar")
            .ok_or_else(|| format!("bad scalar field in line: {line}"))?;
        let simd = num_after(line, "simd")
            .ok_or_else(|| format!("bad simd field in line: {line}"))?;
        let lat = match (
            num_after(line, "p50_us"),
            num_after(line, "p95_us"),
            num_after(line, "p99_us"),
        ) {
            (Some(p50), Some(p95), Some(p99)) => Some([p50, p95, p99]),
            _ => None,
        };
        let ctr = match (
            num_after(line, "shed"),
            num_after(line, "retried"),
            num_after(line, "panics"),
            num_after(line, "respawns"),
        ) {
            (Some(s), Some(r), Some(p), Some(w)) => {
                Some([s as usize, r as usize, p as usize, w as usize])
            }
            _ => None,
        };
        rows.push(Row {
            name,
            precision,
            blocks,
            threads,
            scalar: scalar * 1e6,
            simd: simd * 1e6,
            lat,
            ctr,
        });
    }
    if rows.is_empty() {
        return Err("no kernel rows found in baseline file".into());
    }
    Ok(Baseline { rows, active, v2 })
}

fn compare(baseline_path: &str) -> ExitCode {
    let text = match std::fs::read_to_string(baseline_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {baseline_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let committed = match parse_baseline(&text) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("cannot parse {baseline_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    // Gating on ratios across different workload scales would compare
    // nothing about the change (quick mode shrinks the grid and sweep
    // but keeps the row names), so a scale mismatch is a hard error,
    // not a warning.
    let committed_quick = text.contains("\"quick\": true");
    if committed_quick != is_quick() {
        eprintln!(
            "error: baseline was recorded with quick={committed_quick} but this run has \
             quick={} — the workloads differ; re-run with matching QMC_BENCH_QUICK \
             (or re-record the baseline) before comparing",
            is_quick()
        );
        return ExitCode::FAILURE;
    }
    // Throughput ratios across different instruction sets measure the
    // host difference, not the change under test: a scalar-recorded
    // baseline would flag a phantom "speedup" on an AVX2 host (and an
    // AVX2 baseline a phantom regression on a scalar host). Refuse
    // instead of silently comparing.
    let current_active = bspline::simd::default_backend().name();
    match committed.active.as_deref() {
        Some(active) if active != current_active => {
            eprintln!(
                "error: baseline {baseline_path} was recorded with simd.active={active} \
                 but this host/run resolves to {current_active} — the SIMD columns are \
                 not comparable; re-record the baseline on this configuration (or force \
                 QMC_SIMD={active} if that backend is available)"
            );
            return ExitCode::FAILURE;
        }
        Some(_) => {}
        None => {
            eprintln!(
                "warning: baseline has no simd.active field; cannot verify the SIMD \
                 backends match (current: {current_active})"
            );
        }
    }
    if committed.v2 {
        eprintln!(
            "note: {baseline_path} is schema v2 (no precision column); its rows gate \
             the f32 precision only — f64/mixed rows of this run are not compared. \
             Re-record to gate every precision."
        );
    }

    let floor = regression_floor();
    let mut current = measure_all();
    // Flake guard: a shared host can dip 2x for a minute. A row only
    // counts as regressed if it fails in TWO independent measurement
    // passes — a real kernel regression reproduces, a tenant-noise dip
    // does not. The retry pass runs only when the first pass failed
    // something, and each row keeps its best pass.
    let needs_retry = current.iter().any(|new| {
        committed
            .rows
            .iter()
            .find(|r| r.name == new.name && r.precision == new.precision)
            .is_some_and(|old| {
                new.scalar / old.scalar.max(1.0) < floor
                    || new.simd / old.simd.max(1.0) < floor
                    || latency_ratio(old, new).is_some_and(|r| r < floor)
            })
    });
    if needs_retry {
        eprintln!(
            "some rows fell below the {floor}x floor; re-measuring once to \
             rule out transient host noise"
        );
        let second = measure_all();
        for (a, b) in current.iter_mut().zip(second) {
            debug_assert_eq!((&a.name, &a.precision), (&b.name, &b.precision));
            merge_best(a, &b);
        }
    }
    let mut t = Table::new(
        format!("Speedup vs {baseline_path} (M-evals/s; floor {floor}x)"),
        &[
            "kernel",
            "precision",
            "scalar old→new",
            "ratio",
            "simd old→new",
            "ratio",
            "p99µs old→new",
            "status",
        ],
    );
    let mut regressed: Vec<String> = Vec::new();
    let mut compared = 0usize;
    for new in &current {
        let Some(old) = committed
            .rows
            .iter()
            .find(|r| r.name == new.name && r.precision == new.precision)
        else {
            continue;
        };
        compared += 1;
        let rs = new.scalar / old.scalar.max(1.0);
        let rv = new.simd / old.simd.max(1.0);
        // Latency gate (service rows, both sides v5): `old/new` so the
        // ratio reads like the throughput ones — < floor means the new
        // p99 inflated beyond 1/floor of the committed tail.
        let rl = latency_ratio(old, new);
        let bad = rs < floor || rv < floor || rl.is_some_and(|r| r < floor);
        if bad {
            regressed.push(format!(
                "{} [precision={}] scalar {:.2}x simd {:.2}x{}",
                new.name,
                new.precision,
                rs,
                rv,
                rl.map_or_else(String::new, |r| format!(" p99 {r:.2}x")),
            ));
        }
        t.row(vec![
            new.name.clone(),
            new.precision.clone(),
            format!("{}→{}", mops(old.scalar), mops(new.scalar)),
            format!("{rs:.2}x"),
            format!("{}→{}", mops(old.simd), mops(new.simd)),
            format!("{rv:.2}x"),
            match (old.lat, new.lat) {
                (Some(o), Some(n)) => format!("{:.0}→{:.0}", o[2], n[2]),
                _ => "-".into(),
            },
            if bad { "REGRESSED".into() } else { "ok".into() },
        ]);
    }
    t.print();
    if compared == 0 {
        eprintln!("no kernels in common with the committed baseline");
        return ExitCode::FAILURE;
    }
    if !regressed.is_empty() {
        eprintln!(
            "{}/{compared} kernel rows regressed below the {floor}x floor:",
            regressed.len()
        );
        for r in &regressed {
            eprintln!("  {r}");
        }
        return ExitCode::FAILURE;
    }
    println!("all {compared} kernel rows within the regression floor");
    ExitCode::SUCCESS
}

fn record(out_path: &str) -> ExitCode {
    let (rows, ratio, om_ratio, rt_ratio) = measure_committed();
    print_rows(&rows);
    if let Some(r) = &ratio {
        print_service_ratio(r);
    }
    if let Some(r) = &om_ratio {
        print_onemove_ratio(r);
    }
    if let Some(r) = &rt_ratio {
        print_routed_ratio(r);
    }
    write_json(&rows, out_path);
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("--compare") => {
            let path = args.get(1).cloned().unwrap_or_else(|| "BENCH_BASELINE.json".into());
            compare(&path)
        }
        Some(out) => record(out),
        None => record("BENCH_BASELINE.json"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn v9_rows_roundtrip_through_writer_and_parser() {
        let rows = vec![
            Row {
                name: "service_vgh_soa_degraded_n512".into(),
                precision: "f32".into(),
                blocks: 1,
                threads: 2,
                scalar: 0.8e6,
                simd: 1.6e6,
                lat: Some([130.0, 420.0, 770.5]),
                ctr: Some([3, 2, 1, 0]),
            },
            Row {
                name: "fig9_vgh_nested_blocked_n512".into(),
                precision: "f32".into(),
                blocks: 7,
                threads: 4,
                scalar: 1.25e6,
                simd: 14.5e6,
                lat: None,
            ctr: None,
            },
            Row {
                name: "service_vgh_soa_open_n512".into(),
                precision: "f32".into(),
                blocks: 1,
                threads: 2,
                scalar: 1.0e6,
                simd: 2.0e6,
                lat: Some([110.5, 340.0, 612.25]),
            ctr: None,
            },
            Row {
                name: "onemove_vgl_soa_n512".into(),
                precision: "f32".into(),
                blocks: 1,
                threads: 1,
                scalar: 3.0e6,
                simd: 24.0e6,
                lat: Some([4.5, 7.0, 11.25]),
            ctr: None,
            },
            Row {
                name: "service_routed_affinity_n2048".into(),
                precision: "f32".into(),
                blocks: 1,
                threads: 2,
                scalar: 1.5e6,
                simd: 30.0e6,
                lat: Some([210.0, 650.0, 980.5]),
            ctr: None,
            },
            Row {
                name: "table4_step_determinant_n2048".into(),
                precision: "f32".into(),
                blocks: 1,
                threads: 1,
                scalar: 0.49e6,
                simd: 1.02e6,
                lat: None,
            ctr: None,
            },
        ];
        let tmp = std::env::temp_dir().join("qmc-baseline-v9-roundtrip.json");
        write_json(&rows, tmp.to_str().unwrap());
        let text = std::fs::read_to_string(&tmp).unwrap();
        assert!(text.contains("qmc-bench-baseline-v9"));
        let parsed = parse_baseline(&text).expect("v9 parses");
        assert!(!parsed.v2);
        assert_eq!(parsed.rows.len(), 6);
        // Degraded row: counters and latency both round-trip.
        let deg = &parsed.rows[0];
        assert_eq!(deg.ctr, Some([3, 2, 1, 0]));
        let dl = deg.lat.expect("degraded row keeps latency");
        assert!((dl[2] - 770.5).abs() < 0.1);
        assert_eq!(parsed.rows[1].blocks, 7);
        assert_eq!(parsed.rows[1].threads, 4);
        assert_eq!(parsed.rows[1].lat, None);
        assert_eq!(parsed.rows[1].ctr, None);
        assert_eq!(parsed.rows[2].threads, 2);
        // Latency fields round-trip at 0.1 µs precision.
        let lat = parsed.rows[2].lat.expect("service row keeps latency");
        assert!((lat[0] - 110.5).abs() < 0.05);
        assert!((lat[1] - 340.0).abs() < 0.05);
        assert!((lat[2] - 612.25).abs() < 0.1);
        // Per-move latency percentiles survive the onemove row too.
        let om = parsed.rows[3].lat.expect("onemove row keeps latency");
        assert!((om[0] - 4.5).abs() < 0.05);
        assert!((om[2] - 11.25).abs() < 0.1);
        // Routed rows round-trip like any other service row.
        let rt = parsed.rows[4].lat.expect("routed row keeps latency");
        assert!((rt[2] - 980.5).abs() < 0.1);
        // mops() rounds to 2 decimals of M-evals/s.
        assert!((parsed.rows[1].simd - 14.5e6).abs() < 1e4);
        // Table IV step rows round-trip like throughput-only kernel
        // rows: a slow per-step category still lands above the 0.01 M
        // serialization floor.
        let step = &parsed.rows[5];
        assert_eq!(step.lat, None);
        assert!((step.scalar - 0.49e6).abs() < 1e4);
        assert!((step.simd - 1.02e6).abs() < 1e4);
        let _ = std::fs::remove_file(tmp);
    }

    #[test]
    fn v8_files_stay_readable_without_degraded_row_or_counters() {
        let v8 = r#"{
  "schema": "qmc-bench-baseline-v8",
  "simd": { "active": "avx2", "available": ["scalar", "avx2"] },
  "kernels": [
    { "name": "service_vgh_soa_sat_n512", "precision": "f32", "blocks": 1, "threads": 2, "scalar": 1.00, "simd": 2.00, "p50_us": 110.5, "p95_us": 340.0, "p99_us": 612.2 },
    { "name": "table4_step_total_n512", "precision": "f32", "blocks": 1, "threads": 1, "scalar": 0.49, "simd": 1.02 }
  ]
}"#;
        let parsed = parse_baseline(v8).expect("v8 parses");
        assert!(!parsed.v2);
        assert_eq!(parsed.rows.len(), 2);
        // No counters in a v8 row → None; the degraded row is simply
        // absent until the baseline is re-recorded.
        assert!(parsed.rows.iter().all(|r| r.ctr.is_none()));
        assert!(!parsed
            .rows
            .iter()
            .any(|r| r.name.starts_with("service_vgh_soa_degraded_")));
    }

    #[test]
    fn v7_files_stay_readable_without_step_profile_rows() {
        let v7 = r#"{
  "schema": "qmc-bench-baseline-v7",
  "simd": { "active": "avx2", "available": ["scalar", "avx2"] },
  "kernels": [
    { "name": "service_routed_affinity_n2048", "precision": "f32", "blocks": 1, "threads": 2, "scalar": 1.50, "simd": 30.00, "p50_us": 210.0, "p95_us": 650.0, "p99_us": 980.5 }
  ]
}"#;
        let parsed = parse_baseline(v7).expect("v7 parses");
        assert!(!parsed.v2);
        assert_eq!(parsed.rows.len(), 1);
        // No table4_step rows in the file → the per-step profile gate
        // is simply absent until the baseline is re-recorded.
        assert!(!parsed.rows.iter().any(|r| r.name.starts_with("table4_step_")));
    }

    #[test]
    fn routed_ratio_pairs_affinity_with_fifo() {
        let mk = |name: &str, scalar: f64, simd: f64| Row {
            name: name.into(),
            precision: "f32".into(),
            blocks: 1,
            threads: 2,
            scalar,
            simd,
            lat: Some([1.0, 2.0, 3.0]),
            ctr: None,
        };
        let rows = vec![
            mk("service_routed_fifo_n2048", 1.0e6, 20.0e6),
            mk("service_routed_affinity_n2048", 1.1e6, 30.0e6),
        ];
        let r = routed_ratio(&rows).expect("both rows present");
        assert_eq!(r.n, "2048");
        assert!((r.simd - 1.5).abs() < 1e-12);
        assert!((r.scalar - 1.1).abs() < 1e-12);
        // FIFO-only rows: no ratio (pre-v7 shape).
        assert!(routed_ratio(&rows[..1]).is_none());
    }

    #[test]
    fn record_merge_keeps_conservative_tail_compare_merge_forgives_it() {
        let mk = |simd: f64, lat: [f64; 3]| Row {
            name: "svc".into(),
            precision: "f32".into(),
            blocks: 1,
            threads: 1,
            scalar: 1.0,
            simd,
            lat: Some(lat),
            ctr: None,
        };
        // Both merges keep the max throughput; they differ on latency:
        // record commits the worst tail seen (a future single run can
        // meet it), the compare retry keeps the best (noise forgiven).
        let mut rec = mk(10.0, [5.0, 9.0, 40.0]);
        merge_recorded(&mut rec, &mk(12.0, [4.0, 11.0, 18.0]));
        assert_eq!(rec.simd, 12.0);
        assert_eq!(rec.lat, Some([5.0, 11.0, 40.0]));
        let mut cmp = mk(10.0, [5.0, 9.0, 40.0]);
        merge_best(&mut cmp, &mk(12.0, [4.0, 11.0, 18.0]));
        assert_eq!(cmp.simd, 12.0);
        assert_eq!(cmp.lat, Some([4.0, 9.0, 18.0]));
        // A latency-less pass (closed-loop row) leaves the other side.
        let mut one = mk(1.0, [1.0, 2.0, 3.0]);
        let mut bare = mk(1.0, [0.0; 3]);
        bare.lat = None;
        merge_recorded(&mut one, &bare);
        assert_eq!(one.lat, Some([1.0, 2.0, 3.0]));
    }

    #[test]
    fn v6_files_stay_readable_without_routing_rows() {
        let v6 = r#"{
  "schema": "qmc-bench-baseline-v6",
  "simd": { "active": "avx2", "available": ["scalar", "avx2"] },
  "kernels": [
    { "name": "onemove_vgl_soa_n512", "precision": "f32", "blocks": 1, "threads": 1, "scalar": 3.00, "simd": 24.00, "p50_us": 4.5, "p95_us": 7.0, "p99_us": 11.2 }
  ]
}"#;
        let parsed = parse_baseline(v6).expect("v6 parses");
        assert!(!parsed.v2);
        assert_eq!(parsed.rows.len(), 1);
        // No routing rows in the file → the affinity gate is simply
        // absent until re-recorded.
        assert!(routed_ratio(&parsed.rows).is_none());
    }

    #[test]
    fn v5_files_stay_readable_without_onemove_rows() {
        let v5 = r#"{
  "schema": "qmc-bench-baseline-v5",
  "simd": { "active": "avx2", "available": ["scalar", "avx2"] },
  "kernels": [
    { "name": "service_vgh_soa_open_n512", "precision": "f32", "blocks": 1, "threads": 2, "scalar": 1.00, "simd": 2.00, "p50_us": 110.5, "p95_us": 340.0, "p99_us": 612.2 }
  ]
}"#;
        let parsed = parse_baseline(v5).expect("v5 parses");
        assert!(!parsed.v2);
        assert_eq!(parsed.rows.len(), 1);
        assert!(parsed.rows[0].lat.is_some());
        // No onemove rows in the file → the ratio (and their gating) is
        // simply absent until re-recorded.
        assert!(onemove_ratio(&parsed.rows).is_none());
    }

    #[test]
    fn onemove_ratio_converts_evals_to_per_move() {
        let mk = |name: &str, scalar: f64, simd: f64| Row {
            name: name.into(),
            precision: "f32".into(),
            blocks: 1,
            threads: 1,
            scalar,
            simd,
            lat: Some([1.0, 2.0, 3.0]),
            ctr: None,
        };
        // Equal evals/s: the fused fast pair makes 1 call/move vs the
        // legacy 2, so equal evals-throughput means 2x the moves/s.
        let rows = vec![
            mk("onemove_vgl_soa_n512", 3.0e6, 24.0e6),
            mk("onemove_legacy_vgl_soa_n512", 3.0e6, 24.0e6),
        ];
        let r = onemove_ratio(&rows).expect("both rows present");
        assert_eq!(r.n, "512");
        assert!((r.simd - 2.0).abs() < 1e-12);
        assert!((r.scalar - 2.0).abs() < 1e-12);
        // Legacy-only rows: no ratio.
        assert!(onemove_ratio(&rows[1..]).is_none());
    }

    #[test]
    fn v4_files_stay_readable_without_latency_columns() {
        let v4 = r#"{
  "schema": "qmc-bench-baseline-v4",
  "simd": { "active": "avx2", "available": ["scalar", "avx2"] },
  "kernels": [
    { "name": "fig9_vgh_nested_blocked_n512", "precision": "f32", "blocks": 7, "threads": 4, "scalar": 1.25, "simd": 14.50 }
  ]
}"#;
        let parsed = parse_baseline(v4).expect("v4 parses");
        assert!(!parsed.v2);
        assert_eq!(parsed.rows.len(), 1);
        assert_eq!(parsed.rows[0].blocks, 7);
        assert_eq!(parsed.rows[0].lat, None);
    }

    #[test]
    fn latency_ratio_gates_only_double_v5_rows() {
        let mk = |lat| Row {
            name: "service_vgh_soa_open_n512".into(),
            precision: "f32".into(),
            blocks: 1,
            threads: 2,
            scalar: 1.0e6,
            simd: 2.0e6,
            lat,
            ctr: None,
        };
        // Pre-v5 committed row: no gate even if the new run has latency.
        assert_eq!(latency_ratio(&mk(None), &mk(Some([1.0, 2.0, 3.0]))), None);
        assert_eq!(latency_ratio(&mk(Some([1.0, 2.0, 3.0])), &mk(None)), None);
        // Tail doubled: ratio 0.5 — below any sane floor.
        let r = latency_ratio(&mk(Some([100.0, 200.0, 300.0])), &mk(Some([100.0, 200.0, 600.0])))
            .unwrap();
        assert!((r - 0.5).abs() < 1e-12);
    }

    #[test]
    fn merge_best_keeps_peak_throughput_and_min_latency() {
        let mk = |scalar, simd, lat| Row {
            name: "service_vgh_soa_sat_n512".into(),
            precision: "f32".into(),
            blocks: 1,
            threads: 2,
            scalar,
            simd,
            lat,
            ctr: None,
        };
        let mut a = mk(1.0, 5.0, Some([120.0, 300.0, 900.0]));
        let b = mk(2.0, 4.0, Some([150.0, 250.0, 800.0]));
        merge_best(&mut a, &b);
        assert_eq!((a.scalar, a.simd), (2.0, 5.0));
        assert_eq!(a.lat, Some([120.0, 250.0, 800.0]));
        // A lone latency pass survives a latency-less partner.
        let mut c = mk(1.0, 1.0, None);
        merge_best(&mut c, &mk(1.0, 1.0, Some([1.0, 2.0, 3.0])));
        assert_eq!(c.lat, Some([1.0, 2.0, 3.0]));
    }

    #[test]
    fn v3_files_stay_readable_with_defaulted_shape_columns() {
        let v3 = r#"{
  "schema": "qmc-bench-baseline-v3",
  "simd": { "active": "avx2", "available": ["scalar"] },
  "kernels": [
    { "name": "fig8_vgh_aosoa_batch_n512", "precision": "mixed", "scalar": 0.99, "simd": 11.76 }
  ]
}"#;
        let parsed = parse_baseline(v3).expect("v3 parses");
        assert!(!parsed.v2);
        assert_eq!(parsed.active.as_deref(), Some("avx2"));
        assert_eq!(parsed.rows.len(), 1);
        assert_eq!(parsed.rows[0].blocks, 1);
        assert_eq!(parsed.rows[0].threads, 1);
        assert_eq!(parsed.rows[0].precision, "mixed");
    }

    #[test]
    fn v2_files_still_default_to_f32(){
        let v2 = r#"{
  "schema": "qmc-bench-baseline-v2",
  "kernels": [
    { "name": "fig8_v_aos_n512", "scalar": 4.99, "simd": 74.13 }
  ]
}"#;
        let parsed = parse_baseline(v2).expect("v2 parses");
        assert!(parsed.v2);
        assert_eq!(parsed.rows[0].precision, "f32");
        assert_eq!(parsed.rows[0].blocks, 1);
    }

    #[test]
    fn unversioned_files_are_rejected() {
        assert!(parse_baseline("{ \"schema\": \"other\" }").is_err());
    }
}
