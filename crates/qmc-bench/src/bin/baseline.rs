//! `baseline` — record an in-repo bench baseline (`BENCH_BASELINE.json`)
//! and gate kernel PRs against it.
//!
//! Two modes:
//!
//! * **Record** (default): measure the fig7a / fig7b / fig8 host
//!   workloads through both the scalar reference (`QMC_SIMD=scalar`
//!   forced per measurement) and the active SIMD backend, and write the
//!   per-kernel throughputs (M-evals/s) with the host CPU and run
//!   configuration to a JSON file.
//!
//!   `cargo run --release -p qmc-bench --bin baseline [-- out.json]`
//!
//! * **Compare**: re-measure the same kernels and print the per-kernel
//!   speedup against a committed baseline, exiting nonzero if any
//!   kernel regressed by more than 25% in either the scalar or the
//!   SIMD column.
//!
//!   `cargo run --release -p qmc-bench --bin baseline -- --compare BENCH_BASELINE.json`
//!
//! `QMC_BENCH_QUICK=1` shrinks the workload for smoke runs (compare
//! warns when the committed baseline was recorded at a different
//! scale).

use bspline::simd::{with_backend, Backend};
use bspline::{BsplineAoS, BsplineAoSoA, BsplineSoA, Kernel};
use qmc_bench::workload::{batch_size, is_quick};
use qmc_bench::{
    coefficients, measure_kernel, measure_kernel_batched, measure_tile_major,
    MeasureConfig, Table,
};
use std::fmt::Write as _;
use std::process::ExitCode;

/// Fraction of the committed throughput below which a kernel counts as
/// regressed (25% slowdown).
const REGRESSION_FLOOR: f64 = 0.75;

/// One measured kernel row: scalar-backend and SIMD-backend throughput
/// in evals/s.
struct Row {
    name: String,
    scalar: f64,
    simd: f64,
}

/// Throughput in M-evals/s with 2 decimals (host numbers here are in
/// the 10⁵–10⁷ evals/s range; G-evals would round to zero).
fn mops(x: f64) -> String {
    format!("{:.2}", x / 1e6)
}

fn host_cpu() -> String {
    std::fs::read_to_string("/proc/cpuinfo")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("model name"))
                .and_then(|l| l.split(':').nth(1))
                .map(|v| v.trim().to_string())
        })
        .unwrap_or_else(|| "unknown".to_string())
}

/// Measure one closure under the forced scalar backend and under the
/// active (best) backend.
fn ab<F: FnMut() -> f64>(name: impl Into<String>, mut f: F) -> Row {
    let scalar = with_backend(Backend::Scalar, &mut f);
    let simd = f(); // process default (QMC_SIMD respected)
    Row {
        name: name.into(),
        scalar,
        simd,
    }
}

/// The full measurement suite (shared by record and compare modes).
fn measure_all() -> Vec<Row> {
    let quick = is_quick();
    let (grid, sweep): ((usize, usize, usize), Vec<usize>) = if quick {
        ((12, 12, 12), vec![64, 128])
    } else {
        ((32, 32, 32), vec![128, 256, 512, 1024])
    };
    let nb = 32;
    let cfg = MeasureConfig {
        ns: if quick { 32 } else { 128 },
        reps: 3,
        seed: 7,
    };
    let mut rows = Vec::new();

    // Fig 7a: AoS vs SoA (VGH), scalar loop vs batched API.
    for &n in &sweep {
        let table = coefficients(n, grid, 42 + n as u64);
        let aos = BsplineAoS::new(table.clone());
        rows.push(ab(format!("fig7a_vgh_aos_n{n}"), || {
            measure_kernel(&aos, Kernel::Vgh, &cfg).ops_per_sec
        }));
        rows.push(ab(format!("fig7a_vgh_aos_batch_n{n}"), || {
            measure_kernel_batched(&aos, Kernel::Vgh, &cfg).ops_per_sec
        }));
        drop(aos);
        let soa = BsplineSoA::new(table);
        rows.push(ab(format!("fig7a_vgh_soa_n{n}"), || {
            measure_kernel(&soa, Kernel::Vgh, &cfg).ops_per_sec
        }));
        rows.push(ab(format!("fig7a_vgh_soa_batch_n{n}"), || {
            measure_kernel_batched(&soa, Kernel::Vgh, &cfg).ops_per_sec
        }));
        eprintln!("fig7a N={n} done");
    }

    // Fig 7b: SoA vs AoSoA — position-major scalar vs tile-major batch.
    for &n in &sweep {
        let table = coefficients(n, grid, 13 + n as u64);
        let soa = BsplineSoA::new(table.clone());
        rows.push(ab(format!("fig7b_vgh_soa_n{n}"), || {
            measure_kernel(&soa, Kernel::Vgh, &cfg).ops_per_sec
        }));
        drop(soa);
        let tiled = BsplineAoSoA::from_multi(&table, nb);
        rows.push(ab(format!("fig7b_vgh_aosoa_scalar_loop_n{n}"), || {
            measure_kernel(&tiled, Kernel::Vgh, &cfg).ops_per_sec
        }));
        rows.push(ab(format!("fig7b_vgh_aosoa_batch_n{n}"), || {
            measure_kernel_batched(&tiled, Kernel::Vgh, &cfg).ops_per_sec
        }));
        eprintln!("fig7b N={n} done");
    }

    // Fig 8: per-kernel AoS baseline vs AoSoA, scalar vs batched.
    let n8 = if quick { 128 } else { 512 };
    let table8 = coefficients(n8, grid, 9);
    let aos = BsplineAoS::new(table8.clone());
    let tiled = BsplineAoSoA::from_multi(&table8, nb);
    for k in Kernel::ALL {
        let kname = k.to_string().to_lowercase();
        rows.push(ab(format!("fig8_{kname}_aos_n{n8}"), || {
            measure_kernel(&aos, k, &cfg).ops_per_sec
        }));
        rows.push(ab(format!("fig8_{kname}_aosoa_tile_major_n{n8}"), || {
            measure_tile_major(&tiled, k, &cfg).ops_per_sec
        }));
        rows.push(ab(format!("fig8_{kname}_aosoa_batch_n{n8}"), || {
            measure_kernel_batched(&tiled, k, &cfg).ops_per_sec
        }));
        eprintln!("fig8 {k} done");
    }
    rows
}

fn print_rows(rows: &[Row]) {
    let mut t = Table::new(
        "Bench baseline: M-evals/s, scalar backend vs active SIMD backend",
        &["kernel", "scalar", "simd", "simd/scalar"],
    );
    for r in rows {
        t.row(vec![
            r.name.clone(),
            mops(r.scalar),
            mops(r.simd),
            format!("{:.2}x", r.simd / r.scalar.max(1.0)),
        ]);
    }
    t.print();
}

fn write_json(rows: &[Row], out_path: &str) {
    let quick = is_quick();
    let threads = std::thread::available_parallelism()
        .map(|v| v.get())
        .unwrap_or(1);
    let available: Vec<String> = Backend::available()
        .iter()
        .map(|b| b.name().to_string())
        .collect();
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"schema\": \"qmc-bench-baseline-v2\",\n");
    let _ = writeln!(
        json,
        "  \"host\": {{ \"cpu\": {:?}, \"threads\": {threads} }},",
        host_cpu()
    );
    let _ = writeln!(
        json,
        "  \"config\": {{ \"batch\": {}, \"quick\": {quick} }},",
        batch_size()
    );
    let _ = writeln!(
        json,
        "  \"simd\": {{ \"active\": \"{}\", \"available\": [{}] }},",
        bspline::simd::default_backend(),
        available
            .iter()
            .map(|b| format!("\"{b}\""))
            .collect::<Vec<_>>()
            .join(", ")
    );
    json.push_str("  \"kernels\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{ \"name\": \"{}\", \"scalar\": {}, \"simd\": {} }}{}",
            r.name,
            mops(r.scalar),
            mops(r.simd),
            if i + 1 == rows.len() { "" } else { "," }
        );
    }
    json.push_str("  ]\n}\n");
    std::fs::write(out_path, &json).expect("write baseline JSON");
    println!("wrote {out_path}");
}

/// Extract `(name, scalar, simd)` triples from a v2 baseline file (the
/// writer emits one kernel object per line; no JSON dependency needed).
fn parse_baseline(text: &str) -> Result<Vec<Row>, String> {
    if !text.contains("qmc-bench-baseline-v2") {
        return Err(
            "baseline file is not schema qmc-bench-baseline-v2 — re-record it first".into(),
        );
    }
    fn after<'a>(line: &'a str, key: &str) -> Option<&'a str> {
        let at = line.find(&format!("\"{key}\":"))?;
        Some(line[at..].split_once(':')?.1.trim_start())
    }
    fn num_after(line: &str, key: &str) -> Option<f64> {
        let rest = after(line, key)?;
        let digits: String = rest
            .chars()
            .take_while(|c| c.is_ascii_digit() || "+-.eE".contains(*c))
            .collect();
        digits.parse().ok()
    }
    let mut rows = Vec::new();
    for line in text.lines() {
        let Some(name) = after(line, "name") else {
            continue;
        };
        let name = name
            .trim_start_matches('"')
            .split('"')
            .next()
            .unwrap_or("")
            .to_string();
        let scalar = num_after(line, "scalar")
            .ok_or_else(|| format!("bad scalar field in line: {line}"))?;
        let simd = num_after(line, "simd")
            .ok_or_else(|| format!("bad simd field in line: {line}"))?;
        rows.push(Row {
            name,
            scalar: scalar * 1e6,
            simd: simd * 1e6,
        });
    }
    if rows.is_empty() {
        return Err("no kernel rows found in baseline file".into());
    }
    Ok(rows)
}

fn compare(baseline_path: &str) -> ExitCode {
    let text = match std::fs::read_to_string(baseline_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {baseline_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let committed = match parse_baseline(&text) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("cannot parse {baseline_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    // Gating on ratios across different workload scales would compare
    // nothing about the change (quick mode shrinks the grid and sweep
    // but keeps the row names), so a scale mismatch is a hard error,
    // not a warning.
    let committed_quick = text.contains("\"quick\": true");
    if committed_quick != is_quick() {
        eprintln!(
            "error: baseline was recorded with quick={committed_quick} but this run has \
             quick={} — the workloads differ; re-run with matching QMC_BENCH_QUICK \
             (or re-record the baseline) before comparing",
            is_quick()
        );
        return ExitCode::FAILURE;
    }

    let current = measure_all();
    let mut t = Table::new(
        format!("Speedup vs {baseline_path} (M-evals/s; floor {REGRESSION_FLOOR}x)"),
        &["kernel", "scalar old→new", "ratio", "simd old→new", "ratio", "status"],
    );
    let mut regressed = 0usize;
    let mut compared = 0usize;
    for new in &current {
        let Some(old) = committed.iter().find(|r| r.name == new.name) else {
            continue;
        };
        compared += 1;
        let rs = new.scalar / old.scalar.max(1.0);
        let rv = new.simd / old.simd.max(1.0);
        let bad = rs < REGRESSION_FLOOR || rv < REGRESSION_FLOOR;
        if bad {
            regressed += 1;
        }
        t.row(vec![
            new.name.clone(),
            format!("{}→{}", mops(old.scalar), mops(new.scalar)),
            format!("{rs:.2}x"),
            format!("{}→{}", mops(old.simd), mops(new.simd)),
            format!("{rv:.2}x"),
            if bad { "REGRESSED".into() } else { "ok".into() },
        ]);
    }
    t.print();
    if compared == 0 {
        eprintln!("no kernels in common with the committed baseline");
        return ExitCode::FAILURE;
    }
    if regressed > 0 {
        eprintln!("{regressed}/{compared} kernels regressed by more than 25%");
        return ExitCode::FAILURE;
    }
    println!("all {compared} kernels within the regression floor");
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("--compare") => {
            let path = args.get(1).cloned().unwrap_or_else(|| "BENCH_BASELINE.json".into());
            compare(&path)
        }
        Some(out) => {
            let rows = measure_all();
            print_rows(&rows);
            write_json(&rows, out);
            ExitCode::SUCCESS
        }
        None => {
            let rows = measure_all();
            print_rows(&rows);
            write_json(&rows, "BENCH_BASELINE.json");
            ExitCode::SUCCESS
        }
    }
}
