//! `baseline` — record an in-repo bench baseline (`BENCH_BASELINE.json`).
//!
//! Measures the fig7a / fig7b / fig8 host workloads plus the batched
//! variants of each engine and writes the throughputs (M-evals/s) with
//! the host CPU and run configuration to a JSON file, so later kernel
//! PRs can claim measured speedups against committed numbers instead of
//! test parity alone.
//!
//! Run: `cargo run --release -p qmc-bench --bin baseline [-- out.json]`
//! (`QMC_BENCH_QUICK=1` shrinks the workload for smoke runs.)

use bspline::{BsplineAoS, BsplineAoSoA, BsplineSoA, Kernel};
use qmc_bench::workload::{batch_size, is_quick};
use qmc_bench::{
    coefficients, measure_kernel, measure_kernel_batched, MeasureConfig, Table,
};
use std::fmt::Write as _;

/// Throughput in M-evals/s with 2 decimals (host numbers here are in
/// the 10⁵–10⁷ evals/s range; G-evals would round to zero).
fn mops(x: f64) -> String {
    format!("{:.2}", x / 1e6)
}

fn host_cpu() -> String {
    std::fs::read_to_string("/proc/cpuinfo")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("model name"))
                .and_then(|l| l.split(':').nth(1))
                .map(|v| v.trim().to_string())
        })
        .unwrap_or_else(|| "unknown".to_string())
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_BASELINE.json".to_string());
    let quick = is_quick();
    let (grid, sweep): ((usize, usize, usize), Vec<usize>) = if quick {
        ((12, 12, 12), vec![64, 128])
    } else {
        ((32, 32, 32), vec![128, 256, 512, 1024])
    };
    let nb = 32;
    let cfg = MeasureConfig {
        ns: if quick { 32 } else { 128 },
        reps: 3,
        seed: 7,
    };
    let threads = std::thread::available_parallelism()
        .map(|v| v.get())
        .unwrap_or(1);

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"schema\": \"qmc-bench-baseline-v1\",\n");
    let _ = writeln!(json, "  \"host\": {{ \"cpu\": {:?}, \"threads\": {threads} }},", host_cpu());
    let _ = writeln!(
        json,
        "  \"config\": {{ \"grid\": [{}, {}, {}], \"ns\": {}, \"reps\": {}, \"batch\": {}, \"nb\": {nb}, \"quick\": {quick} }},",
        grid.0, grid.1, grid.2, cfg.ns, cfg.reps, batch_size()
    );

    // Fig 7a: AoS vs SoA (VGH), scalar loop vs batched API.
    let mut t7a = Table::new(
        "Fig 7a baseline: VGH M-evals/s (AoS vs SoA, scalar vs batch)",
        &["N", "AoS", "AoS_batch", "SoA", "SoA_batch"],
    );
    json.push_str("  \"fig7a_vgh_mevals_per_sec\": [\n");
    for (idx, &n) in sweep.iter().enumerate() {
        let table = coefficients(n, grid, 42 + n as u64);
        let aos = BsplineAoS::new(table.clone());
        let t_aos = measure_kernel(&aos, Kernel::Vgh, &cfg);
        let t_aos_b = measure_kernel_batched(&aos, Kernel::Vgh, &cfg);
        drop(aos);
        let soa = BsplineSoA::new(table);
        let t_soa = measure_kernel(&soa, Kernel::Vgh, &cfg);
        let t_soa_b = measure_kernel_batched(&soa, Kernel::Vgh, &cfg);
        let _ = writeln!(
            json,
            "    {{ \"n\": {n}, \"aos\": {}, \"aos_batch\": {}, \"soa\": {}, \"soa_batch\": {} }}{}",
            mops(t_aos.ops_per_sec),
            mops(t_aos_b.ops_per_sec),
            mops(t_soa.ops_per_sec),
            mops(t_soa_b.ops_per_sec),
            if idx + 1 == sweep.len() { "" } else { "," }
        );
        t7a.row(vec![
            n.to_string(),
            mops(t_aos.ops_per_sec),
            mops(t_aos_b.ops_per_sec),
            mops(t_soa.ops_per_sec),
            mops(t_soa_b.ops_per_sec),
        ]);
        eprintln!("fig7a N={n} done");
    }
    json.push_str("  ],\n");
    t7a.print();

    // Fig 7b: SoA vs AoSoA — position-major scalar vs tile-major batch.
    let mut t7b = Table::new(
        "Fig 7b baseline: VGH M-evals/s (SoA vs AoSoA Nb=32 scalar vs batch)",
        &["N", "SoA", "AoSoA_scalar", "AoSoA_batch"],
    );
    json.push_str("  \"fig7b_vgh_mevals_per_sec\": [\n");
    for (idx, &n) in sweep.iter().enumerate() {
        let table = coefficients(n, grid, 13 + n as u64);
        let soa = BsplineSoA::new(table.clone());
        let t_soa = measure_kernel(&soa, Kernel::Vgh, &cfg);
        drop(soa);
        let tiled = BsplineAoSoA::from_multi(&table, nb);
        let t_scalar = measure_kernel(&tiled, Kernel::Vgh, &cfg);
        let t_batch = measure_kernel_batched(&tiled, Kernel::Vgh, &cfg);
        let _ = writeln!(
            json,
            "    {{ \"n\": {n}, \"nb\": {nb}, \"soa\": {}, \"aosoa_scalar\": {}, \"aosoa_batch\": {} }}{}",
            mops(t_soa.ops_per_sec),
            mops(t_scalar.ops_per_sec),
            mops(t_batch.ops_per_sec),
            if idx + 1 == sweep.len() { "" } else { "," }
        );
        t7b.row(vec![
            n.to_string(),
            mops(t_soa.ops_per_sec),
            mops(t_scalar.ops_per_sec),
            mops(t_batch.ops_per_sec),
        ]);
        eprintln!("fig7b N={n} done");
    }
    json.push_str("  ],\n");
    t7b.print();

    // Fig 8: per-kernel AoS baseline vs AoSoA, scalar vs batched.
    let n8 = if quick { 128 } else { 512 };
    let table8 = coefficients(n8, grid, 9);
    let aos = BsplineAoS::new(table8.clone());
    let tiled = BsplineAoSoA::from_multi(&table8, nb);
    let mut t8 = Table::new(
        format!("Fig 8 baseline: per-kernel M-evals/s (N = {n8})"),
        &["kernel", "AoS", "AoSoA_scalar", "AoSoA_batch"],
    );
    let _ = writeln!(json, "  \"fig8_mevals_per_sec_n{n8}\": [");
    for (idx, k) in Kernel::ALL.iter().enumerate() {
        let t_aos = measure_kernel(&aos, *k, &cfg);
        let t_scalar = measure_kernel(&tiled, *k, &cfg);
        let t_batch = measure_kernel_batched(&tiled, *k, &cfg);
        let _ = writeln!(
            json,
            "    {{ \"kernel\": \"{k}\", \"aos\": {}, \"aosoa_scalar\": {}, \"aosoa_batch\": {} }}{}",
            mops(t_aos.ops_per_sec),
            mops(t_scalar.ops_per_sec),
            mops(t_batch.ops_per_sec),
            if idx + 1 == Kernel::ALL.len() { "" } else { "," }
        );
        t8.row(vec![
            k.to_string(),
            mops(t_aos.ops_per_sec),
            mops(t_scalar.ops_per_sec),
            mops(t_batch.ops_per_sec),
        ]);
        eprintln!("fig8 {k} done");
    }
    json.push_str("  ]\n}\n");
    t8.print();

    std::fs::write(&out_path, &json).expect("write baseline JSON");
    println!("wrote {out_path}");
}
