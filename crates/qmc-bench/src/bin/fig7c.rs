//! Fig. 7c — AoSoA VGH throughput vs tile size Nb at N = 2048.
//!
//! The paper's key tuning plot: on shared-LLC machines (BDW, BG/Q) the
//! optimum is Nb = 64 — one coefficient tile (4·Ng·Nb ≈ 28 MB) fits the
//! LLC; on private-L2 Xeon Phi (KNC, KNL) the optimum is Nb = 512 —
//! output blocks stay cache-resident while prefactor costs amortize.
//! Host measurements plus per-platform model predictions.

use bspline::{BsplineAoSoA, Kernel, Layout};
use cachesim::Platform;
use qmc_bench::report::gops;
use qmc_bench::workload::{grid, samples_for};
use qmc_bench::{coefficients, measure_tile_major, MeasureConfig, ModelScenario, Table};

fn main() {
    let quick = qmc_bench::is_quick();
    let n = if quick { 512 } else { 2048 };
    let sweep: Vec<usize> = [16, 32, 64, 128, 256, 512, 1024, 2048]
        .into_iter()
        .filter(|nb| *nb <= n)
        .collect();
    let grid = grid();
    let skip_host = std::env::args().any(|a| a == "--model-only");

    if !skip_host {
        let table = coefficients(n, grid, 4242);
        let cfg = MeasureConfig {
            ns: samples_for(n),
            reps: 3,
            seed: 7,
        };
        let mut t = Table::new(
            format!("Fig 7c: AoSoA VGH throughput vs tile size (host), N={n}"),
            &["Nb", "tiles", "T (G-evals/s)"],
        );
        for &nb in &sweep {
            let tiled = BsplineAoSoA::from_multi(&table, nb);
            let thr = measure_tile_major(&tiled, Kernel::Vgh, &cfg);
            t.row(vec![
                nb.to_string(),
                tiled.n_tiles().to_string(),
                gops(thr.ops_per_sec),
            ]);
            eprintln!("host Nb={nb}");
        }
        t.print();
    }

    let mut m = Table::new(
        format!("Fig 7c (modelled): predicted VGH throughput (G-evals/s) vs Nb, N={n}"),
        &["Nb", "BDW", "KNC", "KNL", "BG/Q"],
    );
    let platforms = Platform::all();
    let mut best: Vec<(f64, usize)> = vec![(0.0, 0); platforms.len()];
    for &nb in &sweep {
        let mut cells = vec![nb.to_string()];
        for (pi, p) in platforms.iter().enumerate() {
            let mut sc = ModelScenario::vgh(Layout::AoSoA, n, nb);
            if quick {
                sc.grid = (16, 16, 16);
                sc.n_positions = 8;
            }
            let pred = qmc_bench::model_prediction(p, &sc);
            if pred.throughput > best[pi].0 {
                best[pi] = (pred.throughput, nb);
            }
            cells.push(gops(pred.throughput));
        }
        m.row(cells);
        eprintln!("modelled Nb={nb}");
    }
    m.print();
    println!("predicted optimal Nb per platform (paper: BDW 64, KNC 512, KNL 512, BG/Q 64):");
    for (p, (thr, nb)) in platforms.iter().zip(best) {
        println!("  {:>5}: Nb* = {:>4}  (T = {} G-evals/s)", p.name, nb, gops(thr));
    }
}
