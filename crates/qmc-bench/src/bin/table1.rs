//! Table I — system configurations of the four modelled platforms.

use cachesim::{Platform, Scope};
use qmc_bench::Table;

fn level_desc(p: &Platform, idx: usize) -> String {
    match p.levels.get(idx) {
        None => "-".into(),
        Some(l) => {
            let size = l.cfg.size;
            let human = if size >= 1024 * 1024 {
                format!("{} MB", size / 1024 / 1024)
            } else {
                format!("{} KB", size / 1024)
            };
            match l.scope {
                Scope::Shared => format!("{human} shared"),
                Scope::Private(k) => format!("{human}/{k}thr"),
            }
        }
    }
}

fn main() {
    let mut t = Table::new(
        "Table I: system configurations (modelled from the paper)",
        &[
            "", "BDW", "KNC", "KNL", "BG/Q",
        ],
    );
    let ps = Platform::all();
    let row = |label: &str, f: &dyn Fn(&Platform) -> String| -> Vec<String> {
        let mut cells = vec![label.to_string()];
        cells.extend(ps.iter().map(f));
        cells
    };
    t.row(row("# of cores", &|p| p.cores.to_string()));
    t.row(row("threads/core", &|p| p.threads_per_core.to_string()));
    t.row(row("SIMD width (bits)", &|p| p.simd_bits.to_string()));
    t.row(row("freq (GHz)", &|p| format!("{:.3}", p.freq_ghz)));
    t.row(row("L1 (data)", &|p| level_desc(p, 0)));
    t.row(row("L2", &|p| level_desc(p, 1)));
    t.row(row("LLC (shared)", &|p| level_desc(p, 2)));
    t.row(row("stream BW (GB/s)", &|p| format!("{:.0}", p.stream_bw_gbs)));
    t.row(row("peak SP (GFLOP/s)", &|p| {
        format!("{:.0}", p.peak_sp_gflops())
    }));
    t.print();
}
