//! Fig. 7a — VGH throughput before/after the AoS→SoA transformation
//! (Opt A) across problem sizes N.
//!
//! Paper shape: SoA ≥ AoS everywhere, 2–4× for small/medium N; the gain
//! shrinks as N grows beyond ~512 (outputs fall out of cache). Host
//! measurements plus (with `--model`) cachesim predictions for the four
//! paper platforms.

use bspline::{BsplineAoS, BsplineSoA, Kernel, Layout};
use cachesim::Platform;
use qmc_bench::report::{gops, speedup};
use qmc_bench::workload::{grid, n_sweep, samples_for};
use qmc_bench::{coefficients, measure_kernel, MeasureConfig, ModelScenario, Table};

fn main() {
    let with_model = std::env::args().any(|a| a == "--model");
    let grid = grid();

    let mut t = Table::new(
        "Fig 7a: VGH throughput (G-evals/s), AoS vs SoA (host)",
        &["N", "ns", "T_AoS", "T_SoA", "speedup"],
    );
    for n in n_sweep() {
        let table = coefficients(n, grid, 42 + n as u64);
        let cfg = MeasureConfig {
            ns: samples_for(n),
            reps: 3,
            seed: 7,
        };
        let aos = BsplineAoS::new(table.clone());
        let t_aos = measure_kernel(&aos, Kernel::Vgh, &cfg);
        drop(aos);
        let soa = BsplineSoA::new(table);
        let t_soa = measure_kernel(&soa, Kernel::Vgh, &cfg);
        t.row(vec![
            n.to_string(),
            cfg.ns.to_string(),
            gops(t_aos.ops_per_sec),
            gops(t_soa.ops_per_sec),
            speedup(t_soa.speedup_over(t_aos)),
        ]);
        eprintln!("measured N={n}");
    }
    t.print();

    if with_model {
        let mut m = Table::new(
            "Fig 7a (modelled platforms): predicted SoA/AoS VGH speedup",
            &["N", "BDW", "KNC", "KNL", "BG/Q"],
        );
        for n in n_sweep() {
            let mut cells = vec![n.to_string()];
            for p in Platform::all() {
                let a = qmc_bench::model_prediction(&p, &ModelScenario::vgh(Layout::Aos, n, n));
                let s = qmc_bench::model_prediction(&p, &ModelScenario::vgh(Layout::Soa, n, n));
                cells.push(speedup(s.throughput / a.throughput));
            }
            m.row(cells);
            eprintln!("modelled N={n}");
        }
        m.print();
    }
}
