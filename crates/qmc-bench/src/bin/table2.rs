//! Table II — single-node runtime profile (%) of the CORAL 4×4×1
//! benchmark with the all-AoS baseline kernels (public QMCPACK era).
//!
//! Paper reference (per platform): B-splines 18–28 %, distance tables
//! 23–39 %, Jastrow 13–21 %.

use miniqmc::drivers::profile::Category;
use qmc_bench::{run_profile, ProfileConfig, Suite, Table};

fn main() {
    let cfg = if qmc_bench::is_quick() {
        ProfileConfig::small()
    } else {
        ProfileConfig::coral()
    };
    eprintln!(
        "running baseline (AoS) pbyp profile: graphite {}x{}x{}, grid {:?}, {} sweeps…",
        cfg.tiling.0, cfg.tiling.1, cfg.tiling.2, cfg.grid, cfg.sweeps
    );
    let report = run_profile(Suite::Baseline, &cfg).report();

    let mut t = Table::new(
        "Table II: baseline miniQMC profile (all-AoS kernels), % of runtime",
        &["kernel group", "share", "paper range (4 platforms)"],
    );
    let paper = [
        (Category::Bspline, "18 - 28 %"),
        (Category::Distance, "23 - 39 %"),
        (Category::Jastrow, "13 - 21 %"),
        (Category::Determinant, "(in remainder)"),
        (Category::Other, "(in remainder)"),
    ];
    for (cat, range) in paper {
        t.row(vec![
            cat.to_string(),
            format!("{:.1} %", report.percent(cat)),
            range.to_string(),
        ]);
    }
    t.print();
    println!("total accounted time: {:?}", report.total());
}
