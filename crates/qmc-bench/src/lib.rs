//! `qmc-bench` — the experiment harness.
//!
//! One binary per table/figure of the paper (run with
//! `cargo run --release -p qmc-bench --bin fig7c`), plus Criterion
//! benches (`cargo bench`) exercising the same machinery at reduced
//! scale. Host measurements come from the real engines; the four paper
//! platforms (Table I) are reproduced through the `cachesim` models.
//!
//! | experiment | binary | bench |
//! |---|---|---|
//! | Table I platform configs | `table1` | `table1_platforms` |
//! | Table II baseline profile | `table2` | `table2_profile` |
//! | Table III optimized profile | `table3` | `table3_profile` |
//! | Fig 7a AoS→SoA throughput | `fig7a` | `fig7a` |
//! | Fig 7b SoA→AoSoA throughput | `fig7b` | `fig7b` |
//! | Fig 7c tile-size sweep | `fig7c` | `fig7c` |
//! | Fig 8 normalized kernel speedups | `fig8` | `fig8` |
//! | Fig 9 nested-threading scaling | `fig9` | `fig9` |
//! | Table IV step speedups | `table4` | `table4_steps` |
//! | Fig 10 roofline | `fig10` | `fig10` |

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod measure;
pub mod modelled;
pub mod profile_suite;
pub mod report;
pub mod workload;

pub use measure::{
    measure_kernel, measure_kernel_batched, measure_nested_blocked,
    measure_nested_monolithic, measure_onemove, measure_routed_ablation,
    measure_service, measure_service_degraded, measure_service_onemove_mixed,
    measure_tile_major, DegradedLoad, MeasureConfig, MixedOneMoveConfig,
    MixedOneMoveStats, NestedConfig, OneMoveConfig, OneMovePath, OneMoveStats,
    RoutedAblation, ServiceLoad, ServiceLoadConfig,
};
pub use modelled::{model_prediction, sim_threads, ModelScenario};
pub use profile_suite::{
    measure_step_profile, run_profile, ProfileConfig, StepProfile, Suite,
    STEP_CATEGORIES, STEP_CATEGORY_NAMES,
};
pub use report::Table;
pub use workload::{
    coefficients, coefficients_in, is_quick, pos_block, pos_block_in, positions,
    positions_in, N_SWEEP,
};
