//! Modelled-platform predictions: glue between `cachesim` traces, the
//! roofline FLOP accounting and the experiment binaries.

use bspline::{Kernel, Layout};
use cachesim::{predict, simulate, Platform, Prediction, TraceConfig};
use roofline::kernel_cost;

/// One modelled scenario.
#[derive(Clone, Copy, Debug)]
pub struct ModelScenario {
    /// Kernel.
    pub kernel: Kernel,
    /// Layout.
    pub layout: Layout,
    /// Number of orbitals N.
    pub n_splines: usize,
    /// Nb.
    pub nb: usize,
    /// Threads per walker (Opt C); 1 otherwise.
    pub nth: usize,
    /// Grid (defaults to the paper's 48³ in the binaries; benches shrink
    /// it).
    pub grid: (usize, usize, usize),
    /// Measured positions per walker.
    pub n_positions: usize,
}

impl ModelScenario {
    /// VGH scenario at the paper's grid.
    pub fn vgh(layout: Layout, n: usize, nb: usize) -> Self {
        Self {
            kernel: Kernel::Vgh,
            layout,
            n_splines: n,
            nb,
            nth: 1,
            grid: (48, 48, 48),
            n_positions: 24,
        }
    }
}

/// Number of hardware threads to co-simulate for a platform: enough to
/// populate one instance of the outermost private cache level (the unit
/// cell of contention); shared-LLC platforms add the LLC via its real
/// size, which is a node resource independent of thread count.
pub fn sim_threads(platform: &Platform) -> usize {
    platform
        .levels
        .iter()
        .filter_map(|l| match l.scope {
            cachesim::Scope::Private(k) => Some(k),
            cachesim::Scope::Shared => None,
        })
        .max()
        .unwrap_or(1)
}

/// Simulate + predict one scenario on one platform.
///
/// For nested scenarios (`nth > 1`) the simulated thread count is
/// `nth × walkers-in-a-cache-group`, and the compute roof is left at the
/// full node (walker count drops by `nth`, threads per walker rise by
/// `nth`: machine utilization is constant, per-generation work drops).
pub fn model_prediction(platform: &Platform, sc: &ModelScenario) -> Prediction {
    let base_threads = sim_threads(platform).max(sc.nth);
    let n_threads = base_threads - (base_threads % sc.nth);
    let cfg = TraceConfig {
        kernel: sc.kernel,
        layout: sc.layout,
        n_splines: sc.n_splines,
        nb: sc.nb,
        grid: sc.grid,
        n_positions: sc.n_positions,
        warmup: (sc.n_positions / 4).max(2),
        n_threads: n_threads.max(sc.nth),
        threads_per_walker: sc.nth,
        seed: 0x51ab,
    };
    let stats = simulate(&cfg, platform);
    // SoA-canonical useful work for every layout: layout inefficiency is
    // folded into the platform's eff constants (see cachesim::model).
    let cost = kernel_cost(sc.kernel, Layout::Soa, sc.n_splines);
    let n_tiles = match sc.layout {
        Layout::AoSoA => sc.n_splines.div_ceil(sc.nb),
        _ => 1,
    };
    predict(
        platform,
        sc.layout,
        &stats,
        cost.flops,
        sc.n_splines,
        n_tiles,
        1.0,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sim_threads_matches_cache_groups() {
        assert_eq!(sim_threads(&Platform::bdw()), 2);
        assert_eq!(sim_threads(&Platform::knc()), 4);
        assert_eq!(sim_threads(&Platform::knl()), 8);
        assert_eq!(sim_threads(&Platform::bgq()), 4);
    }

    #[test]
    fn model_runs_small_scenario() {
        let mut sc = ModelScenario::vgh(Layout::AoSoA, 256, 64);
        sc.grid = (12, 12, 12);
        sc.n_positions = 8;
        let p = model_prediction(&Platform::knl(), &sc);
        assert!(p.throughput > 0.0);
        assert!(p.bytes_per_eval >= 0.0);
    }

    #[test]
    fn nested_scenario_accepts_nth() {
        let mut sc = ModelScenario::vgh(Layout::AoSoA, 256, 32);
        sc.grid = (12, 12, 12);
        sc.n_positions = 6;
        sc.nth = 4;
        let p = model_prediction(&Platform::knl(), &sc);
        assert!(p.throughput > 0.0);
    }
}
