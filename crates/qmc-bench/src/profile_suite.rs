//! The Table II / Table III profile driver.
//!
//! Replays the particle-by-particle move pattern of a QMC drift-diffusion
//! sweep over the CORAL graphite workload, timing each kernel group:
//!
//! * **B-splines** — one VGH evaluation per proposed move (the AoS
//!   baseline engine in both suites: Tables II and III predate the
//!   B-spline optimization);
//! * **Distance tables** — electron–electron and electron–ion proposal
//!   rows + acceptance updates;
//! * **Jastrow** — one/two-body ratio evaluations over those rows;
//! * **Determinant** — ratio (O(N)) + Sherman–Morrison update (O(N²)).
//!
//! [`Suite::Baseline`] uses the AoS distance tables and per-pair Jastrow
//! accessors (public-QMCPACK era, Table II); [`Suite::OptimizedSubstrate`]
//! uses the SoA tables and row-sliced Jastrow loops (Table III), which
//! shifts the profile towards the B-spline share the paper reports
//! (>55 %). [`Suite::SingleElectronFastPath`] keeps the SoA substrate
//! but replaces the per-move VGH with the one-move protocol (V-only
//! ratio through a [`MoveContext`], cached-weights VGH only on accepted
//! moves) — the profile after the single-electron fast path lands.

use bspline::{BsplineAoS, MoveContext, SpoEngine, WalkerAoS};
use miniqmc::determinant::DiracDeterminant;
use miniqmc::distance::aos::{DistanceTableAAAoS, DistanceTableABAoS};
use miniqmc::distance::soa::{DistanceTableAA, DistanceTableAB};
use miniqmc::drivers::profile::{Category, Timers};
use miniqmc::jastrow::BsplineFunctor;
use miniqmc::particleset::{random_electrons, ParticleSet};
use miniqmc::synthetic::CoralSystem;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Which kernel implementations the sweep uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Suite {
    /// Everything AoS (public QMCPACK, Table II).
    Baseline,
    /// SoA distance tables + Jastrow, AoS B-splines (Table III).
    OptimizedSubstrate,
    /// SoA substrate + the single-electron fast path: V-only B-spline
    /// call per proposed move (locate/weights cached in a
    /// [`MoveContext`]), cached-weights VGH only for accepted moves.
    SingleElectronFastPath,
}

/// Profile run parameters.
#[derive(Clone, Copy, Debug)]
pub struct ProfileConfig {
    /// Graphite supercell tiling (paper: 4×4×1).
    pub tiling: (usize, usize, usize),
    /// Spline grid.
    pub grid: (usize, usize, usize),
    /// Monte Carlo sweeps (one proposed move per electron each).
    pub sweeps: usize,
    /// Seed.
    pub seed: u64,
}

impl ProfileConfig {
    /// The paper's CORAL 4×4×1 benchmark.
    pub fn coral() -> Self {
        Self {
            tiling: (4, 4, 1),
            grid: (48, 48, 60),
            sweeps: 2,
            seed: 0x0c0a1,
        }
    }

    /// Shrunk configuration for tests/benches.
    pub fn small() -> Self {
        Self {
            tiling: (1, 1, 1),
            grid: (12, 12, 14),
            sweeps: 1,
            seed: 0x0c0a1,
        }
    }
}

/// The Table IV row categories in presentation order (the profile's
/// `Other` bucket is driver bookkeeping, not a paper row).
pub const STEP_CATEGORIES: [Category; 4] = [
    Category::Bspline,
    Category::Distance,
    Category::Jastrow,
    Category::Determinant,
];

/// Baseline-row name fragments for [`STEP_CATEGORIES`], same order.
pub const STEP_CATEGORY_NAMES: [&str; 4] =
    ["bspline", "distance", "jastrow", "determinant"];

/// Best-of-reps per-category wall seconds of a pbyp sweep replay, plus
/// the work counts that convert them into throughput rows (the
/// Table IV per-step kernel profile).
#[derive(Clone, Copy, Debug)]
pub struct StepProfile {
    /// Orbitals per spin (the paper's N).
    pub n: usize,
    /// Proposed moves replayed (sweeps × electrons).
    pub moves: usize,
    /// Wall seconds per category, [`STEP_CATEGORIES`] order, all from
    /// the single fastest rep (shares stay self-consistent).
    pub seconds: [f64; 4],
    /// Total profile seconds of that rep (includes the `Other` bucket).
    pub total: f64,
}

impl StepProfile {
    /// Per-category throughput in move-orbital evaluations/s: each of
    /// the `moves` proposals touches all `n` orbitals in every kernel
    /// group, so `moves · n / seconds` is comparable across categories
    /// and across N. Seconds are clamped away from zero so a category
    /// too fast for the clock still serializes as a finite rate.
    pub fn rate(&self, idx: usize) -> f64 {
        (self.moves * self.n) as f64 / self.seconds[idx].max(1e-9)
    }

    /// [`StepProfile::rate`] for the whole step (total row).
    pub fn total_rate(&self) -> f64 {
        (self.moves * self.n) as f64 / self.total.max(1e-9)
    }
}

/// Replay the profile `reps` times and keep the fastest rep whole
/// (minimum total — noise only slows a pass down, and picking
/// categories from different reps would break the share structure).
pub fn measure_step_profile(suite: Suite, cfg: &ProfileConfig, reps: usize) -> StepProfile {
    assert!(reps >= 1, "need at least one rep");
    let sys = CoralSystem::new(cfg.tiling.0, cfg.tiling.1, cfg.tiling.2, cfg.grid);
    let n = sys.n_per_spin;
    let moves = cfg.sweeps * sys.n_electrons();
    drop(sys);
    let mut best: Option<Timers> = None;
    for _ in 0..reps {
        let t = run_profile(suite, cfg);
        if best.as_ref().is_none_or(|b| t.total() < b.total()) {
            best = Some(t);
        }
    }
    let t = best.expect("reps >= 1");
    let mut seconds = [0.0f64; 4];
    for (s, cat) in seconds.iter_mut().zip(STEP_CATEGORIES) {
        *s = t.get(cat).as_secs_f64();
    }
    StepProfile {
        n,
        moves,
        seconds,
        total: t.total().as_secs_f64(),
    }
}

/// A well-conditioned random Slater matrix (profiling needs realistic
/// O(N²) update cost, not physical values).
fn random_slater(n: usize, rng: &mut StdRng) -> DiracDeterminant {
    let mut a: Vec<f64> = (0..n * n).map(|_| rng.random::<f64>() - 0.5).collect();
    for i in 0..n {
        a[i * n + i] += 2.0;
    }
    DiracDeterminant::build(&a, n)
}

/// Run the pbyp sweep and return the per-category timers.
pub fn run_profile(suite: Suite, cfg: &ProfileConfig) -> Timers {
    let sys = CoralSystem::new(cfg.tiling.0, cfg.tiling.1, cfg.tiling.2, cfg.grid);
    let n = sys.n_per_spin;
    let n_el = sys.n_electrons();
    let lat = sys.lattice;
    let mut rng = StdRng::seed_from_u64(cfg.seed);

    // AoS B-spline engine in both suites (Tables II/III predate Opt A).
    let table = crate::workload::coefficients(n, cfg.grid, cfg.seed);
    let engine = BsplineAoS::new(table);
    let mut spo_out = WalkerAoS::<f32>::new(n);
    // Per-walker move context for the fast-path suite (cached
    // locate/weights + reusable VGL scratch).
    let mut move_ctx = MoveContext::<f32>::new();

    let mut electrons = random_electrons(lat, n_el, &mut rng);
    let ions: &ParticleSet = &sys.ions;

    // Distance tables per suite.
    let mut ee_aos = DistanceTableAAAoS::new(&electrons);
    let mut ei_aos = DistanceTableABAoS::new(ions, &electrons);
    let mut ee_soa = DistanceTableAA::new(&electrons);
    let mut ei_soa = DistanceTableAB::new(ions, &electrons);

    let rc = lat.wigner_seitz_radius() * 0.9;
    let u2 = BsplineFunctor::rpa_like(0.5, 1.2, rc, 48);
    let u1 = BsplineFunctor::rpa_like(0.3, 1.0, rc, 48);

    let mut det = random_slater(n, &mut rng);
    let mut phi = vec![0.0f64; n];

    let mut timers = Timers::new();
    for _sweep in 0..cfg.sweeps {
        for iel in 0..n_el {
            let rnew = lat.to_cart([
                rng.random::<f64>(),
                rng.random::<f64>(),
                rng.random::<f64>(),
            ]);
            let u = lat.to_frac(rnew);
            let upos = [u[0] as f32, u[1] as f32, u[2] as f32];

            // B-spline work for the proposed position: the legacy
            // suites run the full VGH per proposal; the fast path runs
            // V only (the ratio needs nothing else) and defers
            // derivatives to the accept branch below.
            match suite {
                Suite::SingleElectronFastPath => timers.time(Category::Bspline, || {
                    engine.v_one(&mut move_ctx, upos, &mut spo_out)
                }),
                _ => timers.time(Category::Bspline, || engine.vgh(upos, &mut spo_out)),
            }

            // Distance rows for the proposal.
            match suite {
                Suite::Baseline => timers.time(Category::Distance, || {
                    ee_aos.propose(&electrons, iel, rnew);
                    ei_aos.propose(rnew);
                }),
                Suite::OptimizedSubstrate | Suite::SingleElectronFastPath => timers
                    .time(Category::Distance, || {
                        ee_soa.propose(&electrons, iel, rnew);
                        ei_soa.propose(iel, rnew);
                    }),
            }

            // Jastrow ratio + gradient over the proposal rows (QMC drift
            // moves use ratioGrad: value and first derivative per pair).
            let _log_ratio: f64 = match suite {
                Suite::OptimizedSubstrate | Suite::SingleElectronFastPath => timers
                    .time(Category::Jastrow, || {
                        let mut du = 0.0;
                        let mut g = [0.0f64; 3];
                        let (dx, dy, dz) = ee_soa.temp_disp();
                        for (j, &r) in ee_soa.temp_row().iter().enumerate() {
                            if j != iel {
                                let (u, d1, _) = u2.vgl(r);
                                du += u;
                                if r > 0.0 {
                                    let s = d1 / r;
                                    g[0] += s * dx[j];
                                    g[1] += s * dy[j];
                                    g[2] += s * dz[j];
                                }
                            }
                        }
                        for &r in ei_soa.temp_row() {
                            let (u, _, _) = u1.vgl(r);
                            du += u;
                        }
                        -du + 1e-300 * g[0]
                    }),
                Suite::Baseline => timers.time(Category::Jastrow, || {
                    let mut du = 0.0;
                    let mut g = [0.0f64; 3];
                    for j in 0..n_el {
                        if j != iel {
                            let r = ee_aos.temp_distance(j);
                            let (u, d1, _) = u2.vgl(r);
                            du += u;
                            if r > 0.0 {
                                let disp = ee_aos.temp_displacement(j);
                                let s = d1 / r;
                                g[0] += s * disp[0];
                                g[1] += s * disp[1];
                                g[2] += s * disp[2];
                            }
                        }
                    }
                    for i in 0..ions.len() {
                        let (u, _, _) = u1.vgl(ei_aos.temp_distance(i));
                        du += u;
                    }
                    -du + 1e-300 * g[0]
                }),
            };

            // Determinant ratio from the evaluated orbitals + SM update.
            let e = iel % n;
            timers.time(Category::Determinant, || {
                for (k, p) in phi.iter_mut().enumerate() {
                    *p = spo_out.value(k) as f64 + if k == e { 2.0 } else { 0.0 };
                }
                let r = det.ratio(e, &phi);
                if r.abs() > 1e-6 {
                    det.accept(e, &phi);
                }
            });

            // Accept the move (alternating, fixed pattern).
            if iel % 2 == 0 {
                match suite {
                    Suite::Baseline => timers.time(Category::Distance, || {
                        ee_aos.accept(iel);
                        ei_aos.accept(iel);
                    }),
                    Suite::OptimizedSubstrate | Suite::SingleElectronFastPath => {
                        timers.time(Category::Distance, || {
                            ee_soa.accept(iel);
                            ei_soa.accept(iel);
                        })
                    }
                }
                if suite == Suite::SingleElectronFastPath {
                    // Accept-side VGH for drift/Laplacian: a cache hit
                    // on the locate/weights the propose-side V stored.
                    timers.time(Category::Bspline, || {
                        engine.vgh_one(&mut move_ctx, upos, &mut spo_out)
                    });
                }
                electrons.set(iel, rnew);
            }
        }
    }
    timers
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_produces_all_categories() {
        let t = run_profile(Suite::Baseline, &ProfileConfig::small());
        for cat in [
            Category::Bspline,
            Category::Distance,
            Category::Jastrow,
            Category::Determinant,
        ] {
            assert!(t.get(cat) > std::time::Duration::ZERO, "{cat}");
        }
    }

    #[test]
    fn fast_path_produces_all_categories_and_cuts_bspline_time() {
        let small = ProfileConfig::small();
        let t = run_profile(Suite::SingleElectronFastPath, &small);
        for cat in [
            Category::Bspline,
            Category::Distance,
            Category::Jastrow,
            Category::Determinant,
        ] {
            assert!(t.get(cat) > std::time::Duration::ZERO, "{cat}");
        }
        // Per move the fast path runs V (1 output stream) plus VGH on
        // the accepted half (10 streams) against the legacy suites'
        // unconditional VGH — ~40 % less B-spline work. Timing-based,
        // so retry a few times against background load.
        let cfg = ProfileConfig {
            tiling: (2, 2, 1),
            grid: (14, 14, 16),
            sweeps: 2,
            seed: 0x0c0a1,
        };
        let mut last = (0.0, 0.0);
        for _attempt in 0..3 {
            let opt = run_profile(Suite::OptimizedSubstrate, &cfg);
            let fast = run_profile(Suite::SingleElectronFastPath, &cfg);
            last = (
                fast.get(Category::Bspline).as_secs_f64(),
                opt.get(Category::Bspline).as_secs_f64(),
            );
            if last.0 < last.1 {
                return;
            }
        }
        panic!(
            "fast path must spend less B-spline time than unconditional VGH: {} vs {}",
            last.0, last.1
        );
    }

    #[test]
    fn step_profile_reports_positive_consistent_rates() {
        let cfg = ProfileConfig::small();
        let p = measure_step_profile(Suite::SingleElectronFastPath, &cfg, 2);
        // 1×1×1 tiling: 8 orbitals/spin, 16 electrons, 1 sweep.
        assert_eq!(p.n, 8);
        assert_eq!(p.moves, 16);
        // Every category got nonzero time out of a single rep, the
        // total covers the category sum, and rates are finite/positive.
        let cat_sum: f64 = p.seconds.iter().sum();
        assert!(p.seconds.iter().all(|&s| s > 0.0), "{:?}", p.seconds);
        assert!(p.total >= cat_sum - 1e-9, "{} < {cat_sum}", p.total);
        for i in 0..4 {
            assert!(p.rate(i).is_finite() && p.rate(i) > 0.0);
            assert!(p.rate(i) >= p.total_rate());
        }
        assert!(p.total_rate() > 0.0);
    }

    #[test]
    fn optimized_substrate_raises_bspline_share() {
        // Timing-based: retry a few times so background load (e.g. a
        // concurrent `cargo bench`) cannot flake it; the SoA substrate
        // must shift the profile towards B-splines in at least one
        // clean measurement.
        let cfg = ProfileConfig {
            tiling: (2, 2, 1),
            grid: (14, 14, 16),
            sweeps: 2,
            seed: 0x0c0a1,
        };
        let mut last = (0.0, 0.0);
        for _attempt in 0..3 {
            let base = run_profile(Suite::Baseline, &cfg).report();
            let opt = run_profile(Suite::OptimizedSubstrate, &cfg).report();
            last = (
                opt.percent(Category::Bspline),
                base.percent(Category::Bspline),
            );
            if last.0 > last.1 {
                return;
            }
        }
        panic!(
            "SoA substrate must shift share towards B-splines: {} vs {}",
            last.0, last.1
        );
    }
}
