//! Host throughput measurement for the engines.

use crate::workload::{batch_size, pos_block_in, positions_in};
use bspline::blocked::BlockedEngine;
use bspline::parallel::{run_nested, run_nested_blocked};
use bspline::service::{
    RoutingPolicy, ServiceConfig, ServiceFault, ServiceFaultPlan, SpoService,
};
use bspline::walker::walker_rng;
use bspline::SpoEngine;
use bspline::{
    BatchOut, BsplineAoSoA, BsplineSoA, Kernel, MoveContext, PosBlock, Throughput,
    WalkerSoA, WalkerTiled,
};
use einspline::{MultiCoefs, Real};
use std::time::{Duration, Instant};

/// Measurement parameters.
#[derive(Clone, Copy, Debug)]
pub struct MeasureConfig {
    /// Random positions per repetition.
    pub ns: usize,
    /// Timed repetitions (the best is reported, Criterion-style).
    pub reps: usize,
    /// Position RNG seed.
    pub seed: u64,
}

impl Default for MeasureConfig {
    fn default() -> Self {
        Self {
            ns: 128,
            reps: 3,
            seed: 0xfeed,
        }
    }
}

/// Throughput of `kernel` on `engine`: positions-major loop (AoS/SoA
/// engines; also valid for AoSoA but see [`measure_tile_major`]).
/// Generic over the engine's position precision `T`, so the same
/// harness times f32, f64 and mixed (`SpoEngine<f64>` adapter) rows.
pub fn measure_kernel<T: Real, E: SpoEngine<T>>(
    engine: &E,
    kernel: Kernel,
    cfg: &MeasureConfig,
) -> Throughput {
    let pos = positions_in::<T>(cfg.ns, cfg.seed);
    let mut out = engine.make_out();
    // Warm-up pass (touch table + outputs, settle frequencies).
    for p in &pos {
        engine.eval(kernel, *p, &mut out);
    }
    let mut best = f64::INFINITY;
    for _ in 0..cfg.reps {
        let t0 = Instant::now();
        for p in &pos {
            engine.eval(kernel, *p, &mut out);
        }
        best = best.min(t0.elapsed().as_secs_f64());
    }
    Throughput {
        ops_per_sec: (engine.n_splines() * cfg.ns) as f64 / best,
    }
}

/// Throughput of `kernel` through the batched API: the position stream
/// is pre-chunked into [`batch_size`]-sized [`PosBlock`]s and every
/// timed call hands the engine a whole block (hoisted basis weights;
/// tile-major blocking for AoSoA). Output blocks are allocated once and
/// reused across the run.
pub fn measure_kernel_batched<T: Real, E: SpoEngine<T>>(
    engine: &E,
    kernel: Kernel,
    cfg: &MeasureConfig,
) -> Throughput {
    let batch = batch_size().min(cfg.ns.max(1));
    let blocks: Vec<PosBlock<T>> =
        pos_block_in::<T>(cfg.ns, cfg.seed).chunks(batch).collect();
    let mut out = engine.make_batch_out(batch);
    for b in &blocks {
        engine.eval_batch(kernel, b, &mut out); // warm-up
    }
    let mut best = f64::INFINITY;
    for _ in 0..cfg.reps {
        let t0 = Instant::now();
        for b in &blocks {
            engine.eval_batch(kernel, b, &mut out);
        }
        best = best.min(t0.elapsed().as_secs_f64());
    }
    Throughput {
        ops_per_sec: (engine.n_splines() * cfg.ns) as f64 / best,
    }
}

/// Throughput of the tiled engine with the paper's Fig. 6 loop order
/// (tiles outer, positions inner) — the cache-blocking measurement.
pub fn measure_tile_major<T: Real>(
    engine: &BsplineAoSoA<T>,
    kernel: Kernel,
    cfg: &MeasureConfig,
) -> Throughput {
    let pos = positions_in::<T>(cfg.ns, cfg.seed);
    let mut out = engine.make_out();
    engine.eval_batch_tile_major(kernel, &pos, &mut out);
    let mut best = f64::INFINITY;
    for _ in 0..cfg.reps {
        let t0 = Instant::now();
        engine.eval_batch_tile_major(kernel, &pos, &mut out);
        best = best.min(t0.elapsed().as_secs_f64());
    }
    Throughput {
        ops_per_sec: (engine.n_splines() * cfg.ns) as f64 / best,
    }
}

/// Which evaluation protocol [`measure_onemove`] times per move.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OneMovePath {
    /// `v_one` per move — the ratio-only latency of the fast path.
    FastV,
    /// The fast-path propose/accept pair, fused: one `vgl_one` per
    /// move computes the ratio's V and the drift's G/L in a single
    /// streaming pass (G/L cost ~15 % over V alone while the
    /// coefficient lines move from DRAM), and the accept side reads
    /// the `MoveContext`-cached streams with **zero** further kernel
    /// calls — so the pair's cost is one cold pass regardless of the
    /// acceptance rate, vs the comparator's two.
    FastPair,
    /// Scalar `v` per move — the pre-fast-path ratio comparator.
    ScalarV,
    /// Scalar `v` + `vgl` per move — the pre-fast-path propose/accept
    /// pair (ratio pass, then a full derivative pass over the same
    /// lines), the comparator of the fast-path speedup gate.
    ScalarPair,
}

/// Shape of a per-move latency measurement.
#[derive(Clone, Copy, Debug)]
pub struct OneMoveConfig {
    /// Single-electron moves per repetition (each at a fresh position,
    /// the propose-side cache-miss pattern of a real sweep).
    pub moves: usize,
    /// Timed repetitions (best is reported, Criterion-style).
    pub reps: usize,
    /// Position RNG seed.
    pub seed: u64,
}

impl Default for OneMoveConfig {
    fn default() -> Self {
        Self {
            moves: 256,
            reps: 3,
            seed: 0x10e5,
        }
    }
}

/// Result of one [`measure_onemove`] run: sweep throughput plus the
/// per-move latency distribution.
#[derive(Clone, Copy, Debug)]
pub struct OneMoveStats {
    /// Single-electron moves per second (a move = the full
    /// propose/accept pair of its path).
    pub moves_per_sec: f64,
    /// Orbital evaluations per second (`N ×` engine calls / wall);
    /// comparable with the [`Throughput`] rows.
    pub evals_per_sec: f64,
    /// Median per-move latency, nanoseconds.
    pub p50_ns: f64,
    /// 95th-percentile per-move latency, nanoseconds.
    pub p95_ns: f64,
    /// 99th-percentile per-move latency, nanoseconds.
    pub p99_ns: f64,
}

/// Per-move latency and throughput of the single-electron protocol:
/// `cfg.moves` propose steps, each at a fresh position (the
/// propose-side cache-miss pattern of a real sweep). The fast paths
/// thread one [`MoveContext`] through the whole run (the per-walker
/// usage): the fused pair runs one `vgl_one` per move and the accept
/// side reuses the context-cached streams without another kernel
/// call, so its cost is acceptance-independent. The scalar paths are
/// the pre-fast-path comparators on the same position stream.
pub fn measure_onemove<T: Real, E: SpoEngine<T>>(
    engine: &E,
    path: OneMovePath,
    cfg: &OneMoveConfig,
) -> OneMoveStats {
    assert!(cfg.moves > 0);
    let pos = positions_in::<T>(cfg.moves, cfg.seed);
    let mut out = engine.make_out();
    let mut ctx = MoveContext::new();

    let mut best_wall = f64::INFINITY;
    let mut best_lat: Vec<f64> = Vec::new();
    let mut calls = 0usize;
    // First pass is the warm-up (rep < 0 semantics via reps+1 passes).
    for rep in 0..cfg.reps.max(1) + 1 {
        let mut lat = Vec::with_capacity(cfg.moves);
        let mut pass_calls = 0usize;
        let t0 = Instant::now();
        for p in pos.iter() {
            let m0 = Instant::now();
            pass_calls += match path {
                OneMovePath::FastV => {
                    engine.v_one(&mut ctx, *p, &mut out);
                    1
                }
                OneMovePath::FastPair => {
                    engine.vgl_one(&mut ctx, *p, &mut out);
                    1
                }
                OneMovePath::ScalarV => {
                    engine.v(*p, &mut out);
                    1
                }
                OneMovePath::ScalarPair => {
                    engine.v(*p, &mut out);
                    engine.vgl(*p, &mut out);
                    2
                }
            };
            lat.push(m0.elapsed().as_nanos() as f64);
        }
        let wall = t0.elapsed().as_secs_f64();
        if rep > 0 && wall < best_wall {
            best_wall = wall;
            best_lat = lat;
            calls = pass_calls;
        }
    }
    best_lat.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    OneMoveStats {
        moves_per_sec: cfg.moves as f64 / best_wall,
        evals_per_sec: (engine.n_splines() * calls) as f64 / best_wall,
        p50_ns: percentile(&best_lat, 50.0),
        p95_ns: percentile(&best_lat, 95.0),
        p99_ns: percentile(&best_lat, 99.0),
    }
}

/// Shape of a nested-threading generation measurement (Fig. 9-style
/// blocked-vs-monolithic rows).
#[derive(Clone, Copy, Debug)]
pub struct NestedConfig {
    /// Concurrent walkers (each with its own position block).
    pub walkers: usize,
    /// Positions per walker per generation.
    pub ns: usize,
    /// Threads-per-walker handed to the nested scheduler (the worker
    /// count itself comes from the rayon stub / `QMC_THREADS`).
    pub nth: usize,
    /// Timed generations (best-of; the same position set every time —
    /// the miniQMC semantic, so slab residency across a generation is
    /// what gets measured).
    pub reps: usize,
    /// Position RNG seed.
    pub seed: u64,
}

fn nested_positions<T: Real, E: SpoEngine<T>>(
    engine: &E,
    cfg: &NestedConfig,
) -> Vec<PosBlock<T>> {
    let domain = engine.domain();
    (0..cfg.walkers)
        .map(|w| {
            let mut rng = walker_rng(cfg.seed, w);
            PosBlock::random(&mut rng, cfg.ns, domain)
        })
        .collect()
}

/// Nested-generation throughput (orbital evals/s across all walkers) of
/// the **monolithic** engine: the single multi-spline object (a 1-tile
/// AoSoA) driven by [`run_nested`] — with one tile there is nothing to
/// split, so `nth` threads have one work item per walker. The
/// comparison baseline for the blocked rows.
pub fn measure_nested_monolithic<T: Real>(
    coefs: &MultiCoefs<T>,
    kernel: Kernel,
    cfg: &NestedConfig,
) -> Throughput {
    let engine = BsplineAoSoA::from_multi(coefs, coefs.n_splines());
    let positions = nested_positions(&engine, cfg);
    let mut walkers: Vec<WalkerTiled<T>> =
        (0..cfg.walkers).map(|_| engine.make_out()).collect();
    run_nested(&engine, kernel, &mut walkers, &positions, cfg.nth); // warm-up
    let mut best = f64::INFINITY;
    for _ in 0..cfg.reps {
        let d = run_nested(&engine, kernel, &mut walkers, &positions, cfg.nth);
        best = best.min(d.as_secs_f64());
    }
    Throughput {
        ops_per_sec: (coefs.n_splines() * cfg.walkers * cfg.ns) as f64 / best,
    }
}

/// Nested-generation throughput of the **blocked** engine: the
/// orbital-block decomposition at `budget_bytes` driven by the
/// walker×block schedule ([`run_nested_blocked`]). Same workload shape
/// as [`measure_nested_monolithic`]; the ratio of the two is the
/// blocked-row gate in `BENCH_BASELINE.json`.
pub fn measure_nested_blocked<T: Real>(
    coefs: &MultiCoefs<T>,
    kernel: Kernel,
    budget_bytes: usize,
    cfg: &NestedConfig,
) -> Throughput {
    let engine = BlockedEngine::from_multi(coefs, budget_bytes);
    let positions = nested_positions(&engine, cfg);
    let mut walkers: Vec<WalkerSoA<T>> =
        (0..cfg.walkers).map(|_| engine.make_out()).collect();
    run_nested_blocked(&engine, kernel, &mut walkers, &positions, cfg.nth); // warm-up
    let mut best = f64::INFINITY;
    for _ in 0..cfg.reps {
        let d = run_nested_blocked(&engine, kernel, &mut walkers, &positions, cfg.nth);
        best = best.min(d.as_secs_f64());
    }
    Throughput {
        ops_per_sec: (coefs.n_splines() * cfg.walkers * cfg.ns) as f64 / best,
    }
}

/// Shape of an open-loop service-load measurement.
#[derive(Clone, Copy, Debug)]
pub struct ServiceLoadConfig {
    /// Concurrent submitter threads (independent walker streams).
    pub submitters: usize,
    /// Requests each submitter issues.
    pub requests_per_submitter: usize,
    /// Positions per request (the per-walker electron-block size; small
    /// against the service `max_batch`, so throughput comes from
    /// cross-submitter coalescing).
    pub positions_per_request: usize,
    /// Offered load in requests/s summed over all submitters.
    /// `Some(r)`: *open-loop* — each submitter issues on a fixed
    /// schedule and latency is measured from the **intended** send
    /// time, so backpressure-induced queueing is charged to the
    /// service, not silently absorbed (no coordinated omission).
    /// `None`: saturation — submitters issue back-to-back as fast as
    /// the pipeline allows (the peak-throughput measurement).
    pub offered_rps: Option<f64>,
    /// In-flight requests each submitter keeps (buffer pairs; >1 lets
    /// the coalescer see concurrent work even from few submitters).
    pub pipeline: usize,
    /// Distinct position blocks each submitter cycles through; later
    /// requests re-submit earlier positions, mirroring the fixed
    /// position set [`measure_kernel_batched`] re-evaluates every rep
    /// (the QMC generation semantic — walkers re-visit nearby table
    /// regions). Size `submitters × distinct_blocks ×
    /// positions_per_request` to the closed-loop harness's `ns` so a
    /// service-vs-closed ratio compares the service mechanism, not
    /// table cache residency: fresh random positions stream the whole
    /// coefficient table while the closed loop re-reads an LLC-resident
    /// working set. `0` = fresh random positions for every request
    /// (a streaming, open-world workload).
    pub distinct_blocks: usize,
    /// Whole-run repetitions; the rep with the highest throughput is
    /// reported (Criterion-style, matching [`measure_kernel_batched`]'s
    /// best-of statistic — comparing a single service run's *mean*
    /// against the closed loop's best-of *peak* would charge host noise
    /// to the service).
    pub reps: usize,
    /// Position RNG seed.
    pub seed: u64,
    /// Service-side request deadline: `Some(d)` submits every request
    /// through [`SpoService::submit_with_deadline`] with `issue_at + d`
    /// (charged from the *intended* send time, like the latency
    /// accounting), so queueing past the deadline sheds the request
    /// instead of evaluating stale work. `None` = no deadline.
    pub deadline: Option<Duration>,
}

impl Default for ServiceLoadConfig {
    fn default() -> Self {
        Self {
            submitters: 4,
            requests_per_submitter: 64,
            positions_per_request: 8,
            offered_rps: None,
            pipeline: 4,
            distinct_blocks: 2,
            reps: 3,
            seed: 0xca11,
            deadline: None,
        }
    }
}

/// Result of one [`measure_service`] run: aggregate throughput plus the
/// per-request latency distribution.
#[derive(Clone, Copy, Debug)]
pub struct ServiceLoad {
    /// Orbital evaluations per second across all submitters
    /// (`N · total positions / wall`).
    pub evals_per_sec: f64,
    /// Median request latency, microseconds.
    pub p50_us: f64,
    /// 95th-percentile request latency, microseconds.
    pub p95_us: f64,
    /// 99th-percentile request latency, microseconds.
    pub p99_us: f64,
    /// Requests measured (successful completions; failed requests are
    /// excluded from the latency distribution and the throughput
    /// numerator).
    pub requests: usize,
    /// Requests that resolved to a service error instead of a result —
    /// deadline sheds ([`ServiceLoadConfig::deadline`]) plus any
    /// retry-budget worker losses. Their buffers are recycled; their
    /// (non-)latency is never sampled.
    pub shed: usize,
    /// Mean positions per fused engine call over the run (coalescing
    /// effectiveness; ≈ `positions_per_request` means no coalescing).
    pub mean_batch_positions: f64,
}

/// Nearest-rank percentile of an ascending-sorted latency vector.
fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Drive `service` with concurrent open-loop submitters and measure the
/// per-request latency distribution and aggregate throughput.
///
/// Each submitter owns `pipeline` buffer pairs and keeps that many
/// requests in flight, reaping the oldest ticket (and recording its
/// latency) whenever the pool runs dry. Latency runs from the request's
/// scheduled issue time (see [`ServiceLoadConfig::offered_rps`]) to the
/// completion instant the worker stamped inside the service
/// ([`bspline::service::Ticket::redeem`]), so neither submitter
/// pacing slip nor reaping delay is charged to the service. Requests
/// that resolve to a service error (deadline sheds, exhausted retry
/// budgets) recycle their buffers and count in [`ServiceLoad::shed`]
/// instead of the latency distribution.
pub fn measure_service<T: Real, E: SpoEngine<T> + 'static>(
    service: &SpoService<T, E>,
    kernel: Kernel,
    cfg: &ServiceLoadConfig,
) -> ServiceLoad {
    assert!(cfg.submitters > 0 && cfg.requests_per_submitter > 0);
    assert!(cfg.positions_per_request > 0 && cfg.pipeline > 0);
    let mut best: Option<ServiceLoad> = None;
    for _ in 0..cfg.reps.max(1) {
        let run = run_service_load(service, kernel, cfg);
        if best
            .as_ref()
            .is_none_or(|b| run.evals_per_sec > b.evals_per_sec)
        {
            best = Some(run);
        }
    }
    best.expect("at least one rep")
}

/// One timed pass of the load run behind [`measure_service`].
fn run_service_load<T: Real, E: SpoEngine<T> + 'static>(
    service: &SpoService<T, E>,
    kernel: Kernel,
    cfg: &ServiceLoadConfig,
) -> ServiceLoad {
    let domain = service.engine().domain();
    let n_splines = service.engine().n_splines();
    let batches_before = service.stats().batches;
    let positions_before = service.stats().positions;
    // Per-submitter issue interval for the offered-rate schedule.
    let interval = cfg
        .offered_rps
        .map(|rps| Duration::from_secs_f64(cfg.submitters as f64 / rps));

    let start = Instant::now();
    let per_submitter: Vec<(Vec<f64>, usize)> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..cfg.submitters)
            .map(|w| {
                s.spawn(move || {
                    let mut rng = walker_rng(cfg.seed, w);
                    let fixed: Vec<PosBlock<T>> = (0..cfg.distinct_blocks)
                        .map(|_| {
                            PosBlock::random(&mut rng, cfg.positions_per_request, domain)
                        })
                        .collect();
                    let mut pool: Vec<(PosBlock<T>, bspline::BatchOut<E::Out>)> = (0
                        ..cfg.pipeline)
                        .map(|_| {
                            (
                                PosBlock::with_capacity(cfg.positions_per_request),
                                service.engine().make_batch_out(cfg.positions_per_request),
                            )
                        })
                        .collect();
                    let mut outstanding: std::collections::VecDeque<(
                        Instant,
                        bspline::service::Ticket<T, E::Out>,
                    )> = std::collections::VecDeque::new();
                    let mut latencies =
                        Vec::with_capacity(cfg.requests_per_submitter);
                    let mut shed = 0usize;
                    let reap = |outstanding: &mut std::collections::VecDeque<_>,
                                    pool: &mut Vec<_>,
                                    latencies: &mut Vec<f64>,
                                    shed: &mut usize| {
                        let (issued, ticket): (
                            Instant,
                            bspline::service::Ticket<T, E::Out>,
                        ) = outstanding.pop_front().expect("an in-flight request");
                        match ticket.redeem() {
                            Ok((pos, out, done_at)) => {
                                latencies.push(
                                    done_at.duration_since(issued).as_secs_f64() * 1e6,
                                );
                                pool.push((pos, out));
                            }
                            Err(f) => {
                                // Shed (or retry-exhausted) request: the
                                // buffers come back untouched — recycle
                                // them, sample nothing.
                                *shed += 1;
                                let pos =
                                    f.pos.expect("service failures return the block");
                                let out =
                                    f.out.expect("service failures return the outputs");
                                pool.push((pos, out));
                            }
                        }
                    };
                    for i in 0..cfg.requests_per_submitter {
                        // Intended issue time: paced for open-loop,
                        // "now" at saturation.
                        let issue_at = match interval {
                            Some(dt) => {
                                let due = start + dt.mul_f64(i as f64);
                                if let Some(sleep) =
                                    due.checked_duration_since(Instant::now())
                                {
                                    std::thread::sleep(sleep);
                                }
                                due
                            }
                            None => Instant::now(),
                        };
                        if pool.is_empty() {
                            reap(&mut outstanding, &mut pool, &mut latencies, &mut shed);
                        }
                        let (mut pos, out) = pool.pop().expect("reap refilled");
                        pos.clear();
                        if fixed.is_empty() {
                            let fresh = PosBlock::random(
                                &mut rng,
                                cfg.positions_per_request,
                                domain,
                            );
                            pos.extend_from_block(&fresh);
                        } else {
                            pos.extend_from_block(&fixed[i % fixed.len()]);
                        }
                        let ticket = match cfg.deadline {
                            Some(d) => service
                                .submit_with_deadline(kernel, pos, out, issue_at + d),
                            None => service.submit(kernel, pos, out),
                        };
                        outstanding.push_back((issue_at, ticket));
                    }
                    while !outstanding.is_empty() {
                        reap(&mut outstanding, &mut pool, &mut latencies, &mut shed);
                    }
                    (latencies, shed)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("submitter")).collect()
    });
    let wall = start.elapsed().as_secs_f64();

    let shed: usize = per_submitter.iter().map(|(_, s)| s).sum();
    let mut latencies: Vec<f64> =
        per_submitter.into_iter().flat_map(|(lat, _)| lat).collect();
    latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let requests = latencies.len();
    let total_positions = requests * cfg.positions_per_request;
    let stats = service.stats();
    let run_batches = stats.batches.saturating_sub(batches_before);
    let run_positions = stats.positions.saturating_sub(positions_before);
    ServiceLoad {
        evals_per_sec: (n_splines * total_positions) as f64 / wall,
        p50_us: percentile(&latencies, 50.0),
        p95_us: percentile(&latencies, 95.0),
        p99_us: percentile(&latencies, 99.0),
        requests,
        shed,
        mean_batch_positions: if run_batches == 0 {
            0.0
        } else {
            run_positions as f64 / run_batches as f64
        },
    }
}

/// Result of [`measure_routed_ablation`]: the same open-loop workload
/// against a FIFO service and an affinity-routed one over identical
/// engines.
#[derive(Clone, Copy, Debug)]
pub struct RoutedAblation {
    /// Single-queue FIFO service ([`RoutingPolicy::Fifo`]).
    pub fifo: ServiceLoad,
    /// Affinity-routed service ([`RoutingPolicy::Affinity`]).
    pub routed: ServiceLoad,
    /// Requests the routed run spilled off their affinity shard.
    pub spilled: usize,
    /// Batches the routed run's workers stole from non-home shards.
    pub stolen: usize,
}

impl RoutedAblation {
    /// Routed / FIFO throughput ratio (the ≥ 1 affinity win).
    pub fn speedup(&self) -> f64 {
        self.routed.evals_per_sec / self.fifo.evals_per_sec
    }
}

/// Routed-vs-FIFO ablation on one workload: build two services over
/// engines constructed from the same coefficient table — one FIFO, one
/// affinity-routed over `domains` shards — and run the identical
/// [`measure_service`] load against each. Routing only picks *where*
/// batches run, so any throughput difference is queue/locality
/// mechanics, not work.
pub fn measure_routed_ablation<T: Real>(
    table: &MultiCoefs<T>,
    kernel: Kernel,
    base: ServiceConfig,
    domains: usize,
    cfg: &ServiceLoadConfig,
) -> RoutedAblation {
    let fifo_svc = SpoService::new(
        BsplineSoA::new(table.clone()),
        ServiceConfig {
            routing: RoutingPolicy::Fifo,
            ..base
        },
    );
    let fifo = measure_service(&fifo_svc, kernel, cfg);
    drop(fifo_svc);
    let routed_svc = SpoService::new(
        BsplineSoA::new(table.clone()),
        ServiceConfig {
            routing: RoutingPolicy::Affinity { domains },
            ..base
        },
    );
    let routed = measure_service(&routed_svc, kernel, cfg);
    let stats = routed_svc.stats();
    RoutedAblation {
        fifo,
        routed,
        spilled: stats.spilled,
        stolen: stats.stolen,
    }
}

/// Result of [`measure_service_degraded`]: the open-loop load numbers
/// with one replica permanently lost, plus the fault counters the run
/// accumulated.
#[derive(Clone, Copy, Debug)]
pub struct DegradedLoad {
    /// The load measurement over the degraded pool.
    pub load: ServiceLoad,
    /// Requests the *service* shed (deadline passed while queued) —
    /// the stats-counter view, vs the per-submitter count in
    /// [`ServiceLoad::shed`].
    pub shed: usize,
    /// Requests re-enqueued after the worker crash.
    pub retried: usize,
    /// Worker panics caught (≥ 1: the injected kill).
    pub panics: usize,
    /// Worker slots respawned (0 here: a kill is non-respawnable).
    pub respawns: usize,
}

/// Degraded-mode service measurement: build a service over `base`
/// (which must configure ≥ 2 replicas) with a scripted
/// [`ServiceFault::Kill`] that permanently takes worker 0 down early in
/// the run, then measure the same open-loop load as
/// [`measure_service`]. The kill persists across reps — every rep after
/// the fault fires runs on the surviving pool — so the reported
/// latencies are the degraded-capacity tail the baseline's
/// fault-tolerance row gates on. Requests in flight on the killed
/// worker are re-enqueued (bounded by [`ServiceConfig::max_retries`])
/// and complete bit-identically on a survivor.
pub fn measure_service_degraded<T: Real>(
    table: &MultiCoefs<T>,
    kernel: Kernel,
    base: ServiceConfig,
    cfg: &ServiceLoadConfig,
) -> DegradedLoad {
    assert!(
        base.replicas >= 2,
        "degraded-mode measurement needs a survivor (replicas >= 2)"
    );
    let service = SpoService::with_fault_plan(
        BsplineSoA::new(table.clone()),
        base,
        ServiceFaultPlan {
            faults: vec![ServiceFault::Kill {
                worker: 0,
                at_request: 8,
            }],
        },
    );
    let load = measure_service(&service, kernel, cfg);
    let stats = service.stats();
    DegradedLoad {
        load,
        shed: stats.shed,
        retried: stats.retried,
        panics: stats.panics,
        respawns: stats.respawns,
    }
}

/// Shape of a mixed batched + one-move service measurement.
#[derive(Clone, Copy, Debug)]
pub struct MixedOneMoveConfig {
    /// Background batched submitter threads (saturating, pipelined).
    pub submitters: usize,
    /// Positions per background request.
    pub positions_per_request: usize,
    /// In-flight requests per background submitter.
    pub pipeline: usize,
    /// Distinct position blocks each background submitter cycles
    /// (same semantics as [`ServiceLoadConfig::distinct_blocks`]).
    pub distinct_blocks: usize,
    /// Foreground single-position (one-move) submissions, each waited
    /// on before the next is issued — the per-walker propose loop.
    pub moves: usize,
    /// Whole-run repetitions; the rep with the lowest one-move p99 is
    /// reported (the SLO is a floor on tail latency, so best-of
    /// matches the other rows' best-of statistic).
    pub reps: usize,
    /// Position RNG seed.
    pub seed: u64,
}

impl Default for MixedOneMoveConfig {
    fn default() -> Self {
        Self {
            submitters: 2,
            positions_per_request: 8,
            pipeline: 4,
            distinct_blocks: 2,
            moves: 256,
            reps: 3,
            seed: 0x10e5,
        }
    }
}

/// Result of [`measure_service_onemove_mixed`]: the foreground
/// one-move latency distribution under background batched load.
#[derive(Clone, Copy, Debug)]
pub struct MixedOneMoveStats {
    /// Foreground moves per second (each = submit + wait).
    pub moves_per_sec: f64,
    /// Median one-move latency, microseconds.
    pub p50_us: f64,
    /// 95th-percentile one-move latency, microseconds.
    pub p95_us: f64,
    /// 99th-percentile one-move latency, microseconds.
    pub p99_us: f64,
}

/// Per-move service latency under mixed load: background submitters
/// keep pipelined batched traffic in flight for the whole run while
/// one foreground thread issues single-position submissions and waits
/// for each — the per-move SLO measurement the ROADMAP's service row
/// was missing. Latency runs from submit to the worker's completion
/// stamp, so each sample includes queueing behind (and coalescing
/// with) the background batches.
pub fn measure_service_onemove_mixed<T: Real, E: SpoEngine<T> + 'static>(
    service: &SpoService<T, E>,
    kernel: Kernel,
    cfg: &MixedOneMoveConfig,
) -> MixedOneMoveStats {
    use std::sync::atomic::{AtomicBool, Ordering};
    assert!(cfg.moves > 0 && cfg.submitters > 0 && cfg.pipeline > 0);
    let domain = service.engine().domain();
    let mut best: Option<MixedOneMoveStats> = None;
    for _ in 0..cfg.reps.max(1) {
        let stop = AtomicBool::new(false);
        let run = std::thread::scope(|s| {
            // Background: saturating pipelined batched load until the
            // foreground finishes its moves.
            for w in 0..cfg.submitters {
                let stop = &stop;
                s.spawn(move || {
                    let mut rng = walker_rng(cfg.seed, w);
                    let fixed: Vec<PosBlock<T>> = (0..cfg.distinct_blocks.max(1))
                        .map(|_| {
                            PosBlock::random(&mut rng, cfg.positions_per_request, domain)
                        })
                        .collect();
                    let mut pool: Vec<(PosBlock<T>, BatchOut<E::Out>)> = (0..cfg.pipeline)
                        .map(|_| {
                            (
                                PosBlock::with_capacity(cfg.positions_per_request),
                                service.engine().make_batch_out(cfg.positions_per_request),
                            )
                        })
                        .collect();
                    let mut outstanding: std::collections::VecDeque<
                        bspline::service::Ticket<T, E::Out>,
                    > = std::collections::VecDeque::new();
                    let mut i = 0usize;
                    while !stop.load(Ordering::Relaxed) {
                        if pool.is_empty() {
                            let (pos, out, _) = outstanding
                                .pop_front()
                                .expect("an in-flight request")
                                .redeem()
                                .expect("background request");
                            pool.push((pos, out));
                        }
                        let (mut pos, out) = pool.pop().expect("refilled");
                        pos.clear();
                        pos.extend_from_block(&fixed[i % fixed.len()]);
                        i += 1;
                        outstanding.push_back(service.submit(kernel, pos, out));
                    }
                    while let Some(t) = outstanding.pop_front() {
                        t.redeem().expect("background request");
                    }
                });
            }
            // Foreground: the one-move stream, one position per
            // request, closed-loop (wait before next propose).
            let mover = s.spawn(|| {
                let mut rng = walker_rng(cfg.seed, cfg.submitters);
                let mut lat = Vec::with_capacity(cfg.moves);
                let t0 = Instant::now();
                for _ in 0..cfg.moves {
                    let pos = PosBlock::random(&mut rng, 1, domain);
                    let out = service.engine().make_batch_out(1);
                    let issued = Instant::now();
                    let (_, _, done_at) = service
                        .submit(kernel, pos, out)
                        .redeem()
                        .expect("one-move request");
                    lat.push(done_at.duration_since(issued).as_secs_f64() * 1e6);
                }
                let wall = t0.elapsed().as_secs_f64();
                stop.store(true, Ordering::Relaxed);
                (lat, wall)
            });
            let (mut lat, wall) = mover.join().expect("mover thread");
            lat.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
            MixedOneMoveStats {
                moves_per_sec: cfg.moves as f64 / wall,
                p50_us: percentile(&lat, 50.0),
                p95_us: percentile(&lat, 95.0),
                p99_us: percentile(&lat, 99.0),
            }
        });
        if best.as_ref().is_none_or(|b| run.p99_us < b.p99_us) {
            best = Some(run);
        }
    }
    best.expect("at least one rep")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::coefficients;
    use bspline::{BsplineAoS, BsplineSoA};

    fn cfg() -> MeasureConfig {
        MeasureConfig {
            ns: 8,
            reps: 2,
            seed: 1,
        }
    }

    #[test]
    fn measures_all_engines() {
        let table = coefficients(32, (8, 8, 8), 2);
        let aos = BsplineAoS::new(table.clone());
        let soa = BsplineSoA::new(table.clone());
        let tiled = BsplineAoSoA::from_multi(&table, 16);
        for k in Kernel::ALL {
            assert!(measure_kernel(&aos, k, &cfg()).ops_per_sec > 0.0);
            assert!(measure_kernel(&soa, k, &cfg()).ops_per_sec > 0.0);
            assert!(measure_tile_major(&tiled, k, &cfg()).ops_per_sec > 0.0);
            assert!(measure_kernel_batched(&aos, k, &cfg()).ops_per_sec > 0.0);
            assert!(measure_kernel_batched(&soa, k, &cfg()).ops_per_sec > 0.0);
            assert!(measure_kernel_batched(&tiled, k, &cfg()).ops_per_sec > 0.0);
        }
    }

    #[test]
    fn measures_every_precision_through_one_harness() {
        use crate::workload::coefficients_in;
        use bspline::precision::MixedEngine;
        let table64 = coefficients_in::<f64>(16, (6, 6, 6), 4);
        let soa64 = BsplineSoA::new(table64.clone());
        let mixed = MixedEngine::soa(&table64);
        let soa32 = BsplineSoA::new(table64.downcast());
        assert!(measure_kernel(&soa64, Kernel::Vgh, &cfg()).ops_per_sec > 0.0);
        assert!(measure_kernel(&soa32, Kernel::Vgh, &cfg()).ops_per_sec > 0.0);
        assert!(measure_kernel(&mixed, Kernel::Vgh, &cfg()).ops_per_sec > 0.0);
        assert!(
            measure_kernel_batched(&mixed, Kernel::Vgh, &cfg()).ops_per_sec > 0.0
        );
    }

    #[test]
    fn nested_rows_measure_both_decompositions() {
        let table = coefficients(48, (8, 8, 8), 6);
        let cfg = NestedConfig {
            walkers: 2,
            ns: 4,
            nth: 2,
            reps: 1,
            seed: 3,
        };
        let mono = measure_nested_monolithic(&table, Kernel::Vgh, &cfg);
        let blocked = measure_nested_blocked(&table, Kernel::Vgh, 1, &cfg);
        assert!(mono.ops_per_sec > 0.0);
        assert!(blocked.ops_per_sec > 0.0);
    }

    #[test]
    fn service_load_measures_saturation_and_open_loop() {
        use bspline::service::{ServiceConfig, SpoService};
        let table = coefficients(24, (8, 8, 8), 7);
        let service = SpoService::new(
            BsplineSoA::new(table),
            ServiceConfig {
                replicas: 2,
                max_batch: 16,
                max_wait: std::time::Duration::from_micros(100),
                queue_positions: 256,
                ..ServiceConfig::default()
            },
        );
        let sat = measure_service(
            &service,
            Kernel::Vgh,
            &ServiceLoadConfig {
                submitters: 2,
                requests_per_submitter: 8,
                positions_per_request: 4,
                offered_rps: None,
                pipeline: 2,
                distinct_blocks: 2,
                reps: 2,
                seed: 1,
                deadline: None,
            },
        );
        assert_eq!(sat.requests, 16);
        assert_eq!(sat.shed, 0, "no deadline, nothing sheds");
        assert!(sat.evals_per_sec > 0.0);
        assert!(sat.p50_us > 0.0 && sat.p50_us <= sat.p95_us);
        assert!(sat.p95_us <= sat.p99_us);
        assert!(sat.mean_batch_positions >= 4.0 - 1e-9);

        // Open-loop at a generous offered rate still completes and
        // reports positive latencies.
        let open = measure_service(
            &service,
            Kernel::Vgh,
            &ServiceLoadConfig {
                submitters: 2,
                requests_per_submitter: 4,
                positions_per_request: 4,
                offered_rps: Some(2000.0),
                pipeline: 2,
                // Streaming workload: fresh random positions per
                // request (the `distinct_blocks = 0` path).
                distinct_blocks: 0,
                reps: 1,
                seed: 2,
                deadline: None,
            },
        );
        assert_eq!(open.requests, 8);
        assert!(open.p99_us > 0.0);

        // A generous deadline never sheds on this tiny load; every
        // request still completes and is sampled.
        let dl = measure_service(
            &service,
            Kernel::Vgh,
            &ServiceLoadConfig {
                submitters: 2,
                requests_per_submitter: 4,
                positions_per_request: 4,
                pipeline: 2,
                reps: 1,
                seed: 3,
                deadline: Some(std::time::Duration::from_secs(30)),
                ..ServiceLoadConfig::default()
            },
        );
        assert_eq!(dl.requests, 8);
        assert_eq!(dl.shed, 0);
    }

    #[test]
    fn degraded_measurement_survives_a_killed_replica() {
        let table = coefficients(24, (8, 8, 8), 7);
        let d = measure_service_degraded(
            &table,
            Kernel::Vgh,
            ServiceConfig {
                replicas: 2,
                max_batch: 16,
                max_wait: std::time::Duration::from_micros(100),
                queue_positions: 256,
                ..ServiceConfig::default()
            },
            &ServiceLoadConfig {
                submitters: 2,
                requests_per_submitter: 16,
                positions_per_request: 4,
                pipeline: 2,
                reps: 2,
                seed: 4,
                ..ServiceLoadConfig::default()
            },
        );
        // The kill fires once, panics the worker, and is never
        // respawned; every request still resolves on the survivor.
        assert_eq!(d.panics, 1);
        assert_eq!(d.respawns, 0);
        assert_eq!(d.load.requests + d.load.shed, 32);
        assert!(d.load.evals_per_sec > 0.0);
    }

    #[test]
    fn onemove_measures_every_path() {
        let table = coefficients(32, (8, 8, 8), 5);
        let soa = BsplineSoA::new(table.clone());
        let aos = BsplineAoS::new(table);
        let cfg = OneMoveConfig {
            moves: 16,
            reps: 2,
            seed: 9,
        };
        for path in [
            OneMovePath::FastV,
            OneMovePath::FastPair,
            OneMovePath::ScalarV,
            OneMovePath::ScalarPair,
        ] {
            for stats in [
                measure_onemove(&soa, path, &cfg),
                measure_onemove(&aos, path, &cfg),
            ] {
                assert!(stats.moves_per_sec > 0.0, "{path:?}");
                assert!(stats.evals_per_sec > 0.0, "{path:?}");
                assert!(stats.p50_ns > 0.0 && stats.p50_ns <= stats.p95_ns);
                assert!(stats.p95_ns <= stats.p99_ns);
            }
        }
        // The fused pair runs one engine call per move; the scalar
        // comparator runs two — evals/s accounting must reflect that.
        let fused = measure_onemove(&soa, OneMovePath::FastPair, &cfg);
        let only_v = measure_onemove(&soa, OneMovePath::FastV, &cfg);
        let fused_calls = fused.evals_per_sec / fused.moves_per_sec;
        let v_calls = only_v.evals_per_sec / only_v.moves_per_sec;
        assert!(
            (fused_calls - v_calls).abs() < 1e-6 * v_calls,
            "fused pair charges exactly one call per move"
        );
    }

    #[test]
    fn percentiles_use_nearest_rank() {
        let v: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(percentile(&v, 50.0), 50.0);
        assert_eq!(percentile(&v, 95.0), 95.0);
        assert_eq!(percentile(&v, 99.0), 99.0);
        assert_eq!(percentile(&[7.0], 99.0), 7.0);
        assert_eq!(percentile(&[], 50.0), 0.0);
    }

    #[test]
    fn throughput_counts_orbital_evals() {
        // ops/sec must scale with N for a fixed per-eval time; just check
        // the bookkeeping: N×ns positions... indirectly via positivity
        // and N-proportional numerator.
        let t = coefficients(64, (8, 8, 8), 3);
        let soa = BsplineSoA::new(t);
        let m = measure_kernel(&soa, Kernel::V, &cfg());
        assert!(m.ops_per_sec.is_finite());
    }
}
