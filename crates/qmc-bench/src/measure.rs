//! Host throughput measurement for the engines.

use crate::workload::{batch_size, pos_block_in, positions_in};
use bspline::blocked::BlockedEngine;
use bspline::parallel::{run_nested, run_nested_blocked};
use bspline::walker::walker_rng;
use bspline::SpoEngine;
use bspline::{BsplineAoSoA, Kernel, PosBlock, Throughput, WalkerSoA, WalkerTiled};
use einspline::{MultiCoefs, Real};
use std::time::Instant;

/// Measurement parameters.
#[derive(Clone, Copy, Debug)]
pub struct MeasureConfig {
    /// Random positions per repetition.
    pub ns: usize,
    /// Timed repetitions (the best is reported, Criterion-style).
    pub reps: usize,
    /// Position RNG seed.
    pub seed: u64,
}

impl Default for MeasureConfig {
    fn default() -> Self {
        Self {
            ns: 128,
            reps: 3,
            seed: 0xfeed,
        }
    }
}

/// Throughput of `kernel` on `engine`: positions-major loop (AoS/SoA
/// engines; also valid for AoSoA but see [`measure_tile_major`]).
/// Generic over the engine's position precision `T`, so the same
/// harness times f32, f64 and mixed (`SpoEngine<f64>` adapter) rows.
pub fn measure_kernel<T: Real, E: SpoEngine<T>>(
    engine: &E,
    kernel: Kernel,
    cfg: &MeasureConfig,
) -> Throughput {
    let pos = positions_in::<T>(cfg.ns, cfg.seed);
    let mut out = engine.make_out();
    // Warm-up pass (touch table + outputs, settle frequencies).
    for p in &pos {
        engine.eval(kernel, *p, &mut out);
    }
    let mut best = f64::INFINITY;
    for _ in 0..cfg.reps {
        let t0 = Instant::now();
        for p in &pos {
            engine.eval(kernel, *p, &mut out);
        }
        best = best.min(t0.elapsed().as_secs_f64());
    }
    Throughput {
        ops_per_sec: (engine.n_splines() * cfg.ns) as f64 / best,
    }
}

/// Throughput of `kernel` through the batched API: the position stream
/// is pre-chunked into [`batch_size`]-sized [`PosBlock`]s and every
/// timed call hands the engine a whole block (hoisted basis weights;
/// tile-major blocking for AoSoA). Output blocks are allocated once and
/// reused across the run.
pub fn measure_kernel_batched<T: Real, E: SpoEngine<T>>(
    engine: &E,
    kernel: Kernel,
    cfg: &MeasureConfig,
) -> Throughput {
    let batch = batch_size().min(cfg.ns.max(1));
    let blocks: Vec<PosBlock<T>> =
        pos_block_in::<T>(cfg.ns, cfg.seed).chunks(batch).collect();
    let mut out = engine.make_batch_out(batch);
    for b in &blocks {
        engine.eval_batch(kernel, b, &mut out); // warm-up
    }
    let mut best = f64::INFINITY;
    for _ in 0..cfg.reps {
        let t0 = Instant::now();
        for b in &blocks {
            engine.eval_batch(kernel, b, &mut out);
        }
        best = best.min(t0.elapsed().as_secs_f64());
    }
    Throughput {
        ops_per_sec: (engine.n_splines() * cfg.ns) as f64 / best,
    }
}

/// Throughput of the tiled engine with the paper's Fig. 6 loop order
/// (tiles outer, positions inner) — the cache-blocking measurement.
pub fn measure_tile_major<T: Real>(
    engine: &BsplineAoSoA<T>,
    kernel: Kernel,
    cfg: &MeasureConfig,
) -> Throughput {
    let pos = positions_in::<T>(cfg.ns, cfg.seed);
    let mut out = engine.make_out();
    engine.eval_batch_tile_major(kernel, &pos, &mut out);
    let mut best = f64::INFINITY;
    for _ in 0..cfg.reps {
        let t0 = Instant::now();
        engine.eval_batch_tile_major(kernel, &pos, &mut out);
        best = best.min(t0.elapsed().as_secs_f64());
    }
    Throughput {
        ops_per_sec: (engine.n_splines() * cfg.ns) as f64 / best,
    }
}

/// Shape of a nested-threading generation measurement (Fig. 9-style
/// blocked-vs-monolithic rows).
#[derive(Clone, Copy, Debug)]
pub struct NestedConfig {
    /// Concurrent walkers (each with its own position block).
    pub walkers: usize,
    /// Positions per walker per generation.
    pub ns: usize,
    /// Threads-per-walker handed to the nested scheduler (the worker
    /// count itself comes from the rayon stub / `QMC_THREADS`).
    pub nth: usize,
    /// Timed generations (best-of; the same position set every time —
    /// the miniQMC semantic, so slab residency across a generation is
    /// what gets measured).
    pub reps: usize,
    /// Position RNG seed.
    pub seed: u64,
}

fn nested_positions<T: Real, E: SpoEngine<T>>(
    engine: &E,
    cfg: &NestedConfig,
) -> Vec<PosBlock<T>> {
    let domain = engine.domain();
    (0..cfg.walkers)
        .map(|w| {
            let mut rng = walker_rng(cfg.seed, w);
            PosBlock::random(&mut rng, cfg.ns, domain)
        })
        .collect()
}

/// Nested-generation throughput (orbital evals/s across all walkers) of
/// the **monolithic** engine: the single multi-spline object (a 1-tile
/// AoSoA) driven by [`run_nested`] — with one tile there is nothing to
/// split, so `nth` threads have one work item per walker. The
/// comparison baseline for the blocked rows.
pub fn measure_nested_monolithic<T: Real>(
    coefs: &MultiCoefs<T>,
    kernel: Kernel,
    cfg: &NestedConfig,
) -> Throughput {
    let engine = BsplineAoSoA::from_multi(coefs, coefs.n_splines());
    let positions = nested_positions(&engine, cfg);
    let mut walkers: Vec<WalkerTiled<T>> =
        (0..cfg.walkers).map(|_| engine.make_out()).collect();
    run_nested(&engine, kernel, &mut walkers, &positions, cfg.nth); // warm-up
    let mut best = f64::INFINITY;
    for _ in 0..cfg.reps {
        let d = run_nested(&engine, kernel, &mut walkers, &positions, cfg.nth);
        best = best.min(d.as_secs_f64());
    }
    Throughput {
        ops_per_sec: (coefs.n_splines() * cfg.walkers * cfg.ns) as f64 / best,
    }
}

/// Nested-generation throughput of the **blocked** engine: the
/// orbital-block decomposition at `budget_bytes` driven by the
/// walker×block schedule ([`run_nested_blocked`]). Same workload shape
/// as [`measure_nested_monolithic`]; the ratio of the two is the
/// blocked-row gate in `BENCH_BASELINE.json`.
pub fn measure_nested_blocked<T: Real>(
    coefs: &MultiCoefs<T>,
    kernel: Kernel,
    budget_bytes: usize,
    cfg: &NestedConfig,
) -> Throughput {
    let engine = BlockedEngine::from_multi(coefs, budget_bytes);
    let positions = nested_positions(&engine, cfg);
    let mut walkers: Vec<WalkerSoA<T>> =
        (0..cfg.walkers).map(|_| engine.make_out()).collect();
    run_nested_blocked(&engine, kernel, &mut walkers, &positions, cfg.nth); // warm-up
    let mut best = f64::INFINITY;
    for _ in 0..cfg.reps {
        let d = run_nested_blocked(&engine, kernel, &mut walkers, &positions, cfg.nth);
        best = best.min(d.as_secs_f64());
    }
    Throughput {
        ops_per_sec: (coefs.n_splines() * cfg.walkers * cfg.ns) as f64 / best,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::coefficients;
    use bspline::{BsplineAoS, BsplineSoA};

    fn cfg() -> MeasureConfig {
        MeasureConfig {
            ns: 8,
            reps: 2,
            seed: 1,
        }
    }

    #[test]
    fn measures_all_engines() {
        let table = coefficients(32, (8, 8, 8), 2);
        let aos = BsplineAoS::new(table.clone());
        let soa = BsplineSoA::new(table.clone());
        let tiled = BsplineAoSoA::from_multi(&table, 16);
        for k in Kernel::ALL {
            assert!(measure_kernel(&aos, k, &cfg()).ops_per_sec > 0.0);
            assert!(measure_kernel(&soa, k, &cfg()).ops_per_sec > 0.0);
            assert!(measure_tile_major(&tiled, k, &cfg()).ops_per_sec > 0.0);
            assert!(measure_kernel_batched(&aos, k, &cfg()).ops_per_sec > 0.0);
            assert!(measure_kernel_batched(&soa, k, &cfg()).ops_per_sec > 0.0);
            assert!(measure_kernel_batched(&tiled, k, &cfg()).ops_per_sec > 0.0);
        }
    }

    #[test]
    fn measures_every_precision_through_one_harness() {
        use crate::workload::coefficients_in;
        use bspline::precision::MixedEngine;
        let table64 = coefficients_in::<f64>(16, (6, 6, 6), 4);
        let soa64 = BsplineSoA::new(table64.clone());
        let mixed = MixedEngine::soa(&table64);
        let soa32 = BsplineSoA::new(table64.downcast());
        assert!(measure_kernel(&soa64, Kernel::Vgh, &cfg()).ops_per_sec > 0.0);
        assert!(measure_kernel(&soa32, Kernel::Vgh, &cfg()).ops_per_sec > 0.0);
        assert!(measure_kernel(&mixed, Kernel::Vgh, &cfg()).ops_per_sec > 0.0);
        assert!(
            measure_kernel_batched(&mixed, Kernel::Vgh, &cfg()).ops_per_sec > 0.0
        );
    }

    #[test]
    fn nested_rows_measure_both_decompositions() {
        let table = coefficients(48, (8, 8, 8), 6);
        let cfg = NestedConfig {
            walkers: 2,
            ns: 4,
            nth: 2,
            reps: 1,
            seed: 3,
        };
        let mono = measure_nested_monolithic(&table, Kernel::Vgh, &cfg);
        let blocked = measure_nested_blocked(&table, Kernel::Vgh, 1, &cfg);
        assert!(mono.ops_per_sec > 0.0);
        assert!(blocked.ops_per_sec > 0.0);
    }

    #[test]
    fn throughput_counts_orbital_evals() {
        // ops/sec must scale with N for a fixed per-eval time; just check
        // the bookkeeping: N×ns positions... indirectly via positivity
        // and N-proportional numerator.
        let t = coefficients(64, (8, 8, 8), 3);
        let soa = BsplineSoA::new(t);
        let m = measure_kernel(&soa, Kernel::V, &cfg());
        assert!(m.ops_per_sec.is_finite());
    }
}
