//! Standard workloads: the paper's problem-size sweep and coefficient
//! tables.

use bspline::PosBlock;
use einspline::{MultiCoefs, Real};
use miniqmc::synthetic::random_coefficients;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The paper's problem-size sweep: N = 128 (the 64-carbon CORAL cell) up
/// to 4096 (the pre-exascale grand challenge).
pub const N_SWEEP: [usize; 6] = [128, 256, 512, 1024, 2048, 4096];

/// The fixed evaluation grid of the sweep (Sec. VI): 48³.
pub const GRID: (usize, usize, usize) = (48, 48, 48);

/// `QMC_BENCH_QUICK=1` shrinks every workload (used by CI/tests and the
/// Criterion benches).
pub fn is_quick() -> bool {
    std::env::var("QMC_BENCH_QUICK").map(|v| v != "0").unwrap_or(false)
}

/// Grid used by the current run (quick mode shrinks 48³ → 16³).
pub fn grid() -> (usize, usize, usize) {
    if is_quick() {
        (16, 16, 16)
    } else {
        GRID
    }
}

/// Problem sizes used by the current run.
pub fn n_sweep() -> Vec<usize> {
    if is_quick() {
        vec![128, 256, 512]
    } else {
        N_SWEEP.to_vec()
    }
}

/// Random-filled coefficient table in any storage precision (the
/// miniQMC benchmark table; the per-precision baseline rows share one
/// workload shape across `f64` / `f32` / mixed).
pub fn coefficients_in<T: Real>(
    n: usize,
    grid: (usize, usize, usize),
    seed: u64,
) -> MultiCoefs<T> {
    random_coefficients(grid.0, grid.1, grid.2, n, seed)
}

/// Random-filled coefficient table (the miniQMC benchmark table).
pub fn coefficients(n: usize, grid: (usize, usize, usize), seed: u64) -> MultiCoefs<f32> {
    coefficients_in::<f32>(n, grid, seed)
}

/// `ns` random fractional positions in any precision. The f64 and f32
/// streams drawn from one seed describe the same points up to one
/// rounding, so per-precision rows time the same walk.
pub fn positions_in<T: Real>(ns: usize, seed: u64) -> Vec<[T; 3]> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..ns)
        .map(|_| {
            [
                T::from_f64(rng.random::<f64>()),
                T::from_f64(rng.random::<f64>()),
                T::from_f64(rng.random::<f64>()),
            ]
        })
        .collect()
}

/// `ns` random fractional positions.
pub fn positions(ns: usize, seed: u64) -> Vec<[f32; 3]> {
    positions_in::<f32>(ns, seed)
}

/// The same `ns` random fractional positions as [`positions_in`], as a
/// SoA [`PosBlock`] for the batched engine paths.
pub fn pos_block_in<T: Real>(ns: usize, seed: u64) -> PosBlock<T> {
    PosBlock::from_positions(&positions_in::<T>(ns, seed))
}

/// The same `ns` random fractional positions as [`positions`], as a
/// SoA [`PosBlock`] for the batched engine paths.
pub fn pos_block(ns: usize, seed: u64) -> PosBlock<f32> {
    pos_block_in::<f32>(ns, seed)
}

/// Positions per batched engine call in the batched measurement
/// variants (the per-call output working set is `batch_size()` blocks).
pub fn batch_size() -> usize {
    if is_quick() {
        16
    } else {
        32
    }
}

/// Samples per kernel invocation batch — the paper's ns = 512 (Fig. 3).
///
/// Keeping the full 512 matters: miniQMC evaluates the *same* position
/// set every iteration, so the lines a tile touches across ns positions
/// (≈ ns·64·Nb·4 bytes) are what cache blocking keeps resident between
/// repetitions. Shrinking ns shrinks that working set and hides the
/// tiling effect.
pub fn samples_for(_n: usize) -> usize {
    if is_quick() {
        64
    } else {
        512
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_matches_paper() {
        assert_eq!(N_SWEEP[0], 128);
        assert_eq!(*N_SWEEP.last().unwrap(), 4096);
    }

    #[test]
    fn samples_scale_down_with_n() {
        assert_eq!(samples_for(128), 512);
        assert!(samples_for(4096) >= 16);
        assert!(samples_for(4096) <= samples_for(128));
    }

    #[test]
    fn positions_in_unit_cube() {
        for p in positions(50, 3) {
            for x in &p {
                assert!((0.0..1.0).contains(x));
            }
        }
    }

    #[test]
    fn coefficients_built_to_spec() {
        let c = coefficients(32, (8, 8, 10), 5);
        assert_eq!(c.n_splines(), 32);
    }
}
