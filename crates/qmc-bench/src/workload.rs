//! Standard workloads: the paper's problem-size sweep and coefficient
//! tables.

use bspline::PosBlock;
use einspline::MultiCoefs;
use miniqmc::synthetic::random_coefficients;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The paper's problem-size sweep: N = 128 (the 64-carbon CORAL cell) up
/// to 4096 (the pre-exascale grand challenge).
pub const N_SWEEP: [usize; 6] = [128, 256, 512, 1024, 2048, 4096];

/// The fixed evaluation grid of the sweep (Sec. VI): 48³.
pub const GRID: (usize, usize, usize) = (48, 48, 48);

/// `QMC_BENCH_QUICK=1` shrinks every workload (used by CI/tests and the
/// Criterion benches).
pub fn is_quick() -> bool {
    std::env::var("QMC_BENCH_QUICK").map(|v| v != "0").unwrap_or(false)
}

/// Grid used by the current run (quick mode shrinks 48³ → 16³).
pub fn grid() -> (usize, usize, usize) {
    if is_quick() {
        (16, 16, 16)
    } else {
        GRID
    }
}

/// Problem sizes used by the current run.
pub fn n_sweep() -> Vec<usize> {
    if is_quick() {
        vec![128, 256, 512]
    } else {
        N_SWEEP.to_vec()
    }
}

/// Random-filled coefficient table (the miniQMC benchmark table).
pub fn coefficients(n: usize, grid: (usize, usize, usize), seed: u64) -> MultiCoefs<f32> {
    random_coefficients(grid.0, grid.1, grid.2, n, seed)
}

/// `ns` random fractional positions.
pub fn positions(ns: usize, seed: u64) -> Vec<[f32; 3]> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..ns)
        .map(|_| [rng.random::<f32>(), rng.random::<f32>(), rng.random::<f32>()])
        .collect()
}

/// The same `ns` random fractional positions as [`positions`], as a
/// SoA [`PosBlock`] for the batched engine paths.
pub fn pos_block(ns: usize, seed: u64) -> PosBlock<f32> {
    PosBlock::from_positions(&positions(ns, seed))
}

/// Positions per batched engine call in the batched measurement
/// variants (the per-call output working set is `batch_size()` blocks).
pub fn batch_size() -> usize {
    if is_quick() {
        16
    } else {
        32
    }
}

/// Samples per kernel invocation batch — the paper's ns = 512 (Fig. 3).
///
/// Keeping the full 512 matters: miniQMC evaluates the *same* position
/// set every iteration, so the lines a tile touches across ns positions
/// (≈ ns·64·Nb·4 bytes) are what cache blocking keeps resident between
/// repetitions. Shrinking ns shrinks that working set and hides the
/// tiling effect.
pub fn samples_for(_n: usize) -> usize {
    if is_quick() {
        64
    } else {
        512
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_matches_paper() {
        assert_eq!(N_SWEEP[0], 128);
        assert_eq!(*N_SWEEP.last().unwrap(), 4096);
    }

    #[test]
    fn samples_scale_down_with_n() {
        assert_eq!(samples_for(128), 512);
        assert!(samples_for(4096) >= 16);
        assert!(samples_for(4096) <= samples_for(128));
    }

    #[test]
    fn positions_in_unit_cube() {
        for p in positions(50, 3) {
            for x in &p {
                assert!((0.0..1.0).contains(x));
            }
        }
    }

    #[test]
    fn coefficients_built_to_spec() {
        let c = coefficients(32, (8, 8, 10), 5);
        assert_eq!(c.n_splines(), 32);
    }
}
