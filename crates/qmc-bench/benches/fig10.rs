//! Criterion bench for Fig. 10: cost of producing the roofline analysis
//! (trace simulation + prediction) per optimization step, reduced grid.
//! Full-scale chart data: the `fig10` binary.

use bspline::Layout;
use cachesim::Platform;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qmc_bench::{model_prediction, ModelScenario};
use std::time::Duration;

fn bench_fig10(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig10_roofline_model");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(1));
    let knl = Platform::knl();
    for (label, layout, nb) in [
        ("aos", Layout::Aos, 256),
        ("soa", Layout::Soa, 256),
        ("aosoa", Layout::AoSoA, 64),
    ] {
        g.bench_with_input(BenchmarkId::new("step", label), &layout, |b, &layout| {
            b.iter(|| {
                let mut sc = ModelScenario::vgh(layout, 256, nb);
                sc.grid = (12, 12, 12);
                sc.n_positions = 6;
                model_prediction(&knl, &sc)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_fig10);
criterion_main!(benches);
