//! Criterion bench for Fig. 10: cost of producing the roofline analysis
//! (trace simulation + prediction) per optimization step, reduced grid.
//! Full-scale chart data: the `fig10` binary.
//!
//! Honors `QMC_BENCH_QUICK=1` like the fig7a/fig8 benches (smaller
//! trace grid and fewer positions), and carries the v4
//! blocked-vs-monolithic pair: the `soa_monolithic` step is the single
//! multi-spline object, `blocked` the budget-derived decomposition
//! modelled as AoSoA at the blocked width.

use bspline::Layout;
use cachesim::Platform;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qmc_bench::workload::is_quick;
use qmc_bench::{model_prediction, ModelScenario};
use std::time::Duration;

fn bench_fig10(c: &mut Criterion) {
    let quick = is_quick();
    let mut g = c.benchmark_group("fig10_roofline_model");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(1));
    let knl = Platform::knl();
    let n = if quick { 128 } else { 256 };
    let (grid, positions) = if quick { ((8, 8, 8), 3) } else { ((12, 12, 12), 6) };
    for (label, layout, nb) in [
        ("aos", Layout::Aos, n),
        ("soa_monolithic", Layout::Soa, n),
        ("aosoa", Layout::AoSoA, 64.min(n)),
        // The blocked decomposition at a cache-budget width (16 = one
        // f32 quantum, what a 2 MiB budget yields on the 48³ grid).
        ("blocked", Layout::AoSoA, 16),
    ] {
        g.bench_with_input(BenchmarkId::new("step", label), &layout, |b, &layout| {
            b.iter(|| {
                let mut sc = ModelScenario::vgh(layout, n, nb);
                sc.grid = grid;
                sc.n_positions = positions;
                model_prediction(&knl, &sc)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_fig10);
criterion_main!(benches);
