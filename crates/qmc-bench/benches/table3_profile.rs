//! Criterion bench for Table III: the optimized-substrate (SoA distance
//! + Jastrow) pbyp profile sweep. Full CORAL 4×4×1: `table3` binary.

use criterion::{criterion_group, criterion_main, Criterion};
use qmc_bench::{run_profile, ProfileConfig, Suite};
use std::time::Duration;

fn bench_table3(c: &mut Criterion) {
    let mut g = c.benchmark_group("table3_optimized_profile");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    g.bench_function("soa_suite_sweep", |b| {
        b.iter(|| run_profile(Suite::OptimizedSubstrate, &ProfileConfig::small()))
    });
    g.finish();
}

criterion_group!(benches, bench_table3);
criterion_main!(benches);
