//! Criterion bench for Fig. 9: nested-threading generation time vs
//! threads-per-walker. Full-scale (host + KNL model): `fig9` binary.

use bspline::parallel::nested_generation_time;
use bspline::{BsplineAoSoA, Kernel};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qmc_bench::workload::coefficients;
use std::time::Duration;

fn bench_fig9(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig9_nested_threading");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(1));
    let n = 256;
    let table = coefficients(n, (12, 12, 12), 31);
    let engine = BsplineAoSoA::from_multi(&table, 32); // 8 tiles
    let total = std::thread::available_parallelism()
        .map(|v| v.get())
        .unwrap_or(2);
    let mut nth = 1;
    while nth <= total {
        g.bench_with_input(BenchmarkId::new("nth", nth), &nth, |b, &nth| {
            b.iter(|| nested_generation_time(&engine, Kernel::Vgh, total, nth, 8, 3))
        });
        nth *= 2;
    }
    g.finish();
}

criterion_group!(benches, bench_fig9);
criterion_main!(benches);
