//! Criterion bench for Fig. 9: nested-threading generation time vs
//! threads-per-walker, for both the monolithic (single-tile) engine and
//! the blocked (orbital-block) decomposition. Full-scale (host + KNL
//! model): `fig9` binary.
//!
//! Honors `QMC_BENCH_QUICK=1` like the fig7a/fig8 benches: walker
//! counts (via the thread budget), problem size and positions shrink
//! for smoke runs. `QMC_THREADS` pins the worker count.

use bspline::blocked::BlockedEngine;
use bspline::parallel::{blocked_generation_time, nested_generation_time};
use bspline::{BsplineAoSoA, Kernel};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qmc_bench::workload::{coefficients, is_quick};
use std::time::Duration;

fn bench_fig9(c: &mut Criterion) {
    let quick = is_quick();
    let mut g = c.benchmark_group("fig9_nested_threading");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(1));
    let n = if quick { 64 } else { 256 };
    let ns = if quick { 4 } else { 8 };
    let table = coefficients(n, (12, 12, 12), 31);
    let engine = BsplineAoSoA::from_multi(&table, 32); // N/32 tiles
    // A quarter-of-the-table byte budget → a ~4-block decomposition,
    // compared against the monolithic single-tile engine below.
    let blocked = BlockedEngine::from_multi(&table, table.bytes() / 4);
    let mono = BsplineAoSoA::from_multi(&table, n); // 1 tile
    let total = rayon::current_num_threads();
    let mut nth = 1;
    while nth <= total {
        g.bench_with_input(BenchmarkId::new("nth", nth), &nth, |b, &nth| {
            b.iter(|| nested_generation_time(&engine, Kernel::Vgh, total, nth, ns, 3))
        });
        g.bench_with_input(BenchmarkId::new("monolithic_nth", nth), &nth, |b, &nth| {
            b.iter(|| nested_generation_time(&mono, Kernel::Vgh, total, nth, ns, 3))
        });
        g.bench_with_input(BenchmarkId::new("blocked_nth", nth), &nth, |b, &nth| {
            b.iter(|| blocked_generation_time(&blocked, Kernel::Vgh, total, nth, ns, 3))
        });
        nth *= 2;
    }
    g.finish();
}

criterion_group!(benches, bench_fig9);
criterion_main!(benches);
