//! Criterion bench for Table II: the baseline (all-AoS) pbyp profile
//! sweep on a shrunk graphite cell. Full CORAL 4×4×1: `table2` binary.

use criterion::{criterion_group, criterion_main, Criterion};
use qmc_bench::{run_profile, ProfileConfig, Suite};
use std::time::Duration;

fn bench_table2(c: &mut Criterion) {
    let mut g = c.benchmark_group("table2_baseline_profile");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    g.bench_function("aos_suite_sweep", |b| {
        b.iter(|| run_profile(Suite::Baseline, &ProfileConfig::small()))
    });
    g.finish();
}

criterion_group!(benches, bench_table2);
criterion_main!(benches);
