//! Criterion bench for Fig. 7a: AoS vs SoA VGH kernel throughput,
//! scalar loop vs the batched API (`vgh_batch`, hoisted basis weights).
//! Reduced scale (grid 12³); the full-scale sweep is the `fig7a` binary.

use bspline::precision::MixedEngine;
use bspline::simd::{with_backend, Backend as SimdBackend};
use bspline::SpoEngine;
use bspline::{BsplineAoS, BsplineSoA, Kernel, PosBlock};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use qmc_bench::workload::{coefficients, coefficients_in, positions, positions_in};
use std::time::Duration;

fn bench_fig7a(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig7a_vgh_aos_vs_soa");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800));
    let pos = positions(16, 11);
    let block = PosBlock::from_positions(&pos);
    for n in [64usize, 128, 256] {
        let table = coefficients(n, (12, 12, 12), n as u64);
        g.throughput(Throughput::Elements((n * pos.len()) as u64));

        let aos = BsplineAoS::new(table.clone());
        let mut out = aos.make_out();
        g.bench_with_input(BenchmarkId::new("AoS", n), &n, |b, _| {
            b.iter(|| {
                for p in &pos {
                    aos.eval(Kernel::Vgh, *p, &mut out);
                }
            })
        });
        let mut batch_out = aos.make_batch_out(block.len());
        g.bench_with_input(BenchmarkId::new("AoS_batch", n), &n, |b, _| {
            b.iter(|| aos.vgh_batch(&block, &mut batch_out))
        });

        let soa = BsplineSoA::new(table);
        let mut out = soa.make_out();
        g.bench_with_input(BenchmarkId::new("SoA", n), &n, |b, _| {
            b.iter(|| {
                for p in &pos {
                    soa.eval(Kernel::Vgh, *p, &mut out);
                }
            })
        });
        let mut batch_out = soa.make_batch_out(block.len());
        g.bench_with_input(BenchmarkId::new("SoA_batch", n), &n, |b, _| {
            b.iter(|| soa.vgh_batch(&block, &mut batch_out))
        });
        // Scalar-vs-SIMD ablation row: the same batched workload with
        // the micro-kernel dispatch forced to the portable scalar pack.
        let mut batch_out = soa.make_batch_out(block.len());
        g.bench_with_input(BenchmarkId::new("SoA_batch_simd_off", n), &n, |b, _| {
            b.iter(|| {
                with_backend(SimdBackend::Scalar, || {
                    soa.vgh_batch(&block, &mut batch_out)
                })
            })
        });

        // Per-precision rows over the identical workload shape: the f64
        // accuracy reference and the mixed adapter (f32 storage + SIMD
        // compute, f64 delivery) over the downcast of the same table.
        let pos64 = positions_in::<f64>(16, 11);
        let block64 = PosBlock::from_positions(&pos64);
        let table64 = coefficients_in::<f64>(n, (12, 12, 12), n as u64);
        let soa64 = BsplineSoA::new(table64.clone());
        let mut batch_out = soa64.make_batch_out(block64.len());
        g.bench_with_input(BenchmarkId::new("SoA_batch_f64", n), &n, |b, _| {
            b.iter(|| soa64.vgh_batch(&block64, &mut batch_out))
        });
        let mixed = MixedEngine::soa(&table64);
        let mut batch_out = mixed.make_batch_out(block64.len());
        g.bench_with_input(BenchmarkId::new("SoA_batch_mixed", n), &n, |b, _| {
            b.iter(|| mixed.vgh_batch(&block64, &mut batch_out))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_fig7a);
criterion_main!(benches);
