//! Criterion bench for Table IV: the three optimization steps measured
//! back-to-back on one workload (AoS baseline → SoA → AoSoA → nested).
//! Full-scale + modelled platforms: `table4` binary.

use bspline::SpoEngine;
use bspline::parallel::nested_generation_time;
use bspline::{BsplineAoS, BsplineAoSoA, BsplineSoA, Kernel};
use criterion::{criterion_group, criterion_main, Criterion};
use qmc_bench::workload::{coefficients, positions};
use std::time::Duration;

fn bench_table4(c: &mut Criterion) {
    let mut g = c.benchmark_group("table4_opt_steps");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(900));
    let n = 256;
    let pos = positions(12, 23);
    let table = coefficients(n, (12, 12, 12), 7);

    let aos = BsplineAoS::new(table.clone());
    let mut out = aos.make_out();
    g.bench_function("step0_baseline_aos", |b| {
        b.iter(|| {
            for p in &pos {
                aos.vgh(*p, &mut out);
            }
        })
    });

    let soa = BsplineSoA::new(table.clone());
    let mut out = soa.make_out();
    g.bench_function("stepA_soa", |b| {
        b.iter(|| {
            for p in &pos {
                soa.vgh(*p, &mut out);
            }
        })
    });

    let tiled = BsplineAoSoA::from_multi(&table, 32);
    let mut out = tiled.make_out();
    g.bench_function("stepB_aosoa", |b| {
        b.iter(|| tiled.eval_batch_tile_major(Kernel::Vgh, &pos, &mut out))
    });

    let total = std::thread::available_parallelism()
        .map(|v| v.get())
        .unwrap_or(2);
    g.bench_function("stepC_nested", |b| {
        b.iter(|| nested_generation_time(&tiled, Kernel::Vgh, total, total, 12, 3))
    });
    g.finish();
}

criterion_group!(benches, bench_table4);
criterion_main!(benches);
