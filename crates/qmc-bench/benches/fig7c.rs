//! Criterion bench for Fig. 7c: AoSoA throughput vs tile size Nb.
//! Full-scale sweep (with the four modelled platforms): `fig7c` binary.

use bspline::{BsplineAoSoA, Kernel};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use qmc_bench::workload::{coefficients, positions};
use std::time::Duration;

fn bench_fig7c(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig7c_tile_sweep");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800));
    let n = 256;
    let pos = positions(16, 17);
    let table = coefficients(n, (12, 12, 12), 5);
    g.throughput(Throughput::Elements((n * pos.len()) as u64));
    for nb in [16usize, 32, 64, 128, 256] {
        let tiled = BsplineAoSoA::from_multi(&table, nb);
        let mut out = tiled.make_out();
        g.bench_with_input(BenchmarkId::new("Nb", nb), &nb, |b, _| {
            b.iter(|| tiled.eval_batch_tile_major(Kernel::Vgh, &pos, &mut out))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_fig7c);
criterion_main!(benches);
