//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! * z-unrolled fused inner loop (SoA) vs the 64-point triple loop
//!   structure (AoS uses it) — isolate via VGL which differs most;
//! * explicit static tile partitioning vs dynamic rayon scheduling for
//!   nested threading;
//! * distance-table layout: AoS scalar pairs vs SoA streamed rows;
//! * Jastrow over SoA rows vs per-pair AoS accessors.

use bspline::parallel::{nested_generation_time, run_nested, run_nested_dynamic};
use bspline::{BsplineAoSoA, Kernel, PosBlock, SpoEngine, WalkerSoA};
use criterion::{criterion_group, criterion_main, Criterion};
use miniqmc::distance::aos::DistanceTableAAAoS;
use miniqmc::distance::soa::DistanceTableAA;
use miniqmc::jastrow::BsplineFunctor;
use miniqmc::lattice::Lattice;
use miniqmc::particleset::random_electrons;
use qmc_bench::workload::{coefficients, positions};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rayon::prelude::*;
use std::time::Duration;

fn bench_ablations(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablations");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(900));

    // --- nested threading: explicit partition vs dynamic rayon ----------
    let n = 256;
    let table = coefficients(n, (12, 12, 12), 3);
    let engine = BsplineAoSoA::from_multi(&table, 16); // 16 tiles
    let total = std::thread::available_parallelism()
        .map(|v| v.get())
        .unwrap_or(2);
    g.bench_function("nested_static_partition", |b| {
        b.iter(|| nested_generation_time(&engine, Kernel::Vgh, total, total, 8, 5))
    });
    let pos = positions(8, 5);
    g.bench_function("nested_dynamic_rayon", |b| {
        b.iter(|| {
            let mut out = engine.make_out();
            out.tiles_mut()
                .par_iter_mut()
                .enumerate()
                .for_each(|(t, tile_out)| {
                    for p in &pos {
                        engine.eval_tile(t, Kernel::Vgh, *p, tile_out);
                    }
                });
            out
        })
    });
    // Reference: the same work single-threaded through run_nested.
    let block = PosBlock::from_positions(&pos);
    g.bench_function("nested_single_thread", |b| {
        b.iter(|| {
            let mut walkers = vec![engine.make_out()];
            let ppw = vec![block.clone()];
            run_nested(&engine, Kernel::Vgh, &mut walkers, &ppw, 1)
        })
    });

    // --- batched nested path: static partition vs dynamic chunk queue --
    // Measured on BOTH a deliberately ragged tile count (13 tiles on
    // `total` threads: the static partition idles workers) and a
    // uniform one (16 tiles: the queue only adds overhead). The winning
    // grains are recorded as `tuning::NESTED_DYNAMIC_GRAIN_RAGGED` /
    // `tuning::NESTED_DYNAMIC_GRAIN_UNIFORM` and picked per workload by
    // `tuning::default_nested_grain`; outputs and position blocks are
    // allocated once outside the timed region.
    let n_walkers = 2;
    let blocks: Vec<PosBlock<f32>> = (0..n_walkers).map(|_| block.clone()).collect();
    for (label, n_tiles) in [("ragged13", 13usize), ("uniform16", 16)] {
        let tiled =
            BsplineAoSoA::from_multi(&coefficients(n_tiles * 16, (12, 12, 12), 4), 16);
        let mut walkers: Vec<_> = (0..n_walkers).map(|_| tiled.make_out()).collect();
        g.bench_function(format!("nested_batched_static_{label}"), |b| {
            b.iter(|| run_nested(&tiled, Kernel::Vgh, &mut walkers, &blocks, total))
        });
        for grain in [1usize, 4] {
            g.bench_function(format!("nested_batched_dynamic_{label}_grain{grain}"), |b| {
                b.iter(|| {
                    run_nested_dynamic(&tiled, Kernel::Vgh, &mut walkers, &blocks, grain)
                })
            });
        }
        let picked = bspline::tuning::default_nested_grain(n_tiles, total);
        g.bench_function(
            format!("nested_batched_dynamic_{label}_default_grain{picked}"),
            |b| {
                b.iter(|| {
                    run_nested_dynamic(&tiled, Kernel::Vgh, &mut walkers, &blocks, picked)
                })
            },
        );
    }

    // --- SIMD dispatch: active backend vs forced sse2 vs forced scalar
    let simd_engine = bspline::BsplineSoA::new(coefficients(n, (12, 12, 12), 21));
    let simd_block = PosBlock::from_positions(&pos);
    let mut simd_out = simd_engine.make_batch_out(simd_block.len());
    g.bench_function(
        format!("vgh_batch_simd_{}", bspline::simd::default_backend()),
        |b| b.iter(|| simd_engine.vgh_batch(&simd_block, &mut simd_out)),
    );
    for backend in bspline::simd::Backend::available() {
        g.bench_function(format!("vgh_batch_simd_forced_{backend}"), |b| {
            b.iter(|| {
                bspline::simd::with_backend(backend, || {
                    simd_engine.vgh_batch(&simd_block, &mut simd_out)
                })
            })
        });
    }

    // --- z-unroll fusion: fused plane kernel vs naive 64-point loop -----
    let soa_engine = bspline::BsplineSoA::new(coefficients(n, (12, 12, 12), 9));
    let mut soa_out = WalkerSoA::new(n);
    g.bench_function("vgh_fused_zunroll", |b| {
        b.iter(|| {
            for p in &pos {
                soa_engine.vgh(*p, &mut soa_out);
            }
        })
    });
    g.bench_function("vgh_naive_triple_loop", |b| {
        b.iter(|| {
            for p in &pos {
                bspline::soa::vgh_naive(&soa_engine, *p, &mut soa_out);
            }
        })
    });

    // --- distance tables: AoS vs SoA rebuild ----------------------------
    let lat = Lattice::hexagonal(3.0, 8.0);
    let ps = random_electrons(lat, 64, &mut StdRng::seed_from_u64(7));
    let mut aos = DistanceTableAAAoS::new(&ps);
    let mut soa = DistanceTableAA::new(&ps);
    g.bench_function("distance_rebuild_aos", |b| b.iter(|| aos.rebuild(&ps)));
    g.bench_function("distance_rebuild_soa", |b| b.iter(|| soa.rebuild(&ps)));

    // --- Jastrow sum over a row: per-pair accessor vs row slice ---------
    let u = BsplineFunctor::rpa_like(0.5, 1.2, lat.wigner_seitz_radius() * 0.9, 48);
    g.bench_function("jastrow_row_aos_accessor", |b| {
        b.iter(|| {
            let mut s = 0.0;
            for j in 0..64 {
                s += u.value(aos.distance(0, j));
            }
            s
        })
    });
    g.bench_function("jastrow_row_soa_slice", |b| {
        b.iter(|| soa.row(0).iter().map(|&r| u.value(r)).sum::<f64>())
    });

    g.finish();
}

criterion_group!(benches, bench_ablations);
criterion_main!(benches);
