//! Criterion bench for Fig. 8: per-kernel (V/VGL/VGH) cost in the AoS
//! baseline vs the AoSoA-optimized implementation, plus the batched
//! per-position-retained AoSoA path (`eval_batch`: tile-major order,
//! basis weights hoisted once per position for all tiles). Full-scale:
//! `fig8` binary.

use bspline::precision::MixedEngine;
use bspline::simd::{with_backend, Backend as SimdBackend};
use bspline::SpoEngine;
use bspline::{BsplineAoS, BsplineAoSoA, Kernel, PosBlock};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use qmc_bench::workload::{coefficients, coefficients_in, positions, positions_in};
use std::time::Duration;

fn bench_fig8(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig8_kernels");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800));
    let n = 128;
    let pos = positions(16, 19);
    let block = PosBlock::from_positions(&pos);
    let table = coefficients(n, (12, 12, 12), 9);
    g.throughput(Throughput::Elements((n * pos.len()) as u64));

    let aos = BsplineAoS::new(table.clone());
    let tiled = BsplineAoSoA::from_multi(&table, 32);
    // Per-precision variants of the batched AoSoA path: f64 accuracy
    // reference and the mixed adapter over the downcast of one f64
    // table (same workload shape as the f32 rows).
    let pos64 = positions_in::<f64>(16, 19);
    let block64 = PosBlock::from_positions(&pos64);
    let table64 = coefficients_in::<f64>(n, (12, 12, 12), 9);
    let tiled64 = BsplineAoSoA::from_multi(&table64, 32);
    let tiled_mixed = MixedEngine::aosoa(&table64, 32);
    for k in Kernel::ALL {
        let mut out = aos.make_out();
        g.bench_with_input(BenchmarkId::new(format!("AoS_{k}"), n), &n, |b, _| {
            b.iter(|| {
                for p in &pos {
                    aos.eval(k, *p, &mut out);
                }
            })
        });
        let mut out = tiled.make_out();
        g.bench_with_input(BenchmarkId::new(format!("AoSoA_{k}"), n), &n, |b, _| {
            b.iter(|| tiled.eval_batch_tile_major(k, &pos, &mut out))
        });
        let mut batch_out = tiled.make_batch_out(block.len());
        g.bench_with_input(
            BenchmarkId::new(format!("AoSoA_batch_{k}"), n),
            &n,
            |b, _| b.iter(|| tiled.eval_batch(k, &block, &mut batch_out)),
        );
        // Scalar-vs-SIMD ablation row: the identical tile-major batched
        // workload with the dispatch forced to the portable scalar pack.
        let mut batch_out = tiled.make_batch_out(block.len());
        g.bench_with_input(
            BenchmarkId::new(format!("AoSoA_batch_simd_off_{k}"), n),
            &n,
            |b, _| {
                b.iter(|| {
                    with_backend(SimdBackend::Scalar, || {
                        tiled.eval_batch(k, &block, &mut batch_out)
                    })
                })
            },
        );
        // Per-precision rows: identical batched tile-major workload in
        // f64 and through the mixed adapter.
        let mut batch_out = tiled64.make_batch_out(block64.len());
        g.bench_with_input(
            BenchmarkId::new(format!("AoSoA_batch_f64_{k}"), n),
            &n,
            |b, _| b.iter(|| tiled64.eval_batch(k, &block64, &mut batch_out)),
        );
        let mut batch_out = tiled_mixed.make_batch_out(block64.len());
        g.bench_with_input(
            BenchmarkId::new(format!("AoSoA_batch_mixed_{k}"), n),
            &n,
            |b, _| b.iter(|| tiled_mixed.eval_batch(k, &block64, &mut batch_out)),
        );
        // Scalar-loop reference with per-position retained outputs (what
        // the batched path replaces 1:1).
        let mut batch_out = tiled.make_batch_out(block.len());
        g.bench_with_input(
            BenchmarkId::new(format!("AoSoA_scalar_loop_{k}"), n),
            &n,
            |b, _| {
                b.iter(|| {
                    for (i, p) in pos.iter().enumerate() {
                        tiled.eval(k, *p, batch_out.block_mut(i));
                    }
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_fig8);
criterion_main!(benches);
