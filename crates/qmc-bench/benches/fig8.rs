//! Criterion bench for Fig. 8: per-kernel (V/VGL/VGH) cost in the AoS
//! baseline vs the AoSoA-optimized implementation. Full-scale: `fig8`
//! binary.

use bspline::SpoEngine;
use bspline::{BsplineAoS, BsplineAoSoA, Kernel};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use qmc_bench::workload::{coefficients, positions};
use std::time::Duration;

fn bench_fig8(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig8_kernels");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800));
    let n = 128;
    let pos = positions(16, 19);
    let table = coefficients(n, (12, 12, 12), 9);
    g.throughput(Throughput::Elements((n * pos.len()) as u64));

    let aos = BsplineAoS::new(table.clone());
    let tiled = BsplineAoSoA::from_multi(&table, 32);
    for k in Kernel::ALL {
        let mut out = aos.make_out();
        g.bench_with_input(BenchmarkId::new(format!("AoS_{k}"), n), &n, |b, _| {
            b.iter(|| {
                for p in &pos {
                    aos.eval(k, *p, &mut out);
                }
            })
        });
        let mut out = tiled.make_out();
        g.bench_with_input(BenchmarkId::new(format!("AoSoA_{k}"), n), &n, |b, _| {
            b.iter(|| tiled.eval_batch_tile_major(k, &pos, &mut out))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_fig8);
criterion_main!(benches);
