//! Criterion bench for Table I: hierarchy instantiation + a reference
//! access storm on each modelled platform (validates the platform
//! models' simulation cost). The configuration table itself: `table1`
//! binary.

use cachesim::Platform;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn bench_platforms(c: &mut Criterion) {
    let mut g = c.benchmark_group("table1_platform_models");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800));
    for p in Platform::all() {
        g.bench_with_input(BenchmarkId::new("access_storm", p.name), &p, |b, p| {
            b.iter(|| {
                let mut h = p.hierarchy(2);
                for i in 0..20_000u64 {
                    h.access((i % 2) as usize, (i * 2654435761) % (1 << 24), i % 7 == 0);
                }
                h.dram_read_bytes()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_platforms);
criterion_main!(benches);
