//! Criterion bench for Fig. 7b: untiled SoA vs AoSoA tiling (tile-major
//! batch, Fig. 6 loop order). Full-scale sweep: the `fig7b` binary.

use bspline::SpoEngine;
use bspline::{BsplineAoSoA, BsplineSoA, Kernel};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use qmc_bench::workload::{coefficients, positions};
use std::time::Duration;

fn bench_fig7b(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig7b_soa_vs_aosoa");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800));
    let pos = positions(16, 13);
    for n in [128usize, 256] {
        let table = coefficients(n, (12, 12, 12), n as u64);
        g.throughput(Throughput::Elements((n * pos.len()) as u64));

        let soa = BsplineSoA::new(table.clone());
        let mut out = soa.make_out();
        g.bench_with_input(BenchmarkId::new("SoA", n), &n, |b, _| {
            b.iter(|| {
                for p in &pos {
                    soa.vgh(*p, &mut out);
                }
            })
        });

        let tiled = BsplineAoSoA::from_multi(&table, 32);
        let mut out = tiled.make_out();
        g.bench_with_input(BenchmarkId::new("AoSoA_Nb32", n), &n, |b, _| {
            b.iter(|| tiled.eval_batch_tile_major(Kernel::Vgh, &pos, &mut out))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_fig7b);
criterion_main!(benches);
