//! Single 1D cubic B-spline — the building block for Jastrow radial
//! functions and the reference for 3D tensor-product tests.

use crate::basis::{d2_weights, d_weights, weights};
use crate::grid::{Boundary, Grid1};
use crate::real::Real;
use crate::solver1d::{solve_clamped, solve_natural, solve_periodic, COEF_PAD};

/// A 1D cubic B-spline over a uniform grid.
///
/// Coefficients are stored padded (`num + 3` entries) so evaluation reads
/// a contiguous 4-window; see [`crate::solver1d`] for the convention.
#[derive(Clone, Debug)]
pub struct Spline1<T> {
    grid: Grid1,
    coefs: Vec<T>,
}

impl<T: Real> Spline1<T> {
    /// Interpolate periodic samples: `data[i] = f(start + i·Δ)` with
    /// `data.len() == grid.num()` and `f(end) = f(start)`.
    pub fn interpolate_periodic(grid: Grid1, data: &[f64]) -> Self {
        assert_eq!(grid.boundary(), Boundary::Periodic);
        assert_eq!(data.len(), grid.num(), "periodic data covers one period");
        let coefs = solve_periodic(data)
            .into_iter()
            .map(T::from_f64)
            .collect();
        Self { grid, coefs }
    }

    /// Interpolate bounded samples with natural (zero second derivative)
    /// ends: `data.len() == grid.num() + 1`.
    pub fn interpolate_natural(grid: Grid1, data: &[f64]) -> Self {
        assert_eq!(grid.boundary(), Boundary::Natural);
        assert_eq!(data.len(), grid.num() + 1);
        let coefs = solve_natural(data).into_iter().map(T::from_f64).collect();
        Self { grid, coefs }
    }

    /// Interpolate bounded samples with prescribed end slopes.
    pub fn interpolate_clamped(grid: Grid1, data: &[f64], s0: f64, sn: f64) -> Self {
        assert_eq!(grid.boundary(), Boundary::Natural);
        assert_eq!(data.len(), grid.num() + 1);
        let coefs = solve_clamped(data, s0, sn, grid.delta())
            .into_iter()
            .map(T::from_f64)
            .collect();
        Self { grid, coefs }
    }

    /// Build directly from padded control points (`grid.num() + 3`
    /// entries) — QMCPACK's Jastrow splines treat the control points as
    /// variational parameters rather than fitting them.
    pub fn from_coefficients(grid: Grid1, coefs: Vec<T>) -> Self {
        assert_eq!(coefs.len(), grid.num() + COEF_PAD);
        Self { grid, coefs }
    }

    #[inline]
    /// Grid.
    pub fn grid(&self) -> &Grid1 {
        &self.grid
    }

    #[inline]
    /// Coefficients.
    pub fn coefficients(&self) -> &[T] {
        &self.coefs
    }

    /// Spline value at `x`.
    #[inline]
    pub fn value(&self, x: T) -> T {
        let (i, t) = self.grid.locate(x);
        let w = weights(t);
        let c = &self.coefs[i..i + 4];
        w[3].mul_add(
            c[3],
            w[2].mul_add(c[2], w[1].mul_add(c[1], w[0] * c[0])),
        )
    }

    /// Value, first and second derivative at `x` (physical units).
    #[inline]
    pub fn vgl(&self, x: T) -> (T, T, T) {
        let (i, t) = self.grid.locate(x);
        let w = weights(t);
        let dw = d_weights(t);
        let d2w = d2_weights(t);
        let c = &self.coefs[i..i + 4];
        let mut v = T::ZERO;
        let mut d = T::ZERO;
        let mut d2 = T::ZERO;
        for k in 0..4 {
            v = w[k].mul_add(c[k], v);
            d = dw[k].mul_add(c[k], d);
            d2 = d2w[k].mul_add(c[k], d2);
        }
        let di = T::from_f64(self.grid.delta_inv());
        (v, d * di, d2 * di * di)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    #[test]
    fn periodic_sine_is_accurate_between_knots() {
        let n = 64;
        let grid = Grid1::periodic(0.0, 2.0 * PI, n);
        let data: Vec<f64> = (0..n).map(|i| (grid.point(i)).sin()).collect();
        let s = Spline1::<f64>::interpolate_periodic(grid, &data);
        for k in 0..200 {
            let x = 2.0 * PI * k as f64 / 200.0;
            assert!((s.value(x) - x.sin()).abs() < 1e-5, "x={x}");
        }
    }

    #[test]
    fn periodic_derivatives_track_analytic() {
        let n = 128;
        let grid = Grid1::periodic(0.0, 2.0 * PI, n);
        let data: Vec<f64> = (0..n).map(|i| (grid.point(i)).sin()).collect();
        let s = Spline1::<f64>::interpolate_periodic(grid, &data);
        for k in 0..100 {
            let x = 2.0 * PI * (k as f64 + 0.41) / 100.0;
            let (v, d, d2) = s.vgl(x);
            assert!((v - x.sin()).abs() < 1e-6);
            assert!((d - x.cos()).abs() < 1e-4, "x={x} d={d}");
            assert!((d2 + x.sin()).abs() < 1e-2, "x={x} d2={d2}");
        }
    }

    #[test]
    fn periodic_wraps_smoothly() {
        let n = 32;
        let grid = Grid1::periodic(0.0, 1.0, n);
        let data: Vec<f64> = (0..n)
            .map(|i| (2.0 * PI * grid.point(i)).cos())
            .collect();
        let s = Spline1::<f64>::interpolate_periodic(grid, &data);
        // Value and derivative continuous across the period seam.
        let (vl, dl, _) = s.vgl(1.0 - 1e-9);
        let (vr, dr, _) = s.vgl(0.0);
        assert!((vl - vr).abs() < 1e-6);
        assert!((dl - dr).abs() < 1e-4);
        // And periodic images agree exactly.
        assert!((s.value(0.3) - s.value(1.3)).abs() < 1e-12);
        assert!((s.value(0.3) - s.value(-0.7)).abs() < 1e-12);
    }

    #[test]
    fn natural_quadratic_interpolates() {
        let grid = Grid1::natural(0.0, 4.0, 8);
        let data: Vec<f64> = (0..=8).map(|i| grid.point(i) * 0.5 + 1.0).collect();
        let s = Spline1::<f64>::interpolate_natural(grid, &data);
        // Linear functions have zero second derivative: reproduced exactly.
        for k in 0..50 {
            let x = 4.0 * k as f64 / 50.0;
            assert!((s.value(x) - (0.5 * x + 1.0)).abs() < 1e-10, "x={x}");
            let (_, d, d2) = s.vgl(x);
            assert!((d - 0.5).abs() < 1e-10);
            assert!(d2.abs() < 1e-9);
        }
    }

    #[test]
    fn clamped_cubic_exact() {
        let f = |x: f64| x * x * x - 2.0 * x + 1.0;
        let df = |x: f64| 3.0 * x * x - 2.0;
        let grid = Grid1::natural(0.0, 2.0, 8);
        let data: Vec<f64> = (0..=8).map(|i| f(grid.point(i))).collect();
        let s = Spline1::<f64>::interpolate_clamped(grid, &data, df(0.0), df(2.0));
        for k in 0..=40 {
            let x = 2.0 * k as f64 / 40.0 * 0.999;
            let (v, d, d2) = s.vgl(x);
            assert!((v - f(x)).abs() < 1e-9, "x={x}");
            assert!((d - df(x)).abs() < 1e-8, "x={x}");
            assert!((d2 - 6.0 * x).abs() < 1e-7, "x={x}");
        }
    }

    #[test]
    fn from_coefficients_roundtrip() {
        let grid = Grid1::natural(0.0, 1.0, 4);
        let coefs = vec![1.0f32; 7];
        let s = Spline1::from_coefficients(grid, coefs);
        // All-ones control points give the constant function 1.
        for k in 0..10 {
            let x = k as f32 / 10.0;
            assert!((s.value(x) - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn f32_matches_f64_closely() {
        let n = 32;
        let grid = Grid1::periodic(0.0, 1.0, n);
        let data: Vec<f64> = (0..n)
            .map(|i| (2.0 * PI * grid.point(i)).sin() * 0.5)
            .collect();
        let s64 = Spline1::<f64>::interpolate_periodic(grid, &data);
        let s32 = Spline1::<f32>::interpolate_periodic(grid, &data);
        for k in 0..30 {
            let x = k as f64 / 30.0;
            assert!((s64.value(x) - s32.value(x as f32) as f64).abs() < 1e-5);
        }
    }

    #[test]
    #[should_panic]
    fn wrong_data_length_panics() {
        let grid = Grid1::periodic(0.0, 1.0, 8);
        let _ = Spline1::<f64>::interpolate_periodic(grid, &[0.0; 7]);
    }
}
