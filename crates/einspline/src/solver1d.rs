//! Interpolating cubic B-spline coefficient solvers.
//!
//! A cubic B-spline that *interpolates* data `f[i]` at the grid points
//! must satisfy `(c[i-1] + 4·c[i] + c[i+1])/6 = f[i]` (basis weights at a
//! knot are 1/6, 4/6, 1/6). Solving for the control points `c` is a
//! tridiagonal system — cyclic for periodic boundary conditions, plain
//! tridiagonal for natural/clamped ends. This is the `find_coefs` core of
//! the einspline library the paper builds on.
//!
//! All solves run in `f64` regardless of the table precision; the paper's
//! single-precision tables are produced by down-converting solved
//! coefficients.
//!
//! Coefficient storage convention (shared with the 3D tables): a
//! dimension with `n` intervals stores `n + 3` values with
//! `coefs[j] = c[j-1]`, so an evaluation in interval `i` always reads the
//! contiguous window `coefs[i..i+4]`. Periodic dimensions duplicate the
//! first three control points at the tail, which removes every modulo
//! from the hot loops.

/// Number of extra coefficient slots per dimension (`coefs.len() = n+3`).
pub const COEF_PAD: usize = 3;

/// Solve a general tridiagonal system via the Thomas algorithm.
///
/// `sub[i]` multiplies `x[i-1]` in row `i` (`sub[0]` unused), `diag[i]`
/// multiplies `x[i]`, `sup[i]` multiplies `x[i+1]` (last unused).
///
/// Panics if a pivot vanishes (the spline systems are diagonally
/// dominant, so this indicates misuse).
pub fn solve_tridiagonal(
    sub: &[f64],
    diag: &[f64],
    sup: &[f64],
    rhs: &[f64],
) -> Vec<f64> {
    let n = diag.len();
    assert!(n > 0);
    assert_eq!(sub.len(), n);
    assert_eq!(sup.len(), n);
    assert_eq!(rhs.len(), n);

    let mut c_star = vec![0.0; n];
    let mut d_star = vec![0.0; n];

    assert!(diag[0] != 0.0, "tridiagonal pivot is zero");
    c_star[0] = sup[0] / diag[0];
    d_star[0] = rhs[0] / diag[0];
    for i in 1..n {
        let m = diag[i] - sub[i] * c_star[i - 1];
        assert!(m != 0.0, "tridiagonal pivot is zero at row {i}");
        c_star[i] = sup[i] / m;
        d_star[i] = (rhs[i] - sub[i] * d_star[i - 1]) / m;
    }

    let mut x = d_star;
    for i in (0..n - 1).rev() {
        let next = x[i + 1];
        x[i] -= c_star[i] * next;
    }
    x
}

/// Solve the cyclic tridiagonal system with constant bands
/// `(a, b, a) = (1/6, 4/6, 1/6)` and periodic corners, via the
/// Sherman–Morrison correction of a plain Thomas solve.
fn solve_cyclic_146(rhs: &[f64]) -> Vec<f64> {
    const A: f64 = 1.0 / 6.0;
    const B: f64 = 4.0 / 6.0;
    let n = rhs.len();
    match n {
        0 => return vec![],
        1 => return vec![rhs[0] / (B + 2.0 * A)],
        2 => {
            // Rows: (B)c0 + (2A)c1 = f0 ; (2A)c0 + (B)c1 = f1.
            let det = B * B - 4.0 * A * A;
            return vec![
                (B * rhs[0] - 2.0 * A * rhs[1]) / det,
                (B * rhs[1] - 2.0 * A * rhs[0]) / det,
            ];
        }
        _ => {}
    }

    // Numerical Recipes `cyclic`: corners alpha = A (bottom-left),
    // beta = A (top-right).
    let gamma = -B;
    let mut diag = vec![B; n];
    diag[0] = B - gamma;
    diag[n - 1] = B - A * A / gamma;
    let sub = vec![A; n];
    let sup = vec![A; n];

    let x = solve_tridiagonal(&sub, &diag, &sup, rhs);

    let mut u = vec![0.0; n];
    u[0] = gamma;
    u[n - 1] = A;
    let z = solve_tridiagonal(&sub, &diag, &sup, &u);

    let fact = (x[0] + A * x[n - 1] / gamma) / (1.0 + z[0] + A * z[n - 1] / gamma);
    x.iter().zip(&z).map(|(xi, zi)| xi - fact * zi).collect()
}

/// Periodic interpolation: `data[i]` are samples at the `n` grid points of
/// a period; returns `n + 3` padded coefficients (see module docs).
pub fn solve_periodic(data: &[f64]) -> Vec<f64> {
    let n = data.len();
    assert!(n >= 1, "periodic solve needs at least one sample");
    // Bands are already (1/6, 4/6, 1/6): the RHS is the raw data.
    let c = solve_cyclic_146(data);
    // coefs[j] = c[(j-1) mod n]
    (0..n + COEF_PAD)
        .map(|j| c[(j + n - 1) % n])
        .collect()
}

/// Natural-boundary interpolation: `data` holds `n+1` samples at the
/// points of a grid with `n` intervals; the second derivative vanishes at
/// both ends. Returns `n + 3` coefficients `c[-1..=n+1]`.
pub fn solve_natural(data: &[f64]) -> Vec<f64> {
    let np = data.len();
    assert!(np >= 2, "natural solve needs at least two samples");
    let n = np - 1;

    // f''(x0)=0 and f''(xn)=0 make the end control points explicit:
    // c[0] = f[0], c[n] = f[n]; the interior is a (n-1)-row tridiagonal.
    let c0 = data[0];
    let cn = data[n];
    let mut c = vec![0.0; np];
    c[0] = c0;
    c[n] = cn;

    if n >= 2 {
        let m = n - 1;
        let sub = vec![1.0; m];
        let diag = vec![4.0; m];
        let sup = vec![1.0; m];
        let mut rhs: Vec<f64> = (1..n).map(|i| 6.0 * data[i]).collect();
        rhs[0] -= c0;
        rhs[m - 1] -= cn;
        let interior = solve_tridiagonal(&sub, &diag, &sup, &rhs);
        c[1..n].copy_from_slice(&interior);
    }

    let mut out = Vec::with_capacity(np + 2);
    out.push(2.0 * c[0] - c[1]); // c[-1] from c''(x0)=0
    out.extend_from_slice(&c);
    out.push(2.0 * c[n] - c[n - 1]); // c[n+1] from c''(xn)=0
    out
}

/// Clamped-boundary interpolation: like [`solve_natural`] but with the
/// first derivative prescribed as `s0` at the first point and `sn` at the
/// last. `delta` is the grid spacing. Used by the Jastrow radial functors
/// (QMCPACK clamps `u'(r_cut) = 0`).
pub fn solve_clamped(data: &[f64], s0: f64, sn: f64, delta: f64) -> Vec<f64> {
    let np = data.len();
    assert!(np >= 2, "clamped solve needs at least two samples");
    let n = np - 1;

    // Eliminating c[-1] = c[1] - 2Δs0 and c[n+1] = c[n-1] + 2Δsn gives an
    // (n+1)-row tridiagonal with modified first/last rows:
    //   2c[0] +  c[1]           = 3f[0] + Δ s0
    //    c[i-1] + 4c[i] + c[i+1] = 6f[i]
    //            c[n-1] + 2c[n] = 3f[n] - Δ sn
    let mut sub = vec![1.0; np];
    let mut diag = vec![4.0; np];
    let mut sup = vec![1.0; np];
    let mut rhs: Vec<f64> = data.iter().map(|f| 6.0 * f).collect();
    diag[0] = 2.0;
    sup[0] = 1.0;
    rhs[0] = 3.0 * data[0] + delta * s0;
    diag[n] = 2.0;
    sub[n] = 1.0;
    rhs[n] = 3.0 * data[n] - delta * sn;

    let c = solve_tridiagonal(&sub, &diag, &sup, &rhs);

    let mut out = Vec::with_capacity(np + 2);
    out.push(c[1] - 2.0 * delta * s0);
    out.extend_from_slice(&c);
    out.push(c[n - 1] + 2.0 * delta * sn);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::basis::weights;

    /// Evaluate a padded-coefficient spline at grid point `i`.
    ///
    /// The final knot of a bounded spline belongs to the last interval
    /// (t = 1), which keeps all window indices inside the padded array.
    fn eval_at_knot(coefs: &[f64], i: usize) -> f64 {
        let last = coefs.len() - 4;
        let (i, t) = if i > last { (last, 1.0) } else { (i, 0.0) };
        let w = weights(t);
        (0..4).map(|k| w[k] * coefs[i + k]).sum()
    }

    #[test]
    fn thomas_solves_identity() {
        let x = solve_tridiagonal(
            &[0.0, 0.0, 0.0],
            &[1.0, 1.0, 1.0],
            &[0.0, 0.0, 0.0],
            &[3.0, -1.0, 2.5],
        );
        assert_eq!(x, vec![3.0, -1.0, 2.5]);
    }

    #[test]
    fn thomas_matches_dense_solve() {
        // 4x4 diagonally dominant system, verified by substitution.
        let sub = [0.0, 1.0, 2.0, 0.5];
        let diag = [4.0, 5.0, 6.0, 3.0];
        let sup = [1.0, 2.0, 0.5, 0.0];
        let rhs = [6.0, 20.0, 29.0, 9.5];
        let x = solve_tridiagonal(&sub, &diag, &sup, &rhs);
        // Substitute back.
        let n = 4;
        for i in 0..n {
            let mut acc = diag[i] * x[i];
            if i > 0 {
                acc += sub[i] * x[i - 1];
            }
            if i + 1 < n {
                acc += sup[i] * x[i + 1];
            }
            assert!((acc - rhs[i]).abs() < 1e-12, "row {i}");
        }
    }

    #[test]
    fn periodic_constant_data_gives_constant_coefs() {
        let coefs = solve_periodic(&[2.5; 12]);
        assert_eq!(coefs.len(), 15);
        for c in &coefs {
            assert!((c - 2.5).abs() < 1e-12);
        }
    }

    #[test]
    fn periodic_interpolates_samples() {
        let n = 16;
        let data: Vec<f64> = (0..n)
            .map(|i| (2.0 * std::f64::consts::PI * i as f64 / n as f64).sin() + 0.3)
            .collect();
        let coefs = solve_periodic(&data);
        assert_eq!(coefs.len(), n + COEF_PAD);
        for (i, f) in data.iter().enumerate() {
            let v = eval_at_knot(&coefs, i);
            assert!((v - f).abs() < 1e-10, "i={i} v={v} f={f}");
        }
    }

    #[test]
    fn periodic_padding_wraps() {
        let n = 8;
        let data: Vec<f64> = (0..n).map(|i| (i as f64).cos()).collect();
        let coefs = solve_periodic(&data);
        // coefs[j] = c[(j-1) mod n]: tail duplicates head.
        assert!((coefs[n] - coefs[0]).abs() < 1e-14);
        assert!((coefs[n + 1] - coefs[1]).abs() < 1e-14);
        assert!((coefs[n + 2] - coefs[2]).abs() < 1e-14);
    }

    #[test]
    fn periodic_small_systems() {
        // n = 1 and n = 2 take the closed-form branches.
        let c1 = solve_periodic(&[3.0]);
        assert!((eval_at_knot(&c1, 0) - 3.0).abs() < 1e-12);
        let c2 = solve_periodic(&[1.0, 2.0]);
        assert!((eval_at_knot(&c2, 0) - 1.0).abs() < 1e-12);
        assert!((eval_at_knot(&c2, 1) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn natural_interpolates_samples() {
        let data = [0.0, 1.0, 4.0, 9.0, 16.0, 25.0];
        let coefs = solve_natural(&data);
        assert_eq!(coefs.len(), data.len() + 2);
        for (i, f) in data.iter().enumerate() {
            let v = eval_at_knot(&coefs, i);
            assert!((v - f).abs() < 1e-10, "i={i}");
        }
    }

    #[test]
    fn natural_second_derivative_vanishes_at_ends() {
        let data = [1.0, -0.5, 2.0, 0.25, 1.5];
        let c = solve_natural(&data);
        // f''(knot i)·Δ² = c[i-1] - 2c[i] + c[i+1] = coefs[i] - 2coefs[i+1] + coefs[i+2]
        let d2_start = c[0] - 2.0 * c[1] + c[2];
        let n = data.len() - 1;
        let d2_end = c[n] - 2.0 * c[n + 1] + c[n + 2];
        assert!(d2_start.abs() < 1e-12);
        assert!(d2_end.abs() < 1e-12);
    }

    #[test]
    fn clamped_interpolates_and_matches_slopes() {
        let delta = 0.5;
        let n = 6;
        // f(x) = sin(x) on [0, 3]
        let data: Vec<f64> = (0..=n).map(|i| (i as f64 * delta).sin()).collect();
        let s0 = 1.0; // cos(0)
        let sn = (n as f64 * delta).cos();
        let c = solve_clamped(&data, s0, sn, delta);
        assert_eq!(c.len(), data.len() + 2);
        for (i, f) in data.iter().enumerate() {
            assert!((eval_at_knot(&c, i) - f).abs() < 1e-10, "i={i}");
        }
        // First derivative at knot i: (-c[i-1] + c[i+1]) / (2Δ)
        let d_start = (-c[0] + c[2]) / (2.0 * delta);
        let d_end = (-c[n] + c[n + 2]) / (2.0 * delta);
        assert!((d_start - s0).abs() < 1e-12);
        assert!((d_end - sn).abs() < 1e-12);
    }

    #[test]
    fn clamped_flat_ends() {
        // Zero-slope clamps on symmetric data stay symmetric.
        let data = [1.0, 0.5, 0.25, 0.5, 1.0];
        let c = solve_clamped(&data, 0.0, 0.0, 1.0);
        let m = c.len();
        for i in 0..m {
            assert!((c[i] - c[m - 1 - i]).abs() < 1e-12, "i={i}");
        }
    }

    #[test]
    fn cubic_polynomial_is_reproduced_exactly_inside() {
        // A cubic is in the spline space; clamped interpolation with exact
        // end slopes must reproduce it everywhere, not just at knots.
        let f = |x: f64| 2.0 * x * x * x - x * x + 0.5 * x - 3.0;
        let df = |x: f64| 6.0 * x * x - 2.0 * x + 0.5;
        let delta = 0.25;
        let n = 8;
        let data: Vec<f64> = (0..=n).map(|i| f(i as f64 * delta)).collect();
        let c = solve_clamped(&data, df(0.0), df(n as f64 * delta), delta);
        // Evaluate mid-interval via basis weights.
        for i in 0..n {
            let t = 0.37;
            let w = weights(t);
            let v: f64 = (0..4).map(|k| w[k] * c[i + k]).sum();
            let x = (i as f64 + t) * delta;
            assert!((v - f(x)).abs() < 1e-9, "i={i} v={v} f={}", f(x));
        }
    }
}
