//! Minimal floating-point abstraction shared by every numeric kernel.
//!
//! The paper's kernels run in single precision (`f32`); the coefficient
//! solvers and validation paths want double precision. Rather than pull in
//! a numerics crate, we define the tiny surface the workspace actually
//! uses. All methods are `#[inline]` one-liners so the abstraction is free
//! after monomorphization.

use std::fmt::{Debug, Display};
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// Scalar type used by spline tables and kernels.
///
/// Implemented for `f32` and `f64`. The bound set mirrors what the hot
/// loops need: arithmetic, `mul_add` (maps to FMA), and cheap conversions
/// for setup code that is always done in `f64`.
///
/// # Mixed precision
///
/// [`Real::Accum`] is the *accumulation* scalar paired with each storage
/// scalar — the QMC mixed-precision contract (f32 orbital tables, f64
/// wavefunction-level reductions) expressed in the type system. `f32`
/// accumulates in `f64`; `f64` accumulates in itself. Kernels that store
/// in `T` but must not lose accuracy in long reductions widen each
/// contribution with [`Real::to_accum`] and only narrow (if at all) at
/// the output boundary with [`Real::from_accum`].
pub trait Real:
    Copy
    + Send
    + Sync
    + Default
    + PartialOrd
    + PartialEq
    + Debug
    + Display
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
    + AddAssign
    + SubAssign
    + MulAssign
    + DivAssign
    + Sum
    + 'static
{
    /// The accumulation-precision scalar for this storage scalar:
    /// wide enough that summing many `Self` contributions does not lose
    /// the paper's physical accuracy (`f64` for both `f32` and `f64`
    /// storage).
    type Accum: Real;

    /// ZERO.
    const ZERO: Self;
    /// ONE.
    const ONE: Self;

    /// Widen one stored value into the accumulation precision
    /// ([`Real::Accum`]). Lossless for both implementations.
    fn to_accum(self) -> Self::Accum;
    /// Narrow an accumulated value back to storage precision (rounds
    /// once for `f32`; identity for `f64`).
    fn from_accum(x: Self::Accum) -> Self;

    /// Lossy conversion from `f64` (setup paths only).
    fn from_f64(x: f64) -> Self;
    /// Widening conversion to `f64` (validation paths only).
    fn to_f64(self) -> f64;
    /// Fused multiply-add `self * a + b`.
    fn mul_add(self, a: Self, b: Self) -> Self;
    /// Floor.
    fn floor(self) -> Self;
    /// Abs.
    fn abs(self) -> Self;
    /// Sqrt.
    fn sqrt(self) -> Self;
    /// Min.
    fn min(self, other: Self) -> Self;
    /// Max.
    fn max(self, other: Self) -> Self;
}

macro_rules! impl_real {
    ($t:ty) => {
        impl Real for $t {
            type Accum = f64;

            const ZERO: Self = 0.0;
            const ONE: Self = 1.0;

            #[inline(always)]
            fn to_accum(self) -> f64 {
                self as f64
            }
            #[inline(always)]
            fn from_accum(x: f64) -> Self {
                x as $t
            }
            #[inline(always)]
            fn from_f64(x: f64) -> Self {
                x as $t
            }
            #[inline(always)]
            fn to_f64(self) -> f64 {
                self as f64
            }
            #[inline(always)]
            fn mul_add(self, a: Self, b: Self) -> Self {
                <$t>::mul_add(self, a, b)
            }
            #[inline(always)]
            fn floor(self) -> Self {
                <$t>::floor(self)
            }
            #[inline(always)]
            fn abs(self) -> Self {
                <$t>::abs(self)
            }
            #[inline(always)]
            fn sqrt(self) -> Self {
                <$t>::sqrt(self)
            }
            #[inline(always)]
            fn min(self, other: Self) -> Self {
                <$t>::min(self, other)
            }
            #[inline(always)]
            fn max(self, other: Self) -> Self {
                <$t>::max(self, other)
            }
        }
    };
}

impl_real!(f32);
impl_real!(f64);

#[cfg(test)]
mod tests {
    use super::*;

    fn sum_generic<T: Real>(xs: &[T]) -> T {
        xs.iter().copied().sum()
    }

    #[test]
    fn constants_match() {
        assert_eq!(f32::ZERO, 0.0f32);
        assert_eq!(f64::ONE, 1.0f64);
    }

    #[test]
    fn conversions_round_trip() {
        let x = 0.37_f64;
        assert_eq!(f64::from_f64(x), x);
        assert!((f32::from_f64(x).to_f64() - x).abs() < 1e-7);
    }

    #[test]
    fn mul_add_is_fma() {
        // mul_add must match a fused result, not the rounded two-step one.
        let a = 1.0f32 + f32::EPSILON;
        let fused = a.mul_add(a, -1.0);
        assert!(fused != 0.0, "fused multiply-add should keep the low bits");
    }

    #[test]
    fn generic_sum_works_for_both_widths() {
        assert_eq!(sum_generic(&[1.0f32, 2.0, 3.0]), 6.0);
        assert_eq!(sum_generic(&[1.0f64, 2.0, 3.0]), 6.0);
    }

    /// Accumulate generically in the paired accumulation precision —
    /// the shape every mixed-precision consumer uses.
    fn sum_in_accum<T: Real>(xs: &[T]) -> T::Accum {
        let mut acc = <T::Accum as Real>::ZERO;
        for &x in xs {
            acc += x.to_accum();
        }
        acc
    }

    #[test]
    fn accum_widens_f32_sums() {
        // 1 + 2^-30 collapses in f32 but survives an f64 accumulation.
        let tiny = 2f32.powi(-30);
        let xs = [1.0f32, tiny, tiny];
        assert_eq!(xs.iter().copied().sum::<f32>(), 1.0);
        let wide = sum_in_accum(&xs);
        assert!(wide > 1.0);
        assert_eq!(f32::from_accum(wide), 1.0); // narrows back with one rounding
        // f64 accumulates in itself: identity conversions.
        assert_eq!(1.25f64.to_accum(), 1.25);
        assert_eq!(f64::from_accum(1.25), 1.25);
    }

    #[test]
    fn floor_and_abs() {
        assert_eq!((-1.5f32).floor(), -2.0);
        assert_eq!(Real::abs(-2.5f64), 2.5);
        assert_eq!(Real::min(1.0f32, 2.0), 1.0);
        assert_eq!(Real::max(1.0f64, 2.0), 2.0);
    }
}
