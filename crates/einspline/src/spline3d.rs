//! Scalar (single-orbital) 3D tricubic B-spline — the tensor-product
//! reference implementation (paper Eq. 6).
//!
//! The multi-orbital engines in the `bspline` crate are verified against
//! this type: evaluating N independent `Spline3`s must agree with one
//! fused multi-spline sweep.

use crate::basis::BasisWeights;
use crate::grid::{Boundary, Grid1};
use crate::real::Real;
use crate::solver1d::{solve_natural, solve_periodic, COEF_PAD};

/// Value + gradient + symmetric Hessian of a scalar field at a point.
///
/// Hessian components are ordered `xx, xy, xz, yy, yz, zz` (the 6-stream
/// SoA order used throughout the workspace).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Vgh<T> {
    /// Orbital value stream.
    pub v: T,
    /// Gradient storage.
    pub g: [T; 3],
    /// Hessian storage.
    pub h: [T; 6],
}

impl<T: Real> Vgh<T> {
    /// Trace of the Hessian = Laplacian (orthorhombic grid coordinates).
    #[inline]
    pub fn laplacian(&self) -> T {
        self.h[0] + self.h[3] + self.h[5]
    }
}

/// A single tricubic B-spline on a uniform 3D grid.
#[derive(Clone, Debug)]
pub struct Spline3<T> {
    gx: Grid1,
    gy: Grid1,
    gz: Grid1,
    /// Padded coefficients, shape `[nx+3][ny+3][nz+3]`, z fastest.
    coefs: Vec<T>,
    sy: usize, // stride between y-neighbours = nz+3
    sx: usize, // stride between x-neighbours = (ny+3)(nz+3)
}

impl<T: Real> Spline3<T> {
    /// Interpolate samples on the grid. `data` has shape
    /// `[nx][ny][nz]` (z fastest) for periodic grids, or
    /// `[nx+1][ny+1][nz+1]` for natural grids.
    pub fn interpolate(gx: Grid1, gy: Grid1, gz: Grid1, data: &[f64]) -> Self {
        let dim = |g: &Grid1| match g.boundary() {
            Boundary::Periodic => g.num(),
            Boundary::Natural => g.num() + 1,
        };
        let (dx, dy, dz) = (dim(&gx), dim(&gy), dim(&gz));
        assert_eq!(data.len(), dx * dy * dz, "sample array shape mismatch");

        let solve = |g: &Grid1, line: &[f64]| -> Vec<f64> {
            match g.boundary() {
                Boundary::Periodic => solve_periodic(line),
                Boundary::Natural => solve_natural(line),
            }
        };

        // Pass 1: solve along x for every (y,z) -> [nx+3][dy][dz].
        let px = gx.num() + COEF_PAD;
        let mut a = vec![0.0f64; px * dy * dz];
        let mut line = vec![0.0f64; dx];
        for y in 0..dy {
            for z in 0..dz {
                for (x, l) in line.iter_mut().enumerate() {
                    *l = data[(x * dy + y) * dz + z];
                }
                for (x, c) in solve(&gx, &line).into_iter().enumerate() {
                    a[(x * dy + y) * dz + z] = c;
                }
            }
        }

        // Pass 2: solve along y for every (x,z) -> [nx+3][ny+3][dz].
        let py = gy.num() + COEF_PAD;
        let mut b = vec![0.0f64; px * py * dz];
        let mut line = vec![0.0f64; dy];
        for x in 0..px {
            for z in 0..dz {
                for (y, l) in line.iter_mut().enumerate() {
                    *l = a[(x * dy + y) * dz + z];
                }
                for (y, c) in solve(&gy, &line).into_iter().enumerate() {
                    b[(x * py + y) * dz + z] = c;
                }
            }
        }
        drop(a);

        // Pass 3: solve along z for every (x,y) -> [nx+3][ny+3][nz+3].
        let pz = gz.num() + COEF_PAD;
        let mut coefs = vec![T::ZERO; px * py * pz];
        let mut line = vec![0.0f64; dz];
        for x in 0..px {
            for y in 0..py {
                for (z, l) in line.iter_mut().enumerate() {
                    *l = b[(x * py + y) * dz + z];
                }
                for (z, c) in solve(&gz, &line).into_iter().enumerate() {
                    coefs[(x * py + y) * pz + z] = T::from_f64(c);
                }
            }
        }

        Self {
            gx,
            gy,
            gz,
            coefs,
            sy: pz,
            sx: py * pz,
        }
    }

    #[inline]
    /// Grids.
    pub fn grids(&self) -> (&Grid1, &Grid1, &Grid1) {
        (&self.gx, &self.gy, &self.gz)
    }

    /// Padded coefficient dimensions `(nx+3, ny+3, nz+3)`.
    #[inline]
    pub fn padded_dims(&self) -> (usize, usize, usize) {
        (
            self.gx.num() + COEF_PAD,
            self.gy.num() + COEF_PAD,
            self.gz.num() + COEF_PAD,
        )
    }

    /// Padded coefficient at `(ix, iy, iz)` — used to scatter a solved
    /// scalar spline into a multi-orbital table.
    #[inline]
    pub fn coef(&self, ix: usize, iy: usize, iz: usize) -> T {
        self.coefs[ix * self.sx + iy * self.sy + iz]
    }

    /// Value at `(x, y, z)`.
    pub fn value(&self, x: T, y: T, z: T) -> T {
        let (i0, tx) = self.gx.locate(x);
        let (j0, ty) = self.gy.locate(y);
        let (k0, tz) = self.gz.locate(z);
        let a = crate::basis::weights(tx);
        let b = crate::basis::weights(ty);
        let c = crate::basis::weights(tz);

        let mut v = T::ZERO;
        for i in 0..4 {
            for j in 0..4 {
                let base = (i0 + i) * self.sx + (j0 + j) * self.sy + k0;
                let ab = a[i] * b[j];
                let line = &self.coefs[base..base + 4];
                let mut s = T::ZERO;
                for k in 0..4 {
                    s = c[k].mul_add(line[k], s);
                }
                v = ab.mul_add(s, v);
            }
        }
        v
    }

    /// Value, gradient, Hessian at `(x, y, z)` — grid (orthorhombic)
    /// coordinates; derivative scaling by `delta_inv` included.
    pub fn vgh(&self, x: T, y: T, z: T) -> Vgh<T> {
        let (i0, tx) = self.gx.locate(x);
        let (j0, ty) = self.gy.locate(y);
        let (k0, tz) = self.gz.locate(z);
        let wa = BasisWeights::new(tx, T::from_f64(self.gx.delta_inv()));
        let wb = BasisWeights::new(ty, T::from_f64(self.gy.delta_inv()));
        let wc = BasisWeights::new(tz, T::from_f64(self.gz.delta_inv()));

        let mut out = Vgh::<T>::default();
        for i in 0..4 {
            for j in 0..4 {
                let base = (i0 + i) * self.sx + (j0 + j) * self.sy + k0;
                let line = &self.coefs[base..base + 4];
                let (mut s0, mut s1, mut s2) = (T::ZERO, T::ZERO, T::ZERO);
                for k in 0..4 {
                    s0 = wc.a[k].mul_add(line[k], s0);
                    s1 = wc.da[k].mul_add(line[k], s1);
                    s2 = wc.d2a[k].mul_add(line[k], s2);
                }
                out.v = (wa.a[i] * wb.a[j]).mul_add(s0, out.v);
                out.g[0] = (wa.da[i] * wb.a[j]).mul_add(s0, out.g[0]);
                out.g[1] = (wa.a[i] * wb.da[j]).mul_add(s0, out.g[1]);
                out.g[2] = (wa.a[i] * wb.a[j]).mul_add(s1, out.g[2]);
                out.h[0] = (wa.d2a[i] * wb.a[j]).mul_add(s0, out.h[0]);
                out.h[1] = (wa.da[i] * wb.da[j]).mul_add(s0, out.h[1]);
                out.h[2] = (wa.da[i] * wb.a[j]).mul_add(s1, out.h[2]);
                out.h[3] = (wa.a[i] * wb.d2a[j]).mul_add(s0, out.h[3]);
                out.h[4] = (wa.a[i] * wb.da[j]).mul_add(s1, out.h[4]);
                out.h[5] = (wa.a[i] * wb.a[j]).mul_add(s2, out.h[5]);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    fn periodic_grids(n: usize) -> (Grid1, Grid1, Grid1) {
        (
            Grid1::periodic(0.0, 1.0, n),
            Grid1::periodic(0.0, 1.0, n),
            Grid1::periodic(0.0, 1.0, n),
        )
    }

    /// Smooth periodic test field with analytic derivatives.
    fn field(x: f64, y: f64, z: f64) -> f64 {
        (2.0 * PI * x).sin() * (2.0 * PI * y).cos() + 0.5 * (2.0 * PI * z).sin()
    }

    fn sample_field(n: usize) -> Vec<f64> {
        let mut data = vec![0.0; n * n * n];
        for i in 0..n {
            for j in 0..n {
                for k in 0..n {
                    let (x, y, z) = (
                        i as f64 / n as f64,
                        j as f64 / n as f64,
                        k as f64 / n as f64,
                    );
                    data[(i * n + j) * n + k] = field(x, y, z);
                }
            }
        }
        data
    }

    #[test]
    fn interpolates_at_grid_points() {
        let n = 12;
        let (gx, gy, gz) = periodic_grids(n);
        let data = sample_field(n);
        let s = Spline3::<f64>::interpolate(gx, gy, gz, &data);
        for i in (0..n).step_by(3) {
            for j in (0..n).step_by(3) {
                for k in (0..n).step_by(3) {
                    let v = s.value(
                        i as f64 / n as f64,
                        j as f64 / n as f64,
                        k as f64 / n as f64,
                    );
                    let f = data[(i * n + j) * n + k];
                    assert!((v - f).abs() < 1e-10, "({i},{j},{k}) v={v} f={f}");
                }
            }
        }
    }

    #[test]
    fn value_accurate_between_knots() {
        let n = 24;
        let (gx, gy, gz) = periodic_grids(n);
        let s = Spline3::<f64>::interpolate(gx, gy, gz, &sample_field(n));
        for p in 0..40 {
            let x = 0.013 + 0.024 * p as f64;
            let y = 0.71 - 0.013 * p as f64;
            let z = 0.29 + 0.017 * p as f64;
            let v = s.value(x, y, z);
            assert!((v - field(x, y, z)).abs() < 2e-4, "p={p} v={v}");
        }
    }

    #[test]
    fn vgh_value_matches_value() {
        let n = 16;
        let (gx, gy, gz) = periodic_grids(n);
        let s = Spline3::<f64>::interpolate(gx, gy, gz, &sample_field(n));
        for p in 0..20 {
            let (x, y, z) = (0.05 * p as f64, 0.33, 0.77);
            let out = s.vgh(x, y, z);
            assert!((out.v - s.value(x, y, z)).abs() < 1e-14);
        }
    }

    #[test]
    fn gradient_matches_finite_difference() {
        let n = 20;
        let (gx, gy, gz) = periodic_grids(n);
        let s = Spline3::<f64>::interpolate(gx, gy, gz, &sample_field(n));
        let h = 1e-6;
        let pts = [(0.21, 0.43, 0.68), (0.91, 0.11, 0.37), (0.5, 0.5, 0.49)];
        for &(x, y, z) in &pts {
            let out = s.vgh(x, y, z);
            let gx_fd = (s.value(x + h, y, z) - s.value(x - h, y, z)) / (2.0 * h);
            let gy_fd = (s.value(x, y + h, z) - s.value(x, y - h, z)) / (2.0 * h);
            let gz_fd = (s.value(x, y, z + h) - s.value(x, y, z - h)) / (2.0 * h);
            assert!((out.g[0] - gx_fd).abs() < 1e-6, "gx {} {}", out.g[0], gx_fd);
            assert!((out.g[1] - gy_fd).abs() < 1e-6);
            assert!((out.g[2] - gz_fd).abs() < 1e-6);
        }
    }

    #[test]
    fn hessian_matches_finite_difference() {
        let n = 20;
        let (gx, gy, gz) = periodic_grids(n);
        let s = Spline3::<f64>::interpolate(gx, gy, gz, &sample_field(n));
        let h = 1e-4;
        let (x, y, z) = (0.37, 0.58, 0.21);
        let out = s.vgh(x, y, z);
        let v0 = s.value(x, y, z);
        let hxx = (s.value(x + h, y, z) - 2.0 * v0 + s.value(x - h, y, z)) / (h * h);
        let hyy = (s.value(x, y + h, z) - 2.0 * v0 + s.value(x, y - h, z)) / (h * h);
        let hzz = (s.value(x, y, z + h) - 2.0 * v0 + s.value(x, y, z - h)) / (h * h);
        let hxy = (s.value(x + h, y + h, z) - s.value(x + h, y - h, z)
            - s.value(x - h, y + h, z)
            + s.value(x - h, y - h, z))
            / (4.0 * h * h);
        assert!((out.h[0] - hxx).abs() < 1e-3, "hxx {} {}", out.h[0], hxx);
        assert!((out.h[3] - hyy).abs() < 1e-3);
        assert!((out.h[5] - hzz).abs() < 1e-3);
        assert!((out.h[1] - hxy).abs() < 1e-3);
    }

    #[test]
    fn periodic_images_agree() {
        let n = 10;
        let (gx, gy, gz) = periodic_grids(n);
        let s = Spline3::<f64>::interpolate(gx, gy, gz, &sample_field(n));
        let a = s.vgh(0.3, 0.4, 0.5);
        let b = s.vgh(1.3, -0.6, 2.5);
        assert!((a.v - b.v).abs() < 1e-12);
        for d in 0..3 {
            assert!((a.g[d] - b.g[d]).abs() < 1e-11);
        }
    }

    #[test]
    fn anisotropic_grid_dimensions() {
        // 48x48x60-style anisotropy (smaller for test speed): strides and
        // delta_inv scaling must be per-dimension.
        let gx = Grid1::periodic(0.0, 1.0, 6);
        let gy = Grid1::periodic(0.0, 2.0, 8);
        let gz = Grid1::periodic(0.0, 3.0, 10);
        let mut data = vec![0.0; 6 * 8 * 10];
        for i in 0..6 {
            for j in 0..8 {
                for k in 0..10 {
                    let (x, y, z) = (i as f64 / 6.0, 2.0 * j as f64 / 8.0, 3.0 * k as f64 / 10.0);
                    data[(i * 8 + j) * 10 + k] =
                        (2.0 * PI * x).cos() + (PI * y).sin() + (2.0 * PI * z / 3.0).cos();
                }
            }
        }
        let s = Spline3::<f64>::interpolate(gx, gy, gz, &data);
        let h = 1e-6;
        let (x, y, z) = (0.41, 1.37, 2.11);
        let out = s.vgh(x, y, z);
        let gx_fd = (s.value(x + h, y, z) - s.value(x - h, y, z)) / (2.0 * h);
        let gy_fd = (s.value(x, y + h, z) - s.value(x, y - h, z)) / (2.0 * h);
        let gz_fd = (s.value(x, y, z + h) - s.value(x, y, z - h)) / (2.0 * h);
        assert!((out.g[0] - gx_fd).abs() < 1e-5);
        assert!((out.g[1] - gy_fd).abs() < 1e-5);
        assert!((out.g[2] - gz_fd).abs() < 1e-5);
    }

    #[test]
    fn natural_boundary_3d() {
        let g = Grid1::natural(0.0, 1.0, 8);
        let np = 9;
        let mut data = vec![0.0; np * np * np];
        for i in 0..np {
            for j in 0..np {
                for k in 0..np {
                    let (x, y, z) = (i as f64 / 8.0, j as f64 / 8.0, k as f64 / 8.0);
                    data[(i * np + j) * np + k] = x * y + z;
                }
            }
        }
        let s = Spline3::<f64>::interpolate(g, g, g, &data);
        // Bilinear+linear field is exactly representable with natural BC.
        for p in 0..10 {
            let (x, y, z) = (0.1 * p as f64 * 0.99, 0.55, 0.3);
            assert!((s.value(x, y, z) - (x * y + z)).abs() < 1e-9);
        }
    }

    #[test]
    fn laplacian_is_hessian_trace() {
        let v = Vgh::<f64> {
            v: 0.0,
            g: [0.0; 3],
            h: [1.0, 9.0, 9.0, 2.0, 9.0, 3.0],
        };
        assert_eq!(v.laplacian(), 6.0);
    }
}
