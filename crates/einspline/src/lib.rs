//! `einspline` — uniform-grid cubic B-spline substrate.
//!
//! Rust reimplementation of the core of K. Esler's einspline library
//! (<http://einspline.sf.net>), the basis representation underneath
//! QMCPACK's single-particle orbitals and the substrate of the paper
//! *"Optimization and parallelization of B-spline based orbital
//! evaluations in QMC on multi/many-core shared memory processors"*
//! (Mathuriya et al., IPDPS 2017).
//!
//! Provides:
//!
//! * [`basis`] — the four non-zero piecewise-cubic basis weights and their
//!   derivatives (paper Fig. 2);
//! * [`grid`] — uniform grids with periodic/natural boundaries and the
//!   position → (interval, fraction) mapping;
//! * [`solver1d`] — interpolation coefficient solvers (cyclic/natural/
//!   clamped tridiagonal systems);
//! * [`spline1d`] / [`spline3d`] — scalar splines (Jastrow radial
//!   functions; the tensor-product reference for engine validation);
//! * [`multi`] — the 4D table `P[nx][ny][nz][N]` with padded, 64-byte
//!   aligned spline lines consumed by the `bspline` evaluation engines;
//! * [`aligned`] — cache-line aligned storage used throughout.
//!
//! # Quick example
//!
//! ```
//! use einspline::grid::Grid1;
//! use einspline::spline1d::Spline1;
//!
//! let grid = Grid1::periodic(0.0, 1.0, 32);
//! let samples: Vec<f64> = (0..32)
//!     .map(|i| (2.0 * std::f64::consts::PI * i as f64 / 32.0).sin())
//!     .collect();
//! let spline = Spline1::<f64>::interpolate_periodic(grid, &samples);
//! let (v, dv, d2v) = spline.vgl(0.25);
//! assert!((v - 1.0).abs() < 1e-4);       // sin(π/2)
//! assert!(dv.abs() < 1e-3);              // cos(π/2)
//! assert!((d2v + 39.5).abs() < 1.0);     // -4π² sin(π/2)
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]
// The 4-point tensor-product kernels use fixed-trip indexed loops on
// purpose (mirrors the paper's loop structure and vectorizes cleanly).
#![allow(clippy::needless_range_loop)]

pub mod aligned;
pub mod basis;
pub mod grid;
pub mod multi;
pub mod real;
pub mod solver1d;
pub mod spline1d;
pub mod spline3d;

pub use aligned::{padded_len, AlignedVec, CACHE_LINE};
pub use grid::{Boundary, Grid1};
pub use multi::{BlockedCoefs, GridPoint, MultiCoefs, ShardMap};
pub use real::Real;
pub use solver1d::{solve_clamped, solve_natural, solve_periodic};
pub use spline1d::Spline1;
pub use spline3d::{Spline3, Vgh};
