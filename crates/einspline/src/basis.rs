//! Piecewise cubic B-spline basis functions (paper Fig. 2, Eq. 5).
//!
//! For a point with fractional offset `t ∈ [0,1)` inside grid interval
//! `i`, exactly four basis functions are non-zero. Their weights (and
//! first/second derivative weights) are cubic polynomials in `t` derived
//! from the uniform cubic B-spline blending matrix
//!
//! ```text
//!        ⎡ -1  3 -3  1 ⎤
//!  1/6 · ⎢  3 -6  3  0 ⎥   applied to [t³ t² t 1]
//!        ⎢ -3  0  3  0 ⎥
//!        ⎣  1  4  1  0 ⎦
//! ```
//!
//! Weight `w[0]` multiplies the control point at `i-1`, `w[3]` the one at
//! `i+2`. Derivative weights are in units of the *fractional* coordinate;
//! callers scale by `delta_inv` (and `delta_inv²`) for physical
//! derivatives.

use crate::real::Real;

/// The four value weights `b(t)`.
#[inline(always)]
pub fn weights<T: Real>(t: T) -> [T; 4] {
    let one = T::ONE;
    let t2 = t * t;
    let t3 = t2 * t;
    let mt = one - t;
    let sixth = T::from_f64(1.0 / 6.0);
    [
        sixth * mt * mt * mt,
        // (3t³ - 6t² + 4)/6
        sixth * (T::from_f64(3.0) * t3 - T::from_f64(6.0) * t2 + T::from_f64(4.0)),
        // (-3t³ + 3t² + 3t + 1)/6
        sixth
            * (T::from_f64(-3.0) * t3
                + T::from_f64(3.0) * t2
                + T::from_f64(3.0) * t
                + one),
        sixth * t3,
    ]
}

/// The four first-derivative weights `b'(t)` (per unit fractional
/// coordinate).
#[inline(always)]
pub fn d_weights<T: Real>(t: T) -> [T; 4] {
    let one = T::ONE;
    let t2 = t * t;
    let mt = one - t;
    let half = T::from_f64(0.5);
    [
        -half * mt * mt,
        // (3t² - 4t)/2
        half * (T::from_f64(3.0) * t2 - T::from_f64(4.0) * t),
        // (-3t² + 2t + 1)/2
        half * (T::from_f64(-3.0) * t2 + T::from_f64(2.0) * t + one),
        half * t2,
    ]
}

/// The four second-derivative weights `b''(t)` (per unit fractional
/// coordinate squared).
#[inline(always)]
pub fn d2_weights<T: Real>(t: T) -> [T; 4] {
    let one = T::ONE;
    [
        one - t,
        T::from_f64(3.0) * t - T::from_f64(2.0),
        T::from_f64(-3.0) * t + one,
        t,
    ]
}

/// Value + first + second derivative weights in one call, with the
/// derivative weights already scaled to physical units by `delta_inv`.
///
/// This is the per-dimension prefactor block the VGH/VGL kernels consume:
/// `a` multiplies coefficients for values, `da` for gradients, `d2a` for
/// Hessians/Laplacians.
#[derive(Clone, Copy, Debug)]
pub struct BasisWeights<T> {
    /// A.
    pub a: [T; 4],
    /// Da.
    pub da: [T; 4],
    /// D2a.
    pub d2a: [T; 4],
}

impl<T: Real> BasisWeights<T> {
    #[inline(always)]
    /// Create a new instance.
    pub fn new(t: T, delta_inv: T) -> Self {
        let a = weights(t);
        let mut da = d_weights(t);
        let mut d2a = d2_weights(t);
        let di2 = delta_inv * delta_inv;
        for k in 0..4 {
            da[k] *= delta_inv;
            d2a[k] *= di2;
        }
        Self { a, da, d2a }
    }

    /// Value-only weights (kernel `V` needs no derivatives).
    #[inline(always)]
    pub fn value_only(t: T) -> [T; 4] {
        weights(t)
    }
}

/// Evaluate the single basis function `b_{i,3}` centred so that its
/// support is `[i-2, i+2]` in fractional units — used for plotting the
/// Fig. 2 curves and for reference-spline tests.
pub fn basis_function(x: f64) -> f64 {
    let ax = x.abs();
    if ax >= 2.0 {
        0.0
    } else if ax >= 1.0 {
        let u = 2.0 - ax;
        u * u * u / 6.0
    } else {
        // 2/3 - x² + |x|³/2
        2.0 / 3.0 - ax * ax + ax * ax * ax / 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-12;

    #[test]
    fn partition_of_unity() {
        for i in 0..100 {
            let t = i as f64 / 100.0;
            let w = weights(t);
            let s: f64 = w.iter().sum();
            assert!((s - 1.0).abs() < EPS, "t={t} sum={s}");
        }
    }

    #[test]
    fn derivative_weights_sum_to_zero() {
        for i in 0..100 {
            let t = i as f64 / 100.0;
            let d: f64 = d_weights(t).iter().sum();
            let d2: f64 = d2_weights(t).iter().sum();
            assert!(d.abs() < EPS, "t={t} d-sum={d}");
            assert!(d2.abs() < EPS, "t={t} d2-sum={d2}");
        }
    }

    #[test]
    fn knot_values_are_one_sixth_four_sixth() {
        let w = weights(0.0f64);
        assert!((w[0] - 1.0 / 6.0).abs() < EPS);
        assert!((w[1] - 4.0 / 6.0).abs() < EPS);
        assert!((w[2] - 1.0 / 6.0).abs() < EPS);
        assert!(w[3].abs() < EPS);
    }

    #[test]
    fn first_derivative_matches_finite_difference() {
        let h = 1e-6;
        for i in 1..100 {
            let t = i as f64 / 101.0;
            let wp = weights(t + h);
            let wm = weights(t - h);
            let d = d_weights(t);
            for k in 0..4 {
                let fd = (wp[k] - wm[k]) / (2.0 * h);
                assert!((fd - d[k]).abs() < 1e-8, "t={t} k={k} fd={fd} d={}", d[k]);
            }
        }
    }

    #[test]
    fn second_derivative_matches_finite_difference() {
        let h = 1e-5;
        for i in 1..100 {
            let t = i as f64 / 101.0;
            let wp = weights(t + h);
            let w0 = weights(t);
            let wm = weights(t - h);
            let d2 = d2_weights(t);
            for k in 0..4 {
                let fd = (wp[k] - 2.0 * w0[k] + wm[k]) / (h * h);
                assert!(
                    (fd - d2[k]).abs() < 1e-4,
                    "t={t} k={k} fd={fd} d2={}",
                    d2[k]
                );
            }
        }
    }

    #[test]
    fn continuity_across_knot() {
        // Weights at t→1 of interval i must match weights at t=0 of
        // interval i+1 shifted by one slot (C² continuity of the basis).
        let w1 = weights(1.0f64);
        let w0 = weights(0.0f64);
        for k in 0..3 {
            assert!((w1[k + 1] - w0[k]).abs() < EPS);
        }
        assert!(w1[0].abs() < EPS);
    }

    #[test]
    fn scaled_weights_apply_delta_inv() {
        let di = 2.0f64;
        let bw = BasisWeights::new(0.3, di);
        let d = d_weights(0.3f64);
        let d2 = d2_weights(0.3f64);
        for k in 0..4 {
            assert!((bw.da[k] - d[k] * di).abs() < EPS);
            assert!((bw.d2a[k] - d2[k] * di * di).abs() < EPS);
        }
    }

    #[test]
    fn basis_function_card_matches_weights() {
        // b(t - j + 1) for j=0..4 at offset t reproduces weights(t):
        // weight w[j] multiplies control point i-1+j whose basis peak sits
        // at distance |t - (j-1)| from x.
        for i in 0..50 {
            let t = i as f64 / 50.0;
            let w = weights(t);
            for (j, wj) in w.iter().enumerate() {
                let dist = t - (j as f64 - 1.0);
                assert!(
                    (basis_function(dist) - wj).abs() < EPS,
                    "t={t} j={j}"
                );
            }
        }
    }

    #[test]
    fn basis_function_compact_support() {
        assert_eq!(basis_function(2.0), 0.0);
        assert_eq!(basis_function(-2.5), 0.0);
        assert!(basis_function(0.0) > 0.6);
    }

    #[test]
    fn f32_weights_close_to_f64() {
        for i in 0..20 {
            let t = i as f64 / 20.0;
            let w64 = weights(t);
            let w32 = weights(t as f32);
            for k in 0..4 {
                assert!((w64[k] - w32[k] as f64).abs() < 1e-6);
            }
        }
    }
}
