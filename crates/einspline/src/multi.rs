//! The 4D multi-orbital coefficient table `P[nx][ny][nz][N]`.
//!
//! This is the central read-only data structure of the paper: all N
//! orbitals' control points for one grid point are stored contiguously
//! (the spline index is the innermost, unit-stride dimension), so the
//! kernels' inner loops stream through `N` values per grid point. Each
//! dimension is padded by 3 (periodic wrap or boundary ghosts), and the
//! spline dimension is padded to a cache-line multiple and 64-byte
//! aligned (paper Sec. IV: "aligned allocator and includes padding").

use crate::aligned::{padded_len, AlignedVec};
use crate::grid::Grid1;
use crate::real::Real;
use crate::solver1d::COEF_PAD;
use crate::spline3d::Spline3;
use rand::Rng;

/// Location of an evaluation point inside the table: lower-corner indices
/// plus fractional offsets.
#[derive(Clone, Copy, Debug)]
pub struct GridPoint<T> {
    /// I0.
    pub i0: usize,
    /// J0.
    pub j0: usize,
    /// K0.
    pub k0: usize,
    /// Tx.
    pub tx: T,
    /// Ty.
    pub ty: T,
    /// Tz.
    pub tz: T,
}

/// Multi-orbital tricubic B-spline coefficients.
///
/// Layout: `data[((ix·(ny+3) + iy)·(nz+3) + iz)·stride_n + n]` where
/// `stride_n ≥ n_splines` is padded to a full cache line.
#[derive(Debug)]
pub struct MultiCoefs<T> {
    gx: Grid1,
    gy: Grid1,
    gz: Grid1,
    n_splines: usize,
    stride_n: usize,
    sy: usize,
    sx: usize,
    data: AlignedVec<T>,
}

impl<T: Real> Clone for MultiCoefs<T> {
    fn clone(&self) -> Self {
        Self {
            gx: self.gx,
            gy: self.gy,
            gz: self.gz,
            n_splines: self.n_splines,
            stride_n: self.stride_n,
            sy: self.sy,
            sx: self.sx,
            data: self.data.clone(),
        }
    }
}

impl<T: Real> MultiCoefs<T> {
    /// Zero-initialized table for `n_splines` orbitals.
    pub fn new(gx: Grid1, gy: Grid1, gz: Grid1, n_splines: usize) -> Self {
        assert!(n_splines > 0, "need at least one spline");
        let (px, py, pz) = (
            gx.num() + COEF_PAD,
            gy.num() + COEF_PAD,
            gz.num() + COEF_PAD,
        );
        let stride_n = padded_len::<T>(n_splines);
        let data = AlignedVec::zeroed(px * py * pz * stride_n);
        // Explicit-SIMD contract (bspline::simd): every coefficient row
        // must start on a cache-line boundary and span a whole number of
        // cache lines (= a multiple of the widest lane count), so the
        // lane kernels can consume full rows with no ragged tail. Both
        // hold by construction; assert so a future layout change cannot
        // silently reintroduce tail-handling cost in the AoSoA path.
        assert!(
            (stride_n * std::mem::size_of::<T>()).is_multiple_of(crate::aligned::CACHE_LINE),
            "spline stride must be padded to a whole cache line"
        );
        assert!(
            (data.as_ptr() as usize).is_multiple_of(crate::aligned::CACHE_LINE),
            "coefficient table must be cache-line aligned"
        );
        Self {
            gx,
            gy,
            gz,
            n_splines,
            stride_n,
            sy: pz * stride_n,
            sx: py * pz * stride_n,
            data,
        }
    }

    /// Fill every coefficient with uniform random values in `[-0.5, 0.5)`
    /// — the miniQMC benchmarking path (kernel cost is independent of the
    /// coefficient values; see paper Fig. 3, L9). Padding lanes beyond
    /// `n_splines` stay zero so padded output streams remain zero.
    pub fn fill_random<R: Rng>(&mut self, rng: &mut R) {
        let n = self.n_splines;
        let stride = self.stride_n;
        for line in self.data.as_mut_slice().chunks_exact_mut(stride) {
            for x in &mut line[..n] {
                *x = T::from_f64(rng.random::<f64>() - 0.5);
            }
        }
    }

    /// Copy a solved scalar spline into orbital slot `n`.
    ///
    /// Panics if the grids differ or `n` is out of range.
    pub fn set_orbital(&mut self, n: usize, s: &Spline3<T>) {
        assert!(n < self.n_splines, "orbital index out of range");
        let (sgx, sgy, sgz) = s.grids();
        assert_eq!(*sgx, self.gx, "x grid mismatch");
        assert_eq!(*sgy, self.gy, "y grid mismatch");
        assert_eq!(*sgz, self.gz, "z grid mismatch");
        let (px, py, pz) = s.padded_dims();
        for ix in 0..px {
            for iy in 0..py {
                for iz in 0..pz {
                    let off = ix * self.sx + iy * self.sy + iz * self.stride_n + n;
                    self.data[off] = s.coef(ix, iy, iz);
                }
            }
        }
    }

    #[inline]
    /// Number of orbitals N.
    pub fn n_splines(&self) -> usize {
        self.n_splines
    }

    /// Padded spline stride (innermost dimension length).
    #[inline]
    pub fn stride_n(&self) -> usize {
        self.stride_n
    }

    #[inline]
    /// Grids.
    pub fn grids(&self) -> (&Grid1, &Grid1, &Grid1) {
        (&self.gx, &self.gy, &self.gz)
    }

    /// `delta_inv` per dimension, in table precision.
    #[inline]
    pub fn delta_inv(&self) -> [T; 3] {
        [
            T::from_f64(self.gx.delta_inv()),
            T::from_f64(self.gy.delta_inv()),
            T::from_f64(self.gz.delta_inv()),
        ]
    }

    /// Total table footprint in bytes (the paper's `4·Ng·N` for f32).
    #[inline]
    pub fn bytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<T>()
    }

    /// Map a physical position to table indices + fractions.
    #[inline(always)]
    pub fn locate(&self, x: T, y: T, z: T) -> GridPoint<T> {
        let (i0, tx) = self.gx.locate(x);
        let (j0, ty) = self.gy.locate(y);
        let (k0, tz) = self.gz.locate(z);
        GridPoint {
            i0,
            j0,
            k0,
            tx,
            ty,
            tz,
        }
    }

    /// The contiguous coefficient line for grid point `(ix, iy, iz)`:
    /// `stride_n` values, 64-byte aligned.
    #[inline(always)]
    pub fn line(&self, ix: usize, iy: usize, iz: usize) -> &[T] {
        let off = ix * self.sx + iy * self.sy + iz * self.stride_n;
        &self.data.as_slice()[off..off + self.stride_n]
    }

    /// Flat offset of a line — used by the cache-simulator trace
    /// generator to reproduce the physical address stream.
    #[inline]
    pub fn line_offset(&self, ix: usize, iy: usize, iz: usize) -> usize {
        ix * self.sx + iy * self.sy + iz * self.stride_n
    }

    /// Extract the orbital range `[lo, hi)` into a standalone table — the
    /// AoSoA "tile" construction (paper Sec. V-B): the coefficient array
    /// is split along its innermost spline dimension.
    pub fn slice_splines(&self, lo: usize, hi: usize) -> Self {
        assert!(lo < hi && hi <= self.n_splines, "bad spline range");
        let mut out = Self::new(self.gx, self.gy, self.gz, hi - lo);
        let (px, py, pz) = (
            self.gx.num() + COEF_PAD,
            self.gy.num() + COEF_PAD,
            self.gz.num() + COEF_PAD,
        );
        for ix in 0..px {
            for iy in 0..py {
                for iz in 0..pz {
                    let src = ix * self.sx + iy * self.sy + iz * self.stride_n;
                    let dst = ix * out.sx + iy * out.sy + iz * out.stride_n;
                    out.data.as_mut_slice()[dst..dst + (hi - lo)]
                        .copy_from_slice(&self.data.as_slice()[src + lo..src + hi]);
                }
            }
        }
        out
    }

    /// Down-convert a solved double-precision table to single-precision
    /// storage — the paper's production configuration (and QMCPACK's
    /// `--enable-mixed-precision`): coefficients are *solved* in `f64`
    /// ([`crate::solver1d`] is f64-native) and *stored* in `f32`,
    /// halving the memory-bandwidth cost that dominates V/VGL/VGH.
    ///
    /// Every structural invariant is re-established for the narrower
    /// element type: the spline stride is re-padded to a whole cache
    /// line of `f32` (16 lanes, not the f64 table's 8), the allocation
    /// is 64-byte aligned, and padding lanes beyond `n_splines` stay
    /// zero. Each stored coefficient rounds once (≤ 0.5 ulp ≈ 6e-8
    /// relative); the evaluation-side consequences are documented and
    /// tested against `bspline::precision::F32_REL_ERROR_BUDGET`.
    pub fn downcast(&self) -> MultiCoefs<f32>
    where
        T: Real<Accum = f64>,
    {
        let mut out = MultiCoefs::<f32>::new(self.gx, self.gy, self.gz, self.n_splines);
        let (px, py, pz) = (
            self.gx.num() + COEF_PAD,
            self.gy.num() + COEF_PAD,
            self.gz.num() + COEF_PAD,
        );
        for ix in 0..px {
            for iy in 0..py {
                for iz in 0..pz {
                    let src = ix * self.sx + iy * self.sy + iz * self.stride_n;
                    let dst = ix * out.sx + iy * out.sy + iz * out.stride_n;
                    let src_line = &self.data.as_slice()[src..src + self.n_splines];
                    let dst_line = &mut out.data.as_mut_slice()[dst..dst + self.n_splines];
                    for (d, s) in dst_line.iter_mut().zip(src_line) {
                        *d = s.to_accum() as f32;
                    }
                }
            }
        }
        out
    }

    /// Split into `ceil(N / nb)` tiles of (at most) `nb` splines each.
    pub fn split_tiles(&self, nb: usize) -> Vec<Self> {
        assert!(nb > 0);
        (0..self.n_splines)
            .step_by(nb)
            .map(|lo| self.slice_splines(lo, (lo + nb).min(self.n_splines)))
            .collect()
    }

    /// Bytes one spline column occupies across the whole (padded) grid:
    /// the coefficient-slab cost of adding one orbital to a block.
    pub fn bytes_per_spline(&self) -> usize {
        let (px, py, pz) = (
            self.gx.num() + COEF_PAD,
            self.gy.num() + COEF_PAD,
            self.gz.num() + COEF_PAD,
        );
        px * py * pz * std::mem::size_of::<T>()
    }

    /// The widest block (spline count) whose standalone coefficient slab
    /// fits in `budget_bytes`, quantized to the cache-line padding unit
    /// so per-block tables carry no padding waste and block boundaries
    /// in a contiguous output stream stay 64-byte aligned. Never less
    /// than one quantum (a block cannot be narrower than its padded
    /// stride), never more than N.
    pub fn block_splines_for_budget(&self, budget_bytes: usize) -> usize {
        block_splines_for_budget_in::<T>(
            (self.gx.num(), self.gy.num(), self.gz.num()),
            self.n_splines,
            budget_bytes,
        )
    }

    /// Split the table along the spline dimension into independent
    /// cache-budget-sized blocks: each block's coefficient slab is (at
    /// most) `budget_bytes` (subject to the one-quantum floor of
    /// [`Self::block_splines_for_budget`]). Every per-block table is
    /// re-padded and re-aligned to the cache-line quantum by
    /// construction ([`Self::slice_splines`] allocates through
    /// [`Self::new`]), and the returned [`BlockedCoefs`] carries the
    /// orbital → (block, offset) map.
    pub fn split_blocks(&self, budget_bytes: usize) -> BlockedCoefs<T> {
        let nb = self.block_splines_for_budget(budget_bytes);
        BlockedCoefs {
            blocks: self.split_tiles(nb),
            nb,
            n_splines: self.n_splines,
        }
    }
}

/// Table-free twin of [`MultiCoefs::block_splines_for_budget`]: the
/// block width the decomposition picks for a table of `n_splines`
/// orbitals on a `grid` (intervals per dimension, pre-padding) under
/// `budget_bytes` — for model/bench code that must agree with the
/// engine's sizing without allocating a (possibly gigabyte-scale)
/// table. Delegated to by the method, so the two cannot drift.
pub fn block_splines_for_budget_in<T>(
    grid: (usize, usize, usize),
    n_splines: usize,
    budget_bytes: usize,
) -> usize {
    let quantum = padded_len::<T>(1);
    let per_spline = (grid.0 + COEF_PAD)
        * (grid.1 + COEF_PAD)
        * (grid.2 + COEF_PAD)
        * std::mem::size_of::<T>();
    let fit = budget_bytes / (per_spline * quantum).max(1) * quantum;
    // Floor at one quantum, cap at N (which may itself be below a
    // quantum for tiny tables — N wins then: one block).
    fit.max(quantum).min(n_splines.max(1))
}

/// Table-free twin of [`MultiCoefs::bytes`]: the coefficient-table
/// footprint (padded stride included) a table of `n_splines` orbitals
/// on `grid` would occupy — for model/bench code sizing budgets
/// without allocating the table.
pub fn table_bytes_in<T>(grid: (usize, usize, usize), n_splines: usize) -> usize {
    (grid.0 + COEF_PAD)
        * (grid.1 + COEF_PAD)
        * (grid.2 + COEF_PAD)
        * padded_len::<T>(n_splines)
        * std::mem::size_of::<T>()
}

/// A [`MultiCoefs`] table split along its spline dimension into
/// independent cache-sized blocks (the orbital-block decomposition the
/// paper's nested threading schedules over), plus the orbital →
/// (block, offset) map. All blocks except possibly the last hold
/// exactly [`BlockedCoefs::nb`] splines.
#[derive(Debug)]
pub struct BlockedCoefs<T> {
    blocks: Vec<MultiCoefs<T>>,
    nb: usize,
    n_splines: usize,
}

impl<T: Real> BlockedCoefs<T> {
    /// Reassemble from per-block tables built elsewhere (the first-touch
    /// construction path builds each block on its owning thread).
    /// Panics if the blocks are not a uniform-`nb` partition (last block
    /// may be ragged) or disagree on grids.
    pub fn from_blocks(blocks: Vec<MultiCoefs<T>>, nb: usize) -> Self {
        assert!(!blocks.is_empty(), "need at least one block");
        assert!(nb > 0, "block width must be positive");
        let g0 = blocks[0].grids();
        let grids = (*g0.0, *g0.1, *g0.2);
        let mut n_splines = 0;
        for (i, b) in blocks.iter().enumerate() {
            let g = b.grids();
            assert_eq!((*g.0, *g.1, *g.2), grids, "block {i} grid mismatch");
            assert!(
                b.n_splines() == nb || i + 1 == blocks.len(),
                "interior block {i} must hold exactly nb={nb} splines"
            );
            assert!(b.n_splines() <= nb, "block {i} wider than nb={nb}");
            n_splines += b.n_splines();
        }
        Self {
            blocks,
            nb,
            n_splines,
        }
    }

    /// Per-block coefficient tables.
    #[inline]
    pub fn blocks(&self) -> &[MultiCoefs<T>] {
        &self.blocks
    }

    /// Take the per-block tables out.
    pub fn into_blocks(self) -> Vec<MultiCoefs<T>> {
        self.blocks
    }

    /// Number of blocks B.
    #[inline]
    pub fn n_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Block width `nb` the orbital map is laid out with (the last
    /// block may hold fewer splines).
    #[inline]
    pub fn nb(&self) -> usize {
        self.nb
    }

    /// Total number of orbitals N across all blocks.
    #[inline]
    pub fn n_splines(&self) -> usize {
        self.n_splines
    }

    /// Map a global orbital index to `(block, offset)`.
    #[inline]
    pub fn locate_orbital(&self, n: usize) -> (usize, usize) {
        debug_assert!(n < self.n_splines, "orbital index out of range");
        (n / self.nb, n % self.nb)
    }

    /// Global orbital offset of block `b`'s first spline.
    #[inline]
    pub fn block_offset(&self, b: usize) -> usize {
        b * self.nb
    }

    /// Coefficient-slab bytes of the widest block (what the cache
    /// budget bounded).
    pub fn block_bytes(&self) -> usize {
        self.blocks.iter().map(|b| b.bytes()).max().unwrap_or(0)
    }

    /// Partition this block set across `n_domains` memory domains (the
    /// NUMA sharding map; see [`ShardMap::balanced`]).
    pub fn shard_map(&self, n_domains: usize) -> ShardMap {
        ShardMap::balanced(self.blocks.len(), n_domains)
    }
}

/// A balanced contiguous partition of a block set into per-domain
/// shards — the ownership map behind NUMA-domain engine sharding.
///
/// The "blocks" are whatever unit the caller shards over: the
/// [`BlockedCoefs`] orbital blocks for per-domain first-touch
/// construction, or the evaluation service's table-region cells for
/// batch routing. Each domain owns one contiguous run of block ids;
/// the first `n_blocks % n_domains` domains own one extra block, so
/// shard sizes differ by at most one. When `n_domains >= n_blocks`
/// the trailing domains own empty ranges (they still exist, so a
/// replica keyed to such a domain simply never wins affinity).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardMap {
    /// `bounds[d]..bounds[d + 1]` is domain `d`'s block range.
    bounds: Vec<usize>,
}

impl ShardMap {
    /// Balanced contiguous partition of `n_blocks` blocks into
    /// `n_domains` shards. Panics on zero blocks or zero domains.
    pub fn balanced(n_blocks: usize, n_domains: usize) -> Self {
        assert!(n_blocks > 0, "cannot shard an empty block set");
        assert!(n_domains > 0, "need at least one domain");
        let base = n_blocks / n_domains;
        let extra = n_blocks % n_domains;
        let mut bounds = Vec::with_capacity(n_domains + 1);
        let mut at = 0;
        bounds.push(at);
        for d in 0..n_domains {
            at += base + usize::from(d < extra);
            bounds.push(at);
        }
        Self { bounds }
    }

    /// Number of domains (shards).
    #[inline]
    pub fn n_domains(&self) -> usize {
        self.bounds.len() - 1
    }

    /// Number of blocks partitioned.
    #[inline]
    pub fn n_blocks(&self) -> usize {
        *self.bounds.last().expect("bounds never empty")
    }

    /// The domain owning block `b`.
    #[inline]
    pub fn domain_of(&self, b: usize) -> usize {
        debug_assert!(b < self.n_blocks(), "block index out of range");
        // bounds is ascending; partition_point returns how many bounds
        // are <= b, and bounds[0] = 0 is always <= b.
        self.bounds.partition_point(|&lo| lo <= b) - 1
    }

    /// The contiguous block range domain `d` owns (may be empty when
    /// there are more domains than blocks).
    #[inline]
    pub fn blocks_of(&self, d: usize) -> std::ops::Range<usize> {
        self.bounds[d]..self.bounds[d + 1]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small_grids() -> (Grid1, Grid1, Grid1) {
        (
            Grid1::periodic(0.0, 1.0, 6),
            Grid1::periodic(0.0, 1.0, 6),
            Grid1::periodic(0.0, 1.0, 8),
        )
    }

    #[test]
    fn stride_is_padded_and_aligned() {
        let (gx, gy, gz) = small_grids();
        let m = MultiCoefs::<f32>::new(gx, gy, gz, 100);
        assert_eq!(m.stride_n(), 112); // 100 -> 7 cache lines of 16 f32
        assert_eq!(m.n_splines(), 100);
        let line = m.line(3, 2, 1);
        assert_eq!(line.len(), 112);
        assert_eq!(line.as_ptr() as usize % 64, 0);
    }

    #[test]
    fn every_line_is_aligned() {
        let (gx, gy, gz) = small_grids();
        let m = MultiCoefs::<f32>::new(gx, gy, gz, 48);
        for ix in 0..9 {
            for iy in 0..9 {
                for iz in 0..11 {
                    assert_eq!(m.line(ix, iy, iz).as_ptr() as usize % 64, 0);
                }
            }
        }
    }

    #[test]
    fn set_orbital_scatter_gather_roundtrip() {
        let (gx, gy, gz) = small_grids();
        let mut data = vec![0.0f64; 6 * 6 * 8];
        for (i, d) in data.iter_mut().enumerate() {
            *d = (i as f64 * 0.37).sin();
        }
        let s = Spline3::<f32>::interpolate(gx, gy, gz, &data);
        let mut m = MultiCoefs::<f32>::new(gx, gy, gz, 4);
        m.set_orbital(2, &s);
        // The scattered coefficients land in slot 2 of each line.
        for ix in 0..4 {
            for iy in 0..4 {
                for iz in 0..4 {
                    assert_eq!(m.line(ix, iy, iz)[2], s.coef(ix, iy, iz));
                    assert_eq!(m.line(ix, iy, iz)[1], 0.0);
                }
            }
        }
    }

    #[test]
    fn locate_agrees_with_grids() {
        let (gx, gy, gz) = small_grids();
        let m = MultiCoefs::<f32>::new(gx, gy, gz, 8);
        let p = m.locate(0.52f32, 0.17, 0.93);
        let (i0, tx): (usize, f32) = gx.locate(0.52f32);
        assert_eq!(p.i0, i0);
        assert_eq!(p.tx, tx);
        assert!(p.k0 < 8);
        let _ = (p.j0, p.ty, p.tz);
    }

    #[test]
    fn split_tiles_partitions_coefficients() {
        let (gx, gy, gz) = small_grids();
        let mut m = MultiCoefs::<f32>::new(gx, gy, gz, 64);
        let mut rng = StdRng::seed_from_u64(7);
        m.fill_random(&mut rng);
        let tiles = m.split_tiles(16);
        assert_eq!(tiles.len(), 4);
        for (t, tile) in tiles.iter().enumerate() {
            assert_eq!(tile.n_splines(), 16);
            for ix in [0usize, 5] {
                for iy in [1usize, 7] {
                    for iz in [0usize, 9] {
                        let full = m.line(ix, iy, iz);
                        let part = tile.line(ix, iy, iz);
                        assert_eq!(&full[t * 16..(t + 1) * 16], &part[..16]);
                    }
                }
            }
        }
    }

    #[test]
    fn split_tiles_handles_remainder() {
        let (gx, gy, gz) = small_grids();
        let m = MultiCoefs::<f32>::new(gx, gy, gz, 40);
        let tiles = m.split_tiles(16);
        assert_eq!(tiles.len(), 3);
        assert_eq!(tiles[2].n_splines(), 8);
    }

    #[test]
    fn downcast_rounds_once_and_repads_for_f32() {
        let (gx, gy, gz) = small_grids();
        let mut wide = MultiCoefs::<f64>::new(gx, gy, gz, 20);
        wide.fill_random(&mut StdRng::seed_from_u64(5));
        let narrow = wide.downcast();
        assert_eq!(narrow.n_splines(), 20);
        // The f64 table pads 20 -> 24 (8 per line); the f32 table must
        // re-pad to its own cache-line quantum (16 per line -> 32).
        assert_eq!(wide.stride_n(), 24);
        assert_eq!(narrow.stride_n(), 32);
        for ix in [0usize, 4, 8] {
            for iy in [1usize, 7] {
                for iz in [0usize, 10] {
                    let w = wide.line(ix, iy, iz);
                    let n = narrow.line(ix, iy, iz);
                    assert_eq!(n.as_ptr() as usize % 64, 0);
                    for k in 0..20 {
                        // Exactly one correct rounding per coefficient.
                        assert_eq!(n[k], w[k] as f32, "ix={ix} iy={iy} iz={iz} k={k}");
                    }
                    // Padding lanes stay zero in the narrowed table.
                    for k in 20..32 {
                        assert_eq!(n[k], 0.0);
                    }
                }
            }
        }
    }

    #[test]
    fn bytes_accounts_padding() {
        let (gx, gy, gz) = small_grids();
        let m = MultiCoefs::<f32>::new(gx, gy, gz, 16);
        // (6+3)(6+3)(8+3) lines of 16 f32.
        assert_eq!(m.bytes(), 9 * 9 * 11 * 16 * 4);
    }

    #[test]
    fn fill_random_is_deterministic_per_seed() {
        let (gx, gy, gz) = small_grids();
        let mut a = MultiCoefs::<f32>::new(gx, gy, gz, 8);
        let mut b = MultiCoefs::<f32>::new(gx, gy, gz, 8);
        a.fill_random(&mut StdRng::seed_from_u64(42));
        b.fill_random(&mut StdRng::seed_from_u64(42));
        assert_eq!(a.line(1, 2, 3), b.line(1, 2, 3));
    }

    #[test]
    fn block_budget_quantizes_and_clamps() {
        let (gx, gy, gz) = small_grids();
        let m = MultiCoefs::<f32>::new(gx, gy, gz, 100);
        // 9·9·11 grid points · 4 B = 3564 B per spline column.
        assert_eq!(m.bytes_per_spline(), 9 * 9 * 11 * 4);
        // One f32 quantum is 16 splines = 57024 B; a budget below that
        // still yields one quantum (a block cannot be narrower than its
        // padded stride).
        assert_eq!(m.block_splines_for_budget(1), 16);
        // Room for 2 quanta and a bit: floors to the quantum multiple.
        assert_eq!(m.block_splines_for_budget(2 * 16 * 3564 + 100), 32);
        // A huge budget clamps to N.
        assert_eq!(m.block_splines_for_budget(usize::MAX / 2), 100);
        // The table-free twin agrees with the method for every case
        // above (it is the delegation target; assert the public
        // contract anyway).
        for budget in [1usize, 2 * 16 * 3564 + 100, usize::MAX / 2] {
            assert_eq!(
                block_splines_for_budget_in::<f32>((6, 6, 8), 100, budget),
                m.block_splines_for_budget(budget),
                "budget={budget}"
            );
        }
    }

    #[test]
    fn split_blocks_partitions_and_maps_orbitals() {
        let (gx, gy, gz) = small_grids();
        let mut m = MultiCoefs::<f32>::new(gx, gy, gz, 40);
        m.fill_random(&mut StdRng::seed_from_u64(3));
        // Budget for exactly one 16-spline quantum per block.
        let blocked = m.split_blocks(16 * m.bytes_per_spline());
        assert_eq!(blocked.nb(), 16);
        assert_eq!(blocked.n_blocks(), 3);
        assert_eq!(blocked.n_splines(), 40);
        assert_eq!(blocked.blocks()[2].n_splines(), 8); // ragged tail
        assert_eq!(blocked.locate_orbital(0), (0, 0));
        assert_eq!(blocked.locate_orbital(17), (1, 1));
        assert_eq!(blocked.locate_orbital(39), (2, 7));
        assert_eq!(blocked.block_offset(2), 32);
        assert!(blocked.block_bytes() <= 16 * m.bytes_per_spline());
        // Block contents match the source table columns.
        for n in [0usize, 17, 39] {
            let (b, o) = blocked.locate_orbital(n);
            for (ix, iy, iz) in [(0, 0, 0), (3, 5, 7), (8, 8, 10)] {
                assert_eq!(
                    blocked.blocks()[b].line(ix, iy, iz)[o],
                    m.line(ix, iy, iz)[n],
                    "n={n}"
                );
            }
        }
    }

    #[test]
    fn blocked_from_blocks_roundtrip_and_validation() {
        let (gx, gy, gz) = small_grids();
        let mut m = MultiCoefs::<f32>::new(gx, gy, gz, 40);
        m.fill_random(&mut StdRng::seed_from_u64(8));
        let tiles = m.split_tiles(16);
        let blocked = BlockedCoefs::from_blocks(tiles, 16);
        assert_eq!(blocked.n_splines(), 40);
        assert_eq!(blocked.into_blocks().len(), 3);
    }

    #[test]
    #[should_panic(expected = "interior block")]
    fn blocked_from_blocks_rejects_ragged_interior() {
        let (gx, gy, gz) = small_grids();
        let m = MultiCoefs::<f32>::new(gx, gy, gz, 40);
        let mut tiles = m.split_tiles(16);
        tiles.swap(1, 2); // ragged 8-spline block now interior
        let _ = BlockedCoefs::from_blocks(tiles, 16);
    }

    #[test]
    #[should_panic(expected = "orbital index")]
    fn set_orbital_rejects_out_of_range() {
        let (gx, gy, gz) = small_grids();
        let data = vec![0.0f64; 6 * 6 * 8];
        let s = Spline3::<f32>::interpolate(gx, gy, gz, &data);
        let mut m = MultiCoefs::<f32>::new(gx, gy, gz, 2);
        m.set_orbital(2, &s);
    }

    #[test]
    fn shard_map_partitions_balanced_and_contiguous() {
        // 10 blocks over 3 domains: 4 + 3 + 3.
        let map = ShardMap::balanced(10, 3);
        assert_eq!(map.n_domains(), 3);
        assert_eq!(map.n_blocks(), 10);
        assert_eq!(map.blocks_of(0), 0..4);
        assert_eq!(map.blocks_of(1), 4..7);
        assert_eq!(map.blocks_of(2), 7..10);
        // domain_of agrees with the ranges for every block, and sizes
        // differ by at most one.
        for d in 0..map.n_domains() {
            for b in map.blocks_of(d) {
                assert_eq!(map.domain_of(b), d, "block {b}");
            }
            let len = map.blocks_of(d).len();
            assert!((3..=4).contains(&len));
        }
    }

    #[test]
    fn shard_map_single_domain_owns_everything() {
        let map = ShardMap::balanced(7, 1);
        assert_eq!(map.blocks_of(0), 0..7);
        assert_eq!(map.domain_of(6), 0);
    }

    #[test]
    fn shard_map_more_domains_than_blocks_leaves_trailing_empty() {
        let map = ShardMap::balanced(2, 4);
        assert_eq!(map.blocks_of(0), 0..1);
        assert_eq!(map.blocks_of(1), 1..2);
        assert!(map.blocks_of(2).is_empty());
        assert!(map.blocks_of(3).is_empty());
        assert_eq!(map.domain_of(1), 1);
    }

    #[test]
    #[should_panic(expected = "at least one domain")]
    fn shard_map_rejects_zero_domains() {
        let _ = ShardMap::balanced(4, 0);
    }

    #[test]
    fn blocked_coefs_shard_map_covers_all_blocks() {
        let (gx, gy, gz) = small_grids();
        let mut m = MultiCoefs::<f32>::new(gx, gy, gz, 40);
        m.fill_random(&mut StdRng::seed_from_u64(9));
        let blocked = BlockedCoefs::from_blocks(m.split_tiles(16), 16);
        let map = blocked.shard_map(2);
        assert_eq!(map.n_blocks(), blocked.n_blocks());
        let covered: usize = (0..map.n_domains()).map(|d| map.blocks_of(d).len()).sum();
        assert_eq!(covered, blocked.n_blocks());
    }
}
