//! Uniform 1D grids and the position → (interval, fraction) mapping.
//!
//! The spline kernels receive a physical coordinate and need the lower
//! grid index `i0 = floor((x-start)/Δ)` plus the fractional offset
//! `t ∈ [0,1)` (paper Sec. III). For periodic splines the index wraps;
//! for bounded splines it clamps to the valid range.

use crate::real::Real;

/// Boundary behaviour of one grid dimension.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Boundary {
    /// Coordinates wrap modulo the period; `num` intervals cover it.
    Periodic,
    /// Coordinates clamp to `[start, end]`; `num` intervals, natural BC.
    Natural,
}

/// A uniform grid over `[start, end)` with `num` intervals.
///
/// `delta = (end-start)/num`. Grid point `i` sits at `start + i*delta`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Grid1 {
    start: f64,
    end: f64,
    num: usize,
    delta: f64,
    delta_inv: f64,
    boundary: Boundary,
}

impl Grid1 {
    /// Periodic.
    pub fn periodic(start: f64, end: f64, num: usize) -> Self {
        Self::new(start, end, num, Boundary::Periodic)
    }

    /// Natural.
    pub fn natural(start: f64, end: f64, num: usize) -> Self {
        Self::new(start, end, num, Boundary::Natural)
    }

    /// Create a new instance.
    pub fn new(start: f64, end: f64, num: usize, boundary: Boundary) -> Self {
        assert!(num > 0, "grid needs at least one interval");
        assert!(end > start, "grid end must exceed start");
        let delta = (end - start) / num as f64;
        Self {
            start,
            end,
            num,
            delta,
            delta_inv: 1.0 / delta,
            boundary,
        }
    }

    #[inline]
    /// Start.
    pub fn start(&self) -> f64 {
        self.start
    }

    #[inline]
    /// End.
    pub fn end(&self) -> f64 {
        self.end
    }

    /// Number of intervals (== number of independent coefficients for a
    /// periodic spline).
    #[inline]
    pub fn num(&self) -> usize {
        self.num
    }

    #[inline]
    /// Delta.
    pub fn delta(&self) -> f64 {
        self.delta
    }

    #[inline]
    /// Delta inv.
    pub fn delta_inv(&self) -> f64 {
        self.delta_inv
    }

    #[inline]
    /// Boundary.
    pub fn boundary(&self) -> Boundary {
        self.boundary
    }

    /// Physical coordinate of grid point `i`.
    #[inline]
    pub fn point(&self, i: usize) -> f64 {
        self.start + i as f64 * self.delta
    }

    /// Map a coordinate to `(interval index, fractional offset)`.
    ///
    /// Periodic grids wrap any real coordinate; natural grids clamp to the
    /// last interval so out-of-range queries degrade gracefully (QMC moves
    /// are wrapped by the caller's cell, but Jastrow cutoffs rely on the
    /// clamp).
    #[inline]
    pub fn locate<T: Real>(&self, x: T) -> (usize, T) {
        let u = (x.to_f64() - self.start) * self.delta_inv;
        match self.boundary {
            Boundary::Periodic => {
                let n = self.num as f64;
                // rem_euclid keeps u in [0, n) for any input sign.
                let u = u.rem_euclid(n);
                let mut i = u as usize;
                // Guard the u == n edge produced by rounding.
                if i >= self.num {
                    i = 0;
                }
                (i, T::from_f64(u - i as f64))
            }
            Boundary::Natural => {
                let u = u.clamp(0.0, self.num as f64 - f64::EPSILON * self.num as f64);
                let mut i = u as usize;
                if i >= self.num {
                    i = self.num - 1;
                }
                (i, T::from_f64((u - i as f64).clamp(0.0, 1.0)))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_spacing() {
        let g = Grid1::periodic(0.0, 4.0, 8);
        assert_eq!(g.delta(), 0.5);
        assert_eq!(g.point(3), 1.5);
        assert_eq!(g.num(), 8);
    }

    #[test]
    fn locate_interior() {
        let g = Grid1::periodic(0.0, 1.0, 10);
        let (i, t): (usize, f64) = g.locate(0.37);
        assert_eq!(i, 3);
        assert!((t - 0.7).abs() < 1e-12);
    }

    #[test]
    fn locate_wraps_negative_and_beyond() {
        let g = Grid1::periodic(0.0, 1.0, 10);
        let (i, t): (usize, f64) = g.locate(-0.05);
        assert_eq!(i, 9);
        assert!((t - 0.5).abs() < 1e-9);
        let (i2, _): (usize, f64) = g.locate(2.31);
        assert_eq!(i2, 3);
    }

    #[test]
    fn locate_exact_period_boundary() {
        let g = Grid1::periodic(0.0, 1.0, 48);
        let (i, t): (usize, f64) = g.locate(1.0);
        assert_eq!(i, 0);
        assert!(t < 1e-12);
    }

    #[test]
    fn natural_clamps() {
        let g = Grid1::natural(0.0, 2.0, 4);
        let (i, t): (usize, f64) = g.locate(5.0);
        assert_eq!(i, 3);
        assert!((t - 1.0).abs() < 1e-6);
        let (i, t): (usize, f64) = g.locate(-1.0);
        assert_eq!(i, 0);
        assert_eq!(t, 0.0);
    }

    #[test]
    fn locate_nonzero_start() {
        let g = Grid1::periodic(-1.0, 1.0, 8);
        let (i, t): (usize, f64) = g.locate(-0.99);
        assert_eq!(i, 0);
        assert!(t > 0.0 && t < 0.1);
    }

    #[test]
    fn fraction_always_in_unit_interval() {
        let g = Grid1::periodic(0.0, 3.0, 48);
        for k in -200..200 {
            let x = k as f64 * 0.037;
            let (i, t): (usize, f64) = g.locate(x);
            assert!(i < 48);
            assert!((0.0..1.0).contains(&t), "x={x} t={t}");
        }
    }

    #[test]
    #[should_panic(expected = "at least one interval")]
    fn zero_intervals_rejected() {
        let _ = Grid1::periodic(0.0, 1.0, 0);
    }

    #[test]
    #[should_panic(expected = "end must exceed")]
    fn inverted_range_rejected() {
        let _ = Grid1::natural(1.0, 0.0, 4);
    }
}
