//! Cache-line aligned, padded storage for spline tables and SoA outputs.
//!
//! The paper aligns every coefficient line `P[i][j][k]` and every output
//! stream to a 512-bit boundary so vector loads/stores never split cache
//! lines, and pads the spline dimension so the innermost loop has an exact
//! vector trip count. [`AlignedVec`] provides both: a `Vec`-like buffer
//! whose base pointer is 64-byte aligned.

use std::alloc::{alloc_zeroed, dealloc, handle_alloc_error, Layout};
use std::marker::PhantomData;
use std::ops::{Deref, DerefMut, Index, IndexMut};
use std::ptr::NonNull;
use std::slice;

/// Alignment (bytes) of every allocation: one x86 cache line / 512-bit
/// vector register.
pub const CACHE_LINE: usize = 64;

/// Round `n` elements of `T` up so the byte size is a multiple of the
/// cache line, i.e. the padded element count used for the innermost
/// (spline) dimension of SoA layouts.
#[inline]
pub fn padded_len<T>(n: usize) -> usize {
    let per_line = CACHE_LINE / std::mem::size_of::<T>().max(1);
    if per_line <= 1 {
        return n;
    }
    n.div_ceil(per_line) * per_line
}

/// A fixed-size, zero-initialized, 64-byte aligned buffer.
///
/// Unlike `Vec<T>`, the allocation is guaranteed to start on a cache-line
/// boundary, so a slice of it can be handed to vectorized kernels that
/// assume aligned streams. The length is fixed at construction (spline
/// tables never grow), which keeps the type trivially `Send + Sync` for
/// `T: Send + Sync`.
pub struct AlignedVec<T> {
    ptr: NonNull<T>,
    len: usize,
    _marker: PhantomData<T>,
}

// SAFETY: AlignedVec owns its buffer exclusively; it is a plain container.
unsafe impl<T: Send> Send for AlignedVec<T> {}
unsafe impl<T: Sync> Sync for AlignedVec<T> {}

impl<T: Copy + Default> AlignedVec<T> {
    /// Allocate `len` zero-initialized elements aligned to [`CACHE_LINE`].
    pub fn zeroed(len: usize) -> Self {
        if len == 0 {
            return Self {
                ptr: NonNull::dangling(),
                len: 0,
                _marker: PhantomData,
            };
        }
        let layout = Self::layout(len);
        // SAFETY: layout has non-zero size (len > 0, T sized) and valid
        // power-of-two alignment.
        let raw = unsafe { alloc_zeroed(layout) };
        let Some(ptr) = NonNull::new(raw.cast::<T>()) else {
            handle_alloc_error(layout)
        };
        Self {
            ptr,
            len,
            _marker: PhantomData,
        }
    }

    /// Allocate with the length rounded up via [`padded_len`]; the logical
    /// prefix is `n`, the tail stays zero forever (harmless in reductions).
    pub fn zeroed_padded(n: usize) -> Self {
        Self::zeroed(padded_len::<T>(n))
    }

    fn layout(len: usize) -> Layout {
        Layout::from_size_align(len * std::mem::size_of::<T>(), CACHE_LINE)
            .expect("AlignedVec layout overflow")
    }

    /// Reset every element to `T::default()` (zero for floats).
    pub fn fill_default(&mut self) {
        self.as_mut_slice().fill(T::default());
    }
}

impl<T> AlignedVec<T> {
    #[inline]
    /// Number of elements.
    pub fn len(&self) -> usize {
        self.len
    }

    #[inline]
    /// Whether the container is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    #[inline]
    /// As slice.
    pub fn as_slice(&self) -> &[T] {
        // SAFETY: ptr is valid for len elements for the life of self.
        unsafe { slice::from_raw_parts(self.ptr.as_ptr(), self.len) }
    }

    #[inline]
    /// As mut slice.
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        // SAFETY: ptr is valid for len elements; &mut self gives unique
        // access.
        unsafe { slice::from_raw_parts_mut(self.ptr.as_ptr(), self.len) }
    }

    /// Base pointer; guaranteed 64-byte aligned when non-empty.
    #[inline]
    pub fn as_ptr(&self) -> *const T {
        self.ptr.as_ptr()
    }
}

impl<T> Drop for AlignedVec<T> {
    fn drop(&mut self) {
        if self.len != 0 {
            let layout = Layout::from_size_align(
                self.len * std::mem::size_of::<T>(),
                CACHE_LINE,
            )
            .expect("AlignedVec layout overflow");
            // SAFETY: allocated in `zeroed` with the identical layout.
            unsafe { dealloc(self.ptr.as_ptr().cast(), layout) }
        }
    }
}

impl<T: Copy + Default> Clone for AlignedVec<T> {
    fn clone(&self) -> Self {
        let mut out = Self::zeroed(self.len);
        out.as_mut_slice().copy_from_slice(self.as_slice());
        out
    }
}

impl<T> Deref for AlignedVec<T> {
    type Target = [T];
    #[inline]
    fn deref(&self) -> &[T] {
        self.as_slice()
    }
}

impl<T> DerefMut for AlignedVec<T> {
    #[inline]
    fn deref_mut(&mut self) -> &mut [T] {
        self.as_mut_slice()
    }
}

impl<T> Index<usize> for AlignedVec<T> {
    type Output = T;
    #[inline]
    fn index(&self, i: usize) -> &T {
        &self.as_slice()[i]
    }
}

impl<T> IndexMut<usize> for AlignedVec<T> {
    #[inline]
    fn index_mut(&mut self, i: usize) -> &mut T {
        &mut self.as_mut_slice()[i]
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for AlignedVec<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AlignedVec")
            .field("len", &self.len)
            .field("data", &self.as_slice())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_pointer_is_cache_line_aligned() {
        for len in [1usize, 7, 64, 1000, 4096] {
            let v = AlignedVec::<f32>::zeroed(len);
            assert_eq!(v.as_ptr() as usize % CACHE_LINE, 0, "len={len}");
        }
    }

    #[test]
    fn starts_zeroed_and_is_writable() {
        let mut v = AlignedVec::<f32>::zeroed(130);
        assert!(v.iter().all(|&x| x == 0.0));
        v[129] = 3.5;
        assert_eq!(v[129], 3.5);
        v.fill_default();
        assert!(v.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn empty_vec_is_safe() {
        let v = AlignedVec::<f64>::zeroed(0);
        assert!(v.is_empty());
        assert_eq!(v.as_slice().len(), 0);
    }

    #[test]
    fn padded_len_rounds_to_cache_line() {
        // 16 f32 per 64-byte line.
        assert_eq!(padded_len::<f32>(1), 16);
        assert_eq!(padded_len::<f32>(16), 16);
        assert_eq!(padded_len::<f32>(17), 32);
        assert_eq!(padded_len::<f32>(0), 0);
        // 8 f64 per line.
        assert_eq!(padded_len::<f64>(9), 16);
    }

    #[test]
    fn zeroed_padded_pads() {
        let v = AlignedVec::<f32>::zeroed_padded(100);
        assert_eq!(v.len(), 112); // 100 -> 7 lines of 16
    }

    #[test]
    fn clone_copies_contents() {
        let mut v = AlignedVec::<f32>::zeroed(32);
        v[3] = 9.0;
        let w = v.clone();
        assert_eq!(w[3], 9.0);
        assert_eq!(w.len(), 32);
        assert_eq!(w.as_ptr() as usize % CACHE_LINE, 0);
    }

    #[test]
    fn send_sync_impls_exist() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<AlignedVec<f32>>();
    }
}
