//! `BsplineSoA` — Opt A, the AoS→SoA output transformation (paper
//! Fig. 4b).
//!
//! Differences from the baseline that this engine embodies:
//!
//! * every output component is its own aligned, unit-stride, padded
//!   stream — stores are contiguous vector stores, never scatters;
//! * the Hessian is stored symmetric: 6 streams instead of 9
//!   (13 → 10 total output streams for VGH);
//! * the z-dimension loop is unrolled and fused (the optimized QMCPACK
//!   CPU algorithm): per (i,j) plane the kernel forms the three z-line
//!   contractions `s0 = Σₖ c·P`, `s1 = Σₖ c′·P`, `s2 = Σₖ c″·P` in a
//!   single pass over the spline dimension, amortizing 4 coefficient
//!   loads over all 10 accumulations;
//! * the inner trip count is the padded stride (a cache-line multiple),
//!   so the explicit-width kernels never hit a scalar remainder.
//!
//! The kernel bodies live in [`crate::simd`]: explicit lane-width
//! micro-kernels (AVX2+FMA / SSE2 / portable scalar pack, runtime
//! dispatched) that keep all output accumulators in registers across
//! the 4×4 basis unroll and store each stream once per orbital chunk.

use crate::batch::{check_batch, BatchOut, Located, PosBlock};
use crate::layout::Kernel;
use crate::output::WalkerSoA;
use einspline::basis::BasisWeights;
use einspline::multi::MultiCoefs;
use einspline::Real;

/// SoA multi-orbital evaluator (Opt A).
#[derive(Clone, Debug)]
pub struct BsplineSoA<T: Real> {
    coefs: MultiCoefs<T>,
}


/// Ablation variant of [`BsplineSoA::vgh`]: same SoA output streams but
/// with the *naive* 64-point triple loop (no z-unroll fusion) — the
/// literal Fig. 4b structure before the optimized-CPU-algorithm unroll.
/// Used by the `ablations` bench to isolate the z-fusion contribution;
/// results are identical to `vgh` up to floating-point association.
pub fn vgh_naive<T: Real>(engine: &BsplineSoA<T>, pos: [T; 3], out: &mut WalkerSoA<T>) {
    let m = engine.check_out(out);
    let coefs = engine.coefs();
    let p = coefs.locate(pos[0], pos[1], pos[2]);
    let dinv = coefs.delta_inv();
    let wa = BasisWeights::new(p.tx, dinv[0]);
    let wb = BasisWeights::new(p.ty, dinv[1]);
    let wc = BasisWeights::new(p.tz, dinv[2]);
    out.zero_vgh();
    for i in 0..4 {
        for j in 0..4 {
            for k in 0..4 {
                let pv = wa.a[i] * wb.a[j] * wc.a[k];
                let pgx = wa.da[i] * wb.a[j] * wc.a[k];
                let pgy = wa.a[i] * wb.da[j] * wc.a[k];
                let pgz = wa.a[i] * wb.a[j] * wc.da[k];
                let phxx = wa.d2a[i] * wb.a[j] * wc.a[k];
                let phxy = wa.da[i] * wb.da[j] * wc.a[k];
                let phxz = wa.da[i] * wb.a[j] * wc.da[k];
                let phyy = wa.a[i] * wb.d2a[j] * wc.a[k];
                let phyz = wa.a[i] * wb.da[j] * wc.da[k];
                let phzz = wa.a[i] * wb.a[j] * wc.d2a[k];
                let line = &coefs.line(p.i0 + i, p.j0 + j, p.k0 + k)[..m];
                let v = &mut out.v.as_mut_slice()[..m];
                let gx = &mut out.gx.as_mut_slice()[..m];
                let gy = &mut out.gy.as_mut_slice()[..m];
                let gz = &mut out.gz.as_mut_slice()[..m];
                let hxx = &mut out.hxx.as_mut_slice()[..m];
                let hxy = &mut out.hxy.as_mut_slice()[..m];
                let hxz = &mut out.hxz.as_mut_slice()[..m];
                let hyy = &mut out.hyy.as_mut_slice()[..m];
                let hyz = &mut out.hyz.as_mut_slice()[..m];
                let hzz = &mut out.hzz.as_mut_slice()[..m];
                for (nn, &pn) in line.iter().enumerate() {
                    v[nn] = pv.mul_add(pn, v[nn]);
                    gx[nn] = pgx.mul_add(pn, gx[nn]);
                    gy[nn] = pgy.mul_add(pn, gy[nn]);
                    gz[nn] = pgz.mul_add(pn, gz[nn]);
                    hxx[nn] = phxx.mul_add(pn, hxx[nn]);
                    hxy[nn] = phxy.mul_add(pn, hxy[nn]);
                    hxz[nn] = phxz.mul_add(pn, hxz[nn]);
                    hyy[nn] = phyy.mul_add(pn, hyy[nn]);
                    hyz[nn] = phyz.mul_add(pn, hyz[nn]);
                    hzz[nn] = phzz.mul_add(pn, hzz[nn]);
                }
            }
        }
    }
}

impl<T: Real> BsplineSoA<T> {
    /// Create a new instance.
    pub fn new(coefs: MultiCoefs<T>) -> Self {
        Self { coefs }
    }

    #[inline]
    /// The underlying coefficient table.
    pub fn coefs(&self) -> &MultiCoefs<T> {
        &self.coefs
    }

    #[inline]
    /// Number of orbitals N.
    pub fn n_splines(&self) -> usize {
        self.coefs.n_splines()
    }

    /// Padded inner trip count shared with [`WalkerSoA`] buffers.
    #[inline]
    pub fn stride(&self) -> usize {
        self.coefs.stride_n()
    }

    #[inline]
    fn check_out(&self, out: &WalkerSoA<T>) -> usize {
        debug_assert_eq!(
            out.stride(),
            self.stride(),
            "output buffer stride must match the coefficient table"
        );
        self.stride().min(out.stride())
    }

    /// Values only. The value kernel writes a single stream, so SoA
    /// changes nothing over AoS (paper Sec. VI: "Kernel V … does not need
    /// SoA data layout"); it still benefits from the padded trip count.
    pub fn v(&self, pos: [T; 3], out: &mut WalkerSoA<T>) {
        let loc = Located::new(&self.coefs, pos);
        self.v_located(&loc, out);
    }

    /// Value + gradient + Laplacian into 5 SoA streams.
    pub fn vgl(&self, pos: [T; 3], out: &mut WalkerSoA<T>) {
        let loc = Located::new(&self.coefs, pos);
        self.vgl_located(&loc, out);
    }

    /// Value + gradient + symmetric Hessian into 10 SoA streams.
    pub fn vgh(&self, pos: [T; 3], out: &mut WalkerSoA<T>) {
        let loc = Located::new(&self.coefs, pos);
        self.vgh_located(&loc, out);
    }

    /// V kernel body over a pre-located position. Dispatches to the
    /// explicit-width micro-kernel for the active
    /// [`crate::simd::Backend`]; `out.v[..m]` is fully overwritten.
    pub(crate) fn v_located(&self, loc: &Located<T>, out: &mut WalkerSoA<T>) {
        let m = self.check_out(out);
        crate::simd::v_soa(&self.coefs, loc, out.streams_range_mut(0, m));
    }

    /// VGL kernel body over a pre-located position (dispatched
    /// micro-kernel; the five output streams are fully overwritten).
    pub(crate) fn vgl_located(&self, loc: &Located<T>, out: &mut WalkerSoA<T>) {
        let m = self.check_out(out);
        crate::simd::vgl_soa(&self.coefs, loc, out.streams_range_mut(0, m));
    }

    /// VGH kernel body over a pre-located position (dispatched
    /// micro-kernel; the ten output streams are fully overwritten).
    pub(crate) fn vgh_located(&self, loc: &Located<T>, out: &mut WalkerSoA<T>) {
        let m = self.check_out(out);
        crate::simd::vgh_soa(&self.coefs, loc, out.streams_range_mut(0, m));
    }

    /// Single-position kernel body over a pre-located position: same
    /// per-orbital chains as the `*_located` bodies (bit-identical
    /// results), but chunked with one-block-ahead software prefetch of
    /// the 64 coefficient segments — the batch-of-1 fast path under
    /// [`crate::onemove::MoveContext`], where there is no neighbor
    /// position to overlap memory latency with.
    pub(crate) fn eval_one_located(
        &self,
        kernel: Kernel,
        loc: &Located<T>,
        out: &mut WalkerSoA<T>,
    ) {
        let m = self.check_out(out);
        crate::simd::one_soa(kernel, &self.coefs, loc, out.streams_range_mut(0, m));
    }

    /// Kernel body over a pre-located position, writing through a
    /// caller-positioned stream view instead of a whole [`WalkerSoA`] —
    /// the entry point the blocked engine ([`crate::blocked`]) uses to
    /// scatter this engine's orbitals straight into its sub-range of a
    /// shared contiguous output. The view length selects how many of
    /// this engine's orbitals are evaluated (`≤ stride`; ragged lengths
    /// take the micro-kernels' scalar tail).
    pub fn eval_streams(
        &self,
        kernel: Kernel,
        loc: &Located<T>,
        out: crate::output::SoAStreamsMut<'_, T>,
    ) {
        assert!(
            out.len() <= self.stride(),
            "stream view ({}) wider than the coefficient stride ({})",
            out.len(),
            self.stride()
        );
        match kernel {
            Kernel::V => crate::simd::v_soa(&self.coefs, loc, out),
            Kernel::Vgl => crate::simd::vgl_soa(&self.coefs, loc, out),
            Kernel::Vgh => crate::simd::vgh_soa(&self.coefs, loc, out),
        }
    }

    /// Kernel-dispatched body over a pre-located position.
    #[inline]
    pub(crate) fn eval_located(
        &self,
        kernel: Kernel,
        loc: &Located<T>,
        out: &mut WalkerSoA<T>,
    ) {
        match kernel {
            Kernel::V => self.v_located(loc, out),
            Kernel::Vgl => self.vgl_located(loc, out),
            Kernel::Vgh => self.vgh_located(loc, out),
        }
    }

    /// Values for a whole position block; block `i` of `out` receives
    /// position `i`. Basis weights are hoisted: located once per
    /// position up front, then the kernel loops run back-to-back over
    /// the shared coefficient table.
    pub fn v_batch(&self, pos: &PosBlock<T>, out: &mut BatchOut<WalkerSoA<T>>) {
        check_batch(pos.len(), out.len());
        let locs = Located::block(&self.coefs, pos);
        for (loc, block) in locs.iter().zip(out.blocks_mut()) {
            self.v_located(loc, block);
        }
    }

    /// VGL for a whole position block (see [`Self::v_batch`]).
    pub fn vgl_batch(&self, pos: &PosBlock<T>, out: &mut BatchOut<WalkerSoA<T>>) {
        check_batch(pos.len(), out.len());
        let locs = Located::block(&self.coefs, pos);
        for (loc, block) in locs.iter().zip(out.blocks_mut()) {
            self.vgl_located(loc, block);
        }
    }

    /// VGH for a whole position block (see [`Self::v_batch`]).
    pub fn vgh_batch(&self, pos: &PosBlock<T>, out: &mut BatchOut<WalkerSoA<T>>) {
        check_batch(pos.len(), out.len());
        let locs = Located::block(&self.coefs, pos);
        for (loc, block) in locs.iter().zip(out.blocks_mut()) {
            self.vgh_located(loc, block);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aos::BsplineAoS;
    use crate::output::WalkerAoS;
    use einspline::{Grid1, MultiCoefs, Spline3};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn fitted_engine(n_splines: usize) -> (BsplineSoA<f64>, Vec<Spline3<f64>>) {
        let g = Grid1::periodic(0.0, 1.0, 8);
        let mut multi = MultiCoefs::<f64>::new(g, g, g, n_splines);
        let mut refs = Vec::new();
        for s in 0..n_splines {
            let mut data = vec![0.0f64; 8 * 8 * 8];
            for (idx, d) in data.iter_mut().enumerate() {
                *d = ((idx * (2 * s + 5)) as f64 * 0.211).cos();
            }
            let sp = Spline3::<f64>::interpolate(g, g, g, &data);
            multi.set_orbital(s, &sp);
            refs.push(sp);
        }
        (BsplineSoA::new(multi), refs)
    }

    fn random_pair(n: usize, seed: u64) -> (BsplineAoS<f32>, BsplineSoA<f32>) {
        let g = Grid1::periodic(0.0, 1.0, 6);
        let mut multi = MultiCoefs::<f32>::new(g, g, g, n);
        multi.fill_random(&mut StdRng::seed_from_u64(seed));
        (BsplineAoS::new(multi.clone()), BsplineSoA::new(multi))
    }

    #[test]
    fn vgh_matches_scalar_reference() {
        let (engine, refs) = fitted_engine(3);
        let mut out = WalkerSoA::new(3);
        let pos = [0.41f64, 0.83, 0.27];
        engine.vgh(pos, &mut out);
        for (n, r) in refs.iter().enumerate() {
            let e = r.vgh(pos[0], pos[1], pos[2]);
            assert!((out.value(n) - e.v).abs() < 1e-12, "v[{n}]");
            let grad = out.gradient(n);
            let hess = out.hessian(n);
            for d in 0..3 {
                assert!((grad[d] - e.g[d]).abs() < 1e-10, "g[{d}]");
            }
            for r6 in 0..6 {
                assert!((hess[r6] - e.h[r6]).abs() < 1e-9, "h[{r6}]");
            }
        }
    }

    #[test]
    fn agrees_with_aos_engine_on_random_tables() {
        let n = 37; // deliberately not a padding multiple
        let (aos, soa) = random_pair(n, 99);
        let mut out_a = WalkerAoS::new(n);
        let mut out_s = WalkerSoA::new(n);
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..10 {
            let pos = [
                rng.random::<f32>(),
                rng.random::<f32>(),
                rng.random::<f32>(),
            ];
            aos.vgh(pos, &mut out_a);
            soa.vgh(pos, &mut out_s);
            for nn in 0..n {
                assert!((out_a.value(nn) - out_s.value(nn)).abs() < 1e-4);
                let (ga, gs) = (out_a.gradient(nn), out_s.gradient(nn));
                for d in 0..3 {
                    assert!((ga[d] - gs[d]).abs() < 2e-3, "g[{d}] n={nn}");
                }
                let (ha, hs) = (out_a.hessian(nn), out_s.hessian(nn));
                for r6 in 0..6 {
                    assert!((ha[r6] - hs[r6]).abs() < 0.15, "h[{r6}] n={nn}");
                }
            }
        }
    }

    #[test]
    fn vgl_agrees_with_aos_engine() {
        let n = 24;
        let (aos, soa) = random_pair(n, 123);
        let mut out_a = WalkerAoS::new(n);
        let mut out_s = WalkerSoA::new(n);
        let pos = [0.13f32, 0.57, 0.91];
        aos.vgl(pos, &mut out_a);
        soa.vgl(pos, &mut out_s);
        for nn in 0..n {
            assert!((out_a.value(nn) - out_s.value(nn)).abs() < 1e-4);
            assert!(
                (out_a.laplacian(nn) - out_s.laplacian(nn)).abs() < 0.2,
                "l n={nn}: {} vs {}",
                out_a.laplacian(nn),
                out_s.laplacian(nn)
            );
        }
    }

    #[test]
    fn v_kernel_matches_vgh_values() {
        let (engine, _) = fitted_engine(4);
        let mut out_v = WalkerSoA::new(4);
        let mut out_h = WalkerSoA::new(4);
        let pos = [0.77f64, 0.31, 0.66];
        engine.v(pos, &mut out_v);
        engine.vgh(pos, &mut out_h);
        for n in 0..4 {
            assert!((out_v.value(n) - out_h.value(n)).abs() < 1e-13);
        }
    }

    #[test]
    fn vgl_laplacian_equals_vgh_trace() {
        let (engine, _) = fitted_engine(4);
        let mut out_l = WalkerSoA::new(4);
        let mut out_h = WalkerSoA::new(4);
        let pos = [0.19f64, 0.44, 0.95];
        engine.vgl(pos, &mut out_l);
        engine.vgh(pos, &mut out_h);
        for n in 0..4 {
            assert!(
                (out_l.laplacian(n) - out_h.hessian_trace(n)).abs() < 1e-10,
                "n={n}"
            );
        }
    }

    #[test]
    fn padded_tail_stays_zeroed_in_coefficients() {
        // Padding lanes accumulate only zeros: outputs beyond n stay 0.
        let g = Grid1::periodic(0.0, 1.0, 6);
        let mut multi = MultiCoefs::<f32>::new(g, g, g, 5);
        multi.fill_random(&mut StdRng::seed_from_u64(1));
        let engine = BsplineSoA::new(multi);
        let mut out = WalkerSoA::new(5);
        engine.vgh([0.3, 0.6, 0.9], &mut out);
        for idx in 5..out.stride() {
            assert_eq!(out.v[idx], 0.0);
            assert_eq!(out.hzz[idx], 0.0);
        }
    }


    #[test]
    fn naive_vgh_matches_fused_vgh() {
        let n = 29;
        let (_, soa) = random_pair(n, 321);
        let mut fused = WalkerSoA::new(n);
        let mut naive = WalkerSoA::new(n);
        let mut rng = StdRng::seed_from_u64(17);
        for _ in 0..8 {
            let pos = [
                rng.random::<f32>(),
                rng.random::<f32>(),
                rng.random::<f32>(),
            ];
            soa.vgh(pos, &mut fused);
            super::vgh_naive(&soa, pos, &mut naive);
            for k in 0..n {
                assert!((fused.value(k) - naive.value(k)).abs() < 1e-4);
                let (a, b) = (fused.hessian(k), naive.hessian(k));
                for r in 0..6 {
                    assert!((a[r] - b[r]).abs() < 0.2, "h[{r}] {} vs {}", a[r], b[r]);
                }
            }
        }
    }

    #[test]
    fn gradient_matches_finite_difference_of_v() {
        let (engine, _) = fitted_engine(2);
        let mut out = WalkerSoA::new(2);
        let mut vp = WalkerSoA::new(2);
        let mut vm = WalkerSoA::new(2);
        let pos = [0.52f64, 0.33, 0.71];
        let h = 1e-6;
        engine.vgh(pos, &mut out);
        for d in 0..3 {
            let mut pp = pos;
            let mut pm = pos;
            pp[d] += h;
            pm[d] -= h;
            engine.v(pp, &mut vp);
            engine.v(pm, &mut vm);
            for n in 0..2 {
                let fd = (vp.value(n) - vm.value(n)) / (2.0 * h);
                assert!(
                    (out.gradient(n)[d] - fd).abs() < 1e-6,
                    "d={d} n={n}: {} vs {fd}",
                    out.gradient(n)[d]
                );
            }
        }
    }
}
