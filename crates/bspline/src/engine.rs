//! A common interface over the three evaluation engines so drivers,
//! benches and tests can be written once per kernel instead of once per
//! layout.
//!
//! Every method (scalar and batched, all three layouts) funnels into the
//! [`crate::simd`] micro-kernels, so the runtime backend selection
//! (`QMC_SIMD`, [`crate::simd::with_backend`]) applies uniformly behind
//! this trait — callers never dispatch on the instruction set
//! themselves.

use crate::aos::BsplineAoS;
use crate::aosoa::BsplineAoSoA;
use crate::batch::{check_batch, BatchOut, PosBlock};
use crate::layout::{Kernel, Layout};
use crate::onemove::MoveContext;
use crate::output::{WalkerAoS, WalkerSoA, WalkerTiled};
use einspline::Real;

/// A multi-orbital SPO evaluator with layout-specific output buffers.
pub trait SpoEngine<T: Real>: Send + Sync {
    /// Per-walker output block type (the paper's `WalkerAoS`/`WalkerSoA`).
    type Out: Send + Clone;

    /// Number of orbitals N.
    fn n_splines(&self) -> usize;

    /// Which data layout this engine implements.
    fn layout(&self) -> Layout;

    /// Physical evaluation domain per dimension (for sampling random
    /// positions).
    fn domain(&self) -> [(f64, f64); 3];

    /// Allocate a matching output block.
    fn make_out(&self) -> Self::Out;

    /// Values only.
    fn v(&self, pos: [T; 3], out: &mut Self::Out);

    /// Value + gradient + Laplacian.
    fn vgl(&self, pos: [T; 3], out: &mut Self::Out);

    /// Value + gradient + Hessian.
    fn vgh(&self, pos: [T; 3], out: &mut Self::Out);

    /// Dispatch by kernel tag.
    #[inline]
    fn eval(&self, kernel: Kernel, pos: [T; 3], out: &mut Self::Out) {
        match kernel {
            Kernel::V => self.v(pos, out),
            Kernel::Vgl => self.vgl(pos, out),
            Kernel::Vgh => self.vgh(pos, out),
        }
    }

    /// Allocate `batch` per-position output blocks for the batched
    /// entry points. Callers allocate once and reuse across batches.
    fn make_batch_out(&self, batch: usize) -> BatchOut<Self::Out> {
        BatchOut::from_blocks((0..batch).map(|_| self.make_out()).collect())
    }

    /// Values for a whole position block; block `i` of `out` receives
    /// position `i`. The default loops over the scalar [`Self::v`];
    /// engines override it with implementations that hoist the
    /// basis-weight computation and (for AoSoA) batch tile-major.
    fn v_batch(&self, pos: &PosBlock<T>, out: &mut BatchOut<Self::Out>) {
        check_batch(pos.len(), out.len());
        for (i, p) in pos.iter().enumerate() {
            self.v(p, out.block_mut(i));
        }
    }

    /// Value + gradient + Laplacian for a whole position block (see
    /// [`Self::v_batch`]).
    fn vgl_batch(&self, pos: &PosBlock<T>, out: &mut BatchOut<Self::Out>) {
        check_batch(pos.len(), out.len());
        for (i, p) in pos.iter().enumerate() {
            self.vgl(p, out.block_mut(i));
        }
    }

    /// Value + gradient + Hessian for a whole position block (see
    /// [`Self::v_batch`]).
    fn vgh_batch(&self, pos: &PosBlock<T>, out: &mut BatchOut<Self::Out>) {
        check_batch(pos.len(), out.len());
        for (i, p) in pos.iter().enumerate() {
            self.vgh(p, out.block_mut(i));
        }
    }

    /// Dispatch a whole position block by kernel tag.
    #[inline]
    fn eval_batch(&self, kernel: Kernel, pos: &PosBlock<T>, out: &mut BatchOut<Self::Out>) {
        match kernel {
            Kernel::V => self.v_batch(pos, out),
            Kernel::Vgl => self.vgl_batch(pos, out),
            Kernel::Vgh => self.vgh_batch(pos, out),
        }
    }

    /// Values only for one proposed move (the determinant-ratio side of
    /// the single-electron protocol). The grid locate + basis weights
    /// are cached in `ctx` keyed by `pos`, so the accept-side
    /// [`Self::vgl_one`]/[`Self::vgh_one`] on the *same* position reuses
    /// them without recomputation. Results are bit-identical to
    /// [`Self::v`] on every backend, cache hit or miss.
    ///
    /// The default ignores `ctx` and falls back to the scalar path;
    /// engines with a pre-located kernel body override it.
    fn v_one(&self, ctx: &mut MoveContext<T>, pos: [T; 3], out: &mut Self::Out) {
        let _ = ctx;
        self.v(pos, out);
    }

    /// Value + gradient + Laplacian for one move, reusing the
    /// locate/weights cached by a prior [`Self::v_one`] at the same
    /// position (see [`Self::v_one`]; bit-identical to [`Self::vgl`]).
    fn vgl_one(&self, ctx: &mut MoveContext<T>, pos: [T; 3], out: &mut Self::Out) {
        let _ = ctx;
        self.vgl(pos, out);
    }

    /// Value + gradient + Hessian for one move, reusing the
    /// locate/weights cached by a prior [`Self::v_one`] at the same
    /// position (see [`Self::v_one`]; bit-identical to [`Self::vgh`]).
    fn vgh_one(&self, ctx: &mut MoveContext<T>, pos: [T; 3], out: &mut Self::Out) {
        let _ = ctx;
        self.vgh(pos, out);
    }

    /// Dispatch one move by kernel tag (see [`Self::v_one`]).
    #[inline]
    fn eval_one(&self, kernel: Kernel, ctx: &mut MoveContext<T>, pos: [T; 3], out: &mut Self::Out) {
        match kernel {
            Kernel::V => self.v_one(ctx, pos, out),
            Kernel::Vgl => self.vgl_one(ctx, pos, out),
            Kernel::Vgh => self.vgh_one(ctx, pos, out),
        }
    }
}

fn grids_domain<T: Real>(coefs: &einspline::MultiCoefs<T>) -> [(f64, f64); 3] {
    let (gx, gy, gz) = coefs.grids();
    [
        (gx.start(), gx.end()),
        (gy.start(), gy.end()),
        (gz.start(), gz.end()),
    ]
}

impl<T: Real> SpoEngine<T> for BsplineAoS<T> {
    type Out = WalkerAoS<T>;

    fn n_splines(&self) -> usize {
        BsplineAoS::n_splines(self)
    }

    fn layout(&self) -> Layout {
        Layout::Aos
    }

    fn domain(&self) -> [(f64, f64); 3] {
        grids_domain(self.coefs())
    }

    fn make_out(&self) -> WalkerAoS<T> {
        WalkerAoS::new(self.n_splines())
    }

    fn v(&self, pos: [T; 3], out: &mut WalkerAoS<T>) {
        BsplineAoS::v(self, pos, out)
    }

    fn vgl(&self, pos: [T; 3], out: &mut WalkerAoS<T>) {
        BsplineAoS::vgl(self, pos, out)
    }

    fn vgh(&self, pos: [T; 3], out: &mut WalkerAoS<T>) {
        BsplineAoS::vgh(self, pos, out)
    }

    fn v_batch(&self, pos: &PosBlock<T>, out: &mut BatchOut<WalkerAoS<T>>) {
        BsplineAoS::v_batch(self, pos, out)
    }

    fn vgl_batch(&self, pos: &PosBlock<T>, out: &mut BatchOut<WalkerAoS<T>>) {
        BsplineAoS::vgl_batch(self, pos, out)
    }

    fn vgh_batch(&self, pos: &PosBlock<T>, out: &mut BatchOut<WalkerAoS<T>>) {
        BsplineAoS::vgh_batch(self, pos, out)
    }

    fn v_one(&self, ctx: &mut MoveContext<T>, pos: [T; 3], out: &mut WalkerAoS<T>) {
        let loc = ctx.located(self.coefs(), pos);
        self.v_located(&loc, out);
    }

    /// Unlike the scalar [`BsplineAoS::vgl`] (which keeps the baseline's
    /// per-call workspace allocation on purpose), the one-move path runs
    /// through the context's reusable scratch — allocation-free in
    /// steady state.
    fn vgl_one(&self, ctx: &mut MoveContext<T>, pos: [T; 3], out: &mut WalkerAoS<T>) {
        let loc = ctx.located(self.coefs(), pos);
        let n = BsplineAoS::n_splines(self);
        self.vgl_located(&loc, ctx.scratch(n), out);
    }

    fn vgh_one(&self, ctx: &mut MoveContext<T>, pos: [T; 3], out: &mut WalkerAoS<T>) {
        let loc = ctx.located(self.coefs(), pos);
        self.vgh_located(&loc, out);
    }
}

impl<T: Real> SpoEngine<T> for crate::soa::BsplineSoA<T> {
    type Out = WalkerSoA<T>;

    fn n_splines(&self) -> usize {
        crate::soa::BsplineSoA::n_splines(self)
    }

    fn layout(&self) -> Layout {
        Layout::Soa
    }

    fn domain(&self) -> [(f64, f64); 3] {
        grids_domain(self.coefs())
    }

    fn make_out(&self) -> WalkerSoA<T> {
        WalkerSoA::new(self.n_splines())
    }

    fn v(&self, pos: [T; 3], out: &mut WalkerSoA<T>) {
        crate::soa::BsplineSoA::v(self, pos, out)
    }

    fn vgl(&self, pos: [T; 3], out: &mut WalkerSoA<T>) {
        crate::soa::BsplineSoA::vgl(self, pos, out)
    }

    fn vgh(&self, pos: [T; 3], out: &mut WalkerSoA<T>) {
        crate::soa::BsplineSoA::vgh(self, pos, out)
    }

    fn v_batch(&self, pos: &PosBlock<T>, out: &mut BatchOut<WalkerSoA<T>>) {
        crate::soa::BsplineSoA::v_batch(self, pos, out)
    }

    fn vgl_batch(&self, pos: &PosBlock<T>, out: &mut BatchOut<WalkerSoA<T>>) {
        crate::soa::BsplineSoA::vgl_batch(self, pos, out)
    }

    fn vgh_batch(&self, pos: &PosBlock<T>, out: &mut BatchOut<WalkerSoA<T>>) {
        crate::soa::BsplineSoA::vgh_batch(self, pos, out)
    }

    fn v_one(&self, ctx: &mut MoveContext<T>, pos: [T; 3], out: &mut WalkerSoA<T>) {
        let loc = ctx.located(self.coefs(), pos);
        self.eval_one_located(Kernel::V, &loc, out);
    }

    fn vgl_one(&self, ctx: &mut MoveContext<T>, pos: [T; 3], out: &mut WalkerSoA<T>) {
        let loc = ctx.located(self.coefs(), pos);
        self.eval_one_located(Kernel::Vgl, &loc, out);
    }

    fn vgh_one(&self, ctx: &mut MoveContext<T>, pos: [T; 3], out: &mut WalkerSoA<T>) {
        let loc = ctx.located(self.coefs(), pos);
        self.eval_one_located(Kernel::Vgh, &loc, out);
    }
}

impl<T: Real> SpoEngine<T> for BsplineAoSoA<T> {
    type Out = WalkerTiled<T>;

    fn n_splines(&self) -> usize {
        BsplineAoSoA::n_splines(self)
    }

    fn layout(&self) -> Layout {
        Layout::AoSoA
    }

    fn domain(&self) -> [(f64, f64); 3] {
        grids_domain(self.tiles()[0].coefs())
    }

    fn make_out(&self) -> WalkerTiled<T> {
        BsplineAoSoA::make_out(self)
    }

    fn v(&self, pos: [T; 3], out: &mut WalkerTiled<T>) {
        BsplineAoSoA::v(self, pos, out)
    }

    fn vgl(&self, pos: [T; 3], out: &mut WalkerTiled<T>) {
        BsplineAoSoA::vgl(self, pos, out)
    }

    fn vgh(&self, pos: [T; 3], out: &mut WalkerTiled<T>) {
        BsplineAoSoA::vgh(self, pos, out)
    }

    fn v_batch(&self, pos: &PosBlock<T>, out: &mut BatchOut<WalkerTiled<T>>) {
        BsplineAoSoA::v_batch(self, pos, out)
    }

    fn vgl_batch(&self, pos: &PosBlock<T>, out: &mut BatchOut<WalkerTiled<T>>) {
        BsplineAoSoA::vgl_batch(self, pos, out)
    }

    fn vgh_batch(&self, pos: &PosBlock<T>, out: &mut BatchOut<WalkerTiled<T>>) {
        BsplineAoSoA::vgh_batch(self, pos, out)
    }

    fn v_one(&self, ctx: &mut MoveContext<T>, pos: [T; 3], out: &mut WalkerTiled<T>) {
        let loc = ctx.located(self.tiles()[0].coefs(), pos);
        self.eval_one_located(Kernel::V, &loc, out);
    }

    fn vgl_one(&self, ctx: &mut MoveContext<T>, pos: [T; 3], out: &mut WalkerTiled<T>) {
        let loc = ctx.located(self.tiles()[0].coefs(), pos);
        self.eval_one_located(Kernel::Vgl, &loc, out);
    }

    fn vgh_one(&self, ctx: &mut MoveContext<T>, pos: [T; 3], out: &mut WalkerTiled<T>) {
        let loc = ctx.located(self.tiles()[0].coefs(), pos);
        self.eval_one_located(Kernel::Vgh, &loc, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use einspline::{Grid1, MultiCoefs};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn table(n: usize) -> MultiCoefs<f32> {
        let g = Grid1::periodic(0.0, 2.0, 6);
        let mut m = MultiCoefs::<f32>::new(g, g, g, n);
        m.fill_random(&mut StdRng::seed_from_u64(11));
        m
    }

    fn eval_values<E: SpoEngine<f32>>(e: &E, k: Kernel) -> Vec<f32>
    where
        E::Out: ValueView,
    {
        let mut out = e.make_out();
        e.eval(k, [0.3, 0.6, 1.2], &mut out);
        (0..e.n_splines()).map(|n| out.value_at(n)).collect()
    }

    trait ValueView {
        fn value_at(&self, n: usize) -> f32;
    }
    impl ValueView for WalkerAoS<f32> {
        fn value_at(&self, n: usize) -> f32 {
            self.value(n)
        }
    }
    impl ValueView for WalkerSoA<f32> {
        fn value_at(&self, n: usize) -> f32 {
            self.value(n)
        }
    }
    impl ValueView for WalkerTiled<f32> {
        fn value_at(&self, n: usize) -> f32 {
            self.value(n)
        }
    }

    #[test]
    fn all_engines_agree_through_the_trait() {
        let t = table(24);
        let aos = BsplineAoS::new(t.clone());
        let soa = crate::soa::BsplineSoA::new(t.clone());
        let tiled = BsplineAoSoA::from_multi(&t, 8);
        for k in Kernel::ALL {
            let va = eval_values(&aos, k);
            let vs = eval_values(&soa, k);
            let vt = eval_values(&tiled, k);
            for n in 0..24 {
                assert!((va[n] - vs[n]).abs() < 1e-4, "{k} n={n}");
                assert_eq!(vs[n], vt[n], "{k} n={n}");
            }
        }
    }

    #[test]
    fn batched_trait_calls_agree_across_simd_backends() {
        use crate::batch::PosBlock;
        use crate::simd::{with_backend, Backend};
        let t = table(40); // ragged against every lane width
        let tiled = BsplineAoSoA::from_multi(&t, 16);
        let block = PosBlock::from_positions(&[[0.3, 0.6, 1.2], [1.7, 0.2, 0.9]]);
        let reference = with_backend(Backend::Scalar, || {
            let mut out = tiled.make_batch_out(block.len());
            tiled.eval_batch(Kernel::Vgh, &block, &mut out);
            (0..2)
                .flat_map(|p| (0..40).map(move |n| (p, n)))
                .map(|(p, n)| out.block(p).value(n))
                .collect::<Vec<_>>()
        });
        for b in Backend::available() {
            let got = with_backend(b, || {
                let mut out = tiled.make_batch_out(block.len());
                tiled.eval_batch(Kernel::Vgh, &block, &mut out);
                (0..2)
                    .flat_map(|p| (0..40).map(move |n| (p, n)))
                    .map(|(p, n)| out.block(p).value(n))
                    .collect::<Vec<_>>()
            });
            for (i, (r, g)) in reference.iter().zip(&got).enumerate() {
                if b.is_fused() {
                    assert_eq!(r, g, "{b} idx={i}");
                } else {
                    assert!((r - g).abs() < 1e-4, "{b} idx={i}: {r} vs {g}");
                }
            }
        }
    }

    #[test]
    fn layouts_and_domain_are_reported() {
        let t = table(8);
        let aos = BsplineAoS::new(t.clone());
        let soa = crate::soa::BsplineSoA::new(t.clone());
        let tiled = BsplineAoSoA::from_multi(&t, 4);
        assert_eq!(SpoEngine::<f32>::layout(&aos), Layout::Aos);
        assert_eq!(SpoEngine::<f32>::layout(&soa), Layout::Soa);
        assert_eq!(SpoEngine::<f32>::layout(&tiled), Layout::AoSoA);
        assert_eq!(SpoEngine::<f32>::domain(&tiled)[0], (0.0, 2.0));
    }
}
