//! Walker-level and nested (tile-level) parallel execution — Opt C.
//!
//! The classic QMC strategy parallelizes over walkers only
//! ([`run_walkers_parallel`]). The paper's Opt C additionally splits each
//! walker's evaluation across `nth` threads by statically partitioning
//! the M AoSoA tiles into `nth` contiguous chunks
//! ([`run_nested`]); walkers per node shrink by the same factor, so the
//! machine-wide thread count stays constant while the time-to-solution
//! per Monte Carlo generation drops by up to `nth`.
//!
//! The explicit partition mirrors the paper's implementation choice
//! ("an explicit data partition scheme … avoids any potential overhead
//! from OpenMP nested run time environment"): work items are
//! `(walker, tile-chunk)` pairs enumerated up front and handed to rayon
//! as a flat parallel iterator; no nested pool is spawned.
//!
//! Both nested paths flow through the batched evaluation machinery: the
//! per-position grid location + basis weights are hoisted once per
//! walker *before* the parallel region, so every tile chunk reuses the
//! same hoisted `Located` block instead of recomputing it per `(tile,
//! position)` pair. [`run_nested_dynamic`] is the scheduling ablation:
//! single-tile work items handed to the rayon stub's grained dynamic
//! queue (`with_min_len`), for comparing against the static partition
//! on ragged tile counts.

use crate::aosoa::BsplineAoSoA;
use crate::batch::{Located, PosBlock};
use crate::engine::SpoEngine;
use crate::layout::Kernel;
use crate::output::{WalkerSoA, WalkerTiled};
use crate::walker::{run_walker, walker_rng, DriverConfig, KernelTimes};
use einspline::Real;
use rayon::prelude::*;
use std::time::{Duration, Instant};

/// Run all walkers concurrently (one rayon task per walker) and return
/// the wall-clock per-kernel times of the slowest path plus the sum of
/// per-walker times.
pub struct ParallelRun {
    /// Wall-clock duration of the whole parallel region.
    pub wall: Duration,
    /// Sum of per-walker kernel times (CPU-time proxy).
    pub total: KernelTimes,
}

/// Walker-only parallelism: the pre-Opt-C execution model.
pub fn run_walkers_parallel<T: Real, E: SpoEngine<T>>(
    engine: &E,
    cfg: &DriverConfig,
) -> ParallelRun {
    let t0 = Instant::now();
    let times: Vec<KernelTimes> = (0..cfg.n_walkers)
        .into_par_iter()
        .map(|w| run_walker(engine, cfg, w))
        .collect();
    let wall = t0.elapsed();
    let mut total = KernelTimes::default();
    for t in times {
        total.v += t.v;
        total.vgl += t.vgl;
        total.vgh += t.vgh;
    }
    ParallelRun { wall, total }
}

/// Partition `m` tiles into at most `nth` contiguous chunks of nearly
/// equal size. Returns `(lo, hi)` half-open ranges.
pub fn partition_tiles(m: usize, nth: usize) -> Vec<(usize, usize)> {
    assert!(nth > 0, "need at least one thread per walker");
    let chunks = nth.min(m);
    let base = m / chunks;
    let extra = m % chunks;
    let mut out = Vec::with_capacity(chunks);
    let mut lo = 0;
    for c in 0..chunks {
        let len = base + usize::from(c < extra);
        out.push((lo, lo + len));
        lo += len;
    }
    debug_assert_eq!(lo, m);
    out
}

/// Hoist the per-position location + basis weights for every walker's
/// position block (computed serially, outside the timed region — the
/// batched analogue of the paper's shared read-only inputs).
fn locate_walkers<T: Real>(
    engine: &BsplineAoSoA<T>,
    positions: &[PosBlock<T>],
) -> Vec<Vec<Located<T>>> {
    positions.iter().map(|b| engine.locate_block(b)).collect()
}

/// One nested-threading generation: every walker evaluates its position
/// block through `kernel`, with each walker's tiles statically split
/// across `nth` work items. Returns the wall-clock time of the parallel
/// region.
///
/// `walkers[w]` must have been allocated by [`BsplineAoSoA::make_out`].
pub fn run_nested<T: Real>(
    engine: &BsplineAoSoA<T>,
    kernel: Kernel,
    walkers: &mut [WalkerTiled<T>],
    positions: &[PosBlock<T>],
    nth: usize,
) -> Duration {
    assert_eq!(
        walkers.len(),
        positions.len(),
        "one position block per walker"
    );
    let ranges = partition_tiles(engine.n_tiles(), nth);
    let locs = locate_walkers(engine, positions);

    // Flatten (walker, chunk) into independent jobs. Splitting each
    // walker's tile buffers keeps &mut disjointness checkable by the
    // compiler.
    struct Job<'a, T: Real> {
        tiles: &'a mut [WalkerSoA<T>],
        tile_lo: usize,
        locs: &'a [Located<T>],
    }

    let mut jobs: Vec<Job<'_, T>> = Vec::with_capacity(walkers.len() * ranges.len());
    for (w, out) in walkers.iter_mut().enumerate() {
        let mut rest = out.tiles_mut();
        let mut consumed = 0;
        for &(lo, hi) in &ranges {
            let (chunk, tail) = rest.split_at_mut(hi - lo);
            rest = tail;
            jobs.push(Job {
                tiles: chunk,
                tile_lo: consumed,
                locs: &locs[w],
            });
            consumed = hi;
        }
    }

    let t0 = Instant::now();
    jobs.into_par_iter().for_each(|job| {
        for (off, tile_out) in job.tiles.iter_mut().enumerate() {
            let t = job.tile_lo + off;
            for loc in job.locs {
                engine.eval_tile_located(t, kernel, loc, tile_out);
            }
        }
    });
    t0.elapsed()
}

/// Dynamic-scheduling variant of [`run_nested`]: every `(walker, tile)`
/// pair is its own work item, pulled from a shared queue in chunks of
/// `grain` items (the rayon stub's `with_min_len`). On ragged tile
/// counts this keeps all threads busy where the static partition would
/// idle some; the ablations bench measures the trade against the
/// static path's lower scheduling overhead.
pub fn run_nested_dynamic<T: Real>(
    engine: &BsplineAoSoA<T>,
    kernel: Kernel,
    walkers: &mut [WalkerTiled<T>],
    positions: &[PosBlock<T>],
    grain: usize,
) -> Duration {
    assert_eq!(
        walkers.len(),
        positions.len(),
        "one position block per walker"
    );
    let locs = locate_walkers(engine, positions);

    struct Job<'a, T: Real> {
        tile: usize,
        out: &'a mut WalkerSoA<T>,
        locs: &'a [Located<T>],
    }

    let mut jobs: Vec<Job<'_, T>> =
        Vec::with_capacity(walkers.len() * engine.n_tiles());
    for (w, walker_out) in walkers.iter_mut().enumerate() {
        for (t, tile_out) in walker_out.tiles_mut().iter_mut().enumerate() {
            jobs.push(Job {
                tile: t,
                out: tile_out,
                locs: &locs[w],
            });
        }
    }

    let t0 = Instant::now();
    jobs.into_par_iter().with_min_len(grain).for_each(|job| {
        for loc in job.locs {
            engine.eval_tile_located(job.tile, kernel, loc, job.out);
        }
    });
    t0.elapsed()
}

/// Strong-scaling measurement for Fig. 9: with a fixed machine-wide
/// thread budget `total_threads`, run `total_threads / nth` walkers at
/// `nth` threads each and return the wall time of one generation
/// (`ns` positions of `kernel` per walker).
pub fn nested_generation_time<T: Real>(
    engine: &BsplineAoSoA<T>,
    kernel: Kernel,
    total_threads: usize,
    nth: usize,
    ns: usize,
    seed: u64,
) -> Duration {
    let n_walkers = (total_threads / nth).max(1);
    let domain = SpoEngine::<T>::domain(engine);
    let positions: Vec<PosBlock<T>> = (0..n_walkers)
        .map(|w| {
            let mut rng = walker_rng(seed, w);
            PosBlock::random(&mut rng, ns, domain)
        })
        .collect();
    let mut walkers: Vec<WalkerTiled<T>> =
        (0..n_walkers).map(|_| engine.make_out()).collect();
    run_nested(engine, kernel, &mut walkers, &positions, nth)
}

#[cfg(test)]
mod tests {
    use super::*;
    use einspline::{Grid1, MultiCoefs};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiled_engine(n: usize, nb: usize) -> BsplineAoSoA<f32> {
        let g = Grid1::periodic(0.0, 1.0, 6);
        let mut m = MultiCoefs::<f32>::new(g, g, g, n);
        m.fill_random(&mut StdRng::seed_from_u64(77));
        BsplineAoSoA::from_multi(&m, nb)
    }

    fn random_blocks(engine: &BsplineAoSoA<f32>, n_walkers: usize, ns: usize) -> Vec<PosBlock<f32>> {
        let domain = SpoEngine::<f32>::domain(engine);
        let mut rng = StdRng::seed_from_u64(9);
        (0..n_walkers)
            .map(|_| PosBlock::random(&mut rng, ns, domain))
            .collect()
    }

    #[test]
    fn partition_covers_all_tiles() {
        for (m, nth) in [(8, 2), (7, 3), (16, 16), (4, 8), (1, 4), (13, 5)] {
            let ranges = partition_tiles(m, nth);
            assert_eq!(ranges[0].0, 0);
            assert_eq!(ranges.last().unwrap().1, m);
            for w in ranges.windows(2) {
                assert_eq!(w[0].1, w[1].0, "contiguous");
                assert!(w[0].1 > w[0].0, "non-empty");
            }
            assert!(ranges.len() <= nth.min(m));
            // Balanced: sizes differ by at most one.
            let sizes: Vec<usize> = ranges.iter().map(|(l, h)| h - l).collect();
            let (mn, mx) = (
                sizes.iter().min().unwrap(),
                sizes.iter().max().unwrap(),
            );
            assert!(mx - mn <= 1, "m={m} nth={nth} sizes={sizes:?}");
        }
    }

    #[test]
    fn nested_results_match_serial_tiled_eval() {
        let engine = tiled_engine(48, 8);
        let positions = random_blocks(&engine, 2, 3);

        // Serial reference: last position's outputs.
        let mut expect: Vec<WalkerTiled<f32>> =
            (0..2).map(|_| engine.make_out()).collect();
        for (w, out) in expect.iter_mut().enumerate() {
            for p in positions[w].iter() {
                engine.vgh(p, out);
            }
        }

        for nth in [1, 2, 4, 16] {
            let mut walkers: Vec<WalkerTiled<f32>> =
                (0..2).map(|_| engine.make_out()).collect();
            run_nested(&engine, Kernel::Vgh, &mut walkers, &positions, nth);
            for w in 0..2 {
                for n in 0..48 {
                    assert_eq!(
                        walkers[w].value(n),
                        expect[w].value(n),
                        "nth={nth} w={w} n={n}"
                    );
                    assert_eq!(walkers[w].hessian(n), expect[w].hessian(n));
                }
            }
        }
    }

    #[test]
    fn dynamic_scheduling_matches_static() {
        let engine = tiled_engine(56, 8); // 7 tiles: ragged on most nth
        let positions = random_blocks(&engine, 3, 4);
        let mut expect: Vec<WalkerTiled<f32>> =
            (0..3).map(|_| engine.make_out()).collect();
        run_nested(&engine, Kernel::Vgh, &mut expect, &positions, 4);

        for grain in [1, 2, 5, 100] {
            let mut walkers: Vec<WalkerTiled<f32>> =
                (0..3).map(|_| engine.make_out()).collect();
            run_nested_dynamic(&engine, Kernel::Vgh, &mut walkers, &positions, grain);
            for w in 0..3 {
                for n in 0..56 {
                    assert_eq!(
                        walkers[w].value(n),
                        expect[w].value(n),
                        "grain={grain} w={w} n={n}"
                    );
                    assert_eq!(walkers[w].hessian(n), expect[w].hessian(n));
                }
            }
        }
    }

    #[test]
    fn walker_parallel_matches_walker_serial_workload() {
        let engine = tiled_engine(16, 8);
        let cfg = DriverConfig {
            n_walkers: 3,
            n_samples: 4,
            n_iters: 1,
            batch: 2,
            seed: 21,
        };
        let run = run_walkers_parallel(&engine, &cfg);
        assert!(run.wall > Duration::ZERO);
        assert!(run.total.vgh >= run.wall.checked_div(10).unwrap_or_default());
    }

    #[test]
    fn nested_generation_time_runs_all_kernels() {
        let engine = tiled_engine(32, 8);
        for k in Kernel::ALL {
            let d = nested_generation_time(&engine, k, 4, 2, 2, 13);
            assert!(d > Duration::ZERO, "{k}");
        }
    }

    #[test]
    fn more_threads_than_tiles_is_safe() {
        let engine = tiled_engine(16, 8); // 2 tiles
        let d = nested_generation_time(&engine, Kernel::Vgh, 8, 8, 2, 1);
        assert!(d > Duration::ZERO);
    }
}
