//! Walker-level and nested (tile-level) parallel execution — Opt C.
//!
//! The classic QMC strategy parallelizes over walkers only
//! ([`run_walkers_parallel`]). The paper's Opt C additionally splits each
//! walker's evaluation across `nth` threads by statically partitioning
//! the M AoSoA tiles into `nth` contiguous chunks
//! ([`run_nested`]); walkers per node shrink by the same factor, so the
//! machine-wide thread count stays constant while the time-to-solution
//! per Monte Carlo generation drops by up to `nth`.
//!
//! The explicit partition mirrors the paper's implementation choice
//! ("an explicit data partition scheme … avoids any potential overhead
//! from OpenMP nested run time environment"): work items are
//! `(walker, tile-chunk)` pairs enumerated up front and handed to rayon
//! as a flat parallel iterator; no nested pool is spawned.
//!
//! Both nested paths flow through the batched evaluation machinery: the
//! per-position grid location + basis weights are hoisted once per
//! walker *before* the parallel region, so every tile chunk reuses the
//! same hoisted `Located` block instead of recomputing it per `(tile,
//! position)` pair. [`run_nested_dynamic`] is the scheduling ablation:
//! single-tile work items handed to the rayon stub's grained dynamic
//! queue (`with_min_len`), for comparing against the static partition
//! on ragged tile counts.
//!
//! Every entry point is generic over [`EngineRef`], so it runs
//! identically against a borrowed engine (`&engine`, the classic
//! closed-loop call — existing call sites compile unchanged) and
//! against a long-lived [`crate::replica::Replica`] handle (the service
//! path). The SIMD backend the fan-out workers re-arm comes from the
//! `EngineRef`: sampled at call time for a borrow, pinned at mint time
//! for a replica.

use crate::aosoa::BsplineAoSoA;
use crate::batch::{Located, PosBlock};
use crate::blocked::{BlockEngine, BlockedEngine};
use crate::engine::SpoEngine;
use crate::layout::Kernel;
use crate::output::{SoAStreamsMut, WalkerSoA, WalkerTiled};
use crate::replica::EngineRef;
use crate::walker::{run_walker, walker_rng, DriverConfig, KernelTimes};
use einspline::Real;
use rayon::prelude::*;
use std::time::{Duration, Instant};

/// Run all walkers concurrently (one rayon task per walker) and return
/// the wall-clock per-kernel times of the slowest path plus the sum of
/// per-walker times.
pub struct ParallelRun {
    /// Wall-clock duration of the whole parallel region.
    pub wall: Duration,
    /// Sum of per-walker kernel times (CPU-time proxy).
    pub total: KernelTimes,
}

/// Walker-only parallelism: the pre-Opt-C execution model.
pub fn run_walkers_parallel<T: Real, E: SpoEngine<T>, R: EngineRef<E>>(
    engine: R,
    cfg: &DriverConfig,
) -> ParallelRun {
    let eng = engine.engine();
    let backend = engine.backend();
    let t0 = Instant::now();
    let times: Vec<KernelTimes> = (0..cfg.n_walkers)
        .into_par_iter()
        .map(|w| crate::simd::with_backend(backend, || run_walker(eng, cfg, w)))
        .collect();
    let wall = t0.elapsed();
    let mut total = KernelTimes::default();
    for t in times {
        total.v += t.v;
        total.vgl += t.vgl;
        total.vgh += t.vgh;
    }
    ParallelRun { wall, total }
}

/// Partition `m` tiles into at most `nth` contiguous chunks of nearly
/// equal size. Returns `(lo, hi)` half-open ranges — **only non-empty
/// ones**: `min(m, nth)` chunks when `m < nth`, and an empty vector
/// when `m == 0`, so nested schedulers never spawn empty work items
/// (and `m = 0` no longer divides by zero).
pub fn partition_tiles(m: usize, nth: usize) -> Vec<(usize, usize)> {
    assert!(nth > 0, "need at least one thread per walker");
    if m == 0 {
        return Vec::new();
    }
    let chunks = nth.min(m);
    let base = m / chunks;
    let extra = m % chunks;
    let mut out = Vec::with_capacity(chunks);
    let mut lo = 0;
    for c in 0..chunks {
        let len = base + usize::from(c < extra);
        out.push((lo, lo + len));
        lo += len;
    }
    debug_assert_eq!(lo, m);
    out
}

/// Hoist the per-position location + basis weights for every walker's
/// position block (computed serially, outside the timed region — the
/// batched analogue of the paper's shared read-only inputs).
fn locate_walkers<T: Real>(
    engine: &BsplineAoSoA<T>,
    positions: &[PosBlock<T>],
) -> Vec<Vec<Located<T>>> {
    positions.iter().map(|b| engine.locate_block(b)).collect()
}

/// One nested-threading generation: every walker evaluates its position
/// block through `kernel`, with each walker's tiles statically split
/// across `nth` work items. Returns the wall-clock time of the parallel
/// region.
///
/// `walkers[w]` must have been allocated by [`BsplineAoSoA::make_out`].
pub fn run_nested<T: Real, R: EngineRef<BsplineAoSoA<T>>>(
    engine: R,
    kernel: Kernel,
    walkers: &mut [WalkerTiled<T>],
    positions: &[PosBlock<T>],
    nth: usize,
) -> Duration {
    assert_eq!(
        walkers.len(),
        positions.len(),
        "one position block per walker"
    );
    let eng = engine.engine();
    let ranges = partition_tiles(eng.n_tiles(), nth);
    let locs = locate_walkers(eng, positions);

    // Flatten (walker, chunk) into independent jobs. Splitting each
    // walker's tile buffers keeps &mut disjointness checkable by the
    // compiler.
    struct Job<'a, T: Real> {
        tiles: &'a mut [WalkerSoA<T>],
        tile_lo: usize,
        locs: &'a [Located<T>],
    }

    let mut jobs: Vec<Job<'_, T>> = Vec::with_capacity(walkers.len() * ranges.len());
    for (w, out) in walkers.iter_mut().enumerate() {
        let mut rest = out.tiles_mut();
        let mut consumed = 0;
        for &(lo, hi) in &ranges {
            let (chunk, tail) = rest.split_at_mut(hi - lo);
            rest = tail;
            jobs.push(Job {
                tiles: chunk,
                tile_lo: consumed,
                locs: &locs[w],
            });
            consumed = hi;
        }
    }

    // The SIMD force ([`crate::simd::with_backend`]) is thread-local;
    // re-arm the `EngineRef`'s backend inside every worker so
    // scalar-vs-SIMD A/B rows measure the forced backend even when the
    // work fans out to other threads.
    let backend = engine.backend();
    let t0 = Instant::now();
    jobs.into_par_iter().for_each(|job| {
        crate::simd::with_backend(backend, || {
            for (off, tile_out) in job.tiles.iter_mut().enumerate() {
                let t = job.tile_lo + off;
                for loc in job.locs {
                    eng.eval_tile_located(t, kernel, loc, tile_out);
                }
            }
        })
    });
    t0.elapsed()
}

/// Dynamic-scheduling variant of [`run_nested`]: every `(walker, tile)`
/// pair is its own work item, pulled from a shared queue in chunks of
/// `grain` items (the rayon stub's `with_min_len`). On ragged tile
/// counts this keeps all threads busy where the static partition would
/// idle some; the ablations bench measures the trade against the
/// static path's lower scheduling overhead.
pub fn run_nested_dynamic<T: Real, R: EngineRef<BsplineAoSoA<T>>>(
    engine: R,
    kernel: Kernel,
    walkers: &mut [WalkerTiled<T>],
    positions: &[PosBlock<T>],
    grain: usize,
) -> Duration {
    assert_eq!(
        walkers.len(),
        positions.len(),
        "one position block per walker"
    );
    let eng = engine.engine();
    let locs = locate_walkers(eng, positions);

    struct Job<'a, T: Real> {
        tile: usize,
        out: &'a mut WalkerSoA<T>,
        locs: &'a [Located<T>],
    }

    let mut jobs: Vec<Job<'_, T>> =
        Vec::with_capacity(walkers.len() * eng.n_tiles());
    for (w, walker_out) in walkers.iter_mut().enumerate() {
        for (t, tile_out) in walker_out.tiles_mut().iter_mut().enumerate() {
            jobs.push(Job {
                tile: t,
                out: tile_out,
                locs: &locs[w],
            });
        }
    }

    let backend = engine.backend();
    let t0 = Instant::now();
    jobs.into_par_iter().with_min_len(grain).for_each(|job| {
        crate::simd::with_backend(backend, || {
            for loc in job.locs {
                eng.eval_tile_located(job.tile, kernel, loc, job.out);
            }
        })
    });
    t0.elapsed()
}

/// One nested-threading generation over a [`BlockedEngine`]: the
/// walker×block schedule. Each walker's `B` blocks are statically
/// partitioned into `nth` contiguous chunks ([`partition_tiles`]), and
/// every `(walker, chunk)` pair becomes one work item whose mutable
/// target is that walker's [`WalkerSoA::split_streams_mut`] view over
/// the chunk's orbital range — disjointness is borrow-checked, no
/// interior mutability. Work items are enumerated **chunk-major**
/// (outer block chunks, inner walkers), so an under-subscribed or
/// serial schedule sweeps one chunk's cache-sized slabs across every
/// walker's whole position block before touching the next chunk — the
/// generation-level cache blocking the budget sizing is for.
///
/// `walkers[w]` must have been allocated by the engine's `make_out`.
/// Returns the wall-clock time of the parallel region.
pub fn run_nested_blocked<E: BlockEngine, R: EngineRef<BlockedEngine<E>>>(
    engine: R,
    kernel: Kernel,
    walkers: &mut [WalkerSoA<E::Scalar>],
    positions: &[PosBlock<E::Scalar>],
    nth: usize,
) -> Duration {
    assert_eq!(
        walkers.len(),
        positions.len(),
        "one position block per walker"
    );
    let eng = engine.engine();
    let ranges = partition_tiles(eng.n_blocks(), nth);
    let locs: Vec<Vec<Located<E::Scalar>>> =
        positions.iter().map(|b| eng.locate_block(b)).collect();
    let bounds: Vec<(usize, usize)> = ranges
        .iter()
        .map(|&(lo, hi)| eng.chunk_range(lo, hi))
        .collect();

    struct Job<'a, T: Real> {
        view: SoAStreamsMut<'a, T>,
        blocks: (usize, usize),
        /// Global orbital offset of the view's first element.
        base: usize,
        locs: &'a [Located<T>],
    }

    let mut per_walker: Vec<Vec<Option<SoAStreamsMut<'_, E::Scalar>>>> = walkers
        .iter_mut()
        .map(|w| w.split_streams_mut(&bounds).into_iter().map(Some).collect())
        .collect();
    let mut jobs: Vec<Job<'_, E::Scalar>> =
        Vec::with_capacity(ranges.len() * locs.len());
    for (c, &(blo, bhi)) in ranges.iter().enumerate() {
        for (w, views) in per_walker.iter_mut().enumerate() {
            jobs.push(Job {
                view: views[c].take().expect("each chunk view moves once"),
                blocks: (blo, bhi),
                base: bounds[c].0,
                locs: &locs[w],
            });
        }
    }

    let backend = engine.backend();
    let t0 = Instant::now();
    jobs.into_par_iter().for_each(|mut job| {
        crate::simd::with_backend(backend, || {
            for b in job.blocks.0..job.blocks.1 {
                let (lo, hi) = eng.block_range(b);
                for (i, loc) in job.locs.iter().enumerate() {
                    // One evaluation ahead, bounded by this work item's
                    // chunk (blocks past it belong to other threads).
                    eng.prefetch_ahead(b, job.blocks.1, i, job.locs);
                    eng.eval_block_located(
                        b,
                        kernel,
                        loc,
                        job.view.range_mut(lo - job.base, hi - job.base),
                    );
                }
            }
        })
    });
    t0.elapsed()
}

/// Dynamic-scheduling variant of [`run_nested_blocked`]: every
/// `(walker, block)` pair is its own work item, pulled from the rayon
/// stub's shared queue in `grain`-sized chunks (`with_min_len`) — the
/// load-balance ablation for ragged block counts.
pub fn run_nested_blocked_dynamic<E: BlockEngine, R: EngineRef<BlockedEngine<E>>>(
    engine: R,
    kernel: Kernel,
    walkers: &mut [WalkerSoA<E::Scalar>],
    positions: &[PosBlock<E::Scalar>],
    grain: usize,
) -> Duration {
    assert_eq!(
        walkers.len(),
        positions.len(),
        "one position block per walker"
    );
    let eng = engine.engine();
    let locs: Vec<Vec<Located<E::Scalar>>> =
        positions.iter().map(|b| eng.locate_block(b)).collect();
    let bounds: Vec<(usize, usize)> =
        (0..eng.n_blocks()).map(|b| eng.block_range(b)).collect();

    struct Job<'a, T: Real> {
        block: usize,
        view: SoAStreamsMut<'a, T>,
        locs: &'a [Located<T>],
    }

    let mut jobs: Vec<Job<'_, E::Scalar>> =
        Vec::with_capacity(eng.n_blocks() * walkers.len());
    for (w, walker_out) in walkers.iter_mut().enumerate() {
        for (b, view) in walker_out.split_streams_mut(&bounds).into_iter().enumerate() {
            jobs.push(Job {
                block: b,
                view,
                locs: &locs[w],
            });
        }
    }

    let backend = engine.backend();
    let t0 = Instant::now();
    jobs.into_par_iter().with_min_len(grain).for_each(|mut job| {
        crate::simd::with_backend(backend, || {
            for loc in job.locs {
                let len = job.view.len();
                eng.eval_block_located(
                    job.block,
                    kernel,
                    loc,
                    job.view.range_mut(0, len),
                );
            }
        })
    });
    t0.elapsed()
}

/// Strong-scaling measurement for the blocked engine (the Fig. 9 rows'
/// blocked counterpart): with a fixed machine-wide thread budget
/// `total_threads`, run `total_threads / nth` walkers at `nth`
/// threads-per-walker through [`run_nested_blocked`] and return the
/// wall time of one generation.
pub fn blocked_generation_time<E: BlockEngine>(
    engine: &BlockedEngine<E>,
    kernel: Kernel,
    total_threads: usize,
    nth: usize,
    ns: usize,
    seed: u64,
) -> Duration {
    let n_walkers = (total_threads / nth).max(1);
    let domain = SpoEngine::<E::Scalar>::domain(engine);
    let positions: Vec<PosBlock<E::Scalar>> = (0..n_walkers)
        .map(|w| {
            let mut rng = walker_rng(seed, w);
            PosBlock::random(&mut rng, ns, domain)
        })
        .collect();
    let mut walkers: Vec<WalkerSoA<E::Scalar>> =
        (0..n_walkers).map(|_| engine.make_out()).collect();
    run_nested_blocked(engine, kernel, &mut walkers, &positions, nth)
}

/// Strong-scaling measurement for Fig. 9: with a fixed machine-wide
/// thread budget `total_threads`, run `total_threads / nth` walkers at
/// `nth` threads each and return the wall time of one generation
/// (`ns` positions of `kernel` per walker).
pub fn nested_generation_time<T: Real>(
    engine: &BsplineAoSoA<T>,
    kernel: Kernel,
    total_threads: usize,
    nth: usize,
    ns: usize,
    seed: u64,
) -> Duration {
    let n_walkers = (total_threads / nth).max(1);
    let domain = SpoEngine::<T>::domain(engine);
    let positions: Vec<PosBlock<T>> = (0..n_walkers)
        .map(|w| {
            let mut rng = walker_rng(seed, w);
            PosBlock::random(&mut rng, ns, domain)
        })
        .collect();
    let mut walkers: Vec<WalkerTiled<T>> =
        (0..n_walkers).map(|_| engine.make_out()).collect();
    run_nested(engine, kernel, &mut walkers, &positions, nth)
}

#[cfg(test)]
mod tests {
    use super::*;
    use einspline::{Grid1, MultiCoefs};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiled_engine(n: usize, nb: usize) -> BsplineAoSoA<f32> {
        let g = Grid1::periodic(0.0, 1.0, 6);
        let mut m = MultiCoefs::<f32>::new(g, g, g, n);
        m.fill_random(&mut StdRng::seed_from_u64(77));
        BsplineAoSoA::from_multi(&m, nb)
    }

    fn random_blocks(engine: &BsplineAoSoA<f32>, n_walkers: usize, ns: usize) -> Vec<PosBlock<f32>> {
        let domain = SpoEngine::<f32>::domain(engine);
        let mut rng = StdRng::seed_from_u64(9);
        (0..n_walkers)
            .map(|_| PosBlock::random(&mut rng, ns, domain))
            .collect()
    }

    #[test]
    fn partition_covers_all_tiles() {
        for (m, nth) in [(8, 2), (7, 3), (16, 16), (4, 8), (1, 4), (13, 5)] {
            let ranges = partition_tiles(m, nth);
            assert_eq!(ranges[0].0, 0);
            assert_eq!(ranges.last().unwrap().1, m);
            for w in ranges.windows(2) {
                assert_eq!(w[0].1, w[1].0, "contiguous");
                assert!(w[0].1 > w[0].0, "non-empty");
            }
            assert!(ranges.len() <= nth.min(m));
            // Balanced: sizes differ by at most one.
            let sizes: Vec<usize> = ranges.iter().map(|(l, h)| h - l).collect();
            let (mn, mx) = (
                sizes.iter().min().unwrap(),
                sizes.iter().max().unwrap(),
            );
            assert!(mx - mn <= 1, "m={m} nth={nth} sizes={sizes:?}");
        }
    }

    #[test]
    fn nested_results_match_serial_tiled_eval() {
        let engine = tiled_engine(48, 8);
        let positions = random_blocks(&engine, 2, 3);

        // Serial reference: last position's outputs.
        let mut expect: Vec<WalkerTiled<f32>> =
            (0..2).map(|_| engine.make_out()).collect();
        for (w, out) in expect.iter_mut().enumerate() {
            for p in positions[w].iter() {
                engine.vgh(p, out);
            }
        }

        for nth in [1, 2, 4, 16] {
            let mut walkers: Vec<WalkerTiled<f32>> =
                (0..2).map(|_| engine.make_out()).collect();
            run_nested(&engine, Kernel::Vgh, &mut walkers, &positions, nth);
            for w in 0..2 {
                for n in 0..48 {
                    assert_eq!(
                        walkers[w].value(n),
                        expect[w].value(n),
                        "nth={nth} w={w} n={n}"
                    );
                    assert_eq!(walkers[w].hessian(n), expect[w].hessian(n));
                }
            }
        }
    }

    #[test]
    fn dynamic_scheduling_matches_static() {
        let engine = tiled_engine(56, 8); // 7 tiles: ragged on most nth
        let positions = random_blocks(&engine, 3, 4);
        let mut expect: Vec<WalkerTiled<f32>> =
            (0..3).map(|_| engine.make_out()).collect();
        run_nested(&engine, Kernel::Vgh, &mut expect, &positions, 4);

        for grain in [1, 2, 5, 100] {
            let mut walkers: Vec<WalkerTiled<f32>> =
                (0..3).map(|_| engine.make_out()).collect();
            run_nested_dynamic(&engine, Kernel::Vgh, &mut walkers, &positions, grain);
            for w in 0..3 {
                for n in 0..56 {
                    assert_eq!(
                        walkers[w].value(n),
                        expect[w].value(n),
                        "grain={grain} w={w} n={n}"
                    );
                    assert_eq!(walkers[w].hessian(n), expect[w].hessian(n));
                }
            }
        }
    }

    #[test]
    fn partition_of_zero_tiles_is_empty() {
        assert!(partition_tiles(0, 4).is_empty());
        assert!(partition_tiles(0, 1).is_empty());
    }

    fn blocked_engine(n: usize, nb: usize) -> crate::blocked::BlockedEngine<crate::soa::BsplineSoA<f32>> {
        let g = Grid1::periodic(0.0, 1.0, 6);
        let mut m = MultiCoefs::<f32>::new(g, g, g, n);
        m.fill_random(&mut StdRng::seed_from_u64(177));
        crate::blocked::BlockedEngine::with_block_size(&m, nb)
    }

    #[test]
    fn nested_blocked_matches_serial_blocked_eval() {
        let engine = blocked_engine(53, 8); // 7 blocks, ragged tail of 5
        let domain = SpoEngine::<f32>::domain(&engine);
        let mut rng = StdRng::seed_from_u64(4);
        let positions: Vec<PosBlock<f32>> =
            (0..3).map(|_| PosBlock::random(&mut rng, 4, domain)).collect();

        let mut expect: Vec<WalkerSoA<f32>> =
            (0..3).map(|_| engine.make_out()).collect();
        for (w, out) in expect.iter_mut().enumerate() {
            for p in positions[w].iter() {
                engine.vgh(p, out);
            }
        }

        for nth in [1usize, 2, 4, 16] {
            let mut walkers: Vec<WalkerSoA<f32>> =
                (0..3).map(|_| engine.make_out()).collect();
            run_nested_blocked(&engine, Kernel::Vgh, &mut walkers, &positions, nth);
            for w in 0..3 {
                for n in 0..53 {
                    assert_eq!(
                        walkers[w].value(n),
                        expect[w].value(n),
                        "nth={nth} w={w} n={n}"
                    );
                    assert_eq!(walkers[w].hessian(n), expect[w].hessian(n));
                }
            }
        }
    }

    #[test]
    fn dynamic_blocked_matches_static_blocked() {
        let engine = blocked_engine(40, 16); // ragged: blocks of 16,16,8
        let domain = SpoEngine::<f32>::domain(&engine);
        let mut rng = StdRng::seed_from_u64(6);
        let positions: Vec<PosBlock<f32>> =
            (0..2).map(|_| PosBlock::random(&mut rng, 3, domain)).collect();
        let mut expect: Vec<WalkerSoA<f32>> =
            (0..2).map(|_| engine.make_out()).collect();
        run_nested_blocked(&engine, Kernel::Vgh, &mut expect, &positions, 3);
        for grain in [1usize, 2, 7, 100] {
            let mut walkers: Vec<WalkerSoA<f32>> =
                (0..2).map(|_| engine.make_out()).collect();
            run_nested_blocked_dynamic(&engine, Kernel::Vgh, &mut walkers, &positions, grain);
            for w in 0..2 {
                for n in 0..40 {
                    assert_eq!(
                        walkers[w].value(n),
                        expect[w].value(n),
                        "grain={grain} w={w} n={n}"
                    );
                    assert_eq!(walkers[w].hessian(n), expect[w].hessian(n));
                }
            }
        }
    }

    #[test]
    fn blocked_generation_time_runs_all_kernels() {
        let engine = blocked_engine(32, 8);
        for k in Kernel::ALL {
            let d = blocked_generation_time(&engine, k, 4, 2, 2, 13);
            assert!(d > Duration::ZERO, "{k}");
        }
        // More threads than blocks is safe (chunks clamp to B).
        let d = blocked_generation_time(&engine, Kernel::Vgh, 8, 8, 2, 1);
        assert!(d > Duration::ZERO);
    }

    #[test]
    fn nested_workers_inherit_the_forced_backend() {
        use crate::simd::{with_backend, Backend};
        // Scalar-pack forcing must survive the fan-out: the nested run
        // under a scalar force must equal a plain scalar-forced serial
        // loop even if the stub spawns worker threads.
        let engine = blocked_engine(24, 8);
        let domain = SpoEngine::<f32>::domain(&engine);
        let mut rng = StdRng::seed_from_u64(11);
        let positions = vec![PosBlock::random(&mut rng, 3, domain)];
        let mut serial = engine.make_out();
        with_backend(Backend::Scalar, || {
            for p in positions[0].iter() {
                engine.vgh(p, &mut serial);
            }
        });
        let mut nested = vec![engine.make_out()];
        with_backend(Backend::Scalar, || {
            run_nested_blocked(&engine, Kernel::Vgh, &mut nested, &positions, 4);
        });
        for n in 0..24 {
            assert_eq!(serial.value(n), nested[0].value(n), "n={n}");
        }
    }

    #[test]
    fn replica_handle_drives_the_same_nested_code_path() {
        use crate::replica::EngineCell;
        // One code path for closed-loop and service execution: a
        // Replica handle through run_nested* must be bit-identical to
        // the borrowed-engine call.
        let engine = tiled_engine(40, 8);
        let positions = random_blocks(&engine, 2, 3);
        let mut borrowed: Vec<WalkerTiled<f32>> =
            (0..2).map(|_| engine.make_out()).collect();
        run_nested(&engine, Kernel::Vgh, &mut borrowed, &positions, 4);

        let cell = EngineCell::new(engine);
        let replica = cell.handle();
        let mut via: Vec<WalkerTiled<f32>> =
            (0..2).map(|_| cell.engine().make_out()).collect();
        run_nested(replica, Kernel::Vgh, &mut via, &positions, 4);
        for w in 0..2 {
            for n in 0..40 {
                assert_eq!(borrowed[w].value(n), via[w].value(n), "w={w} n={n}");
                assert_eq!(borrowed[w].hessian(n), via[w].hessian(n));
            }
        }
    }

    #[test]
    fn replica_pinned_backend_survives_the_fan_out() {
        use crate::replica::EngineCell;
        use crate::simd::{with_backend, Backend};
        // A replica minted under a scalar force evaluates scalar even
        // when the nested run is issued outside the force.
        let engine = blocked_engine(24, 8);
        let domain = SpoEngine::<f32>::domain(&engine);
        let mut rng = StdRng::seed_from_u64(12);
        let positions = vec![PosBlock::random(&mut rng, 3, domain)];
        let mut serial = engine.make_out();
        with_backend(Backend::Scalar, || {
            for p in positions[0].iter() {
                engine.vgh(p, &mut serial);
            }
        });
        let cell = EngineCell::new(engine);
        let replica = with_backend(Backend::Scalar, || cell.handle());
        let mut nested = vec![cell.engine().make_out()];
        run_nested_blocked(replica, Kernel::Vgh, &mut nested, &positions, 4);
        for n in 0..24 {
            assert_eq!(serial.value(n), nested[0].value(n), "n={n}");
        }
    }

    #[test]
    fn walker_parallel_matches_walker_serial_workload() {
        let engine = tiled_engine(16, 8);
        let cfg = DriverConfig {
            n_walkers: 3,
            n_samples: 4,
            n_iters: 1,
            batch: 2,
            seed: 21,
        };
        let run = run_walkers_parallel(&engine, &cfg);
        assert!(run.wall > Duration::ZERO);
        // The per-walker timers must have accumulated. (Do not compare
        // against a fraction of `wall`: on a loaded shared host the
        // parallel region's wall clock can inflate arbitrarily while
        // the summed kernel time stays small, which made the old
        // `vgh ≥ wall/10` form flaky.)
        assert!(run.total.vgh > Duration::ZERO);
    }

    #[test]
    fn nested_generation_time_runs_all_kernels() {
        let engine = tiled_engine(32, 8);
        for k in Kernel::ALL {
            let d = nested_generation_time(&engine, k, 4, 2, 2, 13);
            assert!(d > Duration::ZERO, "{k}");
        }
    }

    #[test]
    fn more_threads_than_tiles_is_safe() {
        let engine = tiled_engine(16, 8); // 2 tiles
        let d = nested_generation_time(&engine, Kernel::Vgh, 8, 8, 2, 1);
        assert!(d > Duration::ZERO);
    }
}
