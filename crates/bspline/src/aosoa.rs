//! `BsplineAoSoA` — Opt B, the tiling / AoSoA transformation (paper
//! Sec. V-B, Fig. 5b and Fig. 6).
//!
//! The spline dimension N — innermost and contiguous for both inputs and
//! outputs after Opt A — is split into `M = ⌈N/Nb⌉` tiles. Each tile is a
//! complete, independent [`BsplineSoA`] engine over its own
//! `P[nx][ny][nz][Nb]` block plus matching `Nb`-sized outputs, so:
//!
//! * the *output* working set per evaluation shrinks from `40·N` bytes to
//!   `40·Nb` bytes (fits L1/L2 → fast reductions: the KNC/KNL win);
//! * the *input* block shrinks to `4·Ng·Nb` bytes (fits a shared LLC for
//!   small `Nb`: the BDW/BG/Q win);
//! * tiles share nothing and can run on different threads (Opt C).
//!
//! The optimal `Nb` depends only on the cache hierarchy, not on N.

use crate::batch::{check_batch, BatchOut, Located, PosBlock};
use crate::layout::Kernel;
use crate::output::{WalkerSoA, WalkerTiled};
use crate::soa::BsplineSoA;
use einspline::multi::MultiCoefs;
use einspline::Real;

/// Tiled (AoSoA) multi-orbital evaluator (Opt B).
#[derive(Clone, Debug)]
pub struct BsplineAoSoA<T: Real> {
    tiles: Vec<BsplineSoA<T>>,
    nb: usize,
    n_splines: usize,
}

impl<T: Real> BsplineAoSoA<T> {
    /// Split an existing coefficient table into tiles of `nb` splines.
    pub fn from_multi(coefs: &MultiCoefs<T>, nb: usize) -> Self {
        assert!(nb > 0, "tile size must be positive");
        let n_splines = coefs.n_splines();
        let tiles = coefs
            .split_tiles(nb)
            .into_iter()
            .map(BsplineSoA::new)
            .collect();
        Self {
            tiles,
            nb,
            n_splines,
        }
    }

    /// Tile size `Nb` (last tile may hold fewer splines).
    #[inline]
    pub fn nb(&self) -> usize {
        self.nb
    }

    /// Number of tiles `M`.
    #[inline]
    pub fn n_tiles(&self) -> usize {
        self.tiles.len()
    }

    #[inline]
    /// Number of orbitals N.
    pub fn n_splines(&self) -> usize {
        self.n_splines
    }

    #[inline]
    /// Tiles.
    pub fn tiles(&self) -> &[BsplineSoA<T>] {
        &self.tiles
    }

    /// Allocate a matching tiled output block.
    pub fn make_out(&self) -> WalkerTiled<T> {
        let sizes: Vec<usize> = self.tiles.iter().map(|t| t.n_splines()).collect();
        WalkerTiled::new(&sizes, self.nb)
    }

    /// Evaluate one tile only — the unit of work for nested threading.
    #[inline]
    pub fn eval_tile(
        &self,
        t: usize,
        kernel: Kernel,
        pos: [T; 3],
        out: &mut WalkerSoA<T>,
    ) {
        let tile = &self.tiles[t];
        match kernel {
            Kernel::V => tile.v(pos, out),
            Kernel::Vgl => tile.vgl(pos, out),
            Kernel::Vgh => tile.vgh(pos, out),
        }
    }

    /// Values for all tiles, serially.
    pub fn v(&self, pos: [T; 3], out: &mut WalkerTiled<T>) {
        for (t, tile) in self.tiles.iter().enumerate() {
            tile.v(pos, out.tile_mut(t));
        }
    }

    /// Value + gradient + Laplacian for all tiles, serially.
    pub fn vgl(&self, pos: [T; 3], out: &mut WalkerTiled<T>) {
        for (t, tile) in self.tiles.iter().enumerate() {
            tile.vgl(pos, out.tile_mut(t));
        }
    }

    /// Value + gradient + Hessian for all tiles, serially.
    pub fn vgh(&self, pos: [T; 3], out: &mut WalkerTiled<T>) {
        for (t, tile) in self.tiles.iter().enumerate() {
            tile.vgh(pos, out.tile_mut(t));
        }
    }

    /// Bytes of coefficient data touched per evaluation of one tile
    /// (`4·64·Nb_padded` for f32) — used by the roofline accounting.
    pub fn tile_input_bytes(&self) -> usize {
        64 * self.tiles[0].stride() * std::mem::size_of::<T>()
    }

    /// Evaluate one tile over a pre-located position — the batched unit
    /// of work for nested threading (the locate + basis-weight block is
    /// shared across all tiles instead of recomputed per tile).
    #[inline]
    pub(crate) fn eval_tile_located(
        &self,
        t: usize,
        kernel: Kernel,
        loc: &Located<T>,
        out: &mut WalkerSoA<T>,
    ) {
        self.tiles[t].eval_located(kernel, loc, out);
    }

    /// Locate every position of a block against the (shared) tile grids.
    #[inline]
    pub(crate) fn locate_block(&self, pos: &PosBlock<T>) -> Vec<Located<T>> {
        // All tiles share the same grids; tile 0 always exists.
        Located::block(self.tiles[0].coefs(), pos)
    }

    /// All tiles over one pre-located position — the one-move body: the
    /// locate/weights hoist is shared by every tile (the scalar paths
    /// recompute it per tile on the same floats, so results are
    /// bit-identical), and each tile's coefficient runs are prefetched
    /// while the previous tile computes.
    #[inline]
    pub(crate) fn eval_one_located(
        &self,
        kernel: Kernel,
        loc: &Located<T>,
        out: &mut WalkerTiled<T>,
    ) {
        for t in 0..self.tiles.len() {
            if let Some(next) = self.tiles.get(t + 1) {
                crate::simd::prefetch_tile(next.coefs(), loc);
            }
            self.eval_tile_located(t, kernel, loc, out.tile_mut(t));
        }
    }

    /// Evaluate a batch of positions **tile-major** (paper Fig. 6: the
    /// tile loop outside the position loop), which is the actual
    /// cache-blocking: one tile's coefficient block stays hot across all
    /// `positions` before the next tile is touched. `out` is overwritten
    /// per position; after the call it holds the last position's outputs
    /// (bench/tuning use only).
    pub fn eval_batch_tile_major(
        &self,
        kernel: Kernel,
        positions: &[[T; 3]],
        out: &mut WalkerTiled<T>,
    ) {
        let coefs = self.tiles[0].coefs();
        let locs: Vec<Located<T>> =
            positions.iter().map(|p| Located::new(coefs, *p)).collect();
        for (t, tile_out) in out.tiles_mut().iter_mut().enumerate() {
            for (i, loc) in locs.iter().enumerate() {
                // Pull the coefficient runs one evaluation ahead into
                // L2 while the current one computes: the same tile's
                // next position, or the next tile's first position at
                // the tile switch (`simd` feature only; no-op
                // elsewhere).
                self.prefetch_ahead(t, i, &locs);
                self.eval_tile_located(t, kernel, loc, tile_out);
            }
        }
    }

    /// Prefetch one evaluation ahead of `(t, i)` in a tile-major sweep
    /// over `locs` (see [`Self::eval_batch_tile_major`]).
    #[inline]
    fn prefetch_ahead(&self, t: usize, i: usize, locs: &[Located<T>]) {
        let (tile, loc) = match locs.get(i + 1) {
            Some(next) => (self.tiles.get(t), Some(next)),
            None => (self.tiles.get(t + 1), locs.first()),
        };
        if let (Some(tile), Some(loc)) = (tile, loc) {
            crate::simd::prefetch_tile(tile.coefs(), loc);
        }
    }

    /// Kernel-dispatched batch evaluation, tile-major with per-position
    /// retained outputs: block `i` of `out` receives position `i`.
    ///
    /// This is the cache-blocking transpose of the scalar position-major
    /// order: the position loop is *innermost*, so one tile's
    /// coefficient block (`4·Ng·Nb` bytes) and `Nb`-sized output stripe
    /// stay hot across the whole batch before the next tile is touched,
    /// and the per-position basis weights are computed once for all `M`
    /// tiles instead of `M` times. Each (tile, position) evaluation runs
    /// through the explicit-width micro-kernels of [`crate::simd`]: the
    /// tile's coefficient rows are consumed at full SIMD width with all
    /// output accumulators in registers, and because tile strides are
    /// lane-padded ([`crate::layout::max_lanes`]) the inner loops never
    /// execute a ragged `m % LANES` tail.
    pub fn eval_batch(
        &self,
        kernel: Kernel,
        pos: &PosBlock<T>,
        out: &mut BatchOut<WalkerTiled<T>>,
    ) {
        check_batch(pos.len(), out.len());
        let locs = self.locate_block(pos);
        for t in 0..self.tiles.len() {
            for (i, (loc, block)) in locs.iter().zip(out.blocks_mut()).enumerate() {
                self.prefetch_ahead(t, i, &locs);
                self.eval_tile_located(t, kernel, loc, block.tile_mut(t));
            }
        }
    }

    /// Values for a whole position block, tile-major (see
    /// [`Self::eval_batch`]).
    pub fn v_batch(&self, pos: &PosBlock<T>, out: &mut BatchOut<WalkerTiled<T>>) {
        self.eval_batch(Kernel::V, pos, out);
    }

    /// VGL for a whole position block, tile-major (see
    /// [`Self::eval_batch`]).
    pub fn vgl_batch(&self, pos: &PosBlock<T>, out: &mut BatchOut<WalkerTiled<T>>) {
        self.eval_batch(Kernel::Vgl, pos, out);
    }

    /// VGH for a whole position block, tile-major (see
    /// [`Self::eval_batch`]).
    pub fn vgh_batch(&self, pos: &PosBlock<T>, out: &mut BatchOut<WalkerTiled<T>>) {
        self.eval_batch(Kernel::Vgh, pos, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::output::WalkerSoA;
    use einspline::{Grid1, MultiCoefs};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_table(n: usize, seed: u64) -> MultiCoefs<f32> {
        let g = Grid1::periodic(0.0, 1.0, 6);
        let mut multi = MultiCoefs::<f32>::new(g, g, g, n);
        multi.fill_random(&mut StdRng::seed_from_u64(seed));
        multi
    }

    #[test]
    fn tile_partitioning_shapes() {
        let multi = random_table(128, 3);
        let engine = BsplineAoSoA::from_multi(&multi, 32);
        assert_eq!(engine.n_tiles(), 4);
        assert_eq!(engine.nb(), 32);
        assert_eq!(engine.n_splines(), 128);
        let ragged = BsplineAoSoA::from_multi(&multi, 48);
        assert_eq!(ragged.n_tiles(), 3);
        assert_eq!(ragged.tiles()[2].n_splines(), 32);
    }

    #[test]
    fn vgh_equivalent_to_untiled_soa() {
        let n = 96;
        let multi = random_table(n, 17);
        let soa = BsplineSoA::new(multi.clone());
        let mut rng = StdRng::seed_from_u64(8);
        for nb in [16, 32, 96, 200] {
            let tiled = BsplineAoSoA::from_multi(&multi, nb);
            let mut out_t = tiled.make_out();
            let mut out_s = WalkerSoA::new(n);
            for _ in 0..5 {
                let pos = [
                    rng.random::<f32>(),
                    rng.random::<f32>(),
                    rng.random::<f32>(),
                ];
                soa.vgh(pos, &mut out_s);
                tiled.vgh(pos, &mut out_t);
                for nn in 0..n {
                    assert_eq!(out_s.value(nn), out_t.value(nn), "nb={nb} n={nn}");
                    assert_eq!(out_s.gradient(nn), out_t.gradient(nn));
                    assert_eq!(out_s.hessian(nn), out_t.hessian(nn));
                }
            }
        }
    }

    #[test]
    fn vgl_and_v_equivalent_to_untiled_soa() {
        let n = 40;
        let multi = random_table(n, 29);
        let soa = BsplineSoA::new(multi.clone());
        let tiled = BsplineAoSoA::from_multi(&multi, 16);
        let mut out_t = tiled.make_out();
        let mut out_s = WalkerSoA::new(n);
        let pos = [0.21f32, 0.68, 0.44];
        soa.vgl(pos, &mut out_s);
        tiled.vgl(pos, &mut out_t);
        for nn in 0..n {
            assert_eq!(out_s.value(nn), out_t.value(nn));
            assert_eq!(out_s.laplacian(nn), out_t.laplacian(nn));
        }
        soa.v(pos, &mut out_s);
        tiled.v(pos, &mut out_t);
        for nn in 0..n {
            assert_eq!(out_s.value(nn), out_t.value(nn));
        }
    }

    #[test]
    fn eval_tile_matches_full_eval() {
        let n = 64;
        let multi = random_table(n, 31);
        let tiled = BsplineAoSoA::from_multi(&multi, 16);
        let pos = [0.93f32, 0.12, 0.55];
        let mut full = tiled.make_out();
        tiled.vgh(pos, &mut full);
        for t in 0..tiled.n_tiles() {
            let mut single = WalkerSoA::new(tiled.tiles()[t].n_splines());
            tiled.eval_tile(t, Kernel::Vgh, pos, &mut single);
            for o in 0..16 {
                assert_eq!(single.value(o), full.tile(t).value(o));
                assert_eq!(single.hessian(o), full.tile(t).hessian(o));
            }
        }
    }

    #[test]
    fn nb_one_tile_reduces_to_soa() {
        let n = 20;
        let multi = random_table(n, 41);
        let soa = BsplineSoA::new(multi.clone());
        let tiled = BsplineAoSoA::from_multi(&multi, n);
        assert_eq!(tiled.n_tiles(), 1);
        let mut out_t = tiled.make_out();
        let mut out_s = WalkerSoA::new(n);
        let pos = [0.5f32, 0.25, 0.75];
        soa.vgh(pos, &mut out_s);
        tiled.vgh(pos, &mut out_t);
        for nn in 0..n {
            assert_eq!(out_s.value(nn), out_t.value(nn));
        }
    }

    #[test]
    #[should_panic(expected = "tile size must be positive")]
    fn zero_tile_size_rejected() {
        let multi = random_table(8, 1);
        let _ = BsplineAoSoA::from_multi(&multi, 0);
    }
}
