//! Batched multi-walker evaluation: position blocks and batch outputs.
//!
//! The paper's whole performance story is about amortizing the shared
//! read-only coefficient table across many concurrent evaluations. The
//! scalar [`SpoEngine`](crate::engine::SpoEngine) methods force every
//! driver to hand-roll that loop; this module provides the first-class
//! batch vocabulary instead:
//!
//! * [`PosBlock`] — a structure-of-arrays block of evaluation positions
//!   (one stream per coordinate), the unit a driver hands to the engine
//!   per timing region;
//! * [`BatchOut`] — a block of per-position output buffers, allocated
//!   once by [`SpoEngine::make_batch_out`](crate::engine::SpoEngine::make_batch_out)
//!   and reused across batches (the caller owns the allocation; the
//!   engine only overwrites);
//! * `Located` *(crate-private)* — the hoisted per-position work
//!   (grid location + the three [`BasisWeights`] blocks) that the native
//!   batched engine paths compute once per position up front. For the
//!   AoSoA engine this is the real win: the scalar path recomputes the
//!   basis weights once per *(tile, position)* pair, the batched
//!   tile-major path once per position for all `M` tiles.
//!
//! The batched entry points are also where the explicit SIMD layer
//! ([`crate::simd`]) bites hardest: with the locate/weights hoisted
//! into `Located` blocks, each (tile, position) evaluation is pure
//! micro-kernel work — one coefficient tile streams through the lane
//! registers for every position of the block before the next tile is
//! touched, which is the paper's Fig. 6 loop order at SIMD width.

use einspline::basis::BasisWeights;
use einspline::multi::MultiCoefs;
use einspline::Real;
use rand::Rng;

/// A structure-of-arrays block of evaluation positions.
///
/// Coordinates are stored as three unit-stride streams (`x`, `y`, `z`),
/// mirroring the SoA output transformation of the paper (Opt A) on the
/// input side: a driver fills one block per Monte Carlo generation and
/// hands it to the engine whole.
#[derive(Clone, Debug, Default)]
pub struct PosBlock<T: Real> {
    x: Vec<T>,
    y: Vec<T>,
    z: Vec<T>,
}

impl<T: Real> PosBlock<T> {
    /// Empty block.
    pub fn new() -> Self {
        Self {
            x: Vec::new(),
            y: Vec::new(),
            z: Vec::new(),
        }
    }

    /// Empty block with room for `cap` positions.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            x: Vec::with_capacity(cap),
            y: Vec::with_capacity(cap),
            z: Vec::with_capacity(cap),
        }
    }

    /// Build from an AoS position slice.
    pub fn from_positions(pos: &[[T; 3]]) -> Self {
        let mut b = Self::with_capacity(pos.len());
        for p in pos {
            b.push(*p);
        }
        b
    }

    /// Draw `ns` uniform random positions inside `domain` (the batched
    /// analogue of the paper's `generateRandomPos`).
    pub fn random<R: Rng>(rng: &mut R, ns: usize, domain: [(f64, f64); 3]) -> Self {
        let mut b = Self::with_capacity(ns);
        for _ in 0..ns {
            let mut p = [T::ZERO; 3];
            for (d, (lo, hi)) in domain.iter().enumerate() {
                p[d] = T::from_f64(lo + (hi - lo) * rng.random::<f64>());
            }
            b.push(p);
        }
        b
    }

    /// Append one position.
    #[inline]
    pub fn push(&mut self, p: [T; 3]) {
        self.x.push(p[0]);
        self.y.push(p[1]);
        self.z.push(p[2]);
    }

    /// Remove all positions, keeping the allocation.
    pub fn clear(&mut self) {
        self.x.clear();
        self.y.clear();
        self.z.clear();
    }

    /// Reserve room for at least `additional` more positions in every
    /// coordinate stream. The coalescer calls this with the total size
    /// of a fused batch before splicing submissions, so the appends in
    /// [`PosBlock::extend_from_block`] never reallocate mid-batch.
    pub fn reserve(&mut self, additional: usize) {
        self.x.reserve(additional);
        self.y.reserve(additional);
        self.z.reserve(additional);
    }

    /// Positions the block can hold without reallocating (the smallest
    /// per-stream capacity — the streams grow together, but `reserve`
    /// on a `Vec` may over-allocate each independently).
    pub fn capacity(&self) -> usize {
        self.x.capacity().min(self.y.capacity()).min(self.z.capacity())
    }

    /// Append every position of `other`, stream-wise (three
    /// `extend_from_slice` calls — no per-position push). This is the
    /// coalescer's splice: request blocks are fused into one engine
    /// batch without changing any position's value or order, so the
    /// fused evaluation is bit-identical to evaluating the requests
    /// back-to-back.
    pub fn extend_from_block(&mut self, other: &PosBlock<T>) {
        self.x.extend_from_slice(&other.x);
        self.y.extend_from_slice(&other.y);
        self.z.extend_from_slice(&other.z);
    }

    /// Number of positions in the block.
    #[inline]
    pub fn len(&self) -> usize {
        self.x.len()
    }

    /// Whether the block holds no positions.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.x.is_empty()
    }

    /// Position `i`.
    #[inline]
    pub fn get(&self, i: usize) -> [T; 3] {
        [self.x[i], self.y[i], self.z[i]]
    }

    /// The three coordinate streams `(x, y, z)`.
    #[inline]
    pub fn streams(&self) -> (&[T], &[T], &[T]) {
        (&self.x, &self.y, &self.z)
    }

    /// Iterate positions in AoS form.
    pub fn iter(&self) -> impl Iterator<Item = [T; 3]> + '_ {
        (0..self.len()).map(|i| self.get(i))
    }

    /// Convert every position to another scalar width (through `f64`,
    /// so `f64 -> f32` rounds each coordinate once) — how the
    /// mixed-precision adapter ([`crate::precision::MixedEngine`])
    /// narrows a double-precision position block before handing it to
    /// its single-precision inner engine.
    pub fn cast<U: Real>(&self) -> PosBlock<U> {
        let conv = |xs: &[T]| xs.iter().map(|&v| U::from_f64(v.to_f64())).collect();
        PosBlock {
            x: conv(&self.x),
            y: conv(&self.y),
            z: conv(&self.z),
        }
    }

    /// Split into consecutive sub-blocks of at most `size` positions
    /// (the driver's per-timing-region unit; the last block may be
    /// shorter).
    pub fn chunks(&self, size: usize) -> impl Iterator<Item = PosBlock<T>> + '_ {
        assert!(size > 0, "chunk size must be positive");
        (0..self.len()).step_by(size).map(move |lo| {
            let hi = (lo + size).min(self.len());
            PosBlock {
                x: self.x[lo..hi].to_vec(),
                y: self.y[lo..hi].to_vec(),
                z: self.z[lo..hi].to_vec(),
            }
        })
    }
}

impl<T: Real> FromIterator<[T; 3]> for PosBlock<T> {
    fn from_iter<I: IntoIterator<Item = [T; 3]>>(iter: I) -> Self {
        let mut b = Self::new();
        for p in iter {
            b.push(p);
        }
        b
    }
}

/// A block of per-position engine output buffers.
///
/// Block `i` receives the outputs for position `i` of the matching
/// [`PosBlock`]. The caller allocates once (via
/// [`SpoEngine::make_batch_out`](crate::engine::SpoEngine::make_batch_out))
/// and reuses the blocks across batches — batched engine calls only
/// overwrite, never allocate. A `BatchOut` may hold *more* blocks than
/// the position block it is used with (ragged tail of a chunked stream);
/// the extra blocks are left untouched.
#[derive(Clone, Debug)]
pub struct BatchOut<O> {
    blocks: Vec<O>,
}

impl<O> BatchOut<O> {
    /// Wrap pre-allocated per-position blocks.
    pub fn from_blocks(blocks: Vec<O>) -> Self {
        Self { blocks }
    }

    /// Number of output blocks.
    #[inline]
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// Whether the batch holds no blocks.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Output block for position `i`.
    #[inline]
    pub fn block(&self, i: usize) -> &O {
        &self.blocks[i]
    }

    /// Mutable output block for position `i`.
    #[inline]
    pub fn block_mut(&mut self, i: usize) -> &mut O {
        &mut self.blocks[i]
    }

    /// All blocks.
    #[inline]
    pub fn blocks(&self) -> &[O] {
        &self.blocks
    }

    /// All blocks, mutably (nested-threading partitioning).
    #[inline]
    pub fn blocks_mut(&mut self) -> &mut [O] {
        &mut self.blocks
    }

    /// Grow to at least `n` blocks, allocating new ones with `make`.
    pub fn ensure(&mut self, n: usize, mut make: impl FnMut() -> O) {
        while self.blocks.len() < n {
            self.blocks.push(make());
        }
    }

    /// Take the blocks back out (the inverse of [`BatchOut::from_blocks`];
    /// used by adapters that temporarily re-wrap caller-owned blocks for
    /// an inner engine call).
    pub fn into_blocks(self) -> Vec<O> {
        self.blocks
    }
}

/// Panic unless `out` can receive one block per position.
#[inline]
pub(crate) fn check_batch(n_pos: usize, n_out: usize) {
    assert!(
        n_out >= n_pos,
        "need one output block per position: {n_pos} positions, {n_out} blocks"
    );
}

/// Hoisted per-position evaluation state: lower-corner grid indices plus
/// the three per-dimension basis-weight blocks (value / first / second
/// derivative weights, derivative weights pre-scaled by `delta_inv`).
///
/// Computing this once per position and reusing it across tiles (AoSoA),
/// blocks ([`crate::blocked`]) or kernels is the "hoist basis-coefficient
/// computation" step of the batched API; the arithmetic is bit-identical
/// to the scalar paths, which build the same weights inline. Public so
/// block engines ([`crate::blocked::BlockEngine`]) can receive the
/// shared per-position hoist from schedulers.
#[derive(Clone, Copy, Debug)]
pub struct Located<T> {
    /// Lower-corner x grid index.
    pub i0: usize,
    /// Lower-corner y grid index.
    pub j0: usize,
    /// Lower-corner z grid index.
    pub k0: usize,
    /// x-dimension basis weights.
    pub wa: BasisWeights<T>,
    /// y-dimension basis weights.
    pub wb: BasisWeights<T>,
    /// z-dimension basis weights.
    pub wc: BasisWeights<T>,
}

impl<T: Real> Located<T> {
    /// Locate `pos` against `coefs`' grids and build the three
    /// basis-weight blocks.
    #[inline(always)]
    pub fn new(coefs: &MultiCoefs<T>, pos: [T; 3]) -> Self {
        let p = coefs.locate(pos[0], pos[1], pos[2]);
        let dinv = coefs.delta_inv();
        Self {
            i0: p.i0,
            j0: p.j0,
            k0: p.k0,
            wa: BasisWeights::new(p.tx, dinv[0]),
            wb: BasisWeights::new(p.ty, dinv[1]),
            wc: BasisWeights::new(p.tz, dinv[2]),
        }
    }

    /// Locate every position of a block (the batch-level hoist).
    pub fn block(coefs: &MultiCoefs<T>, pos: &PosBlock<T>) -> Vec<Self> {
        pos.iter().map(|p| Self::new(coefs, p)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn pos_block_push_get_roundtrip() {
        let mut b = PosBlock::<f32>::new();
        assert!(b.is_empty());
        b.push([1.0, 2.0, 3.0]);
        b.push([4.0, 5.0, 6.0]);
        assert_eq!(b.len(), 2);
        assert_eq!(b.get(1), [4.0, 5.0, 6.0]);
        let (x, y, z) = b.streams();
        assert_eq!(x, &[1.0, 4.0]);
        assert_eq!(y, &[2.0, 5.0]);
        assert_eq!(z, &[3.0, 6.0]);
        b.clear();
        assert!(b.is_empty());
    }

    #[test]
    fn from_positions_matches_iter() {
        let pos = [[0.1f32, 0.2, 0.3], [0.4, 0.5, 0.6], [0.7, 0.8, 0.9]];
        let b = PosBlock::from_positions(&pos);
        let back: Vec<[f32; 3]> = b.iter().collect();
        assert_eq!(back, pos);
        let c: PosBlock<f32> = pos.iter().copied().collect();
        assert_eq!(c.get(2), pos[2]);
    }

    #[test]
    fn random_respects_domain() {
        let mut rng = StdRng::seed_from_u64(3);
        let b: PosBlock<f32> =
            PosBlock::random(&mut rng, 64, [(0.0, 1.0), (2.0, 3.0), (-1.0, 0.0)]);
        assert_eq!(b.len(), 64);
        for p in b.iter() {
            assert!((0.0..1.0).contains(&p[0]));
            assert!((2.0..3.0).contains(&p[1]));
            assert!((-1.0..0.0).contains(&p[2]));
        }
    }

    #[test]
    fn chunks_cover_all_positions() {
        let b: PosBlock<f32> =
            (0..10).map(|i| [i as f32, 0.0, 0.0]).collect();
        let chunks: Vec<PosBlock<f32>> = b.chunks(4).collect();
        assert_eq!(chunks.len(), 3);
        assert_eq!(chunks[0].len(), 4);
        assert_eq!(chunks[2].len(), 2);
        let flat: Vec<[f32; 3]> = chunks.iter().flat_map(|c| c.iter()).collect();
        let orig: Vec<[f32; 3]> = b.iter().collect();
        assert_eq!(flat, orig);
    }

    #[test]
    fn extend_from_block_splices_in_order() {
        let a: PosBlock<f32> = (0..3).map(|i| [i as f32, 10.0, 20.0]).collect();
        let b: PosBlock<f32> = (3..7).map(|i| [i as f32, 30.0, 40.0]).collect();
        let mut fused = PosBlock::new();
        fused.extend_from_block(&a);
        fused.extend_from_block(&b);
        assert_eq!(fused.len(), 7);
        let flat: Vec<[f32; 3]> = fused.iter().collect();
        let expect: Vec<[f32; 3]> = a.iter().chain(b.iter()).collect();
        assert_eq!(flat, expect);
        // Appending an empty block is a no-op.
        fused.extend_from_block(&PosBlock::new());
        assert_eq!(fused.len(), 7);
    }

    #[test]
    fn reserve_prevents_reallocation_during_splice() {
        let parts: Vec<PosBlock<f32>> = (0..4)
            .map(|p| (0..5).map(|i| [(p * 5 + i) as f32, 0.0, 0.0]).collect())
            .collect();
        let total: usize = parts.iter().map(|b| b.len()).sum();
        let mut fused = PosBlock::<f32>::new();
        fused.reserve(total);
        assert!(fused.capacity() >= total);
        let cap = fused.capacity();
        for p in &parts {
            fused.extend_from_block(p);
        }
        assert_eq!(fused.len(), total);
        assert_eq!(fused.capacity(), cap, "splice must not reallocate");
        // clear() keeps the reservation for the next coalesced batch.
        fused.clear();
        assert!(fused.is_empty());
        assert_eq!(fused.capacity(), cap);
    }

    #[test]
    fn cast_of_spliced_block_equals_splice_of_casts() {
        // The mixed-precision adapter narrows whole fused blocks; that
        // must commute with the coalescer's splice.
        let a: PosBlock<f64> = (0..3).map(|i| [0.1 * i as f64, 0.7, 0.3]).collect();
        let b: PosBlock<f64> = (0..2).map(|i| [0.9, 0.2 * i as f64, 0.6]).collect();
        let mut fused = PosBlock::new();
        fused.extend_from_block(&a);
        fused.extend_from_block(&b);
        let narrowed: PosBlock<f32> = fused.cast();
        let mut expect = PosBlock::<f32>::new();
        expect.extend_from_block(&a.cast());
        expect.extend_from_block(&b.cast());
        assert_eq!(narrowed.len(), expect.len());
        for i in 0..narrowed.len() {
            assert_eq!(narrowed.get(i), expect.get(i), "i={i}");
        }
    }

    #[test]
    fn batch_out_blocks_are_addressable() {
        let mut out = BatchOut::from_blocks(vec![0usize; 3]);
        *out.block_mut(1) = 7;
        assert_eq!(*out.block(1), 7);
        assert_eq!(out.len(), 3);
        out.ensure(5, || 9);
        assert_eq!(out.len(), 5);
        assert_eq!(*out.block(4), 9);
        out.ensure(2, || 1); // never shrinks
        assert_eq!(out.len(), 5);
        assert_eq!(out.blocks()[1], 7);
    }

    #[test]
    #[should_panic(expected = "one output block per position")]
    fn undersized_batch_out_rejected() {
        check_batch(4, 3);
    }
}
