//! Per-move (batch-of-1) evaluation state: the [`MoveContext`].
//!
//! Real VMC/DMC traffic is dominated by single-electron
//! propose→ratio→accept steps, and the batched API actively pessimizes
//! that shape: every scalar call re-runs the grid locate and rebuilds
//! the three `BasisWeights` blocks, and the AoS baseline re-allocates
//! its VGL scratch per call. The per-move protocol evaluates the *same
//! position* up to twice — V for the determinant ratio on propose, then
//! VGL/VGH for drift and Laplacian only if the move is accepted — so
//! the locate/weights hoist is worth caching across the pair.
//!
//! A [`MoveContext`] is that cache, owned by the *walker* (one per
//! walker, reused for every move of every electron):
//!
//! * the hoisted [`Located`] for the most recent proposed position,
//!   keyed by the exact position floats — the accept-side VGL/VGH call
//!   reuses the propose-side locate/weights without recomputing them;
//! * reusable scratch for engines that need per-call workspace (the
//!   AoS baseline's VGL accumulator), so the hot path never allocates;
//! * a lazily allocated `f32` sub-context for
//!   [`MixedEngine`](crate::precision::MixedEngine), which narrows the
//!   `f64` position once per move and runs the inner engine's fast path
//!   in `f32`.
//!
//! The context only ever caches work that is *recomputed identically*
//! by the scalar paths ([`Located::new`] on the same floats), so
//! `v_one`/`vgl_one`/`vgh_one` results are bit-identical to
//! `v`/`vgl`/`vgh` on every backend, cache hit or miss — property-tested
//! in `tests/integration_onemove.rs` including accept/reject sequences
//! and positions on grid-cell boundaries.
//!
//! A context belongs to one engine (the cached `Located` is only valid
//! against the grid it was built from); give each walker × engine pair
//! its own. See the crate docs ("Per-move evaluation") for the protocol
//! diagram.

use crate::batch::Located;
use einspline::multi::MultiCoefs;
use einspline::Real;

/// Per-walker cached state for the single-electron fast path.
///
/// Passed as `&mut` to the `*_one` methods of
/// [`SpoEngine`](crate::engine::SpoEngine); see the [module docs](self)
/// for what is cached and why the results stay bit-identical.
#[derive(Clone, Debug, Default)]
pub struct MoveContext<T: Real> {
    /// Position the cached locate is valid for. Compared with float
    /// `==`, so a NaN coordinate never matches and always re-locates.
    key: Option<[T; 3]>,
    loc: Option<Located<T>>,
    /// Reusable per-call workspace (AoS VGL accumulator), grown on
    /// demand and kept across moves.
    scratch: Vec<T>,
    /// Lazily built `f32` sub-context for the mixed-precision adapter.
    narrow: Option<Box<MoveContext<f32>>>,
}

impl<T: Real> MoveContext<T> {
    /// Fresh context with nothing cached.
    pub fn new() -> Self {
        Self {
            key: None,
            loc: None,
            scratch: Vec::new(),
            narrow: None,
        }
    }

    /// The hoisted locate/weights for `pos`: returns the cached
    /// [`Located`] when `pos` is bit-equal to the last located position
    /// (the accept-side reuse), otherwise computes and caches a fresh
    /// one. The cached value is exactly what [`Located::new`] would
    /// rebuild, so hits and misses are indistinguishable in the output.
    #[inline]
    pub fn located(&mut self, coefs: &MultiCoefs<T>, pos: [T; 3]) -> Located<T> {
        if self.key == Some(pos) {
            if let Some(loc) = self.loc {
                return loc;
            }
        }
        let loc = Located::new(coefs, pos);
        self.key = Some(pos);
        self.loc = Some(loc);
        loc
    }

    /// Whether `pos` would hit the cache (test/diagnostic hook).
    #[inline]
    pub fn is_cached(&self, pos: [T; 3]) -> bool {
        self.key == Some(pos) && self.loc.is_some()
    }

    /// Reusable workspace of at least `n` elements, zero-filled on
    /// every call (the AoS VGL path accumulates into it). Grows once;
    /// steady state is allocation-free.
    #[inline]
    pub fn scratch(&mut self, n: usize) -> &mut [T] {
        if self.scratch.len() < n {
            self.scratch.resize(n, T::ZERO);
        }
        let s = &mut self.scratch[..n];
        s.fill(T::ZERO);
        s
    }

    /// The lazily allocated `f32` sub-context the mixed-precision
    /// engine runs its inner fast path with.
    #[inline]
    pub fn narrow(&mut self) -> &mut MoveContext<f32> {
        self.narrow.get_or_insert_with(Box::default)
    }

    /// Drop the cached locate (e.g. after the engine's table changed).
    /// Keeps the scratch and sub-context allocations.
    pub fn invalidate(&mut self) {
        self.key = None;
        self.loc = None;
        if let Some(n) = self.narrow.as_mut() {
            n.invalidate();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use einspline::Grid1;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn table() -> MultiCoefs<f64> {
        let g = Grid1::periodic(0.0, 1.0, 8);
        let mut m = MultiCoefs::<f64>::new(g, g, g, 4);
        m.fill_random(&mut StdRng::seed_from_u64(3));
        m
    }

    #[test]
    fn located_caches_by_exact_position() {
        let coefs = table();
        let mut ctx = MoveContext::new();
        let p = [0.3, 0.7, 0.1];
        assert!(!ctx.is_cached(p));
        let a = ctx.located(&coefs, p);
        assert!(ctx.is_cached(p));
        let b = ctx.located(&coefs, p);
        assert_eq!((a.i0, a.j0, a.k0), (b.i0, b.j0, b.k0));
        // A different position misses and replaces the cache.
        let q = [0.31, 0.7, 0.1];
        let _ = ctx.located(&coefs, q);
        assert!(ctx.is_cached(q) && !ctx.is_cached(p));
    }

    #[test]
    fn cache_hit_equals_fresh_locate() {
        let coefs = table();
        let mut ctx = MoveContext::new();
        let p = [0.925, 0.0, 0.5];
        let cached = ctx.located(&coefs, p);
        let cached2 = ctx.located(&coefs, p);
        let fresh = Located::new(&coefs, p);
        for (got, want) in [(&cached, &fresh), (&cached2, &fresh)] {
            assert_eq!((got.i0, got.j0, got.k0), (want.i0, want.j0, want.k0));
            assert_eq!(got.wa.a, want.wa.a);
            assert_eq!(got.wb.da, want.wb.da);
            assert_eq!(got.wc.d2a, want.wc.d2a);
        }
    }

    #[test]
    fn nan_positions_never_hit_the_cache() {
        let mut ctx = MoveContext::<f64>::new();
        let p = [f64::NAN, 0.5, 0.5];
        // NaN != NaN, so key comparison fails and every call re-locates
        // (MultiCoefs::locate clamps, so this still returns something).
        assert!(!ctx.is_cached(p));
        ctx.key = Some(p);
        assert!(!ctx.is_cached(p));
    }

    #[test]
    fn scratch_grows_and_zeroes() {
        let mut ctx = MoveContext::<f32>::new();
        let s = ctx.scratch(4);
        s.fill(7.0);
        let s = ctx.scratch(2);
        assert_eq!(s, &[0.0, 0.0]);
        assert_eq!(ctx.scratch(8).len(), 8);
    }

    #[test]
    fn invalidate_clears_locate_but_keeps_scratch() {
        let coefs = table();
        let mut ctx = MoveContext::new();
        let p = [0.2, 0.4, 0.6];
        let _ = ctx.located(&coefs, p);
        let _ = ctx.scratch(16);
        ctx.narrow().scratch(4);
        ctx.invalidate();
        assert!(!ctx.is_cached(p));
        assert!(ctx.scratch.capacity() >= 16);
    }
}
