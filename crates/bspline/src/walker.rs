//! The miniQMC B-spline driver (paper Fig. 3).
//!
//! Each *walker* (Monte Carlo sample) owns private output buffers and a
//! private stream of random positions; all walkers share the read-only
//! coefficient table through the engine. The driver replays the paper's
//! measurement loop: `niters` generations, each evaluating `ns` random
//! positions per kernel — handed to the engine as whole
//! [`PosBlock`]s of `batch` positions per timed call, so the batched
//! engine paths (hoisted basis weights, tile-major blocking) are what
//! the timing regions measure.

use crate::batch::{BatchOut, PosBlock};
use crate::engine::SpoEngine;
use crate::layout::Kernel;
use einspline::Real;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::{Duration, Instant};

/// Driver parameters (defaults follow the paper: `ns = 512` random
/// samples per kernel per iteration).
#[derive(Clone, Copy, Debug)]
pub struct DriverConfig {
    /// Number of independent walkers `Nw`.
    pub n_walkers: usize,
    /// Random positions per kernel per iteration (`ns`).
    pub n_samples: usize,
    /// Monte Carlo generations (`niters`).
    pub n_iters: usize,
    /// Positions per batched engine call (the per-walker output-block
    /// working set is `batch` blocks, reused across sub-blocks).
    pub batch: usize,
    /// Master RNG seed; each walker derives its own stream.
    pub seed: u64,
}

impl Default for DriverConfig {
    fn default() -> Self {
        Self {
            n_walkers: 1,
            n_samples: 512,
            n_iters: 1,
            batch: 32,
            seed: 0x9e3779b97f4a7c15,
        }
    }
}

/// Per-kernel accumulated wall time of one run.
#[derive(Clone, Copy, Debug, Default)]
pub struct KernelTimes {
    /// Orbital value stream.
    pub v: Duration,
    /// Vgl.
    pub vgl: Duration,
    /// Vgh.
    pub vgh: Duration,
}

impl KernelTimes {
    /// Get.
    pub fn get(&self, k: Kernel) -> Duration {
        match k {
            Kernel::V => self.v,
            Kernel::Vgl => self.vgl,
            Kernel::Vgh => self.vgh,
        }
    }

    /// Add.
    pub fn add(&mut self, k: Kernel, d: Duration) {
        match k {
            Kernel::V => self.v += d,
            Kernel::Vgl => self.vgl += d,
            Kernel::Vgh => self.vgh += d,
        }
    }
}

/// Draw `ns` uniform random positions inside `domain` (the paper's
/// `generateRandomPos`, imitating QMC's random drift-diffusion moves).
pub fn random_positions<T: Real, R: Rng>(
    rng: &mut R,
    ns: usize,
    domain: [(f64, f64); 3],
) -> Vec<[T; 3]> {
    (0..ns)
        .map(|_| {
            let mut p = [T::ZERO; 3];
            for (d, (lo, hi)) in domain.iter().enumerate() {
                p[d] = T::from_f64(lo + (hi - lo) * rng.random::<f64>());
            }
            p
        })
        .collect()
}

/// RNG for walker `w` derived from the master seed (independent,
/// reproducible streams).
pub fn walker_rng(seed: u64, walker: usize) -> StdRng {
    StdRng::seed_from_u64(seed ^ (walker as u64).wrapping_mul(0xa076_1d64_78bd_642f))
}

/// Split a full sample stream into `batch`-sized [`PosBlock`]s (built
/// once per walker, outside the timing regions).
fn sample_blocks<T: Real, R: Rng>(
    rng: &mut R,
    ns: usize,
    batch: usize,
    domain: [(f64, f64); 3],
) -> Vec<PosBlock<T>> {
    let stream: PosBlock<T> = PosBlock::random(rng, ns, domain);
    stream.chunks(batch).collect()
}

/// Run one walker's full measurement loop serially; returns per-kernel
/// time. Each timed region hands the engine whole position blocks
/// through the batched API (`cfg.batch` positions per call, output
/// blocks reused across calls).
pub fn run_walker<T: Real, E: SpoEngine<T>>(
    engine: &E,
    cfg: &DriverConfig,
    walker: usize,
) -> KernelTimes {
    let mut rng = walker_rng(cfg.seed, walker);
    let domain = engine.domain();
    let batch = cfg.batch.clamp(1, cfg.n_samples.max(1));
    let v_blocks: Vec<PosBlock<T>> =
        sample_blocks(&mut rng, cfg.n_samples, batch, domain);
    let vgl_blocks: Vec<PosBlock<T>> =
        sample_blocks(&mut rng, cfg.n_samples, batch, domain);
    let vgh_blocks: Vec<PosBlock<T>> =
        sample_blocks(&mut rng, cfg.n_samples, batch, domain);
    let mut out = engine.make_batch_out(batch);
    let mut times = KernelTimes::default();

    for _ in 0..cfg.n_iters {
        let t0 = Instant::now();
        for b in &v_blocks {
            engine.v_batch(b, &mut out);
        }
        times.v += t0.elapsed();

        let t0 = Instant::now();
        for b in &vgl_blocks {
            engine.vgl_batch(b, &mut out);
        }
        times.vgl += t0.elapsed();

        let t0 = Instant::now();
        for b in &vgh_blocks {
            engine.vgh_batch(b, &mut out);
        }
        times.vgh += t0.elapsed();
    }
    times
}

/// Run one kernel over a fixed position set, one scalar call per
/// position (the pre-batching reference loop for speedup comparisons).
pub fn run_kernel<T: Real, E: SpoEngine<T>>(
    engine: &E,
    kernel: Kernel,
    positions: &[[T; 3]],
    out: &mut E::Out,
) -> Duration {
    let t0 = Instant::now();
    for p in positions {
        engine.eval(kernel, *p, out);
    }
    t0.elapsed()
}

/// Run one kernel over pre-chunked position blocks through the batched
/// API (benchmark inner loop; `out` must hold at least as many blocks
/// as the largest position block).
pub fn run_kernel_batched<T: Real, E: SpoEngine<T>>(
    engine: &E,
    kernel: Kernel,
    blocks: &[PosBlock<T>],
    out: &mut BatchOut<E::Out>,
) -> Duration {
    let t0 = Instant::now();
    for b in blocks {
        engine.eval_batch(kernel, b, out);
    }
    t0.elapsed()
}

/// Serial multi-walker run (walkers executed back-to-back on one
/// thread) — the reference for parallel-efficiency tests.
pub fn run_serial<T: Real, E: SpoEngine<T>>(engine: &E, cfg: &DriverConfig) -> KernelTimes {
    let mut total = KernelTimes::default();
    for w in 0..cfg.n_walkers {
        let t = run_walker(engine, cfg, w);
        total.v += t.v;
        total.vgl += t.vgl;
        total.vgh += t.vgh;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::soa::BsplineSoA;
    use einspline::{Grid1, MultiCoefs};

    fn engine() -> BsplineSoA<f32> {
        let g = Grid1::periodic(0.0, 1.0, 6);
        let mut m = MultiCoefs::<f32>::new(g, g, g, 8);
        m.fill_random(&mut StdRng::seed_from_u64(2));
        BsplineSoA::new(m)
    }

    #[test]
    fn random_positions_respect_domain() {
        let mut rng = StdRng::seed_from_u64(1);
        let pos: Vec<[f32; 3]> =
            random_positions(&mut rng, 100, [(0.0, 1.0), (2.0, 3.0), (-1.0, 0.0)]);
        assert_eq!(pos.len(), 100);
        for p in pos {
            assert!((0.0..1.0).contains(&p[0]));
            assert!((2.0..3.0).contains(&p[1]));
            assert!((-1.0..0.0).contains(&p[2]));
        }
    }

    #[test]
    fn walker_rngs_are_independent_and_reproducible() {
        let a1: f64 = walker_rng(7, 0).random();
        let a2: f64 = walker_rng(7, 0).random();
        let b: f64 = walker_rng(7, 1).random();
        assert_eq!(a1, a2);
        assert_ne!(a1, b);
    }

    #[test]
    fn run_walker_accumulates_all_kernels() {
        let e = engine();
        let cfg = DriverConfig {
            n_walkers: 1,
            n_samples: 4,
            n_iters: 2,
            batch: 3, // deliberately ragged: blocks of 3 + 1
            seed: 3,
        };
        let t = run_walker(&e, &cfg, 0);
        assert!(t.v > Duration::ZERO);
        assert!(t.vgl > Duration::ZERO);
        assert!(t.vgh > Duration::ZERO);
    }

    #[test]
    fn batched_kernel_loop_bitmatches_scalar() {
        let e = engine();
        let mut rng = StdRng::seed_from_u64(4);
        let pos: Vec<[f32; 3]> =
            random_positions(&mut rng, 7, SpoEngine::<f32>::domain(&e));
        let stream = PosBlock::from_positions(&pos);
        let blocks: Vec<PosBlock<f32>> = stream.chunks(3).collect();
        assert_eq!(blocks.len(), 3); // 3 + 3 + 1: ragged tail reuses out
        let mut out = e.make_batch_out(3);
        run_kernel_batched(&e, Kernel::Vgh, &blocks, &mut out);
        // After the last (1-position) block, block 0 holds pos[6].
        let mut scalar = e.make_out();
        e.vgh(pos[6], &mut scalar);
        for n in 0..e.n_splines() {
            assert_eq!(out.block(0).value(n), scalar.value(n));
            assert_eq!(out.block(0).hessian(n), scalar.hessian(n));
        }
        // Blocks 1/2 still hold the previous (full) block's outputs.
        e.vgh(pos[4], &mut scalar);
        assert_eq!(out.block(1).value(0), scalar.value(0));
    }

    #[test]
    fn kernel_times_accessors() {
        let mut t = KernelTimes::default();
        t.add(Kernel::Vgl, Duration::from_millis(5));
        assert_eq!(t.get(Kernel::Vgl), Duration::from_millis(5));
        assert_eq!(t.get(Kernel::V), Duration::ZERO);
    }

    #[test]
    fn run_serial_scales_with_walker_count() {
        let e = engine();
        let cfg1 = DriverConfig {
            n_walkers: 1,
            n_samples: 8,
            n_iters: 1,
            batch: 4,
            seed: 5,
        };
        let cfg3 = DriverConfig {
            n_walkers: 3,
            ..cfg1
        };
        let _ = run_serial(&e, &cfg1);
        let t3 = run_serial(&e, &cfg3);
        assert!(t3.vgh > Duration::ZERO);
    }
}
