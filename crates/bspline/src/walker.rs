//! The miniQMC B-spline driver (paper Fig. 3).
//!
//! Each *walker* (Monte Carlo sample) owns private output buffers and a
//! private stream of random positions; all walkers share the read-only
//! coefficient table through the engine. The driver replays the paper's
//! measurement loop: `niters` generations, each evaluating `ns` random
//! positions per kernel.

use crate::engine::SpoEngine;
use crate::layout::Kernel;
use einspline::Real;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::{Duration, Instant};

/// Driver parameters (defaults follow the paper: `ns = 512` random
/// samples per kernel per iteration).
#[derive(Clone, Copy, Debug)]
pub struct DriverConfig {
    /// Number of independent walkers `Nw`.
    pub n_walkers: usize,
    /// Random positions per kernel per iteration (`ns`).
    pub n_samples: usize,
    /// Monte Carlo generations (`niters`).
    pub n_iters: usize,
    /// Master RNG seed; each walker derives its own stream.
    pub seed: u64,
}

impl Default for DriverConfig {
    fn default() -> Self {
        Self {
            n_walkers: 1,
            n_samples: 512,
            n_iters: 1,
            seed: 0x9e3779b97f4a7c15,
        }
    }
}

/// Per-kernel accumulated wall time of one run.
#[derive(Clone, Copy, Debug, Default)]
pub struct KernelTimes {
    /// Orbital value stream.
    pub v: Duration,
    /// Vgl.
    pub vgl: Duration,
    /// Vgh.
    pub vgh: Duration,
}

impl KernelTimes {
    /// Get.
    pub fn get(&self, k: Kernel) -> Duration {
        match k {
            Kernel::V => self.v,
            Kernel::Vgl => self.vgl,
            Kernel::Vgh => self.vgh,
        }
    }

    /// Add.
    pub fn add(&mut self, k: Kernel, d: Duration) {
        match k {
            Kernel::V => self.v += d,
            Kernel::Vgl => self.vgl += d,
            Kernel::Vgh => self.vgh += d,
        }
    }
}

/// Draw `ns` uniform random positions inside `domain` (the paper's
/// `generateRandomPos`, imitating QMC's random drift-diffusion moves).
pub fn random_positions<T: Real, R: Rng>(
    rng: &mut R,
    ns: usize,
    domain: [(f64, f64); 3],
) -> Vec<[T; 3]> {
    (0..ns)
        .map(|_| {
            let mut p = [T::ZERO; 3];
            for (d, (lo, hi)) in domain.iter().enumerate() {
                p[d] = T::from_f64(lo + (hi - lo) * rng.random::<f64>());
            }
            p
        })
        .collect()
}

/// RNG for walker `w` derived from the master seed (independent,
/// reproducible streams).
pub fn walker_rng(seed: u64, walker: usize) -> StdRng {
    StdRng::seed_from_u64(seed ^ (walker as u64).wrapping_mul(0xa076_1d64_78bd_642f))
}

/// Run one walker's full measurement loop serially; returns per-kernel
/// time.
pub fn run_walker<T: Real, E: SpoEngine<T>>(
    engine: &E,
    cfg: &DriverConfig,
    walker: usize,
) -> KernelTimes {
    let mut rng = walker_rng(cfg.seed, walker);
    let domain = engine.domain();
    let v_pos: Vec<[T; 3]> = random_positions(&mut rng, cfg.n_samples, domain);
    let vgl_pos: Vec<[T; 3]> = random_positions(&mut rng, cfg.n_samples, domain);
    let vgh_pos: Vec<[T; 3]> = random_positions(&mut rng, cfg.n_samples, domain);
    let mut out = engine.make_out();
    let mut times = KernelTimes::default();

    for _ in 0..cfg.n_iters {
        let t0 = Instant::now();
        for p in &v_pos {
            engine.v(*p, &mut out);
        }
        times.v += t0.elapsed();

        let t0 = Instant::now();
        for p in &vgl_pos {
            engine.vgl(*p, &mut out);
        }
        times.vgl += t0.elapsed();

        let t0 = Instant::now();
        for p in &vgh_pos {
            engine.vgh(*p, &mut out);
        }
        times.vgh += t0.elapsed();
    }
    times
}

/// Run one kernel over a fixed position set (benchmark inner loop).
pub fn run_kernel<T: Real, E: SpoEngine<T>>(
    engine: &E,
    kernel: Kernel,
    positions: &[[T; 3]],
    out: &mut E::Out,
) -> Duration {
    let t0 = Instant::now();
    for p in positions {
        engine.eval(kernel, *p, out);
    }
    t0.elapsed()
}

/// Serial multi-walker run (walkers executed back-to-back on one
/// thread) — the reference for parallel-efficiency tests.
pub fn run_serial<T: Real, E: SpoEngine<T>>(engine: &E, cfg: &DriverConfig) -> KernelTimes {
    let mut total = KernelTimes::default();
    for w in 0..cfg.n_walkers {
        let t = run_walker(engine, cfg, w);
        total.v += t.v;
        total.vgl += t.vgl;
        total.vgh += t.vgh;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::soa::BsplineSoA;
    use einspline::{Grid1, MultiCoefs};

    fn engine() -> BsplineSoA<f32> {
        let g = Grid1::periodic(0.0, 1.0, 6);
        let mut m = MultiCoefs::<f32>::new(g, g, g, 8);
        m.fill_random(&mut StdRng::seed_from_u64(2));
        BsplineSoA::new(m)
    }

    #[test]
    fn random_positions_respect_domain() {
        let mut rng = StdRng::seed_from_u64(1);
        let pos: Vec<[f32; 3]> =
            random_positions(&mut rng, 100, [(0.0, 1.0), (2.0, 3.0), (-1.0, 0.0)]);
        assert_eq!(pos.len(), 100);
        for p in pos {
            assert!((0.0..1.0).contains(&p[0]));
            assert!((2.0..3.0).contains(&p[1]));
            assert!((-1.0..0.0).contains(&p[2]));
        }
    }

    #[test]
    fn walker_rngs_are_independent_and_reproducible() {
        let a1: f64 = walker_rng(7, 0).random();
        let a2: f64 = walker_rng(7, 0).random();
        let b: f64 = walker_rng(7, 1).random();
        assert_eq!(a1, a2);
        assert_ne!(a1, b);
    }

    #[test]
    fn run_walker_accumulates_all_kernels() {
        let e = engine();
        let cfg = DriverConfig {
            n_walkers: 1,
            n_samples: 4,
            n_iters: 2,
            seed: 3,
        };
        let t = run_walker(&e, &cfg, 0);
        assert!(t.v > Duration::ZERO);
        assert!(t.vgl > Duration::ZERO);
        assert!(t.vgh > Duration::ZERO);
    }

    #[test]
    fn kernel_times_accessors() {
        let mut t = KernelTimes::default();
        t.add(Kernel::Vgl, Duration::from_millis(5));
        assert_eq!(t.get(Kernel::Vgl), Duration::from_millis(5));
        assert_eq!(t.get(Kernel::V), Duration::ZERO);
    }

    #[test]
    fn run_serial_scales_with_walker_count() {
        let e = engine();
        let cfg1 = DriverConfig {
            n_walkers: 1,
            n_samples: 8,
            n_iters: 1,
            seed: 5,
        };
        let cfg3 = DriverConfig {
            n_walkers: 3,
            ..cfg1
        };
        let _ = run_serial(&e, &cfg1);
        let t3 = run_serial(&e, &cfg3);
        assert!(t3.vgh > Duration::ZERO);
    }
}
