//! Mixed-precision orbital evaluation: `f32` coefficient storage, SIMD
//! compute in `f32`, accumulation / delivery in `f64`.
//!
//! # Precision model
//!
//! The paper's production configuration stores the B-spline tables in
//! single precision — halving the memory-bandwidth cost that dominates
//! V/VGL/VGH — while QMCPACK keeps every wavefunction-level reduction
//! (determinant ratios, drift and kinetic derivatives) in double
//! precision. This module makes that trade a first-class, *tested*
//! contract instead of an implicit convention:
//!
//! * tables are solved in `f64` and narrowed once with
//!   [`einspline::MultiCoefs::downcast`] (one correct rounding per
//!   coefficient, lane padding and 64-byte alignment re-established for
//!   the `f32` cache-line quantum);
//! * [`MixedEngine`] wraps any single-precision engine and exposes the
//!   full double-precision [`SpoEngine`] surface: positions narrow at
//!   the input boundary, the inner `f32` engine runs the explicit
//!   [`crate::simd`] micro-kernels, and the outputs widen to `f64` at
//!   the output boundary ([`WidenOut`]) so downstream consumers
//!   (miniqmc's `SpoSet`, determinants, kinetic estimators) accumulate
//!   in `f64` — the `Real::Accum` contract;
//! * the evaluation error of the `f32`/mixed path against the `f64`
//!   reference is bounded by a *documented budget*, asserted by the
//!   workspace conformance suite (`tests/integration_precision.rs`)
//!   across layouts × kernels × backends × batch sizes.
//!
//! # The error budget
//!
//! Budget: **3e-5** ([`F32_REL_ERROR_BUDGET`]), *relative to the spline
//! scale* of the evaluated table ([`spline_scale`]) — **not** relative
//! to each output value, because a B-spline contraction can cancel to
//! arbitrarily small outputs while its rounding error stays at the
//! scale of the *terms*.
//!
//! Derivation (u = 2⁻²⁴ ≈ 5.96e-8, the f32 rounding unit; `G` = grid
//! intervals per dimension, ≤ 48 in every paper workload; `c_max` =
//! largest absolute coefficient):
//!
//! 1. **Storage rounding.** Each coefficient rounds once in
//!    [`einspline::MultiCoefs::downcast`]: ≤ u·c_max per term. A kernel
//!    output is a 64-term contraction whose value-weight magnitudes sum
//!    to 1 (partition of unity), so the contribution is ≤ u per unit of
//!    spline scale.
//! 2. **Input rounding.** The position narrows once: δx ≤ u. First
//!    derivatives of the spline are O(c_max·G), so the induced output
//!    perturbation is ≤ u·G per unit of scale (one derivative order
//!    higher than the stream itself, same relative size after the
//!    scale normalization below).
//! 3. **Weight arithmetic.** Each of the 12 per-dimension basis weights
//!    is a ≈ 5-op f32 chain: ≲ 8u relative per weight, ≤ 3 weights per
//!    term → ≤ 24u per unit of scale.
//! 4. **Accumulation.** 64 fused multiply-adds per output component
//!    (the [`crate::simd`] kernels and the scalar reference perform the
//!    identical elementwise chain): ≤ 64u per unit of scale. The
//!    Laplacian sums three second-derivative streams: ×3.
//!
//! Total ≲ u·(1 + G + 24 + 3·64) ≈ 265u ≈ 1.6e-5 for G = 48. The
//! committed budget **3e-5** carries a ≈ 2× headroom over that bound
//! for unmodeled worst-case alignment of the four sources (the worst
//! deviation actually measured on 48³ random tables is ≈ 9e-6, so the
//! budget is ≈ 3× above observed reality and ≈ 2× above the analytic
//! bound); the conformance suite fails if the constant is loosened
//! without updating this paragraph (the test extracts the bold value
//! above and compares it against the constant).
//!
//! Streams are normalized per derivative order: value streams by
//! `c_max`, gradients by `c_max·G`, Hessians/Laplacians by `c_max·G²`
//! — the natural magnitudes of a spline and its derivatives on a grid
//! of spacing `1/G`. Interpolation error (the `h⁴` term of Parker et
//! al., arXiv:1309.6250) is orders of magnitude above this storage-
//! precision budget for physical grids, which is exactly why the f32
//! table trade is free when done right.
//!
//! # Quick example
//!
//! ```
//! use bspline::precision::MixedEngine;
//! use bspline::SpoEngine;
//! use einspline::{Grid1, MultiCoefs};
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! // Solve/fill in f64, store f32, evaluate with f64 delivery.
//! let g = Grid1::periodic(0.0, 1.0, 8);
//! let mut table = MultiCoefs::<f64>::new(g, g, g, 16);
//! table.fill_random(&mut StdRng::seed_from_u64(1));
//! let engine = MixedEngine::soa(&table);
//! let mut out = engine.make_out();
//! engine.vgh([0.3f64, 0.7, 0.1], &mut out);
//! let v: f64 = out.wide().value(5); // f64 at the boundary
//! assert!(v.is_finite());
//! ```

use crate::aos::BsplineAoS;
use crate::aosoa::BsplineAoSoA;
use crate::batch::{check_batch, BatchOut, PosBlock};
use crate::engine::SpoEngine;
use crate::layout::{Kernel, Layout};
use crate::output::{WalkerAoS, WalkerSoA, WalkerTiled};
use crate::soa::BsplineSoA;
use einspline::multi::MultiCoefs;
use einspline::solver1d::COEF_PAD;
use einspline::Real;

/// Maximum allowed deviation of any `f32`/mixed kernel output from the
/// `f64` reference, in units of the evaluated table's [`spline_scale`]
/// for the output's derivative order. Derived in the module docs; the
/// conformance suite asserts the docs quote this exact value, so it
/// cannot be loosened silently.
pub const F32_REL_ERROR_BUDGET: f64 = 3e-5;

/// Largest grid resolution (intervals per dimension) the budget
/// derivation covers — the paper's production 48³ grid.
pub const BUDGET_MAX_GRID: usize = 48;

/// Per-derivative-order normalization magnitudes of one coefficient
/// table: the "spline scale" the error budget is relative to.
#[derive(Clone, Copy, Debug)]
pub struct SplineScale {
    /// Scale of value streams: the largest absolute coefficient.
    pub value: f64,
    /// Scale of gradient streams: `value · G` (G = max grid intervals
    /// per dimension ≈ max `delta_inv` on the unit cube).
    pub gradient: f64,
    /// Scale of Hessian / Laplacian streams: `value · G²`.
    pub hessian: f64,
}

impl SplineScale {
    /// Scale for a stream of the given derivative order (0 = value,
    /// 1 = gradient, 2 = Hessian/Laplacian).
    pub fn for_order(&self, order: usize) -> f64 {
        match order {
            0 => self.value,
            1 => self.gradient,
            _ => self.hessian,
        }
    }
}

/// Measure the [`SplineScale`] of a table: one pass over the
/// coefficients for `c_max`, grid `delta_inv` for the derivative
/// factors. Degenerate all-zero tables report scale 1 so budget checks
/// stay meaningful (`0 ≤ budget·1`).
pub fn spline_scale<T: Real>(coefs: &MultiCoefs<T>) -> SplineScale {
    let (gx, gy, gz) = coefs.grids();
    let (px, py, pz) = (
        gx.num() + COEF_PAD,
        gy.num() + COEF_PAD,
        gz.num() + COEF_PAD,
    );
    let mut c_max = 0.0f64;
    for ix in 0..px {
        for iy in 0..py {
            for iz in 0..pz {
                for &c in &coefs.line(ix, iy, iz)[..coefs.n_splines()] {
                    c_max = c_max.max(c.to_f64().abs());
                }
            }
        }
    }
    if c_max == 0.0 {
        c_max = 1.0;
    }
    let g = gx
        .delta_inv()
        .max(gy.delta_inv())
        .max(gz.delta_inv())
        .max(1.0);
    SplineScale {
        value: c_max,
        gradient: c_max * g,
        hessian: c_max * g * g,
    }
}

/// A single-precision per-walker output block that can widen itself
/// into a double-precision twin — the output-boundary half of the
/// mixed-precision contract. Implemented by all three walker output
/// layouts.
pub trait WidenOut: Send + Clone {
    /// The double-precision twin (same layout, `f64` streams).
    type Wide: Send + Clone;

    /// Allocate a zeroed wide twin matching this block's shape.
    fn make_wide(&self) -> Self::Wide;

    /// Copy the streams `kernel` produced into the wide twin, widening
    /// each element once (`f32 → f64` is exact).
    fn widen_into(&self, kernel: Kernel, wide: &mut Self::Wide);

    /// A zero-orbital placeholder used to momentarily swap blocks out
    /// of a [`BatchOut`] (see [`MixedEngine`]'s batched paths). Cheap:
    /// no stream allocates.
    fn placeholder() -> Self;
}

#[inline]
fn widen_stream(src: &[f32], dst: &mut [f64]) {
    for (d, s) in dst.iter_mut().zip(src) {
        *d = f64::from(*s);
    }
}

impl WidenOut for WalkerAoS<f32> {
    type Wide = WalkerAoS<f64>;

    fn make_wide(&self) -> WalkerAoS<f64> {
        WalkerAoS::new(self.n_splines())
    }

    fn widen_into(&self, kernel: Kernel, wide: &mut WalkerAoS<f64>) {
        widen_stream(&self.v, &mut wide.v);
        if matches!(kernel, Kernel::Vgl | Kernel::Vgh) {
            widen_stream(&self.g, &mut wide.g);
        }
        if matches!(kernel, Kernel::Vgl) {
            widen_stream(&self.l, &mut wide.l);
        }
        if matches!(kernel, Kernel::Vgh) {
            widen_stream(&self.h, &mut wide.h);
        }
    }

    fn placeholder() -> Self {
        WalkerAoS::new(0)
    }
}

impl WidenOut for WalkerSoA<f32> {
    type Wide = WalkerSoA<f64>;

    fn make_wide(&self) -> WalkerSoA<f64> {
        WalkerSoA::new(self.n_splines())
    }

    fn widen_into(&self, kernel: Kernel, wide: &mut WalkerSoA<f64>) {
        // The f32 and f64 twins pad to different cache-line quanta;
        // zip covers min(strides) ≥ n_splines, which is every logical
        // element.
        widen_stream(&self.v, &mut wide.v);
        if matches!(kernel, Kernel::Vgl | Kernel::Vgh) {
            widen_stream(&self.gx, &mut wide.gx);
            widen_stream(&self.gy, &mut wide.gy);
            widen_stream(&self.gz, &mut wide.gz);
        }
        if matches!(kernel, Kernel::Vgl) {
            widen_stream(&self.l, &mut wide.l);
        }
        if matches!(kernel, Kernel::Vgh) {
            widen_stream(&self.hxx, &mut wide.hxx);
            widen_stream(&self.hxy, &mut wide.hxy);
            widen_stream(&self.hxz, &mut wide.hxz);
            widen_stream(&self.hyy, &mut wide.hyy);
            widen_stream(&self.hyz, &mut wide.hyz);
            widen_stream(&self.hzz, &mut wide.hzz);
        }
    }

    fn placeholder() -> Self {
        WalkerSoA::new(0)
    }
}

impl WidenOut for WalkerTiled<f32> {
    type Wide = WalkerTiled<f64>;

    fn make_wide(&self) -> WalkerTiled<f64> {
        let sizes: Vec<usize> =
            (0..self.n_tiles()).map(|t| self.tile(t).n_splines()).collect();
        WalkerTiled::new(&sizes, self.nb())
    }

    fn widen_into(&self, kernel: Kernel, wide: &mut WalkerTiled<f64>) {
        for (t, dst) in wide.tiles_mut().iter_mut().enumerate() {
            self.tile(t).widen_into(kernel, dst);
        }
    }

    fn placeholder() -> Self {
        WalkerTiled::new(&[], 1)
    }
}

/// The caller-owned output block of a [`MixedEngine`]: the inner
/// engine's `f32` block plus its widened `f64` twin. Kernel calls
/// overwrite the narrow block and refresh the wide one; consumers read
/// [`MixedOut::wide`].
#[derive(Clone)]
pub struct MixedOut<O: WidenOut> {
    narrow: O,
    wide: O::Wide,
}

impl<O: WidenOut> MixedOut<O> {
    /// The double-precision view — what downstream accumulation reads.
    #[inline]
    pub fn wide(&self) -> &O::Wide {
        &self.wide
    }

    /// The single-precision block the kernels actually wrote (parity
    /// tests assert `wide` is its exact widening).
    #[inline]
    pub fn narrow(&self) -> &O {
        &self.narrow
    }
}

/// Mixed-precision adapter around any single-precision engine `E`:
/// implements the full double-precision [`SpoEngine`] surface (scalar
/// *and* batched entry points) by narrowing positions at the input
/// boundary, running `E`'s `f32` SIMD micro-kernels, and widening
/// outputs at the output boundary.
///
/// The batched paths preserve `E`'s native batching (hoisted basis
/// weights, tile-major order for the AoSoA engine): the narrow blocks
/// are temporarily re-wrapped into a `BatchOut<E::Out>` and handed to
/// the inner batched call, so the mixed path pays only the position
/// narrowing and the output widening on top of the pure-`f32` path.
#[derive(Clone, Debug)]
pub struct MixedEngine<E> {
    inner: E,
}

impl<E> MixedEngine<E> {
    /// Wrap an existing single-precision engine.
    pub fn new(inner: E) -> Self {
        Self { inner }
    }

    /// The wrapped single-precision engine.
    #[inline]
    pub fn inner(&self) -> &E {
        &self.inner
    }
}

impl MixedEngine<BsplineAoS<f32>> {
    /// Mixed-precision AoS engine from a double-precision table
    /// (solve in `f64`, store `f32`).
    pub fn aos(coefs: &MultiCoefs<f64>) -> Self {
        Self::new(BsplineAoS::new(coefs.downcast()))
    }
}

impl MixedEngine<BsplineSoA<f32>> {
    /// Mixed-precision SoA engine from a double-precision table
    /// (solve in `f64`, store `f32`).
    pub fn soa(coefs: &MultiCoefs<f64>) -> Self {
        Self::new(BsplineSoA::new(coefs.downcast()))
    }
}

impl MixedEngine<BsplineAoSoA<f32>> {
    /// Mixed-precision AoSoA engine from a double-precision table
    /// (solve in `f64`, store `f32`, tile by `nb`).
    pub fn aosoa(coefs: &MultiCoefs<f64>, nb: usize) -> Self {
        Self::new(BsplineAoSoA::from_multi(&coefs.downcast(), nb))
    }
}

impl MixedEngine<crate::blocked::BlockedEngine<BsplineSoA<f32>>> {
    /// Mixed-precision blocked engine from a double-precision table
    /// (solve in `f64`, store `f32`, orbital-block-decompose to
    /// `budget_bytes` — [`crate::blocked::BlockedEngine::from_multi`],
    /// including its first-touch construction). The `f32` budget buys
    /// twice the orbitals per cache-sized block compared to an `f64`
    /// decomposition of the same byte budget.
    pub fn blocked(coefs: &MultiCoefs<f64>, budget_bytes: usize) -> Self {
        Self::new(crate::blocked::BlockedEngine::from_multi(
            &coefs.downcast(),
            budget_bytes,
        ))
    }
}

#[inline]
fn narrow_pos(pos: [f64; 3]) -> [f32; 3] {
    [pos[0] as f32, pos[1] as f32, pos[2] as f32]
}

impl<E, O> MixedEngine<E>
where
    E: SpoEngine<f32, Out = O>,
    O: WidenOut,
{
    fn eval_scalar(&self, kernel: Kernel, pos: [f64; 3], out: &mut MixedOut<O>) {
        self.inner.eval(kernel, narrow_pos(pos), &mut out.narrow);
        out.narrow.widen_into(kernel, &mut out.wide);
    }

    /// One-move body: narrow the position once per move, run the inner
    /// engine's fast path with the `f32` sub-context (so the inner
    /// locate/weights are cached across the propose→accept pair), widen
    /// at the boundary.
    fn eval_one_mixed(
        &self,
        kernel: Kernel,
        ctx: &mut crate::onemove::MoveContext<f64>,
        pos: [f64; 3],
        out: &mut MixedOut<O>,
    ) {
        self.inner
            .eval_one(kernel, ctx.narrow(), narrow_pos(pos), &mut out.narrow);
        out.narrow.widen_into(kernel, &mut out.wide);
    }

    fn eval_batched(
        &self,
        kernel: Kernel,
        pos: &PosBlock<f64>,
        out: &mut BatchOut<MixedOut<O>>,
    ) {
        check_batch(pos.len(), out.len());
        let pos32: PosBlock<f32> = pos.cast();
        // Lend the narrow blocks to the inner engine's native batched
        // path (placeholders hold the seats), then take them back and
        // refresh the wide twins.
        let narrow: Vec<O> = out.blocks_mut()[..pos.len()]
            .iter_mut()
            .map(|b| std::mem::replace(&mut b.narrow, O::placeholder()))
            .collect();
        let mut inner_out = BatchOut::from_blocks(narrow);
        self.inner.eval_batch(kernel, &pos32, &mut inner_out);
        for (b, n) in out.blocks_mut()[..pos.len()]
            .iter_mut()
            .zip(inner_out.into_blocks())
        {
            b.narrow = n;
            b.narrow.widen_into(kernel, &mut b.wide);
        }
    }
}

impl<E, O> SpoEngine<f64> for MixedEngine<E>
where
    E: SpoEngine<f32, Out = O>,
    O: WidenOut,
{
    type Out = MixedOut<O>;

    fn n_splines(&self) -> usize {
        self.inner.n_splines()
    }

    fn layout(&self) -> Layout {
        self.inner.layout()
    }

    fn domain(&self) -> [(f64, f64); 3] {
        self.inner.domain()
    }

    fn make_out(&self) -> MixedOut<O> {
        let narrow = self.inner.make_out();
        let wide = narrow.make_wide();
        MixedOut { narrow, wide }
    }

    fn v(&self, pos: [f64; 3], out: &mut MixedOut<O>) {
        self.eval_scalar(Kernel::V, pos, out);
    }

    fn vgl(&self, pos: [f64; 3], out: &mut MixedOut<O>) {
        self.eval_scalar(Kernel::Vgl, pos, out);
    }

    fn vgh(&self, pos: [f64; 3], out: &mut MixedOut<O>) {
        self.eval_scalar(Kernel::Vgh, pos, out);
    }

    fn v_batch(&self, pos: &PosBlock<f64>, out: &mut BatchOut<MixedOut<O>>) {
        self.eval_batched(Kernel::V, pos, out);
    }

    fn vgl_batch(&self, pos: &PosBlock<f64>, out: &mut BatchOut<MixedOut<O>>) {
        self.eval_batched(Kernel::Vgl, pos, out);
    }

    fn vgh_batch(&self, pos: &PosBlock<f64>, out: &mut BatchOut<MixedOut<O>>) {
        self.eval_batched(Kernel::Vgh, pos, out);
    }

    fn v_one(
        &self,
        ctx: &mut crate::onemove::MoveContext<f64>,
        pos: [f64; 3],
        out: &mut MixedOut<O>,
    ) {
        self.eval_one_mixed(Kernel::V, ctx, pos, out);
    }

    fn vgl_one(
        &self,
        ctx: &mut crate::onemove::MoveContext<f64>,
        pos: [f64; 3],
        out: &mut MixedOut<O>,
    ) {
        self.eval_one_mixed(Kernel::Vgl, ctx, pos, out);
    }

    fn vgh_one(
        &self,
        ctx: &mut crate::onemove::MoveContext<f64>,
        pos: [f64; 3],
        out: &mut MixedOut<O>,
    ) {
        self.eval_one_mixed(Kernel::Vgh, ctx, pos, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use einspline::Grid1;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn wide_table(n: usize, ng: usize, seed: u64) -> MultiCoefs<f64> {
        let g = Grid1::periodic(0.0, 1.0, ng);
        let mut m = MultiCoefs::<f64>::new(g, g, g, n);
        m.fill_random(&mut StdRng::seed_from_u64(seed));
        m
    }

    #[test]
    fn budget_docs_quote_the_constant() {
        // The same coupling the workspace conformance suite enforces,
        // kept here too so a crate-local edit cannot drift.
        let docs = include_str!("precision.rs");
        let quoted = format!("**{:e}**", F32_REL_ERROR_BUDGET);
        assert!(
            docs.lines()
                .filter(|l| l.starts_with("//!"))
                .any(|l| l.contains(&quoted)),
            "module docs must quote the budget as {quoted}"
        );
    }

    #[test]
    fn spline_scale_orders_multiply_by_grid() {
        let t = wide_table(6, 8, 3);
        let s = spline_scale(&t);
        assert!(s.value > 0.0 && s.value <= 0.5 + 1e-9);
        assert!((s.gradient / s.value - 8.0).abs() < 1e-12);
        assert!((s.hessian / s.value - 64.0).abs() < 1e-12);
        assert_eq!(s.for_order(0), s.value);
        assert_eq!(s.for_order(1), s.gradient);
        assert_eq!(s.for_order(2), s.hessian);
        // All-zero table: scale floors at 1.
        let z = MultiCoefs::<f64>::new(
            Grid1::periodic(0.0, 1.0, 4),
            Grid1::periodic(0.0, 1.0, 4),
            Grid1::periodic(0.0, 1.0, 4),
            2,
        );
        assert_eq!(spline_scale(&z).value, 1.0);
    }

    #[test]
    fn mixed_wide_is_exact_widening_of_narrow() {
        let t = wide_table(10, 6, 7);
        let engine = MixedEngine::soa(&t);
        let mut out = engine.make_out();
        engine.vgh([0.31f64, 0.77, 0.12], &mut out);
        for k in 0..10 {
            assert_eq!(out.wide().value(k), f64::from(out.narrow().value(k)));
            for d in 0..3 {
                assert_eq!(
                    out.wide().gradient(k)[d],
                    f64::from(out.narrow().gradient(k)[d])
                );
            }
            for r in 0..6 {
                assert_eq!(
                    out.wide().hessian(k)[r],
                    f64::from(out.narrow().hessian(k)[r])
                );
            }
        }
    }

    #[test]
    fn mixed_batched_matches_mixed_scalar_loop() {
        let t = wide_table(13, 6, 11); // ragged against every lane width
        for nb in [4usize, 13] {
            let engine = MixedEngine::aosoa(&t, nb);
            let pos: Vec<[f64; 3]> =
                vec![[0.1, 0.5, 0.9], [0.33, 0.66, 0.05], [0.72, 0.2, 0.48]];
            let block: PosBlock<f64> = pos.iter().copied().collect();
            let mut bout = engine.make_batch_out(block.len());
            engine.vgh_batch(&block, &mut bout);
            let mut sout = engine.make_out();
            for (i, p) in pos.iter().enumerate() {
                engine.vgh(*p, &mut sout);
                for k in 0..13 {
                    assert_eq!(
                        bout.block(i).wide().value(k),
                        sout.wide().value(k),
                        "i={i} k={k}"
                    );
                    assert_eq!(
                        bout.block(i).wide().hessian(k),
                        sout.wide().hessian(k)
                    );
                }
            }
        }
    }

    #[test]
    fn batched_handles_empty_and_single_blocks() {
        let t = wide_table(5, 5, 23);
        let engine = MixedEngine::aos(&t);
        let empty = PosBlock::<f64>::new();
        let mut out0 = engine.make_batch_out(0);
        engine.v_batch(&empty, &mut out0); // no-op, no panic
        let one: PosBlock<f64> = [[0.4f64, 0.4, 0.4]].into_iter().collect();
        let mut out1 = engine.make_batch_out(1);
        engine.vgl_batch(&one, &mut out1);
        let mut scalar = engine.make_out();
        engine.vgl([0.4, 0.4, 0.4], &mut scalar);
        for k in 0..5 {
            assert_eq!(out1.block(0).wide().value(k), scalar.wide().value(k));
            assert_eq!(
                out1.block(0).wide().laplacian(k),
                scalar.wide().laplacian(k)
            );
        }
    }

    #[test]
    fn mixed_blocked_matches_mixed_soa_exactly() {
        let t = wide_table(20, 6, 31);
        let mono = MixedEngine::soa(&t);
        // Budget of 1 byte floors to one f32 cache-line quantum (16
        // splines) per block: 2 blocks with a ragged 4-spline tail.
        let blocked = MixedEngine::blocked(&t, 1);
        assert_eq!(blocked.inner().n_blocks(), 2);
        let (mut a, mut b) = (mono.make_out(), blocked.make_out());
        for pos in [[0.21f64, 0.63, 0.84], [0.95, 0.02, 0.47]] {
            mono.vgh(pos, &mut a);
            blocked.vgh(pos, &mut b);
            for k in 0..20 {
                assert_eq!(a.wide().value(k), b.wide().value(k), "k={k}");
                assert_eq!(a.wide().hessian(k), b.wide().hessian(k), "k={k}");
            }
        }
        // Batched path too (block-major inner loop + widening).
        let block: PosBlock<f64> =
            [[0.1f64, 0.2, 0.3], [0.7, 0.8, 0.9]].into_iter().collect();
        let mut bout = blocked.make_batch_out(block.len());
        blocked.vgl_batch(&block, &mut bout);
        let mut sout = mono.make_out();
        for (i, p) in block.iter().enumerate() {
            mono.vgl(p, &mut sout);
            for k in 0..20 {
                assert_eq!(bout.block(i).wide().laplacian(k), sout.wide().laplacian(k));
            }
        }
    }

    #[test]
    fn layout_and_shape_delegate_to_inner() {
        let t = wide_table(8, 5, 2);
        let soa = MixedEngine::soa(&t);
        let aos = MixedEngine::aos(&t);
        let tiled = MixedEngine::aosoa(&t, 4);
        assert_eq!(SpoEngine::<f64>::layout(&soa), Layout::Soa);
        assert_eq!(SpoEngine::<f64>::layout(&aos), Layout::Aos);
        assert_eq!(SpoEngine::<f64>::layout(&tiled), Layout::AoSoA);
        assert_eq!(SpoEngine::<f64>::n_splines(&tiled), 8);
        assert_eq!(SpoEngine::<f64>::domain(&soa)[0], (0.0, 1.0));
        assert_eq!(tiled.inner().n_tiles(), 2);
    }
}
