//! Explicit SIMD micro-kernels for the V/VGL/VGH inner loops, with
//! one-time runtime CPU dispatch.
//!
//! The paper gets its headline speedups by consuming each coefficient
//! stream at full SIMD width (Fig. 6–7, Table 4). Auto-vectorization of
//! the portable `mul_add` loops cannot deliver that on a baseline
//! `x86-64` target: without the `fma` target feature LLVM lowers
//! `f32::mul_add` to a `fmaf` libm call, which blocks vectorization of
//! the whole loop. This module supplies the hand-written lane-explicit
//! kernels instead, structured in three layers:
//!
//! 1. **Lane abstraction** ([`SimdReal`], in [`lanes`]): a minimal
//!    "pack of `LANES` reals" trait (`splat` / `load` / `store` /
//!    `mul` / `mul_add`) implemented by the portable scalar-array pack
//!    ([`ScalarLanes`]) and, on `x86-64` with the `simd` cargo feature
//!    (default on), by `std::arch` packs: AVX2+FMA (`f32x8`/`f64x4`)
//!    and SSE2 (`f32x4`/`f64x2`).
//! 2. **Generic micro-kernels** (in `kernels`): one `#[inline(always)]`
//!    body per hot loop, written once against [`SimdReal`]. The SoA
//!    V/VGL/VGH kernels process a whole evaluation with the orbital
//!    chunk as the *outer* loop: all output accumulators (`v`, `gx`,
//!    `gy`, `gz`, `h**`) live in registers across the full 4×4 basis
//!    unroll and are stored exactly once per orbital chunk, instead of
//!    read-modified-written once per (i,j) plane. Ragged `m % LANES`
//!    tails fall back to a scalar loop with the identical operation
//!    chain.
//! 3. **Runtime dispatch** ([`Backend`], [`active_backend`],
//!    [`with_backend`]): the backend is detected once
//!    (`is_x86_feature_detected!`) and cached; every kernel call goes
//!    through a per-type `&'static` table of monomorphized function
//!    pointers (`#[target_feature]` wrappers around the generic
//!    bodies). `QMC_SIMD=avx2|sse2|scalar` overrides the default for
//!    A/B testing, and [`with_backend`] forces a backend for the
//!    current thread (used by the parity tests and the
//!    scalar-vs-SIMD bench rows).
//!
//! # Numerical contract
//!
//! Every micro-kernel performs the *same elementwise operation chain*
//! as the scalar reference — there are no horizontal reductions — so
//! backends with fused multiply-add ([`Backend::Avx2`] and the scalar
//! pack, which uses `mul_add`) are **bit-identical** to the portable
//! code. [`Backend::Sse2`] models a pre-FMA machine (`mulps`+`addps`),
//! so its results differ from the fused reference by a few ULP per
//! accumulation step; the parity tests bound it with a relative
//! tolerance instead of exact equality.
//!
//! # Adding a backend (e.g. AVX-512 or NEON)
//!
//! 1. Implement [`SimdReal`] for the new pack type(s) in an
//!    arch-gated sibling of `x86.rs` (`#[inline(always)]` on every
//!    method so the intrinsics inline into the `#[target_feature]`
//!    wrappers).
//! 2. Instantiate the wrapper/table macro for the new feature string
//!    (see `backend_fns!` in `x86.rs`) — one dispatch table per scalar
//!    type.
//! 3. Add a [`Backend`] variant, wire it into `Backend::available()`
//!    (runtime detection), `dispatch::table_f32`/`table_f64`, and the
//!    `QMC_SIMD` parser.
//!
//! The coefficient tables and SoA output streams are 64-byte aligned
//! and padded to a full cache line (16 `f32` / 8 `f64`, see
//! [`crate::layout::max_lanes`]), which is a multiple of every lane
//! width above — the hot path therefore never executes the ragged
//! tail; it exists for correctness on arbitrary `m`.

mod dispatch;
mod kernels;
pub mod lanes;
#[cfg(all(feature = "simd", target_arch = "x86_64"))]
mod x86;

pub use dispatch::{active_backend, default_backend, lanes_for, with_backend, Backend};
pub use lanes::{ScalarLanes, SimdReal};

use crate::batch::Located;
use crate::output::SoAStreamsMut;
use einspline::multi::MultiCoefs;
use einspline::Real;

/// V kernel body over a pre-located position: overwrites the view's
/// `v` stream (the view's length selects the orbital count; blocked
/// callers pass a sub-range of a shared contiguous output).
#[inline]
pub(crate) fn v_soa<T: Real>(
    coefs: &MultiCoefs<T>,
    loc: &Located<T>,
    out: SoAStreamsMut<'_, T>,
) {
    match dispatch::fns::<T>() {
        Some(f) => (f.v_soa)(coefs, loc, out),
        None => kernels::v_soa::<T, ScalarLanes<T>>(coefs, loc, out),
    }
}

/// VGL kernel body over a pre-located position: overwrites the view's
/// five `v/gx/gy/gz/l` streams.
#[inline]
pub(crate) fn vgl_soa<T: Real>(
    coefs: &MultiCoefs<T>,
    loc: &Located<T>,
    out: SoAStreamsMut<'_, T>,
) {
    match dispatch::fns::<T>() {
        Some(f) => (f.vgl_soa)(coefs, loc, out),
        None => kernels::vgl_soa::<T, ScalarLanes<T>>(coefs, loc, out),
    }
}

/// VGH kernel body over a pre-located position: overwrites the view's
/// ten `v/gx/gy/gz/h**` streams.
#[inline]
pub(crate) fn vgh_soa<T: Real>(
    coefs: &MultiCoefs<T>,
    loc: &Located<T>,
    out: SoAStreamsMut<'_, T>,
) {
    match dispatch::fns::<T>() {
        Some(f) => (f.vgh_soa)(coefs, loc, out),
        None => kernels::vgh_soa::<T, ScalarLanes<T>>(coefs, loc, out),
    }
}

/// Single-position (one-move) kernel body over a pre-located position:
/// the same per-orbital chains as the batched bodies — bit-identical
/// results — restructured into look-ahead chunks whose next 64
/// coefficient segments are software-prefetched while the current
/// chunk computes (see `kernels::one_soa`). The fast path under
/// [`crate::onemove::MoveContext`].
#[inline]
pub(crate) fn one_soa<T: Real>(
    kernel: crate::layout::Kernel,
    coefs: &MultiCoefs<T>,
    loc: &Located<T>,
    out: SoAStreamsMut<'_, T>,
) {
    match dispatch::fns::<T>() {
        Some(f) => (f.one_soa)(kernel, coefs, loc, out),
        None => kernels::one_soa::<T, ScalarLanes<T>>(kernel, coefs, loc, out),
    }
}

/// Prefetch the sixteen (i,j) coefficient runs of `loc`'s evaluation
/// cell into L2 (`_MM_HINT_T1`) — issued by the tile-major /
/// block-major batch loops **one evaluation ahead** (the same tile's
/// next position, or the next tile's first position at a tile switch),
/// so the lines are in flight while the current evaluation computes.
/// Each (i,j) run is 4 contiguous z-lines; prefetching the run head
/// pulls the line (and its TLB entry) without displacing the current
/// tile's L1 working set. Compiles to nothing outside `x86_64` or
/// without the `simd` feature.
#[inline]
pub(crate) fn prefetch_tile<T: Real>(coefs: &MultiCoefs<T>, loc: &Located<T>) {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    {
        use std::arch::x86_64::{_mm_prefetch, _MM_HINT_T1};
        for i in 0..4 {
            for j in 0..4 {
                let line = coefs.line(loc.i0 + i, loc.j0 + j, loc.k0);
                // SAFETY: `line` is a live in-bounds slice; prefetch
                // reads no data and has no architectural side effects.
                unsafe { _mm_prefetch(line.as_ptr().cast::<i8>(), _MM_HINT_T1) };
            }
        }
    }
    #[cfg(not(all(feature = "simd", target_arch = "x86_64")))]
    {
        let _ = (coefs, loc);
    }
}

/// `y[..n] += a · x[..n]` — the AoS baseline's unit-stride value
/// accumulation (one call per coefficient point).
#[inline]
pub(crate) fn axpy<T: Real>(a: T, x: &[T], y: &mut [T], n: usize) {
    match dispatch::fns::<T>() {
        Some(f) => (f.axpy)(a, x, y, n),
        None => kernels::axpy::<T, ScalarLanes<T>>(a, x, y, n),
    }
}

/// The unit-stride half of the AoS VGL point accumulation:
/// `v[..n] += pv·x[..n]`, `l[..n] += pl·x[..n]`. The 3-strided gradient
/// stores stay scalar in the engine — they are the baseline's layout
/// deficiency that Opt A removes, not something to hide with shuffles.
#[inline]
pub(crate) fn vl_point<T: Real>(pv: T, pl: T, x: &[T], v: &mut [T], l: &mut [T], n: usize) {
    match dispatch::fns::<T>() {
        Some(f) => (f.vl_point)(pv, pl, x, v, l, n),
        None => kernels::vl_point::<T, ScalarLanes<T>>(pv, pl, x, v, l, n),
    }
}

#[cfg(test)]
mod tests {
    //! The engine paths always pass a lane-padded `m` (the padded
    //! stride, asserted in `MultiCoefs::new`), so the scalar ragged
    //! tails of the eval-level kernels are unreachable from the
    //! integration surface. Exercise them directly here: every backend
    //! × kernel at `m` values that are NOT a multiple of any lane
    //! width, compared against a full-width scalar-pack run.

    use super::*;
    use crate::output::WalkerSoA;
    use einspline::Grid1;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn fixture() -> (MultiCoefs<f32>, Located<f32>) {
        let g = Grid1::periodic(0.0, 1.0, 5);
        let mut table = MultiCoefs::<f32>::new(g, g, g, 30);
        table.fill_random(&mut StdRng::seed_from_u64(9));
        let loc = Located::new(&table, [0.37, 0.81, 0.14]);
        (table, loc)
    }

    #[test]
    fn ragged_tails_match_full_scalar_reference() {
        let (table, loc) = fixture();
        let reference = {
            let mut out = WalkerSoA::<f32>::new(30);
            let m = out.stride();
            kernels::vgh_soa::<f32, ScalarLanes<f32>>(
                &table,
                &loc,
                out.streams_range_mut(0, m),
            );
            out
        };
        // m = 1 (pure tail), 7/13 (vector body + tail for every lane
        // width), 25 (tail after multiple avx2 chunks).
        for b in Backend::available() {
            for m in [1usize, 7, 13, 25] {
                for kernel in 0..3 {
                    let mut out = WalkerSoA::<f32>::new(30);
                    with_backend(b, || match kernel {
                        0 => v_soa(&table, &loc, out.streams_range_mut(0, m)),
                        1 => vgl_soa(&table, &loc, out.streams_range_mut(0, m)),
                        _ => vgh_soa(&table, &loc, out.streams_range_mut(0, m)),
                    });
                    for idx in 0..m {
                        let (want, got) = (reference.v[idx], out.v[idx]);
                        if b.is_fused() {
                            assert_eq!(want, got, "{b} kernel={kernel} m={m} idx={idx}");
                        } else {
                            assert!(
                                (want - got).abs() < 1e-4,
                                "{b} kernel={kernel} m={m} idx={idx}: {want} vs {got}"
                            );
                        }
                        if kernel == 2 {
                            assert!(
                                (reference.hzz[idx] - out.hzz[idx]).abs() < 1e-4,
                                "{b} hzz m={m} idx={idx}"
                            );
                        }
                    }
                    // Elements past m were never written: still zero.
                    for idx in m..out.stride() {
                        assert_eq!(out.v[idx], 0.0, "{b} kernel={kernel} m={m} idx={idx}");
                    }
                }
            }
        }
    }

    #[test]
    fn ragged_tails_axpy_and_vl_point() {
        let x: Vec<f32> = (0..30).map(|i| (i as f32) * 0.25 - 3.0).collect();
        for b in Backend::available() {
            for n in [1usize, 7, 13, 29] {
                let mut y = vec![1.0f32; 30];
                let mut v = vec![0.5f32; 30];
                let mut l = vec![-0.5f32; 30];
                with_backend(b, || {
                    axpy(2.0, &x, &mut y, n);
                    vl_point(3.0, -1.5, &x, &mut v, &mut l, n);
                });
                for i in 0..n {
                    let close = |a: f32, bb: f32| (a - bb).abs() < 1e-5;
                    assert!(close(y[i], 2.0f32.mul_add(x[i], 1.0)), "{b} axpy n={n} i={i}");
                    assert!(close(v[i], 3.0f32.mul_add(x[i], 0.5)), "{b} v n={n} i={i}");
                    assert!(close(l[i], (-1.5f32).mul_add(x[i], -0.5)), "{b} l n={n} i={i}");
                }
                for i in n..30 {
                    assert_eq!(y[i], 1.0, "{b} axpy untouched n={n} i={i}");
                    assert_eq!(v[i], 0.5);
                    assert_eq!(l[i], -0.5);
                }
            }
        }
    }
}
