//! Generic micro-kernel bodies, written once against [`SimdReal`] and
//! instantiated per (scalar type, lane pack) by the dispatch tables.
//!
//! Loop structure (the tentpole restructuring): the orbital chunk is the
//! *outer* loop and the 4×4 (i,j) basis unroll the inner one, so all
//! output accumulators live in registers across the whole evaluation and
//! each output stream is written exactly once per chunk — the scalar
//! reference read-modified-wrote every stream once per plane (16×).
//! Per element the operation chain is unchanged (same accumulation
//! order, same fused ops), so results are bit-identical to the
//! reference wherever the pack has FMA.

use super::lanes::SimdReal;
use crate::batch::Located;
use crate::layout::Kernel;
use crate::output::SoAStreamsMut;
use einspline::multi::MultiCoefs;
use einspline::Real;

/// The four z-lines of one (i,j) plane, starting at `k0`.
#[inline(always)]
fn plane_lines<'a, T: Real>(
    coefs: &'a MultiCoefs<T>,
    loc: &Located<T>,
    i: usize,
    j: usize,
) -> [&'a [T]; 4] {
    [
        coefs.line(loc.i0 + i, loc.j0 + j, loc.k0),
        coefs.line(loc.i0 + i, loc.j0 + j, loc.k0 + 1),
        coefs.line(loc.i0 + i, loc.j0 + j, loc.k0 + 2),
        coefs.line(loc.i0 + i, loc.j0 + j, loc.k0 + 3),
    ]
}

/// V kernel: the view's `v` stream overwritten (all `out.len()`
/// orbitals, evaluated against coefficient-line elements `0..len`).
#[inline(always)]
pub(crate) fn v_soa<T: Real, L: SimdReal<T>>(
    coefs: &MultiCoefs<T>,
    loc: &Located<T>,
    mut out: SoAStreamsMut<'_, T>,
) {
    let m = out.len();
    v_soa_range::<T, L>(coefs, loc, &mut out, 0, m);
}

/// The V kernel body over orbital sub-range `[from, to)` — both the
/// per-orbital operation chain and the lane partition are identical to
/// a full-range call, because every accumulator is lane-private: any
/// split at a lane-multiple boundary is bit-identical to no split.
#[inline(always)]
fn v_soa_range<T: Real, L: SimdReal<T>>(
    coefs: &MultiCoefs<T>,
    loc: &Located<T>,
    out: &mut SoAStreamsMut<'_, T>,
    from: usize,
    to: usize,
) {
    let m = to;
    debug_assert!(m <= coefs.stride_n());
    let (wa, wb, wc) = (&loc.wa, &loc.wb, &loc.wc);
    let v = &mut *out.v;
    let c = wc.a;
    let cv = [L::splat(c[0]), L::splat(c[1]), L::splat(c[2]), L::splat(c[3])];

    let mut base = from;
    while base + L::LANES <= m {
        let mut acc = L::splat(T::ZERO);
        for i in 0..4 {
            for j in 0..4 {
                let ab = wa.a[i] * wb.a[j];
                let p = plane_lines(coefs, loc, i, j);
                let a0 = L::load(p[0], base);
                let a1 = L::load(p[1], base);
                let a2 = L::load(p[2], base);
                let a3 = L::load(p[3], base);
                let s0 = cv[3].mul_add(a3, cv[2].mul_add(a2, cv[1].mul_add(a1, cv[0].mul(a0))));
                acc = L::splat(ab).mul_add(s0, acc);
            }
        }
        acc.store(v, base);
        base += L::LANES;
    }
    for idx in base..m {
        let mut acc = T::ZERO;
        for i in 0..4 {
            for j in 0..4 {
                let ab = wa.a[i] * wb.a[j];
                let p = plane_lines(coefs, loc, i, j);
                let s0 = c[3].mul_add(
                    p[3][idx],
                    c[2].mul_add(p[2][idx], c[1].mul_add(p[1][idx], c[0] * p[0][idx])),
                );
                acc = ab.mul_add(s0, acc);
            }
        }
        v[idx] = acc;
    }
}

/// VGL kernel: the view's five `v/gx/gy/gz/l` streams overwritten.
#[inline(always)]
pub(crate) fn vgl_soa<T: Real, L: SimdReal<T>>(
    coefs: &MultiCoefs<T>,
    loc: &Located<T>,
    mut out: SoAStreamsMut<'_, T>,
) {
    let m = out.len();
    vgl_soa_range::<T, L>(coefs, loc, &mut out, 0, m);
}

/// VGL kernel body over orbital sub-range `[from, to)` (bit-identical
/// to the full-range call for any lane-multiple split — see
/// [`v_soa_range`]).
#[inline(always)]
fn vgl_soa_range<T: Real, L: SimdReal<T>>(
    coefs: &MultiCoefs<T>,
    loc: &Located<T>,
    out: &mut SoAStreamsMut<'_, T>,
    from: usize,
    to: usize,
) {
    let m = to;
    debug_assert!(m <= coefs.stride_n());
    let (wa, wb, wc) = (&loc.wa, &loc.wb, &loc.wc);
    let SoAStreamsMut {
        ref mut v,
        ref mut gx,
        ref mut gy,
        ref mut gz,
        ref mut l,
        ..
    } = *out;
    let (c, dc, d2c) = (wc.a, wc.da, wc.d2a);
    let cv = [L::splat(c[0]), L::splat(c[1]), L::splat(c[2]), L::splat(c[3])];
    let dcv = [L::splat(dc[0]), L::splat(dc[1]), L::splat(dc[2]), L::splat(dc[3])];
    let d2cv = [
        L::splat(d2c[0]),
        L::splat(d2c[1]),
        L::splat(d2c[2]),
        L::splat(d2c[3]),
    ];

    let mut base = from;
    while base + L::LANES <= m {
        let mut av = L::splat(T::ZERO);
        let mut agx = L::splat(T::ZERO);
        let mut agy = L::splat(T::ZERO);
        let mut agz = L::splat(T::ZERO);
        let mut al = L::splat(T::ZERO);
        for i in 0..4 {
            for j in 0..4 {
                let pre00 = wa.a[i] * wb.a[j];
                let pre10 = wa.da[i] * wb.a[j];
                let pre01 = wa.a[i] * wb.da[j];
                let pre_lap = wa.d2a[i] * wb.a[j] + wa.a[i] * wb.d2a[j];
                let p = plane_lines(coefs, loc, i, j);
                let a0 = L::load(p[0], base);
                let a1 = L::load(p[1], base);
                let a2 = L::load(p[2], base);
                let a3 = L::load(p[3], base);
                let s0 = cv[3].mul_add(a3, cv[2].mul_add(a2, cv[1].mul_add(a1, cv[0].mul(a0))));
                let s1 =
                    dcv[3].mul_add(a3, dcv[2].mul_add(a2, dcv[1].mul_add(a1, dcv[0].mul(a0))));
                let s2 = d2cv[3]
                    .mul_add(a3, d2cv[2].mul_add(a2, d2cv[1].mul_add(a1, d2cv[0].mul(a0))));
                av = L::splat(pre00).mul_add(s0, av);
                agx = L::splat(pre10).mul_add(s0, agx);
                agy = L::splat(pre01).mul_add(s0, agy);
                agz = L::splat(pre00).mul_add(s1, agz);
                // lap = (pre20 + pre02)·s0 + pre00·s2
                al = L::splat(pre_lap).mul_add(s0, L::splat(pre00).mul_add(s2, al));
            }
        }
        av.store(v, base);
        agx.store(gx, base);
        agy.store(gy, base);
        agz.store(gz, base);
        al.store(l, base);
        base += L::LANES;
    }
    for idx in base..m {
        let mut av = T::ZERO;
        let mut agx = T::ZERO;
        let mut agy = T::ZERO;
        let mut agz = T::ZERO;
        let mut al = T::ZERO;
        for i in 0..4 {
            for j in 0..4 {
                let pre00 = wa.a[i] * wb.a[j];
                let pre10 = wa.da[i] * wb.a[j];
                let pre01 = wa.a[i] * wb.da[j];
                let pre_lap = wa.d2a[i] * wb.a[j] + wa.a[i] * wb.d2a[j];
                let p = plane_lines(coefs, loc, i, j);
                let (a0, a1, a2, a3) = (p[0][idx], p[1][idx], p[2][idx], p[3][idx]);
                let s0 = c[3].mul_add(a3, c[2].mul_add(a2, c[1].mul_add(a1, c[0] * a0)));
                let s1 = dc[3].mul_add(a3, dc[2].mul_add(a2, dc[1].mul_add(a1, dc[0] * a0)));
                let s2 =
                    d2c[3].mul_add(a3, d2c[2].mul_add(a2, d2c[1].mul_add(a1, d2c[0] * a0)));
                av = pre00.mul_add(s0, av);
                agx = pre10.mul_add(s0, agx);
                agy = pre01.mul_add(s0, agy);
                agz = pre00.mul_add(s1, agz);
                al = pre_lap.mul_add(s0, pre00.mul_add(s2, al));
            }
        }
        v[idx] = av;
        gx[idx] = agx;
        gy[idx] = agy;
        gz[idx] = agz;
        l[idx] = al;
    }
}

/// VGH kernel: the view's ten `v/gx/gy/gz/h**` streams overwritten.
#[inline(always)]
pub(crate) fn vgh_soa<T: Real, L: SimdReal<T>>(
    coefs: &MultiCoefs<T>,
    loc: &Located<T>,
    mut out: SoAStreamsMut<'_, T>,
) {
    let m = out.len();
    vgh_soa_range::<T, L>(coefs, loc, &mut out, 0, m);
}

/// VGH kernel body over orbital sub-range `[from, to)` (bit-identical
/// to the full-range call for any lane-multiple split — see
/// [`v_soa_range`]).
#[inline(always)]
fn vgh_soa_range<T: Real, L: SimdReal<T>>(
    coefs: &MultiCoefs<T>,
    loc: &Located<T>,
    out: &mut SoAStreamsMut<'_, T>,
    from: usize,
    to: usize,
) {
    let m = to;
    debug_assert!(m <= coefs.stride_n());
    let (wa, wb, wc) = (&loc.wa, &loc.wb, &loc.wc);
    let SoAStreamsMut {
        ref mut v,
        ref mut gx,
        ref mut gy,
        ref mut gz,
        ref mut hxx,
        ref mut hxy,
        ref mut hxz,
        ref mut hyy,
        ref mut hyz,
        ref mut hzz,
        ..
    } = *out;
    let (c, dc, d2c) = (wc.a, wc.da, wc.d2a);
    let cv = [L::splat(c[0]), L::splat(c[1]), L::splat(c[2]), L::splat(c[3])];
    let dcv = [L::splat(dc[0]), L::splat(dc[1]), L::splat(dc[2]), L::splat(dc[3])];
    let d2cv = [
        L::splat(d2c[0]),
        L::splat(d2c[1]),
        L::splat(d2c[2]),
        L::splat(d2c[3]),
    ];

    let mut base = from;
    while base + L::LANES <= m {
        let mut av = L::splat(T::ZERO);
        let mut agx = L::splat(T::ZERO);
        let mut agy = L::splat(T::ZERO);
        let mut agz = L::splat(T::ZERO);
        let mut ahxx = L::splat(T::ZERO);
        let mut ahxy = L::splat(T::ZERO);
        let mut ahxz = L::splat(T::ZERO);
        let mut ahyy = L::splat(T::ZERO);
        let mut ahyz = L::splat(T::ZERO);
        let mut ahzz = L::splat(T::ZERO);
        for i in 0..4 {
            for j in 0..4 {
                let pre00 = wa.a[i] * wb.a[j];
                let pre10 = wa.da[i] * wb.a[j];
                let pre01 = wa.a[i] * wb.da[j];
                let pre20 = wa.d2a[i] * wb.a[j];
                let pre11 = wa.da[i] * wb.da[j];
                let pre02 = wa.a[i] * wb.d2a[j];
                let p = plane_lines(coefs, loc, i, j);
                let a0 = L::load(p[0], base);
                let a1 = L::load(p[1], base);
                let a2 = L::load(p[2], base);
                let a3 = L::load(p[3], base);
                let s0 = cv[3].mul_add(a3, cv[2].mul_add(a2, cv[1].mul_add(a1, cv[0].mul(a0))));
                let s1 =
                    dcv[3].mul_add(a3, dcv[2].mul_add(a2, dcv[1].mul_add(a1, dcv[0].mul(a0))));
                let s2 = d2cv[3]
                    .mul_add(a3, d2cv[2].mul_add(a2, d2cv[1].mul_add(a1, d2cv[0].mul(a0))));
                av = L::splat(pre00).mul_add(s0, av);
                agx = L::splat(pre10).mul_add(s0, agx);
                agy = L::splat(pre01).mul_add(s0, agy);
                agz = L::splat(pre00).mul_add(s1, agz);
                ahxx = L::splat(pre20).mul_add(s0, ahxx);
                ahxy = L::splat(pre11).mul_add(s0, ahxy);
                ahxz = L::splat(pre10).mul_add(s1, ahxz);
                ahyy = L::splat(pre02).mul_add(s0, ahyy);
                ahyz = L::splat(pre01).mul_add(s1, ahyz);
                ahzz = L::splat(pre00).mul_add(s2, ahzz);
            }
        }
        av.store(v, base);
        agx.store(gx, base);
        agy.store(gy, base);
        agz.store(gz, base);
        ahxx.store(hxx, base);
        ahxy.store(hxy, base);
        ahxz.store(hxz, base);
        ahyy.store(hyy, base);
        ahyz.store(hyz, base);
        ahzz.store(hzz, base);
        base += L::LANES;
    }
    for idx in base..m {
        let mut av = T::ZERO;
        let mut agx = T::ZERO;
        let mut agy = T::ZERO;
        let mut agz = T::ZERO;
        let mut ahxx = T::ZERO;
        let mut ahxy = T::ZERO;
        let mut ahxz = T::ZERO;
        let mut ahyy = T::ZERO;
        let mut ahyz = T::ZERO;
        let mut ahzz = T::ZERO;
        for i in 0..4 {
            for j in 0..4 {
                let pre00 = wa.a[i] * wb.a[j];
                let pre10 = wa.da[i] * wb.a[j];
                let pre01 = wa.a[i] * wb.da[j];
                let pre20 = wa.d2a[i] * wb.a[j];
                let pre11 = wa.da[i] * wb.da[j];
                let pre02 = wa.a[i] * wb.d2a[j];
                let p = plane_lines(coefs, loc, i, j);
                let (a0, a1, a2, a3) = (p[0][idx], p[1][idx], p[2][idx], p[3][idx]);
                let s0 = c[3].mul_add(a3, c[2].mul_add(a2, c[1].mul_add(a1, c[0] * a0)));
                let s1 = dc[3].mul_add(a3, dc[2].mul_add(a2, dc[1].mul_add(a1, dc[0] * a0)));
                let s2 =
                    d2c[3].mul_add(a3, d2c[2].mul_add(a2, d2c[1].mul_add(a1, d2c[0] * a0)));
                av = pre00.mul_add(s0, av);
                agx = pre10.mul_add(s0, agx);
                agy = pre01.mul_add(s0, agy);
                agz = pre00.mul_add(s1, agz);
                ahxx = pre20.mul_add(s0, ahxx);
                ahxy = pre11.mul_add(s0, ahxy);
                ahxz = pre10.mul_add(s1, ahxz);
                ahyy = pre02.mul_add(s0, ahyy);
                ahyz = pre01.mul_add(s1, ahyz);
                ahzz = pre00.mul_add(s2, ahzz);
            }
        }
        v[idx] = av;
        gx[idx] = agx;
        gy[idx] = agy;
        gz[idx] = agz;
        hxx[idx] = ahxx;
        hxy[idx] = ahxy;
        hxz[idx] = ahxz;
        hyy[idx] = ahyy;
        hyz[idx] = ahyz;
        hzz[idx] = ahzz;
    }
}

/// Prefetch the byte span covering orbitals `[from, to)` of all 64
/// coefficient z-lines of `loc`'s evaluation cell into L1
/// (`_MM_HINT_T0`). Compiles to nothing outside x86-64 / without the
/// `simd` feature.
#[inline(always)]
fn prefetch_span<T: Real>(coefs: &MultiCoefs<T>, loc: &Located<T>, from: usize, to: usize) {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    {
        use std::arch::x86_64::{_mm_prefetch, _MM_HINT_T0};
        if from >= to {
            return;
        }
        const CACHE_LINE: usize = 64;
        let lo = from * std::mem::size_of::<T>();
        let hi = to * std::mem::size_of::<T>();
        for i in 0..4 {
            for j in 0..4 {
                for line in plane_lines(coefs, loc, i, j) {
                    let base = line.as_ptr().cast::<i8>();
                    let mut off = lo;
                    while off < hi {
                        // SAFETY: `off < hi ≤ line byte length`; prefetch
                        // reads no data and has no architectural effects.
                        unsafe { _mm_prefetch(base.add(off), _MM_HINT_T0) };
                        off += CACHE_LINE;
                    }
                }
            }
        }
    }
    #[cfg(not(all(feature = "simd", target_arch = "x86_64")))]
    {
        let _ = (coefs, loc, from, to);
    }
}

/// Orbitals per look-ahead block of [`one_soa`]: 64·4 B = one 256 B
/// segment per z-line in f32 (512 B in f64) — small enough that the
/// prefetched next block displaces little of L1, large enough that one
/// block's compute covers the 64 outstanding DRAM round-trips. Always
/// a multiple of every pack's lane count, so the chunked lane
/// partition equals the monolithic one.
const ONE_BLOCK: usize = 64;

/// Coefficient tables at least this large are treated as streaming
/// (not cache-resident) by [`one_soa`]: a batch-of-1 V evaluation of
/// such a table stalls on DRAM and benefits from explicit look-ahead,
/// while smaller tables stay hot in cache and the prefetch µops are
/// pure overhead.
const STREAMING_BYTES: usize = 8 << 20;

/// Single-position ("one-move") kernel: the same per-orbital operation
/// chains as [`v_soa`]/[`vgl_soa`]/[`vgh_soa`] — results are
/// bit-identical (the per-orbital accumulators are lane-private, so
/// any lane-aligned range partition reproduces the monolithic walk).
///
/// The V kernel on a streaming-sized table walks the orbital range in
/// [`ONE_BLOCK`] chunks with the *next* chunk's 64 coefficient
/// segments software-prefetched while the current chunk computes: a
/// batch-of-1 evaluation has no neighbor position to overlap with and
/// its 64 concurrent z-line streams exceed the hardware prefetcher's
/// stream capacity, so without the look-ahead every chunk stalls on
/// DRAM latency. VGL/VGH carry 3–6× the arithmetic per coefficient
/// and already cover the same latency with compute — for them (and
/// for cache-resident tables, where every prefetch is a hit) the
/// look-ahead µops measurably *cost* time, so those cases run the
/// plain full-range bodies.
#[inline(always)]
pub(crate) fn one_soa<T: Real, L: SimdReal<T>>(
    kernel: Kernel,
    coefs: &MultiCoefs<T>,
    loc: &Located<T>,
    mut out: SoAStreamsMut<'_, T>,
) {
    let m = out.len();
    let streaming = coefs.bytes() >= STREAMING_BYTES;
    match kernel {
        Kernel::V if streaming => {
            let mut cs = 0usize;
            prefetch_span(coefs, loc, 0, ONE_BLOCK.min(m));
            while cs < m {
                let ce = (cs + ONE_BLOCK).min(m);
                prefetch_span(coefs, loc, ce, (ce + ONE_BLOCK).min(m));
                v_soa_range::<T, L>(coefs, loc, &mut out, cs, ce);
                cs = ce;
            }
        }
        Kernel::V => v_soa_range::<T, L>(coefs, loc, &mut out, 0, m),
        Kernel::Vgl => vgl_soa_range::<T, L>(coefs, loc, &mut out, 0, m),
        Kernel::Vgh => vgh_soa_range::<T, L>(coefs, loc, &mut out, 0, m),
    }
}

/// `y[..n] += a · x[..n]` (read-modify-write, one coefficient point of
/// the AoS baseline's V accumulation).
#[inline(always)]
pub(crate) fn axpy<T: Real, L: SimdReal<T>>(a: T, x: &[T], y: &mut [T], n: usize) {
    let x = &x[..n];
    let y = &mut y[..n];
    let av = L::splat(a);
    let mut i = 0;
    while i + L::LANES <= n {
        av.mul_add(L::load(x, i), L::load(y, i)).store(y, i);
        i += L::LANES;
    }
    while i < n {
        y[i] = a.mul_add(x[i], y[i]);
        i += 1;
    }
}

/// `v[..n] += pv·x[..n]` and `l[..n] += pl·x[..n]` in one pass over `x`
/// (the unit-stride streams of one AoS VGL coefficient point).
#[inline(always)]
pub(crate) fn vl_point<T: Real, L: SimdReal<T>>(
    pv: T,
    pl: T,
    x: &[T],
    v: &mut [T],
    l: &mut [T],
    n: usize,
) {
    let x = &x[..n];
    let v = &mut v[..n];
    let l = &mut l[..n];
    let pvv = L::splat(pv);
    let plv = L::splat(pl);
    let mut i = 0;
    while i + L::LANES <= n {
        let xv = L::load(x, i);
        pvv.mul_add(xv, L::load(v, i)).store(v, i);
        plv.mul_add(xv, L::load(l, i)).store(l, i);
        i += L::LANES;
    }
    while i < n {
        v[i] = pv.mul_add(x[i], v[i]);
        l[i] = pl.mul_add(x[i], l[i]);
        i += 1;
    }
}
