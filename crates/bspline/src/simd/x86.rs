//! `std::arch` x86-64 lane packs (AVX2+FMA and SSE2) and the
//! `#[target_feature]` wrapper functions the dispatch tables point at.
//!
//! Every [`SimdReal`] method is `#[inline(always)]` so the intrinsic
//! calls inline into the `#[target_feature]` wrappers below and receive
//! the wide codegen there. The safe outer wrappers do the one `unsafe`
//! call; soundness rests on the dispatch layer only ever selecting a
//! table after `is_x86_feature_detected!` confirmed the features (see
//! `dispatch.rs`).

use super::dispatch::Fns;
use super::lanes::SimdReal;
use super::Backend;
use std::arch::x86_64::*;

/// Eight `f32` lanes in one AVX2 register, fused `mul_add` (FMA3).
#[derive(Clone, Copy)]
pub(crate) struct F32x8(__m256);

impl SimdReal<f32> for F32x8 {
    const LANES: usize = 8;

    #[inline(always)]
    fn splat(x: f32) -> Self {
        // SAFETY: reached only from an avx2+fma wrapper (dispatch-gated).
        Self(unsafe { _mm256_set1_ps(x) })
    }

    #[inline(always)]
    fn load(s: &[f32], at: usize) -> Self {
        debug_assert!(at + Self::LANES <= s.len());
        // SAFETY: bounds guaranteed by the kernel chunk loop (debug-asserted).
        Self(unsafe { _mm256_loadu_ps(s.as_ptr().add(at)) })
    }

    #[inline(always)]
    fn store(self, s: &mut [f32], at: usize) {
        debug_assert!(at + Self::LANES <= s.len());
        // SAFETY: as for `load`.
        unsafe { _mm256_storeu_ps(s.as_mut_ptr().add(at), self.0) }
    }

    #[inline(always)]
    fn mul(self, a: Self) -> Self {
        // SAFETY: as for `splat`.
        Self(unsafe { _mm256_mul_ps(self.0, a.0) })
    }

    #[inline(always)]
    fn mul_add(self, a: Self, b: Self) -> Self {
        // SAFETY: as for `splat`.
        Self(unsafe { _mm256_fmadd_ps(self.0, a.0, b.0) })
    }
}

/// Four `f64` lanes in one AVX2 register, fused `mul_add` (FMA3).
#[derive(Clone, Copy)]
pub(crate) struct F64x4(__m256d);

impl SimdReal<f64> for F64x4 {
    const LANES: usize = 4;

    #[inline(always)]
    fn splat(x: f64) -> Self {
        // SAFETY: reached only from an avx2+fma wrapper (dispatch-gated).
        Self(unsafe { _mm256_set1_pd(x) })
    }

    #[inline(always)]
    fn load(s: &[f64], at: usize) -> Self {
        debug_assert!(at + Self::LANES <= s.len());
        // SAFETY: bounds guaranteed by the kernel chunk loop (debug-asserted).
        Self(unsafe { _mm256_loadu_pd(s.as_ptr().add(at)) })
    }

    #[inline(always)]
    fn store(self, s: &mut [f64], at: usize) {
        debug_assert!(at + Self::LANES <= s.len());
        // SAFETY: as for `load`.
        unsafe { _mm256_storeu_pd(s.as_mut_ptr().add(at), self.0) }
    }

    #[inline(always)]
    fn mul(self, a: Self) -> Self {
        // SAFETY: as for `splat`.
        Self(unsafe { _mm256_mul_pd(self.0, a.0) })
    }

    #[inline(always)]
    fn mul_add(self, a: Self, b: Self) -> Self {
        // SAFETY: as for `splat`.
        Self(unsafe { _mm256_fmadd_pd(self.0, a.0, b.0) })
    }
}

/// Four `f32` lanes in one SSE2 register. No FMA: `mul_add` is
/// `mulps` + `addps`, modelling a pre-AVX machine.
#[derive(Clone, Copy)]
pub(crate) struct F32x4(__m128);

impl SimdReal<f32> for F32x4 {
    const LANES: usize = 4;

    #[inline(always)]
    fn splat(x: f32) -> Self {
        // SAFETY: sse2 is part of the x86-64 baseline.
        Self(unsafe { _mm_set1_ps(x) })
    }

    #[inline(always)]
    fn load(s: &[f32], at: usize) -> Self {
        debug_assert!(at + Self::LANES <= s.len());
        // SAFETY: bounds guaranteed by the kernel chunk loop (debug-asserted).
        Self(unsafe { _mm_loadu_ps(s.as_ptr().add(at)) })
    }

    #[inline(always)]
    fn store(self, s: &mut [f32], at: usize) {
        debug_assert!(at + Self::LANES <= s.len());
        // SAFETY: as for `load`.
        unsafe { _mm_storeu_ps(s.as_mut_ptr().add(at), self.0) }
    }

    #[inline(always)]
    fn mul(self, a: Self) -> Self {
        // SAFETY: sse2 is part of the x86-64 baseline.
        Self(unsafe { _mm_mul_ps(self.0, a.0) })
    }

    #[inline(always)]
    fn mul_add(self, a: Self, b: Self) -> Self {
        // SAFETY: sse2 is part of the x86-64 baseline.
        Self(unsafe { _mm_add_ps(_mm_mul_ps(self.0, a.0), b.0) })
    }
}

/// Two `f64` lanes in one SSE2 register (unfused `mul_add`).
#[derive(Clone, Copy)]
pub(crate) struct F64x2(__m128d);

impl SimdReal<f64> for F64x2 {
    const LANES: usize = 2;

    #[inline(always)]
    fn splat(x: f64) -> Self {
        // SAFETY: sse2 is part of the x86-64 baseline.
        Self(unsafe { _mm_set1_pd(x) })
    }

    #[inline(always)]
    fn load(s: &[f64], at: usize) -> Self {
        debug_assert!(at + Self::LANES <= s.len());
        // SAFETY: bounds guaranteed by the kernel chunk loop (debug-asserted).
        Self(unsafe { _mm_loadu_pd(s.as_ptr().add(at)) })
    }

    #[inline(always)]
    fn store(self, s: &mut [f64], at: usize) {
        debug_assert!(at + Self::LANES <= s.len());
        // SAFETY: as for `load`.
        unsafe { _mm_storeu_pd(s.as_mut_ptr().add(at), self.0) }
    }

    #[inline(always)]
    fn mul(self, a: Self) -> Self {
        // SAFETY: sse2 is part of the x86-64 baseline.
        Self(unsafe { _mm_mul_pd(self.0, a.0) })
    }

    #[inline(always)]
    fn mul_add(self, a: Self, b: Self) -> Self {
        // SAFETY: sse2 is part of the x86-64 baseline.
        Self(unsafe { _mm_add_pd(_mm_mul_pd(self.0, a.0), b.0) })
    }
}

/// One `#[target_feature]` wrapper per micro-kernel plus the dispatch
/// table tying them together, generated per (scalar type, lane pack,
/// feature string). Adding a backend = adding one invocation of this
/// macro (plus a [`Backend`] variant and its detection).
macro_rules! backend_fns {
    ($modname:ident, $backend:expr, $t:ty, $lane:ty, $feat:literal) => {
        pub(crate) mod $modname {
            use super::*;
            use crate::batch::Located;
            use crate::layout::Kernel;
            use crate::output::SoAStreamsMut;
            use crate::simd::kernels;
            use einspline::multi::MultiCoefs;

            #[target_feature(enable = $feat)]
            fn v_soa_tf(c: &MultiCoefs<$t>, l: &Located<$t>, o: SoAStreamsMut<'_, $t>) {
                kernels::v_soa::<$t, $lane>(c, l, o)
            }
            #[target_feature(enable = $feat)]
            fn vgl_soa_tf(c: &MultiCoefs<$t>, l: &Located<$t>, o: SoAStreamsMut<'_, $t>) {
                kernels::vgl_soa::<$t, $lane>(c, l, o)
            }
            #[target_feature(enable = $feat)]
            fn vgh_soa_tf(c: &MultiCoefs<$t>, l: &Located<$t>, o: SoAStreamsMut<'_, $t>) {
                kernels::vgh_soa::<$t, $lane>(c, l, o)
            }
            #[target_feature(enable = $feat)]
            fn one_soa_tf(k: Kernel, c: &MultiCoefs<$t>, l: &Located<$t>, o: SoAStreamsMut<'_, $t>) {
                kernels::one_soa::<$t, $lane>(k, c, l, o)
            }
            #[target_feature(enable = $feat)]
            fn axpy_tf(a: $t, x: &[$t], y: &mut [$t], n: usize) {
                kernels::axpy::<$t, $lane>(a, x, y, n)
            }
            #[target_feature(enable = $feat)]
            fn vl_point_tf(pv: $t, pl: $t, x: &[$t], v: &mut [$t], l: &mut [$t], n: usize) {
                kernels::vl_point::<$t, $lane>(pv, pl, x, v, l, n)
            }

            fn v_soa(c: &MultiCoefs<$t>, l: &Located<$t>, o: SoAStreamsMut<'_, $t>) {
                // SAFETY: this table is only selected after runtime
                // detection of the required CPU features.
                unsafe { v_soa_tf(c, l, o) }
            }
            fn vgl_soa(c: &MultiCoefs<$t>, l: &Located<$t>, o: SoAStreamsMut<'_, $t>) {
                // SAFETY: as above.
                unsafe { vgl_soa_tf(c, l, o) }
            }
            fn vgh_soa(c: &MultiCoefs<$t>, l: &Located<$t>, o: SoAStreamsMut<'_, $t>) {
                // SAFETY: as above.
                unsafe { vgh_soa_tf(c, l, o) }
            }
            fn one_soa(k: Kernel, c: &MultiCoefs<$t>, l: &Located<$t>, o: SoAStreamsMut<'_, $t>) {
                // SAFETY: as above.
                unsafe { one_soa_tf(k, c, l, o) }
            }
            fn axpy(a: $t, x: &[$t], y: &mut [$t], n: usize) {
                // SAFETY: as above.
                unsafe { axpy_tf(a, x, y, n) }
            }
            fn vl_point(pv: $t, pl: $t, x: &[$t], v: &mut [$t], l: &mut [$t], n: usize) {
                // SAFETY: as above.
                unsafe { vl_point_tf(pv, pl, x, v, l, n) }
            }

            pub(crate) static FNS: Fns<$t> = Fns {
                backend: $backend,
                v_soa,
                vgl_soa,
                vgh_soa,
                one_soa,
                axpy,
                vl_point,
            };
        }
    };
}

backend_fns!(avx2_f32, Backend::Avx2, f32, F32x8, "avx2,fma");
backend_fns!(avx2_f64, Backend::Avx2, f64, F64x4, "avx2,fma");
backend_fns!(sse2_f32, Backend::Sse2, f32, F32x4, "sse2");
backend_fns!(sse2_f64, Backend::Sse2, f64, F64x2, "sse2");
