//! The lane abstraction: a pack of `LANES` reals with the operations
//! the micro-kernels need, plus the portable scalar-array fallback.

use einspline::Real;

/// A pack of [`Self::LANES`] values of `T` — the unit the explicit
/// micro-kernels operate on.
///
/// Implementations must keep every method `#[inline(always)]`: the
/// generic kernel bodies are instantiated inside `#[target_feature]`
/// wrapper functions, and the intrinsics only receive the right codegen
/// when they are inlined into that context.
///
/// `load`/`store` take a slice plus a start index; the caller (the
/// kernel chunk loop) guarantees `at + LANES <= s.len()`, which the
/// implementations re-check with `debug_assert!` before the raw
/// unaligned load/store.
pub trait SimdReal<T: Real>: Copy {
    /// Number of `T` lanes in one pack.
    const LANES: usize;

    /// Broadcast one value to every lane.
    fn splat(x: T) -> Self;

    /// Load `LANES` consecutive elements starting at `s[at]`.
    fn load(s: &[T], at: usize) -> Self;

    /// Store the pack to `s[at..at + LANES]`.
    fn store(self, s: &mut [T], at: usize);

    /// Lanewise `self * a`.
    fn mul(self, a: Self) -> Self;

    /// Lanewise `self * a + b`. Fused where the backend has FMA
    /// (AVX2, scalar `mul_add`); `mul`+`add` on SSE2.
    fn mul_add(self, a: Self, b: Self) -> Self;
}

/// Width of the portable scalar-array pack.
pub const SCALAR_LANES: usize = 4;

/// The portable fallback pack: a plain `[T; 4]` processed with scalar
/// `mul_add` per lane. Bit-identical to the pre-SIMD reference loops
/// (same fused elementwise chain) on every architecture.
#[derive(Clone, Copy, Debug)]
pub struct ScalarLanes<T>([T; SCALAR_LANES]);

impl<T: Real> SimdReal<T> for ScalarLanes<T> {
    const LANES: usize = SCALAR_LANES;

    #[inline(always)]
    fn splat(x: T) -> Self {
        Self([x; SCALAR_LANES])
    }

    #[inline(always)]
    fn load(s: &[T], at: usize) -> Self {
        let s = &s[at..at + SCALAR_LANES];
        Self([s[0], s[1], s[2], s[3]])
    }

    #[inline(always)]
    fn store(self, s: &mut [T], at: usize) {
        s[at..at + SCALAR_LANES].copy_from_slice(&self.0);
    }

    #[inline(always)]
    fn mul(self, a: Self) -> Self {
        let mut out = self.0;
        for k in 0..SCALAR_LANES {
            out[k] *= a.0[k];
        }
        Self(out)
    }

    #[inline(always)]
    fn mul_add(self, a: Self, b: Self) -> Self {
        let mut out = self.0;
        for k in 0..SCALAR_LANES {
            out[k] = out[k].mul_add(a.0[k], b.0[k]);
        }
        Self(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_pack_roundtrip_and_fma() {
        let src = [1.0f32, 2.0, 3.0, 4.0, 5.0, 6.0];
        let a = ScalarLanes::<f32>::load(&src, 1);
        let b = ScalarLanes::<f32>::splat(10.0);
        let mut dst = [0.0f32; 6];
        a.mul_add(b, a).store(&mut dst, 2);
        // a*10 + a = 11a for lanes [2..6) of src offset 1.
        assert_eq!(&dst[2..6], &[22.0, 33.0, 44.0, 55.0]);
        let m = a.mul(b);
        let mut dst2 = [0.0f32; 4];
        m.store(&mut dst2, 0);
        assert_eq!(dst2, [20.0, 30.0, 40.0, 50.0]);
    }

    #[test]
    #[should_panic]
    fn scalar_pack_load_checks_bounds() {
        let src = [0.0f32; 4];
        let _ = ScalarLanes::<f32>::load(&src, 2);
    }
}
