//! Runtime backend selection: one-time CPU detection + `QMC_SIMD`
//! override, cached per-process, with a thread-local force for A/B
//! measurements, and the per-type `&'static` function-pointer tables
//! the kernel entry points call through.

use super::kernels;
use super::lanes::{ScalarLanes, SimdReal};
use crate::batch::Located;
use crate::layout::Kernel;
use crate::output::SoAStreamsMut;
use einspline::multi::MultiCoefs;
use einspline::Real;
use std::any::TypeId;
use std::cell::Cell;
use std::str::FromStr;
use std::sync::OnceLock;

/// A SIMD instruction-set backend for the micro-kernels.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Backend {
    /// Portable scalar-array pack (`[T; 4]` with per-lane `mul_add`).
    /// Bit-identical to the pre-SIMD reference loops; always available.
    Scalar,
    /// 128-bit `std::arch` SSE2 pack. No FMA (`mul`+`add`), modelling a
    /// pre-AVX x86-64 machine; results differ from the fused reference
    /// by rounding only.
    Sse2,
    /// 256-bit `std::arch` AVX2 pack with FMA3 — bit-identical to the
    /// scalar reference (same fused elementwise chain).
    Avx2,
}

impl Backend {
    /// Every backend, worst to best.
    pub const ALL: [Backend; 3] = [Backend::Scalar, Backend::Sse2, Backend::Avx2];

    /// Backends usable on this host with the current build (ordered
    /// worst to best; always contains [`Backend::Scalar`]).
    pub fn available() -> Vec<Backend> {
        #[allow(unused_mut)]
        let mut v = vec![Backend::Scalar];
        #[cfg(all(feature = "simd", target_arch = "x86_64"))]
        {
            v.push(Backend::Sse2); // baseline x86-64 feature
            if std::arch::is_x86_feature_detected!("avx2")
                && std::arch::is_x86_feature_detected!("fma")
            {
                v.push(Backend::Avx2);
            }
        }
        v
    }

    /// Whether this backend's `mul_add` is fused (and therefore
    /// bit-identical to the scalar reference).
    pub fn is_fused(self) -> bool {
        !matches!(self, Backend::Sse2)
    }

    /// Lane count for `f32` packs.
    pub fn lanes_f32(self) -> usize {
        lanes_for::<f32>(self)
    }

    /// Lane count for `f64` packs.
    pub fn lanes_f64(self) -> usize {
        lanes_for::<f64>(self)
    }

    /// Lowercase name as accepted by `QMC_SIMD`.
    pub fn name(self) -> &'static str {
        match self {
            Backend::Scalar => "scalar",
            Backend::Sse2 => "sse2",
            Backend::Avx2 => "avx2",
        }
    }
}

impl std::fmt::Display for Backend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for Backend {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        match s.trim().to_ascii_lowercase().as_str() {
            "scalar" => Ok(Backend::Scalar),
            "sse2" => Ok(Backend::Sse2),
            "avx2" => Ok(Backend::Avx2),
            other => Err(format!(
                "unknown QMC_SIMD backend {other:?} (expected avx2|sse2|scalar)"
            )),
        }
    }
}

/// Lane count of `backend`'s pack for element type `T` (4 for the
/// scalar-array pack regardless of `T`).
pub fn lanes_for<T: Real>(backend: Backend) -> usize {
    match backend {
        Backend::Scalar => ScalarLanes::<T>::LANES,
        Backend::Sse2 => 16 / std::mem::size_of::<T>(),
        Backend::Avx2 => 32 / std::mem::size_of::<T>(),
    }
}

static DEFAULT: OnceLock<Backend> = OnceLock::new();

/// The process-wide default backend: best available, overridden by
/// `QMC_SIMD=avx2|sse2|scalar`. Detected once and cached; an override
/// naming an unavailable or unknown backend falls back to the best
/// available with a one-time warning on stderr.
pub fn default_backend() -> Backend {
    *DEFAULT.get_or_init(|| {
        let available = Backend::available();
        let best = *available.last().expect("scalar always available");
        match std::env::var("QMC_SIMD") {
            Err(_) => best,
            Ok(raw) => match raw.parse::<Backend>() {
                Ok(b) if available.contains(&b) => b,
                Ok(b) => {
                    eprintln!(
                        "QMC_SIMD={b} unavailable on this host/build; using {best}"
                    );
                    best
                }
                Err(e) => {
                    eprintln!("{e}; using {best}");
                    best
                }
            },
        }
    })
}

thread_local! {
    static FORCED: Cell<Option<Backend>> = const { Cell::new(None) };
}

/// The backend the *current thread*'s next kernel call will use:
/// the [`with_backend`] force if one is active, else the process
/// default.
pub fn active_backend() -> Backend {
    FORCED.with(|f| f.get()).unwrap_or_else(default_backend)
}

/// Run `f` with every kernel call on this thread forced to `backend`
/// (A/B testing: scalar-vs-SIMD bench rows, parity tests). Panics if
/// `backend` is not in [`Backend::available`] — forcing an undetected
/// instruction set would be unsound. The force is thread-local: work
/// handed to other threads (e.g. [`crate::parallel::run_nested`])
/// keeps the process default.
pub fn with_backend<R>(backend: Backend, f: impl FnOnce() -> R) -> R {
    assert!(
        Backend::available().contains(&backend),
        "backend {backend} not available on this host/build"
    );
    struct Restore(Option<Backend>);
    impl Drop for Restore {
        fn drop(&mut self) {
            FORCED.with(|c| c.set(self.0));
        }
    }
    let _guard = Restore(FORCED.with(|c| c.replace(Some(backend))));
    f()
}

/// Signature of the dispatched SoA eval-level kernels: the stream view
/// carries the orbital range (whole padded streams for the monolithic
/// engines, one block's sub-range for [`crate::blocked`]).
type SoaEvalFn<T> = for<'a> fn(&MultiCoefs<T>, &Located<T>, SoAStreamsMut<'a, T>);
/// Signature of the dispatched single-position (one-move) kernel: one
/// function covers V/VGL/VGH via the leading selector.
type OneSoaFn<T> = for<'a> fn(Kernel, &MultiCoefs<T>, &Located<T>, SoAStreamsMut<'a, T>);
/// Signature of the dispatched AoS V/L point accumulation.
type VlPointFn<T> = fn(T, T, &[T], &mut [T], &mut [T], usize);

/// One monomorphized micro-kernel set: what the dispatch hands back per
/// (scalar type, backend).
pub(crate) struct Fns<T: Real> {
    /// Which backend these pointers implement.
    #[cfg_attr(not(test), allow(dead_code))]
    pub backend: Backend,
    pub v_soa: SoaEvalFn<T>,
    pub vgl_soa: SoaEvalFn<T>,
    pub vgh_soa: SoaEvalFn<T>,
    pub one_soa: OneSoaFn<T>,
    pub axpy: fn(T, &[T], &mut [T], usize),
    pub vl_point: VlPointFn<T>,
}

macro_rules! scalar_fns {
    ($t:ty) => {
        Fns {
            backend: Backend::Scalar,
            v_soa: kernels::v_soa::<$t, ScalarLanes<$t>>,
            vgl_soa: kernels::vgl_soa::<$t, ScalarLanes<$t>>,
            vgh_soa: kernels::vgh_soa::<$t, ScalarLanes<$t>>,
            one_soa: kernels::one_soa::<$t, ScalarLanes<$t>>,
            axpy: kernels::axpy::<$t, ScalarLanes<$t>>,
            vl_point: kernels::vl_point::<$t, ScalarLanes<$t>>,
        }
    };
}

static SCALAR_F32: Fns<f32> = scalar_fns!(f32);
static SCALAR_F64: Fns<f64> = scalar_fns!(f64);

fn table_f32(b: Backend) -> &'static Fns<f32> {
    match b {
        #[cfg(all(feature = "simd", target_arch = "x86_64"))]
        Backend::Avx2 => &super::x86::avx2_f32::FNS,
        #[cfg(all(feature = "simd", target_arch = "x86_64"))]
        Backend::Sse2 => &super::x86::sse2_f32::FNS,
        _ => &SCALAR_F32,
    }
}

fn table_f64(b: Backend) -> &'static Fns<f64> {
    match b {
        #[cfg(all(feature = "simd", target_arch = "x86_64"))]
        Backend::Avx2 => &super::x86::avx2_f64::FNS,
        #[cfg(all(feature = "simd", target_arch = "x86_64"))]
        Backend::Sse2 => &super::x86::sse2_f64::FNS,
        _ => &SCALAR_F64,
    }
}

/// The active dispatch table for `T`, or `None` for scalar types other
/// than `f32`/`f64` (callers then use the generic scalar-pack body).
#[inline]
pub(crate) fn fns<T: Real>() -> Option<&'static Fns<T>> {
    let b = active_backend();
    if TypeId::of::<T>() == TypeId::of::<f32>() {
        let t = table_f32(b);
        // SAFETY: `T` is `f32` (checked above); `Fns<T>` and `Fns<f32>`
        // are the same type behind the cast.
        Some(unsafe { &*(t as *const Fns<f32>).cast::<Fns<T>>() })
    } else if TypeId::of::<T>() == TypeId::of::<f64>() {
        let t = table_f64(b);
        // SAFETY: `T` is `f64` (checked above).
        Some(unsafe { &*(t as *const Fns<f64>).cast::<Fns<T>>() })
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_is_always_available() {
        let avail = Backend::available();
        assert!(avail.contains(&Backend::Scalar));
        assert!(avail.windows(2).all(|w| w[0] < w[1]), "ordered worst→best");
    }

    #[test]
    fn env_values_parse() {
        assert_eq!("avx2".parse::<Backend>(), Ok(Backend::Avx2));
        assert_eq!(" SSE2 ".parse::<Backend>(), Ok(Backend::Sse2));
        assert_eq!("scalar".parse::<Backend>(), Ok(Backend::Scalar));
        assert!("neon".parse::<Backend>().is_err());
        assert_eq!(Backend::Avx2.name(), "avx2");
    }

    #[test]
    fn lane_counts_match_register_widths() {
        assert_eq!(Backend::Scalar.lanes_f32(), 4);
        assert_eq!(Backend::Sse2.lanes_f32(), 4);
        assert_eq!(Backend::Sse2.lanes_f64(), 2);
        assert_eq!(Backend::Avx2.lanes_f32(), 8);
        assert_eq!(Backend::Avx2.lanes_f64(), 4);
    }

    #[test]
    fn with_backend_forces_and_restores() {
        let before = active_backend();
        with_backend(Backend::Scalar, || {
            assert_eq!(active_backend(), Backend::Scalar);
            assert_eq!(fns::<f32>().unwrap().backend, Backend::Scalar);
        });
        assert_eq!(active_backend(), before);
    }

    #[test]
    fn tables_report_their_backend() {
        for b in Backend::available() {
            assert_eq!(table_f32(b).backend, b);
            assert_eq!(table_f64(b).backend, b);
        }
    }

    #[test]
    #[should_panic(expected = "not available")]
    fn with_backend_rejects_unavailable() {
        // At least one of these is unavailable in a --no-default-features
        // build; in a full build on an AVX2 host everything is available,
        // so fabricate unavailability via the feature gate instead.
        if Backend::available().len() == Backend::ALL.len() {
            panic!("not available (all backends present; nothing to reject)");
        }
        let missing = *Backend::ALL
            .iter()
            .find(|b| !Backend::available().contains(b))
            .unwrap();
        with_backend(missing, || ());
    }
}
