//! Long-lived engine replicas: engine ownership decoupled from the
//! thread pool.
//!
//! Every pre-service entry point in this crate borrowed an engine per
//! call (`run_nested(&engine, …)`): the engine lives on the caller's
//! stack and the fork-join workers borrow it for one generation. The
//! service model ([`crate::service`]) inverts that — worker threads own
//! their evaluation context for the lifetime of the service — and the
//! ROADMAP's NUMA replica routing needs several such contexts over one
//! shared table. This module is the ownership substrate for both:
//!
//! * [`EngineCell`] — a shared, immutable engine (`Arc` under the hood)
//!   from which any number of replica handles can be minted;
//! * [`Replica`] — one long-lived handle: the engine reference plus the
//!   **SIMD backend pinned at mint time** and a routing id. A worker
//!   that owns a `Replica` re-arms the thread-local backend itself
//!   ([`Replica::run`]) instead of relying on the submitting thread's
//!   state, so a service worker evaluates with the backend that was
//!   active when the service was built — which is what makes forced
//!   scalar/SIMD A/B measurement work across the submission boundary;
//! * [`EngineRef`] — the access trait the `parallel` entry points are
//!   generic over, so the closed-loop fork-join path (`&engine`) and
//!   the service path (`Replica`) share one code path. For a plain
//!   borrow the backend is sampled at entry-point call time (the
//!   pre-refactor behavior, exactly); for a replica it is the pinned
//!   one.
//!
//! The engine behind a cell is immutable (all evaluation methods take
//! `&self`), so replicas never contend on anything but the shared
//! read-only coefficient table — the same sharing model the fork-join
//! paths always had, now with an owner whose lifetime is not one call.

use crate::simd::{self, Backend};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// A shared immutable engine from which long-lived [`Replica`] handles
/// are minted.
///
/// Cloning the cell is cheap (it clones the `Arc`); clones mint from
/// the same id sequence, so every replica of one logical engine gets a
/// distinct id regardless of which clone minted it. That property is
/// what the service's supervisor leans on: respawning a crashed worker
/// mints a *fresh* replica (new id, same domain tag) from the same
/// cell, so a respawn is distinguishable from the worker it replaced
/// while keeping its routing affinity.
#[derive(Debug)]
pub struct EngineCell<E> {
    inner: Arc<E>,
    next_id: Arc<AtomicUsize>,
}

impl<E> Clone for EngineCell<E> {
    fn clone(&self) -> Self {
        Self {
            inner: Arc::clone(&self.inner),
            next_id: Arc::clone(&self.next_id),
        }
    }
}

impl<E> EngineCell<E> {
    /// Take ownership of `engine` and make it mintable.
    pub fn new(engine: E) -> Self {
        Self {
            inner: Arc::new(engine),
            next_id: Arc::new(AtomicUsize::new(0)),
        }
    }

    /// Borrow the shared engine directly (configuration queries,
    /// `make_out` allocation — anything that need not re-arm a SIMD
    /// backend).
    pub fn engine(&self) -> &E {
        &self.inner
    }

    /// Mint one replica handle. The handle captures the **currently
    /// active** SIMD backend ([`simd::active_backend`]), so minting
    /// inside a [`simd::with_backend`] force pins that force into the
    /// replica for its whole lifetime — on whatever thread it later
    /// evaluates.
    pub fn handle(&self) -> Replica<E> {
        self.handle_for_domain(0)
    }

    /// Mint one replica handle keyed to NUMA `domain` — the shard the
    /// routed service steers this replica's batches toward. Same
    /// backend-pinning contract as [`EngineCell::handle`].
    pub fn handle_for_domain(&self, domain: usize) -> Replica<E> {
        Replica {
            engine: Arc::clone(&self.inner),
            backend: simd::active_backend(),
            id: self.next_id.fetch_add(1, Ordering::Relaxed),
            domain,
        }
    }

    /// Mint `n` replica handles (service worker startup).
    pub fn handles(&self, n: usize) -> Vec<Replica<E>> {
        (0..n).map(|_| self.handle()).collect()
    }

    /// Replica handles ever minted from this cell (across all clones).
    /// A count above the initial worker pool means the supervisor has
    /// re-minted replicas for crashed workers.
    pub fn minted(&self) -> usize {
        self.next_id.load(Ordering::Relaxed)
    }

    /// Mint `n` replica handles spread round-robin over `n_domains`
    /// NUMA domains (replica `i` serves domain `i % n_domains`) — the
    /// per-shard replica set the routed service workers own. With one
    /// domain this is exactly [`EngineCell::handles`].
    pub fn handles_for_domains(&self, n: usize, n_domains: usize) -> Vec<Replica<E>> {
        assert!(n_domains > 0, "need at least one domain");
        (0..n).map(|i| self.handle_for_domain(i % n_domains)).collect()
    }
}

/// A long-lived handle to a shared engine: the replica a service worker
/// owns for its lifetime.
///
/// Dereferences to the engine for read-only queries; evaluation should
/// go through [`Replica::run`] (or the [`EngineRef`]-generic entry
/// points in [`crate::parallel`]) so the pinned SIMD backend is armed
/// on the evaluating thread.
#[derive(Debug)]
pub struct Replica<E> {
    engine: Arc<E>,
    backend: Backend,
    id: usize,
    domain: usize,
}

impl<E> Clone for Replica<E> {
    fn clone(&self) -> Self {
        Self {
            engine: Arc::clone(&self.engine),
            backend: self.backend,
            id: self.id,
            domain: self.domain,
        }
    }
}

impl<E> std::ops::Deref for Replica<E> {
    type Target = E;

    fn deref(&self) -> &E {
        &self.engine
    }
}

impl<E> Replica<E> {
    /// Routing id (mint order within the cell): stable for the handle's
    /// lifetime.
    pub fn id(&self) -> usize {
        self.id
    }

    /// The NUMA domain this replica serves
    /// ([`EngineCell::handle_for_domain`]; 0 for plain handles) — the
    /// home shard the routed service's worker drains first.
    pub fn domain(&self) -> usize {
        self.domain
    }

    /// The SIMD backend pinned at mint time.
    pub fn backend(&self) -> Backend {
        self.backend
    }

    /// Run `f` with the replica's pinned backend armed on the current
    /// thread (the worker-side analogue of the fork-join paths' re-arm).
    pub fn run<R>(&self, f: impl FnOnce() -> R) -> R {
        simd::with_backend(self.backend, f)
    }
}

/// Access to an engine for the generic entry points in
/// [`crate::parallel`]: *which engine*, and *which SIMD backend the
/// fan-out workers must re-arm*.
///
/// Implemented by `&E` (the classic borrowed call: backend sampled at
/// entry-point call time, preserving the pre-refactor semantics where a
/// surrounding [`simd::with_backend`] force propagates into the
/// workers) and by [`Replica`]/[`EngineCell`] (long-lived ownership:
/// the replica's pinned backend / the currently active one). Entry
/// points take the implementor **by value**, so existing
/// `run_nested(&engine, …)` call sites compile unchanged while a
/// service worker passes its replica handle.
pub trait EngineRef<E>: Send + Sync {
    /// The engine to evaluate with.
    fn engine(&self) -> &E;

    /// The SIMD backend the parallel workers re-arm before evaluating.
    fn backend(&self) -> Backend {
        simd::active_backend()
    }
}

impl<E: Send + Sync> EngineRef<E> for &E {
    fn engine(&self) -> &E {
        self
    }
}

impl<E: Send + Sync> EngineRef<E> for Replica<E> {
    fn engine(&self) -> &E {
        &self.engine
    }

    fn backend(&self) -> Backend {
        self.backend
    }
}

impl<E: Send + Sync> EngineRef<E> for EngineCell<E> {
    fn engine(&self) -> &E {
        &self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::SpoEngine;
    use crate::soa::BsplineSoA;
    use einspline::{Grid1, MultiCoefs};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn soa(n: usize) -> BsplineSoA<f32> {
        let g = Grid1::periodic(0.0, 1.0, 6);
        let mut m = MultiCoefs::<f32>::new(g, g, g, n);
        m.fill_random(&mut StdRng::seed_from_u64(5));
        BsplineSoA::new(m)
    }

    #[test]
    fn handles_share_one_engine_with_distinct_ids() {
        let cell = EngineCell::new(soa(16));
        let a = cell.handle();
        let clone = cell.clone();
        let b = clone.handle();
        assert_eq!(a.id(), 0);
        assert_eq!(b.id(), 1, "clones mint from one id sequence");
        assert_eq!(a.n_splines(), 16);
        assert!(std::ptr::eq(
            cell.engine() as *const _,
            EngineRef::engine(&b) as *const _
        ));
        assert_eq!(cell.handles(3).len(), 3);
        assert_eq!(cell.minted(), 5, "every handle counts, across clones");
    }

    #[test]
    fn domain_minting_spreads_round_robin() {
        let cell = EngineCell::new(soa(8));
        assert_eq!(cell.handle().domain(), 0);
        let spread = cell.handles_for_domains(5, 2);
        let domains: Vec<usize> = spread.iter().map(|r| r.domain()).collect();
        assert_eq!(domains, vec![0, 1, 0, 1, 0]);
        // Ids still mint from the one shared sequence.
        assert!(spread.windows(2).all(|w| w[0].id() < w[1].id()));
        // Single-domain spread is the plain handles() shape.
        assert!(cell.handles_for_domains(3, 1).iter().all(|r| r.domain() == 0));
    }

    #[test]
    fn replica_pins_the_mint_time_backend() {
        use crate::simd::{with_backend, Backend};
        let cell = EngineCell::new(soa(8));
        let pinned = with_backend(Backend::Scalar, || cell.handle());
        assert_eq!(pinned.backend(), Backend::Scalar);
        // The pin survives outside the force and re-arms inside run().
        assert_eq!(
            pinned.run(crate::simd::active_backend),
            Backend::Scalar
        );
        // A handle minted outside the force keeps the default backend.
        let free = cell.handle();
        assert_eq!(free.backend(), crate::simd::active_backend());
    }

    #[test]
    fn borrowed_engine_ref_samples_backend_at_call_time() {
        use crate::simd::{with_backend, Backend};
        let engine = soa(8);
        let r = &engine;
        let sampled = with_backend(Backend::Scalar, || EngineRef::<_>::backend(&r));
        assert_eq!(sampled, Backend::Scalar);
    }

    #[test]
    fn replica_evaluates_like_the_borrowed_engine() {
        let engine = soa(24);
        let cell = EngineCell::new(engine);
        let replica = cell.handle();
        let mut direct = cell.engine().make_out();
        cell.engine().vgh([0.3, 0.6, 0.9], &mut direct);
        let mut via = replica.make_out();
        replica.run(|| replica.vgh([0.3, 0.6, 0.9], &mut via));
        for n in 0..24 {
            assert_eq!(direct.value(n), via.value(n), "n={n}");
            assert_eq!(direct.hessian(n), via.hessian(n), "n={n}");
        }
    }
}
