//! `SpoService` — a coalescing orbital-evaluation service over
//! long-lived engine replicas.
//!
//! The fork-join entry points in [`crate::parallel`] are *closed-loop*:
//! a driver owns the walkers, builds full position blocks itself and
//! blocks until the generation finishes. The "millions of users" shape
//! in the ROADMAP is *open-loop*: many independent walker streams
//! produce small position batches at their own pace, and throughput
//! comes from fusing those submissions into the full [`PosBlock`]s the
//! batched engines are fast on. This module is that front-end:
//!
//! * **Ownership.** [`SpoService::new`] moves the engine into an
//!   [`EngineCell`] and spawns
//!   `replicas` worker threads, each owning one
//!   [`Replica`] handle for its lifetime.
//!   Workers re-arm the replica's pinned SIMD backend before every
//!   batch, so a service built inside a
//!   [`with_backend`](crate::simd::with_backend) force keeps that
//!   backend no matter which thread submits.
//! * **Coalescing.** Submissions carry a kernel tag
//!   ([`Kernel`]); a worker seeds a batch with the queue head and
//!   splices every queued same-kernel request
//!   ([`PosBlock::extend_from_block`]) until the fused block reaches
//!   `max_batch` positions, waiting at most `max_wait` for stragglers
//!   once it holds a partial batch. Requests for other kernels are left
//!   queued for the next worker.
//! * **Backpressure.** The queue is bounded by `queue_positions`
//!   pending positions; [`SpoService::submit`] blocks until space is
//!   available (one oversized request is admitted when the queue is
//!   empty so it cannot deadlock), and [`SpoService::try_submit`] gives
//!   the request back instead of blocking.
//! * **Zero-copy completion.** The caller's [`BatchOut`] blocks are
//!   moved into the fused engine call and handed back through the
//!   [`Ticket`] — the engine writes orbitals directly into the
//!   submitter's buffers; nothing is copied out.
//! * **Routing.** With more than one shard ([`RoutingPolicy`]), the
//!   service keeps one queue per NUMA-domain shard and classifies each
//!   submission by the table region its positions fall in: positions
//!   quantize onto a small lattice of cells, a [`ShardMap`] assigns
//!   cells to shards, and the submission lands on the shard owning the
//!   strict majority of its positions (spatially uniform blocks route
//!   by a deterministic content hash instead, so *identical* blocks
//!   always land on the same shard and coalesce adjacently). A
//!   load-balance escape hatch spills submissions off a shard whose
//!   queue is over its spill limit onto the least-loaded one, so a hot
//!   region cannot starve the rest. Workers drain their replica's home
//!   shard first and steal round-robin otherwise. Routing only decides
//!   *where* a batch runs — never how it is split — so routed results
//!   stay bit-identical to the FIFO path. With one shard (the
//!   [`RoutingPolicy::Auto`] default on a single-domain host) the
//!   service is exactly the single-queue FIFO coalescer.
//! * **Determinism.** Fusing blocks never splits a per-orbital
//!   accumulation chain, so coalesced results are **bit-identical** to
//!   a direct `*_batch` call on every backend — property-tested in
//!   `tests/integration_service.rs`.
//! * **Shutdown.** Dropping the service (or calling
//!   [`SpoService::shutdown`]) wakes all workers, drains every queued
//!   request, and joins the threads; every issued ticket resolves.
//!
//! # Failure model
//!
//! A replica worker is allowed to die: kernel evaluation runs under
//! [`std::panic::catch_unwind`], and a panicking batch never takes the
//! service (or any caller's buffers) down with it.
//!
//! * **Supervision.** When a worker's evaluation panics, the worker
//!   recovers the in-flight requests (the fused output blocks are
//!   un-fused and reattached to their callers), re-enqueues them with a
//!   bumped crash count, and dies. A supervisor thread re-mints a fresh
//!   [`Replica`] from the [`EngineCell`] **with the same domain tag**
//!   and respawns the worker slot, so routing affinity survives the
//!   crash. A request that crashes workers more than
//!   [`ServiceConfig::max_retries`] times resolves its ticket to
//!   [`ServiceError::WorkerLost`] instead of being retried forever.
//! * **Typed outcomes.** [`Ticket::redeem`] (and the deadline-bounded
//!   [`Ticket::redeem_for`]) return `Result<_, Failed>`: the error
//!   carries a [`ServiceError`] *and* the caller's position/output
//!   buffers (or, for a wait-side [`ServiceError::Timeout`], the still
//!   live ticket), so no buffer is ever lost to a failure.
//! * **Deadlines and shedding.** [`SpoService::submit_with_deadline`]
//!   attaches a deadline to the request itself: the queue sheds the
//!   request ([`ServiceError::Shed`]) if the deadline passes while it
//!   is still queued — before evaluation, **never mid-fuse** — so every
//!   result that does complete stays bit-identical to the direct batch.
//! * **Bit-identity of successes.** Faults only decide *whether* a
//!   request evaluates, never *how*: retried batches re-coalesce and
//!   re-fuse under the same never-split-a-chain rule, so any `Ok`
//!   outcome is exactly the direct `*_batch` result, crash or no crash.
//! * **Fault injection.** [`SpoService::with_fault_plan`] scripts
//!   worker faults ([`ServiceFault`]: panic, kill, stall, poison) for
//!   tests, the chaos proptest suite, and the degraded-mode benchmark
//!   rows — the service-layer analogue of the campaign layer's
//!   `CampaignFaultPlan`.

use crate::batch::{check_batch, BatchOut, PosBlock};
use crate::engine::SpoEngine;
use crate::layout::Kernel;
use crate::onemove::MoveContext;
use crate::replica::{EngineCell, EngineRef, Replica};
use crate::tuning;
use einspline::{Real, ShardMap};
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{mpsc, Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Lock, recovering the guard if a panicking thread poisoned the mutex.
/// Every mutation of the shared state happens either before any panic
/// site or is re-validated by the supervisor, so a poisoned guard is
/// still consistent — this is the "poison-then-recover" contract the
/// fault suite scripts with [`ServiceFault::Poison`].
fn lock_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// How submissions map onto shard queues (see the [module docs](self)
/// **Routing** bullet).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum RoutingPolicy {
    /// One queue, strict submit order — the pre-routing coalescer.
    Fifo,
    /// Shard by the host's detected NUMA domain count
    /// ([`tuning::numa_domains`]; override with `QMC_NUMA_DOMAINS`).
    /// On a single-domain host this is exactly [`RoutingPolicy::Fifo`]
    /// — the single-domain no-op contract.
    #[default]
    Auto,
    /// Affinity routing over an explicit shard count, regardless of
    /// what the host reports (ablations, tests).
    Affinity {
        /// Number of shard queues (must be positive).
        domains: usize,
    },
}

impl RoutingPolicy {
    /// The shard-queue count this policy resolves to on this host.
    pub fn shards(self) -> usize {
        match self {
            Self::Fifo => 1,
            Self::Auto => tuning::numa_domains(),
            Self::Affinity { domains } => {
                assert!(domains > 0, "affinity routing needs at least one domain");
                domains
            }
        }
    }
}

/// Service shape: replica count, coalescing policy, queue bound,
/// routing policy, crash-retry budget.
#[derive(Clone, Copy, Debug)]
pub struct ServiceConfig {
    /// Worker threads, each owning one engine replica handle.
    pub replicas: usize,
    /// Fused-batch target: a worker stops coalescing once the fused
    /// block holds at least this many positions.
    pub max_batch: usize,
    /// How long a worker holding a *partial* batch waits for more
    /// same-kernel submissions before evaluating what it has.
    pub max_wait: Duration,
    /// Backpressure bound: pending positions (queued, including those a
    /// worker is still coalescing) the service admits before `submit`
    /// blocks. The bound is global across all shard queues.
    pub queue_positions: usize,
    /// How submissions map onto shard queues.
    pub routing: RoutingPolicy,
    /// How many times a request caught in a worker crash is re-enqueued
    /// before its ticket resolves to [`ServiceError::WorkerLost`]. `0`
    /// fails a request on its first crash.
    pub max_retries: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            replicas: 1,
            max_batch: 32,
            max_wait: Duration::from_micros(200),
            queue_positions: 1024,
            routing: RoutingPolicy::default(),
            max_retries: 2,
        }
    }
}

/// Why a request resolved without a successful evaluation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ServiceError {
    /// The caller's wait deadline ([`Ticket::redeem_for`]) expired
    /// before the request resolved. The request itself is still in
    /// flight — the claim comes back in [`Failed::ticket`].
    Timeout,
    /// The request's service-side deadline
    /// ([`SpoService::submit_with_deadline`]) passed before a worker
    /// started evaluating it, so the queue shed it (never mid-fuse).
    Shed,
    /// The request crashed a worker on every attempt its retry budget
    /// ([`ServiceConfig::max_retries`]) allowed.
    WorkerLost {
        /// Re-enqueue attempts performed before giving up.
        retries: usize,
    },
    /// The service stopped — shut down, or every replica worker was
    /// lost with none respawnable — before the request could run.
    ShuttingDown,
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Timeout => write!(f, "wait deadline expired (request still in flight)"),
            Self::Shed => write!(f, "request deadline passed while queued; shed before evaluation"),
            Self::WorkerLost { retries } => {
                write!(f, "request lost its worker on every attempt ({retries} retries)")
            }
            Self::ShuttingDown => write!(f, "service stopped before the request could run"),
        }
    }
}

impl std::error::Error for ServiceError {}

/// A failed [`Ticket`] redemption: the typed error plus everything the
/// caller can recover. Service-side failures (`Shed`, `WorkerLost`,
/// `ShuttingDown`) hand the submitted positions and the caller's output
/// blocks back in `pos`/`out`; a wait-side `Timeout` hands the still
/// live claim back in `ticket`. Nothing is ever silently dropped.
pub struct Failed<T: Real, O> {
    /// What went wrong.
    pub error: ServiceError,
    /// The submitted position block, for service-side failures.
    pub pos: Option<PosBlock<T>>,
    /// The caller's output blocks (contents unspecified), for
    /// service-side failures.
    pub out: Option<BatchOut<O>>,
    /// The still-live claim, for a wait-side [`ServiceError::Timeout`].
    pub ticket: Option<Ticket<T, O>>,
}

impl<T: Real, O> std::fmt::Debug for Failed<T, O> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Failed")
            .field("error", &self.error)
            .field("pos_len", &self.pos.as_ref().map(PosBlock::len))
            .field("out_len", &self.out.as_ref().map(|o| o.len()))
            .field("ticket", &self.ticket.is_some())
            .finish()
    }
}

/// Liveness of a service's replica pool, as a client would gate on it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ServiceHealth {
    /// Every configured replica worker is live.
    Healthy,
    /// At least one worker is dead (killed, or crashed and not yet
    /// respawned); the survivors keep evaluating.
    Degraded,
    /// No worker is live and none is coming back; queued and future
    /// requests resolve to [`ServiceError::ShuttingDown`].
    Failed,
}

/// One scripted worker fault (see [`ServiceFaultPlan`]). `worker` is
/// the worker *slot* (`0..replicas`, stable across respawns);
/// `at_request` is an admission sequence number — the fault fires the
/// first time that slot handles a batch whose seed request was admitted
/// at or after it. Every fault fires exactly once.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ServiceFault {
    /// Panic the worker inside kernel evaluation. The batch is
    /// recovered and retried; the supervisor respawns the slot.
    Panic {
        /// Worker slot the fault targets.
        worker: usize,
        /// Admission sequence number that arms the fault.
        at_request: usize,
    },
    /// Panic the worker and mark the slot non-respawnable — a permanent
    /// replica loss (the degraded-mode benchmark's knob).
    Kill {
        /// Worker slot the fault targets.
        worker: usize,
        /// Admission sequence number that arms the fault.
        at_request: usize,
    },
    /// Sleep the worker for `ms` milliseconds before evaluating — a
    /// slow replica, for deadline/timeout coverage.
    Stall {
        /// Worker slot the fault targets.
        worker: usize,
        /// Admission sequence number that arms the fault.
        at_request: usize,
        /// Stall length, milliseconds.
        ms: u64,
    },
    /// Panic the worker **while it holds the shared state mutex**,
    /// poisoning it; the supervisor respawns the slot and every later
    /// lock recovers the (still consistent) state — the
    /// poison-then-recover scenario.
    Poison {
        /// Worker slot the fault targets.
        worker: usize,
        /// Admission sequence number that arms the fault.
        at_request: usize,
    },
}

/// A scripted sequence of worker faults, injected at service
/// construction ([`SpoService::with_fault_plan`]). The chaos property
/// suite (`tests/integration_service_faults.rs`) asserts that under
/// *any* plan every ticket resolves and every success is bit-identical
/// to the direct batch.
#[derive(Clone, Debug, Default)]
pub struct ServiceFaultPlan {
    /// The faults to inject; each fires at most once.
    pub faults: Vec<ServiceFault>,
}

impl ServiceFaultPlan {
    /// A plan with no faults (the production configuration).
    pub fn none() -> Self {
        Self::default()
    }
}

/// Runtime state of an injected fault plan: which faults have fired
/// and which worker slots are permanently killed.
struct FaultState {
    faults: Vec<ServiceFault>,
    fired: Vec<AtomicBool>,
    killed: Vec<AtomicBool>,
}

impl FaultState {
    fn new(plan: ServiceFaultPlan, replicas: usize) -> Self {
        Self {
            fired: plan.faults.iter().map(|_| AtomicBool::new(false)).collect(),
            killed: (0..replicas).map(|_| AtomicBool::new(false)).collect(),
            faults: plan.faults,
        }
    }

    /// Arm-once latch: true exactly the first time fault `ix` fires.
    fn fire(&self, ix: usize) -> bool {
        !self.fired[ix].swap(true, Ordering::Relaxed)
    }

    /// Evaluation-boundary faults for worker `slot` about to run a
    /// batch seeded by admission sequence `seq`. Runs *inside* the
    /// worker's `catch_unwind`, so an injected panic takes exactly the
    /// path a real kernel panic would.
    fn before_eval(&self, slot: usize, seq: usize) {
        for (ix, f) in self.faults.iter().enumerate() {
            match *f {
                ServiceFault::Stall { worker, at_request, ms }
                    if worker == slot && seq >= at_request && self.fire(ix) =>
                {
                    std::thread::sleep(Duration::from_millis(ms));
                }
                ServiceFault::Panic { worker, at_request }
                    if worker == slot && seq >= at_request && self.fire(ix) =>
                {
                    panic!("injected fault: panic worker {slot} at request {seq}");
                }
                ServiceFault::Kill { worker, at_request }
                    if worker == slot && seq >= at_request && self.fire(ix) =>
                {
                    self.killed[slot].store(true, Ordering::Relaxed);
                    panic!("injected fault: kill worker {slot} at request {seq}");
                }
                _ => {}
            }
        }
    }

    /// Lock-held fault hook: called by the worker loop while it owns
    /// the state guard, before it touches any queue. `admitted` is the
    /// service-wide admission count at wake time.
    fn maybe_poison(&self, slot: usize, admitted: usize) {
        for (ix, f) in self.faults.iter().enumerate() {
            if let ServiceFault::Poison { worker, at_request } = *f {
                if worker == slot && admitted >= at_request && self.fire(ix) {
                    panic!("injected fault: poison worker {slot} (state mutex held)");
                }
            }
        }
    }

    fn is_killed(&self, slot: usize) -> bool {
        self.killed.get(slot).is_some_and(|k| k.load(Ordering::Relaxed))
    }
}

/// Cells per axis of the routing lattice: classification quantizes
/// every position into one of `ROUTER_CELLS³` table regions, and a
/// [`ShardMap`] partitions those regions across the shard queues.
const ROUTER_CELLS: usize = 4;

/// The routing decision state: lattice → shard ownership plus the
/// spill threshold. Immutable after service construction.
struct Router {
    /// Lattice cells → shards (balanced contiguous partition, the same
    /// shape [`crate::blocked::BlockedEngine::from_multi_sharded`] uses
    /// for coefficient placement).
    map: ShardMap,
    /// Engine evaluation domain the lattice spans.
    domain: [(f64, f64); 3],
    /// Per-shard queued-position level above which a submission may
    /// escape to the least-loaded shard.
    spill_limit: usize,
}

impl Router {
    fn n_shards(&self) -> usize {
        self.map.n_domains()
    }

    /// Quantize one position into its lattice cell (out-of-domain
    /// positions clamp to the boundary cells).
    fn cell_of<T: Real>(&self, p: [T; 3]) -> usize {
        let mut cell = 0;
        for k in 0..3 {
            let (lo, hi) = self.domain[k];
            let frac = ((p[k].to_f64() - lo) / (hi - lo)).clamp(0.0, 1.0);
            let idx = ((frac * ROUTER_CELLS as f64) as usize).min(ROUTER_CELLS - 1);
            cell = cell * ROUTER_CELLS + idx;
        }
        cell
    }

    /// The shard this block has affinity with: the owner of a strict
    /// majority of its positions' cells, else (spatially uniform
    /// blocks) a deterministic content hash over the cell sequence —
    /// so identical blocks always classify identically and coalesce
    /// adjacently on one shard's queue.
    fn classify<T: Real>(&self, pos: &PosBlock<T>) -> usize {
        let shards = self.n_shards();
        let mut votes = vec![0usize; shards];
        // FNV-1a over the cell sequence as the content key.
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for i in 0..pos.len() {
            let cell = self.cell_of(pos.get(i));
            votes[self.map.domain_of(cell)] += 1;
            hash = (hash ^ cell as u64).wrapping_mul(0x100_0000_01b3);
        }
        let (leader, &n) = votes
            .iter()
            .enumerate()
            .max_by_key(|&(_, n)| *n)
            .expect("at least one shard");
        if 2 * n > pos.len() {
            leader
        } else {
            (hash % shards as u64) as usize
        }
    }
}

/// The load-balance escape hatch: keep `classified` unless its queue
/// would exceed `limit` positions *and* some other queue is strictly
/// cooler — then route to the least-loaded queue. Returns the target
/// and whether it spilled.
fn spill_target(
    classified: usize,
    len: usize,
    queued: &[usize],
    limit: usize,
) -> (usize, bool) {
    if queued[classified] + len <= limit {
        return (classified, false);
    }
    let coolest = queued
        .iter()
        .enumerate()
        .min_by_key(|&(_, n)| *n)
        .map(|(q, _)| q)
        .expect("at least one shard");
    if queued[coolest] < queued[classified] {
        (coolest, true)
    } else {
        (classified, false)
    }
}

/// Aggregate service counters (monotonic; relaxed atomics).
#[derive(Debug, Default)]
struct Stats {
    requests: AtomicUsize,
    batches: AtomicUsize,
    positions: AtomicUsize,
    coalesced: AtomicUsize,
    spilled: AtomicUsize,
    stolen: AtomicUsize,
    shed: AtomicUsize,
    retried: AtomicUsize,
    panics: AtomicUsize,
    respawns: AtomicUsize,
}

/// A point-in-time copy of the service counters.
#[derive(Clone, Copy, Debug)]
pub struct StatsSnapshot {
    /// Requests admitted (excluding empty ones, which complete
    /// immediately without queueing). Counts every submission that
    /// yielded a ticket, whether it later succeeded, was shed, or
    /// failed — so `requests` is sum-consistent with resolved tickets.
    pub requests: usize,
    /// Fused engine calls completed successfully.
    pub batches: usize,
    /// Positions evaluated successfully.
    pub positions: usize,
    /// Requests that shared their (successful) engine call with at
    /// least one other request.
    pub coalesced: usize,
    /// Requests routed off their affinity shard by the load-balance
    /// escape hatch (always 0 with one shard).
    pub spilled: usize,
    /// Batches a worker seeded from a shard other than its home
    /// (always 0 with one shard).
    pub stolen: usize,
    /// Requests resolved to [`ServiceError::Shed`]: their deadline
    /// passed while they were still queued.
    pub shed: usize,
    /// Requests re-enqueued after a worker crash (a single request can
    /// count more than once if it crashes several workers).
    pub retried: usize,
    /// Worker evaluation panics caught (injected or real).
    pub panics: usize,
    /// Worker slots the supervisor respawned after a crash.
    pub respawns: usize,
}

impl StatsSnapshot {
    /// Mean positions per fused engine call.
    pub fn mean_batch_positions(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.positions as f64 / self.batches as f64
        }
    }
}

/// What a completed request hands back: the submitted positions, the
/// caller's filled output blocks, and the instant the worker finished
/// (stamped service-side so latency measurement does not charge the
/// submitter's reaping delay).
pub type Completed<T, O> = (PosBlock<T>, BatchOut<O>, Instant);

/// How a request resolved, as stored in its completion slot.
enum Outcome<T: Real, O> {
    Done(Completed<T, O>),
    Failed {
        error: ServiceError,
        pos: PosBlock<T>,
        out: BatchOut<O>,
    },
}

/// Completion slot shared between a [`Ticket`] and the worker.
struct Done<T: Real, O> {
    slot: Mutex<Option<Outcome<T, O>>>,
    cv: Condvar,
}

impl<T: Real, O> Done<T, O> {
    fn new() -> Self {
        Self {
            slot: Mutex::new(None),
            cv: Condvar::new(),
        }
    }

    fn complete(&self, pos: PosBlock<T>, out: BatchOut<O>, at: Instant) {
        let mut slot = lock_recover(&self.slot);
        debug_assert!(slot.is_none(), "a request resolves once");
        *slot = Some(Outcome::Done((pos, out, at)));
        self.cv.notify_all();
    }

    /// Resolve the ticket to `error`, handing the caller's buffers back.
    fn fail(&self, error: ServiceError, pos: PosBlock<T>, out: BatchOut<O>) {
        let mut slot = lock_recover(&self.slot);
        debug_assert!(slot.is_none(), "a request resolves once");
        *slot = Some(Outcome::Failed { error, pos, out });
        self.cv.notify_all();
    }
}

/// Claim on an in-flight submission: redeem it with [`Ticket::redeem`]
/// to get the position block and filled output blocks back, or a typed
/// [`Failed`] carrying the same buffers if the service could not run it.
pub struct Ticket<T: Real, O> {
    done: Arc<Done<T, O>>,
}

impl<T: Real, O> Ticket<T, O> {
    /// Block until the request resolves. `Ok` carries the submitted
    /// positions, the caller's output blocks (now filled) and the
    /// instant the worker finished; `Err` is a typed [`Failed`] that
    /// hands the same buffers back unevaluated.
    pub fn redeem(self) -> Result<Completed<T, O>, Failed<T, O>> {
        self.redeem_inner(None)
    }

    /// [`Ticket::redeem`] bounded by a caller-side wait deadline: blocks
    /// at most `timeout`. On expiry the error is
    /// [`ServiceError::Timeout`] and the still-live claim comes back in
    /// [`Failed::ticket`] — the request is still in flight and the
    /// service still guarantees it resolves.
    pub fn redeem_for(self, timeout: Duration) -> Result<Completed<T, O>, Failed<T, O>> {
        self.redeem_inner(Some(Instant::now() + timeout))
    }

    /// The unified wait path: one loop serves both the unbounded and
    /// the deadline-bounded redemption.
    fn redeem_inner(self, deadline: Option<Instant>) -> Result<Completed<T, O>, Failed<T, O>> {
        let mut slot = lock_recover(&self.done.slot);
        loop {
            match slot.take() {
                Some(Outcome::Done(r)) => return Ok(r),
                Some(Outcome::Failed { error, pos, out }) => {
                    return Err(Failed {
                        error,
                        pos: Some(pos),
                        out: Some(out),
                        ticket: None,
                    });
                }
                None => {}
            }
            match deadline {
                None => {
                    slot = self.done.cv.wait(slot).unwrap_or_else(PoisonError::into_inner);
                }
                Some(d) => {
                    let now = Instant::now();
                    if now >= d {
                        drop(slot);
                        return Err(Failed {
                            error: ServiceError::Timeout,
                            pos: None,
                            out: None,
                            ticket: Some(self),
                        });
                    }
                    let (guard, _timeout) = self
                        .done
                        .cv
                        .wait_timeout(slot, d - now)
                        .unwrap_or_else(PoisonError::into_inner);
                    slot = guard;
                }
            }
        }
    }

    /// Block until the request completes; returns the submitted
    /// positions and the caller's output blocks, now filled.
    ///
    /// Panics if the request resolved to a [`ServiceError`] — migrate
    /// to [`Ticket::redeem`] for typed failure handling.
    #[deprecated(note = "use Ticket::redeem, which returns typed failures")]
    pub fn wait(self) -> (PosBlock<T>, BatchOut<O>) {
        match self.redeem() {
            Ok((pos, out, _)) => (pos, out),
            Err(f) => panic!("Ticket::wait on a failed request: {}", f.error),
        }
    }

    /// [`Ticket::wait`] plus the worker-stamped completion instant.
    ///
    /// Panics if the request resolved to a [`ServiceError`] — migrate
    /// to [`Ticket::redeem`] for typed failure handling.
    #[deprecated(note = "use Ticket::redeem, which returns typed failures")]
    pub fn wait_timed(self) -> Completed<T, O> {
        match self.redeem() {
            Ok(r) => r,
            Err(f) => panic!("Ticket::wait_timed on a failed request: {}", f.error),
        }
    }

    /// [`Ticket::wait_timed`] with a deadline: blocks at most `timeout`,
    /// handing the ticket itself back (`Err`) on expiry.
    ///
    /// Panics if the request resolved to a non-timeout [`ServiceError`]
    /// — migrate to [`Ticket::redeem_for`] for typed failure handling.
    #[deprecated(note = "use Ticket::redeem_for, which returns typed failures")]
    pub fn wait_for(self, timeout: Duration) -> Result<Completed<T, O>, Self> {
        match self.redeem_for(timeout) {
            Ok(r) => Ok(r),
            Err(Failed {
                error: ServiceError::Timeout,
                ticket: Some(t),
                ..
            }) => Err(t),
            Err(f) => panic!("Ticket::wait_for on a failed request: {}", f.error),
        }
    }

    /// Whether the request has already resolved (non-blocking).
    pub fn is_done(&self) -> bool {
        lock_recover(&self.done.slot).is_some()
    }
}

struct Request<T: Real, O> {
    kernel: Kernel,
    pos: PosBlock<T>,
    out: Vec<O>,
    done: Arc<Done<T, O>>,
    /// Admission sequence number (the fault plan's clock).
    seq: usize,
    /// The shard queue this request was routed to (re-enqueue target
    /// after a worker crash).
    shard: usize,
    /// Worker crashes this request has survived so far.
    crashes: usize,
    /// Service-side deadline: shed (never evaluate) once passed.
    deadline: Option<Instant>,
}

impl<T: Real, O> Request<T, O> {
    fn expired(&self, now: Instant) -> bool {
        self.deadline.is_some_and(|d| now >= d)
    }

    /// Resolve this request's ticket to `error`, returning the caller's
    /// buffers through the completion slot.
    fn fail(self, error: ServiceError) {
        self.done.fail(error, self.pos, BatchOut::from_blocks(self.out));
    }
}

struct State<T: Real, O> {
    /// One queue per shard; index 0 is the only queue under FIFO.
    queues: Vec<VecDeque<Request<T, O>>>,
    /// Positions currently sitting in each shard queue (drops as soon
    /// as a worker removes the request) — the router's load signal.
    queued_positions: Vec<usize>,
    /// Positions admitted but not yet evaluated (queued + coalescing),
    /// summed across shards — the backpressure signal.
    pending_positions: usize,
    shutdown: bool,
}

struct Shared<T: Real, O> {
    state: Mutex<State<T, O>>,
    /// Signals workers: new work queued, or shutdown.
    work: Condvar,
    /// Signals submitters: pending positions dropped below the bound.
    space: Condvar,
    cfg: ServiceConfig,
    router: Router,
    stats: Stats,
    /// Live worker count (decremented by the exit wrapper, incremented
    /// at spawn/respawn) — the health signal.
    live: AtomicUsize,
    /// Set once every worker is gone with none respawnable; submissions
    /// then resolve to [`ServiceError::ShuttingDown`] instead of
    /// queueing forever.
    failed: AtomicBool,
    faults: FaultState,
}

/// Supervisor mail: worker slot `slot` (serving NUMA `domain`) died,
/// or the service is shutting down and the supervisor should retire.
enum Notice {
    Died { slot: usize, domain: usize },
    Shutdown,
}

/// How a worker's loop ended: a clean shutdown drain, or a caught
/// evaluation crash (the batch has already been recovered/re-enqueued).
enum WorkerExit {
    Shutdown,
    Crashed,
}

/// The coalescing evaluation service. See the [module docs](self) for
/// the model, including the failure model.
pub struct SpoService<T: Real, E: SpoEngine<T> + 'static>
where
    E::Out: 'static,
{
    shared: Arc<Shared<T, E::Out>>,
    cell: EngineCell<E>,
    /// Worker join handles; the supervisor pushes respawned workers
    /// here, shutdown drains it (possibly twice).
    handles: Arc<Mutex<Vec<JoinHandle<()>>>>,
    supervisor: Option<JoinHandle<()>>,
    /// Death-notice sender; kept so shutdown can send the retire
    /// sentinel *after* joining the workers (mpsc is FIFO, so every
    /// crash notice from a joined worker precedes the sentinel).
    tx: Option<Sender<Notice>>,
}

impl<T: Real, E: SpoEngine<T> + 'static> SpoService<T, E>
where
    E::Out: 'static,
{
    /// Move `engine` into a replica cell and spawn the worker threads
    /// plus the supervisor.
    ///
    /// The workers' SIMD backend is pinned here (replica mint time), so
    /// building the service inside a
    /// [`with_backend`](crate::simd::with_backend) force pins that
    /// backend for the service's lifetime — including any workers the
    /// supervisor respawns later, since respawned replicas are minted
    /// on the supervisor thread from the same cell under no force.
    pub fn new(engine: E, cfg: ServiceConfig) -> Self {
        Self::with_fault_plan(engine, cfg, ServiceFaultPlan::none())
    }

    /// [`SpoService::new`] with a scripted [`ServiceFaultPlan`] —
    /// fault-injection entry point for tests, the chaos suite, and the
    /// degraded-mode benchmark rows.
    pub fn with_fault_plan(engine: E, cfg: ServiceConfig, plan: ServiceFaultPlan) -> Self {
        assert!(cfg.replicas > 0, "need at least one service replica");
        assert!(cfg.max_batch > 0, "fused batches must hold positions");
        assert!(cfg.queue_positions > 0, "queue bound must be positive");
        let n_shards = cfg.routing.shards();
        let router = Router {
            map: ShardMap::balanced(ROUTER_CELLS * ROUTER_CELLS * ROUTER_CELLS, n_shards),
            domain: engine.domain(),
            // A shard is "hot" once it holds more than its fair share
            // of the queue bound (but never less than one full batch).
            spill_limit: cfg.max_batch.max(cfg.queue_positions / n_shards),
        };
        let cell = EngineCell::new(engine);
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queues: (0..n_shards).map(|_| VecDeque::new()).collect(),
                queued_positions: vec![0; n_shards],
                pending_positions: 0,
                shutdown: false,
            }),
            work: Condvar::new(),
            space: Condvar::new(),
            cfg,
            router,
            stats: Stats::default(),
            live: AtomicUsize::new(cfg.replicas),
            failed: AtomicBool::new(false),
            faults: FaultState::new(plan, cfg.replicas),
        });
        let (tx, rx) = mpsc::channel();
        let handles = Arc::new(Mutex::new(Vec::with_capacity(cfg.replicas)));
        {
            let mut hs = lock_recover(&handles);
            for (slot, replica) in cell
                .handles_for_domains(cfg.replicas, n_shards)
                .into_iter()
                .enumerate()
            {
                hs.push(spawn_worker(replica, slot, Arc::clone(&shared), tx.clone()));
            }
        }
        let supervisor = {
            let cell = cell.clone();
            let shared = Arc::clone(&shared);
            let handles = Arc::clone(&handles);
            let tx = tx.clone();
            std::thread::Builder::new()
                .name("spo-supervisor".into())
                .spawn(move || supervisor_loop(cell, shared, handles, rx, tx))
                .expect("spawn service supervisor")
        };
        Self {
            shared,
            cell,
            handles,
            supervisor: Some(supervisor),
            tx: Some(tx),
        }
    }

    /// Service with the default [`ServiceConfig`].
    pub fn with_default_config(engine: E) -> Self {
        Self::new(engine, ServiceConfig::default())
    }

    /// The shared engine (configuration queries, buffer allocation).
    pub fn engine(&self) -> &E {
        self.cell.engine()
    }

    /// The service configuration.
    pub fn config(&self) -> ServiceConfig {
        self.shared.cfg
    }

    /// The shard-queue count the routing policy resolved to.
    pub fn n_shards(&self) -> usize {
        self.shared.router.n_shards()
    }

    /// Liveness of the replica pool (the client's fallback gate).
    pub fn health(&self) -> ServiceHealth {
        if self.shared.failed.load(Ordering::Relaxed) {
            ServiceHealth::Failed
        } else if self.shared.live.load(Ordering::Relaxed) < self.shared.cfg.replicas {
            ServiceHealth::Degraded
        } else {
            ServiceHealth::Healthy
        }
    }

    /// Currently live worker threads (≤ configured replicas).
    pub fn live_workers(&self) -> usize {
        self.shared.live.load(Ordering::Relaxed)
    }

    /// Point-in-time counters.
    pub fn stats(&self) -> StatsSnapshot {
        let s = &self.shared.stats;
        StatsSnapshot {
            requests: s.requests.load(Ordering::Relaxed),
            batches: s.batches.load(Ordering::Relaxed),
            positions: s.positions.load(Ordering::Relaxed),
            coalesced: s.coalesced.load(Ordering::Relaxed),
            spilled: s.spilled.load(Ordering::Relaxed),
            stolen: s.stolen.load(Ordering::Relaxed),
            shed: s.shed.load(Ordering::Relaxed),
            retried: s.retried.load(Ordering::Relaxed),
            panics: s.panics.load(Ordering::Relaxed),
            respawns: s.respawns.load(Ordering::Relaxed),
        }
    }

    /// Route the admitted request onto its shard queue (the caller
    /// holds the lock and has already passed admission control).
    /// `class` is the pre-lock classification (`None` with one shard).
    #[allow(clippy::too_many_arguments)]
    fn enqueue_locked(
        &self,
        st: &mut State<T, E::Out>,
        class: Option<usize>,
        seq: usize,
        deadline: Option<Instant>,
        kernel: Kernel,
        pos: PosBlock<T>,
        out: BatchOut<E::Out>,
        done: &Arc<Done<T, E::Out>>,
    ) {
        let (target, spilled) = match class {
            Some(c) => spill_target(
                c,
                pos.len(),
                &st.queued_positions,
                self.shared.router.spill_limit,
            ),
            None => (0, false),
        };
        if spilled {
            self.shared.stats.spilled.fetch_add(1, Ordering::Relaxed);
        }
        st.pending_positions += pos.len();
        st.queued_positions[target] += pos.len();
        st.queues[target].push_back(Request {
            kernel,
            pos,
            out: out.into_blocks(),
            done: Arc::clone(done),
            seq,
            shard: target,
            crashes: 0,
            deadline,
        });
    }

    /// Classify `pos` outside the state lock (`None` = single shard,
    /// nothing to decide).
    fn classify(&self, pos: &PosBlock<T>) -> Option<usize> {
        (self.shared.router.n_shards() > 1).then(|| self.shared.router.classify(pos))
    }

    /// The one submission path behind [`SpoService::submit`] and
    /// [`SpoService::submit_with_deadline`].
    fn submit_inner(
        &self,
        kernel: Kernel,
        pos: PosBlock<T>,
        out: BatchOut<E::Out>,
        deadline: Option<Instant>,
    ) -> Ticket<T, E::Out> {
        check_batch(pos.len(), out.len());
        let done = Arc::new(Done::new());
        if pos.is_empty() {
            // Nothing to evaluate: complete immediately, never queue.
            done.complete(pos, out, Instant::now());
            return Ticket { done };
        }
        let seq = self.shared.stats.requests.fetch_add(1, Ordering::Relaxed);
        if deadline.is_some_and(|d| Instant::now() >= d) {
            // Already past deadline: shed before touching the queue.
            self.shared.stats.shed.fetch_add(1, Ordering::Relaxed);
            done.fail(ServiceError::Shed, pos, out);
            return Ticket { done };
        }
        let class = self.classify(&pos);
        let mut st = lock_recover(&self.shared.state);
        loop {
            assert!(!st.shutdown, "submit on a shut-down SpoService");
            if self.shared.failed.load(Ordering::Relaxed) {
                // Every worker is gone and none is coming back: resolve
                // instead of queueing a request nobody will run.
                drop(st);
                done.fail(ServiceError::ShuttingDown, pos, out);
                return Ticket { done };
            }
            // Admit when under the bound — or unconditionally when the
            // service is idle, so one request larger than the whole
            // bound cannot deadlock.
            if st.pending_positions == 0
                || st.pending_positions + pos.len() <= self.shared.cfg.queue_positions
            {
                break;
            }
            match deadline {
                None => {
                    st = self.shared.space.wait(st).unwrap_or_else(PoisonError::into_inner);
                }
                Some(d) => {
                    let now = Instant::now();
                    if now >= d {
                        // Deadline passed while blocked on backpressure:
                        // shed without ever queueing.
                        drop(st);
                        self.shared.stats.shed.fetch_add(1, Ordering::Relaxed);
                        done.fail(ServiceError::Shed, pos, out);
                        return Ticket { done };
                    }
                    let (guard, _timeout) = self
                        .shared
                        .space
                        .wait_timeout(st, d - now)
                        .unwrap_or_else(PoisonError::into_inner);
                    st = guard;
                }
            }
        }
        self.enqueue_locked(&mut st, class, seq, deadline, kernel, pos, out, &done);
        drop(st);
        self.shared.work.notify_one();
        Ticket { done }
    }

    /// Enqueue `pos` for `kernel`, handing the service the caller's
    /// output blocks (`out` needs one block per position; extra blocks
    /// ride along untouched, matching the ragged-tail contract of the
    /// direct batched calls). Blocks while the queue is over its
    /// position bound. Panics if called after [`SpoService::shutdown`].
    pub fn submit(
        &self,
        kernel: Kernel,
        pos: PosBlock<T>,
        out: BatchOut<E::Out>,
    ) -> Ticket<T, E::Out> {
        self.submit_inner(kernel, pos, out, None)
    }

    /// [`SpoService::submit`] with a service-side deadline: if
    /// `deadline` passes while the request is still queued (or while
    /// the submitter is blocked on backpressure), the service sheds it
    /// — the ticket resolves to [`ServiceError::Shed`] with the
    /// caller's buffers — instead of evaluating stale work. Shedding
    /// happens strictly before evaluation, never mid-fuse, so every
    /// request that does complete is still bit-identical to the direct
    /// batch.
    pub fn submit_with_deadline(
        &self,
        kernel: Kernel,
        pos: PosBlock<T>,
        out: BatchOut<E::Out>,
        deadline: Instant,
    ) -> Ticket<T, E::Out> {
        self.submit_inner(kernel, pos, out, Some(deadline))
    }

    /// Non-blocking [`SpoService::submit`]: if admitting `pos` would
    /// exceed the queue bound, the request is handed back unevaluated.
    #[allow(clippy::type_complexity)]
    pub fn try_submit(
        &self,
        kernel: Kernel,
        pos: PosBlock<T>,
        out: BatchOut<E::Out>,
    ) -> Result<Ticket<T, E::Out>, (PosBlock<T>, BatchOut<E::Out>)> {
        check_batch(pos.len(), out.len());
        let done = Arc::new(Done::new());
        if pos.is_empty() {
            done.complete(pos, out, Instant::now());
            return Ok(Ticket { done });
        }
        let class = self.classify(&pos);
        let mut st = lock_recover(&self.shared.state);
        assert!(!st.shutdown, "submit on a shut-down SpoService");
        if self.shared.failed.load(Ordering::Relaxed) {
            drop(st);
            self.shared.stats.requests.fetch_add(1, Ordering::Relaxed);
            done.fail(ServiceError::ShuttingDown, pos, out);
            return Ok(Ticket { done });
        }
        if st.pending_positions != 0
            && st.pending_positions + pos.len() > self.shared.cfg.queue_positions
        {
            return Err((pos, out));
        }
        let seq = self.shared.stats.requests.fetch_add(1, Ordering::Relaxed);
        self.enqueue_locked(&mut st, class, seq, None, kernel, pos, out, &done);
        drop(st);
        self.shared.work.notify_one();
        Ok(Ticket { done })
    }

    /// Join every worker handle registered so far (the supervisor may
    /// push more while this runs; callers loop via the double drain in
    /// [`SpoService::shutdown`]).
    fn join_workers(&self) {
        loop {
            let handle = lock_recover(&self.handles).pop();
            match handle {
                Some(h) => {
                    let _ = h.join();
                }
                None => break,
            }
        }
    }

    /// Drain every queued request, retire the supervisor and join the
    /// workers. Idempotent; also runs on drop. Every ticket issued
    /// before the call resolves (successfully for drained work,
    /// [`ServiceError::ShuttingDown`] for anything unrunnable).
    pub fn shutdown(&mut self) {
        {
            let mut st = lock_recover(&self.shared.state);
            if st.shutdown && self.supervisor.is_none() {
                return;
            }
            st.shutdown = true;
        }
        self.shared.work.notify_all();
        self.shared.space.notify_all();
        self.join_workers();
        // All original workers are joined, so every Died notice they
        // sent is already in the channel (mpsc is FIFO): the sentinel
        // cannot overtake a crash the supervisor still must handle.
        if let Some(tx) = self.tx.take() {
            let _ = tx.send(Notice::Shutdown);
        }
        if let Some(s) = self.supervisor.take() {
            let _ = s.join();
        }
        // Workers the supervisor respawned during the drain.
        self.join_workers();
        // Safety net: if the last worker crashed after the supervisor
        // retired, its re-enqueued requests are still queued — resolve
        // them rather than strand the tickets.
        fail_all_queued(&self.shared);
    }
}

impl<T: Real, E: SpoEngine<T> + 'static> Drop for SpoService<T, E>
where
    E::Out: 'static,
{
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Spawn one worker thread for `slot`: the worker loop wrapped in the
/// crash handler that keeps the books (live count, panic counter) and
/// mails the supervisor. This outer `catch_unwind` is the safety net
/// for panics *outside* evaluation (e.g. the scripted Poison fault,
/// which panics while holding the state mutex); evaluation panics are
/// caught closer in, inside [`execute`], so the batch's buffers are
/// recovered first.
fn spawn_worker<T: Real, E: SpoEngine<T> + 'static>(
    replica: Replica<E>,
    slot: usize,
    shared: Arc<Shared<T, E::Out>>,
    tx: Sender<Notice>,
) -> JoinHandle<()>
where
    E::Out: 'static,
{
    std::thread::Builder::new()
        .name(format!("spo-worker-{slot}"))
        .spawn(move || {
            let domain = replica.domain();
            let exit = catch_unwind(AssertUnwindSafe(|| worker_loop(&replica, slot, &shared)));
            let crashed = !matches!(exit, Ok(WorkerExit::Shutdown));
            if crashed {
                shared.stats.panics.fetch_add(1, Ordering::Relaxed);
            }
            shared.live.fetch_sub(1, Ordering::Relaxed);
            if crashed {
                // Receiver gone (supervisor already retired) is fine:
                // shutdown's final drain resolves anything left queued.
                let _ = tx.send(Notice::Died { slot, domain });
            }
            shared.work.notify_all();
            shared.space.notify_all();
        })
        .expect("spawn service worker")
}

/// The supervisor: respawn crashed workers from the cell (same slot,
/// same domain tag, so routing affinity survives), unless the slot was
/// scripted as killed or the service is draining an empty queue. When
/// the last worker is gone with no respawn, flip the service to
/// [`ServiceHealth::Failed`] and resolve everything still queued.
fn supervisor_loop<T: Real, E: SpoEngine<T> + 'static>(
    cell: EngineCell<E>,
    shared: Arc<Shared<T, E::Out>>,
    handles: Arc<Mutex<Vec<JoinHandle<()>>>>,
    rx: Receiver<Notice>,
    tx: Sender<Notice>,
) where
    E::Out: 'static,
{
    while let Ok(notice) = rx.recv() {
        match notice {
            Notice::Shutdown => return,
            Notice::Died { slot, domain } => {
                let killed = shared.faults.is_killed(slot);
                let (shutdown, queued) = {
                    let st = lock_recover(&shared.state);
                    (st.shutdown, st.queues.iter().map(VecDeque::len).sum::<usize>())
                };
                if !killed && (!shutdown || queued > 0) {
                    shared.stats.respawns.fetch_add(1, Ordering::Relaxed);
                    shared.live.fetch_add(1, Ordering::Relaxed);
                    let replica = cell.handle_for_domain(domain);
                    let h = spawn_worker(replica, slot, Arc::clone(&shared), tx.clone());
                    lock_recover(&handles).push(h);
                } else if shared.live.load(Ordering::Relaxed) == 0 {
                    shared.failed.store(true, Ordering::Relaxed);
                    fail_all_queued(&shared);
                }
            }
        }
    }
}

/// Resolve every queued request to [`ServiceError::ShuttingDown`],
/// returning the callers' buffers. Tickets are failed after the state
/// lock drops (lock order: state before done-slots, never while both).
fn fail_all_queued<T: Real, O>(shared: &Shared<T, O>) {
    let mut doomed = Vec::new();
    {
        let mut st = lock_recover(&shared.state);
        for q in 0..st.queues.len() {
            while let Some(r) = st.queues[q].pop_front() {
                st.queued_positions[q] -= r.pos.len();
                st.pending_positions -= r.pos.len();
                doomed.push(r);
            }
        }
    }
    for r in doomed {
        r.fail(ServiceError::ShuttingDown);
    }
    shared.work.notify_all();
    shared.space.notify_all();
}

/// Pop the next *live* request off queue `q`: requests whose deadline
/// already passed are shed on the way (before evaluation, never
/// mid-fuse) and never returned.
fn pop_live<T: Real, O>(
    st: &mut State<T, O>,
    q: usize,
    shared: &Shared<T, O>,
) -> Option<Request<T, O>> {
    let now = Instant::now();
    while let Some(r) = st.queues[q].pop_front() {
        st.queued_positions[q] -= r.pos.len();
        if r.expired(now) {
            st.pending_positions -= r.pos.len();
            shared.stats.shed.fetch_add(1, Ordering::Relaxed);
            shared.space.notify_all();
            r.fail(ServiceError::Shed);
        } else {
            return Some(r);
        }
    }
    None
}

/// One service worker: pop → coalesce → evaluate → complete, until
/// shutdown (or until an evaluation crash, which re-enqueues the batch
/// and ends this incarnation of the slot).
///
/// With shards, a worker seeds from its replica's home shard queue
/// first and steals round-robin from the others when home is empty;
/// the coalescing scan is scoped to the seed's queue, so only
/// same-shard (spatially adjacent or identical) requests fuse.
fn worker_loop<T: Real, E: SpoEngine<T>>(
    replica: &Replica<E>,
    slot: usize,
    shared: &Shared<T, E::Out>,
) -> WorkerExit {
    let n_shards = shared.router.n_shards();
    let home = replica.domain() % n_shards;
    // Reused across batches: the fused position block (reserve keeps
    // the splice allocation-free in steady state).
    let mut fused_pos = PosBlock::<T>::new();
    loop {
        let mut st = lock_recover(&shared.state);
        // The scripted lock-held fault: panics with the state mutex
        // poisoned; every later lock_recover recovers the guard.
        shared
            .faults
            .maybe_poison(slot, shared.stats.requests.load(Ordering::Relaxed));
        // Seed a batch from home, else steal (or exit once every queue
        // is drained after shutdown — in-flight work always completes).
        let (from, first) = loop {
            if let Some(r) = pop_live(&mut st, home, shared) {
                break (home, r);
            }
            let stolen = (1..n_shards).find_map(|off| {
                let q = (home + off) % n_shards;
                pop_live(&mut st, q, shared).map(|r| (q, r))
            });
            if let Some(hit) = stolen {
                shared.stats.stolen.fetch_add(1, Ordering::Relaxed);
                break hit;
            }
            if st.shutdown {
                return WorkerExit::Shutdown;
            }
            st = shared.work.wait(st).unwrap_or_else(PoisonError::into_inner);
        };
        let kernel = first.kernel;
        let mut total = first.pos.len();
        let mut batch = vec![first];
        let deadline = Instant::now() + shared.cfg.max_wait;
        // Coalesce: splice in every same-kernel request queued on the
        // seed's shard, waiting (bounded by max_wait) for more while
        // the batch is partial. Other kernels — and other shards —
        // stay queued for the next worker. Expired requests found
        // during the scan are shed, not fused.
        loop {
            let now = Instant::now();
            let mut i = 0;
            while i < st.queues[from].len() && total < shared.cfg.max_batch {
                if st.queues[from][i].kernel == kernel {
                    let r = st.queues[from].remove(i).expect("index in bounds");
                    st.queued_positions[from] -= r.pos.len();
                    if r.expired(now) {
                        st.pending_positions -= r.pos.len();
                        shared.stats.shed.fetch_add(1, Ordering::Relaxed);
                        r.fail(ServiceError::Shed);
                    } else {
                        total += r.pos.len();
                        batch.push(r);
                    }
                } else {
                    i += 1;
                }
            }
            if total >= shared.cfg.max_batch || st.shutdown {
                break;
            }
            if now >= deadline {
                break;
            }
            let (guard, _timeout) = shared
                .work
                .wait_timeout(st, deadline - now)
                .unwrap_or_else(PoisonError::into_inner);
            st = guard;
        }
        // The batch leaves the queue but its positions stay counted
        // (pending) until evaluated, so the backpressure bound covers
        // coalescing and in-flight work too.
        st.pending_positions -= total;
        drop(st);
        shared.space.notify_all();
        match execute(replica, slot, kernel, batch, total, &mut fused_pos, shared) {
            Ok(()) => {}
            Err(recovered) => {
                requeue_after_crash(shared, recovered);
                return WorkerExit::Crashed;
            }
        }
    }
}

/// Evaluate one coalesced batch and complete every member request.
///
/// Evaluation runs under `catch_unwind`: on a panic (injected or real)
/// the fused output blocks are un-fused and reattached to their
/// requests — contents unspecified, but every caller buffer recovered —
/// and the whole batch comes back as `Err` for re-enqueue.
fn execute<T: Real, E: SpoEngine<T>>(
    replica: &Replica<E>,
    slot: usize,
    kernel: Kernel,
    mut batch: Vec<Request<T, E::Out>>,
    total: usize,
    fused_pos: &mut PosBlock<T>,
    shared: &Shared<T, E::Out>,
) -> Result<(), Vec<Request<T, E::Out>>> {
    let stats = &shared.stats;
    let seq0 = batch[0].seq;
    if batch.len() == 1 {
        // Single-request fast path: evaluate straight into the caller's
        // blocks, no splice.
        let mut req = batch.pop().expect("one request");
        let mut out = BatchOut::from_blocks(std::mem::take(&mut req.out));
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            shared.faults.before_eval(slot, req.seq);
            replica.run(|| replica.engine().eval_batch(kernel, &req.pos, &mut out));
        }));
        return match outcome {
            Ok(()) => {
                stats.batches.fetch_add(1, Ordering::Relaxed);
                stats.positions.fetch_add(total, Ordering::Relaxed);
                req.done.complete(req.pos, out, Instant::now());
                Ok(())
            }
            Err(_) => {
                req.out = out.into_blocks();
                Err(batch.drain(..).chain(std::iter::once(req)).collect())
            }
        };
    }
    // Fuse: splice positions, move each caller's first pos.len() output
    // blocks into one BatchOut (extra ragged-tail blocks are parked and
    // reattached untouched).
    fused_pos.clear();
    fused_pos.reserve(total);
    let mut blocks: Vec<E::Out> = Vec::with_capacity(total);
    let mut extras: Vec<Vec<E::Out>> = Vec::with_capacity(batch.len());
    for req in &mut batch {
        fused_pos.extend_from_block(&req.pos);
        let mut mine = std::mem::take(&mut req.out);
        extras.push(mine.split_off(req.pos.len()));
        blocks.append(&mut mine);
    }
    let mut fused_out = BatchOut::from_blocks(blocks);
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        shared.faults.before_eval(slot, seq0);
        replica.run(|| replica.engine().eval_batch(kernel, fused_pos, &mut fused_out));
    }));
    let mut rest = fused_out.into_blocks();
    match outcome {
        Ok(()) => {
            stats.batches.fetch_add(1, Ordering::Relaxed);
            stats.positions.fetch_add(total, Ordering::Relaxed);
            stats.coalesced.fetch_add(batch.len(), Ordering::Relaxed);
            // Unfuse: hand each request its own blocks back in submit
            // order.
            for (req, extra) in batch.into_iter().zip(extras) {
                let tail = rest.split_off(req.pos.len());
                let mut mine = std::mem::replace(&mut rest, tail);
                mine.extend(extra);
                req.done
                    .complete(req.pos, BatchOut::from_blocks(mine), Instant::now());
            }
            debug_assert!(rest.is_empty(), "every output block returned");
            Ok(())
        }
        Err(_) => {
            // Crash recovery: un-fuse the (possibly half-written)
            // blocks back onto their requests so no caller buffer is
            // lost; a retry overwrites the contents anyway.
            for (req, extra) in batch.iter_mut().zip(extras) {
                let tail = rest.split_off(req.pos.len());
                let mut mine = std::mem::replace(&mut rest, tail);
                mine.extend(extra);
                req.out = mine;
            }
            debug_assert!(rest.is_empty(), "every output block recovered");
            Err(batch)
        }
    }
}

/// Put a crashed batch back: each request re-enqueues at the *front* of
/// its shard queue (aged work keeps its place) with a bumped crash
/// count — unless its deadline has passed (shed) or its retry budget is
/// spent ([`ServiceError::WorkerLost`]).
fn requeue_after_crash<T: Real, O>(shared: &Shared<T, O>, batch: Vec<Request<T, O>>) {
    let now = Instant::now();
    let mut doomed: Vec<(Request<T, O>, ServiceError)> = Vec::new();
    {
        let mut st = lock_recover(&shared.state);
        // Reverse iteration + push_front preserves submit order at the
        // head of the queue.
        for mut r in batch.into_iter().rev() {
            r.crashes += 1;
            if r.expired(now) {
                shared.stats.shed.fetch_add(1, Ordering::Relaxed);
                doomed.push((r, ServiceError::Shed));
            } else if r.crashes > shared.cfg.max_retries {
                let retries = r.crashes - 1;
                doomed.push((r, ServiceError::WorkerLost { retries }));
            } else {
                shared.stats.retried.fetch_add(1, Ordering::Relaxed);
                st.pending_positions += r.pos.len();
                st.queued_positions[r.shard] += r.pos.len();
                st.queues[r.shard].push_front(r);
            }
        }
    }
    for (r, e) in doomed {
        r.fail(e);
    }
    shared.work.notify_all();
    shared.space.notify_all();
}

/// How a [`ServiceClient`] reacts to service failures: bounded
/// exponential-backoff retry, an optional per-request service deadline,
/// and a health-gated local fallback.
#[derive(Clone, Copy, Debug)]
pub struct ClientConfig {
    /// Resubmission attempts after a failed redemption (in addition to
    /// the first submission).
    pub max_retries: usize,
    /// Backoff before the first retry; doubles per attempt (capped at
    /// `base << 10`).
    pub backoff: Duration,
    /// Service-side deadline attached to every submission
    /// ([`SpoService::submit_with_deadline`]); `None` submits without
    /// one.
    pub deadline: Option<Duration>,
    /// When `true`, a service that is not [`ServiceHealth::Healthy`]
    /// (or a request that exhausts its retries) is bypassed: the client
    /// evaluates directly on the shared engine, so drivers keep
    /// producing physics while replicas are down. The direct path runs
    /// on the caller's thread with its ambient SIMD backend.
    pub fallback: bool,
}

impl Default for ClientConfig {
    fn default() -> Self {
        Self {
            max_retries: 2,
            backoff: Duration::from_micros(50),
            deadline: None,
            fallback: true,
        }
    }
}

/// Exponential backoff: `base << attempt`, exponent capped so a large
/// retry budget cannot overflow into a multi-hour sleep.
fn backoff_delay(base: Duration, attempt: usize) -> Duration {
    base * (1u32 << attempt.min(10) as u32)
}

/// An [`SpoEngine`] adapter over a shared service: scalar and batched
/// calls become service submissions, so any driver written against the
/// trait (e.g. `miniqmc`'s `SpoSet`) runs service-backed unchanged.
///
/// Scalar calls borrow a pooled dummy block to swap with the caller's
/// buffer (the trait's `&mut` contract meets the service's move-based
/// zero-copy contract); batched calls clone the position block (the
/// trait borrows it, the service takes ownership) but move the output
/// blocks both ways.
///
/// The trait's methods are infallible, so the client absorbs the
/// service's failure model ([`ClientConfig`]): failed redemptions are
/// retried with exponential backoff, and when the service is
/// [`ServiceHealth::Degraded`]/[`ServiceHealth::Failed`] (or retries
/// run out) the call falls back to evaluating directly on the shared
/// engine — the driver never sees an error, it just loses coalescing
/// until the replicas come back. With `fallback` disabled the client
/// panics instead of degrading silently.
pub struct ServiceClient<T: Real, E: SpoEngine<T> + 'static>
where
    E::Out: 'static,
{
    service: Arc<SpoService<T, E>>,
    /// Dummy blocks for the scalar-call swap trick; steady state reuses
    /// one allocation per concurrent scalar caller.
    pool: Mutex<Vec<E::Out>>,
    cfg: ClientConfig,
    /// Calls that bypassed the service onto the direct engine path.
    fallbacks: AtomicUsize,
}

impl<T: Real, E: SpoEngine<T> + 'static> ServiceClient<T, E>
where
    E::Out: 'static,
{
    /// Wrap a shared service handle with the default [`ClientConfig`].
    pub fn new(service: Arc<SpoService<T, E>>) -> Self {
        Self::with_config(service, ClientConfig::default())
    }

    /// Wrap a shared service handle with an explicit failure policy.
    pub fn with_config(service: Arc<SpoService<T, E>>, cfg: ClientConfig) -> Self {
        Self {
            service,
            pool: Mutex::new(Vec::new()),
            cfg,
            fallbacks: AtomicUsize::new(0),
        }
    }

    /// The underlying service.
    pub fn service(&self) -> &SpoService<T, E> {
        &self.service
    }

    /// The client's failure policy.
    pub fn client_config(&self) -> ClientConfig {
        self.cfg
    }

    /// Calls this client evaluated directly (service unhealthy or
    /// retries exhausted) instead of through the service.
    pub fn fallbacks(&self) -> usize {
        self.fallbacks.load(Ordering::Relaxed)
    }

    /// Whether the health gate diverts this call to the direct path.
    fn diverted(&self) -> bool {
        self.cfg.fallback && self.service.health() != ServiceHealth::Healthy
    }

    fn submit_one(&self, kernel: Kernel, pos: [T; 3], out: &mut E::Out) {
        let dummy = {
            let mut pool = lock_recover(&self.pool);
            pool.pop()
        }
        .unwrap_or_else(|| self.service.engine().make_out());
        let block = std::mem::replace(out, dummy);
        let mut owned = vec![block];
        for attempt in 0..=self.cfg.max_retries {
            if self.diverted() {
                break;
            }
            let mut pb = PosBlock::with_capacity(1);
            pb.push(pos);
            let ticket = match self.cfg.deadline {
                Some(d) => self.service.submit_with_deadline(
                    kernel,
                    pb,
                    BatchOut::from_blocks(owned),
                    Instant::now() + d,
                ),
                None => self.service.submit(kernel, pb, BatchOut::from_blocks(owned)),
            };
            match ticket.redeem() {
                Ok((_, res, _)) => {
                    let mut blocks = res.into_blocks();
                    let dummy = std::mem::replace(out, blocks.pop().expect("one block back"));
                    lock_recover(&self.pool).push(dummy);
                    return;
                }
                Err(f) => {
                    let error = f.error;
                    owned = f
                        .out
                        .expect("service failures return the caller's blocks")
                        .into_blocks();
                    if !self.cfg.fallback && attempt == self.cfg.max_retries {
                        panic!("service call failed after {} attempts: {error}", attempt + 1);
                    }
                    std::thread::sleep(backoff_delay(self.cfg.backoff, attempt));
                }
            }
        }
        // Fallback: restore the caller's block and evaluate directly.
        self.fallbacks.fetch_add(1, Ordering::Relaxed);
        let dummy = std::mem::replace(out, owned.pop().expect("one block back"));
        lock_recover(&self.pool).push(dummy);
        let engine = self.service.engine();
        match kernel {
            Kernel::V => engine.v(pos, out),
            Kernel::Vgl => engine.vgl(pos, out),
            Kernel::Vgh => engine.vgh(pos, out),
        }
    }

    fn submit_batch(&self, kernel: Kernel, pos: &PosBlock<T>, out: &mut BatchOut<E::Out>) {
        check_batch(pos.len(), out.len());
        let mut owned = std::mem::replace(out, BatchOut::from_blocks(Vec::new()));
        for attempt in 0..=self.cfg.max_retries {
            if self.diverted() {
                break;
            }
            let ticket = match self.cfg.deadline {
                Some(d) => self.service.submit_with_deadline(
                    kernel,
                    pos.clone(),
                    owned,
                    Instant::now() + d,
                ),
                None => self.service.submit(kernel, pos.clone(), owned),
            };
            match ticket.redeem() {
                Ok((_, res, _)) => {
                    *out = res;
                    return;
                }
                Err(f) => {
                    let error = f.error;
                    owned = f.out.expect("service failures return the caller's blocks");
                    if !self.cfg.fallback && attempt == self.cfg.max_retries {
                        panic!("service call failed after {} attempts: {error}", attempt + 1);
                    }
                    std::thread::sleep(backoff_delay(self.cfg.backoff, attempt));
                }
            }
        }
        // Fallback: evaluate directly into the caller's blocks.
        self.fallbacks.fetch_add(1, Ordering::Relaxed);
        *out = owned;
        self.service.engine().eval_batch(kernel, pos, out);
    }
}

impl<T: Real, E: SpoEngine<T> + 'static> Clone for ServiceClient<T, E>
where
    E::Out: 'static,
{
    fn clone(&self) -> Self {
        Self::with_config(Arc::clone(&self.service), self.cfg)
    }
}

impl<T: Real, E: SpoEngine<T> + 'static> SpoEngine<T> for ServiceClient<T, E>
where
    E::Out: 'static,
{
    type Out = E::Out;

    fn n_splines(&self) -> usize {
        self.service.engine().n_splines()
    }

    fn layout(&self) -> crate::layout::Layout {
        self.service.engine().layout()
    }

    fn domain(&self) -> [(f64, f64); 3] {
        self.service.engine().domain()
    }

    fn make_out(&self) -> E::Out {
        self.service.engine().make_out()
    }

    fn v(&self, pos: [T; 3], out: &mut E::Out) {
        self.submit_one(Kernel::V, pos, out);
    }

    fn vgl(&self, pos: [T; 3], out: &mut E::Out) {
        self.submit_one(Kernel::Vgl, pos, out);
    }

    fn vgh(&self, pos: [T; 3], out: &mut E::Out) {
        self.submit_one(Kernel::Vgh, pos, out);
    }

    fn v_batch(&self, pos: &PosBlock<T>, out: &mut BatchOut<E::Out>) {
        self.submit_batch(Kernel::V, pos, out);
    }

    fn vgl_batch(&self, pos: &PosBlock<T>, out: &mut BatchOut<E::Out>) {
        self.submit_batch(Kernel::Vgl, pos, out);
    }

    fn vgh_batch(&self, pos: &PosBlock<T>, out: &mut BatchOut<E::Out>) {
        self.submit_batch(Kernel::Vgh, pos, out);
    }

    // Single-position submissions ride the existing coalescer: a
    // per-move call is one kernel-tagged block of one position, fused
    // with whatever same-kernel traffic the replicas see in the same
    // max-wait window. The context's locate cache is server-side state
    // the client cannot use, so it is deliberately ignored — what the
    // one-move protocol buys here is the V-before-VGL kernel split, not
    // the weight reuse.
    fn v_one(&self, _ctx: &mut MoveContext<T>, pos: [T; 3], out: &mut E::Out) {
        self.submit_one(Kernel::V, pos, out);
    }

    fn vgl_one(&self, _ctx: &mut MoveContext<T>, pos: [T; 3], out: &mut E::Out) {
        self.submit_one(Kernel::Vgl, pos, out);
    }

    fn vgh_one(&self, _ctx: &mut MoveContext<T>, pos: [T; 3], out: &mut E::Out) {
        self.submit_one(Kernel::Vgh, pos, out);
    }
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;
    use crate::soa::BsplineSoA;
    use einspline::{Grid1, MultiCoefs};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn soa(n: usize) -> BsplineSoA<f32> {
        let g = Grid1::periodic(0.0, 1.0, 6);
        let mut m = MultiCoefs::<f32>::new(g, g, g, n);
        m.fill_random(&mut StdRng::seed_from_u64(23));
        BsplineSoA::new(m)
    }

    fn block(ns: usize, seed: u64) -> PosBlock<f32> {
        let mut rng = StdRng::seed_from_u64(seed);
        PosBlock::random(&mut rng, ns, [(0.0, 1.0); 3])
    }

    /// Spin until `f` is true or ~2s pass (supervisor actions are
    /// asynchronous; tests must not race them).
    fn eventually(f: impl Fn() -> bool) -> bool {
        for _ in 0..2000 {
            if f() {
                return true;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        f()
    }

    #[test]
    fn single_submission_matches_direct_batch() {
        let engine = soa(24);
        let pos = block(5, 1);
        let mut direct = engine.make_batch_out(5);
        engine.eval_batch(Kernel::Vgh, &pos, &mut direct);

        let service = SpoService::with_default_config(soa(24));
        let out = service.engine().make_batch_out(5);
        let (_, got, _) = service.submit(Kernel::Vgh, pos, out).redeem().unwrap();
        for p in 0..5 {
            for n in 0..24 {
                assert_eq!(
                    direct.block(p).value(n),
                    got.block(p).value(n),
                    "p={p} n={n}"
                );
            }
        }
    }

    #[test]
    fn empty_submission_completes_immediately() {
        let service = SpoService::with_default_config(soa(8));
        let ticket = service.submit(
            Kernel::V,
            PosBlock::new(),
            BatchOut::from_blocks(Vec::new()),
        );
        assert!(ticket.is_done());
        let (pos, out, _) = ticket.redeem().unwrap();
        assert!(pos.is_empty() && out.is_empty());
        assert_eq!(service.stats().requests, 0, "empty requests never queue");
    }

    #[test]
    fn coalesced_submissions_return_each_callers_blocks() {
        // Submissions outnumbering max_batch force at least one fused
        // call; every caller must get exactly its own positions back.
        let engine = soa(16);
        let service = SpoService::new(
            engine,
            ServiceConfig {
                replicas: 1,
                max_batch: 8,
                max_wait: Duration::from_millis(5),
                queue_positions: 64,
                ..ServiceConfig::default()
            },
        );
        let tickets: Vec<_> = (0..6)
            .map(|i| {
                let pos = block(3, 100 + i as u64);
                let out = service.engine().make_batch_out(3);
                (pos.clone(), service.submit(Kernel::Vgl, pos, out))
            })
            .collect();
        for (sent, ticket) in tickets {
            let (pos, out, _) = ticket.redeem().unwrap();
            assert_eq!(pos.len(), 3);
            assert_eq!(out.len(), 3);
            for i in 0..3 {
                assert_eq!(pos.get(i), sent.get(i), "positions round-trip");
            }
        }
        let stats = service.stats();
        assert_eq!(stats.requests, 6);
        assert_eq!(stats.positions, 18);
        assert!(stats.batches <= 6);
    }

    #[test]
    fn ragged_tail_blocks_ride_along_untouched() {
        let service = SpoService::with_default_config(soa(8));
        let pos = block(2, 9);
        // 4 blocks for 2 positions: the extra 2 must come back.
        let out = service.engine().make_batch_out(4);
        let (_, got) = service.submit(Kernel::V, pos, out).wait();
        assert_eq!(got.len(), 4);
    }

    #[test]
    fn try_submit_hands_back_over_bound_requests() {
        let engine = soa(8);
        let service = SpoService::new(
            engine,
            ServiceConfig {
                replicas: 1,
                max_batch: 4,
                // Long window: the first request is still pending when
                // the second arrives.
                max_wait: Duration::from_millis(200),
                queue_positions: 4,
                ..ServiceConfig::default()
            },
        );
        let first = service.submit(Kernel::V, block(4, 1), service.engine().make_batch_out(4));
        // The worker holds 4 pending positions; a second 4-position
        // request exceeds the bound while the service is non-idle.
        // (It may also have already drained — then submission succeeds.)
        match service.try_submit(Kernel::V, block(4, 2), service.engine().make_batch_out(4)) {
            Ok(t) => {
                t.redeem().unwrap();
            }
            Err((pos, out)) => {
                assert_eq!(pos.len(), 4);
                assert_eq!(out.len(), 4);
            }
        }
        first.redeem().unwrap();
    }

    #[test]
    fn shutdown_drains_in_flight_work() {
        let mut service = SpoService::new(
            soa(12),
            ServiceConfig {
                replicas: 2,
                max_batch: 64,
                max_wait: Duration::from_millis(50),
                ..ServiceConfig::default()
            },
        );
        let tickets: Vec<_> = (0..8)
            .map(|i| {
                let pos = block(2, i);
                let out = service.engine().make_batch_out(2);
                service.submit(Kernel::Vgh, pos, out)
            })
            .collect();
        service.shutdown();
        for t in tickets {
            let (pos, out, _) = t.redeem().expect("shutdown drains, never strands");
            assert_eq!(pos.len(), 2);
            assert!(out.len() >= 2);
        }
    }

    #[test]
    #[should_panic(expected = "shut-down SpoService")]
    fn submit_after_shutdown_panics() {
        let mut service = SpoService::with_default_config(soa(4));
        service.shutdown();
        let out = service.engine().make_batch_out(1);
        service.submit(Kernel::V, block(1, 0), out);
    }

    #[test]
    fn routing_policies_resolve_shard_counts() {
        let fifo = SpoService::new(
            soa(8),
            ServiceConfig {
                routing: RoutingPolicy::Fifo,
                ..ServiceConfig::default()
            },
        );
        assert_eq!(fifo.n_shards(), 1);
        let pinned = SpoService::new(
            soa(8),
            ServiceConfig {
                routing: RoutingPolicy::Affinity { domains: 3 },
                ..ServiceConfig::default()
            },
        );
        assert_eq!(pinned.n_shards(), 3);
        // Auto resolves to whatever the host (or QMC_NUMA_DOMAINS)
        // reports — at least one shard, whatever that is.
        let auto = SpoService::with_default_config(soa(8));
        assert!(auto.n_shards() >= 1);
        assert_eq!(auto.n_shards(), crate::tuning::numa_domains());
    }

    #[test]
    fn classification_is_deterministic_and_separates_corners() {
        let router = Router {
            map: ShardMap::balanced(ROUTER_CELLS * ROUTER_CELLS * ROUTER_CELLS, 2),
            domain: [(0.0, 1.0); 3],
            spill_limit: 1024,
        };
        // A block concentrated near the origin owns cell 0 → shard 0;
        // one at the far corner owns the last cell → shard 1.
        let mut near = PosBlock::<f32>::new();
        let mut far = PosBlock::<f32>::new();
        for i in 0..5 {
            let eps = 0.01 * i as f32;
            near.push([0.05 + eps; 3]);
            far.push([0.95 - eps; 3]);
        }
        assert_eq!(router.classify(&near), 0);
        assert_eq!(router.classify(&far), 1);
        // Deterministic: the same content classifies identically, even
        // for a spatially uniform block (hash tie-break path).
        let uniform = block(32, 7);
        let shard = router.classify(&uniform);
        assert!(shard < 2);
        assert_eq!(router.classify(&uniform), shard);
        assert_eq!(router.classify(&block(32, 7)), shard);
    }

    #[test]
    fn spill_escapes_hot_shard_to_least_loaded() {
        // Under the limit: stay on the affinity shard.
        assert_eq!(spill_target(0, 8, &[10, 0], 32), (0, false));
        // Over the limit with a cooler shard available: spill.
        assert_eq!(spill_target(0, 8, &[100, 2], 32), (1, true));
        // Everything hot: the least-loaded still wins.
        assert_eq!(spill_target(1, 8, &[100, 200], 32), (0, true));
        // No strictly cooler shard: stay put (never bounce between
        // equally loaded queues).
        assert_eq!(spill_target(0, 8, &[50, 50], 32), (0, false));
    }

    #[test]
    fn affinity_routed_results_match_direct_batch() {
        let engine = soa(24);
        let service = SpoService::new(
            soa(24),
            ServiceConfig {
                replicas: 2,
                max_batch: 16,
                max_wait: Duration::from_millis(2),
                queue_positions: 256,
                routing: RoutingPolicy::Affinity { domains: 3 },
                ..ServiceConfig::default()
            },
        );
        let tickets: Vec<_> = (0..9)
            .map(|i| {
                // Blocks concentrated in alternating corners exercise
                // the majority path; uniform ones the hash tie-break.
                let pos = if i % 3 == 2 {
                    block(4, 40 + i as u64)
                } else {
                    let lo = if i % 2 == 0 { 0.02 } else { 0.7 };
                    let mut rng = StdRng::seed_from_u64(40 + i as u64);
                    PosBlock::random(&mut rng, 4, [(lo, lo + 0.2); 3])
                };
                let out = service.engine().make_batch_out(4);
                (pos.clone(), service.submit(Kernel::Vgh, pos, out))
            })
            .collect();
        for (sent, ticket) in tickets {
            let (pos, out, _) = ticket.redeem().unwrap();
            let mut direct = engine.make_batch_out(4);
            engine.eval_batch(Kernel::Vgh, &sent, &mut direct);
            for p in 0..4 {
                assert_eq!(pos.get(p), sent.get(p), "positions round-trip");
                for n in 0..24 {
                    assert_eq!(
                        direct.block(p).value(n),
                        out.block(p).value(n),
                        "routed result bit-identical, p={p} n={n}"
                    );
                    assert_eq!(
                        direct.block(p).hessian(n),
                        out.block(p).hessian(n),
                        "p={p} n={n}"
                    );
                }
            }
        }
        assert_eq!(service.stats().requests, 9);
    }

    #[test]
    fn single_shard_affinity_never_spills_or_steals() {
        let service = SpoService::new(
            soa(8),
            ServiceConfig {
                routing: RoutingPolicy::Affinity { domains: 1 },
                ..ServiceConfig::default()
            },
        );
        for i in 0..6 {
            let pos = block(3, i);
            let out = service.engine().make_batch_out(3);
            service.submit(Kernel::V, pos, out).redeem().unwrap();
        }
        let stats = service.stats();
        assert_eq!(stats.spilled, 0);
        assert_eq!(stats.stolen, 0);
        assert_eq!(stats.requests, 6);
    }

    #[test]
    fn service_client_scalar_calls_match_direct_engine() {
        let engine = soa(20);
        let mut direct = engine.make_out();
        engine.vgh([0.3, 0.6, 0.9], &mut direct);

        let service = Arc::new(SpoService::with_default_config(soa(20)));
        let client = ServiceClient::new(service);
        let mut via = client.make_out();
        client.vgh([0.3, 0.6, 0.9], &mut via);
        for n in 0..20 {
            assert_eq!(direct.value(n), via.value(n), "n={n}");
            assert_eq!(direct.hessian(n), via.hessian(n), "n={n}");
        }
        // Pool reuse: a second call must not grow the pool.
        client.v([0.1, 0.2, 0.3], &mut via);
        client.v([0.4, 0.5, 0.6], &mut via);
        assert_eq!(client.pool.lock().unwrap().len(), 1);
        assert_eq!(client.fallbacks(), 0, "healthy service never diverts");
    }

    // ---- failure model ----

    #[test]
    fn service_error_display_is_stable() {
        assert!(ServiceError::Timeout.to_string().contains("in flight"));
        assert!(ServiceError::Shed.to_string().contains("shed"));
        assert!(ServiceError::WorkerLost { retries: 2 }
            .to_string()
            .contains("2 retries"));
        assert!(ServiceError::ShuttingDown.to_string().contains("stopped"));
    }

    #[test]
    fn past_deadline_submission_sheds_before_queueing() {
        let service = SpoService::with_default_config(soa(8));
        let out = service.engine().make_batch_out(2);
        let deadline = Instant::now() - Duration::from_millis(1);
        let ticket = service.submit_with_deadline(Kernel::V, block(2, 3), out, deadline);
        let failed = ticket.redeem().unwrap_err();
        assert_eq!(failed.error, ServiceError::Shed);
        assert_eq!(failed.pos.map(|p| p.len()), Some(2), "positions returned");
        assert_eq!(failed.out.map(|o| o.len()), Some(2), "blocks returned");
        let stats = service.stats();
        assert_eq!(stats.shed, 1);
        assert_eq!(stats.requests, 1, "shed submissions still count");
        assert_eq!(stats.batches, 0, "never evaluated");
    }

    #[test]
    fn panic_fault_is_retried_and_worker_respawned() {
        let engine = soa(16);
        let pos = block(4, 11);
        let mut direct = engine.make_batch_out(4);
        engine.eval_batch(Kernel::Vgl, &pos, &mut direct);

        let service = SpoService::with_fault_plan(
            soa(16),
            ServiceConfig::default(),
            ServiceFaultPlan {
                faults: vec![ServiceFault::Panic {
                    worker: 0,
                    at_request: 0,
                }],
            },
        );
        let out = service.engine().make_batch_out(4);
        let (_, got, _) = service
            .submit(Kernel::Vgl, pos, out)
            .redeem()
            .expect("retried after the crash");
        for p in 0..4 {
            for n in 0..16 {
                assert_eq!(
                    direct.block(p).value(n),
                    got.block(p).value(n),
                    "retried result bit-identical, p={p} n={n}"
                );
            }
        }
        assert!(eventually(|| service.stats().respawns >= 1));
        let stats = service.stats();
        assert!(stats.panics >= 1, "crash was counted");
        assert!(stats.retried >= 1, "batch was re-enqueued");
        assert!(eventually(|| service.health() == ServiceHealth::Healthy));
    }

    #[test]
    fn kill_fault_degrades_service_but_survivor_completes() {
        let service = SpoService::with_fault_plan(
            soa(8),
            ServiceConfig {
                replicas: 2,
                max_wait: Duration::from_micros(50),
                ..ServiceConfig::default()
            },
            ServiceFaultPlan {
                faults: vec![ServiceFault::Kill {
                    worker: 0,
                    at_request: 0,
                }],
            },
        );
        // Keep submitting until slot 0 has evaluated (and died); every
        // ticket still completes on the survivor via retry.
        let mut rounds = 0u64;
        while service.health() == ServiceHealth::Healthy && rounds < 200 {
            let tickets: Vec<_> = (0..8u64)
                .map(|i| {
                    let out = service.engine().make_batch_out(2);
                    service.submit(Kernel::V, block(2, rounds * 8 + i), out)
                })
                .collect();
            for t in tickets {
                t.redeem().expect("survivor completes retried work");
            }
            rounds += 1;
        }
        assert!(eventually(|| service.health() == ServiceHealth::Degraded));
        assert_eq!(service.live_workers(), 1);
        assert_eq!(service.stats().respawns, 0, "killed slots stay down");
    }

    #[test]
    fn all_workers_killed_fails_the_service() {
        let service = SpoService::with_fault_plan(
            soa(8),
            ServiceConfig {
                replicas: 1,
                max_retries: 0,
                ..ServiceConfig::default()
            },
            ServiceFaultPlan {
                faults: vec![ServiceFault::Kill {
                    worker: 0,
                    at_request: 0,
                }],
            },
        );
        let out = service.engine().make_batch_out(3);
        let failed = service
            .submit(Kernel::Vgh, block(3, 5), out)
            .redeem()
            .unwrap_err();
        assert_eq!(failed.error, ServiceError::WorkerLost { retries: 0 });
        assert_eq!(failed.pos.map(|p| p.len()), Some(3));
        assert!(eventually(|| service.health() == ServiceHealth::Failed));
        // Later submissions resolve instead of queueing forever.
        let out = service.engine().make_batch_out(1);
        let failed = service
            .submit(Kernel::V, block(1, 6), out)
            .redeem()
            .unwrap_err();
        assert_eq!(failed.error, ServiceError::ShuttingDown);
    }

    #[test]
    fn retry_budget_exhaustion_resolves_worker_lost() {
        let service = SpoService::with_fault_plan(
            soa(8),
            ServiceConfig {
                replicas: 1,
                max_retries: 1,
                ..ServiceConfig::default()
            },
            ServiceFaultPlan {
                // Two one-shot panics on the same slot: the original
                // worker and its respawn each crash once.
                faults: vec![
                    ServiceFault::Panic {
                        worker: 0,
                        at_request: 0,
                    },
                    ServiceFault::Panic {
                        worker: 0,
                        at_request: 0,
                    },
                ],
            },
        );
        let out = service.engine().make_batch_out(2);
        let failed = service
            .submit(Kernel::V, block(2, 7), out)
            .redeem()
            .unwrap_err();
        assert_eq!(failed.error, ServiceError::WorkerLost { retries: 1 });
        assert!(eventually(|| service.stats().panics == 2));
        assert_eq!(service.stats().retried, 1, "one re-enqueue before giving up");
        // The second respawn leaves the service healthy again.
        assert!(eventually(|| service.health() == ServiceHealth::Healthy));
        let out = service.engine().make_batch_out(2);
        service
            .submit(Kernel::V, block(2, 8), out)
            .redeem()
            .expect("faults exhausted; service recovered");
    }

    #[test]
    fn stall_fault_delays_but_completes() {
        let service = SpoService::with_fault_plan(
            soa(8),
            ServiceConfig::default(),
            ServiceFaultPlan {
                faults: vec![ServiceFault::Stall {
                    worker: 0,
                    at_request: 0,
                    ms: 20,
                }],
            },
        );
        let start = Instant::now();
        let out = service.engine().make_batch_out(2);
        service
            .submit(Kernel::V, block(2, 9), out)
            .redeem()
            .expect("a stall is not a failure");
        assert!(start.elapsed() >= Duration::from_millis(20));
        assert_eq!(service.stats().panics, 0);
    }

    #[test]
    fn poison_then_recover_keeps_evaluating() {
        let engine = soa(12);
        let pos = block(3, 13);
        let mut direct = engine.make_batch_out(3);
        engine.eval_batch(Kernel::V, &pos, &mut direct);

        let service = SpoService::with_fault_plan(
            soa(12),
            ServiceConfig::default(),
            ServiceFaultPlan {
                faults: vec![ServiceFault::Poison {
                    worker: 0,
                    at_request: 0,
                }],
            },
        );
        // The poison fires as soon as worker 0 wakes with the state
        // mutex held; the respawned worker recovers the poisoned lock.
        assert!(eventually(|| service.stats().respawns >= 1));
        let out = service.engine().make_batch_out(3);
        let (_, got, _) = service
            .submit(Kernel::V, pos, out)
            .redeem()
            .expect("recovered lock still serves");
        for p in 0..3 {
            for n in 0..12 {
                assert_eq!(direct.block(p).value(n), got.block(p).value(n), "p={p} n={n}");
            }
        }
    }

    #[test]
    fn redeem_for_times_out_then_ticket_still_resolves() {
        let service = SpoService::new(
            soa(8),
            ServiceConfig {
                max_wait: Duration::from_millis(100),
                ..ServiceConfig::default()
            },
        );
        let out = service.engine().make_batch_out(1);
        let ticket = service.submit(Kernel::V, block(1, 2), out);
        match ticket.redeem_for(Duration::from_micros(1)) {
            // Fast machine: already done — fine.
            Ok((pos, _, _)) => assert_eq!(pos.len(), 1),
            Err(failed) => {
                assert_eq!(failed.error, ServiceError::Timeout);
                assert!(failed.pos.is_none() && failed.out.is_none());
                let ticket = failed.ticket.expect("the claim comes back");
                let (pos, _, _) = ticket.redeem().expect("still in flight, still completes");
                assert_eq!(pos.len(), 1);
            }
        }
    }

    #[test]
    fn client_falls_back_to_direct_eval_when_service_dies() {
        let engine = soa(16);
        let pos = block(4, 21);
        let mut direct = engine.make_batch_out(4);
        engine.eval_batch(Kernel::Vgh, &pos, &mut direct);

        let service = Arc::new(SpoService::with_fault_plan(
            soa(16),
            ServiceConfig {
                replicas: 1,
                max_retries: 0,
                ..ServiceConfig::default()
            },
            ServiceFaultPlan {
                faults: vec![ServiceFault::Kill {
                    worker: 0,
                    at_request: 0,
                }],
            },
        ));
        let client = ServiceClient::new(service);
        let mut out = client.make_batch_out(4);
        // Infallible trait call: the service dies under it, the client
        // retries/diverts, and the caller still gets physics.
        client.vgh_batch(&pos, &mut out);
        assert!(client.fallbacks() >= 1, "direct path was taken");
        for p in 0..4 {
            for n in 0..16 {
                assert_eq!(
                    direct.block(p).value(n),
                    out.block(p).value(n),
                    "fallback result bit-identical, p={p} n={n}"
                );
            }
        }
    }

    #[test]
    fn deprecated_wait_shims_still_serve_pr9_call_sites() {
        let service = SpoService::with_default_config(soa(8));
        let out = service.engine().make_batch_out(2);
        let (pos, out) = service.submit(Kernel::V, block(2, 31), out).wait();
        assert_eq!((pos.len(), out.len()), (2, 2));
        let out = service.engine().make_batch_out(2);
        let (pos, ..) = service.submit(Kernel::V, block(2, 32), out).wait_timed();
        assert_eq!(pos.len(), 2);
        let out = service.engine().make_batch_out(2);
        let ticket = service.submit(Kernel::V, block(2, 33), out);
        match ticket.wait_for(Duration::from_secs(5)) {
            Ok((pos, ..)) => assert_eq!(pos.len(), 2),
            Err(t) => {
                t.wait();
            }
        }
    }
}




