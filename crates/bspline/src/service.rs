//! `SpoService` — a coalescing orbital-evaluation service over
//! long-lived engine replicas.
//!
//! The fork-join entry points in [`crate::parallel`] are *closed-loop*:
//! a driver owns the walkers, builds full position blocks itself and
//! blocks until the generation finishes. The "millions of users" shape
//! in the ROADMAP is *open-loop*: many independent walker streams
//! produce small position batches at their own pace, and throughput
//! comes from fusing those submissions into the full [`PosBlock`]s the
//! batched engines are fast on. This module is that front-end:
//!
//! * **Ownership.** [`SpoService::new`] moves the engine into an
//!   [`EngineCell`] and spawns
//!   `replicas` worker threads, each owning one
//!   [`Replica`] handle for its lifetime.
//!   Workers re-arm the replica's pinned SIMD backend before every
//!   batch, so a service built inside a
//!   [`with_backend`](crate::simd::with_backend) force keeps that
//!   backend no matter which thread submits.
//! * **Coalescing.** Submissions carry a kernel tag
//!   ([`Kernel`]); a worker seeds a batch with the queue head and
//!   splices every queued same-kernel request
//!   ([`PosBlock::extend_from_block`]) until the fused block reaches
//!   `max_batch` positions, waiting at most `max_wait` for stragglers
//!   once it holds a partial batch. Requests for other kernels are left
//!   queued for the next worker.
//! * **Backpressure.** The queue is bounded by `queue_positions`
//!   pending positions; [`SpoService::submit`] blocks until space is
//!   available (one oversized request is admitted when the queue is
//!   empty so it cannot deadlock), and [`SpoService::try_submit`] gives
//!   the request back instead of blocking.
//! * **Zero-copy completion.** The caller's [`BatchOut`] blocks are
//!   moved into the fused engine call and handed back through the
//!   [`Ticket`] — the engine writes orbitals directly into the
//!   submitter's buffers; nothing is copied out.
//! * **Routing.** With more than one shard ([`RoutingPolicy`]), the
//!   service keeps one queue per NUMA-domain shard and classifies each
//!   submission by the table region its positions fall in: positions
//!   quantize onto a small lattice of cells, a [`ShardMap`] assigns
//!   cells to shards, and the submission lands on the shard owning the
//!   strict majority of its positions (spatially uniform blocks route
//!   by a deterministic content hash instead, so *identical* blocks
//!   always land on the same shard and coalesce adjacently). A
//!   load-balance escape hatch spills submissions off a shard whose
//!   queue is over its spill limit onto the least-loaded one, so a hot
//!   region cannot starve the rest. Workers drain their replica's home
//!   shard first and steal round-robin otherwise. Routing only decides
//!   *where* a batch runs — never how it is split — so routed results
//!   stay bit-identical to the FIFO path. With one shard (the
//!   [`RoutingPolicy::Auto`] default on a single-domain host) the
//!   service is exactly the single-queue FIFO coalescer.
//! * **Determinism.** Fusing blocks never splits a per-orbital
//!   accumulation chain, so coalesced results are **bit-identical** to
//!   a direct `*_batch` call on every backend — property-tested in
//!   `tests/integration_service.rs`.
//! * **Shutdown.** Dropping the service (or calling
//!   [`SpoService::shutdown`]) wakes all workers, drains every queued
//!   request, and joins the threads; every issued ticket completes.

use crate::batch::{check_batch, BatchOut, PosBlock};
use crate::engine::SpoEngine;
use crate::layout::Kernel;
use crate::onemove::MoveContext;
use crate::replica::{EngineCell, EngineRef, Replica};
use crate::tuning;
use einspline::{Real, ShardMap};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Lock, recovering the guard if a panicking submitter poisoned the
/// mutex (a submit-side assertion fires *before* any state mutation, so
/// the state is still consistent — and [`SpoService::shutdown`] runs
/// from `Drop`, where a second panic would abort).
fn lock_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// How submissions map onto shard queues (see the [module docs](self)
/// **Routing** bullet).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum RoutingPolicy {
    /// One queue, strict submit order — the pre-routing coalescer.
    Fifo,
    /// Shard by the host's detected NUMA domain count
    /// ([`tuning::numa_domains`]; override with `QMC_NUMA_DOMAINS`).
    /// On a single-domain host this is exactly [`RoutingPolicy::Fifo`]
    /// — the single-domain no-op contract.
    #[default]
    Auto,
    /// Affinity routing over an explicit shard count, regardless of
    /// what the host reports (ablations, tests).
    Affinity {
        /// Number of shard queues (must be positive).
        domains: usize,
    },
}

impl RoutingPolicy {
    /// The shard-queue count this policy resolves to on this host.
    pub fn shards(self) -> usize {
        match self {
            Self::Fifo => 1,
            Self::Auto => tuning::numa_domains(),
            Self::Affinity { domains } => {
                assert!(domains > 0, "affinity routing needs at least one domain");
                domains
            }
        }
    }
}

/// Service shape: replica count, coalescing policy, queue bound,
/// routing policy.
#[derive(Clone, Copy, Debug)]
pub struct ServiceConfig {
    /// Worker threads, each owning one engine replica handle.
    pub replicas: usize,
    /// Fused-batch target: a worker stops coalescing once the fused
    /// block holds at least this many positions.
    pub max_batch: usize,
    /// How long a worker holding a *partial* batch waits for more
    /// same-kernel submissions before evaluating what it has.
    pub max_wait: Duration,
    /// Backpressure bound: pending positions (queued, including those a
    /// worker is still coalescing) the service admits before `submit`
    /// blocks. The bound is global across all shard queues.
    pub queue_positions: usize,
    /// How submissions map onto shard queues.
    pub routing: RoutingPolicy,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            replicas: 1,
            max_batch: 32,
            max_wait: Duration::from_micros(200),
            queue_positions: 1024,
            routing: RoutingPolicy::default(),
        }
    }
}

/// Cells per axis of the routing lattice: classification quantizes
/// every position into one of `ROUTER_CELLS³` table regions, and a
/// [`ShardMap`] partitions those regions across the shard queues.
const ROUTER_CELLS: usize = 4;

/// The routing decision state: lattice → shard ownership plus the
/// spill threshold. Immutable after service construction.
struct Router {
    /// Lattice cells → shards (balanced contiguous partition, the same
    /// shape [`crate::blocked::BlockedEngine::from_multi_sharded`] uses
    /// for coefficient placement).
    map: ShardMap,
    /// Engine evaluation domain the lattice spans.
    domain: [(f64, f64); 3],
    /// Per-shard queued-position level above which a submission may
    /// escape to the least-loaded shard.
    spill_limit: usize,
}

impl Router {
    fn n_shards(&self) -> usize {
        self.map.n_domains()
    }

    /// Quantize one position into its lattice cell (out-of-domain
    /// positions clamp to the boundary cells).
    fn cell_of<T: Real>(&self, p: [T; 3]) -> usize {
        let mut cell = 0;
        for k in 0..3 {
            let (lo, hi) = self.domain[k];
            let frac = ((p[k].to_f64() - lo) / (hi - lo)).clamp(0.0, 1.0);
            let idx = ((frac * ROUTER_CELLS as f64) as usize).min(ROUTER_CELLS - 1);
            cell = cell * ROUTER_CELLS + idx;
        }
        cell
    }

    /// The shard this block has affinity with: the owner of a strict
    /// majority of its positions' cells, else (spatially uniform
    /// blocks) a deterministic content hash over the cell sequence —
    /// so identical blocks always classify identically and coalesce
    /// adjacently on one shard's queue.
    fn classify<T: Real>(&self, pos: &PosBlock<T>) -> usize {
        let shards = self.n_shards();
        let mut votes = vec![0usize; shards];
        // FNV-1a over the cell sequence as the content key.
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for i in 0..pos.len() {
            let cell = self.cell_of(pos.get(i));
            votes[self.map.domain_of(cell)] += 1;
            hash = (hash ^ cell as u64).wrapping_mul(0x100_0000_01b3);
        }
        let (leader, &n) = votes
            .iter()
            .enumerate()
            .max_by_key(|&(_, n)| *n)
            .expect("at least one shard");
        if 2 * n > pos.len() {
            leader
        } else {
            (hash % shards as u64) as usize
        }
    }
}

/// The load-balance escape hatch: keep `classified` unless its queue
/// would exceed `limit` positions *and* some other queue is strictly
/// cooler — then route to the least-loaded queue. Returns the target
/// and whether it spilled.
fn spill_target(
    classified: usize,
    len: usize,
    queued: &[usize],
    limit: usize,
) -> (usize, bool) {
    if queued[classified] + len <= limit {
        return (classified, false);
    }
    let coolest = queued
        .iter()
        .enumerate()
        .min_by_key(|&(_, n)| *n)
        .map(|(q, _)| q)
        .expect("at least one shard");
    if queued[coolest] < queued[classified] {
        (coolest, true)
    } else {
        (classified, false)
    }
}

/// Aggregate service counters (monotonic; relaxed atomics).
#[derive(Debug, Default)]
struct Stats {
    requests: AtomicUsize,
    batches: AtomicUsize,
    positions: AtomicUsize,
    coalesced: AtomicUsize,
    spilled: AtomicUsize,
    stolen: AtomicUsize,
}

/// A point-in-time copy of the service counters.
#[derive(Clone, Copy, Debug)]
pub struct StatsSnapshot {
    /// Requests submitted (excluding empty ones, which complete
    /// immediately without queueing).
    pub requests: usize,
    /// Fused engine calls issued.
    pub batches: usize,
    /// Positions evaluated.
    pub positions: usize,
    /// Requests that shared their engine call with at least one other
    /// request.
    pub coalesced: usize,
    /// Requests routed off their affinity shard by the load-balance
    /// escape hatch (always 0 with one shard).
    pub spilled: usize,
    /// Batches a worker seeded from a shard other than its home
    /// (always 0 with one shard).
    pub stolen: usize,
}

impl StatsSnapshot {
    /// Mean positions per fused engine call.
    pub fn mean_batch_positions(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.positions as f64 / self.batches as f64
        }
    }
}

/// What a completed request hands back: the submitted positions, the
/// caller's filled output blocks, and the instant the worker finished
/// (stamped service-side so latency measurement does not charge the
/// submitter's reaping delay).
type Completed<T, O> = (PosBlock<T>, BatchOut<O>, Instant);

/// Completion slot shared between a [`Ticket`] and the worker.
struct Done<T: Real, O> {
    slot: Mutex<Option<Completed<T, O>>>,
    cv: Condvar,
}

impl<T: Real, O> Done<T, O> {
    fn new() -> Self {
        Self {
            slot: Mutex::new(None),
            cv: Condvar::new(),
        }
    }

    fn complete(&self, pos: PosBlock<T>, out: BatchOut<O>, at: Instant) {
        let mut slot = lock_recover(&self.slot);
        debug_assert!(slot.is_none(), "a request completes once");
        *slot = Some((pos, out, at));
        self.cv.notify_all();
    }
}

/// Claim on an in-flight submission: redeem it with [`Ticket::wait`]
/// to get the position block and filled output blocks back.
pub struct Ticket<T: Real, O> {
    done: Arc<Done<T, O>>,
}

impl<T: Real, O> Ticket<T, O> {
    /// Block until the request completes; returns the submitted
    /// positions and the caller's output blocks, now filled.
    pub fn wait(self) -> (PosBlock<T>, BatchOut<O>) {
        let (pos, out, _) = self.wait_timed();
        (pos, out)
    }

    /// [`Ticket::wait`] plus the instant the worker finished the
    /// request — taken inside the service, so open-loop latency
    /// measurement does not charge the submitter's reaping delay to
    /// the service.
    pub fn wait_timed(self) -> Completed<T, O> {
        let mut slot = lock_recover(&self.done.slot);
        loop {
            if let Some(r) = slot.take() {
                return r;
            }
            slot = self.done.cv.wait(slot).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// [`Ticket::wait_timed`] with a deadline: blocks at most `timeout`.
    /// On expiry the ticket itself is handed back (`Err`), so the caller
    /// can retry, keep polling, or fall back to [`Ticket::wait`] — the
    /// claim on the in-flight request is never lost, and the service
    /// still guarantees the request completes (a coalesce flush, the
    /// shutdown drain, or drop-with-queued-requests all redeem it).
    pub fn wait_for(self, timeout: Duration) -> Result<Completed<T, O>, Self> {
        let deadline = Instant::now() + timeout;
        let mut slot = lock_recover(&self.done.slot);
        loop {
            if let Some(r) = slot.take() {
                return Ok(r);
            }
            let now = Instant::now();
            if now >= deadline {
                drop(slot);
                return Err(self);
            }
            let (guard, _timeout) = self
                .done
                .cv
                .wait_timeout(slot, deadline - now)
                .unwrap_or_else(PoisonError::into_inner);
            slot = guard;
        }
    }

    /// Whether the request has already completed (non-blocking).
    pub fn is_done(&self) -> bool {
        lock_recover(&self.done.slot).is_some()
    }
}

struct Request<T: Real, O> {
    kernel: Kernel,
    pos: PosBlock<T>,
    out: Vec<O>,
    done: Arc<Done<T, O>>,
}

struct State<T: Real, O> {
    /// One queue per shard; index 0 is the only queue under FIFO.
    queues: Vec<VecDeque<Request<T, O>>>,
    /// Positions currently sitting in each shard queue (drops as soon
    /// as a worker removes the request) — the router's load signal.
    queued_positions: Vec<usize>,
    /// Positions admitted but not yet evaluated (queued + coalescing),
    /// summed across shards — the backpressure signal.
    pending_positions: usize,
    shutdown: bool,
}

struct Shared<T: Real, O> {
    state: Mutex<State<T, O>>,
    /// Signals workers: new work queued, or shutdown.
    work: Condvar,
    /// Signals submitters: pending positions dropped below the bound.
    space: Condvar,
    cfg: ServiceConfig,
    router: Router,
    stats: Stats,
}

/// The coalescing evaluation service. See the [module docs](self) for
/// the model.
pub struct SpoService<T: Real, E: SpoEngine<T> + 'static>
where
    E::Out: 'static,
{
    shared: Arc<Shared<T, E::Out>>,
    cell: EngineCell<E>,
    workers: Vec<JoinHandle<()>>,
}

impl<T: Real, E: SpoEngine<T> + 'static> SpoService<T, E>
where
    E::Out: 'static,
{
    /// Move `engine` into a replica cell and spawn the worker threads.
    ///
    /// The workers' SIMD backend is pinned here (replica mint time), so
    /// building the service inside a
    /// [`with_backend`](crate::simd::with_backend) force pins that
    /// backend for the service's lifetime.
    pub fn new(engine: E, cfg: ServiceConfig) -> Self {
        assert!(cfg.replicas > 0, "need at least one service replica");
        assert!(cfg.max_batch > 0, "fused batches must hold positions");
        assert!(cfg.queue_positions > 0, "queue bound must be positive");
        let n_shards = cfg.routing.shards();
        let router = Router {
            map: ShardMap::balanced(ROUTER_CELLS * ROUTER_CELLS * ROUTER_CELLS, n_shards),
            domain: engine.domain(),
            // A shard is "hot" once it holds more than its fair share
            // of the queue bound (but never less than one full batch).
            spill_limit: cfg.max_batch.max(cfg.queue_positions / n_shards),
        };
        let cell = EngineCell::new(engine);
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queues: (0..n_shards).map(|_| VecDeque::new()).collect(),
                queued_positions: vec![0; n_shards],
                pending_positions: 0,
                shutdown: false,
            }),
            work: Condvar::new(),
            space: Condvar::new(),
            cfg,
            router,
            stats: Stats::default(),
        });
        let workers = cell
            .handles_for_domains(cfg.replicas, n_shards)
            .into_iter()
            .map(|replica| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(replica, shared))
            })
            .collect();
        Self {
            shared,
            cell,
            workers,
        }
    }

    /// Service with the default [`ServiceConfig`].
    pub fn with_default_config(engine: E) -> Self {
        Self::new(engine, ServiceConfig::default())
    }

    /// The shared engine (configuration queries, buffer allocation).
    pub fn engine(&self) -> &E {
        self.cell.engine()
    }

    /// The service configuration.
    pub fn config(&self) -> ServiceConfig {
        self.shared.cfg
    }

    /// The shard-queue count the routing policy resolved to.
    pub fn n_shards(&self) -> usize {
        self.shared.router.n_shards()
    }

    /// Point-in-time counters.
    pub fn stats(&self) -> StatsSnapshot {
        let s = &self.shared.stats;
        StatsSnapshot {
            requests: s.requests.load(Ordering::Relaxed),
            batches: s.batches.load(Ordering::Relaxed),
            positions: s.positions.load(Ordering::Relaxed),
            coalesced: s.coalesced.load(Ordering::Relaxed),
            spilled: s.spilled.load(Ordering::Relaxed),
            stolen: s.stolen.load(Ordering::Relaxed),
        }
    }

    /// Route the admitted request onto its shard queue (the caller
    /// holds the lock and has already passed admission control).
    /// `class` is the pre-lock classification (`None` with one shard).
    fn enqueue_locked(
        &self,
        st: &mut State<T, E::Out>,
        class: Option<usize>,
        kernel: Kernel,
        pos: PosBlock<T>,
        out: BatchOut<E::Out>,
        done: &Arc<Done<T, E::Out>>,
    ) {
        let (target, spilled) = match class {
            Some(c) => spill_target(
                c,
                pos.len(),
                &st.queued_positions,
                self.shared.router.spill_limit,
            ),
            None => (0, false),
        };
        if spilled {
            self.shared.stats.spilled.fetch_add(1, Ordering::Relaxed);
        }
        st.pending_positions += pos.len();
        st.queued_positions[target] += pos.len();
        st.queues[target].push_back(Request {
            kernel,
            pos,
            out: out.into_blocks(),
            done: Arc::clone(done),
        });
        self.shared.stats.requests.fetch_add(1, Ordering::Relaxed);
    }

    /// Classify `pos` outside the state lock (`None` = single shard,
    /// nothing to decide).
    fn classify(&self, pos: &PosBlock<T>) -> Option<usize> {
        (self.shared.router.n_shards() > 1).then(|| self.shared.router.classify(pos))
    }

    /// Enqueue `pos` for `kernel`, handing the service the caller's
    /// output blocks (`out` needs one block per position; extra blocks
    /// ride along untouched, matching the ragged-tail contract of the
    /// direct batched calls). Blocks while the queue is over its
    /// position bound. Panics if called after [`SpoService::shutdown`].
    pub fn submit(
        &self,
        kernel: Kernel,
        pos: PosBlock<T>,
        out: BatchOut<E::Out>,
    ) -> Ticket<T, E::Out> {
        check_batch(pos.len(), out.len());
        let done = Arc::new(Done::new());
        if pos.is_empty() {
            // Nothing to evaluate: complete immediately, never queue.
            done.complete(pos, out, Instant::now());
            return Ticket { done };
        }
        let class = self.classify(&pos);
        let mut st = lock_recover(&self.shared.state);
        loop {
            assert!(!st.shutdown, "submit on a shut-down SpoService");
            // Admit when under the bound — or unconditionally when the
            // service is idle, so one request larger than the whole
            // bound cannot deadlock.
            if st.pending_positions == 0
                || st.pending_positions + pos.len() <= self.shared.cfg.queue_positions
            {
                break;
            }
            st = self.shared.space.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
        self.enqueue_locked(&mut st, class, kernel, pos, out, &done);
        drop(st);
        self.shared.work.notify_one();
        Ticket { done }
    }

    /// Non-blocking [`SpoService::submit`]: if admitting `pos` would
    /// exceed the queue bound, the request is handed back unevaluated.
    #[allow(clippy::type_complexity)]
    pub fn try_submit(
        &self,
        kernel: Kernel,
        pos: PosBlock<T>,
        out: BatchOut<E::Out>,
    ) -> Result<Ticket<T, E::Out>, (PosBlock<T>, BatchOut<E::Out>)> {
        check_batch(pos.len(), out.len());
        let done = Arc::new(Done::new());
        if pos.is_empty() {
            done.complete(pos, out, Instant::now());
            return Ok(Ticket { done });
        }
        let class = self.classify(&pos);
        let mut st = lock_recover(&self.shared.state);
        assert!(!st.shutdown, "submit on a shut-down SpoService");
        if st.pending_positions != 0
            && st.pending_positions + pos.len() > self.shared.cfg.queue_positions
        {
            return Err((pos, out));
        }
        self.enqueue_locked(&mut st, class, kernel, pos, out, &done);
        drop(st);
        self.shared.work.notify_one();
        Ok(Ticket { done })
    }

    /// Drain every queued request and join the workers. Idempotent;
    /// also runs on drop. Every ticket issued before the call completes.
    pub fn shutdown(&mut self) {
        {
            let mut st = lock_recover(&self.shared.state);
            if st.shutdown && self.workers.is_empty() {
                return;
            }
            st.shutdown = true;
        }
        self.shared.work.notify_all();
        self.shared.space.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl<T: Real, E: SpoEngine<T> + 'static> Drop for SpoService<T, E>
where
    E::Out: 'static,
{
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// One service worker: pop → coalesce → evaluate → complete, forever.
///
/// With shards, a worker seeds from its replica's home shard queue
/// first and steals round-robin from the others when home is empty;
/// the coalescing scan is scoped to the seed's queue, so only
/// same-shard (spatially adjacent or identical) requests fuse.
fn worker_loop<T: Real, E: SpoEngine<T>>(
    replica: Replica<E>,
    shared: Arc<Shared<T, E::Out>>,
) {
    let n_shards = shared.router.n_shards();
    let home = replica.domain() % n_shards;
    // Reused across batches: the fused position block (reserve keeps
    // the splice allocation-free in steady state).
    let mut fused_pos = PosBlock::<T>::new();
    loop {
        let mut st = lock_recover(&shared.state);
        // Seed a batch from home, else steal (or exit once every queue
        // is drained after shutdown — in-flight work always completes).
        let (from, first) = loop {
            if let Some(r) = st.queues[home].pop_front() {
                break (home, r);
            }
            let stolen = (1..n_shards).find_map(|off| {
                let q = (home + off) % n_shards;
                st.queues[q].pop_front().map(|r| (q, r))
            });
            if let Some(hit) = stolen {
                shared.stats.stolen.fetch_add(1, Ordering::Relaxed);
                break hit;
            }
            if st.shutdown {
                return;
            }
            st = shared.work.wait(st).unwrap_or_else(PoisonError::into_inner);
        };
        st.queued_positions[from] -= first.pos.len();
        let kernel = first.kernel;
        let mut total = first.pos.len();
        let mut batch = vec![first];
        let deadline = Instant::now() + shared.cfg.max_wait;
        // Coalesce: splice in every same-kernel request queued on the
        // seed's shard, waiting (bounded by max_wait) for more while
        // the batch is partial. Other kernels — and other shards —
        // stay queued for the next worker.
        loop {
            let mut i = 0;
            while i < st.queues[from].len() && total < shared.cfg.max_batch {
                if st.queues[from][i].kernel == kernel {
                    let r = st.queues[from].remove(i).expect("index in bounds");
                    st.queued_positions[from] -= r.pos.len();
                    total += r.pos.len();
                    batch.push(r);
                } else {
                    i += 1;
                }
            }
            if total >= shared.cfg.max_batch || st.shutdown {
                break;
            }
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            let (guard, _timeout) = shared
                .work
                .wait_timeout(st, deadline - now)
                .unwrap_or_else(PoisonError::into_inner);
            st = guard;
        }
        // The batch leaves the queue but its positions stay counted
        // (pending) until evaluated, so the backpressure bound covers
        // coalescing and in-flight work too.
        st.pending_positions -= total;
        drop(st);
        shared.space.notify_all();
        execute(&replica, kernel, batch, total, &mut fused_pos, &shared.stats);
    }
}

/// Evaluate one coalesced batch and complete every member request.
fn execute<T: Real, E: SpoEngine<T>>(
    replica: &Replica<E>,
    kernel: Kernel,
    mut batch: Vec<Request<T, E::Out>>,
    total: usize,
    fused_pos: &mut PosBlock<T>,
    stats: &Stats,
) {
    stats.batches.fetch_add(1, Ordering::Relaxed);
    stats.positions.fetch_add(total, Ordering::Relaxed);
    if batch.len() == 1 {
        // Single-request fast path: evaluate straight into the caller's
        // blocks, no splice.
        let req = batch.pop().expect("one request");
        let mut out = BatchOut::from_blocks(req.out);
        replica.run(|| replica.engine().eval_batch(kernel, &req.pos, &mut out));
        req.done.complete(req.pos, out, Instant::now());
        return;
    }
    stats.coalesced.fetch_add(batch.len(), Ordering::Relaxed);
    // Fuse: splice positions, move each caller's first pos.len() output
    // blocks into one BatchOut (extra ragged-tail blocks are parked and
    // reattached untouched).
    fused_pos.clear();
    fused_pos.reserve(total);
    let mut blocks: Vec<E::Out> = Vec::with_capacity(total);
    let mut extras: Vec<Vec<E::Out>> = Vec::with_capacity(batch.len());
    for req in &mut batch {
        fused_pos.extend_from_block(&req.pos);
        let mut mine = std::mem::take(&mut req.out);
        extras.push(mine.split_off(req.pos.len()));
        blocks.append(&mut mine);
    }
    let mut fused_out = BatchOut::from_blocks(blocks);
    replica.run(|| replica.engine().eval_batch(kernel, fused_pos, &mut fused_out));
    // Unfuse: hand each request its own blocks back in submit order.
    let mut rest = fused_out.into_blocks();
    for (req, extra) in batch.into_iter().zip(extras) {
        let tail = rest.split_off(req.pos.len());
        let mut mine = std::mem::replace(&mut rest, tail);
        mine.extend(extra);
        req.done
            .complete(req.pos, BatchOut::from_blocks(mine), Instant::now());
    }
    debug_assert!(rest.is_empty(), "every output block returned");
}

/// An [`SpoEngine`] adapter over a shared service: scalar and batched
/// calls become service submissions, so any driver written against the
/// trait (e.g. `miniqmc`'s `SpoSet`) runs service-backed unchanged.
///
/// Scalar calls borrow a pooled dummy block to swap with the caller's
/// buffer (the trait's `&mut` contract meets the service's move-based
/// zero-copy contract); batched calls clone the position block (the
/// trait borrows it, the service takes ownership) but move the output
/// blocks both ways.
pub struct ServiceClient<T: Real, E: SpoEngine<T> + 'static>
where
    E::Out: 'static,
{
    service: Arc<SpoService<T, E>>,
    /// Dummy blocks for the scalar-call swap trick; steady state reuses
    /// one allocation per concurrent scalar caller.
    pool: Mutex<Vec<E::Out>>,
}

impl<T: Real, E: SpoEngine<T> + 'static> ServiceClient<T, E>
where
    E::Out: 'static,
{
    /// Wrap a shared service handle.
    pub fn new(service: Arc<SpoService<T, E>>) -> Self {
        Self {
            service,
            pool: Mutex::new(Vec::new()),
        }
    }

    /// The underlying service.
    pub fn service(&self) -> &SpoService<T, E> {
        &self.service
    }

    fn submit_one(&self, kernel: Kernel, pos: [T; 3], out: &mut E::Out) {
        let dummy = {
            let mut pool = lock_recover(&self.pool);
            pool.pop()
        }
        .unwrap_or_else(|| self.service.engine().make_out());
        let block = std::mem::replace(out, dummy);
        let mut pb = PosBlock::with_capacity(1);
        pb.push(pos);
        let ticket = self
            .service
            .submit(kernel, pb, BatchOut::from_blocks(vec![block]));
        let (_, res) = ticket.wait();
        let mut blocks = res.into_blocks();
        let dummy = std::mem::replace(out, blocks.pop().expect("one block back"));
        lock_recover(&self.pool).push(dummy);
    }

    fn submit_batch(
        &self,
        kernel: Kernel,
        pos: &PosBlock<T>,
        out: &mut BatchOut<E::Out>,
    ) {
        check_batch(pos.len(), out.len());
        let owned = std::mem::replace(out, BatchOut::from_blocks(Vec::new()));
        let ticket = self.service.submit(kernel, pos.clone(), owned);
        let (_, res) = ticket.wait();
        *out = res;
    }
}

impl<T: Real, E: SpoEngine<T> + 'static> Clone for ServiceClient<T, E>
where
    E::Out: 'static,
{
    fn clone(&self) -> Self {
        Self::new(Arc::clone(&self.service))
    }
}

impl<T: Real, E: SpoEngine<T> + 'static> SpoEngine<T> for ServiceClient<T, E>
where
    E::Out: 'static,
{
    type Out = E::Out;

    fn n_splines(&self) -> usize {
        self.service.engine().n_splines()
    }

    fn layout(&self) -> crate::layout::Layout {
        self.service.engine().layout()
    }

    fn domain(&self) -> [(f64, f64); 3] {
        self.service.engine().domain()
    }

    fn make_out(&self) -> E::Out {
        self.service.engine().make_out()
    }

    fn v(&self, pos: [T; 3], out: &mut E::Out) {
        self.submit_one(Kernel::V, pos, out);
    }

    fn vgl(&self, pos: [T; 3], out: &mut E::Out) {
        self.submit_one(Kernel::Vgl, pos, out);
    }

    fn vgh(&self, pos: [T; 3], out: &mut E::Out) {
        self.submit_one(Kernel::Vgh, pos, out);
    }

    fn v_batch(&self, pos: &PosBlock<T>, out: &mut BatchOut<E::Out>) {
        self.submit_batch(Kernel::V, pos, out);
    }

    fn vgl_batch(&self, pos: &PosBlock<T>, out: &mut BatchOut<E::Out>) {
        self.submit_batch(Kernel::Vgl, pos, out);
    }

    fn vgh_batch(&self, pos: &PosBlock<T>, out: &mut BatchOut<E::Out>) {
        self.submit_batch(Kernel::Vgh, pos, out);
    }

    // Single-position submissions ride the existing coalescer: a
    // per-move call is one kernel-tagged block of one position, fused
    // with whatever same-kernel traffic the replicas see in the same
    // max-wait window. The context's locate cache is server-side state
    // the client cannot use, so it is deliberately ignored — what the
    // one-move protocol buys here is the V-before-VGL kernel split, not
    // the weight reuse.
    fn v_one(&self, _ctx: &mut MoveContext<T>, pos: [T; 3], out: &mut E::Out) {
        self.submit_one(Kernel::V, pos, out);
    }

    fn vgl_one(&self, _ctx: &mut MoveContext<T>, pos: [T; 3], out: &mut E::Out) {
        self.submit_one(Kernel::Vgl, pos, out);
    }

    fn vgh_one(&self, _ctx: &mut MoveContext<T>, pos: [T; 3], out: &mut E::Out) {
        self.submit_one(Kernel::Vgh, pos, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::soa::BsplineSoA;
    use einspline::{Grid1, MultiCoefs};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn soa(n: usize) -> BsplineSoA<f32> {
        let g = Grid1::periodic(0.0, 1.0, 6);
        let mut m = MultiCoefs::<f32>::new(g, g, g, n);
        m.fill_random(&mut StdRng::seed_from_u64(23));
        BsplineSoA::new(m)
    }

    fn block(ns: usize, seed: u64) -> PosBlock<f32> {
        let mut rng = StdRng::seed_from_u64(seed);
        PosBlock::random(&mut rng, ns, [(0.0, 1.0); 3])
    }

    #[test]
    fn single_submission_matches_direct_batch() {
        let engine = soa(24);
        let pos = block(5, 1);
        let mut direct = engine.make_batch_out(5);
        engine.eval_batch(Kernel::Vgh, &pos, &mut direct);

        let service = SpoService::with_default_config(soa(24));
        let out = service.engine().make_batch_out(5);
        let (_, got) = service.submit(Kernel::Vgh, pos, out).wait();
        for p in 0..5 {
            for n in 0..24 {
                assert_eq!(
                    direct.block(p).value(n),
                    got.block(p).value(n),
                    "p={p} n={n}"
                );
            }
        }
    }

    #[test]
    fn empty_submission_completes_immediately() {
        let service = SpoService::with_default_config(soa(8));
        let ticket = service.submit(
            Kernel::V,
            PosBlock::new(),
            BatchOut::from_blocks(Vec::new()),
        );
        assert!(ticket.is_done());
        let (pos, out) = ticket.wait();
        assert!(pos.is_empty() && out.is_empty());
        assert_eq!(service.stats().requests, 0, "empty requests never queue");
    }

    #[test]
    fn coalesced_submissions_return_each_callers_blocks() {
        // Submissions outnumbering max_batch force at least one fused
        // call; every caller must get exactly its own positions back.
        let engine = soa(16);
        let service = SpoService::new(
            engine,
            ServiceConfig {
                replicas: 1,
                max_batch: 8,
                max_wait: Duration::from_millis(5),
                queue_positions: 64,
                routing: RoutingPolicy::Auto,
            },
        );
        let tickets: Vec<_> = (0..6)
            .map(|i| {
                let pos = block(3, 100 + i as u64);
                let out = service.engine().make_batch_out(3);
                (pos.clone(), service.submit(Kernel::Vgl, pos, out))
            })
            .collect();
        for (sent, ticket) in tickets {
            let (pos, out) = ticket.wait();
            assert_eq!(pos.len(), 3);
            assert_eq!(out.len(), 3);
            for i in 0..3 {
                assert_eq!(pos.get(i), sent.get(i), "positions round-trip");
            }
        }
        let stats = service.stats();
        assert_eq!(stats.requests, 6);
        assert_eq!(stats.positions, 18);
        assert!(stats.batches <= 6);
    }

    #[test]
    fn ragged_tail_blocks_ride_along_untouched() {
        let service = SpoService::with_default_config(soa(8));
        let pos = block(2, 9);
        // 4 blocks for 2 positions: the extra 2 must come back.
        let out = service.engine().make_batch_out(4);
        let (_, got) = service.submit(Kernel::V, pos, out).wait();
        assert_eq!(got.len(), 4);
    }

    #[test]
    fn try_submit_hands_back_over_bound_requests() {
        let engine = soa(8);
        let service = SpoService::new(
            engine,
            ServiceConfig {
                replicas: 1,
                max_batch: 4,
                // Long window: the first request is still pending when
                // the second arrives.
                max_wait: Duration::from_millis(200),
                queue_positions: 4,
                routing: RoutingPolicy::Auto,
            },
        );
        let first = service.submit(Kernel::V, block(4, 1), service.engine().make_batch_out(4));
        // The worker holds 4 pending positions; a second 4-position
        // request exceeds the bound while the service is non-idle.
        // (It may also have already drained — then submission succeeds.)
        match service.try_submit(Kernel::V, block(4, 2), service.engine().make_batch_out(4)) {
            Ok(t) => {
                t.wait();
            }
            Err((pos, out)) => {
                assert_eq!(pos.len(), 4);
                assert_eq!(out.len(), 4);
            }
        }
        first.wait();
    }

    #[test]
    fn shutdown_drains_in_flight_work() {
        let mut service = SpoService::new(
            soa(12),
            ServiceConfig {
                replicas: 2,
                max_batch: 64,
                max_wait: Duration::from_millis(50),
                queue_positions: 1024,
                routing: RoutingPolicy::Auto,
            },
        );
        let tickets: Vec<_> = (0..8)
            .map(|i| {
                let pos = block(2, i);
                let out = service.engine().make_batch_out(2);
                service.submit(Kernel::Vgh, pos, out)
            })
            .collect();
        service.shutdown();
        for t in tickets {
            let (pos, out) = t.wait();
            assert_eq!(pos.len(), 2);
            assert!(out.len() >= 2);
        }
    }

    #[test]
    #[should_panic(expected = "shut-down SpoService")]
    fn submit_after_shutdown_panics() {
        let mut service = SpoService::with_default_config(soa(4));
        service.shutdown();
        let out = service.engine().make_batch_out(1);
        service.submit(Kernel::V, block(1, 0), out);
    }

    #[test]
    fn routing_policies_resolve_shard_counts() {
        let fifo = SpoService::new(
            soa(8),
            ServiceConfig {
                routing: RoutingPolicy::Fifo,
                ..ServiceConfig::default()
            },
        );
        assert_eq!(fifo.n_shards(), 1);
        let pinned = SpoService::new(
            soa(8),
            ServiceConfig {
                routing: RoutingPolicy::Affinity { domains: 3 },
                ..ServiceConfig::default()
            },
        );
        assert_eq!(pinned.n_shards(), 3);
        // Auto resolves to whatever the host (or QMC_NUMA_DOMAINS)
        // reports — at least one shard, whatever that is.
        let auto = SpoService::with_default_config(soa(8));
        assert!(auto.n_shards() >= 1);
        assert_eq!(auto.n_shards(), crate::tuning::numa_domains());
    }

    #[test]
    fn classification_is_deterministic_and_separates_corners() {
        let router = Router {
            map: ShardMap::balanced(ROUTER_CELLS * ROUTER_CELLS * ROUTER_CELLS, 2),
            domain: [(0.0, 1.0); 3],
            spill_limit: 1024,
        };
        // A block concentrated near the origin owns cell 0 → shard 0;
        // one at the far corner owns the last cell → shard 1.
        let mut near = PosBlock::<f32>::new();
        let mut far = PosBlock::<f32>::new();
        for i in 0..5 {
            let eps = 0.01 * i as f32;
            near.push([0.05 + eps; 3]);
            far.push([0.95 - eps; 3]);
        }
        assert_eq!(router.classify(&near), 0);
        assert_eq!(router.classify(&far), 1);
        // Deterministic: the same content classifies identically, even
        // for a spatially uniform block (hash tie-break path).
        let uniform = block(32, 7);
        let shard = router.classify(&uniform);
        assert!(shard < 2);
        assert_eq!(router.classify(&uniform), shard);
        assert_eq!(router.classify(&block(32, 7)), shard);
    }

    #[test]
    fn spill_escapes_hot_shard_to_least_loaded() {
        // Under the limit: stay on the affinity shard.
        assert_eq!(spill_target(0, 8, &[10, 0], 32), (0, false));
        // Over the limit with a cooler shard available: spill.
        assert_eq!(spill_target(0, 8, &[100, 2], 32), (1, true));
        // Everything hot: the least-loaded still wins.
        assert_eq!(spill_target(1, 8, &[100, 200], 32), (0, true));
        // No strictly cooler shard: stay put (never bounce between
        // equally loaded queues).
        assert_eq!(spill_target(0, 8, &[50, 50], 32), (0, false));
    }

    #[test]
    fn affinity_routed_results_match_direct_batch() {
        let engine = soa(24);
        let service = SpoService::new(
            soa(24),
            ServiceConfig {
                replicas: 2,
                max_batch: 16,
                max_wait: Duration::from_millis(2),
                queue_positions: 256,
                routing: RoutingPolicy::Affinity { domains: 3 },
            },
        );
        let tickets: Vec<_> = (0..9)
            .map(|i| {
                // Blocks concentrated in alternating corners exercise
                // the majority path; uniform ones the hash tie-break.
                let pos = if i % 3 == 2 {
                    block(4, 40 + i as u64)
                } else {
                    let lo = if i % 2 == 0 { 0.02 } else { 0.7 };
                    let mut rng = StdRng::seed_from_u64(40 + i as u64);
                    PosBlock::random(&mut rng, 4, [(lo, lo + 0.2); 3])
                };
                let out = service.engine().make_batch_out(4);
                (pos.clone(), service.submit(Kernel::Vgh, pos, out))
            })
            .collect();
        for (sent, ticket) in tickets {
            let (pos, out) = ticket.wait();
            let mut direct = engine.make_batch_out(4);
            engine.eval_batch(Kernel::Vgh, &sent, &mut direct);
            for p in 0..4 {
                assert_eq!(pos.get(p), sent.get(p), "positions round-trip");
                for n in 0..24 {
                    assert_eq!(
                        direct.block(p).value(n),
                        out.block(p).value(n),
                        "routed result bit-identical, p={p} n={n}"
                    );
                    assert_eq!(
                        direct.block(p).hessian(n),
                        out.block(p).hessian(n),
                        "p={p} n={n}"
                    );
                }
            }
        }
        assert_eq!(service.stats().requests, 9);
    }

    #[test]
    fn single_shard_affinity_never_spills_or_steals() {
        let service = SpoService::new(
            soa(8),
            ServiceConfig {
                routing: RoutingPolicy::Affinity { domains: 1 },
                ..ServiceConfig::default()
            },
        );
        for i in 0..6 {
            let pos = block(3, i);
            let out = service.engine().make_batch_out(3);
            service.submit(Kernel::V, pos, out).wait();
        }
        let stats = service.stats();
        assert_eq!(stats.spilled, 0);
        assert_eq!(stats.stolen, 0);
        assert_eq!(stats.requests, 6);
    }

    #[test]
    fn service_client_scalar_calls_match_direct_engine() {
        let engine = soa(20);
        let mut direct = engine.make_out();
        engine.vgh([0.3, 0.6, 0.9], &mut direct);

        let service = Arc::new(SpoService::with_default_config(soa(20)));
        let client = ServiceClient::new(service);
        let mut via = client.make_out();
        client.vgh([0.3, 0.6, 0.9], &mut via);
        for n in 0..20 {
            assert_eq!(direct.value(n), via.value(n), "n={n}");
            assert_eq!(direct.hessian(n), via.hessian(n), "n={n}");
        }
        // Pool reuse: a second call must not grow the pool.
        client.v([0.1, 0.2, 0.3], &mut via);
        client.v([0.4, 0.5, 0.6], &mut via);
        assert_eq!(client.pool.lock().unwrap().len(), 1);
    }
}
