//! Names for the paper's data layouts, kernels and optimization steps —
//! shared vocabulary between the engines, the benchmark harness and the
//! cache-simulator trace generator — plus the lane-alignment queries the
//! explicit SIMD kernels rely on.

use std::fmt;

/// Widest lane count any [`crate::simd`] backend may ever use for
/// element type `T`: one 64-byte cache line (= one AVX-512 register),
/// i.e. 16 `f32` or 8 `f64` lanes. Coefficient rows and SoA output
/// streams are padded to a multiple of this, so every present and
/// future backend (AVX2: 8/4 lanes, SSE2: 4/2) divides the padded
/// length evenly and the hot path never executes a ragged tail.
pub const fn max_lanes<T>() -> usize {
    64 / std::mem::size_of::<T>()
}

/// `n` rounded up to a multiple of [`max_lanes`] — the guaranteed
/// padded length of a coefficient row / SoA output stream holding `n`
/// logical elements. Agrees with `einspline::aligned::padded_len` (the
/// allocator-side counterpart) by construction; both round to a full
/// cache line.
pub const fn lane_padded_len<T>(n: usize) -> usize {
    let lanes = max_lanes::<T>();
    n.div_ceil(lanes) * lanes
}

/// Whether `len` is a whole number of widest-backend lane groups, i.e.
/// a valid explicit-SIMD trip count with no remainder for any backend.
pub const fn is_lane_padded<T>(len: usize) -> bool {
    len.is_multiple_of(max_lanes::<T>())
}

/// Memory layout of the SPO evaluation (paper Sec. V).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Layout {
    /// Baseline: interleaved gradients `g[3N]` / Hessians `h[9N]`
    /// (Fig. 4a).
    Aos,
    /// Opt A: one contiguous stream per component, symmetric Hessian
    /// (Fig. 4b).
    Soa,
    /// Opt B: SoA split into tiles of `Nb` splines (Sec. V-B).
    AoSoA,
}

impl Layout {
    /// All layouts in optimization order.
    pub const ALL: [Layout; 3] = [Layout::Aos, Layout::Soa, Layout::AoSoA];
}

impl fmt::Display for Layout {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Layout::Aos => "AoS",
            Layout::Soa => "SoA",
            Layout::AoSoA => "AoSoA",
        })
    }
}

/// The three B-spline evaluation kernels (paper Sec. IV).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Kernel {
    /// Values only (pseudopotential local-energy path).
    V,
    /// Value + gradient + Laplacian (drift-diffusion, LCAO-type cells).
    Vgl,
    /// Value + gradient + Hessian (drift-diffusion, general cells).
    Vgh,
}

impl Kernel {
    /// All kernels in paper order.
    pub const ALL: [Kernel; 3] = [Kernel::V, Kernel::Vgl, Kernel::Vgh];

    /// Output components per orbital in the given layout
    /// (paper: 13 AoS / 10 SoA for VGH; 5 for VGL; 1 for V).
    pub fn components(self, layout: Layout) -> usize {
        match (self, layout) {
            (Kernel::V, _) => 1,
            (Kernel::Vgl, _) => 5,
            (Kernel::Vgh, Layout::Aos) => 13,
            (Kernel::Vgh, _) => 10,
        }
    }
}

impl fmt::Display for Kernel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Kernel::V => "V",
            Kernel::Vgl => "VGL",
            Kernel::Vgh => "VGH",
        })
    }
}

/// The paper's cumulative optimization steps (Table IV rows).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum OptStep {
    /// Baseline AoS implementation.
    Baseline,
    /// Opt A: AoS→SoA output transformation.
    A,
    /// Opt B: AoSoA tiling on top of A.
    B,
    /// Opt C: nested threading over tiles on top of B.
    C,
}

impl fmt::Display for OptStep {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            OptStep::Baseline => "baseline",
            OptStep::A => "A (SoA)",
            OptStep::B => "B (AoSoA)",
            OptStep::C => "C (nested)",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn component_counts_match_paper() {
        assert_eq!(Kernel::Vgh.components(Layout::Aos), 13);
        assert_eq!(Kernel::Vgh.components(Layout::Soa), 10);
        assert_eq!(Kernel::Vgh.components(Layout::AoSoA), 10);
        assert_eq!(Kernel::Vgl.components(Layout::Aos), 5);
        assert_eq!(Kernel::V.components(Layout::Soa), 1);
    }

    #[test]
    fn display_names() {
        assert_eq!(Layout::AoSoA.to_string(), "AoSoA");
        assert_eq!(Kernel::Vgl.to_string(), "VGL");
        assert_eq!(OptStep::B.to_string(), "B (AoSoA)");
    }

    #[test]
    fn all_lists_are_complete() {
        assert_eq!(Layout::ALL.len(), 3);
        assert_eq!(Kernel::ALL.len(), 3);
    }

    #[test]
    fn lane_padding_covers_every_backend_width() {
        assert_eq!(max_lanes::<f32>(), 16);
        assert_eq!(max_lanes::<f64>(), 8);
        for b in crate::simd::Backend::ALL {
            assert_eq!(max_lanes::<f32>() % crate::simd::lanes_for::<f32>(b), 0, "{b}");
            assert_eq!(max_lanes::<f64>() % crate::simd::lanes_for::<f64>(b), 0, "{b}");
        }
    }

    #[test]
    fn lane_padded_len_matches_allocator_padding() {
        for n in [1usize, 7, 16, 17, 100, 512] {
            assert_eq!(lane_padded_len::<f32>(n), einspline::aligned::padded_len::<f32>(n));
            assert_eq!(lane_padded_len::<f64>(n), einspline::aligned::padded_len::<f64>(n));
            assert!(is_lane_padded::<f32>(lane_padded_len::<f32>(n)));
            assert!(is_lane_padded::<f64>(lane_padded_len::<f64>(n)));
        }
        assert!(!is_lane_padded::<f32>(17));
    }
}
