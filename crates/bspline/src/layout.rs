//! Names for the paper's data layouts, kernels and optimization steps —
//! shared vocabulary between the engines, the benchmark harness and the
//! cache-simulator trace generator.

use std::fmt;

/// Memory layout of the SPO evaluation (paper Sec. V).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Layout {
    /// Baseline: interleaved gradients `g[3N]` / Hessians `h[9N]`
    /// (Fig. 4a).
    Aos,
    /// Opt A: one contiguous stream per component, symmetric Hessian
    /// (Fig. 4b).
    Soa,
    /// Opt B: SoA split into tiles of `Nb` splines (Sec. V-B).
    AoSoA,
}

impl Layout {
    /// All layouts in optimization order.
    pub const ALL: [Layout; 3] = [Layout::Aos, Layout::Soa, Layout::AoSoA];
}

impl fmt::Display for Layout {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Layout::Aos => "AoS",
            Layout::Soa => "SoA",
            Layout::AoSoA => "AoSoA",
        })
    }
}

/// The three B-spline evaluation kernels (paper Sec. IV).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Kernel {
    /// Values only (pseudopotential local-energy path).
    V,
    /// Value + gradient + Laplacian (drift-diffusion, LCAO-type cells).
    Vgl,
    /// Value + gradient + Hessian (drift-diffusion, general cells).
    Vgh,
}

impl Kernel {
    /// All kernels in paper order.
    pub const ALL: [Kernel; 3] = [Kernel::V, Kernel::Vgl, Kernel::Vgh];

    /// Output components per orbital in the given layout
    /// (paper: 13 AoS / 10 SoA for VGH; 5 for VGL; 1 for V).
    pub fn components(self, layout: Layout) -> usize {
        match (self, layout) {
            (Kernel::V, _) => 1,
            (Kernel::Vgl, _) => 5,
            (Kernel::Vgh, Layout::Aos) => 13,
            (Kernel::Vgh, _) => 10,
        }
    }
}

impl fmt::Display for Kernel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Kernel::V => "V",
            Kernel::Vgl => "VGL",
            Kernel::Vgh => "VGH",
        })
    }
}

/// The paper's cumulative optimization steps (Table IV rows).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum OptStep {
    /// Baseline AoS implementation.
    Baseline,
    /// Opt A: AoS→SoA output transformation.
    A,
    /// Opt B: AoSoA tiling on top of A.
    B,
    /// Opt C: nested threading over tiles on top of B.
    C,
}

impl fmt::Display for OptStep {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            OptStep::Baseline => "baseline",
            OptStep::A => "A (SoA)",
            OptStep::B => "B (AoSoA)",
            OptStep::C => "C (nested)",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn component_counts_match_paper() {
        assert_eq!(Kernel::Vgh.components(Layout::Aos), 13);
        assert_eq!(Kernel::Vgh.components(Layout::Soa), 10);
        assert_eq!(Kernel::Vgh.components(Layout::AoSoA), 10);
        assert_eq!(Kernel::Vgl.components(Layout::Aos), 5);
        assert_eq!(Kernel::V.components(Layout::Soa), 1);
    }

    #[test]
    fn display_names() {
        assert_eq!(Layout::AoSoA.to_string(), "AoSoA");
        assert_eq!(Kernel::Vgl.to_string(), "VGL");
        assert_eq!(OptStep::B.to_string(), "B (AoSoA)");
    }

    #[test]
    fn all_lists_are_complete() {
        assert_eq!(Layout::ALL.len(), 3);
        assert_eq!(Kernel::ALL.len(), 3);
    }
}
