//! The paper's throughput metric `T = Nw·N / t` (Sec. VI): orbital
//! evaluations per second on a node. Higher is better; for an ideal
//! implementation it is independent of N and the grid size.

use std::time::Duration;

/// Throughput of a kernel run.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Throughput {
    /// Orbital evaluations per second (`Nw · N · evals / t`).
    pub ops_per_sec: f64,
}

impl Throughput {
    /// `n_walkers` walkers each evaluated `evals` positions of `n_splines`
    /// orbitals in `elapsed` total wall time.
    pub fn measure(
        n_walkers: usize,
        n_splines: usize,
        evals: usize,
        elapsed: Duration,
    ) -> Self {
        let secs = elapsed.as_secs_f64();
        assert!(secs > 0.0, "cannot compute throughput of a zero-time run");
        Self {
            ops_per_sec: (n_walkers * n_splines * evals) as f64 / secs,
        }
    }

    /// Speedup of `self` over a `baseline` measurement.
    pub fn speedup_over(&self, baseline: Throughput) -> f64 {
        self.ops_per_sec / baseline.ops_per_sec
    }

    /// Giga-evaluations per second (for printing).
    pub fn gevals(&self) -> f64 {
        self.ops_per_sec / 1e9
    }
}

impl std::fmt::Display for Throughput {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.3e} ops/s", self.ops_per_sec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_formula() {
        let t = Throughput::measure(2, 100, 50, Duration::from_secs(1));
        assert_eq!(t.ops_per_sec, 10_000.0);
        assert_eq!(t.gevals(), 1e-5);
    }

    #[test]
    fn speedup_is_a_ratio() {
        let slow = Throughput::measure(1, 10, 10, Duration::from_secs(2));
        let fast = Throughput::measure(1, 10, 10, Duration::from_secs(1));
        assert!((fast.speedup_over(slow) - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "zero-time")]
    fn zero_duration_rejected() {
        let _ = Throughput::measure(1, 1, 1, Duration::ZERO);
    }

    #[test]
    fn display_format() {
        let t = Throughput::measure(1, 1000, 1000, Duration::from_secs(1));
        assert_eq!(t.to_string(), "1.000e6 ops/s");
    }
}
