//! `BsplineAoS` — the baseline engine (paper Fig. 4a).
//!
//! Faithful port of the optimized-CPU-algorithm baseline in the QMCPACK
//! distribution: the inner loop runs over all N splines per coefficient
//! point, but gradients and Hessians are written to *interleaved* AoS
//! arrays (`g[3n+d]`, `h[9n+r]`). The strided stores are exactly the
//! gather/scatter pattern the paper's Opt A removes. The VGL kernel also
//! keeps the baseline's known deficiencies that Opt A fixes alongside the
//! layout change: no z-unrolling and a temporary workspace allocated per
//! call.

use crate::batch::{check_batch, BatchOut, Located, PosBlock};
use crate::output::WalkerAoS;
use einspline::multi::MultiCoefs;
use einspline::Real;

/// Baseline multi-orbital evaluator with AoS outputs.
#[derive(Clone, Debug)]
pub struct BsplineAoS<T: Real> {
    coefs: MultiCoefs<T>,
}

/// Reusable VGL workspace for [`BsplineAoS`]: hoists the baseline's
/// per-call temporary `Vec` out of the hot path. Allocate once per
/// walker (or thread) and pass to [`BsplineAoS::vgl_with`]; the buffer
/// grows on first use and is reused allocation-free afterwards. The
/// scalar [`BsplineAoS::vgl`] deliberately keeps the per-call
/// allocation (it *is* the measured baseline deficiency); every other
/// path — batched, one-move, and callers holding this handle — avoids
/// it.
#[derive(Clone, Debug, Default)]
pub struct AosScratch<T: Real> {
    tmp: Vec<T>,
}

impl<T: Real> AosScratch<T> {
    /// Empty handle; the workspace is grown on first use.
    pub fn new() -> Self {
        Self { tmp: Vec::new() }
    }

    /// Workspace of at least `n` elements (contents are overwritten by
    /// the kernel before use, so no zeroing is needed).
    #[inline]
    fn for_n(&mut self, n: usize) -> &mut [T] {
        if self.tmp.len() < n {
            self.tmp.resize(n, T::ZERO);
        }
        &mut self.tmp[..n]
    }
}

impl<T: Real> BsplineAoS<T> {
    /// Create a new instance.
    pub fn new(coefs: MultiCoefs<T>) -> Self {
        Self { coefs }
    }

    #[inline]
    /// The underlying coefficient table.
    pub fn coefs(&self) -> &MultiCoefs<T> {
        &self.coefs
    }

    #[inline]
    /// Number of orbitals N.
    pub fn n_splines(&self) -> usize {
        self.coefs.n_splines()
    }

    /// Values only.
    pub fn v(&self, pos: [T; 3], out: &mut WalkerAoS<T>) {
        let loc = Located::new(&self.coefs, pos);
        self.v_located(&loc, out);
    }

    pub(crate) fn v_located(&self, loc: &Located<T>, out: &mut WalkerAoS<T>) {
        let (a, b, c) = (&loc.wa.a, &loc.wb.a, &loc.wc.a);
        out.zero_v();
        let n = self.n_splines();
        let v = &mut out.v.as_mut_slice()[..n];
        for i in 0..4 {
            for j in 0..4 {
                for k in 0..4 {
                    let pre = a[i] * b[j] * c[k];
                    let line =
                        &self.coefs.line(loc.i0 + i, loc.j0 + j, loc.k0 + k)[..n];
                    // The value stream is unit-stride even in AoS, so the
                    // per-point accumulation runs at SIMD width.
                    crate::simd::axpy(pre, line, v, n);
                }
            }
        }
    }

    /// Value + gradient + Laplacian with AoS outputs.
    ///
    /// Mirrors the pre-optimization QMCPACK VGL: a 5-stream accumulation
    /// where the gradient store is 3-strided, plus a per-call temporary
    /// (the baseline allocated its workspace inside the loop; the paper
    /// lists hoisting it as one of the VGL-only fixes).
    pub fn vgl(&self, pos: [T; 3], out: &mut WalkerAoS<T>) {
        let loc = Located::new(&self.coefs, pos);
        // Baseline wart kept on purpose: fresh workspace every call. The
        // batched path, the one-move path and [`Self::vgl_with`] all
        // hoist this allocation behind a reusable handle.
        let mut tmp = vec![T::ZERO; self.n_splines()];
        self.vgl_located(&loc, &mut tmp, out);
    }

    /// [`Self::vgl`] through a caller-owned [`AosScratch`]: identical
    /// results, no per-call allocation.
    pub fn vgl_with(&self, scratch: &mut AosScratch<T>, pos: [T; 3], out: &mut WalkerAoS<T>) {
        let loc = Located::new(&self.coefs, pos);
        self.vgl_located(&loc, scratch.for_n(self.n_splines()), out);
    }

    pub(crate) fn vgl_located(&self, loc: &Located<T>, tmp: &mut [T], out: &mut WalkerAoS<T>) {
        let (wa, wb, wc) = (&loc.wa, &loc.wb, &loc.wc);
        out.zero_vgl();
        let n = self.n_splines();

        let v = &mut out.v.as_mut_slice()[..n];
        let g = &mut out.g.as_mut_slice()[..3 * n];
        let l = &mut out.l.as_mut_slice()[..n];
        for i in 0..4 {
            for j in 0..4 {
                for k in 0..4 {
                    let pv = wa.a[i] * wb.a[j] * wc.a[k];
                    let pgx = wa.da[i] * wb.a[j] * wc.a[k];
                    let pgy = wa.a[i] * wb.da[j] * wc.a[k];
                    let pgz = wa.a[i] * wb.a[j] * wc.da[k];
                    let pl = wa.d2a[i] * wb.a[j] * wc.a[k]
                        + wa.a[i] * wb.d2a[j] * wc.a[k]
                        + wa.a[i] * wb.a[j] * wc.d2a[k];
                    let line =
                        &self.coefs.line(loc.i0 + i, loc.j0 + j, loc.k0 + k)[..n];
                    tmp[..n].copy_from_slice(line);
                    // SIMD where the layout allows it: the unit-stride
                    // value/Laplacian streams go through the explicit
                    // micro-kernel; the 3-strided gradient stores below
                    // stay scalar — they are exactly the AoS deficiency
                    // Opt A removes, not something to paper over.
                    crate::simd::vl_point(pv, pl, &tmp[..n], v, l, n);
                    for nn in 0..n {
                        let pn = tmp[nn];
                        g[3 * nn] = pgx.mul_add(pn, g[3 * nn]);
                        g[3 * nn + 1] = pgy.mul_add(pn, g[3 * nn + 1]);
                        g[3 * nn + 2] = pgz.mul_add(pn, g[3 * nn + 2]);
                    }
                }
            }
        }
    }

    /// Value + gradient + Hessian with AoS outputs: 13 accumulation
    /// streams per coefficient point, 3- and 9-strided stores (Fig. 4a).
    pub fn vgh(&self, pos: [T; 3], out: &mut WalkerAoS<T>) {
        let loc = Located::new(&self.coefs, pos);
        self.vgh_located(&loc, out);
    }

    pub(crate) fn vgh_located(&self, loc: &Located<T>, out: &mut WalkerAoS<T>) {
        let (wa, wb, wc) = (&loc.wa, &loc.wb, &loc.wc);
        out.zero_vgh();
        let n = self.n_splines();

        let v = &mut out.v.as_mut_slice()[..n];
        let g = &mut out.g.as_mut_slice()[..3 * n];
        let h = &mut out.h.as_mut_slice()[..9 * n];
        for i in 0..4 {
            for j in 0..4 {
                for k in 0..4 {
                    let pv = wa.a[i] * wb.a[j] * wc.a[k];
                    let pgx = wa.da[i] * wb.a[j] * wc.a[k];
                    let pgy = wa.a[i] * wb.da[j] * wc.a[k];
                    let pgz = wa.a[i] * wb.a[j] * wc.da[k];
                    let hxx = wa.d2a[i] * wb.a[j] * wc.a[k];
                    let hxy = wa.da[i] * wb.da[j] * wc.a[k];
                    let hxz = wa.da[i] * wb.a[j] * wc.da[k];
                    let hyy = wa.a[i] * wb.d2a[j] * wc.a[k];
                    let hyz = wa.a[i] * wb.da[j] * wc.da[k];
                    let hzz = wa.a[i] * wb.a[j] * wc.d2a[k];
                    let line =
                        &self.coefs.line(loc.i0 + i, loc.j0 + j, loc.k0 + k)[..n];
                    for (nn, &pn) in line.iter().enumerate() {
                        v[nn] = pv.mul_add(pn, v[nn]);
                        let gn = &mut g[3 * nn..3 * nn + 3];
                        gn[0] = pgx.mul_add(pn, gn[0]);
                        gn[1] = pgy.mul_add(pn, gn[1]);
                        gn[2] = pgz.mul_add(pn, gn[2]);
                        let hn = &mut h[9 * nn..9 * nn + 9];
                        hn[0] = hxx.mul_add(pn, hn[0]);
                        hn[1] = hxy.mul_add(pn, hn[1]);
                        hn[2] = hxz.mul_add(pn, hn[2]);
                        hn[3] = hxy.mul_add(pn, hn[3]);
                        hn[4] = hyy.mul_add(pn, hn[4]);
                        hn[5] = hyz.mul_add(pn, hn[5]);
                        hn[6] = hxz.mul_add(pn, hn[6]);
                        hn[7] = hyz.mul_add(pn, hn[7]);
                        hn[8] = hzz.mul_add(pn, hn[8]);
                    }
                }
            }
        }
    }

    /// Values for a whole position block; block `i` of `out` receives
    /// position `i`. Grid location + basis weights are hoisted out of
    /// the kernel loop.
    pub fn v_batch(&self, pos: &PosBlock<T>, out: &mut BatchOut<WalkerAoS<T>>) {
        check_batch(pos.len(), out.len());
        let locs = Located::block(&self.coefs, pos);
        for (loc, block) in locs.iter().zip(out.blocks_mut()) {
            self.v_located(loc, block);
        }
    }

    /// VGL for a whole position block. Unlike the scalar [`Self::vgl`]
    /// (which keeps the baseline's per-call workspace allocation), the
    /// batched path allocates the temporary once for the whole block.
    pub fn vgl_batch(&self, pos: &PosBlock<T>, out: &mut BatchOut<WalkerAoS<T>>) {
        check_batch(pos.len(), out.len());
        let locs = Located::block(&self.coefs, pos);
        let mut tmp = vec![T::ZERO; self.n_splines()];
        for (loc, block) in locs.iter().zip(out.blocks_mut()) {
            self.vgl_located(loc, &mut tmp, block);
        }
    }

    /// VGH for a whole position block (see [`Self::v_batch`]).
    pub fn vgh_batch(&self, pos: &PosBlock<T>, out: &mut BatchOut<WalkerAoS<T>>) {
        check_batch(pos.len(), out.len());
        let locs = Located::block(&self.coefs, pos);
        for (loc, block) in locs.iter().zip(out.blocks_mut()) {
            self.vgh_located(loc, block);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use einspline::{Grid1, MultiCoefs, Spline3};

    fn test_engine(n_splines: usize) -> (BsplineAoS<f64>, Vec<Spline3<f64>>) {
        let g = Grid1::periodic(0.0, 1.0, 8);
        let mut multi = MultiCoefs::<f64>::new(g, g, g, n_splines);
        let mut refs = Vec::new();
        for s in 0..n_splines {
            let mut data = vec![0.0f64; 8 * 8 * 8];
            for (idx, d) in data.iter_mut().enumerate() {
                *d = ((idx * (s + 3)) as f64 * 0.173).sin();
            }
            let sp = Spline3::<f64>::interpolate(g, g, g, &data);
            multi.set_orbital(s, &sp);
            refs.push(sp);
        }
        (BsplineAoS::new(multi), refs)
    }

    #[test]
    fn v_matches_scalar_reference() {
        let (engine, refs) = test_engine(5);
        let mut out = WalkerAoS::new(5);
        let pos = [0.312f64, 0.741, 0.155];
        engine.v(pos, &mut out);
        for (n, r) in refs.iter().enumerate() {
            let expect = r.value(pos[0], pos[1], pos[2]);
            assert!(
                (out.value(n) - expect).abs() < 1e-12,
                "orbital {n}: {} vs {expect}",
                out.value(n)
            );
        }
    }

    #[test]
    fn vgh_matches_scalar_reference() {
        let (engine, refs) = test_engine(3);
        let mut out = WalkerAoS::new(3);
        let pos = [0.62f64, 0.09, 0.48];
        engine.vgh(pos, &mut out);
        for (n, r) in refs.iter().enumerate() {
            let e = r.vgh(pos[0], pos[1], pos[2]);
            assert!((out.value(n) - e.v).abs() < 1e-12);
            let grad = out.gradient(n);
            for d in 0..3 {
                assert!((grad[d] - e.g[d]).abs() < 1e-10, "g[{d}]");
            }
            let hess = out.hessian(n);
            for r6 in 0..6 {
                assert!((hess[r6] - e.h[r6]).abs() < 1e-9, "h[{r6}]");
            }
        }
    }

    #[test]
    fn vgl_laplacian_equals_vgh_trace() {
        let (engine, _) = test_engine(4);
        let mut out_l = WalkerAoS::new(4);
        let mut out_h = WalkerAoS::new(4);
        let pos = [0.23f64, 0.87, 0.52];
        engine.vgl(pos, &mut out_l);
        engine.vgh(pos, &mut out_h);
        for n in 0..4 {
            assert!((out_l.value(n) - out_h.value(n)).abs() < 1e-13);
            let (gl, gh) = (out_l.gradient(n), out_h.gradient(n));
            for d in 0..3 {
                assert!((gl[d] - gh[d]).abs() < 1e-12);
            }
            assert!(
                (out_l.laplacian(n) - out_h.hessian_trace(n)).abs() < 1e-10,
                "n={n}"
            );
        }
    }

    #[test]
    fn hessian_storage_is_symmetric() {
        let (engine, _) = test_engine(2);
        let mut out = WalkerAoS::new(2);
        engine.vgh([0.5, 0.5, 0.5], &mut out);
        for n in 0..2 {
            let h = &out.h.as_slice()[9 * n..9 * n + 9];
            assert_eq!(h[1], h[3]);
            assert_eq!(h[2], h[6]);
            assert_eq!(h[5], h[7]);
        }
    }

    #[test]
    fn vgl_with_scratch_matches_allocating_vgl() {
        let (engine, _) = test_engine(4);
        let mut scratch = AosScratch::new();
        let mut a = WalkerAoS::new(4);
        let mut b = WalkerAoS::new(4);
        for pos in [[0.1f64, 0.2, 0.3], [0.9, 0.5, 0.7], [0.4, 0.4, 0.4]] {
            engine.vgl(pos, &mut a);
            engine.vgl_with(&mut scratch, pos, &mut b);
            for n in 0..4 {
                assert_eq!(a.value(n), b.value(n));
                assert_eq!(a.gradient(n), b.gradient(n));
                assert_eq!(a.laplacian(n), b.laplacian(n));
            }
        }
    }

    #[test]
    fn repeated_eval_overwrites() {
        let (engine, _) = test_engine(2);
        let mut out = WalkerAoS::new(2);
        engine.vgh([0.1, 0.2, 0.3], &mut out);
        let first = out.value(0);
        engine.vgh([0.9, 0.8, 0.7], &mut out);
        engine.vgh([0.1, 0.2, 0.3], &mut out);
        assert_eq!(out.value(0), first);
    }
}
