//! Per-walker output buffers (the paper's `WalkerAoS` / `WalkerSoA`
//! classes, Fig. 3 L6 and Fig. 6 L2).
//!
//! Each walker owns one set of output arrays that every kernel call
//! overwrites. The AoS variant interleaves vector components
//! (`g[3n+d]`, `h[9n+r]`); the SoA variant keeps one aligned, padded
//! stream per component and exploits Hessian symmetry (6 streams).
//! Both expose the same logical accessors so tests and the determinant
//! code can compare layouts directly.

use einspline::aligned::AlignedVec;
use einspline::Real;

/// Baseline AoS output block: `v[N]`, `g[3N]`, `l[N]`, `h[9N]`.
#[derive(Clone, Debug)]
pub struct WalkerAoS<T: Real> {
    n: usize,
    /// Orbital values.
    pub v: AlignedVec<T>,
    /// Gradients interleaved `[x y z | x y z | …]`.
    pub g: AlignedVec<T>,
    /// Laplacians (filled by VGL).
    pub l: AlignedVec<T>,
    /// Full 3×3 Hessians interleaved row-major (filled by VGH).
    pub h: AlignedVec<T>,
}

impl<T: Real> WalkerAoS<T> {
    /// Create a new instance.
    pub fn new(n: usize) -> Self {
        Self {
            n,
            v: AlignedVec::zeroed(n),
            g: AlignedVec::zeroed(3 * n),
            l: AlignedVec::zeroed(n),
            h: AlignedVec::zeroed(9 * n),
        }
    }

    #[inline]
    /// Number of orbitals N.
    pub fn n_splines(&self) -> usize {
        self.n
    }

    #[inline]
    /// Value of orbital `n`.
    pub fn value(&self, n: usize) -> T {
        self.v[n]
    }

    #[inline]
    /// Gradient of orbital `n`.
    pub fn gradient(&self, n: usize) -> [T; 3] {
        [self.g[3 * n], self.g[3 * n + 1], self.g[3 * n + 2]]
    }

    #[inline]
    /// Laplacian of orbital `n` (VGL path).
    pub fn laplacian(&self, n: usize) -> T {
        self.l[n]
    }

    /// Symmetric Hessian in `xx xy xz yy yz zz` order (from the full
    /// 3×3 storage).
    #[inline]
    pub fn hessian(&self, n: usize) -> [T; 6] {
        let h = &self.h.as_slice()[9 * n..9 * n + 9];
        [h[0], h[1], h[2], h[4], h[5], h[8]]
    }

    /// Laplacian recovered from the Hessian trace (VGH path).
    #[inline]
    pub fn hessian_trace(&self, n: usize) -> T {
        let h = &self.h.as_slice()[9 * n..9 * n + 9];
        h[0] + h[4] + h[8]
    }

    /// Clear the V-kernel outputs.
    pub fn zero_v(&mut self) {
        self.v.fill_default();
    }

    /// Clear the VGL-kernel outputs.
    pub fn zero_vgl(&mut self) {
        self.v.fill_default();
        self.g.fill_default();
        self.l.fill_default();
    }

    /// Clear the VGH-kernel outputs.
    pub fn zero_vgh(&mut self) {
        self.v.fill_default();
        self.g.fill_default();
        self.h.fill_default();
    }
}

/// SoA output block: aligned unit-stride streams per component, padded to
/// a cache-line multiple. Hessian is symmetric: `xx xy xz yy yz zz`.
#[derive(Clone, Debug)]
pub struct WalkerSoA<T: Real> {
    n: usize,
    /// Orbital values.
    pub v: AlignedVec<T>,
    /// Gradient component streams.
    pub gx: AlignedVec<T>,
    /// Gradient y-component stream.
    pub gy: AlignedVec<T>,
    /// Gradient z-component stream.
    pub gz: AlignedVec<T>,
    /// Laplacians (filled by VGL).
    pub l: AlignedVec<T>,
    /// Symmetric Hessian streams (filled by VGH).
    pub hxx: AlignedVec<T>,
    /// Hessian xy stream.
    pub hxy: AlignedVec<T>,
    /// Hessian xz stream.
    pub hxz: AlignedVec<T>,
    /// Hessian yy stream.
    pub hyy: AlignedVec<T>,
    /// Hessian yz stream.
    pub hyz: AlignedVec<T>,
    /// Hessian zz stream.
    pub hzz: AlignedVec<T>,
}

impl<T: Real> WalkerSoA<T> {
    /// Create a new instance.
    pub fn new(n: usize) -> Self {
        let alloc = || AlignedVec::zeroed_padded(n);
        Self {
            n,
            v: alloc(),
            gx: alloc(),
            gy: alloc(),
            gz: alloc(),
            l: alloc(),
            hxx: alloc(),
            hxy: alloc(),
            hxz: alloc(),
            hyy: alloc(),
            hyz: alloc(),
            hzz: alloc(),
        }
    }

    #[inline]
    /// Number of orbitals N.
    pub fn n_splines(&self) -> usize {
        self.n
    }

    /// Padded stream length (innermost loop trip count).
    #[inline]
    pub fn stride(&self) -> usize {
        self.v.len()
    }

    #[inline]
    /// Value of orbital `n`.
    pub fn value(&self, n: usize) -> T {
        self.v[n]
    }

    #[inline]
    /// Gradient of orbital `n`.
    pub fn gradient(&self, n: usize) -> [T; 3] {
        [self.gx[n], self.gy[n], self.gz[n]]
    }

    #[inline]
    /// Laplacian of orbital `n` (VGL path).
    pub fn laplacian(&self, n: usize) -> T {
        self.l[n]
    }

    #[inline]
    /// Symmetric Hessian of orbital `n` (`xx xy xz yy yz zz`).
    pub fn hessian(&self, n: usize) -> [T; 6] {
        [
            self.hxx[n],
            self.hxy[n],
            self.hxz[n],
            self.hyy[n],
            self.hyz[n],
            self.hzz[n],
        ]
    }

    #[inline]
    /// Laplacian recovered from the Hessian trace (VGH path).
    pub fn hessian_trace(&self, n: usize) -> T {
        self.hxx[n] + self.hyy[n] + self.hzz[n]
    }

    /// Clear the V-kernel outputs.
    pub fn zero_v(&mut self) {
        self.v.fill_default();
    }

    /// Clear the VGL-kernel outputs.
    pub fn zero_vgl(&mut self) {
        self.v.fill_default();
        self.gx.fill_default();
        self.gy.fill_default();
        self.gz.fill_default();
        self.l.fill_default();
    }

    /// Clear the VGH-kernel outputs.
    pub fn zero_vgh(&mut self) {
        self.v.fill_default();
        self.gx.fill_default();
        self.gy.fill_default();
        self.gz.fill_default();
        self.hxx.fill_default();
        self.hxy.fill_default();
        self.hxz.fill_default();
        self.hyy.fill_default();
        self.hyz.fill_default();
        self.hzz.fill_default();
    }
}

/// A mutable view over one orbital range of the eleven SoA output
/// streams — the unit the explicit-SIMD kernels write through.
///
/// For the monolithic engines the view spans the whole padded stream
/// (`[0, stride)`); for the blocked engine ([`crate::blocked`]) each
/// spline block receives the sub-range at its orbital offset of one
/// shared contiguous [`WalkerSoA`], so block outputs scatter straight
/// into the caller's buffer with no copy. Disjoint ranges of one
/// walker's streams can be handed to different threads
/// ([`WalkerSoA::split_streams_mut`]), which is what makes the nested
/// walker×block schedule borrow-checkable without interior mutability.
///
/// All eleven slices always have the same length (the kernels only
/// touch the streams their kernel writes, but the view is uniform so
/// one type serves V, VGL and VGH).
#[derive(Debug)]
pub struct SoAStreamsMut<'a, T> {
    /// Value stream slice.
    pub v: &'a mut [T],
    /// Gradient x-component slice.
    pub gx: &'a mut [T],
    /// Gradient y-component slice.
    pub gy: &'a mut [T],
    /// Gradient z-component slice.
    pub gz: &'a mut [T],
    /// Laplacian slice (VGL).
    pub l: &'a mut [T],
    /// Hessian xx slice (VGH).
    pub hxx: &'a mut [T],
    /// Hessian xy slice.
    pub hxy: &'a mut [T],
    /// Hessian xz slice.
    pub hxz: &'a mut [T],
    /// Hessian yy slice.
    pub hyy: &'a mut [T],
    /// Hessian yz slice.
    pub hyz: &'a mut [T],
    /// Hessian zz slice.
    pub hzz: &'a mut [T],
}

impl<'a, T> SoAStreamsMut<'a, T> {
    /// Orbitals covered by this view (length of every stream slice).
    #[inline]
    pub fn len(&self) -> usize {
        self.v.len()
    }

    /// Whether the view covers no orbitals.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.v.is_empty()
    }

    /// Reborrow the sub-range `[lo, hi)` of this view (the per-block
    /// step inside a multi-block nested work item).
    #[inline]
    pub fn range_mut(&mut self, lo: usize, hi: usize) -> SoAStreamsMut<'_, T> {
        SoAStreamsMut {
            v: &mut self.v[lo..hi],
            gx: &mut self.gx[lo..hi],
            gy: &mut self.gy[lo..hi],
            gz: &mut self.gz[lo..hi],
            l: &mut self.l[lo..hi],
            hxx: &mut self.hxx[lo..hi],
            hxy: &mut self.hxy[lo..hi],
            hxz: &mut self.hxz[lo..hi],
            hyy: &mut self.hyy[lo..hi],
            hyz: &mut self.hyz[lo..hi],
            hzz: &mut self.hzz[lo..hi],
        }
    }
}

/// Split one stream into the given disjoint ascending `(lo, hi)`
/// ranges (gaps allowed; the skipped parts stay untouched).
fn split_ranges<'a, T>(mut s: &'a mut [T], ranges: &[(usize, usize)]) -> Vec<&'a mut [T]> {
    let mut out = Vec::with_capacity(ranges.len());
    let mut pos = 0;
    for &(lo, hi) in ranges {
        assert!(lo >= pos && hi >= lo, "ranges must be disjoint ascending");
        let (_, rest) = s.split_at_mut(lo - pos);
        let (part, rest) = rest.split_at_mut(hi - lo);
        out.push(part);
        s = rest;
        pos = hi;
    }
    out
}

impl<T: Real> WalkerSoA<T> {
    /// Mutable stream view over the orbital range `[lo, hi)`
    /// (`hi ≤ stride`).
    pub fn streams_range_mut(&mut self, lo: usize, hi: usize) -> SoAStreamsMut<'_, T> {
        SoAStreamsMut {
            v: &mut self.v.as_mut_slice()[lo..hi],
            gx: &mut self.gx.as_mut_slice()[lo..hi],
            gy: &mut self.gy.as_mut_slice()[lo..hi],
            gz: &mut self.gz.as_mut_slice()[lo..hi],
            l: &mut self.l.as_mut_slice()[lo..hi],
            hxx: &mut self.hxx.as_mut_slice()[lo..hi],
            hxy: &mut self.hxy.as_mut_slice()[lo..hi],
            hxz: &mut self.hxz.as_mut_slice()[lo..hi],
            hyy: &mut self.hyy.as_mut_slice()[lo..hi],
            hyz: &mut self.hyz.as_mut_slice()[lo..hi],
            hzz: &mut self.hzz.as_mut_slice()[lo..hi],
        }
    }

    /// Split the streams into independent mutable views over the given
    /// disjoint ascending orbital ranges — one view per nested work
    /// item, hand-off-able to different threads (plain `split_at_mut`
    /// underneath; no unsafe, no interior mutability).
    pub fn split_streams_mut(&mut self, ranges: &[(usize, usize)]) -> Vec<SoAStreamsMut<'_, T>> {
        let mut v = split_ranges(self.v.as_mut_slice(), ranges).into_iter();
        let mut gx = split_ranges(self.gx.as_mut_slice(), ranges).into_iter();
        let mut gy = split_ranges(self.gy.as_mut_slice(), ranges).into_iter();
        let mut gz = split_ranges(self.gz.as_mut_slice(), ranges).into_iter();
        let mut l = split_ranges(self.l.as_mut_slice(), ranges).into_iter();
        let mut hxx = split_ranges(self.hxx.as_mut_slice(), ranges).into_iter();
        let mut hxy = split_ranges(self.hxy.as_mut_slice(), ranges).into_iter();
        let mut hxz = split_ranges(self.hxz.as_mut_slice(), ranges).into_iter();
        let mut hyy = split_ranges(self.hyy.as_mut_slice(), ranges).into_iter();
        let mut hyz = split_ranges(self.hyz.as_mut_slice(), ranges).into_iter();
        let mut hzz = split_ranges(self.hzz.as_mut_slice(), ranges).into_iter();
        (0..ranges.len())
            .map(|_| SoAStreamsMut {
                v: v.next().unwrap(),
                gx: gx.next().unwrap(),
                gy: gy.next().unwrap(),
                gz: gz.next().unwrap(),
                l: l.next().unwrap(),
                hxx: hxx.next().unwrap(),
                hxy: hxy.next().unwrap(),
                hxz: hxz.next().unwrap(),
                hyy: hyy.next().unwrap(),
                hyz: hyz.next().unwrap(),
                hzz: hzz.next().unwrap(),
            })
            .collect()
    }
}

/// Tiled outputs for the AoSoA engine: one [`WalkerSoA`] per tile
/// (paper Fig. 6: `WalkerSoA w[M](Nb)`).
#[derive(Clone, Debug)]
pub struct WalkerTiled<T: Real> {
    tiles: Vec<WalkerSoA<T>>,
    nb: usize,
    n: usize,
}

impl<T: Real> WalkerTiled<T> {
    /// `sizes[t]` is the spline count of tile `t` (all `nb` except
    /// possibly the last).
    pub fn new(sizes: &[usize], nb: usize) -> Self {
        let n = sizes.iter().sum();
        Self {
            tiles: sizes.iter().map(|&s| WalkerSoA::new(s)).collect(),
            nb,
            n,
        }
    }

    #[inline]
    /// Number of orbitals N.
    pub fn n_splines(&self) -> usize {
        self.n
    }

    #[inline]
    /// N tiles.
    pub fn n_tiles(&self) -> usize {
        self.tiles.len()
    }

    /// Tile size `Nb` the indices were laid out with (last tile may
    /// hold fewer splines).
    #[inline]
    pub fn nb(&self) -> usize {
        self.nb
    }

    #[inline]
    /// Tile.
    pub fn tile(&self, t: usize) -> &WalkerSoA<T> {
        &self.tiles[t]
    }

    #[inline]
    /// Tile mut.
    pub fn tile_mut(&mut self, t: usize) -> &mut WalkerSoA<T> {
        &mut self.tiles[t]
    }

    /// Mutable access to all tiles (nested-threading partitioning).
    #[inline]
    pub fn tiles_mut(&mut self) -> &mut [WalkerSoA<T>] {
        &mut self.tiles
    }

    /// Map a global orbital index to `(tile, offset)`.
    #[inline]
    pub fn locate(&self, n: usize) -> (usize, usize) {
        (n / self.nb, n % self.nb)
    }

    #[inline]
    /// Value of orbital `n`.
    pub fn value(&self, n: usize) -> T {
        let (t, o) = self.locate(n);
        self.tiles[t].value(o)
    }

    #[inline]
    /// Gradient of orbital `n`.
    pub fn gradient(&self, n: usize) -> [T; 3] {
        let (t, o) = self.locate(n);
        self.tiles[t].gradient(o)
    }

    #[inline]
    /// Laplacian of orbital `n` (VGL path).
    pub fn laplacian(&self, n: usize) -> T {
        let (t, o) = self.locate(n);
        self.tiles[t].laplacian(o)
    }

    #[inline]
    /// Symmetric Hessian of orbital `n` (`xx xy xz yy yz zz`).
    pub fn hessian(&self, n: usize) -> [T; 6] {
        let (t, o) = self.locate(n);
        self.tiles[t].hessian(o)
    }

    #[inline]
    /// Laplacian recovered from the Hessian trace (VGH path).
    pub fn hessian_trace(&self, n: usize) -> T {
        let (t, o) = self.locate(n);
        self.tiles[t].hessian_trace(o)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aos_accessors_read_interleaved_storage() {
        let mut w = WalkerAoS::<f32>::new(4);
        w.g[3 * 2] = 1.0;
        w.g[3 * 2 + 1] = 2.0;
        w.g[3 * 2 + 2] = 3.0;
        assert_eq!(w.gradient(2), [1.0, 2.0, 3.0]);
        for (r, val) in [(0, 1.0f32), (4, 5.0), (8, 9.0)] {
            w.h[9 * 3 + r] = val;
        }
        assert_eq!(w.hessian_trace(3), 15.0);
        assert_eq!(w.hessian(3)[0], 1.0);
        assert_eq!(w.hessian(3)[3], 5.0);
        assert_eq!(w.hessian(3)[5], 9.0);
    }

    #[test]
    fn soa_streams_are_padded_and_aligned() {
        let w = WalkerSoA::<f32>::new(100);
        assert_eq!(w.stride(), 112);
        assert_eq!(w.n_splines(), 100);
        assert_eq!(w.v.as_ptr() as usize % 64, 0);
        assert_eq!(w.hzz.as_ptr() as usize % 64, 0);
    }

    #[test]
    fn soa_zeroing_clears_kernel_outputs() {
        let mut w = WalkerSoA::<f32>::new(8);
        w.v[0] = 1.0;
        w.gx[1] = 2.0;
        w.hzz[2] = 3.0;
        w.zero_vgh();
        assert_eq!(w.v[0], 0.0);
        assert_eq!(w.gx[1], 0.0);
        assert_eq!(w.hzz[2], 0.0);
    }

    #[test]
    fn tiled_locate_maps_global_index() {
        let w = WalkerTiled::<f32>::new(&[16, 16, 8], 16);
        assert_eq!(w.n_splines(), 40);
        assert_eq!(w.n_tiles(), 3);
        assert_eq!(w.locate(0), (0, 0));
        assert_eq!(w.locate(17), (1, 1));
        assert_eq!(w.locate(39), (2, 7));
    }

    #[test]
    fn tiled_accessors_delegate() {
        let mut w = WalkerTiled::<f32>::new(&[4, 4], 4);
        w.tile_mut(1).v[2] = 7.0;
        w.tile_mut(1).gx[2] = 1.0;
        assert_eq!(w.value(6), 7.0);
        assert_eq!(w.gradient(6)[0], 1.0);
    }
}
